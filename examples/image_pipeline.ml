(** A full image pipeline under faults: this example walks through what the
    paper's Figure 1 shows — the same decoder, three fates.  It runs the
    protected JPEG decoder repeatedly with injected bit flips and buckets
    each run by what happened to the picture (imperceptible, perceptible,
    detected, crashed), printing the PSNR of each corrupted-but-completed
    output.

    Run with: dune exec examples/image_pipeline.exe *)

(* Write a grayscale image as a binary PGM so the gallery can be viewed
   with any image tool. *)
let write_pgm path ~w ~h (pixels : float array) =
  let oc = open_out_bin path in
  Printf.fprintf oc "P5\n%d %d\n255\n" w h;
  Array.iter
    (fun v ->
      let p = int_of_float v in
      let p = if p < 0 then 0 else if p > 255 then 255 else p in
      output_char oc (Char.chr p))
    pixels;
  close_out oc

let img_w, img_h = 48, 48

let () =
  let w = Workloads.Registry.find "jpegdec" in
  let role = Workloads.Workload.Test in
  let p = Softft.protect w Softft.Dup_valchk in
  let subject = Softft.subject p ~role in
  let golden = Faults.Campaign.golden_run subject in
  Printf.printf
    "golden run: %d simulated instructions, %d-pixel output image\n\n"
    golden.steps (Array.length golden.output);
  write_pgm "fault_gallery_golden.pgm" ~w:img_w ~h:img_h golden.output;

  let disabled = Hashtbl.create 4 in
  List.iter (fun uid -> Hashtbl.replace disabled uid ()) golden.failing_checks;

  let interesting = ref [] in
  let counts = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let trials = 300 in
  for seed = 1 to trials do
    let trial =
      Faults.Campaign.run_trial subject ~golden ~disabled ~hw_window:1000 ~seed
    in
    bump (Faults.Classify.name trial.outcome);
    (* Keep the runs where the image was corrupted but survived. *)
    match trial.outcome with
    | Faults.Classify.Asdc | Faults.Classify.Usdc_large
    | Faults.Classify.Usdc_small ->
      interesting := (seed, trial) :: !interesting
    | Faults.Classify.Masked | Faults.Classify.Sw_detect
    | Faults.Classify.Hw_detect | Faults.Classify.Failure
    | Faults.Classify.Recovered | Faults.Classify.Unrecoverable -> ()
  done;

  Printf.printf "outcomes over %d injected bit flips:\n" trials;
  Hashtbl.iter (fun k n -> Printf.printf "  %-12s %4d\n" k n) counts;

  Printf.printf "\ncorrupted-but-completed runs (the Figure 1 gallery):\n";
  Printf.printf "%6s  %6s  %4s  %-12s  %s\n" "seed" "step" "bit" "class"
    "PSNR vs golden";
  List.iter
    (fun (seed, (trial : Faults.Campaign.trial)) ->
      (* Re-run the exact same flip to recover the output image. *)
      let state = subject.fresh_state () in
      let rng = Rng.create trial.trial_seed in
      let at_step = 1 + Rng.int rng (max 1 (golden.steps - 1)) in
      let config =
        { Interp.Machine.default_config with
          fuel = (golden.steps * 8) + 10_000;
          fault = Some (Interp.Machine.register_fault ~at_step ~fault_rng:(Rng.split rng) ());
          disabled_checks = disabled }
      in
      let result =
        Interp.Machine.run ~config p.prog ~entry:"main" ~args:state.args
          ~mem:state.mem
      in
      match result.stop, result.injection with
      | Interp.Machine.Finished ret, Some inj ->
        let output = state.read_output ret in
        let psnr = Fidelity.Metric.psnr ~reference:golden.output output in
        let path = Printf.sprintf "fault_gallery_seed%d.pgm" seed in
        write_pgm path ~w:img_w ~h:img_h output;
        Printf.printf "%6d  %6d  %4d  %-12s  %6.1f dB%s  -> %s\n" seed
          inj.inj_step inj.inj_bit
          (Faults.Classify.name trial.outcome)
          psnr
          (if psnr >= 30.0 then "  (user would accept this)"
           else "  (visibly corrupted)")
          path
      | _, _ -> ())
    (List.rev !interesting);

  Printf.printf
    "\nEvery run above produced a numerically wrong image; only those below \
     30 dB\nare unacceptable — the distinction the paper's USDC metric \
     captures.\nThe .pgm files next to this binary are the paper's Figure 1 \
     gallery.\n"
