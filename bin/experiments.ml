(** Command-line driver for full-scale reproduction campaigns.

    The bench harness ([bench/main.exe]) uses reduced trial counts so it
    finishes in minutes; this tool runs paper-scale campaigns (1000 trials
    per benchmark and technique, §IV-C) and the auxiliary studies. *)

open Cmdliner

let trials_arg =
  let doc = "Fault-injection trials per (benchmark, technique)." in
  Arg.(value & opt int 1000 & info [ "trials"; "t" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master random seed (campaigns are deterministic per seed)." in
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc)

let benchmarks_arg =
  let doc = "Comma-separated benchmark subset (default: all 13)." in
  Arg.(value & opt (some string) None & info [ "benchmarks"; "b" ] ~docv:"NAMES" ~doc)

(* [--domains] accepts a positive integer or the word "auto"; "auto"
   resolves to {!Faults.Pool.recommended_domains} at parse time, so every
   downstream consumer (campaigns, run_stats, journal manifests) sees the
   resolved count, never the sentinel. *)
let domains_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "auto" -> Ok (Faults.Pool.recommended_domains ())
    | s ->
      (match int_of_string_opt s with
       | Some n when n >= 1 -> Ok n
       | Some _ -> Error (`Msg "DOMAINS must be a positive integer or \"auto\"")
       | None ->
         Error
           (`Msg
              (Printf.sprintf
                 "invalid domain count %S (expected an integer or \"auto\")" s)))
  in
  Cmdliner.Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  let doc =
    "Worker domains per campaign: a positive integer, or $(b,auto) for the \
     recommended domain count of this machine (the default; 1 = serial).  \
     Results are bit-identical for any value."
  in
  Arg.(
    value
    & opt domains_conv (Faults.Pool.recommended_domains ())
    & info [ "domains"; "j" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Only log warnings and errors." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let log_json_arg =
  let doc = "Also append structured log events to $(docv) as JSON lines." in
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"FILE" ~doc)

let resolve_benchmarks = function
  | None -> Workloads.Registry.all
  | Some names ->
    List.map Workloads.Registry.find (String.split_on_char ',' names)

(** Structured logger for the process: pretty events on stderr (warnings
    only under [--quiet]), plus an optional JSONL sink. *)
let logger_of quiet log_json =
  let level = if quiet then Obs.Log.Warn else Obs.Log.Info in
  let log = Obs.Log.make ~level ~sinks:[ Obs.Log.stderr_sink () ] "experiments" in
  (match log_json with
   | Some path ->
     let oc = open_out path in
     at_exit (fun () -> close_out_noerr oc);
     Obs.Log.add_sink log (Obs.Log.jsonl_sink oc)
   | None -> ());
  log

let technique_of_string s =
  match String.lowercase_ascii s with
  | "original" -> Softft.Original
  | "dup" | "dup_only" -> Softft.Dup_only
  | "dupval" | "dup_valchk" -> Softft.Dup_valchk
  | "full" | "full_dup" -> Softft.Full_dup
  | "cfc" -> Softft.Cfc_only
  | "dupvalcfc" -> Softft.Dup_valchk_cfc
  | other ->
    invalid_arg
      (Printf.sprintf
         "unknown technique %S (original|dup|dupval|full|cfc|dupvalcfc)"
         other)

let run_all trials seed benchmarks domains quiet log_json =
  let log = logger_of quiet log_json in
  let workloads = resolve_benchmarks benchmarks in
  let results =
    Softft.Experiments.evaluate ~trials ~seed ~log ~domains workloads
  in
  Softft.Experiments.print_table1 ();
  Softft.Experiments.print_table2 ();
  Softft.Experiments.print_fig2 results;
  Softft.Experiments.print_fig10 results;
  Softft.Experiments.print_fig11 results;
  Softft.Experiments.print_fig12 results;
  Softft.Experiments.print_fig13 results;
  Softft.Experiments.print_falsepos results;
  Softft.Experiments.print_headline results;
  Printf.printf
    "\n(95%% confidence margin of error at %d trials: +-%.1f points)\n" trials
    (100.0 *. Softft.margin_of_error ~trials ~proportion:0.5)

let all_cmd =
  let doc = "Run every table and figure of the paper's evaluation." in
  Cmd.v
    (Cmd.info "all" ~doc)
    Term.(
      const run_all $ trials_arg $ seed_arg $ benchmarks_arg $ domains_arg
      $ quiet_arg $ log_json_arg)

let run_crossval trials seed domains quiet =
  ignore quiet;
  let rows = Softft.Experiments.crossval ~trials ~seed ~domains () in
  Softft.Experiments.print_crossval rows

let crossval_cmd =
  let doc =
    "Cross-validation (paper \xc2\xa7V): profile on the test input and inject \
     on the train input, for jpegdec and kmeans."
  in
  Cmd.v
    (Cmd.info "crossval" ~doc)
    Term.(const run_crossval $ trials_arg $ seed_arg $ domains_arg $ quiet_arg)

let run_one name technique_name trials seed domains checkpoint taint
    progress progress_jsonl journal timeline profile_flag quiet log_json =
  let log = logger_of quiet log_json in
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let golden =
    Softft.golden p ~checkpoint_interval:checkpoint
      ~role:Workloads.Workload.Test
  in
  Printf.printf "%s / %s\n" w.name (Softft.technique_name technique);
  Printf.printf "  static instrs (orig) : %d\n" p.static_stats.original_instrs;
  Printf.printf "  state variables      : %d\n" p.static_stats.state_vars;
  Printf.printf "  duplicated instrs    : %d\n" p.static_stats.duplicated_instrs;
  Printf.printf "  value checks         : %d\n" p.static_stats.value_checks;
  Printf.printf "  golden steps/cycles  : %d / %d\n" golden.steps golden.cycles;
  Printf.printf "  false positives      : %d\n" golden.false_positives;
  let profile =
    if profile_flag then Some (Interp.Profile.create ()) else None
  in
  let stats = ref None in
  let progress_oc = Option.map open_out progress_jsonl in
  let sinks =
    (if progress then [ Faults.Progress.stderr_sink () ] else [])
    @ (match progress_oc with
       | Some oc -> [ Faults.Progress.jsonl_sink oc ]
       | None -> [])
  in
  let pg =
    match sinks with
    | [] -> None
    | _ :: _ -> Some (Faults.Progress.create ~sinks ~total:trials ())
  in
  let trace = Option.map (fun _ -> Obs.Trace.recorder ()) timeline in
  let summary, results =
    Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed ~domains
      ~checkpoint_interval:checkpoint ~taint_trace:taint ?profile
      ~stats_out:stats ?progress:pg ?trace
  in
  (match progress_oc with Some oc -> close_out oc | None -> ());
  List.iter
    (fun outcome ->
      Printf.printf "  %-13s : %5.1f%%\n"
        (Faults.Classify.name outcome)
        (Faults.Campaign.percent summary outcome))
    Faults.Classify.all;
  (match journal with
   | Some path ->
     let manifest =
       Faults.Journal.manifest_record
         ~technique:(Softft.technique_name technique)
         ?stats:!stats ~counts:summary.Faults.Campaign.counts
         ~label:(Printf.sprintf "%s/%s/test" w.name
                   (Softft.technique_name technique))
         ~trials ~seed ~domains ~checkpoint_interval:checkpoint
         ~taint_trace:taint ~hw_window:Faults.Classify.default_hw_window
         ~fault_kind:"register_bit"
         ~golden:summary.Faults.Campaign.golden_info ()
     in
     Faults.Journal.write ?trace ~path ~manifest ~trials:results ();
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("trials", Obs.Json.Int (List.length results)) ]
       "journal written"
   | None -> ());
  (match timeline, trace with
   | Some path, Some r ->
     Obs.Trace.write_chrome r ~path;
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("spans", Obs.Json.Int (List.length (Obs.Trace.durs r))) ]
       "timeline written"
   | _, _ -> ());
  match profile with
  | Some prof -> Softft.Experiments.print_profile prof
  | None -> ()

let name_arg =
  let doc = "Benchmark name (see `table1')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let technique_arg =
  let doc = "Protection technique: original, dup, dupval, full, cfc or dupvalcfc." in
  Arg.(value & pos 1 string "dupval" & info [] ~docv:"TECHNIQUE" ~doc)

let journal_arg =
  let doc =
    "Write a trial journal to $(docv): one JSON line per trial, preceded \
     by a campaign manifest.  Aggregate it later with the `report' command."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let checkpoint_arg =
  let doc =
    "Enable checkpoint/rollback recovery with a checkpoint every $(docv) \
     dynamic instructions (0 = off).  Trials whose software check fires \
     then roll back and replay, reclassifying as Recovered/Unrecoverable."
  in
  Arg.(value & opt int 0 & info [ "checkpoint"; "k" ] ~docv:"INTERVAL" ~doc)

let profile_arg =
  let doc =
    "Collect an execution profile over all trials (dynamic opcode mix, hot \
     blocks, check firings) and print it after the campaign.  \
     Observation-only: trial outcomes are bit-identical either way."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let taint_arg =
  let doc =
    "Trace fault propagation: every trial carries a shadow taint bit per \
     register and memory word, seeded at the injection, and records a \
     propagation summary in the journal (schema v3).  Observation-only: \
     outcomes and costs are bit-identical either way."
  in
  Arg.(value & flag & info [ "taint" ] ~doc)

let progress_arg =
  let doc =
    "Print a live heartbeat to stderr while the campaign runs: trials \
     done/total, per-outcome running counts, trials/sec and ETA."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let progress_jsonl_arg =
  let doc =
    "Also stream campaign progress snapshots to $(docv) as JSON lines \
     (one {\"type\":\"progress\",...} record per heartbeat)."
  in
  Arg.(value & opt (some string) None & info [ "progress-jsonl" ] ~docv:"FILE" ~doc)

let timeline_arg =
  let doc =
    "Record the campaign flight recorder and write a Chrome trace-event \
     timeline to $(docv) (load it in Perfetto or chrome://tracing): \
     golden-run/fork-capture/trial-phase spans plus every worker domain's \
     chunk claims.  Observation-only: results are bit-identical either way."
  in
  Arg.(
    value & opt (some string) None
    & info [ "trace-timeline" ] ~docv:"FILE" ~doc)

let one_cmd =
  let doc = "Protect one benchmark and run a campaign against it." in
  Cmd.v
    (Cmd.info "one" ~doc)
    Term.(
      const run_one $ name_arg $ technique_arg $ trials_arg $ seed_arg
      $ domains_arg $ checkpoint_arg $ taint_arg $ progress_arg
      $ progress_jsonl_arg $ journal_arg $ timeline_arg $ profile_arg
      $ quiet_arg $ log_json_arg)

(* `campaign` generalizes `one`: the uniform path is the same
   [Softft.campaign] call (trials and journals are bit-identical to
   `one`'s at any --domains), and --adaptive switches to the stratified
   scheduler of DESIGN.md §14 — static-coverage × ring-residency strata,
   Neyman allocation, per-stratum early stopping, mass-reweighted
   whole-program rates. *)
let run_campaign name technique_name adaptive ci trials max_trials bands
    seed domains checkpoint progress progress_jsonl journal warehouse
    timeline quiet log_json =
  let log = logger_of quiet log_json in
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  Printf.printf "%s / %s%s\n" w.name
    (Softft.technique_name technique)
    (if adaptive then
       Printf.sprintf "  (adaptive, target SDC half-width %.4f)" ci
     else "");
  let stats = ref None in
  let progress_oc = Option.map open_out progress_jsonl in
  let sinks =
    (if progress then [ Faults.Progress.stderr_sink () ] else [])
    @ (match progress_oc with
       | Some oc -> [ Faults.Progress.jsonl_sink oc ]
       | None -> [])
  in
  let trace = Option.map (fun _ -> Obs.Trace.recorder ()) timeline in
  (* The warehouse sink rebuilds the same manifest the --journal block
     writes — the run key hashes it, so a run filed as it finishes and the
     same journal ingested later land on the same key. *)
  let file_in dir ?adaptive (summary : Faults.Campaign.summary) results
      run_stats =
    let manifest =
      Faults.Journal.manifest_record
        ~technique:(Softft.technique_name technique)
        ?stats:run_stats ~counts:summary.Faults.Campaign.counts ?adaptive
        ~label:(Printf.sprintf "%s/%s/test" w.name
                  (Softft.technique_name technique))
        ~trials:summary.Faults.Campaign.trials ~seed ~domains
        ~checkpoint_interval:checkpoint
        ~hw_window:Faults.Classify.default_hw_window
        ~fault_kind:"register_bit"
        ~golden:summary.Faults.Campaign.golden_info ()
    in
    let verdict, (entry : Warehouse.Store.entry) =
      match
        Warehouse.Store.file_run
          ~prog_digest:(Warehouse.Store.prog_digest p.Softft.prog) ~dir
          ~manifest ~trials:results ()
      with
      | `Ingested e -> ("filed", e)
      | `Duplicate e -> ("already filed (duplicate)", e)
    in
    Obs.Log.info log
      ~fields:
        [ ("dir", Obs.Json.Str dir);
          ("key", Obs.Json.Str entry.Warehouse.Store.e_key) ]
      ("warehouse: run " ^ verdict)
  in
  let summary, results, adaptive_out =
    if not adaptive then begin
      let pg =
        match sinks with
        | [] -> None
        | _ :: _ -> Some (Faults.Progress.create ~sinks ~total:trials ())
      in
      let summary, results =
        Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed
          ~domains ~checkpoint_interval:checkpoint ~stats_out:stats
          ?warehouse:
            (Option.map
               (fun dir summary results run_stats ->
                 file_in dir summary results run_stats)
               warehouse)
          ?progress:pg ?trace
      in
      (summary, results, None)
    end
    else begin
      let cov = Analysis.Coverage.analyze p.Softft.prog in
      let groups = Analysis.Strata.reg_groups p.Softft.prog cov in
      let priors = Analysis.Strata.priors cov in
      let subj = Softft.subject p ~role:Workloads.Workload.Test in
      let progress_for =
        match sinks with
        | [] -> None
        | _ :: _ ->
          Some
            (fun ~nstrata ~total ->
              Faults.Progress.create ~sinks ~strata:nstrata ~total ())
      in
      let summary, results, ad =
        Faults.Campaign.run_adaptive ~seed ~domains
          ~checkpoint_interval:checkpoint ~stats_out:stats
          ?warehouse:
            (Option.map
               (fun dir summary results run_stats ad ->
                 file_in dir ~adaptive:ad summary results run_stats)
               warehouse)
          ?progress_for ?trace ~bands ~max_trials ~groups
          ~group_names:Analysis.Strata.group_names ~priors ~ci subj
      in
      (summary, results, Some ad)
    end
  in
  (match progress_oc with Some oc -> close_out oc | None -> ());
  List.iter
    (fun outcome ->
      Printf.printf "  %-13s : %5.1f%%\n"
        (Faults.Classify.name outcome)
        (Faults.Campaign.percent summary outcome))
    Faults.Classify.all;
  (match adaptive_out with
   | Some (ad : Faults.Campaign.adaptive) ->
     Printf.printf "  strata               : %d (+ empty-ring mass %.4f)\n"
       (Array.length ad.ad_strata) ad.ad_mass_empty;
     Array.iter
       (fun (ss : Faults.Campaign.stratum_stats) ->
         let s = ss.ss_stratum in
         let k =
           List.fold_left
             (fun acc (o, n) ->
               if Faults.Classify.is_sdc o then acc + n else acc)
             0 ss.ss_counts
         in
         Printf.printf
           "    #%d %-13s band %d [%d,%d)  mass %.4f  trials %4d  SDC %s\n"
           s.Faults.Campaign.st_id s.st_group_name s.st_band s.st_lo
           s.st_hi s.st_mass ss.ss_trials
           (Obs.Stats.pp_pct (Obs.Stats.wilson ~k ~n:ss.ss_trials ())))
       ad.ad_strata;
     Printf.printf "  SDC rate (reweighted): %.4f [%.4f, %.4f]\n"
       ad.ad_sdc.Obs.Stats.ci_estimate ad.ad_sdc.ci_low ad.ad_sdc.ci_high;
     Printf.printf
       "  trials               : %d (planned uniform: %d, %.1fx saved; \
        oracle uniform: %d)\n"
       ad.ad_trials ad.ad_equiv_uniform
       (float_of_int ad.ad_equiv_uniform
        /. float_of_int (max 1 ad.ad_trials))
       ad.ad_oracle_uniform
   | None -> ());
  (match journal with
   | Some path ->
     let manifest =
       Faults.Journal.manifest_record
         ~technique:(Softft.technique_name technique)
         ?stats:!stats ~counts:summary.Faults.Campaign.counts
         ?adaptive:adaptive_out
         ~label:(Printf.sprintf "%s/%s/test" w.name
                   (Softft.technique_name technique))
         ~trials:summary.Faults.Campaign.trials ~seed ~domains
         ~checkpoint_interval:checkpoint
         ~hw_window:Faults.Classify.default_hw_window
         ~fault_kind:"register_bit"
         ~golden:summary.Faults.Campaign.golden_info ()
     in
     Faults.Journal.write ?trace ~path ~manifest ~trials:results ();
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("trials", Obs.Json.Int (List.length results)) ]
       "journal written"
   | None -> ());
  match timeline, trace with
  | Some path, Some r ->
    Obs.Trace.write_chrome r ~path;
    Obs.Log.info log
      ~fields:
        [ ("path", Obs.Json.Str path);
          ("spans", Obs.Json.Int (List.length (Obs.Trace.durs r))) ]
      "timeline written"
  | _, _ -> ()

let adaptive_arg =
  let doc =
    "Adaptive stratified campaign (DESIGN.md §14): partition the injection \
     space by static protection coverage and ring residency, allocate \
     trials Neyman-style, stop each stratum once its Wilson interval is \
     tight, and reweight by stratum mass into unbiased whole-program rates."
  in
  Arg.(value & flag & info [ "adaptive" ] ~doc)

let ci_arg =
  let doc =
    "Target half-width of the whole-program SDC 95% interval — the \
     adaptive stopping rule (implies nothing in uniform mode)."
  in
  Arg.(value & opt float 0.01 & info [ "ci" ] ~docv:"HALF_WIDTH" ~doc)

let max_trials_arg =
  let doc = "Adaptive trial budget cap." in
  Arg.(value & opt int 100_000 & info [ "max-trials" ] ~docv:"N" ~doc)

let bands_arg =
  let doc = "Residency bands per protection group (adaptive strata)." in
  Arg.(value & opt int 3 & info [ "bands" ] ~docv:"N" ~doc)

let warehouse_sink_arg =
  let doc =
    "File the finished run into the campaign warehouse at $(docv) \
     (content-addressed by program, technique, fault model, configuration \
     and seed; re-running an identical campaign is a no-op).  Query it \
     later with `history', `diff-runs', `regress' and `heatmap'."
  in
  Arg.(value & opt (some string) None & info [ "warehouse" ] ~docv:"DIR" ~doc)

let campaign_cmd =
  let doc =
    "Run a fault campaign: uniform sampling by default, or --adaptive \
     stratified sampling with per-stratum early stopping."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const run_campaign $ name_arg $ technique_arg $ adaptive_arg $ ci_arg
      $ trials_arg $ max_trials_arg $ bands_arg $ seed_arg $ domains_arg
      $ checkpoint_arg $ progress_arg $ progress_jsonl_arg $ journal_arg
      $ warehouse_sink_arg $ timeline_arg $ quiet_arg $ log_json_arg)

let run_coverage name technique_name dynamic csv regs_csv journal =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let exec_counts =
    if not dynamic then None
    else begin
      (* Weight exposure by real block execution counts from a golden run. *)
      let prof = Interp.Profile.create () in
      let (_ : Faults.Campaign.golden) =
        Softft.golden ~profile:prof p ~role:Workloads.Workload.Test
      in
      Some (Interp.Profile.func_block_counts prof)
    end
  in
  let cov = Analysis.Coverage.analyze ?exec_counts p.Softft.prog in
  let label =
    Printf.sprintf "%s/%s" w.name (Softft.technique_name technique)
  in
  Softft.Experiments.print_coverage ~label cov;
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "written: %s\n" path
  in
  (match csv with
   | Some out -> write_file out (Softft.Experiments.coverage_csv cov)
   | None -> ());
  (match regs_csv with
   | Some out -> write_file out (Softft.Experiments.coverage_reg_csv cov)
   | None -> ());
  match journal with
  | None -> ()
  | Some path ->
    (match Faults.Journal.load path with
     | exception Faults.Journal.Malformed msg ->
       prerr_endline ("experiments coverage: " ^ msg);
       exit 1
     | _manifest, views ->
       Softft.Experiments.print_coverage_vs_journal cov views)

let dynamic_arg =
  let doc =
    "Weight register exposure by dynamic block execution counts from a \
     fault-free golden run (default: static weight 1 per block)."
  in
  Arg.(value & flag & info [ "dynamic" ] ~doc)

let coverage_csv_arg =
  let doc = "Export the per-instruction classification to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let regs_csv_arg =
  let doc = "Export the per-register exposure table to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "regs-csv" ] ~docv:"FILE" ~doc)

let coverage_journal_arg =
  let doc =
    "Validate the static prediction against a trial journal (produced by \
     `one --journal' for the same benchmark and technique): buckets every \
     injected trial by the protection status of the register it hit."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let coverage_cmd =
  let doc =
    "Static protection-coverage analysis: classify every instruction and \
     register of a protected benchmark and estimate the SDC-prone fraction \
     without running a campaign."
  in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      const run_coverage $ name_arg $ technique_arg $ dynamic_arg
      $ coverage_csv_arg $ regs_csv_arg $ coverage_journal_arg)

let optimize_point_row (p : Softft.Optimize.point) =
  Printf.printf "  %-34s %9.4f %8.1f%%  c%-3d t%-3d v%-3d\n" p.op_label
    (Softft.Optimize.sdc p)
    (100.0 *. Softft.Optimize.overhead p)
    (List.length p.op_plan.Analysis.Plan.chains)
    (List.length p.op_plan.Analysis.Plan.terminators)
    (List.length p.op_plan.Analysis.Plan.checks)

let optimize_frontier_csv (fr : Softft.Optimize.frontier) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "label,fixed,predicted_sdc,predicted_overhead,chains,terminators,\
     checks,checkpoint\n";
  List.iter
    (fun (p : Softft.Optimize.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%b,%.6f,%.6f,%d,%d,%d,%d\n" p.op_label p.op_fixed
           (Softft.Optimize.sdc p)
           (Softft.Optimize.overhead p)
           (List.length p.op_plan.Analysis.Plan.chains)
           (List.length p.op_plan.Analysis.Plan.terminators)
           (List.length p.op_plan.Analysis.Plan.checks)
           p.op_plan.Analysis.Plan.checkpoint))
    (fr.fr_points @ fr.fr_fixed);
  Buffer.contents buf

let run_optimize name budget beam checkpoint validate_n seed domains ci
    max_trials warehouse csv plan_out quiet log_json =
  let log = logger_of quiet log_json in
  let w = Workloads.Registry.find name in
  let prog = w.build () in
  (* The paper's offline step: value-profile on the training input so the
     search knows which sites are check-amenable. *)
  let vp = Workloads.Workload.profile ~prog w in
  let profile uid = Profiling.Value_profile.check_kind vp uid in
  (* Block weights from a fault-free run of the original program on the
     same (training) input — the predictor's AVF residency weights. *)
  let exec_counts =
    let prof = Interp.Profile.create () in
    let orig = Softft.protect w Softft.Original in
    let (_ : Faults.Campaign.golden) =
      Softft.golden ~profile:prof orig ~role:Workloads.Workload.Train
    in
    Interp.Profile.func_block_counts prof
  in
  let fr =
    Softft.Optimize.search ~beam
      ?budget:(Option.map (fun pct -> pct /. 100.0) budget)
      ~exec_counts ~profile ~checkpoint prog
  in
  Printf.printf "%s: explored %d plans%s\n" w.name fr.fr_explored
    (match budget with
     | Some pct -> Printf.sprintf " under a %.1f%% overhead budget" pct
     | None -> "");
  Printf.printf "  %-34s %9s %9s  %s\n" "plan" "pred.SDC" "pred.ovh"
    "size";
  List.iter optimize_point_row fr.fr_points;
  print_endline "  fixed pipelines (same predictor):";
  List.iter optimize_point_row fr.fr_fixed;
  List.iter
    (fun (fixed, by) ->
      Printf.printf "  note: %s strictly dominates fixed pipeline %s\n" by
        fixed)
    fr.fr_dominated_fixed;
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "written: %s\n" path
  in
  (match csv with
   | Some out -> write_file out (optimize_frontier_csv fr)
   | None -> ());
  (match plan_out with
   | Some out ->
     write_file out
       (Obs.Json.to_string (Softft.Optimize.frontier_json fr) ^ "\n")
   | None -> ());
  if validate_n > 0 then begin
    let knees = Softft.Optimize.knee_points ~n:validate_n fr.fr_points in
    Printf.printf
      "validating %d knee point(s) by adaptive injection (target \
       half-width %.4f):\n"
      (List.length knees) ci;
    let file_in dir (v : Softft.Optimize.validation)
        (p : Softft.protected) (summary : Faults.Campaign.summary) results
        run_stats ad ~golden:(_ : Faults.Campaign.golden) =
      let pt = v.Softft.Optimize.vl_point in
      let manifest =
        Faults.Journal.manifest_record ~technique:"Planned"
          ~plan:(Analysis.Plan.to_json pt.Softft.Optimize.op_plan)
          ?stats:run_stats ~counts:summary.Faults.Campaign.counts
          ~adaptive:ad
          ~label:(Printf.sprintf "%s/%s/test" w.name
                    (Analysis.Plan.slug pt.Softft.Optimize.op_plan))
          ~trials:summary.Faults.Campaign.trials ~seed ~domains
          ~checkpoint_interval:pt.Softft.Optimize.op_plan.Analysis.Plan.checkpoint
          ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      let verdict, (entry : Warehouse.Store.entry) =
        match
          Warehouse.Store.file_run
            ~prog_digest:(Warehouse.Store.prog_digest p.Softft.prog) ~dir
            ~manifest ~trials:results ()
        with
        | `Ingested e -> ("filed", e)
        | `Duplicate e -> ("already filed (duplicate)", e)
      in
      Obs.Log.info log
        ~fields:
          [ ("dir", Obs.Json.Str dir);
            ("key", Obs.Json.Str entry.Warehouse.Store.e_key) ]
        ("warehouse: run " ^ verdict)
    in
    let vals =
      Softft.Optimize.validate ~seed ~domains ~ci ~max_trials
        ?on_run:(Option.map file_in warehouse) w knees
    in
    Printf.printf "  %-34s %9s %9s %19s %9s %7s\n" "plan" "pred.SDC"
      "meas.SDC" "95% CI" "meas.ovh" "trials";
    List.iter
      (fun (v : Softft.Optimize.validation) ->
        Printf.printf
          "  %-34s %9.4f %9.4f [%7.4f,%7.4f] %8.1f%% %7d\n"
          v.vl_point.op_label
          (Softft.Optimize.sdc v.vl_point)
          v.vl_measured_sdc.Obs.Stats.ci_estimate
          v.vl_measured_sdc.Obs.Stats.ci_low
          v.vl_measured_sdc.Obs.Stats.ci_high
          (100.0 *. v.vl_measured_overhead)
          v.vl_trials)
      vals;
    Printf.printf "  predicted-vs-measured SDC rank order: %s\n"
      (if Softft.Optimize.rank_order_agrees vals then "concordant"
       else "DISCORDANT")
  end

let budget_arg =
  let doc =
    "Overhead budget as a percentage (e.g. 15 caps the frontier at 15% \
     predicted runtime overhead).  Default: unbounded."
  in
  Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"PCT" ~doc)

let beam_arg =
  let doc = "Beam width over chain subsets during the search." in
  Arg.(value & opt int 4 & info [ "beam" ] ~docv:"N" ~doc)

let validate_arg =
  let doc =
    "Validate the $(docv) knee points of the frontier by targeted \
     adaptive fault campaigns and report predicted-vs-measured deltas \
     (0 = skip validation)."
  in
  Arg.(value & opt int 0 & info [ "validate" ] ~docv:"N" ~doc)

let plan_out_arg =
  let doc =
    "Write the frontier (plans included) to $(docv) as JSON; any plan in \
     the file can be re-executed through `Pipeline.of_plan'."
  in
  Arg.(value & opt (some string) None & info [ "plan-out" ] ~docv:"FILE" ~doc)

let optimize_csv_arg =
  let doc = "Export the frontier and fixed-pipeline points to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let optimize_cmd =
  let doc =
    "Search the protection-plan space with the static AVF/cost predictor \
     and emit the Pareto frontier (SDC-prone fraction vs predicted \
     overhead); optionally validate knee points by adaptive injection."
  in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run_optimize $ name_arg $ budget_arg $ beam_arg
      $ checkpoint_arg $ validate_arg $ seed_arg $ domains_arg $ ci_arg
      $ max_trials_arg $ warehouse_sink_arg $ optimize_csv_arg
      $ plan_out_arg $ quiet_arg $ log_json_arg)

(* Every pipeline configuration the lint must hold for; mirrors the
   property suite in test/test_lint.ml. *)
let lint_configurations =
  [ ("original", Softft.Original, true, true);
    ("dup", Softft.Dup_only, true, true);
    ("dupval", Softft.Dup_valchk, true, true);
    ("dupval-no-opt1", Softft.Dup_valchk, false, true);
    ("dupval-no-opt2", Softft.Dup_valchk, true, false);
    ("full", Softft.Full_dup, true, true);
    ("cfc", Softft.Cfc_only, true, true);
    ("dupvalcfc", Softft.Dup_valchk_cfc, true, true) ]

let run_lint benchmarks =
  let workloads = resolve_benchmarks benchmarks in
  let failures = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (config, technique, opt1, opt2) ->
          match Softft.protect ~lint:true ~opt1 ~opt2 w technique with
          | (_ : Softft.protected) ->
            Printf.printf "ok   %-10s %s\n" w.name config
          | exception Analysis.Lint.Error issues ->
            incr failures;
            Printf.printf "FAIL %-10s %s\n" w.name config;
            List.iter
              (fun issue ->
                Format.printf "  %a@." Analysis.Lint.pp_issue issue)
              issues
          | exception Ir.Verifier.Invalid err ->
            incr failures;
            Format.printf "FAIL %-10s %s@.  verifier: %a@." w.name config
              Ir.Verifier.pp_error err)
        lint_configurations)
    workloads;
  if !failures > 0 then begin
    Printf.printf "\n%d configuration(s) failed the lint\n" !failures;
    exit 1
  end
  else print_endline "\nall configurations lint-clean"

let lint_cmd =
  let doc =
    "Run the transform-invariant lint over every pipeline configuration \
     of the selected benchmarks; exits nonzero on any violation."
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run_lint $ benchmarks_arg)

(* Rebuild the coverage map a journal's campaign corresponds to, from the
   manifest's label ("workload/technique/role") and pretty technique name —
   the --strata join needs the per-register protection statuses, which the
   journal itself does not carry. *)
(* Rebuild the protected program a journal manifest describes, when its
   label and technique name a registered workload.  Protection pipelines
   are deterministic, so the rebuilt program — and hence its warehouse
   digest and coverage map — matches the one the campaign ran. *)
let protected_of_manifest manifest =
  let pretty_technique =
    List.find_opt
      (fun t ->
        Option.bind (Obs.Json.member "technique" manifest) Obs.Json.to_str
        = Some (Softft.technique_name t))
      Softft.extended_techniques
  in
  let workload =
    Option.bind (Obs.Json.member "label" manifest) Obs.Json.to_str
    |> Option.map (fun label ->
           match String.index_opt label '/' with
           | Some i -> String.sub label 0 i
           | None -> label)
  in
  match workload, pretty_technique with
  | Some name, Some technique ->
    (try Some (Softft.protect (Workloads.Registry.find name) technique)
     with _ -> None)
  | _, _ -> None

let coverage_of_manifest manifest =
  Option.map
    (fun p -> Analysis.Coverage.analyze p.Softft.prog)
    (protected_of_manifest manifest)

let report_one ~manifest ~views strata =
  Softft.Experiments.print_journal_report ~manifest views;
  if strata then
    match coverage_of_manifest manifest with
    | Some cov -> Softft.Experiments.print_journal_strata cov views
    | None ->
      prerr_endline
        "experiments report: --strata needs a manifest whose label and \
         technique match a registered workload; skipping strata table"

(* A directory of journals is reported one section per *run* — journals
   are grouped by their warehouse run key (program config, seed, trials),
   never silently merged: pooling trials from different configurations
   under one outcome table would manufacture rates no campaign measured. *)
let run_report_dir dir strata =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then begin
    prerr_endline ("experiments report: no .jsonl journals in " ^ dir);
    exit 1
  end;
  let loaded =
    List.map
      (fun f ->
        match Faults.Journal.load f with
        | exception Faults.Journal.Malformed msg ->
          prerr_endline ("experiments report: " ^ f ^ ": " ^ msg);
          exit 1
        | manifest, views ->
          let prog_digest =
            Option.map
              (fun p -> Warehouse.Store.prog_digest p.Softft.prog)
              (protected_of_manifest manifest)
          in
          (f, Warehouse.Store.run_key ?prog_digest manifest, manifest, views))
      files
  in
  let keys_in_order =
    List.fold_left
      (fun acc (_, key, _, _) -> if List.mem key acc then acc else key :: acc)
      [] loaded
    |> List.rev
  in
  Printf.printf "%d journal(s), %d distinct run(s)\n" (List.length loaded)
    (List.length keys_in_order);
  List.iter
    (fun key ->
      let group = List.filter (fun (_, k, _, _) -> k = key) loaded in
      let file, _, manifest, views = List.hd group in
      let label =
        match Option.bind (Obs.Json.member "label" manifest) Obs.Json.to_str
        with
        | Some l -> l
        | None -> "?"
      in
      Printf.printf "\n== run %s  %s  (%s) ==\n"
        (String.sub key 0 12)
        label file;
      report_one ~manifest ~views strata;
      match List.tl group with
      | [] -> ()
      | dups ->
        Printf.printf "(+%d duplicate journal(s) of this run: %s)\n"
          (List.length dups)
          (String.concat ", " (List.map (fun (f, _, _, _) -> f) dups)))
    keys_in_order

let run_report path strata csv =
  if Sys.file_exists path && Sys.is_directory path then begin
    (match csv with
     | Some _ ->
       prerr_endline
         "experiments report: --csv wants a single journal, not a directory";
       exit 1
     | None -> ());
    run_report_dir path strata
  end
  else
    match Faults.Journal.load path with
    | exception Faults.Journal.Malformed msg ->
      (* A journal without a manifest (or with broken lines) is an error the
         caller should see, not an empty report. *)
      prerr_endline ("experiments report: " ^ msg);
      exit 1
    | manifest, views ->
      report_one ~manifest ~views strata;
      (match csv with
       | Some out ->
         let oc = open_out out in
         output_string oc (Softft.Experiments.journal_check_csv views);
         close_out oc;
         Printf.printf "\nper-check CSV written to %s\n" out
       | None -> ())

let journal_path_arg =
  let doc =
    "Trial journal produced by `one --journal', or a directory of such \
     journals (reported one section per distinct run, grouped by \
     warehouse run key — never merged)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL" ~doc)

let csv_arg =
  let doc = "Export the per-check firing table to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let strata_arg =
  let doc =
    "Join the journal with the static protection-coverage map (the \
     manifest names the workload and technique) and print per-register \
     strata — SDC/detected/masked rates with Wilson 95% intervals per \
     protection status of the register the fault hit."
  in
  Arg.(value & flag & info [ "strata" ] ~doc)

let report_cmd =
  let doc =
    "Aggregate a trial journal: outcome shares with Wilson 95% intervals, \
     detection-latency histogram, and per-check firing tables."
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ journal_path_arg $ strata_arg $ csv_arg)

let run_bench_diff old_path new_path tolerance require_same_host =
  (* "latest:<warehouse-dir>" names the most recently ingested bench
     snapshot — CI points the baseline at its warehouse instead of
     shuffling BENCH_campaign.json copies around. *)
  let resolve path =
    match String.length path > 7 && String.sub path 0 7 = "latest:" with
    | false -> path
    | true ->
      let dir = String.sub path 7 (String.length path - 7) in
      (match Warehouse.Store.latest_bench ~dir with
       | Some p -> p
       | None ->
         prerr_endline
           (Printf.sprintf
              "experiments bench-diff: no bench snapshot ingested in %s" dir);
         exit 1)
  in
  let old_path = resolve old_path and new_path = resolve new_path in
  let load path =
    match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all)
    with
    | j -> j
    | exception Obs.Json.Parse_error msg ->
      prerr_endline
        (Printf.sprintf "experiments bench-diff: %s: %s" path msg);
      exit 1
    | exception Sys_error msg ->
      prerr_endline ("experiments bench-diff: " ^ msg);
      exit 1
  in
  let d =
    Softft.Experiments.bench_diff ~tolerance_pct:tolerance (load old_path)
      (load new_path)
  in
  Softft.Experiments.print_bench_diff d;
  (* The gate standing down must never be silent: a mismatched host means
     the deltas carry no pass/fail information, so say so on stderr (the
     table goes to stdout and is easy to redirect away) — and let CI turn
     the mismatch itself into a failure. *)
  (match Softft.Experiments.bench_diff_host_warning d with
   | Some warning ->
     prerr_endline ("experiments bench-diff: " ^ warning);
     if require_same_host then begin
       prerr_endline
         "experiments bench-diff: --require-same-host: host mismatch is an \
          error";
       exit 1
     end
   | None -> ());
  if Softft.Experiments.bench_diff_regressions d <> [] then exit 1

let bench_old_arg =
  let doc =
    "Baseline BENCH_campaign.json — a file, or latest:$(i,DIR) for the \
     most recent bench snapshot ingested into the warehouse at $(i,DIR)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)

let bench_new_arg =
  let doc = "Freshly measured BENCH_campaign.json to compare against OLD." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)

let tolerance_arg =
  let doc =
    "Regression tolerance in percent: a gated trials/sec metric that drops \
     more than $(docv) percent flags a regression (nonzero exit)."
  in
  Arg.(value & opt float 15.0 & info [ "tolerance" ] ~docv:"PCT" ~doc)

let require_same_host_arg =
  let doc =
    "Treat a host_cores mismatch between the two runs as an error (exit 1) \
     instead of a warned stand-down of the regression gate."
  in
  Arg.(value & flag & info [ "require-same-host" ] ~doc)

let bench_diff_cmd =
  let doc =
    "Compare two BENCH_campaign.json runs per workload (trials/sec and \
     speedup deltas) and exit nonzero on a throughput regression beyond \
     the tolerance — but only when both runs report the same host_cores, \
     so numbers from different machines never fail the gate (a mismatch is \
     warned on stderr; $(b,--require-same-host) makes it fatal)."
  in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(
      const run_bench_diff $ bench_old_arg $ bench_new_arg $ tolerance_arg
      $ require_same_host_arg)

(* ------------------------------------------------------------------ *)
(* The campaign warehouse: ingest, history, diff-runs, regress, heatmap *)

let warehouse_dir_arg =
  let doc = "The campaign warehouse directory." in
  Arg.(
    required
    & opt (some string) None
    & info [ "warehouse"; "w" ] ~docv:"DIR" ~doc)

let warehouse_opt_arg =
  let doc =
    "Campaign warehouse directory, for resolving run keys and locating \
     journals."
  in
  Arg.(
    value & opt (some string) None & info [ "warehouse"; "w" ] ~docv:"DIR" ~doc)

let run_ingest dir files =
  let ingest_journal path =
    let manifest, _views = Faults.Journal.load path in
    let prog_digest =
      Option.map
        (fun p -> Warehouse.Store.prog_digest p.Softft.prog)
        (protected_of_manifest manifest)
    in
    match Warehouse.Store.ingest ?prog_digest ~dir path with
    | `Ingested e ->
      Printf.printf "filed      %s  %s\n" e.Warehouse.Store.e_key path
    | `Duplicate e ->
      Printf.printf "duplicate  %s  %s\n" e.Warehouse.Store.e_key path
  in
  let ingest_bench path =
    match
      Obs.Json.parse (In_channel.with_open_text path In_channel.input_all)
    with
    | j when Obs.Json.member "workloads" j <> None ->
      (match Warehouse.Store.ingest_bench ~dir path with
       | `Ingested rel -> Printf.printf "filed      %s  %s\n" rel path
       | `Duplicate rel -> Printf.printf "duplicate  %s  %s\n" rel path)
    | _ | (exception Obs.Json.Parse_error _) ->
      prerr_endline
        (Printf.sprintf
           "experiments ingest: %s is neither a campaign journal nor a \
            BENCH_campaign.json snapshot"
           path);
      exit 1
  in
  List.iter
    (fun path ->
      match ingest_journal path with
      | () -> ()
      | exception Faults.Journal.Malformed _ -> ingest_bench path
      | exception Sys_error msg ->
        prerr_endline ("experiments ingest: " ^ msg);
        exit 1)
    files

let ingest_files_arg =
  let doc =
    "Campaign journals (.jsonl) and/or BENCH_campaign.json snapshots to \
     file (auto-detected by content)."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)

let ingest_cmd =
  let doc =
    "File journals and bench snapshots into the campaign warehouse: \
     content-addressed by run key, so re-ingesting anything already filed \
     is a no-op."
  in
  Cmd.v
    (Cmd.info "ingest" ~doc)
    Term.(const run_ingest $ warehouse_dir_arg $ ingest_files_arg)

let label_matches_bench bench label =
  label = bench
  || (String.length label > String.length bench
      && String.sub label 0 (String.length bench + 1) = bench ^ "/")

let outcome_count (e : Warehouse.Store.entry) name =
  match List.assoc_opt name e.e_counts with Some n -> n | None -> 0

let outcome_rate e names =
  let k = List.fold_left (fun acc n -> acc + outcome_count e n) 0 names in
  100.0
  *. float_of_int k
  /. float_of_int (max 1 e.Warehouse.Store.e_trials)

let run_history dir bench tech =
  let want_tech =
    Option.map (fun t -> Softft.technique_name (technique_of_string t)) tech
  in
  let rows =
    List.filter
      (fun (e : Warehouse.Store.entry) ->
        label_matches_bench bench e.e_label
        && match want_tech with
           | None -> true
           | Some t -> e.e_technique = Some t)
      (Warehouse.Store.entries ~dir)
  in
  match rows with
  | [] ->
    Printf.printf "no runs for %s%s in %s\n" bench
      (match want_tech with Some t -> "/" ^ t | None -> "")
      dir
  | rows ->
    Softft.Report.print
      ~title:
        (Printf.sprintf "%s%s: %d run(s)" bench
           (match want_tech with Some t -> "/" ^ t | None -> "")
           (List.length rows))
      ~header:
        [ "#"; "key"; "technique"; "schema"; "trials"; "seed"; "ckpt";
          "SDC"; "detected"; "recovered"; "trials/s"; "git" ]
      ~rows:
        (List.map
           (fun (e : Warehouse.Store.entry) ->
             [ string_of_int e.e_seq;
               String.sub e.e_key 0 12;
               (match e.e_technique with Some t -> t | None -> "-");
               e.e_journal_schema;
               string_of_int e.e_trials;
               string_of_int e.e_seed;
               string_of_int e.e_checkpoint_interval;
               Obs.Stats.pp_pct e.e_sdc;
               Printf.sprintf "%.1f%%"
                 (outcome_rate e
                    [ "SWDetect"; "HWDetect"; "Recovered"; "Unrecoverable" ]);
               Printf.sprintf "%.1f%%" (outcome_rate e [ "Recovered" ]);
               (match e.e_trials_per_sec with
                | Some tps -> Printf.sprintf "%.0f" tps
                | None -> "-");
               (if String.length e.e_git > 8 then String.sub e.e_git 0 8
                else e.e_git) ])
           rows)

let history_bench_arg =
  let doc = "Benchmark whose run timeline to print." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let history_tech_arg =
  let doc = "Restrict to one technique (default: all)." in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"TECHNIQUE" ~doc)

let history_cmd =
  let doc =
    "Print a benchmark's run timeline from the warehouse: outcome rates \
     with Wilson 95% intervals, throughput and configuration provenance, \
     one row per ingested run."
  in
  Cmd.v
    (Cmd.info "history" ~doc)
    Term.(
      const run_history $ warehouse_dir_arg $ history_bench_arg
      $ history_tech_arg)

let diff_row_cells (r : Warehouse.Store.diff_row) =
  [ r.dr_name;
    Printf.sprintf "%d/%d" r.dr_old_k r.dr_old_n;
    Obs.Stats.pp_pct r.dr_old;
    Printf.sprintf "%d/%d" r.dr_new_k r.dr_new_n;
    Obs.Stats.pp_pct r.dr_new;
    Printf.sprintf "%+.1f"
      (100.0 *. (r.dr_new.Obs.Stats.ci_estimate -. r.dr_old.ci_estimate));
    (if r.dr_significant then "SIGNIFICANT" else "") ]

let diff_header = [ "outcome"; "old k/n"; "old"; "new k/n"; "new"; "Δpts"; "" ]

let run_diff_runs dir old_arg new_arg =
  let resolve a =
    match Warehouse.Store.resolve ?dir a with
    | p -> p
    | exception Failure msg ->
      prerr_endline ("experiments diff-runs: " ^ msg);
      exit 1
  in
  match
    Warehouse.Store.diff_runs ~old_path:(resolve old_arg)
      ~new_path:(resolve new_arg)
  with
  | exception Faults.Journal.Malformed msg ->
    prerr_endline ("experiments diff-runs: " ^ msg);
    exit 1
  | d ->
    Printf.printf "old: %s\nnew: %s\n" d.Warehouse.Store.df_old d.df_new;
    Softft.Report.print ~title:"outcome rates" ~header:diff_header
      ~rows:(List.map diff_row_cells (d.df_outcomes @ [ d.df_sdc ]));
    if d.df_strata <> [] then
      Softft.Report.print ~title:"per-stratum SDC" ~header:diff_header
        ~rows:(List.map diff_row_cells d.df_strata);
    let significant =
      List.filter
        (fun (r : Warehouse.Store.diff_row) -> r.dr_significant)
        ((d.df_sdc :: d.df_outcomes) @ d.df_strata)
    in
    Printf.printf
      "\n%d significant delta(s) (disjoint Wilson 95%% intervals)\n"
      (List.length significant)

let diff_old_arg =
  let doc = "Old run: a journal path, or a run key (prefix) resolved in \
             the warehouse."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)

let diff_new_arg =
  let doc = "New run: a journal path or warehouse run key (prefix)." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)

let diff_runs_cmd =
  let doc =
    "Diff two campaign runs outcome by outcome (plus per-stratum SDC on \
     adaptive journals).  A delta is significant only when the two Wilson \
     95% intervals are disjoint — a run diffed against itself reports \
     zero."
  in
  Cmd.v
    (Cmd.info "diff-runs" ~doc)
    Term.(const run_diff_runs $ warehouse_opt_arg $ diff_old_arg $ diff_new_arg)

let load_index path =
  match
    if Sys.file_exists path && Sys.is_directory path then
      Warehouse.Store.entries ~dir:path
    else Warehouse.Store.entries_of_file path
  with
  | entries -> entries
  | exception Failure msg ->
    prerr_endline ("experiments regress: " ^ msg);
    exit 1

let run_regress baseline current tolerance =
  let g =
    Warehouse.Store.regress ?tolerance_pct:tolerance
      ~baseline:(load_index baseline) ~current:(load_index current) ()
  in
  (match g.Warehouse.Store.rx_rows with
   | [] -> print_endline "no configuration present in both indexes"
   | rows ->
     Softft.Report.print ~title:"coverage gate"
       ~header:[ "configuration"; "old SDC"; "new SDC"; "Δpts"; "verdict" ]
       ~rows:
         (List.map
            (fun (r : Warehouse.Store.regress_row) ->
              [ r.rg_identity;
                Obs.Stats.pp_pct r.rg_sdc.Warehouse.Store.dr_old;
                Obs.Stats.pp_pct r.rg_sdc.dr_new;
                Printf.sprintf "%+.1f"
                  (100.0
                   *. (r.rg_sdc.dr_new.Obs.Stats.ci_estimate
                       -. r.rg_sdc.dr_old.ci_estimate));
                (if r.rg_regressed then "REGRESSED"
                 else if r.rg_improved then "improved"
                 else "ok")
                ^ (match r.rg_throughput_ratio with
                   | Some ratio -> Printf.sprintf "  (%.2fx trials/s)" ratio
                   | None -> "") ])
            rows));
  let list_only what entries =
    if entries <> [] then
      Printf.printf "%s only: %s\n" what
        (String.concat ", "
           (List.map
              (fun (e : Warehouse.Store.entry) -> e.e_label)
              entries))
  in
  list_only "baseline" g.rx_only_old;
  list_only "current" g.rx_only_new;
  match g.rx_failures with
  | [] -> print_endline "regress: gate green"
  | failures ->
    List.iter (fun m -> prerr_endline ("experiments regress: " ^ m)) failures;
    exit 1

let baseline_arg =
  let doc =
    "Baseline warehouse index: a directory, or an index.jsonl snapshot \
     (e.g. the committed WAREHOUSE_baseline.jsonl)."
  in
  Arg.(
    required & opt (some string) None & info [ "baseline" ] ~docv:"PATH" ~doc)

let current_arg =
  let doc = "Current warehouse index: a directory or an index.jsonl file." in
  Arg.(
    required & opt (some string) None & info [ "current" ] ~docv:"PATH" ~doc)

let regress_tolerance_arg =
  let doc =
    "Also gate throughput: fail when trials/s drops more than $(docv) \
     percent between runs on the same host_cores (default: coverage gate \
     only)."
  in
  Arg.(
    value & opt (some float) None & info [ "tolerance" ] ~docv:"PCT" ~doc)

let regress_cmd =
  let doc =
    "The cross-run regression gate: match baseline and current runs by \
     configuration identity and fail (exit 1) when any SDC rate rose with \
     disjoint Wilson 95% intervals — bench-diff generalised to coverage."
  in
  Cmd.v
    (Cmd.info "regress" ~doc)
    Term.(
      const run_regress $ baseline_arg $ current_arg $ regress_tolerance_arg)

let run_heatmap name technique_name journal warehouse csv html =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let pretty = Softft.technique_name technique in
  let journal_path =
    match journal, warehouse with
    | Some path, _ -> path
    | None, Some dir ->
      let matching =
        List.filter
          (fun (e : Warehouse.Store.entry) ->
            label_matches_bench w.Workloads.Workload.name e.e_label
            && e.e_technique = Some pretty)
          (Warehouse.Store.entries ~dir)
      in
      (match List.rev matching with
       | e :: _ -> Filename.concat dir e.Warehouse.Store.e_path
       | [] ->
         prerr_endline
           (Printf.sprintf
              "experiments heatmap: no %s/%s run in warehouse %s" w.name
              pretty dir);
         exit 1)
    | None, None ->
      prerr_endline
        "experiments heatmap: pass --journal FILE, or --warehouse DIR to \
         use the latest filed run";
      exit 1
  in
  match Faults.Journal.load journal_path with
  | exception Faults.Journal.Malformed msg ->
    prerr_endline ("experiments heatmap: " ^ msg);
    exit 1
  | manifest, views ->
    let expected = Printf.sprintf "%s/%s" w.name pretty in
    let label =
      match Option.bind (Obs.Json.member "label" manifest) Obs.Json.to_str
      with
      | Some l -> l
      | None -> expected
    in
    (* Injection attribution joins the journal's register numbers against
       this program's defining sites; a journal from a different program
       or technique would misbind silently, so refuse it. *)
    if not (label_matches_bench expected label) then begin
      prerr_endline
        (Printf.sprintf
           "experiments heatmap: journal %s records run %s, not %s"
           journal_path label expected);
      exit 1
    end;
    let p = Softft.protect w technique in
    let cov = Analysis.Coverage.analyze p.Softft.prog in
    let hm =
      Warehouse.Heatmap.build ~prog:p.Softft.prog ~cov ~label
        ~technique:pretty views
    in
    Printf.printf "%s  (%d trials, %d injected)\n"
      hm.Warehouse.Heatmap.hm_label hm.hm_trials hm.hm_injected;
    Printf.printf "static SDC-prone fraction %5.1f%%   measured SDC %s\n"
      (100.0 *. hm.hm_static_fraction)
      (Obs.Stats.pp_pct hm.hm_measured_sdc);
    let hot =
      List.filter (fun (s : Warehouse.Heatmap.site) -> s.s_total > 0)
        hm.hm_sites
      |> List.stable_sort
           (fun (a : Warehouse.Heatmap.site) (b : Warehouse.Heatmap.site) ->
             compare b.s_total a.s_total)
    in
    let shown = List.filteri (fun i _ -> i < 20) hot in
    Softft.Report.print
      ~title:
        (Printf.sprintf "hottest injection sites (%d of %d with hits)"
           (List.length shown) (List.length hot))
      ~header:
        [ "func"; "block"; "site"; "status"; "inj"; "SDC"; "det"; "mask";
          "other" ]
      ~rows:
        (List.map
           (fun (s : Warehouse.Heatmap.site) ->
             [ s.s_func; s.s_block; s.s_desc; s.s_status;
               string_of_int s.s_total; string_of_int s.s_sdc;
               string_of_int s.s_detected; string_of_int s.s_masked;
               string_of_int s.s_other ])
           shown);
    let write_file path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "written: %s\n" path
    in
    (match csv with
     | Some out -> write_file out (Warehouse.Heatmap.to_csv hm)
     | None -> ());
    (match html with
     | Some out -> write_file out (Warehouse.Heatmap.to_html hm)
     | None -> ())

let heatmap_journal_arg =
  let doc =
    "Join this journal (instead of the latest matching warehouse run)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let heatmap_csv_arg =
  let doc = "Write the full per-site table to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let heatmap_html_arg =
  let doc =
    "Render the annotated listing to $(docv) as a standalone HTML page."
  in
  Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc)

let heatmap_cmd =
  let doc =
    "Per-instruction SDC heatmap: join a campaign journal with the static \
     coverage map and show, for every defining site, how many injections \
     landed there and how they resolved (SDC / detected / masked) next to \
     the static protection status."
  in
  Cmd.v
    (Cmd.info "heatmap" ~doc)
    Term.(
      const run_heatmap $ name_arg $ technique_arg $ heatmap_journal_arg
      $ warehouse_opt_arg $ heatmap_csv_arg $ heatmap_html_arg)

let run_table1 () = Softft.Experiments.print_table1 ()

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the benchmark inventory (Table I).")
    Term.(const run_table1 $ const ())

let run_dump name technique_name =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  print_string (Ir.Printer.prog_to_string p.prog)

let dump_cmd =
  let doc = "Print the (optionally protected) IR of a benchmark." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run_dump $ name_arg $ technique_arg)

let run_trace name limit =
  let w = Workloads.Registry.find name in
  let prog = w.build () in
  let state = w.fresh_state Workloads.Workload.Test in
  let events, result =
    Interp.Trace.first_values ~limit prog ~entry:Workloads.Workload.entry
      ~args:state.args ~mem:state.mem
  in
  List.iter print_endline (Interp.Trace.render prog events);
  Format.printf "... run %a after %d steps@." Interp.Machine.pp_stop
    result.stop result.steps

let limit_arg =
  let doc = "How many produced values to trace." in
  Arg.(value & opt int 60 & info [ "limit"; "n" ] ~docv:"N" ~doc)

let trace_cmd =
  let doc = "Trace the first values a benchmark's kernel produces." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run_trace $ name_arg $ limit_arg)

let run_trace_fault name technique_name seed trial_index =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let subject = Softft.subject p ~role:Workloads.Workload.Test in
  let golden = Faults.Campaign.golden_run subject in
  let disabled = Hashtbl.create 8 in
  List.iter
    (fun uid -> Hashtbl.replace disabled uid ())
    golden.Faults.Campaign.failing_checks;
  (* The same seed discipline as a campaign, so `trace-fault --trial I`
     replays exactly the trial a journal records at index I. *)
  let seeds = Faults.Campaign.derive_seeds ~seed ~trials:(trial_index + 1) in
  let t =
    Faults.Campaign.run_trial ~taint_trace:true subject ~golden ~disabled
      ~hw_window:Faults.Classify.default_hw_window ~seed:seeds.(trial_index)
  in
  Printf.printf "%s / %s  trial %d  (seed %d)\n" w.name
    (Softft.technique_name technique)
    trial_index t.Faults.Campaign.trial_seed;
  (match t.Faults.Campaign.injection with
   | Some (inj : Interp.Machine.injection) ->
     Printf.printf "injection : step %d, r%d bit %d  (%s -> %s)\n"
       inj.inj_step inj.inj_reg inj.inj_bit
       (Ir.Value.to_string inj.before)
       (Ir.Value.to_string inj.after)
   | None -> print_endline "injection : (did not land)");
  Printf.printf "outcome   : %s  (%d steps, %d cycles)\n"
    (Faults.Classify.name t.Faults.Campaign.outcome)
    t.Faults.Campaign.steps t.Faults.Campaign.cycles;
  match t.Faults.Campaign.taint with
  | None -> print_endline "no propagation summary recorded"
  | Some (s : Interp.Taint.summary) ->
    let dist = function None -> "-" | Some d -> Printf.sprintf "+%d" d in
    Printf.printf "taint     : reg hwm %d, mem words %d, %d events\n"
      s.ts_reg_hwm s.ts_mem_words s.ts_events_total;
    Printf.printf
      "distances : first store %s, first branch %s, died %s, end %s\n"
      (dist s.ts_first_store) (dist s.ts_first_branch) (dist s.ts_died_at)
      (dist s.ts_end_distance);
    Printf.printf "output    : %s\n"
      (if s.ts_output_tainted then "TAINTED" else "clean");
    print_endline "\npropagation (distance from injection, event, site):";
    List.iter print_endline
      (Softft.Experiments.render_taint_events p.Softft.prog s);
    let shown = List.length s.ts_events in
    if s.ts_events_total > shown then
      Printf.printf "... %d further events not retained (limit %d)\n"
        (s.ts_events_total - shown)
        Interp.Taint.event_limit

let trial_index_arg =
  let doc = "Campaign trial index to replay (same seed discipline as `one')." in
  Arg.(value & opt int 0 & info [ "trial"; "i" ] ~docv:"INDEX" ~doc)

let trace_fault_cmd =
  let doc =
    "Replay one campaign trial with the fault-propagation tracer and \
     render how the injected fault flowed through the program."
  in
  Cmd.v
    (Cmd.info "trace-fault" ~doc)
    Term.(
      const run_trace_fault $ name_arg $ technique_arg $ seed_arg
      $ trial_index_arg)

let main_cmd =
  let doc =
    "Reproduction of `Harnessing Soft Computations for Low-budget Fault \
     Tolerance' (MICRO 2014)"
  in
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0.0" ~doc)
    [ all_cmd; crossval_cmd; one_cmd; campaign_cmd; coverage_cmd;
      optimize_cmd; lint_cmd;
      report_cmd; bench_diff_cmd; ingest_cmd; history_cmd; diff_runs_cmd;
      regress_cmd; heatmap_cmd; table1_cmd; dump_cmd; trace_cmd;
      trace_fault_cmd ]

let () = exit (Cmd.eval main_cmd)
