(** Command-line driver for full-scale reproduction campaigns.

    The bench harness ([bench/main.exe]) uses reduced trial counts so it
    finishes in minutes; this tool runs paper-scale campaigns (1000 trials
    per benchmark and technique, §IV-C) and the auxiliary studies. *)

open Cmdliner

let trials_arg =
  let doc = "Fault-injection trials per (benchmark, technique)." in
  Arg.(value & opt int 1000 & info [ "trials"; "t" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master random seed (campaigns are deterministic per seed)." in
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc)

let benchmarks_arg =
  let doc = "Comma-separated benchmark subset (default: all 13)." in
  Arg.(value & opt (some string) None & info [ "benchmarks"; "b" ] ~docv:"NAMES" ~doc)

(* [--domains] accepts a positive integer or the word "auto"; "auto"
   resolves to {!Faults.Pool.recommended_domains} at parse time, so every
   downstream consumer (campaigns, run_stats, journal manifests) sees the
   resolved count, never the sentinel. *)
let domains_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "auto" -> Ok (Faults.Pool.recommended_domains ())
    | s ->
      (match int_of_string_opt s with
       | Some n when n >= 1 -> Ok n
       | Some _ -> Error (`Msg "DOMAINS must be a positive integer or \"auto\"")
       | None ->
         Error
           (`Msg
              (Printf.sprintf
                 "invalid domain count %S (expected an integer or \"auto\")" s)))
  in
  Cmdliner.Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  let doc =
    "Worker domains per campaign: a positive integer, or $(b,auto) for the \
     recommended domain count of this machine (the default; 1 = serial).  \
     Results are bit-identical for any value."
  in
  Arg.(
    value
    & opt domains_conv (Faults.Pool.recommended_domains ())
    & info [ "domains"; "j" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Only log warnings and errors." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let log_json_arg =
  let doc = "Also append structured log events to $(docv) as JSON lines." in
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"FILE" ~doc)

let resolve_benchmarks = function
  | None -> Workloads.Registry.all
  | Some names ->
    List.map Workloads.Registry.find (String.split_on_char ',' names)

(** Structured logger for the process: pretty events on stderr (warnings
    only under [--quiet]), plus an optional JSONL sink. *)
let logger_of quiet log_json =
  let level = if quiet then Obs.Log.Warn else Obs.Log.Info in
  let log = Obs.Log.make ~level ~sinks:[ Obs.Log.stderr_sink () ] "experiments" in
  (match log_json with
   | Some path ->
     let oc = open_out path in
     at_exit (fun () -> close_out_noerr oc);
     Obs.Log.add_sink log (Obs.Log.jsonl_sink oc)
   | None -> ());
  log

let technique_of_string s =
  match String.lowercase_ascii s with
  | "original" -> Softft.Original
  | "dup" | "dup_only" -> Softft.Dup_only
  | "dupval" | "dup_valchk" -> Softft.Dup_valchk
  | "full" | "full_dup" -> Softft.Full_dup
  | "cfc" -> Softft.Cfc_only
  | "dupvalcfc" -> Softft.Dup_valchk_cfc
  | other ->
    invalid_arg
      (Printf.sprintf
         "unknown technique %S (original|dup|dupval|full|cfc|dupvalcfc)"
         other)

let run_all trials seed benchmarks domains quiet log_json =
  let log = logger_of quiet log_json in
  let workloads = resolve_benchmarks benchmarks in
  let results =
    Softft.Experiments.evaluate ~trials ~seed ~log ~domains workloads
  in
  Softft.Experiments.print_table1 ();
  Softft.Experiments.print_table2 ();
  Softft.Experiments.print_fig2 results;
  Softft.Experiments.print_fig10 results;
  Softft.Experiments.print_fig11 results;
  Softft.Experiments.print_fig12 results;
  Softft.Experiments.print_fig13 results;
  Softft.Experiments.print_falsepos results;
  Softft.Experiments.print_headline results;
  Printf.printf
    "\n(95%% confidence margin of error at %d trials: +-%.1f points)\n" trials
    (100.0 *. Softft.margin_of_error ~trials ~proportion:0.5)

let all_cmd =
  let doc = "Run every table and figure of the paper's evaluation." in
  Cmd.v
    (Cmd.info "all" ~doc)
    Term.(
      const run_all $ trials_arg $ seed_arg $ benchmarks_arg $ domains_arg
      $ quiet_arg $ log_json_arg)

let run_crossval trials seed domains quiet =
  ignore quiet;
  let rows = Softft.Experiments.crossval ~trials ~seed ~domains () in
  Softft.Experiments.print_crossval rows

let crossval_cmd =
  let doc =
    "Cross-validation (paper \xc2\xa7V): profile on the test input and inject \
     on the train input, for jpegdec and kmeans."
  in
  Cmd.v
    (Cmd.info "crossval" ~doc)
    Term.(const run_crossval $ trials_arg $ seed_arg $ domains_arg $ quiet_arg)

let run_one name technique_name trials seed domains checkpoint taint
    progress progress_jsonl journal timeline profile_flag quiet log_json =
  let log = logger_of quiet log_json in
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let golden =
    Softft.golden p ~checkpoint_interval:checkpoint
      ~role:Workloads.Workload.Test
  in
  Printf.printf "%s / %s\n" w.name (Softft.technique_name technique);
  Printf.printf "  static instrs (orig) : %d\n" p.static_stats.original_instrs;
  Printf.printf "  state variables      : %d\n" p.static_stats.state_vars;
  Printf.printf "  duplicated instrs    : %d\n" p.static_stats.duplicated_instrs;
  Printf.printf "  value checks         : %d\n" p.static_stats.value_checks;
  Printf.printf "  golden steps/cycles  : %d / %d\n" golden.steps golden.cycles;
  Printf.printf "  false positives      : %d\n" golden.false_positives;
  let profile =
    if profile_flag then Some (Interp.Profile.create ()) else None
  in
  let stats = ref None in
  let progress_oc = Option.map open_out progress_jsonl in
  let sinks =
    (if progress then [ Faults.Progress.stderr_sink () ] else [])
    @ (match progress_oc with
       | Some oc -> [ Faults.Progress.jsonl_sink oc ]
       | None -> [])
  in
  let pg =
    match sinks with
    | [] -> None
    | _ :: _ -> Some (Faults.Progress.create ~sinks ~total:trials ())
  in
  let trace = Option.map (fun _ -> Obs.Trace.recorder ()) timeline in
  let summary, results =
    Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed ~domains
      ~checkpoint_interval:checkpoint ~taint_trace:taint ?profile
      ~stats_out:stats ?progress:pg ?trace
  in
  (match progress_oc with Some oc -> close_out oc | None -> ());
  List.iter
    (fun outcome ->
      Printf.printf "  %-13s : %5.1f%%\n"
        (Faults.Classify.name outcome)
        (Faults.Campaign.percent summary outcome))
    Faults.Classify.all;
  (match journal with
   | Some path ->
     let manifest =
       Faults.Journal.manifest_record
         ~technique:(Softft.technique_name technique)
         ?stats:!stats ~counts:summary.Faults.Campaign.counts
         ~label:(Printf.sprintf "%s/%s/test" w.name
                   (Softft.technique_name technique))
         ~trials ~seed ~domains ~checkpoint_interval:checkpoint
         ~taint_trace:taint ~hw_window:Faults.Classify.default_hw_window
         ~fault_kind:"register_bit"
         ~golden:summary.Faults.Campaign.golden_info ()
     in
     Faults.Journal.write ?trace ~path ~manifest ~trials:results ();
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("trials", Obs.Json.Int (List.length results)) ]
       "journal written"
   | None -> ());
  (match timeline, trace with
   | Some path, Some r ->
     Obs.Trace.write_chrome r ~path;
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("spans", Obs.Json.Int (List.length (Obs.Trace.durs r))) ]
       "timeline written"
   | _, _ -> ());
  match profile with
  | Some prof -> Softft.Experiments.print_profile prof
  | None -> ()

let name_arg =
  let doc = "Benchmark name (see `table1')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let technique_arg =
  let doc = "Protection technique: original, dup, dupval, full, cfc or dupvalcfc." in
  Arg.(value & pos 1 string "dupval" & info [] ~docv:"TECHNIQUE" ~doc)

let journal_arg =
  let doc =
    "Write a trial journal to $(docv): one JSON line per trial, preceded \
     by a campaign manifest.  Aggregate it later with the `report' command."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let checkpoint_arg =
  let doc =
    "Enable checkpoint/rollback recovery with a checkpoint every $(docv) \
     dynamic instructions (0 = off).  Trials whose software check fires \
     then roll back and replay, reclassifying as Recovered/Unrecoverable."
  in
  Arg.(value & opt int 0 & info [ "checkpoint"; "k" ] ~docv:"INTERVAL" ~doc)

let profile_arg =
  let doc =
    "Collect an execution profile over all trials (dynamic opcode mix, hot \
     blocks, check firings) and print it after the campaign.  \
     Observation-only: trial outcomes are bit-identical either way."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let taint_arg =
  let doc =
    "Trace fault propagation: every trial carries a shadow taint bit per \
     register and memory word, seeded at the injection, and records a \
     propagation summary in the journal (schema v3).  Observation-only: \
     outcomes and costs are bit-identical either way."
  in
  Arg.(value & flag & info [ "taint" ] ~doc)

let progress_arg =
  let doc =
    "Print a live heartbeat to stderr while the campaign runs: trials \
     done/total, per-outcome running counts, trials/sec and ETA."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let progress_jsonl_arg =
  let doc =
    "Also stream campaign progress snapshots to $(docv) as JSON lines \
     (one {\"type\":\"progress\",...} record per heartbeat)."
  in
  Arg.(value & opt (some string) None & info [ "progress-jsonl" ] ~docv:"FILE" ~doc)

let timeline_arg =
  let doc =
    "Record the campaign flight recorder and write a Chrome trace-event \
     timeline to $(docv) (load it in Perfetto or chrome://tracing): \
     golden-run/fork-capture/trial-phase spans plus every worker domain's \
     chunk claims.  Observation-only: results are bit-identical either way."
  in
  Arg.(
    value & opt (some string) None
    & info [ "trace-timeline" ] ~docv:"FILE" ~doc)

let one_cmd =
  let doc = "Protect one benchmark and run a campaign against it." in
  Cmd.v
    (Cmd.info "one" ~doc)
    Term.(
      const run_one $ name_arg $ technique_arg $ trials_arg $ seed_arg
      $ domains_arg $ checkpoint_arg $ taint_arg $ progress_arg
      $ progress_jsonl_arg $ journal_arg $ timeline_arg $ profile_arg
      $ quiet_arg $ log_json_arg)

(* `campaign` generalizes `one`: the uniform path is the same
   [Softft.campaign] call (trials and journals are bit-identical to
   `one`'s at any --domains), and --adaptive switches to the stratified
   scheduler of DESIGN.md §14 — static-coverage × ring-residency strata,
   Neyman allocation, per-stratum early stopping, mass-reweighted
   whole-program rates. *)
let run_campaign name technique_name adaptive ci trials max_trials bands
    seed domains checkpoint progress progress_jsonl journal timeline quiet
    log_json =
  let log = logger_of quiet log_json in
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  Printf.printf "%s / %s%s\n" w.name
    (Softft.technique_name technique)
    (if adaptive then
       Printf.sprintf "  (adaptive, target SDC half-width %.4f)" ci
     else "");
  let stats = ref None in
  let progress_oc = Option.map open_out progress_jsonl in
  let sinks =
    (if progress then [ Faults.Progress.stderr_sink () ] else [])
    @ (match progress_oc with
       | Some oc -> [ Faults.Progress.jsonl_sink oc ]
       | None -> [])
  in
  let trace = Option.map (fun _ -> Obs.Trace.recorder ()) timeline in
  let summary, results, adaptive_out =
    if not adaptive then begin
      let pg =
        match sinks with
        | [] -> None
        | _ :: _ -> Some (Faults.Progress.create ~sinks ~total:trials ())
      in
      let summary, results =
        Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed
          ~domains ~checkpoint_interval:checkpoint ~stats_out:stats
          ?progress:pg ?trace
      in
      (summary, results, None)
    end
    else begin
      let cov = Analysis.Coverage.analyze p.Softft.prog in
      let groups = Analysis.Strata.reg_groups p.Softft.prog cov in
      let priors = Analysis.Strata.priors cov in
      let subj = Softft.subject p ~role:Workloads.Workload.Test in
      let progress_for =
        match sinks with
        | [] -> None
        | _ :: _ ->
          Some
            (fun ~nstrata ~total ->
              Faults.Progress.create ~sinks ~strata:nstrata ~total ())
      in
      let summary, results, ad =
        Faults.Campaign.run_adaptive ~seed ~domains
          ~checkpoint_interval:checkpoint ~stats_out:stats ?progress_for
          ?trace ~bands ~max_trials ~groups
          ~group_names:Analysis.Strata.group_names ~priors ~ci subj
      in
      (summary, results, Some ad)
    end
  in
  (match progress_oc with Some oc -> close_out oc | None -> ());
  List.iter
    (fun outcome ->
      Printf.printf "  %-13s : %5.1f%%\n"
        (Faults.Classify.name outcome)
        (Faults.Campaign.percent summary outcome))
    Faults.Classify.all;
  (match adaptive_out with
   | Some (ad : Faults.Campaign.adaptive) ->
     Printf.printf "  strata               : %d (+ empty-ring mass %.4f)\n"
       (Array.length ad.ad_strata) ad.ad_mass_empty;
     Array.iter
       (fun (ss : Faults.Campaign.stratum_stats) ->
         let s = ss.ss_stratum in
         let k =
           List.fold_left
             (fun acc (o, n) ->
               if Faults.Classify.is_sdc o then acc + n else acc)
             0 ss.ss_counts
         in
         Printf.printf
           "    #%d %-13s band %d [%d,%d)  mass %.4f  trials %4d  SDC %s\n"
           s.Faults.Campaign.st_id s.st_group_name s.st_band s.st_lo
           s.st_hi s.st_mass ss.ss_trials
           (Obs.Stats.pp_pct (Obs.Stats.wilson ~k ~n:ss.ss_trials ())))
       ad.ad_strata;
     Printf.printf "  SDC rate (reweighted): %.4f [%.4f, %.4f]\n"
       ad.ad_sdc.Obs.Stats.ci_estimate ad.ad_sdc.ci_low ad.ad_sdc.ci_high;
     Printf.printf
       "  trials               : %d (planned uniform: %d, %.1fx saved; \
        oracle uniform: %d)\n"
       ad.ad_trials ad.ad_equiv_uniform
       (float_of_int ad.ad_equiv_uniform
        /. float_of_int (max 1 ad.ad_trials))
       ad.ad_oracle_uniform
   | None -> ());
  (match journal with
   | Some path ->
     let manifest =
       Faults.Journal.manifest_record
         ~technique:(Softft.technique_name technique)
         ?stats:!stats ~counts:summary.Faults.Campaign.counts
         ?adaptive:adaptive_out
         ~label:(Printf.sprintf "%s/%s/test" w.name
                   (Softft.technique_name technique))
         ~trials:summary.Faults.Campaign.trials ~seed ~domains
         ~checkpoint_interval:checkpoint
         ~hw_window:Faults.Classify.default_hw_window
         ~fault_kind:"register_bit"
         ~golden:summary.Faults.Campaign.golden_info ()
     in
     Faults.Journal.write ?trace ~path ~manifest ~trials:results ();
     Obs.Log.info log
       ~fields:
         [ ("path", Obs.Json.Str path);
           ("trials", Obs.Json.Int (List.length results)) ]
       "journal written"
   | None -> ());
  match timeline, trace with
  | Some path, Some r ->
    Obs.Trace.write_chrome r ~path;
    Obs.Log.info log
      ~fields:
        [ ("path", Obs.Json.Str path);
          ("spans", Obs.Json.Int (List.length (Obs.Trace.durs r))) ]
      "timeline written"
  | _, _ -> ()

let adaptive_arg =
  let doc =
    "Adaptive stratified campaign (DESIGN.md §14): partition the injection \
     space by static protection coverage and ring residency, allocate \
     trials Neyman-style, stop each stratum once its Wilson interval is \
     tight, and reweight by stratum mass into unbiased whole-program rates."
  in
  Arg.(value & flag & info [ "adaptive" ] ~doc)

let ci_arg =
  let doc =
    "Target half-width of the whole-program SDC 95% interval — the \
     adaptive stopping rule (implies nothing in uniform mode)."
  in
  Arg.(value & opt float 0.01 & info [ "ci" ] ~docv:"HALF_WIDTH" ~doc)

let max_trials_arg =
  let doc = "Adaptive trial budget cap." in
  Arg.(value & opt int 100_000 & info [ "max-trials" ] ~docv:"N" ~doc)

let bands_arg =
  let doc = "Residency bands per protection group (adaptive strata)." in
  Arg.(value & opt int 3 & info [ "bands" ] ~docv:"N" ~doc)

let campaign_cmd =
  let doc =
    "Run a fault campaign: uniform sampling by default, or --adaptive \
     stratified sampling with per-stratum early stopping."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const run_campaign $ name_arg $ technique_arg $ adaptive_arg $ ci_arg
      $ trials_arg $ max_trials_arg $ bands_arg $ seed_arg $ domains_arg
      $ checkpoint_arg $ progress_arg $ progress_jsonl_arg $ journal_arg
      $ timeline_arg $ quiet_arg $ log_json_arg)

let run_coverage name technique_name dynamic csv regs_csv journal =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let exec_counts =
    if not dynamic then None
    else begin
      (* Weight exposure by real block execution counts from a golden run. *)
      let prof = Interp.Profile.create () in
      let (_ : Faults.Campaign.golden) =
        Softft.golden ~profile:prof p ~role:Workloads.Workload.Test
      in
      Some (Interp.Profile.func_block_counts prof)
    end
  in
  let cov = Analysis.Coverage.analyze ?exec_counts p.Softft.prog in
  let label =
    Printf.sprintf "%s/%s" w.name (Softft.technique_name technique)
  in
  Softft.Experiments.print_coverage ~label cov;
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "written: %s\n" path
  in
  (match csv with
   | Some out -> write_file out (Softft.Experiments.coverage_csv cov)
   | None -> ());
  (match regs_csv with
   | Some out -> write_file out (Softft.Experiments.coverage_reg_csv cov)
   | None -> ());
  match journal with
  | None -> ()
  | Some path ->
    (match Faults.Journal.load path with
     | exception Faults.Journal.Malformed msg ->
       prerr_endline ("experiments coverage: " ^ msg);
       exit 1
     | _manifest, views ->
       Softft.Experiments.print_coverage_vs_journal cov views)

let dynamic_arg =
  let doc =
    "Weight register exposure by dynamic block execution counts from a \
     fault-free golden run (default: static weight 1 per block)."
  in
  Arg.(value & flag & info [ "dynamic" ] ~doc)

let coverage_csv_arg =
  let doc = "Export the per-instruction classification to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let regs_csv_arg =
  let doc = "Export the per-register exposure table to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "regs-csv" ] ~docv:"FILE" ~doc)

let coverage_journal_arg =
  let doc =
    "Validate the static prediction against a trial journal (produced by \
     `one --journal' for the same benchmark and technique): buckets every \
     injected trial by the protection status of the register it hit."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let coverage_cmd =
  let doc =
    "Static protection-coverage analysis: classify every instruction and \
     register of a protected benchmark and estimate the SDC-prone fraction \
     without running a campaign."
  in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      const run_coverage $ name_arg $ technique_arg $ dynamic_arg
      $ coverage_csv_arg $ regs_csv_arg $ coverage_journal_arg)

(* Every pipeline configuration the lint must hold for; mirrors the
   property suite in test/test_lint.ml. *)
let lint_configurations =
  [ ("original", Softft.Original, true, true);
    ("dup", Softft.Dup_only, true, true);
    ("dupval", Softft.Dup_valchk, true, true);
    ("dupval-no-opt1", Softft.Dup_valchk, false, true);
    ("dupval-no-opt2", Softft.Dup_valchk, true, false);
    ("full", Softft.Full_dup, true, true);
    ("cfc", Softft.Cfc_only, true, true);
    ("dupvalcfc", Softft.Dup_valchk_cfc, true, true) ]

let run_lint benchmarks =
  let workloads = resolve_benchmarks benchmarks in
  let failures = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (config, technique, opt1, opt2) ->
          match Softft.protect ~lint:true ~opt1 ~opt2 w technique with
          | (_ : Softft.protected) ->
            Printf.printf "ok   %-10s %s\n" w.name config
          | exception Analysis.Lint.Error issues ->
            incr failures;
            Printf.printf "FAIL %-10s %s\n" w.name config;
            List.iter
              (fun issue ->
                Format.printf "  %a@." Analysis.Lint.pp_issue issue)
              issues
          | exception Ir.Verifier.Invalid err ->
            incr failures;
            Format.printf "FAIL %-10s %s@.  verifier: %a@." w.name config
              Ir.Verifier.pp_error err)
        lint_configurations)
    workloads;
  if !failures > 0 then begin
    Printf.printf "\n%d configuration(s) failed the lint\n" !failures;
    exit 1
  end
  else print_endline "\nall configurations lint-clean"

let lint_cmd =
  let doc =
    "Run the transform-invariant lint over every pipeline configuration \
     of the selected benchmarks; exits nonzero on any violation."
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run_lint $ benchmarks_arg)

(* Rebuild the coverage map a journal's campaign corresponds to, from the
   manifest's label ("workload/technique/role") and pretty technique name —
   the --strata join needs the per-register protection statuses, which the
   journal itself does not carry. *)
let coverage_of_manifest manifest =
  let pretty_technique =
    List.find_opt
      (fun t ->
        Option.bind (Obs.Json.member "technique" manifest) Obs.Json.to_str
        = Some (Softft.technique_name t))
      Softft.extended_techniques
  in
  let workload =
    Option.bind (Obs.Json.member "label" manifest) Obs.Json.to_str
    |> Option.map (fun label ->
           match String.index_opt label '/' with
           | Some i -> String.sub label 0 i
           | None -> label)
  in
  match workload, pretty_technique with
  | Some name, Some technique ->
    (try
       let w = Workloads.Registry.find name in
       let p = Softft.protect w technique in
       Some (Analysis.Coverage.analyze p.Softft.prog)
     with _ -> None)
  | _, _ -> None

let run_report path strata csv =
  match Faults.Journal.load path with
  | exception Faults.Journal.Malformed msg ->
    (* A journal without a manifest (or with broken lines) is an error the
       caller should see, not an empty report. *)
    prerr_endline ("experiments report: " ^ msg);
    exit 1
  | manifest, views ->
    Softft.Experiments.print_journal_report ~manifest views;
    (if strata then
       match coverage_of_manifest manifest with
       | Some cov -> Softft.Experiments.print_journal_strata cov views
       | None ->
         prerr_endline
           "experiments report: --strata needs a manifest whose label and \
            technique match a registered workload; skipping strata table");
    (match csv with
     | Some out ->
       let oc = open_out out in
       output_string oc (Softft.Experiments.journal_check_csv views);
       close_out oc;
       Printf.printf "\nper-check CSV written to %s\n" out
     | None -> ())

let journal_path_arg =
  let doc = "Trial journal produced by `one --journal'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL" ~doc)

let csv_arg =
  let doc = "Export the per-check firing table to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let strata_arg =
  let doc =
    "Join the journal with the static protection-coverage map (the \
     manifest names the workload and technique) and print per-register \
     strata — SDC/detected/masked rates with Wilson 95% intervals per \
     protection status of the register the fault hit."
  in
  Arg.(value & flag & info [ "strata" ] ~doc)

let report_cmd =
  let doc =
    "Aggregate a trial journal: outcome shares with Wilson 95% intervals, \
     detection-latency histogram, and per-check firing tables."
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ journal_path_arg $ strata_arg $ csv_arg)

let run_bench_diff old_path new_path tolerance require_same_host =
  let load path =
    match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all)
    with
    | j -> j
    | exception Obs.Json.Parse_error msg ->
      prerr_endline
        (Printf.sprintf "experiments bench-diff: %s: %s" path msg);
      exit 1
    | exception Sys_error msg ->
      prerr_endline ("experiments bench-diff: " ^ msg);
      exit 1
  in
  let d =
    Softft.Experiments.bench_diff ~tolerance_pct:tolerance (load old_path)
      (load new_path)
  in
  Softft.Experiments.print_bench_diff d;
  (* The gate standing down must never be silent: a mismatched host means
     the deltas carry no pass/fail information, so say so on stderr (the
     table goes to stdout and is easy to redirect away) — and let CI turn
     the mismatch itself into a failure. *)
  (match Softft.Experiments.bench_diff_host_warning d with
   | Some warning ->
     prerr_endline ("experiments bench-diff: " ^ warning);
     if require_same_host then begin
       prerr_endline
         "experiments bench-diff: --require-same-host: host mismatch is an \
          error";
       exit 1
     end
   | None -> ());
  if Softft.Experiments.bench_diff_regressions d <> [] then exit 1

let bench_old_arg =
  let doc = "Baseline BENCH_campaign.json (e.g. the committed one)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)

let bench_new_arg =
  let doc = "Freshly measured BENCH_campaign.json to compare against OLD." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)

let tolerance_arg =
  let doc =
    "Regression tolerance in percent: a gated trials/sec metric that drops \
     more than $(docv) percent flags a regression (nonzero exit)."
  in
  Arg.(value & opt float 15.0 & info [ "tolerance" ] ~docv:"PCT" ~doc)

let require_same_host_arg =
  let doc =
    "Treat a host_cores mismatch between the two runs as an error (exit 1) \
     instead of a warned stand-down of the regression gate."
  in
  Arg.(value & flag & info [ "require-same-host" ] ~doc)

let bench_diff_cmd =
  let doc =
    "Compare two BENCH_campaign.json runs per workload (trials/sec and \
     speedup deltas) and exit nonzero on a throughput regression beyond \
     the tolerance — but only when both runs report the same host_cores, \
     so numbers from different machines never fail the gate (a mismatch is \
     warned on stderr; $(b,--require-same-host) makes it fatal)."
  in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(
      const run_bench_diff $ bench_old_arg $ bench_new_arg $ tolerance_arg
      $ require_same_host_arg)

let run_table1 () = Softft.Experiments.print_table1 ()

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the benchmark inventory (Table I).")
    Term.(const run_table1 $ const ())

let run_dump name technique_name =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  print_string (Ir.Printer.prog_to_string p.prog)

let dump_cmd =
  let doc = "Print the (optionally protected) IR of a benchmark." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run_dump $ name_arg $ technique_arg)

let run_trace name limit =
  let w = Workloads.Registry.find name in
  let prog = w.build () in
  let state = w.fresh_state Workloads.Workload.Test in
  let events, result =
    Interp.Trace.first_values ~limit prog ~entry:Workloads.Workload.entry
      ~args:state.args ~mem:state.mem
  in
  List.iter print_endline (Interp.Trace.render prog events);
  Format.printf "... run %a after %d steps@." Interp.Machine.pp_stop
    result.stop result.steps

let limit_arg =
  let doc = "How many produced values to trace." in
  Arg.(value & opt int 60 & info [ "limit"; "n" ] ~docv:"N" ~doc)

let trace_cmd =
  let doc = "Trace the first values a benchmark's kernel produces." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run_trace $ name_arg $ limit_arg)

let run_trace_fault name technique_name seed trial_index =
  let w = Workloads.Registry.find name in
  let technique = technique_of_string technique_name in
  let p = Softft.protect w technique in
  let subject = Softft.subject p ~role:Workloads.Workload.Test in
  let golden = Faults.Campaign.golden_run subject in
  let disabled = Hashtbl.create 8 in
  List.iter
    (fun uid -> Hashtbl.replace disabled uid ())
    golden.Faults.Campaign.failing_checks;
  (* The same seed discipline as a campaign, so `trace-fault --trial I`
     replays exactly the trial a journal records at index I. *)
  let seeds = Faults.Campaign.derive_seeds ~seed ~trials:(trial_index + 1) in
  let t =
    Faults.Campaign.run_trial ~taint_trace:true subject ~golden ~disabled
      ~hw_window:Faults.Classify.default_hw_window ~seed:seeds.(trial_index)
  in
  Printf.printf "%s / %s  trial %d  (seed %d)\n" w.name
    (Softft.technique_name technique)
    trial_index t.Faults.Campaign.trial_seed;
  (match t.Faults.Campaign.injection with
   | Some (inj : Interp.Machine.injection) ->
     Printf.printf "injection : step %d, r%d bit %d  (%s -> %s)\n"
       inj.inj_step inj.inj_reg inj.inj_bit
       (Ir.Value.to_string inj.before)
       (Ir.Value.to_string inj.after)
   | None -> print_endline "injection : (did not land)");
  Printf.printf "outcome   : %s  (%d steps, %d cycles)\n"
    (Faults.Classify.name t.Faults.Campaign.outcome)
    t.Faults.Campaign.steps t.Faults.Campaign.cycles;
  match t.Faults.Campaign.taint with
  | None -> print_endline "no propagation summary recorded"
  | Some (s : Interp.Taint.summary) ->
    let dist = function None -> "-" | Some d -> Printf.sprintf "+%d" d in
    Printf.printf "taint     : reg hwm %d, mem words %d, %d events\n"
      s.ts_reg_hwm s.ts_mem_words s.ts_events_total;
    Printf.printf
      "distances : first store %s, first branch %s, died %s, end %s\n"
      (dist s.ts_first_store) (dist s.ts_first_branch) (dist s.ts_died_at)
      (dist s.ts_end_distance);
    Printf.printf "output    : %s\n"
      (if s.ts_output_tainted then "TAINTED" else "clean");
    print_endline "\npropagation (distance from injection, event, site):";
    List.iter print_endline
      (Softft.Experiments.render_taint_events p.Softft.prog s);
    let shown = List.length s.ts_events in
    if s.ts_events_total > shown then
      Printf.printf "... %d further events not retained (limit %d)\n"
        (s.ts_events_total - shown)
        Interp.Taint.event_limit

let trial_index_arg =
  let doc = "Campaign trial index to replay (same seed discipline as `one')." in
  Arg.(value & opt int 0 & info [ "trial"; "i" ] ~docv:"INDEX" ~doc)

let trace_fault_cmd =
  let doc =
    "Replay one campaign trial with the fault-propagation tracer and \
     render how the injected fault flowed through the program."
  in
  Cmd.v
    (Cmd.info "trace-fault" ~doc)
    Term.(
      const run_trace_fault $ name_arg $ technique_arg $ seed_arg
      $ trial_index_arg)

let main_cmd =
  let doc =
    "Reproduction of `Harnessing Soft Computations for Low-budget Fault \
     Tolerance' (MICRO 2014)"
  in
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0.0" ~doc)
    [ all_cmd; crossval_cmd; one_cmd; campaign_cmd; coverage_cmd; lint_cmd;
      report_cmd; bench_diff_cmd; table1_cmd; dump_cmd; trace_cmd;
      trace_fault_cmd ]

let () = exit (Cmd.eval main_cmd)
