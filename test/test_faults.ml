(** Tests for the fault library: outcome classification and campaigns. *)

open Ir

(* A small subject: sums an input array into an output cell, loop-carried
   accumulator; acceptable if the single output cell is within 10%. *)
let array_sum_subject ?(n = 64) ?(prog = None) () =
  let build () =
    let prog = Prog.create () in
    let b = Builder.create prog ~name:"main" ~n_params:3 in
    let src = Builder.param b 0 in
    let len = Builder.param b 1 in
    let out = Builder.param b 2 in
    let s =
      Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:len ~init:(Builder.imm 0)
        ~body:(fun ~i acc -> Builder.add b acc (Builder.geti b src i))
    in
    Builder.seti b out (Builder.imm 0) s;
    Builder.ret b s;
    Builder.finish b;
    prog
  in
  let prog = match prog with Some p -> p | None -> build () in
  let fresh_state () =
    let mem = Interp.Memory.create () in
    let data = Array.init n (fun i -> (i * 13 mod 50) + 1) in
    let src = Interp.Memory.alloc_ints mem data in
    let out = Interp.Memory.alloc mem 1 in
    { Faults.Campaign.mem;
      args = [ Value.of_int src; Value.of_int n; Value.of_int out ];
      read_output =
        (fun (_ : Value.t option) ->
          Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out 1)) }
  in
  { Faults.Campaign.label = "array_sum"; prog; entry = "main"; fresh_state;
    metric = Fidelity.Metric.mismatch_spec 0.0 }

(* ----- Classification ----- *)

let mk_result stop ~steps ~inj_step : Interp.Machine.result =
  { stop; steps; cycles = steps; valchk_failures = 0; failed_check_uids = [];
    injection =
      Some { Interp.Machine.inj_step; inj_kind = Interp.Machine.Register_bit;
             inj_reg = 0; inj_bit = 3;
             before = Value.of_int 0; after = Value.of_int 8 };
    recovered = None; rollback_denied = false; checkpoints = 0; taint = None }

let classify ?(identical = false) ?(acceptable = false) result =
  Faults.Classify.classify ~hw_window:1000 ~result
    ~identical:(fun () -> identical)
    ~acceptable:(fun () -> acceptable)

let test_classify_masked () =
  let r = mk_result (Interp.Machine.Finished None) ~steps:100 ~inj_step:50 in
  Alcotest.(check string) "masked" "Masked"
    (Faults.Classify.name (classify ~identical:true r))

let test_classify_asdc () =
  let r = mk_result (Interp.Machine.Finished None) ~steps:100 ~inj_step:50 in
  Alcotest.(check string) "asdc" "ASDC"
    (Faults.Classify.name (classify ~acceptable:true r))

let test_classify_usdc_small () =
  let r = mk_result (Interp.Machine.Finished None) ~steps:100 ~inj_step:50 in
  Alcotest.(check string) "usdc small" "USDC(small)"
    (Faults.Classify.name (classify r))

let test_classify_usdc_large () =
  let r =
    { (mk_result (Interp.Machine.Finished None) ~steps:100 ~inj_step:50) with
      injection =
        Some { Interp.Machine.inj_step = 50;
               inj_kind = Interp.Machine.Register_bit; inj_reg = 0;
               inj_bit = 40;
               before = Value.of_int 0; after = Value.Int 1099511627776L } }
  in
  Alcotest.(check string) "usdc large" "USDC(large)"
    (Faults.Classify.name (classify r))

let test_classify_hw_window () =
  let trap = Interp.Machine.Trapped (Interp.Machine.Segfault 1) in
  let within = mk_result trap ~steps:500 ~inj_step:100 in
  let beyond = mk_result trap ~steps:5000 ~inj_step:100 in
  Alcotest.(check string) "within window" "HWDetect"
    (Faults.Classify.name (classify within));
  Alcotest.(check string) "beyond window" "Failure"
    (Faults.Classify.name (classify beyond))

let test_classify_sw_and_fuel () =
  let sw =
    mk_result
      (Interp.Machine.Sw_detected { check_uid = 7; dup_check = true })
      ~steps:100 ~inj_step:50
  in
  let fuel = mk_result Interp.Machine.Out_of_fuel ~steps:100 ~inj_step:50 in
  Alcotest.(check string) "sw" "SWDetect" (Faults.Classify.name (classify sw));
  Alcotest.(check string) "fuel is failure" "Failure"
    (Faults.Classify.name (classify fuel))

let test_groupings () =
  let open Faults.Classify in
  Alcotest.(check string) "fig11 folds asdc" "Masked" (fig11_bucket Asdc);
  Alcotest.(check bool) "asdc is sdc" true (is_sdc Asdc);
  Alcotest.(check bool) "asdc is not usdc" false (is_usdc Asdc);
  Alcotest.(check bool) "swdetect covered" true (is_covered Sw_detect);
  Alcotest.(check bool) "failure not covered" false (is_covered Failure);
  Alcotest.(check int) "nine categories" 9 (List.length all);
  (* Recovery outcomes: a recovered trial ran to a correct answer (Masked
     bucket for Fig. 11), an unrecoverable one was still caught by a check
     (SWDetect bucket); neither is silent corruption, both are covered. *)
  Alcotest.(check string) "fig11 folds recovered" "Masked"
    (fig11_bucket Recovered);
  Alcotest.(check string) "fig11 folds unrecoverable" "SWDetect"
    (fig11_bucket Unrecoverable);
  Alcotest.(check bool) "recovered not sdc" false (is_sdc Recovered);
  Alcotest.(check bool) "recovered covered" true (is_covered Recovered);
  Alcotest.(check bool) "unrecoverable covered" true (is_covered Unrecoverable);
  Alcotest.(check bool) "names roundtrip" true
    (List.for_all (fun o -> of_name (name o) = Some o) all);
  Alcotest.(check bool) "unknown name" true (of_name "NotAnOutcome" = None)

let mk_recovery ~detect_step : Interp.Machine.recovery =
  { rec_detection = { check_uid = 7; dup_check = true };
    rec_detect_step = detect_step; rec_checkpoint_step = detect_step - 40;
    rec_replayed_steps = 40; rec_wasted_cycles = 55; rec_rollback_cycles = 80 }

let test_classify_recovered () =
  (* A run that rolled back and finished with the golden output. *)
  let r =
    { (mk_result (Interp.Machine.Finished None) ~steps:200 ~inj_step:50) with
      recovered = Some (mk_recovery ~detect_step:60) }
  in
  Alcotest.(check string) "recovered" "Recovered"
    (Faults.Classify.name (classify ~identical:true r));
  (* Rolled back but the output still differs: the checkpoint was not
     clean after all — Unrecoverable, never silent-corruption. *)
  Alcotest.(check string) "recovery that missed" "Unrecoverable"
    (Faults.Classify.name (classify r));
  Alcotest.(check string) "even if acceptable" "Unrecoverable"
    (Faults.Classify.name (classify ~acceptable:true r))

let test_classify_rollback_denied () =
  (* Check fired but no clean checkpoint predated the injection: the
     machine refuses the rollback and the detection stands, downgraded to
     Unrecoverable (detection latency exceeded the checkpoint window). *)
  let r =
    { (mk_result
         (Interp.Machine.Sw_detected { check_uid = 3; dup_check = false })
         ~steps:100 ~inj_step:50)
      with rollback_denied = true }
  in
  Alcotest.(check string) "denied rollback" "Unrecoverable"
    (Faults.Classify.name (classify r))

(* ----- Campaign ----- *)

let test_golden_run () =
  let subject = array_sum_subject () in
  let g = Faults.Campaign.golden_run subject in
  Alcotest.(check int) "one output" 1 (Array.length g.output);
  Alcotest.(check bool) "positive sum" true (g.output.(0) > 0.0);
  Alcotest.(check bool) "steps counted" true (g.steps > 100)

let test_campaign_counts_sum_to_trials () =
  let subject = array_sum_subject () in
  let summary, trials = Faults.Campaign.run subject ~trials:50 ~seed:1 in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 summary.counts in
  Alcotest.(check int) "counts sum" 50 total;
  Alcotest.(check int) "trial list length" 50 (List.length trials)

let test_campaign_deterministic () =
  let run () =
    let summary, _ = Faults.Campaign.run (array_sum_subject ()) ~trials:40 ~seed:77 in
    summary.counts
  in
  Alcotest.(check bool) "same seed, same counts" true (run () = run ())

let test_campaign_seed_sensitivity () =
  let run seed =
    let _, trials = Faults.Campaign.run (array_sum_subject ()) ~trials:30 ~seed in
    List.map (fun t -> t.Faults.Campaign.at_step) trials
  in
  Alcotest.(check bool) "different seeds, different schedule" true
    (run 1 <> run 2)

let test_campaign_finds_corruptions () =
  (* With a strict metric (mismatch 0), any changed sum is a USDC. *)
  let summary, _ = Faults.Campaign.run (array_sum_subject ()) ~trials:200 ~seed:3 in
  let usdc =
    Faults.Campaign.count summary Faults.Classify.Usdc_large
    + Faults.Campaign.count summary Faults.Classify.Usdc_small
  in
  Alcotest.(check bool)
    (Printf.sprintf "some corruptions (%d/200)" usdc)
    true (usdc > 0)

let test_campaign_protection_reduces_usdc () =
  (* Duplicate the accumulator chain: SWDetect must appear and USDC drop. *)
  let unprotected, _ =
    Faults.Campaign.run (array_sum_subject ()) ~trials:200 ~seed:5
  in
  let protected_subject =
    let s = array_sum_subject () in
    let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
      Transform.Duplicate.run s.prog
    in
    Ir.Verifier.verify s.prog;
    s
  in
  let protected_, _ = Faults.Campaign.run protected_subject ~trials:200 ~seed:5 in
  let usdc s =
    Faults.Campaign.count s Faults.Classify.Usdc_large
    + Faults.Campaign.count s Faults.Classify.Usdc_small
  in
  let sw = Faults.Campaign.count protected_ Faults.Classify.Sw_detect in
  Alcotest.(check bool) "protection detects" true (sw > 0);
  Alcotest.(check bool)
    (Printf.sprintf "usdc reduced (%d -> %d)" (usdc unprotected) (usdc protected_))
    true
    (usdc protected_ < usdc unprotected)

(* ----- Parallel campaign determinism ----- *)

(* The determinism contract: because every trial seed is pre-derived from
   the master RNG before any worker starts, the worker count must be
   unobservable — same summary, same trial list, bit for bit. *)
let check_parallel_identical subject ~trials ~seed =
  let serial_summary, serial_trials =
    Faults.Campaign.run subject ~trials ~seed ~domains:1
  in
  let par_summary, par_trials =
    Faults.Campaign.run subject ~trials ~seed ~domains:4
  in
  Alcotest.(check bool) "summaries identical" true
    (serial_summary.Faults.Campaign.counts = par_summary.Faults.Campaign.counts
     && serial_summary.subject_label = par_summary.subject_label
     && serial_summary.trials = par_summary.trials);
  Alcotest.(check bool) "trial lists identical" true
    (Faults.Campaign.trials_equal serial_trials par_trials)

let test_campaign_parallel_identical_array_sum () =
  check_parallel_identical (array_sum_subject ()) ~trials:40 ~seed:11

let test_campaign_parallel_identical_workload () =
  let p = Softft.protect (Workloads.Registry.find "g721enc") Softft.Dup_only in
  let subject = Softft.subject p ~role:Workloads.Workload.Test in
  check_parallel_identical subject ~trials:16 ~seed:42

let test_derive_seeds_matches_serial () =
  (* The pre-derived schedule must reproduce what the historical serial
     loop drew from the master generator, one trial at a time. *)
  let trials = 25 and seed = 123 in
  let master = Rng.create seed in
  let expected = Array.make trials 0 in
  for i = 0 to trials - 1 do
    expected.(i) <- (Int64.to_int (Rng.bits master) land 0x3FFFFFFF) + i
  done;
  let got = Faults.Campaign.derive_seeds ~seed ~trials in
  Alcotest.(check (array int)) "seed schedule" expected got

let test_derive_seeds_unique () =
  (* Regression: the raw 30-bit-draw-plus-index schedule collides for
     these (seed, trials) pairs — (123, 100k) repeats 9 seeds, (1, 65536)
     repeats 2 — and a repeated seed silently reruns the same trial.  The
     deduped schedule must be pairwise distinct while keeping every
     non-colliding draw at its historical value. *)
  List.iter
    (fun (seed, trials) ->
      let seeds = Faults.Campaign.derive_seeds ~seed ~trials in
      let seen = Hashtbl.create (2 * trials) in
      let dups = ref 0 in
      Array.iter
        (fun s ->
          if Hashtbl.mem seen s then incr dups;
          Hashtbl.replace seen s ())
        seeds;
      Alcotest.(check int)
        (Printf.sprintf "no duplicate seeds (seed=%d trials=%d)" seed trials)
        0 !dups;
      (* Spot-check the historical prefix survives: short schedules have no
         collisions, so they must be byte-for-byte the raw draws. *)
      let master = Rng.create seed in
      let raw i = (Int64.to_int (Rng.bits master) land 0x3FFFFFFF) + i in
      let agree = ref true in
      for i = 0 to min 24 (trials - 1) do
        if seeds.(i) <> raw i then agree := false
      done;
      Alcotest.(check bool) "non-colliding prefix unchanged" true !agree)
    [ (123, 100_000); (1, 65_536) ]

let test_percent_helpers () =
  let summary, _ = Faults.Campaign.run (array_sum_subject ()) ~trials:50 ~seed:9 in
  let total =
    List.fold_left
      (fun acc o -> acc +. Faults.Campaign.percent summary o)
      0.0 Faults.Classify.all
  in
  Alcotest.(check (float 1e-6)) "percents sum to 100" 100.0 total

let test_mean_percent () =
  let s1, _ = Faults.Campaign.run (array_sum_subject ()) ~trials:50 ~seed:1 in
  let s2, _ = Faults.Campaign.run (array_sum_subject ()) ~trials:50 ~seed:2 in
  let m =
    Faults.Campaign.mean_percent [ s1; s2 ] [ Faults.Classify.Masked ]
  in
  let a = Faults.Campaign.percent s1 Faults.Classify.Masked in
  let b = Faults.Campaign.percent s2 Faults.Classify.Masked in
  Alcotest.(check (float 1e-6)) "mean of two" ((a +. b) /. 2.0) m

(* ----- Edge cases: empty campaigns ----- *)

let test_percent_zero_trials () =
  (* Regression: percent over an empty campaign used to be 0/0 = NaN,
     which then poisoned every table it was averaged into. *)
  let summary, trials =
    Faults.Campaign.run (array_sum_subject ()) ~trials:0 ~seed:1
  in
  Alcotest.(check int) "no trials ran" 0 (List.length trials);
  List.iter
    (fun o ->
      let p = Faults.Campaign.percent summary o in
      Alcotest.(check bool)
        (Printf.sprintf "percent %s finite" (Faults.Classify.name o))
        false (Float.is_nan p);
      Alcotest.(check (float 1e-9)) "zero" 0.0 p)
    Faults.Classify.all

let test_mean_percent_empty () =
  (* Regression: the mean over no summaries must be 0, not NaN. *)
  let m = Faults.Campaign.mean_percent [] [ Faults.Classify.Masked ] in
  Alcotest.(check bool) "finite" false (Float.is_nan m);
  Alcotest.(check (float 1e-9)) "zero" 0.0 m

(* ----- Checkpoint/rollback recovery ----- *)

(* An array_sum subject whose accumulator chain is duplicated: software
   checks fire, so with checkpointing enabled those trials can recover. *)
let protected_array_sum () =
  let s = array_sum_subject () in
  let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
    Transform.Duplicate.run s.prog
  in
  Ir.Verifier.verify s.prog;
  s

let test_recovery_reclassifies_swdetect () =
  let count = Faults.Campaign.count in
  let plain, _ =
    Faults.Campaign.run (protected_array_sum ()) ~trials:200 ~seed:5
  in
  let recov, trials =
    Faults.Campaign.run (protected_array_sum ()) ~trials:200 ~seed:5
      ~checkpoint_interval:200
  in
  let sw0 = count plain Faults.Classify.Sw_detect in
  let recovered = count recov Faults.Classify.Recovered in
  let unrec = count recov Faults.Classify.Unrecoverable in
  Alcotest.(check bool) "protection detected something" true (sw0 > 0);
  (* Every detection either recovers or is explicitly unrecoverable; the
     paper's claim is that a short window suffices, i.e. the majority
     recovers. *)
  Alcotest.(check int)
    (Printf.sprintf "detections conserved (%d -> %d+%d+%d)" sw0
       (count recov Faults.Classify.Sw_detect) recovered unrec)
    sw0
    (count recov Faults.Classify.Sw_detect + recovered + unrec);
  Alcotest.(check bool)
    (Printf.sprintf "majority recovered (%d of %d)" recovered sw0)
    true
    (recovered * 2 > sw0);
  (* Recovery never manufactures silent corruption. *)
  let usdc s =
    count s Faults.Classify.Usdc_large + count s Faults.Classify.Usdc_small
  in
  Alcotest.(check bool) "usdc not increased" true (usdc recov <= usdc plain);
  (* Every Recovered trial carries its telemetry and replayed a plausible
     span: from a checkpoint at or before detection. *)
  List.iter
    (fun (t : Faults.Campaign.trial) ->
      match t.outcome, t.recovery with
      | Faults.Classify.Recovered, Some r ->
        Alcotest.(check bool) "replay nonnegative" true
          (r.Interp.Machine.rec_replayed_steps >= 0);
        Alcotest.(check bool) "checkpoint before detection" true
          (r.Interp.Machine.rec_checkpoint_step
           <= r.Interp.Machine.rec_detect_step);
        Alcotest.(check bool) "trial took checkpoints" true (t.checkpoints > 0)
      | Faults.Classify.Recovered, None ->
        Alcotest.fail "Recovered trial without recovery telemetry"
      | _ -> ())
    trials

let test_recovery_overhead_monotone () =
  (* Fault-free cost: more frequent checkpoints must cost monotonically
     more cycles, and recovery off must be the cheapest. *)
  let cycles interval =
    (Faults.Campaign.golden_run ~checkpoint_interval:interval
       (array_sum_subject ()))
      .cycles
  in
  let off = cycles 0 and sparse = cycles 200 and dense = cycles 50 in
  Alcotest.(check bool)
    (Printf.sprintf "off <= sparse (%d <= %d)" off sparse)
    true (off <= sparse);
  Alcotest.(check bool)
    (Printf.sprintf "sparse < dense (%d < %d)" sparse dense)
    true (sparse < dense)

let test_recovery_steps_deterministic_and_golden () =
  (* Checkpointing a fault-free run must not change what it computes. *)
  let plain = Faults.Campaign.golden_run (array_sum_subject ()) in
  let ckpt =
    Faults.Campaign.golden_run ~checkpoint_interval:100 (array_sum_subject ())
  in
  Alcotest.(check int) "same steps" plain.steps ckpt.steps;
  Alcotest.(check bool) "same output" true (plain.output = ckpt.output);
  Alcotest.(check bool) "checkpoints cost cycles" true
    (ckpt.cycles > plain.cycles)

let test_recovery_parallel_identical () =
  (* The determinism contract survives recovery: rollback decisions depend
     only on the trial's own execution, so worker count stays
     unobservable. *)
  let run domains =
    Faults.Campaign.run (protected_array_sum ()) ~trials:60 ~seed:11 ~domains
      ~checkpoint_interval:150
  in
  let s1, t1 = run 1 in
  let s4, t4 = run 4 in
  Alcotest.(check bool) "summaries identical" true
    (s1.Faults.Campaign.counts = s4.Faults.Campaign.counts);
  Alcotest.(check bool) "trial lists bit-identical" true
    (Faults.Campaign.trials_equal t1 t4);
  Alcotest.(check bool) "some trial recovered" true
    (Faults.Campaign.count s1 Faults.Classify.Recovered > 0)

(* ----- Golden-prefix snapshot forking ----- *)

(* The fork determinism contract (DESIGN.md §12): the same campaign with
   snapshot forking on and off must produce bit-identical trial lists —
   outcomes, steps, cycles, injections, recovery and taint telemetry. *)
let check_fork_identical ?fork_stride ~checkpoint_interval ~taint_trace
    subject ~trials ~seed =
  let run fork =
    Faults.Campaign.run subject ~trials ~seed ~fork ?fork_stride
      ~checkpoint_interval ~taint_trace
  in
  let s_on, t_on = run true in
  let s_off, t_off = run false in
  Alcotest.(check bool) "summaries identical" true
    (s_on.Faults.Campaign.counts = s_off.Faults.Campaign.counts);
  Alcotest.(check bool) "trial lists bit-identical" true
    (Faults.Campaign.trials_equal t_on t_off)

let test_fork_identical_all_workloads () =
  (* Every registered workload under the paper's main technique. *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let p = Softft.protect w Softft.Dup_valchk in
      let subject = Softft.subject p ~role:Workloads.Workload.Test in
      check_fork_identical ~checkpoint_interval:0 ~taint_trace:false subject
        ~trials:6 ~seed:321)
    Workloads.Registry.all

let test_fork_identical_configs () =
  (* Deep cross on two workloads: technique x checkpointing x taint
     tracing, covering the interactions the resume path must reproduce
     (synthetic checkpoints, shadow-taint seeding after the fork). *)
  List.iter
    (fun name ->
      List.iter
        (fun technique ->
          List.iter
            (fun (checkpoint_interval, taint_trace) ->
              let w = Workloads.Registry.find name in
              let p = Softft.protect w technique in
              let subject = Softft.subject p ~role:Workloads.Workload.Test in
              check_fork_identical ~checkpoint_interval ~taint_trace subject
                ~trials:4 ~seed:97)
            [ (0, false); (0, true); (5_000, false); (5_000, true) ])
        [ Softft.Original; Softft.Dup_only; Softft.Dup_valchk;
          Softft.Dup_valchk_cfc ])
    [ "g721enc"; "kmeans" ]

let test_fork_stride_beyond_run_degrades () =
  (* A stride past the end of the golden run captures no snapshot at all;
     the campaign must degrade to from-scratch trials, not fail. *)
  let subject = array_sum_subject () in
  let golden = Faults.Campaign.golden_run subject in
  check_fork_identical ~fork_stride:(golden.steps + 1)
    ~checkpoint_interval:0 ~taint_trace:false (array_sum_subject ())
    ~trials:20 ~seed:7

let test_fork_parallel_identical () =
  (* Forking and domain parallelism compose: snapshots are shared
     read-only across workers, so worker count stays unobservable. *)
  let subject = protected_array_sum () in
  let s1, t1 = Faults.Campaign.run subject ~trials:40 ~seed:19 ~domains:1 in
  let s4, t4 = Faults.Campaign.run subject ~trials:40 ~seed:19 ~domains:4 in
  Alcotest.(check bool) "summaries identical" true
    (s1.Faults.Campaign.counts = s4.Faults.Campaign.counts);
  Alcotest.(check bool) "trial lists bit-identical" true
    (Faults.Campaign.trials_equal t1 t4)

(* ----- Adaptive stratified campaigns (DESIGN.md §14) ----- *)

(* The stratification inputs for a protected subject, from the static
   coverage analysis — the same wiring `experiments campaign --adaptive`
   uses. *)
let strata_inputs (subject : Faults.Campaign.subject) =
  let cov = Analysis.Coverage.analyze subject.prog in
  ( Analysis.Strata.reg_groups subject.prog cov,
    Analysis.Strata.group_names,
    Analysis.Strata.priors cov )

let run_adaptive ?(ci = 0.08) ?(seed = 41) ?(domains = 1) subject =
  let groups, group_names, priors = strata_inputs subject in
  Faults.Campaign.run_adaptive ~seed ~domains ~groups ~group_names ~priors
    ~ci subject

let test_adaptive_deterministic () =
  (* The contract the journal depends on: for a fixed (seed, config,
     coverage map), the trial list is bit-identical across reruns and
     across worker counts — allocation, stream splitting and batching
     must all be schedule-independent. *)
  let _, t1, _ = run_adaptive (protected_array_sum ()) in
  let _, t2, _ = run_adaptive (protected_array_sum ()) in
  Alcotest.(check bool) "rerun bit-identical" true
    (Faults.Campaign.trials_equal t1 t2);
  let _, t4, _ = run_adaptive ~domains:4 (protected_array_sum ()) in
  Alcotest.(check bool) "1 vs 4 domains bit-identical" true
    (Faults.Campaign.trials_equal t1 t4)

let test_adaptive_accounting () =
  (* Masses partition the injection space (they sum with the empty-ring
     share to 1 — the unbiasedness precondition), and every executed
     trial is tallied in exactly one stratum. *)
  let _, trials, ad = run_adaptive (protected_array_sum ()) in
  let mass_sum =
    Array.fold_left
      (fun acc (ss : Faults.Campaign.stratum_stats) ->
        acc +. ss.ss_stratum.st_mass)
      ad.Faults.Campaign.ad_mass_empty ad.ad_strata
  in
  Alcotest.(check (float 1e-9)) "masses sum to 1" 1.0 mass_sum;
  Alcotest.(check int) "trials tallied once"
    (List.length trials)
    (Array.fold_left (fun acc ss -> acc + ss.Faults.Campaign.ss_trials)
       0 ad.ad_strata);
  Alcotest.(check int) "ad_trials matches" (List.length trials) ad.ad_trials;
  List.iter
    (fun (t : Faults.Campaign.trial) ->
      match t.stratum with
      | Some s ->
        Alcotest.(check bool) "stratum id in range" true
          (s >= 0 && s < Array.length ad.ad_strata)
      | None -> Alcotest.fail "adaptive trial missing its stratum tag")
    trials

let test_adaptive_converges_to_target () =
  (* When the run stops by convergence (not the trial budget), the
     combined SDC half width must be at or under the target — the
     quadrature lemma, on a real campaign. *)
  let ci = 0.08 in
  let _, _, ad = run_adaptive ~ci (protected_array_sum ()) in
  let half =
    (ad.Faults.Campaign.ad_sdc.Obs.Stats.ci_high
     -. ad.ad_sdc.Obs.Stats.ci_low)
    /. 2.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "combined half width %.4f <= %.4f" half ci)
    true (half <= ci +. 1e-9)

let test_adaptive_agrees_with_uniform () =
  (* Reweighting sanity on a real subject: the stratified whole-program
     SDC interval and a plain uniform campaign's interval must overlap —
     they estimate the same quantity. *)
  let subject = protected_array_sum () in
  let summary, _ = Faults.Campaign.run subject ~trials:400 ~seed:6 in
  let k =
    List.fold_left
      (fun acc o -> acc + Faults.Campaign.count summary o)
      0
      [ Faults.Classify.Asdc; Faults.Classify.Usdc_large;
        Faults.Classify.Usdc_small ]
  in
  let uniform = Obs.Stats.wilson ~k ~n:summary.trials () in
  let _, _, ad = run_adaptive subject in
  let sdc = ad.Faults.Campaign.ad_sdc in
  Alcotest.(check bool)
    (Printf.sprintf "intervals overlap ([%.3f,%.3f] vs [%.3f,%.3f])"
       sdc.Obs.Stats.ci_low sdc.ci_high uniform.Obs.Stats.ci_low
       uniform.ci_high)
    true
    (sdc.Obs.Stats.ci_low <= uniform.Obs.Stats.ci_high
     && uniform.Obs.Stats.ci_low <= sdc.Obs.Stats.ci_high)

let test_trial_equal_sees_stratum () =
  (* The bit-identity oracle must not ignore the stratum tag: two trials
     differing only there are different records. *)
  let _, trials, _ = run_adaptive (protected_array_sum ()) in
  match trials with
  | t :: _ ->
    Alcotest.(check bool) "same trial equal" true
      (Faults.Campaign.trials_equal [ t ] [ t ]);
    Alcotest.(check bool) "stratum difference detected" false
      (Faults.Campaign.trials_equal [ t ] [ { t with stratum = None } ])
  | [] -> Alcotest.fail "adaptive campaign ran no trials"

let tests =
  [ Alcotest.test_case "classify: masked" `Quick test_classify_masked;
    Alcotest.test_case "classify: asdc" `Quick test_classify_asdc;
    Alcotest.test_case "classify: usdc small" `Quick test_classify_usdc_small;
    Alcotest.test_case "classify: usdc large" `Quick test_classify_usdc_large;
    Alcotest.test_case "classify: hw window" `Quick test_classify_hw_window;
    Alcotest.test_case "classify: sw and fuel" `Quick test_classify_sw_and_fuel;
    Alcotest.test_case "classify: groupings" `Quick test_groupings;
    Alcotest.test_case "campaign: golden run" `Quick test_golden_run;
    Alcotest.test_case "campaign: counts sum" `Quick
      test_campaign_counts_sum_to_trials;
    Alcotest.test_case "campaign: deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "campaign: seed sensitivity" `Quick
      test_campaign_seed_sensitivity;
    Alcotest.test_case "campaign: finds corruptions" `Quick
      test_campaign_finds_corruptions;
    Alcotest.test_case "campaign: protection reduces USDC" `Quick
      test_campaign_protection_reduces_usdc;
    Alcotest.test_case "campaign: parallel identical (array_sum)" `Quick
      test_campaign_parallel_identical_array_sum;
    Alcotest.test_case "campaign: parallel identical (g721enc)" `Quick
      test_campaign_parallel_identical_workload;
    Alcotest.test_case "campaign: derived seed schedule" `Quick
      test_derive_seeds_matches_serial;
    Alcotest.test_case "campaign: percent helpers" `Quick test_percent_helpers;
    Alcotest.test_case "campaign: mean percent" `Quick test_mean_percent;
    Alcotest.test_case "classify: recovered outcomes" `Quick
      test_classify_recovered;
    Alcotest.test_case "classify: rollback denied" `Quick
      test_classify_rollback_denied;
    Alcotest.test_case "campaign: percent of zero trials" `Quick
      test_percent_zero_trials;
    Alcotest.test_case "campaign: mean percent of nothing" `Quick
      test_mean_percent_empty;
    Alcotest.test_case "recovery: reclassifies swdetect" `Quick
      test_recovery_reclassifies_swdetect;
    Alcotest.test_case "recovery: overhead monotone" `Quick
      test_recovery_overhead_monotone;
    Alcotest.test_case "recovery: golden run unchanged" `Quick
      test_recovery_steps_deterministic_and_golden;
    Alcotest.test_case "recovery: parallel identical" `Quick
      test_recovery_parallel_identical;
    Alcotest.test_case "campaign: derived seeds unique" `Quick
      test_derive_seeds_unique;
    Alcotest.test_case "fork: identical on every workload" `Quick
      test_fork_identical_all_workloads;
    Alcotest.test_case "fork: identical across configs" `Quick
      test_fork_identical_configs;
    Alcotest.test_case "fork: oversized stride degrades" `Quick
      test_fork_stride_beyond_run_degrades;
    Alcotest.test_case "fork: parallel identical" `Quick
      test_fork_parallel_identical;
    Alcotest.test_case "adaptive: deterministic across reruns and domains"
      `Quick test_adaptive_deterministic;
    Alcotest.test_case "adaptive: masses and tallies account for everything"
      `Quick test_adaptive_accounting;
    Alcotest.test_case "adaptive: converges to the target half width" `Quick
      test_adaptive_converges_to_target;
    Alcotest.test_case "adaptive: agrees with a uniform campaign" `Quick
      test_adaptive_agrees_with_uniform;
    Alcotest.test_case "adaptive: trial equality sees the stratum tag" `Quick
      test_trial_equal_sees_stratum;
  ]
