(** Table-rendering unit tests (Softft.Report). *)

module Report = Softft.Report

(* ----- pad / pad_left ----- *)

let test_pad () =
  Alcotest.(check string) "pads right" "ab  " (Report.pad 4 "ab");
  Alcotest.(check string) "exact width unchanged" "abcd" (Report.pad 4 "abcd");
  Alcotest.(check string) "wider than width unchanged" "abcde"
    (Report.pad 4 "abcde");
  Alcotest.(check string) "empty string" "   " (Report.pad 3 "");
  Alcotest.(check string) "zero width" "x" (Report.pad 0 "x")

let test_pad_left () =
  Alcotest.(check string) "pads left" "  ab" (Report.pad_left 4 "ab");
  Alcotest.(check string) "exact width unchanged" "abcd"
    (Report.pad_left 4 "abcd");
  Alcotest.(check string) "wider than width unchanged" "abcde"
    (Report.pad_left 4 "abcde");
  Alcotest.(check string) "empty string" "   " (Report.pad_left 3 "")

(* ----- render ----- *)

let test_render_basic () =
  let out =
    Report.render ~header:[ "name"; "n" ] ~rows:[ [ "a"; "10" ]; [ "bb"; "5" ] ]
  in
  Alcotest.(check string) "layout"
    "name   n\n----  --\na     10\nbb     5" out

let test_render_empty_rows () =
  let out = Report.render ~header:[ "col"; "x" ] ~rows:[] in
  Alcotest.(check string) "header and separator only" "col  x\n---  -" out

let test_render_ragged_names_row () =
  (* The error must name the offending row and both widths. *)
  Alcotest.check_raises "ragged row error"
    (Invalid_argument "Report.render: row 1 has 2 cells, header has 3")
    (fun () ->
      ignore
        (Report.render ~header:[ "a"; "b"; "c" ]
           ~rows:[ [ "1"; "2"; "3" ]; [ "1"; "2" ] ]))

let test_render_ragged_wide_row () =
  Alcotest.check_raises "too-wide row error"
    (Invalid_argument "Report.render: row 0 has 3 cells, header has 1")
    (fun () ->
      ignore (Report.render ~header:[ "a" ] ~rows:[ [ "1"; "2"; "3" ] ]))

let test_render_multibyte_header () =
  (* Column widths are byte widths: a 3-byte UTF-8 header ("\xce\xbcs" is
     "(mu)s", 3 bytes) sets the column to 3 bytes, and cells pad to it. *)
  let out = Report.render ~header:[ "\xce\xbcs"; "n" ] ~rows:[ [ "x"; "2" ] ] in
  Alcotest.(check string) "byte-width layout"
    "\xce\xbcs  n\n---  -\nx    2" out

(* ----- csv_field / csv_row (RFC 4180 quoting) ----- *)

let test_csv_field_plain () =
  (* Plain fields pass through byte-identically — existing CSV exports must
     not change shape. *)
  Alcotest.(check string) "number untouched" "12.50" (Report.csv_field "12.50");
  Alcotest.(check string) "word untouched" "kmeans" (Report.csv_field "kmeans");
  Alcotest.(check string) "empty untouched" "" (Report.csv_field "")

let test_csv_field_quoted () =
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Report.csv_field "a,b");
  Alcotest.(check string) "quote doubled" "\"he said \"\"hi\"\"\""
    (Report.csv_field "he said \"hi\"");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Report.csv_field "a\nb");
  Alcotest.(check string) "CR quoted" "\"a\rb\"" (Report.csv_field "a\rb")

let test_csv_row () =
  Alcotest.(check string) "mixed row" "plain,\"with,comma\",3"
    (Report.csv_row [ "plain"; "with,comma"; "3" ])

let tests =
  [ Alcotest.test_case "pad" `Quick test_pad;
    Alcotest.test_case "csv_field: plain passthrough" `Quick
      test_csv_field_plain;
    Alcotest.test_case "csv_field: RFC 4180 quoting" `Quick
      test_csv_field_quoted;
    Alcotest.test_case "csv_row" `Quick test_csv_row;
    Alcotest.test_case "pad_left" `Quick test_pad_left;
    Alcotest.test_case "render: basic" `Quick test_render_basic;
    Alcotest.test_case "render: empty rows" `Quick test_render_empty_rows;
    Alcotest.test_case "render: ragged row named" `Quick
      test_render_ragged_names_row;
    Alcotest.test_case "render: too-wide row named" `Quick
      test_render_ragged_wide_row;
    Alcotest.test_case "render: multi-byte header" `Quick
      test_render_multibyte_header;
  ]
