(** Tests for the protection-plan optimizer stack (DESIGN.md §16): the
    plan type ({!Analysis.Plan}), the static predictor
    ({!Analysis.Predict}), the plan-driven pipeline
    ({!Transform.Pipeline.of_plan} via {!Softft.protect_plan}) and the
    Pareto search with injection validation ({!Softft.Optimize}). *)

module Plan = Analysis.Plan
module Predict = Analysis.Predict
module Optimize = Softft.Optimize

let cost = Optimize.cost_model ()
let workload name = Workloads.Registry.find name

(* Value profile + dynamic block weights of [w]'s original program — the
   same inputs `experiments optimize` feeds the search. *)
let search_inputs (w : Workloads.Workload.t) =
  let prog = w.build () in
  let vp = Workloads.Workload.profile ~prog w in
  let profile uid = Profiling.Value_profile.check_kind vp uid in
  let exec_counts =
    let prof = Interp.Profile.create () in
    let orig = Softft.protect w Softft.Original in
    let (_ : Faults.Campaign.golden) =
      Softft.golden ~profile:prof orig ~role:Workloads.Workload.Train
    in
    Interp.Profile.func_block_counts prof
  in
  (prog, profile, exec_counts)

(* A nontrivial plan touching every field: two chains, the first chain's
   Opt-2 terminator sites, one stand-alone check, a checkpoint interval. *)
let sample_plan (w : Workloads.Workload.t) =
  let prog, profile, _ = search_inputs w in
  let chains = Plan.candidate_chains prog in
  let sites = Plan.candidate_sites ~profile prog in
  let plan =
    match chains with
    | c0 :: c1 :: _ ->
      let p = Plan.add_chain (Plan.add_chain Plan.empty c0) c1 in
      let p =
        match Optimize.chain_opt2_sites ~profile prog c0 with
        | t :: _ -> Plan.add_terminator p t
        | [] -> p
      in
      (match
         List.find_opt
           (fun (s : Plan.site) -> not (Plan.mem_terminator p s.Plan.vs_uid))
           sites
       with
       | Some s -> Plan.add_check p s
       | None -> p)
    | _ -> Alcotest.fail "expected at least two candidate chains"
  in
  Plan.normalize { plan with Plan.checkpoint = 500 }

(* ----- plan JSON round-trip ----- *)

let test_json_roundtrip () =
  let plan = sample_plan (workload "kmeans") in
  let back = Plan.of_string (Plan.to_string plan) in
  Alcotest.(check bool) "round-trips" true (Plan.equal plan back);
  Alcotest.(check string) "slug stable" (Plan.slug plan) (Plan.slug back);
  (match Plan.of_string "{}" with
   | exception Failure _ -> ()
   | (_ : Plan.t) -> Alcotest.fail "of_string accepted a schema-less plan")

(* A plan serialized, parsed back and executed through the pipeline must
   produce the same transform — the CLI's --plan-out files feed of_plan. *)
let test_json_roundtrip_through_of_plan () =
  let w = workload "kmeans" in
  let plan = sample_plan w in
  let back = Plan.of_string (Plan.to_string plan) in
  let a = Softft.protect_plan ~lint:true w plan in
  let b = Softft.protect_plan ~lint:true w back in
  Alcotest.(check bool) "same static stats" true
    (a.Softft.static_stats = b.Softft.static_stats);
  Alcotest.(check bool) "plan stats are Planned" true
    (a.Softft.static_stats.Transform.Pipeline.technique
     = Transform.Pipeline.Planned)

(* ----- of_plan generalizes the fixed pipelines ----- *)

let test_all_chains_equals_dup_only () =
  List.iter
    (fun name ->
      let w = workload name in
      let prog = w.build () in
      let plan =
        Plan.normalize
          { Plan.empty with Plan.chains = Plan.candidate_chains prog }
      in
      let planned = Softft.protect_plan ~lint:true w plan in
      let fixed = Softft.protect ~lint:true w Softft.Dup_only in
      let ps = planned.Softft.static_stats
      and fs = fixed.Softft.static_stats in
      Alcotest.(check int)
        (name ^ ": duplicated instrs match Dup_only")
        fs.Transform.Pipeline.duplicated_instrs
        ps.Transform.Pipeline.duplicated_instrs;
      Alcotest.(check int)
        (name ^ ": dup checks match Dup_only")
        fs.Transform.Pipeline.dup_checks ps.Transform.Pipeline.dup_checks;
      Alcotest.(check int)
        (name ^ ": state vars match Dup_only")
        fs.Transform.Pipeline.state_vars ps.Transform.Pipeline.state_vars)
    [ "kmeans"; "g721enc" ]

(* Plans with check placements survive the plan-derived lint and the
   protected program still computes the right answer. *)
let test_planned_program_lints_and_runs () =
  let w = workload "kmeans" in
  let plan = sample_plan w in
  let p = Softft.protect_plan ~lint:true w plan in
  let orig = Softft.protect w Softft.Original in
  let g = Softft.golden p ~role:Workloads.Workload.Test in
  let g0 = Softft.golden orig ~role:Workloads.Workload.Test in
  Alcotest.(check bool) "output unchanged" true
    (g0.Faults.Campaign.output = g.Faults.Campaign.output);
  Alcotest.(check int) "no false positives" 0
    g.Faults.Campaign.false_positives

(* ----- predictor: SDC estimate is monotone in the chain set ----- *)

let test_sdc_monotone_in_chains () =
  List.iter
    (fun name ->
      let w = workload name in
      let prog, profile, exec_counts = search_inputs w in
      let chains = Plan.candidate_chains prog in
      let last = ref 1.0 in
      let (_ : Plan.t) =
        List.fold_left
          (fun acc c ->
            let acc = Plan.add_chain acc c in
            let est =
              Predict.estimate ~exec_counts ~profile ~cost prog acc
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: SDC non-increasing at %d chains (%.4f <= %.4f)"
                 name
                 (List.length acc.Plan.chains)
                 est.Predict.pe_sdc_fraction !last)
              true
              (est.Predict.pe_sdc_fraction <= !last +. 1e-12);
            last := est.Predict.pe_sdc_fraction;
            acc)
          Plan.empty chains
      in
      ())
    [ "kmeans"; "g721enc" ]

(* qcheck flavor: for a random subset S and random extra chains E,
   predicted SDC of S ∪ E never exceeds that of S. *)
let prop_sdc_monotone_random_subsets =
  let w = workload "kmeans" in
  let prog, profile, exec_counts = search_inputs w in
  let chains = Array.of_list (Plan.candidate_chains prog) in
  let n = Array.length chains in
  QCheck.Test.make ~name:"plan SDC monotone on random chain subsets"
    ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (seed_s, seed_e) ->
      let subset seed =
        let rng = Rng.create seed in
        Array.to_list chains
        |> List.filter (fun _ -> Int64.rem (Rng.bits rng) 2L = 0L)
      in
      let s = subset seed_s in
      let e = subset seed_e in
      let plan_of cs = Plan.normalize { Plan.empty with Plan.chains = cs } in
      let est cs =
        (Predict.estimate ~exec_counts ~profile ~cost prog (plan_of cs))
          .Predict.pe_sdc_fraction
      in
      n = 0 || est (s @ e) <= est s +. 1e-12)

(* ----- predictor agrees with the coverage analyzer's denominator ----- *)

let test_empty_plan_predicts_original () =
  let w = workload "kmeans" in
  let prog, profile, exec_counts = search_inputs w in
  let est = Predict.estimate ~exec_counts ~profile ~cost prog Plan.empty in
  Alcotest.(check (float 1e-9)) "empty plan: all exposure SDC-prone" 1.0
    est.Predict.pe_sdc_fraction;
  Alcotest.(check (float 1e-9)) "empty plan: no added cycles" 0.0
    est.Predict.pe_added_cycles

(* ----- manifest: distinct plans hash to distinct warehouse keys ----- *)

let test_plan_in_manifest_changes_run_key () =
  let w = workload "kmeans" in
  let prog = w.build () in
  let chains = Plan.candidate_chains prog in
  let manifest_for plan =
    Faults.Journal.manifest_record ~technique:"Planned"
      ~plan:(Plan.to_json plan) ~label:"kmeans/plan/test" ~trials:0 ~seed:1
      ~domains:1 ~hw_window:Faults.Classify.default_hw_window
      ~fault_kind:"register_bit"
      ~golden:
        { Faults.Campaign.output = [||]; steps = 0; cycles = 0;
          false_positives = 0; failing_checks = [] }
      ()
  in
  let plan_a = Plan.normalize { Plan.empty with Plan.chains } in
  let plan_b =
    Plan.normalize
      { Plan.empty with Plan.chains = [ List.hd chains ] }
  in
  let key p = Warehouse.Store.run_key (manifest_for p) in
  Alcotest.(check bool) "same plan, same key" true
    (key plan_a = key plan_a);
  Alcotest.(check bool) "distinct plans, distinct keys" true
    (key plan_a <> key plan_b)

(* ----- coverage ranking determinism (ISSUE 10 satellite) ----- *)

let test_ranked_regs_deterministic () =
  let w = workload "kmeans" in
  let analyze () =
    let p = Softft.protect w Softft.Dup_valchk in
    Analysis.Coverage.analyze p.Softft.prog
  in
  let a = Analysis.Coverage.ranked_regs (analyze ()) in
  let b = Analysis.Coverage.ranked_regs (analyze ()) in
  Alcotest.(check bool) "two analyses rank identically" true (a = b);
  Alcotest.(check string) "register CSV is bit-stable"
    (Softft.Experiments.coverage_reg_csv (analyze ()))
    (Softft.Experiments.coverage_reg_csv (analyze ()));
  (* The documented total order: unprotected class first, exposure
     descending, ties by (function, register) ascending. *)
  let unprot (r : Analysis.Coverage.reg_row) =
    match r.Analysis.Coverage.r_status with
    | Analysis.Coverage.Unprotected | Analysis.Coverage.Dup_unchecked -> 0
    | _ -> 1
  in
  let rec pairwise = function
    | x :: (y :: _ as rest) ->
      let ordered =
        unprot x < unprot y
        || (unprot x = unprot y
            && (x.Analysis.Coverage.r_exposure > y.Analysis.Coverage.r_exposure
               || (x.Analysis.Coverage.r_exposure
                   = y.Analysis.Coverage.r_exposure
                  && (x.Analysis.Coverage.r_func, x.Analysis.Coverage.r_reg)
                     < (y.Analysis.Coverage.r_func, y.Analysis.Coverage.r_reg)
                  )))
      in
      Alcotest.(check bool) "total order respected" true ordered;
      pairwise rest
    | _ -> ()
  in
  pairwise a

(* ----- Pareto search ----- *)

let run_search ?(budget = 0.15) name =
  let w = workload name in
  let prog, profile, exec_counts = search_inputs w in
  (w, Optimize.search ~beam:2 ~budget ~exec_counts ~profile prog)

let test_frontier_properties () =
  let _, fr = run_search "kmeans" in
  Alcotest.(check bool) "frontier non-empty" true (fr.Optimize.fr_points <> []);
  (* Overhead ascending, SDC strictly decreasing along the frontier. *)
  let rec sweep = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "overhead ascending" true
        (Optimize.overhead a <= Optimize.overhead b);
      Alcotest.(check bool) "SDC strictly decreasing" true
        (Optimize.sdc b < Optimize.sdc a);
      sweep rest
    | _ -> ()
  in
  sweep fr.Optimize.fr_points;
  List.iter
    (fun p ->
      Alcotest.(check bool) "frontier within budget" true
        (Optimize.overhead p <= fr.Optimize.fr_budget))
    fr.Optimize.fr_points;
  (* Fixed pipelines sit on or below the frontier: none strictly
     dominates a frontier point. *)
  List.iter
    (fun fixed ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s does not dominate %s"
               fixed.Optimize.op_label p.Optimize.op_label)
            false
            (Optimize.strictly_dominates fixed p))
        fr.Optimize.fr_points)
    fr.Optimize.fr_fixed;
  (* ISSUE 10 acceptance: at 15%% budget the searched frontier strictly
     dominates at least one fixed pipeline. *)
  Alcotest.(check bool) "some fixed pipeline is dominated" true
    (fr.Optimize.fr_dominated_fixed <> [])

(* ----- static-vs-measured rank agreement on knee points (§11/§16) ----- *)

let test_rank_agreement name =
  let w, fr = run_search name in
  let knees = Optimize.knee_points ~n:2 fr.Optimize.fr_points in
  Alcotest.(check bool) "has knee points" true (knees <> []);
  let vals =
    Optimize.validate ~seed:7 ~ci:0.08 ~max_trials:1500 w knees
  in
  List.iter
    (fun (v : Optimize.validation) ->
      Alcotest.(check bool) "spent trials" true (v.Optimize.vl_trials > 0))
    vals;
  Alcotest.(check bool)
    (name ^ ": predicted vs measured SDC rank order concordant") true
    (Optimize.rank_order_agrees vals)

let test_rank_agreement_kmeans () = test_rank_agreement "kmeans"
let test_rank_agreement_jpegdec () = test_rank_agreement "jpegdec"

let tests =
  [ Alcotest.test_case "plan JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "plan JSON executes identically" `Quick
      test_json_roundtrip_through_of_plan;
    Alcotest.test_case "all-chains plan = Dup_only" `Quick
      test_all_chains_equals_dup_only;
    Alcotest.test_case "planned program lints and runs" `Quick
      test_planned_program_lints_and_runs;
    Alcotest.test_case "predicted SDC monotone in chains" `Quick
      test_sdc_monotone_in_chains;
    QCheck_alcotest.to_alcotest prop_sdc_monotone_random_subsets;
    Alcotest.test_case "empty plan predicts the original" `Quick
      test_empty_plan_predicts_original;
    Alcotest.test_case "plan in manifest changes run key" `Quick
      test_plan_in_manifest_changes_run_key;
    Alcotest.test_case "coverage ranking deterministic" `Quick
      test_ranked_regs_deterministic;
    Alcotest.test_case "Pareto frontier properties (kmeans)" `Quick
      test_frontier_properties;
    Alcotest.test_case "knee-point rank agreement (kmeans)" `Slow
      test_rank_agreement_kmeans;
    Alcotest.test_case "knee-point rank agreement (jpegdec)" `Slow
      test_rank_agreement_jpegdec ]
