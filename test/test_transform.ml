(** Tests for the protection passes: state-variable identification,
    producer-chain duplication, value checks, full duplication. *)

open Ir

let finished_value (r : Interp.Machine.result) =
  match r.stop with
  | Interp.Machine.Finished (Some v) -> v
  | stop ->
    Alcotest.failf "run did not finish: %a" Interp.Machine.pp_stop stop

let run_main ?config prog args =
  let mem = Interp.Memory.create () in
  Interp.Machine.run ?config prog ~entry:"main" ~args ~mem

(* The paper's Figure 3 pattern: a crc-style loop where the accumulator is a
   state variable feeding itself. *)
let build_crc_prog () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:2 in
  let init = Builder.param b 0 in
  let n = Builder.param b 1 in
  let table = Builder.alloc b (Builder.imm 16) in
  Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 16)
    ~body:(fun ~i ->
      Builder.seti b table i (Builder.mul b i (Builder.imm 7)));
  let final =
    Builder.for_up b ~from:(Builder.imm 0) ~until:n ~carried:[ init ]
      ~body:(fun ~i regs ->
        match regs with
        | [ crc ] ->
          let idx = Builder.and_ b i (Builder.imm 15) in
          let tv = Builder.geti b table idx in
          let shifted = Builder.shl b (Reg crc) (Builder.imm 1) in
          let masked = Builder.and_ b shifted (Builder.imm 0xFFFF) in
          [ Builder.xor b masked tv ]
        | _ -> assert false)
      ()
  in
  (match final with [ c ] -> Builder.ret b (Reg c) | _ -> assert false);
  Builder.finish b;
  prog

let crc_args = [ Value.of_int 0xBEEF; Value.of_int 100 ]

(* ----- state variables ----- *)

let test_state_vars_found () =
  let prog = build_crc_prog () in
  let svs = Transform.State_vars.of_prog prog in
  (* Two loops (table init, crc), each with at least the index phi;
     the crc loop also carries the crc accumulator. *)
  Alcotest.(check int) "state variables" 3 (List.length svs);
  List.iter
    (fun (sv : Transform.State_vars.state_var) ->
      Alcotest.(check bool) "has a back edge" true (sv.back_edges <> []))
    svs

let test_state_vars_none_in_straightline () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  Builder.ret b (Builder.add b (Builder.param b 0) (Builder.imm 1));
  Builder.finish b;
  Alcotest.(check int) "no loops, no state vars" 0
    (Transform.State_vars.count_prog prog)

(* ----- semantic preservation ----- *)

let check_semantics_preserved technique =
  let original = build_crc_prog () in
  let expected = finished_value (run_main original crc_args) in
  let transformed = build_crc_prog () in
  let profile =
    if technique = Transform.Pipeline.Dup_valchk then begin
      let mem = Interp.Memory.create () in
      let p, (_ : Interp.Machine.result) =
        Profiling.Value_profile.collect transformed ~entry:"main"
          ~args:crc_args ~mem
      in
      Some (fun uid -> Profiling.Value_profile.check_kind p uid)
    end
    else None
  in
  (* Rebuild: profiling ran on the untransformed program; that is fine, the
     uids are stable because collect does not mutate the program. *)
  let (_ : Transform.Pipeline.stats) =
    Transform.Pipeline.protect ?profile transformed technique
  in
  Verifier.verify transformed;
  let got = finished_value (run_main transformed crc_args) in
  Alcotest.(check int64) "same result" (Value.to_int64 expected)
    (Value.to_int64 got)

let test_dup_only_preserves () =
  check_semantics_preserved Transform.Pipeline.Dup_only

let test_dup_valchk_preserves () =
  check_semantics_preserved Transform.Pipeline.Dup_valchk

let test_full_dup_preserves () =
  check_semantics_preserved Transform.Pipeline.Full_dup

(* ----- duplication structure ----- *)

let test_dup_stats () =
  let prog = build_crc_prog () in
  let stats, (_ : (int, unit) Hashtbl.t) = Transform.Duplicate.run prog in
  Alcotest.(check int) "state vars" 3 stats.state_vars;
  Alcotest.(check bool) "cloned instructions" true (stats.cloned_instrs > 0);
  Alcotest.(check bool) "cloned phis" true (stats.cloned_phis > 0);
  Alcotest.(check bool) "dup checks inserted" true (stats.dup_checks > 0);
  Verifier.verify prog

let test_dup_terminates_at_loads () =
  let prog = build_crc_prog () in
  let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
    Transform.Duplicate.run prog
  in
  (* No load instruction may carry a Duplicated origin. *)
  Prog.iter_funcs
    (fun f ->
      Func.iter_instrs
        (fun (ins : Instr.t) ->
          match ins.kind, ins.origin with
          | Instr.Load _, Instr.Duplicated _ ->
            Alcotest.fail "a load was duplicated"
          | _ -> ())
        f)
    prog

let test_dup_detects_state_corruption () =
  (* Corrupt the state accumulator mid-run in a Dup_only program: the
     duplication check at the back edge must fire.  We find the crc phi's
     register and flip a high bit via the machine's fault hook over many
     seeds; at least some runs must end in Sw_detected with a dup check. *)
  let prog = build_crc_prog () in
  let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
    Transform.Duplicate.run prog
  in
  Verifier.verify prog;
  let detections = ref 0 in
  for seed = 1 to 60 do
    let rng = Rng.create seed in
    let at_step = 50 + Rng.int rng 1000 in
    let config =
      { Interp.Machine.default_config with
        fuel = 1_000_000;
        fault = Some (Interp.Machine.register_fault ~at_step ~fault_rng:rng ()) }
    in
    let r = run_main ~config prog crc_args in
    match r.stop with
    | Interp.Machine.Sw_detected d when d.dup_check -> incr detections
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "dup checks detect some faults (%d/60)" !detections)
    true (!detections > 0)

(* ----- value checks ----- *)

let test_value_checks_inserted () =
  let prog = build_crc_prog () in
  let mem = Interp.Memory.create () in
  let p, (_ : Interp.Machine.result) =
    Profiling.Value_profile.collect prog ~entry:"main" ~args:crc_args ~mem
  in
  let profile uid = Profiling.Value_profile.check_kind p uid in
  let stats = Transform.Pipeline.protect ~profile prog Transform.Pipeline.Dup_valchk in
  Alcotest.(check bool) "value checks inserted" true (stats.value_checks > 0);
  Verifier.verify prog;
  (* Fault-free run must not be stopped by any check. *)
  let r = run_main prog crc_args in
  match r.stop with
  | Interp.Machine.Finished _ -> ()
  | stop -> Alcotest.failf "fault-free run stopped: %a" Interp.Machine.pp_stop stop

let test_opt1_suppression () =
  (* A chain of adds where many instructions are amenable: only the deepest
     should receive a check. *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let total =
    Builder.for_up b ~from:(Builder.imm 0) ~until:(Builder.imm 100)
      ~carried:[ Builder.imm 0 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] ->
          let a = Builder.and_ b i (Builder.imm 7) in
          let c = Builder.add b a (Builder.imm 1) in
          let d = Builder.mul b c (Builder.imm 3) in
          let e = Builder.and_ b d (Builder.imm 31) in
          ignore (Builder.add b (Reg acc) e);
          [ Builder.add b (Reg acc) e ]
        | _ -> assert false)
      ()
  in
  (match total with [ s ] -> Builder.ret b (Reg s) | _ -> assert false);
  Builder.finish b;
  let mem = Interp.Memory.create () in
  let p, (_ : Interp.Machine.result) =
    Profiling.Value_profile.collect prog ~entry:"main" ~args:[] ~mem
  in
  let profile uid = Profiling.Value_profile.check_kind p uid in
  let already = Hashtbl.create 4 in
  let stats = Transform.Value_checks.run prog ~profile ~already_checked:already in
  Alcotest.(check bool) "optimization 1 suppressed some checks" true
    (stats.suppressed_by_opt1 > 0);
  Alcotest.(check bool) "still inserted some" true (stats.inserted > 0);
  Alcotest.(check bool) "inserted fewer than candidates" true
    (stats.inserted < stats.candidates)

(* ----- full duplication ----- *)

let test_full_dup_structure () =
  let prog = build_crc_prog () in
  let before = Prog.instr_count prog in
  let stats = Transform.Full_dup.run prog in
  Verifier.verify prog;
  Alcotest.(check bool) "clones added" true (stats.cloned_instrs > 0);
  Alcotest.(check bool) "checks added" true (stats.dup_checks > 0);
  Alcotest.(check bool) "program grew" true (Prog.instr_count prog > before);
  (* No load/store/call clones. *)
  Prog.iter_funcs
    (fun f ->
      Func.iter_instrs
        (fun (ins : Instr.t) ->
          match ins.kind, ins.origin with
          | (Instr.Load _ | Instr.Store _ | Instr.Call _), Instr.Duplicated _ ->
            Alcotest.fail "memory instruction was duplicated"
          | _ -> ())
        f)
    prog

let test_overhead_ordering () =
  (* Simulated-cycle overhead must order: original < dup_only <= dup+valchk
     < full_dup for this loop-heavy program. *)
  let cycles technique =
    let prog = build_crc_prog () in
    let profile =
      if technique = Transform.Pipeline.Dup_valchk then begin
        let mem = Interp.Memory.create () in
        let p, (_ : Interp.Machine.result) =
          Profiling.Value_profile.collect prog ~entry:"main" ~args:crc_args ~mem
        in
        Some (fun uid -> Profiling.Value_profile.check_kind p uid)
      end
      else None
    in
    let (_ : Transform.Pipeline.stats) =
      Transform.Pipeline.protect ?profile prog technique
    in
    (run_main prog crc_args).cycles
  in
  let original = cycles Transform.Pipeline.Original in
  let dup_only = cycles Transform.Pipeline.Dup_only in
  let full_dup = cycles Transform.Pipeline.Full_dup in
  Alcotest.(check bool) "dup_only > original" true (dup_only > original);
  Alcotest.(check bool) "full_dup > dup_only" true (full_dup > dup_only)

let tests =
  [ Alcotest.test_case "state vars: crc loop" `Quick test_state_vars_found;
    Alcotest.test_case "state vars: straight line" `Quick
      test_state_vars_none_in_straightline;
    Alcotest.test_case "dup only: preserves semantics" `Quick test_dup_only_preserves;
    Alcotest.test_case "dup+valchk: preserves semantics" `Quick
      test_dup_valchk_preserves;
    Alcotest.test_case "full dup: preserves semantics" `Quick test_full_dup_preserves;
    Alcotest.test_case "dup: statistics" `Quick test_dup_stats;
    Alcotest.test_case "dup: terminates at loads" `Quick test_dup_terminates_at_loads;
    Alcotest.test_case "dup: detects state corruption" `Quick
      test_dup_detects_state_corruption;
    Alcotest.test_case "value checks: inserted and silent" `Quick
      test_value_checks_inserted;
    Alcotest.test_case "value checks: optimization 1" `Quick test_opt1_suppression;
    Alcotest.test_case "full dup: structure" `Quick test_full_dup_structure;
    Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
  ]
