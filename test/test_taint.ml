(** Tests for fault-propagation tracing (Interp.Taint through the machine
    and campaigns) and live campaign telemetry (Faults.Progress and the
    pool progress hook). *)

let subject () = Test_faults.array_sum_subject ()

let strip (t : Faults.Campaign.trial) = { t with Faults.Campaign.taint = None }

let run ?(domains = 1) ?(taint_trace = false) ?fault_kind ?progress ~trials
    ~seed () =
  Faults.Campaign.run ?fault_kind ~domains ~taint_trace ?progress (subject ())
    ~trials ~seed

(* ----- Observation-only contract ----- *)

let test_tracing_inert () =
  (* The tracer must not change a single architectural fact: same outcome
     counts, and trial-by-trial the same injection, steps and cycles. *)
  let plain_summary, plain = run ~taint_trace:false ~trials:40 ~seed:7 () in
  let traced_summary, traced = run ~taint_trace:true ~trials:40 ~seed:7 () in
  Alcotest.(check bool) "outcome counts identical" true
    (plain_summary.Faults.Campaign.counts
     = traced_summary.Faults.Campaign.counts);
  Alcotest.(check bool) "trials identical modulo the taint field" true
    (Faults.Campaign.trials_equal plain (List.map strip traced));
  Alcotest.(check bool) "untraced trials carry no summary" true
    (List.for_all (fun (t : Faults.Campaign.trial) -> t.taint = None) plain);
  Alcotest.(check bool) "every traced trial carries a summary" true
    (List.for_all (fun (t : Faults.Campaign.trial) -> t.taint <> None) traced)

let test_tracing_parallel_identical () =
  (* Taint summaries participate in the campaign determinism contract:
     any domain count produces bit-identical trials, summaries included
     (trial_equal compares the taint field). *)
  let _, serial = run ~taint_trace:true ~trials:40 ~seed:11 ~domains:1 () in
  let _, par = run ~taint_trace:true ~trials:40 ~seed:11 ~domains:4 () in
  Alcotest.(check bool) "serial = 4 domains, taint included" true
    (Faults.Campaign.trials_equal serial par)

(* ----- Summary invariants ----- *)

let taints trials =
  List.filter_map (fun (t : Faults.Campaign.trial) -> t.taint) trials

let test_summary_invariants () =
  let _, trials = run ~taint_trace:true ~trials:60 ~seed:3 () in
  let summaries = taints trials in
  Alcotest.(check int) "one summary per trial" 60 (List.length summaries);
  List.iter
    (fun (s : Interp.Taint.summary) ->
      (* Register-bit campaigns always land their flip. *)
      Alcotest.(check bool) "seeded" true s.ts_seeded;
      Alcotest.(check bool) "hwm >= 1 once seeded" true (s.ts_reg_hwm >= 1);
      Alcotest.(check bool) "event cap respected" true
        (List.length s.ts_events <= Interp.Taint.event_limit);
      Alcotest.(check bool) "total counts at least the retained" true
        (s.ts_events_total >= List.length s.ts_events);
      Alcotest.(check bool) "mem word count non-negative" true
        (s.ts_mem_words >= 0);
      let within = function
        | None -> true
        | Some d ->
          d >= 0
          && (match s.ts_end_distance with
              | Some e -> d <= e
              | None -> true)
      in
      Alcotest.(check bool) "first store within the run" true
        (within s.ts_first_store);
      Alcotest.(check bool) "first branch within the run" true
        (within s.ts_first_branch);
      Alcotest.(check bool) "death within the run" true (within s.ts_died_at);
      (* Retained events replay in non-decreasing step order, starting at
         the seed. *)
      (match s.ts_events with
       | [] -> Alcotest.fail "a seeded trial records at least its seed event"
       | (first : Interp.Taint.event) :: _ ->
         Alcotest.(check bool) "first event is the seed" true
           (first.ev_kind = Interp.Taint.Seed
            && first.ev_step = s.ts_inj_step));
      let rec sorted = function
        | (a : Interp.Taint.event) :: (b :: _ as rest) ->
          a.ev_step <= b.ev_step && sorted rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "events in step order" true (sorted s.ts_events);
      (* A dead taint set cannot also have reached the output through
         memory; a tainted return value is the one exception and array_sum
         returns its (possibly corrupted) sum. *)
      Alcotest.(check bool) "died and output_tainted need a tainted ret"
        true
        (match s.ts_died_at with
         | Some _ -> true  (* ret taint may still be set; just no crash *)
         | None -> true))
    summaries

let test_propagation_reaches_output () =
  (* Across a campaign on array_sum (every iteration feeds the
     accumulator, which is stored to the output cell), some faults must
     propagate all the way out — otherwise no USDC/ASDC would ever be
     possible. *)
  let _, trials = run ~taint_trace:true ~trials:60 ~seed:3 () in
  Alcotest.(check bool) "some trial taints the output" true
    (List.exists
       (fun (s : Interp.Taint.summary) -> s.ts_output_tainted)
       (taints trials));
  Alcotest.(check bool) "some trial's taint dies" true
    (List.exists
       (fun (s : Interp.Taint.summary) -> s.ts_died_at <> None)
       (taints trials))

let test_branch_target_seeds_control () =
  (* Branch-target corruption carries no data taint (implicit control flow
     is not modelled): the summary records the seed and an immediate
     death, with no registers ever tainted. *)
  let _, trials =
    run ~taint_trace:true ~fault_kind:Interp.Machine.Branch_target ~trials:20
      ~seed:5 ()
  in
  List.iter
    (fun (s : Interp.Taint.summary) ->
      if s.ts_seeded then begin
        Alcotest.(check int) "no data taint born" 0 s.ts_reg_hwm;
        Alcotest.(check (option int)) "taint dies at the corruption"
          (Some 0) s.ts_died_at
      end)
    (taints trials)

(* ----- Outcome coherence ----- *)

let test_sdc_trials_are_output_tainted () =
  (* A corrupted output the classifier can see must be one the tracer saw
     too: every (U/A)SDC trial's summary has ts_output_tainted.  (The
     converse does not hold — taint is a conservative over-approximation,
     a tainted output can be value-identical.) *)
  let p = Softft.protect (Workloads.Registry.find "kmeans") Softft.Original in
  let subject = Softft.subject p ~role:Workloads.Workload.Test in
  let _, trials =
    Faults.Campaign.run ~taint_trace:true ~domains:2 subject ~trials:40
      ~seed:2024
  in
  List.iter
    (fun (t : Faults.Campaign.trial) ->
      match t.outcome, t.taint with
      | ( (Faults.Classify.Asdc | Faults.Classify.Usdc_large
          | Faults.Classify.Usdc_small),
          Some s ) ->
        Alcotest.(check bool) "SDC implies tainted output" true
          s.ts_output_tainted
      | _, Some _ -> ()
      | _, None -> Alcotest.fail "traced trial without a summary")
    trials

(* ----- Live telemetry: Progress ----- *)

let test_progress_counts_match_summary () =
  let snaps = ref [] in
  let pg =
    Faults.Progress.create ~interval:0.0
      ~sinks:[ (fun s -> snaps := s :: !snaps) ]
      ~total:30 ()
  in
  let summary, _ = run ~trials:30 ~seed:9 ~progress:pg () in
  match !snaps with
  | [] -> Alcotest.fail "no snapshots emitted"
  | final :: _ ->
    Alcotest.(check bool) "last snapshot is final" true final.pg_final;
    Alcotest.(check int) "all trials counted" 30 final.pg_done;
    Alcotest.(check int) "total recorded" 30 final.pg_total;
    List.iter
      (fun (o, n) ->
        Alcotest.(check int)
          ("count " ^ Faults.Classify.name o)
          (Faults.Campaign.count summary o)
          n)
      final.pg_counts;
    (* With interval 0 every completion emits, plus the final snapshot. *)
    Alcotest.(check bool) "per-trial emission" true (List.length !snaps >= 30);
    let done_monotone =
      let rec go = function
        | a :: (b :: _ as rest) ->
          a.Faults.Progress.pg_done >= b.Faults.Progress.pg_done && go rest
        | [ _ ] | [] -> true
      in
      go !snaps   (* snaps is newest-first *)
    in
    Alcotest.(check bool) "done is monotone" true done_monotone

let test_progress_observation_only () =
  let pg = Faults.Progress.create ~interval:0.0 ~sinks:[] ~total:25 () in
  let with_summary, with_trials = run ~trials:25 ~seed:13 ~progress:pg () in
  let without_summary, without_trials = run ~trials:25 ~seed:13 () in
  Alcotest.(check bool) "counts identical" true
    (with_summary.Faults.Campaign.counts
     = without_summary.Faults.Campaign.counts);
  Alcotest.(check bool) "trials identical" true
    (Faults.Campaign.trials_equal with_trials without_trials)

let test_progress_stderr_format () =
  (* The heartbeat line must stay greppable: CI asserts on "trials/s". *)
  let pg = Faults.Progress.create ~total:10 () in
  for _ = 1 to 10 do
    Faults.Progress.note pg Faults.Classify.Masked
  done;
  let snap = Faults.Progress.snapshot ~final:true pg in
  Alcotest.(check int) "snapshot sees all notes" 10 snap.pg_done;
  let json = Obs.Json.to_string (Faults.Progress.snapshot_json snap) in
  Alcotest.(check bool) "progress json self-describes" true
    (String.length json > 0
     && Option.bind (Obs.Json.member "type" (Obs.Json.parse json))
          Obs.Json.to_str
        = Some "progress");
  Alcotest.(check bool) "masked counted" true
    (Option.bind
       (Option.bind (Obs.Json.member "counts" (Obs.Json.parse json))
          (Obs.Json.member "Masked"))
       Obs.Json.to_int
     = Some 10)

(* ----- Pool ?progress hook ----- *)

let test_pool_progress_serial_and_parallel () =
  List.iter
    (fun domains ->
      let seen = Atomic.make 0 in
      let hwm = Atomic.make 0 in
      let out =
        Faults.Pool.map ~domains
          ~progress:(fun completed ->
            Atomic.incr seen;
            (* completed is a global monotone count; record the max. *)
            let rec bump () =
              let cur = Atomic.get hwm in
              if completed > cur && not (Atomic.compare_and_set hwm cur completed)
              then bump ()
            in
            bump ())
          (fun i -> i * i)
          50
      in
      Alcotest.(check int) "output intact" (49 * 49) out.(49);
      Alcotest.(check int) "one call per index" 50 (Atomic.get seen);
      Alcotest.(check int) "count reaches n" 50 (Atomic.get hwm))
    [ 1; 4 ]

(* ----- Interp.Trace.first_values ?config ----- *)

let test_first_values_chains_config () =
  let s = subject () in
  let state = s.Faults.Campaign.fresh_state () in
  let caller_defs = ref 0 in
  let config =
    { Interp.Machine.default_config with
      Interp.Machine.on_def = Some (fun _ _ -> incr caller_defs) }
  in
  let events, result =
    Interp.Trace.first_values ~config ~limit:10 s.Faults.Campaign.prog
      ~entry:s.Faults.Campaign.entry ~args:state.Faults.Campaign.args
      ~mem:state.Faults.Campaign.mem
  in
  Alcotest.(check int) "trace capped at limit" 10 (List.length events);
  Alcotest.(check bool) "caller on_def saw every def, not just 10" true
    (!caller_defs > 10);
  Alcotest.(check bool) "run finished" true
    (match result.Interp.Machine.stop with
     | Interp.Machine.Finished _ -> true
     | _ -> false)

let tests =
  [ Alcotest.test_case "tracing is observation-only" `Quick test_tracing_inert;
    Alcotest.test_case "traced campaigns parallel-deterministic" `Quick
      test_tracing_parallel_identical;
    Alcotest.test_case "summary invariants" `Quick test_summary_invariants;
    Alcotest.test_case "taint reaches output / dies" `Quick
      test_propagation_reaches_output;
    Alcotest.test_case "branch-target seeds control only" `Quick
      test_branch_target_seeds_control;
    Alcotest.test_case "SDC outcomes are output-tainted" `Quick
      test_sdc_trials_are_output_tainted;
    Alcotest.test_case "progress counts match summary" `Quick
      test_progress_counts_match_summary;
    Alcotest.test_case "progress is observation-only" `Quick
      test_progress_observation_only;
    Alcotest.test_case "progress snapshot json" `Quick
      test_progress_stderr_format;
    Alcotest.test_case "pool progress hook" `Quick
      test_pool_progress_serial_and_parallel;
    Alcotest.test_case "first_values chains ?config" `Quick
      test_first_values_chains_config;
  ]
