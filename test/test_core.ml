(** Test-suite entry point: aggregates the per-module suites. *)

let () =
  Alcotest.run "softft"
    [ ("rng", Test_rng.tests);
      ("ir", Test_ir.tests);
      ("ir-edit", Test_ir_edit.tests);
      ("parser", Test_parser.tests);
      ("analysis", Test_analysis.tests);
      ("lint", Test_lint.tests);
      ("coverage", Test_coverage.tests);
      ("plan", Test_plan.tests);
      ("interp", Test_interp.tests);
      ("fidelity", Test_fidelity.tests);
      ("profiling", Test_profiling.tests);
      ("transform", Test_transform.tests);
      ("optimizer", Test_optimizer.tests);
      ("faults", Test_faults.tests);
      ("taint", Test_taint.tests);
      ("workloads", Test_workloads.tests);
      ("codecs", Test_codecs.tests);
      ("api", Test_api.tests);
      ("report", Test_report.tests);
      ("obs", Test_obs.tests);
      ("warehouse", Test_warehouse.tests);
      ("cli", Test_cli.tests);
      ("properties", Test_properties.tests);
    ]
