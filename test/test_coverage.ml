(** Tests for the static protection-coverage analyzer
    ({!Analysis.Coverage}). *)

module C = Analysis.Coverage

let analyze ?exec_counts technique name =
  let p = Softft.protect (Workloads.Registry.find name) technique in
  (p, C.analyze ?exec_counts p.prog)

(* ----- totality: every instruction of every workload is classified ----- *)

let test_classifies_every_instruction () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun technique ->
          let p = Softft.protect w technique in
          let cov = C.analyze p.prog in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: rows = instrs" w.name
               (Softft.technique_name technique))
            (Ir.Prog.instr_count p.prog)
            (List.length cov.C.instrs);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: status counts sum" w.name
               (Softft.technique_name technique))
            cov.C.total_instrs
            (List.fold_left (fun a (_, n) -> a + n) 0 cov.C.by_status);
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s/%s: fractions total 1" w.name
               (Softft.technique_name technique))
            1.0
            (C.instr_fraction cov
               [ C.Dup_checked; C.Value_checked; C.Dup_unchecked; C.Shadow;
                 C.Check; C.Unprotected ]))
        Softft.extended_techniques)
    Workloads.Registry.all

(* ----- the unprotected baseline ----- *)

let test_original_is_unprotected () =
  let _, cov = analyze Softft.Original "kmeans" in
  Alcotest.(check (float 1e-9)) "no machinery" 0.0
    (C.instr_fraction cov [ C.Shadow; C.Check; C.Dup_checked; C.Value_checked ]);
  Alcotest.(check (float 1e-9)) "all exposure unprotected" 1.0
    cov.C.sdc_prone_fraction

(* ----- protection lowers the predicted SDC-prone fraction ----- *)

let test_protection_reduces_sdc_fraction () =
  List.iter
    (fun name ->
      let _, orig = analyze Softft.Original name in
      let _, full = analyze Softft.Full_dup name in
      let _, sel = analyze Softft.Dup_valchk name in
      Alcotest.(check bool)
        (Printf.sprintf "%s: full-dup below original (%.3f < %.3f)" name
           full.C.sdc_prone_fraction orig.C.sdc_prone_fraction)
        true
        (full.C.sdc_prone_fraction < orig.C.sdc_prone_fraction);
      Alcotest.(check bool)
        (Printf.sprintf "%s: selective below original (%.3f < %.3f)" name
           sel.C.sdc_prone_fraction orig.C.sdc_prone_fraction)
        true
        (sel.C.sdc_prone_fraction < orig.C.sdc_prone_fraction);
      Alcotest.(check bool)
        (Printf.sprintf "%s: full-dup at or below selective (%.3f <= %.3f)"
           name full.C.sdc_prone_fraction sel.C.sdc_prone_fraction)
        true
        (full.C.sdc_prone_fraction <= sel.C.sdc_prone_fraction))
    [ "kmeans"; "jpegdec"; "g721enc" ]

(* ----- protected techniques actually mark instructions as covered ----- *)

let test_selective_marks_chains () =
  let p, cov = analyze Softft.Dup_only "kmeans" in
  Alcotest.(check bool) "has shadows" true
    (C.instr_fraction cov [ C.Shadow ] > 0.0);
  Alcotest.(check bool) "has dup-checked originals" true
    (C.instr_fraction cov [ C.Dup_checked ] > 0.0);
  (* Selective duplication never leaves an unchecked chain. *)
  Alcotest.(check (float 1e-9)) "no dup-unchecked" 0.0
    (C.instr_fraction cov [ C.Dup_unchecked ]);
  ignore p

let test_value_checks_mark_instrs () =
  let _, cov = analyze Softft.Dup_valchk "jpegdec" in
  Alcotest.(check bool) "has value-checked instrs" true
    (C.instr_fraction cov [ C.Value_checked ] > 0.0)

(* ----- dynamic exposure weighting ----- *)

let test_dynamic_weights_from_profile () =
  let p = Softft.protect (Workloads.Registry.find "kmeans") Softft.Dup_valchk in
  let prof = Interp.Profile.create () in
  let (_ : Faults.Campaign.golden) =
    Softft.golden ~profile:prof p ~role:Workloads.Workload.Test
  in
  let static = C.analyze p.prog in
  let dynamic =
    C.analyze ~exec_counts:(Interp.Profile.func_block_counts prof) p.prog
  in
  Alcotest.(check bool) "static has uniform weights" false
    static.C.dynamic_weights;
  Alcotest.(check bool) "profile supplies dynamic weights" true
    dynamic.C.dynamic_weights;
  Alcotest.(check bool) "dynamic exposure dominates static" true
    (dynamic.C.exposure_total > static.C.exposure_total)

(* ----- ranking ----- *)

let test_ranked_regs_unprotected_first () =
  let _, cov = analyze Softft.Dup_valchk "kmeans" in
  let ranked = C.ranked_regs cov in
  let is_unprot (r : C.reg_row) =
    match r.C.r_status with
    | C.Unprotected | C.Dup_unchecked -> true
    | _ -> false
  in
  (* Once a protected row appears, no unprotected row may follow. *)
  let (_ : bool) =
    List.fold_left
      (fun seen_protected row ->
        if seen_protected && is_unprot row then
          Alcotest.fail "unprotected row after protected row"
        else seen_protected || not (is_unprot row))
      false ranked
  in
  (* Within the unprotected prefix, exposure is non-increasing. *)
  let rec check_desc = function
    | (a : C.reg_row) :: (b :: _ as rest) when is_unprot a && is_unprot b ->
      Alcotest.(check bool) "exposure non-increasing" true
        (a.C.r_exposure >= b.C.r_exposure);
      check_desc rest
    | _ :: rest -> check_desc rest
    | [] -> ()
  in
  check_desc ranked;
  Alcotest.(check int) "limit respected" 5
    (List.length (C.ranked_regs ~limit:5 cov))

let tests =
  [ Alcotest.test_case "classifies 100% of instructions" `Slow
      test_classifies_every_instruction;
    Alcotest.test_case "original fully unprotected" `Quick
      test_original_is_unprotected;
    Alcotest.test_case "protection lowers SDC-prone fraction" `Quick
      test_protection_reduces_sdc_fraction;
    Alcotest.test_case "selective chains covered" `Quick
      test_selective_marks_chains;
    Alcotest.test_case "value checks counted" `Quick
      test_value_checks_mark_instrs;
    Alcotest.test_case "profile drives exposure weights" `Quick
      test_dynamic_weights_from_profile;
    Alcotest.test_case "ranking: vulnerable first" `Quick
      test_ranked_regs_unprotected_first;
  ]
