(** Tests for the analysis library: CFG, dominators, loops, use-def. *)

open Ir

(* A diamond with a loop on one side:
   entry -> a -> (b | c); b -> latch -> a (back edge); c -> exit *)
let diamond_loop_prog () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let total =
    Builder.for_up b ~from:(Builder.imm 0) ~until:n ~carried:[ Builder.imm 0 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] ->
          let odd = Builder.and_ b i (Builder.imm 1) in
          let vals =
            Builder.if_ b odd
              ~then_:(fun () -> [ Builder.add b (Reg acc) i ])
              ~else_:(fun () -> [ Builder.sub b (Reg acc) i ])
          in
          (match vals with [ v ] -> [ Instr.Reg v ] | _ -> assert false)
        | _ -> assert false)
      ()
  in
  (match total with [ s ] -> Builder.ret b (Reg s) | _ -> assert false);
  Builder.finish b;
  Verifier.verify prog;
  prog

let cfg_of prog = Analysis.Cfg.of_func (Prog.find_func prog "main")

let test_cfg_structure () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  Alcotest.(check bool) "has blocks" true (Analysis.Cfg.n_blocks cfg >= 5);
  (* Entry has no predecessors. *)
  Alcotest.(check (list int)) "entry preds" [] cfg.pred.(cfg.entry);
  (* Successor/predecessor consistency. *)
  for node = 0 to Analysis.Cfg.n_blocks cfg - 1 do
    List.iter
      (fun s ->
        Alcotest.(check bool) "succ/pred consistent" true
          (List.mem node cfg.pred.(s)))
      cfg.succ.(node)
  done

let test_rpo_starts_at_entry () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  let rpo = Analysis.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "first is entry" cfg.entry rpo.(0)

let test_dominators () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  let dom = Analysis.Dom.compute cfg in
  (* Entry dominates everything reachable. *)
  let reachable = Analysis.Cfg.reachable cfg in
  for node = 0 to Analysis.Cfg.n_blocks cfg - 1 do
    if reachable.(node) then
      Alcotest.(check bool) "entry dominates" true
        (Analysis.Dom.dominates dom cfg.entry node)
  done;
  (* Dominance is reflexive and antisymmetric on distinct nodes. *)
  for node = 0 to Analysis.Cfg.n_blocks cfg - 1 do
    if reachable.(node) then begin
      Alcotest.(check bool) "reflexive" true (Analysis.Dom.dominates dom node node)
    end
  done

let test_idom_is_dominator () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  let dom = Analysis.Dom.compute cfg in
  for node = 0 to Analysis.Cfg.n_blocks cfg - 1 do
    match Analysis.Dom.idom dom node with
    | None -> ()
    | Some parent ->
      Alcotest.(check bool) "idom dominates child" true
        (Analysis.Dom.dominates dom parent node)
  done

let test_loop_detection () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  let loops = Analysis.Loops.compute cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops.loops);
  let l = List.hd loops.loops in
  Alcotest.(check int) "depth 1" 1 l.depth;
  Alcotest.(check bool) "header in body" true (List.mem l.header l.body);
  List.iter
    (fun latch ->
      Alcotest.(check bool) "latch in body" true (List.mem latch l.body))
    l.latches

let test_nested_loop_depth () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 3)
    ~body:(fun ~i:_ ->
      Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 3)
        ~body:(fun ~i:_ -> ()));
  Builder.ret b (Builder.imm 0);
  Builder.finish b;
  let cfg = cfg_of prog in
  let loops = Analysis.Loops.compute cfg in
  Alcotest.(check int) "two loops" 2 (List.length loops.loops);
  let depths = List.sort compare (List.map (fun l -> l.Analysis.Loops.depth) loops.loops) in
  Alcotest.(check (list int)) "depths 1 and 2" [ 1; 2 ] depths

let test_header_phis_are_state_vars () =
  let cfg = cfg_of (diamond_loop_prog ()) in
  let loops = Analysis.Loops.compute cfg in
  let phis = Analysis.Loops.header_phis loops in
  (* Index + accumulator. *)
  Alcotest.(check int) "two header phis" 2 (List.length phis)

let test_usedef_defs () =
  let prog = diamond_loop_prog () in
  let f = Prog.find_func prog "main" in
  let ud = Analysis.Usedef.compute f in
  (* Every used register has a def site. *)
  Func.iter_instrs
    (fun ins ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "use has def" true
            (Analysis.Usedef.def_of ud r <> None))
        (Instr.uses ins))
    f;
  (* Parameters are Param defs. *)
  List.iter
    (fun p ->
      match Analysis.Usedef.def_of ud p with
      | Some Analysis.Usedef.Param -> ()
      | _ -> Alcotest.fail "param not recognized")
    f.params

let test_producer_chain_stops_at_loads () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let base = Builder.param b 0 in
  let x = Builder.load b base in
  let y = Builder.add b x (Builder.imm 1) in
  let z = Builder.mul b y y in
  Builder.ret b z;
  Builder.finish b;
  let f = Prog.find_func prog "main" in
  let ud = Analysis.Usedef.compute f in
  match z with
  | Instr.Reg r ->
    let chain, stops = Analysis.Usedef.producer_chain ud r in
    (* mul and add are in the chain; the load terminates it. *)
    Alcotest.(check int) "chain length" 2 (List.length chain);
    Alcotest.(check bool) "load is a stop" true
      (List.exists
         (fun s ->
           match Analysis.Usedef.def_of ud s with
           | Some (Analysis.Usedef.Instr_def (_, ins)) ->
             (match ins.kind with Instr.Load _ -> true | _ -> false)
           | _ -> false)
         stops)
  | Instr.Imm _ -> Alcotest.fail "expected a register"

let test_producer_chain_handles_cycles () =
  (* The loop accumulator's chain must terminate despite the phi cycle. *)
  let prog = diamond_loop_prog () in
  let f = Prog.find_func prog "main" in
  let ud = Analysis.Usedef.compute f in
  let svs = Transform.State_vars.of_func f in
  List.iter
    (fun (sv : Transform.State_vars.state_var) ->
      List.iter
        (fun (_, op) ->
          match op with
          | Instr.Reg r ->
            let chain, _ = Analysis.Usedef.producer_chain ud r in
            Alcotest.(check bool) "chain finite" true (List.length chain < 100)
          | Instr.Imm _ -> ())
        sv.back_edges)
    svs

(* An irreducible CFG: the cycle a <-> b has two entry points, so neither
   node dominates the other and no back edge targets a dominator.  Natural
   loop detection must find nothing while dominators stay well-defined. *)
let irreducible_prog () =
  Parser.parse
    "func @main(%r0) {\n\
     entry:\n\
    \  br %r0, a, b\n\
     a:\n\
    \  jmp b\n\
     b:\n\
    \  br %r0, a, exit\n\
     exit:\n\
    \  ret %r0\n\
     }\n"

let test_irreducible_no_natural_loops () =
  let cfg = cfg_of (irreducible_prog ()) in
  let loops = Analysis.Loops.compute cfg in
  Alcotest.(check int) "no natural loops" 0 (List.length loops.loops)

let test_irreducible_dominators () =
  let cfg = cfg_of (irreducible_prog ()) in
  let dom = Analysis.Dom.compute cfg in
  let a = Analysis.Cfg.index cfg "a" and b = Analysis.Cfg.index cfg "b" in
  let exit = Analysis.Cfg.index cfg "exit" in
  List.iter
    (fun n ->
      Alcotest.(check bool) "entry dominates" true
        (Analysis.Dom.dominates dom cfg.entry n))
    [ a; b; exit ];
  (* Both cycle nodes are reachable around the other: no mutual dominance,
     and each one's immediate dominator collapses to the entry. *)
  Alcotest.(check bool) "a !dom b" false (Analysis.Dom.dominates dom a b);
  Alcotest.(check bool) "b !dom a" false (Analysis.Dom.dominates dom b a);
  Alcotest.(check (option int)) "idom a = entry" (Some cfg.entry)
    (Analysis.Dom.idom dom a);
  Alcotest.(check (option int)) "idom b = entry" (Some cfg.entry)
    (Analysis.Dom.idom dom b);
  Alcotest.(check (option int)) "idom exit = b" (Some b)
    (Analysis.Dom.idom dom exit)

(* A self-loop: the header is its own latch. *)
let self_loop_prog () =
  Parser.parse
    "func @main(%r0) {\n\
     entry:\n\
    \  jmp loop\n\
     loop:\n\
    \  %r1 = phi [entry: 0], [loop: %r2]    ; #0\n\
    \  %r2 = add %r1, 1    ; #1\n\
    \  %r3 = icmp slt %r2, %r0    ; #2\n\
    \  br %r3, loop, exit\n\
     exit:\n\
    \  ret %r2\n\
     }\n"

let test_self_loop () =
  let cfg = cfg_of (self_loop_prog ()) in
  let loops = Analysis.Loops.compute cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops.loops);
  let l = List.hd loops.loops in
  let node = Analysis.Cfg.index cfg "loop" in
  Alcotest.(check int) "header is the self-loop block" node l.header;
  Alcotest.(check (list int)) "header is its own latch" [ node ] l.latches;
  Alcotest.(check (list int)) "body is just the header" [ node ] l.body;
  Alcotest.(check int) "depth 1" 1 l.depth;
  Alcotest.(check bool) "is_header" true (Analysis.Loops.is_header loops node);
  Alcotest.(check int) "one header phi (the accumulator)" 1
    (List.length (Analysis.Loops.header_phis loops))

(* ----- liveness phi-edge exactness ----- *)

let test_liveness_phi_edge_dedupe () =
  (* Two phis in c both read %r1 on the edge from a: the predecessor's
     live-out must list the register exactly once. *)
  let prog =
    Parser.parse
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  br %r0, a, b\n\
       a:\n\
      \  jmp c\n\
       b:\n\
      \  jmp c\n\
       c:\n\
      \  %r2 = phi [a: %r1], [b: 0]    ; #1\n\
      \  %r3 = phi [a: %r1], [b: 1]    ; #2\n\
      \  %r4 = add %r2, %r3    ; #3\n\
      \  ret %r4\n\
       }\n"
  in
  let f = Prog.find_func prog "main" in
  let r1 =
    match (Func.find_block f "entry").body.(0).dest with
    | Some r -> r
    | None -> Alcotest.fail "entry add has a dest"
  in
  Alcotest.(check int) "edge uses deduped" 1
    (List.length
       (Analysis.Liveness.phi_edge_uses (Func.find_block f "c")
          ~pred_label:"a"));
  let live = Analysis.Liveness.compute (cfg_of prog) in
  Alcotest.(check (list int)) "live out of a = exactly [r1]" [ r1 ]
    (Analysis.Liveness.live_out live "a");
  Alcotest.(check (list int)) "live out of b = [] (imm incomings)" []
    (Analysis.Liveness.live_out live "b");
  Alcotest.(check (list int)) "nothing live into c (phi defs at entry)" []
    (Analysis.Liveness.live_in live "c")

let tests =
  [ Alcotest.test_case "cfg: structure" `Quick test_cfg_structure;
    Alcotest.test_case "cfg: rpo entry first" `Quick test_rpo_starts_at_entry;
    Alcotest.test_case "dom: entry dominates all" `Quick test_dominators;
    Alcotest.test_case "dom: idom is dominator" `Quick test_idom_is_dominator;
    Alcotest.test_case "loops: single loop" `Quick test_loop_detection;
    Alcotest.test_case "loops: nesting depth" `Quick test_nested_loop_depth;
    Alcotest.test_case "loops: header phis" `Quick test_header_phis_are_state_vars;
    Alcotest.test_case "usedef: defs resolve" `Quick test_usedef_defs;
    Alcotest.test_case "usedef: chain stops at loads" `Quick
      test_producer_chain_stops_at_loads;
    Alcotest.test_case "usedef: chain handles phi cycles" `Quick
      test_producer_chain_handles_cycles;
    Alcotest.test_case "loops: irreducible cycle has none" `Quick
      test_irreducible_no_natural_loops;
    Alcotest.test_case "dom: irreducible cycle" `Quick
      test_irreducible_dominators;
    Alcotest.test_case "loops: self-loop header is latch" `Quick
      test_self_loop;
    Alcotest.test_case "liveness: phi edge dedupe" `Quick
      test_liveness_phi_edge_dedupe;
  ]
