(** Observability subsystem tests: JSON codec, metrics, logging sinks,
    the campaign trial journal, pool stats, and — the contract that
    matters — determinism of campaigns under full telemetry. *)

open Obs

(* ----- JSON ----- *)

let sample_json =
  Json.Obj
    [ ("null", Json.Null);
      ("t", Json.Bool true);
      ("f", Json.Bool false);
      ("int", Json.Int (-42));
      ("big", Json.Int max_int);
      ("float", Json.Float 0.1);
      ("exp", Json.Float 1.5e300);
      ("str", Json.Str "line\nbreak \"quoted\" \\ tab\t\x01");
      ("utf8", Json.Str "\xce\xbcops");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("nested", Json.Obj [ ("empty", Json.Obj []) ]) ]

let test_json_roundtrip () =
  let s = Json.to_string sample_json in
  Alcotest.(check bool) "roundtrip" true (Json.parse s = sample_json);
  (* And printing is stable through a second cycle. *)
  Alcotest.(check string) "stable" s (Json.to_string (Json.parse s))

let test_json_unicode_escapes () =
  Alcotest.(check bool) "bmp escape" true
    (Json.parse {|"µs"|} = Json.Str "\xc2\xb5s");
  (* Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8. *)
  Alcotest.(check bool) "surrogate pair" true
    (Json.parse {|"😀"|} = Json.Str "\xf0\x9f\x98\x80")

let expect_parse_error s =
  match Json.parse s with
  | exception Json.Parse_error _ -> ()
  | j ->
    Alcotest.failf "expected Parse_error on %S, got %s" s (Json.to_string j)

let test_json_parse_errors () =
  List.iter expect_parse_error
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 garbage";
      "{\"a\" 1}"; "[1 2]"; "nul" ]

let test_json_accessors () =
  let j = Json.parse {|{"a": 3, "b": 2.5, "s": "x", "l": [1], "t": true}|} in
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (Json.member "a" j) Json.to_int);
  Alcotest.(check (option (float 1e-9))) "int promotes to float" (Some 3.0)
    (Option.bind (Json.member "a" j) Json.to_float);
  Alcotest.(check (option (float 1e-9))) "float" (Some 2.5)
    (Option.bind (Json.member "b" j) Json.to_float);
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Json.member "s" j) Json.to_str);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "t" j) Json.to_bool);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Json.member "zz" j) Json.to_int);
  Alcotest.(check bool) "wrong type" true
    (Option.bind (Json.member "s" j) Json.to_int = None)

(* ----- Metrics ----- *)

let test_metrics_counter () =
  let r = Metrics.registry () in
  let c = Metrics.counter r "trials" in
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  Alcotest.(check int) "counted" 6 (Metrics.counter_value c);
  (* Get-or-create: same name, same instrument. *)
  Metrics.incr (Metrics.counter r "trials");
  Alcotest.(check int) "interned" 7 (Metrics.counter_value c)

let test_metrics_histogram_buckets () =
  let r = Metrics.registry () in
  let h = Metrics.histogram r "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1024 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 1034 (Metrics.hist_sum h);
  Alcotest.(check int) "max" 1024 (Metrics.hist_max h);
  (* log2 buckets: 0 -> [0,1), 1 -> [1,2), 2..3 -> [2,4), 4 -> [4,8),
     1024 -> [1024,2048). *)
  Alcotest.(check (list (triple int int int))) "buckets"
    [ (0, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 1); (1024, 2048, 1) ]
    (Metrics.hist_buckets h);
  Alcotest.(check int) "p50 upper bound" 4 (Metrics.hist_quantile h 0.5);
  Alcotest.(check int) "p100 upper bound" 2048 (Metrics.hist_quantile h 1.0)

(* ----- Logging ----- *)

let test_log_jsonl_sink_and_level () =
  let path = Filename.temp_file "softft_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let log = Log.make ~level:Log.Warn ~sinks:[ Log.jsonl_sink oc ] "test" in
      Alcotest.(check bool) "warn enabled" true (Log.enabled log Log.Warn);
      Alcotest.(check bool) "info filtered" false (Log.enabled log Log.Info);
      Log.info log "dropped below level";
      Log.warn log ~fields:[ ("n", Json.Int 3) ] "kept";
      Log.error (Log.child log "sub") "child shares sinks";
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev_map Json.parse !lines with
      | [ e1; e2 ] ->
        let str name j = Option.bind (Json.member name j) Json.to_str in
        Alcotest.(check (option string)) "level" (Some "warn")
          (str "level" e1);
        Alcotest.(check (option string)) "msg" (Some "kept") (str "msg" e1);
        Alcotest.(check (option int)) "field" (Some 3)
          (Option.bind (Json.member "n" e1) Json.to_int);
        Alcotest.(check (option string)) "child component" (Some "test/sub")
          (str "component" e2)
      | lines -> Alcotest.failf "expected 2 log lines, got %d" (List.length lines))

(* ----- Pool stats ----- *)

let check_pool_stats ~domains n =
  let stats = ref None in
  let out = Faults.Pool.map ~domains ~stats (fun i -> i * i) n in
  Alcotest.(check int) "results intact" n (Array.length out);
  match !stats with
  | None -> Alcotest.fail "no stats reported"
  | Some (s : Faults.Pool.stats) ->
    Alcotest.(check int) "workers" s.st_domains (Array.length s.st_wall);
    Alcotest.(check int) "item slots" s.st_domains (Array.length s.st_items);
    Alcotest.(check int) "all items accounted" n
      (Array.fold_left ( + ) 0 s.st_items);
    Alcotest.(check bool) "chunk positive" true (n = 0 || s.st_chunk > 0)

let test_pool_stats_serial () = check_pool_stats ~domains:1 37
let test_pool_stats_parallel () = check_pool_stats ~domains:3 37
let test_pool_stats_empty () = check_pool_stats ~domains:2 0

exception Trial_blew_up

let test_pool_cancellation () =
  (* A worker exception must propagate out of [map] (not hang, not be
     swallowed), and the other domains must stop claiming chunks instead of
     draining the whole index space first. *)
  let n = 1000 in
  let computed = Atomic.make 0 in
  let f i =
    if i = 0 then raise Trial_blew_up
    else begin
      Unix.sleepf 0.001;
      Atomic.incr computed;
      i
    end
  in
  (match Faults.Pool.map ~domains:4 f n with
   | (_ : int array) -> Alcotest.fail "expected Trial_blew_up"
   | exception Trial_blew_up -> ());
  (* Worker 0 raises on its first index; every other worker finishes at
     most the chunks already in flight before seeing the flag.  Draining
     would need all ~1000 slow items. *)
  Alcotest.(check bool)
    (Printf.sprintf "cancelled early (%d of %d computed)"
       (Atomic.get computed) n)
    true
    (Atomic.get computed < n / 2)

let test_pool_serial_exception () =
  (* The degenerate serial path must propagate too. *)
  match Faults.Pool.map ~domains:1 (fun _ -> raise Trial_blew_up) 5 with
  | (_ : int array) -> Alcotest.fail "expected Trial_blew_up"
  | exception Trial_blew_up -> ()

(* ----- Journal ----- *)

let small_campaign ?profile ?on_trial ?stats_out ?progress ?trace ~domains () =
  Faults.Campaign.run ?profile ?on_trial ?stats_out ?progress ?trace ~domains
    (Test_faults.array_sum_subject ())
    ~trials:30 ~seed:2024

let test_journal_write_load () =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let stats = ref None in
      let summary, trials = small_campaign ~stats_out:stats ~domains:2 () in
      let manifest =
        Faults.Journal.manifest_record ~git:"test" ~technique:"none"
          ?stats:!stats ~label:"array_sum" ~trials:30 ~seed:2024 ~domains:2
          ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      Faults.Journal.write ~path ~manifest ~trials ();
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "schema" (Some Faults.Journal.schema)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check (option int)) "trials" (Some 30)
        (Option.bind (Json.member "trials" m) Json.to_int);
      Alcotest.(check bool) "timings present" true
        (Json.member "timings" m <> None);
      Alcotest.(check int) "one view per trial" (List.length trials)
        (List.length views);
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          Alcotest.(check int) "index" i v.v_index;
          Alcotest.(check int) "seed" t.Faults.Campaign.trial_seed v.v_seed;
          Alcotest.(check string) "outcome"
            (Faults.Classify.name t.Faults.Campaign.outcome)
            v.v_outcome;
          Alcotest.(check (option int)) "latency"
            t.Faults.Campaign.detect_latency v.v_latency;
          Alcotest.(check int) "cycles" t.Faults.Campaign.cycles v.v_cycles)
        views)

let test_journal_malformed () =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"type\":\"trial\",\"i\":0}\n";
      close_out oc;
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the line (%s)" msg)
          true
          (String.length msg >= 6 && String.sub msg 0 6 = "line 1")
      | _ -> Alcotest.fail "expected Malformed")

(* Write a valid journal for the campaign and hand its lines to [k]. *)
let with_journal_lines ?(checkpoint_interval = 0) ?(taint_trace = false) k =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let subject = Test_faults.protected_array_sum () in
      let summary, trials =
        Faults.Campaign.run subject ~trials:40 ~seed:2024 ~domains:2
          ~checkpoint_interval ~taint_trace
      in
      let manifest =
        Faults.Journal.manifest_record ~git:"test" ~technique:"dup"
          ~checkpoint_interval ~taint_trace ~label:"array_sum" ~trials:40
          ~seed:2024 ~domains:2 ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      Faults.Journal.write ~path ~manifest ~trials ();
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      k path (List.rev !lines) trials)

let rewrite path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_journal_no_manifest () =
  (* Regression: a journal whose manifest line is missing used to load as
     an empty report; it must instead fail loudly and name the file. *)
  with_journal_lines (fun path lines _ ->
      rewrite path (List.tl lines);
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed msg ->
        let mentions_path =
          let needle = Filename.basename path in
          let hay = msg and n = String.length (Filename.basename path) in
          let rec scan i =
            i + n <= String.length hay
            && (String.sub hay i n = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names the file (%s)" msg)
          true mentions_path
      | _ -> Alcotest.fail "expected Malformed (no manifest)");
  (* Same for a journal that is empty outright. *)
  with_journal_lines (fun path _ _ ->
      rewrite path [];
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed _ -> ()
      | _ -> Alcotest.fail "expected Malformed (empty file)")

let test_journal_v1_loads () =
  (* Backward compatibility: a v1 journal (old schema string, no
     checkpoint_interval, no recovery fields) must still load, with the
     v2-only view fields at their defaults. *)
  with_journal_lines (fun path lines _ ->
      let v1_of line =
        (* Rewrite the manifest to its v1 form textually: v2 only *added*
           fields, so deleting them yields a faithful v1 record. *)
        match Json.parse line with
        | Json.Obj fields ->
          Json.to_string
            (Json.Obj
               (List.filter_map
                  (function
                    | ("schema", _) ->
                      Some ("schema", Json.Str Faults.Journal.schema_v1)
                    | ("checkpoint_interval", _) -> None
                    | kv -> Some kv)
                  fields))
        | _ -> Alcotest.fail "manifest is not an object"
      in
      (match lines with
       | manifest :: trials -> rewrite path (v1_of manifest :: trials)
       | [] -> Alcotest.fail "journal empty");
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "v1 schema accepted"
        (Some Faults.Journal.schema_v1)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check int) "all trials load" 40 (List.length views);
      List.iter
        (fun (v : Faults.Journal.view) ->
          Alcotest.(check int) "no checkpoints in v1" 0 v.v_checkpoints;
          Alcotest.(check bool) "no recovery in v1" true (v.v_recovery = None))
        views)

let test_journal_v2_recovery_roundtrip () =
  (* With checkpointing on, recovered trials must journal their telemetry
     and read back field-for-field. *)
  with_journal_lines ~checkpoint_interval:150 (fun path _ trials ->
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option int)) "manifest records interval" (Some 150)
        (Option.bind (Json.member "checkpoint_interval" m) Json.to_int);
      let saw_recovery = ref false in
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          Alcotest.(check int) "checkpoints roundtrip"
            t.Faults.Campaign.checkpoints v.v_checkpoints;
          match t.Faults.Campaign.recovery, v.v_recovery with
          | None, None -> ()
          | Some r, Some rv ->
            saw_recovery := true;
            Alcotest.(check int) "detect step"
              r.Interp.Machine.rec_detect_step rv.Faults.Journal.rv_detect_step;
            Alcotest.(check int) "checkpoint step"
              r.Interp.Machine.rec_checkpoint_step rv.rv_checkpoint_step;
            Alcotest.(check int) "replayed steps"
              r.Interp.Machine.rec_replayed_steps rv.rv_replayed_steps;
            Alcotest.(check int) "wasted cycles"
              r.Interp.Machine.rec_wasted_cycles rv.rv_wasted_cycles;
            Alcotest.(check int) "rollback cycles"
              r.Interp.Machine.rec_rollback_cycles rv.rv_rollback_cycles
          | Some _, None -> Alcotest.fail "recovery lost in journal"
          | None, Some _ -> Alcotest.fail "journal invented a recovery")
        views;
      Alcotest.(check bool) "campaign exercised recovery" true !saw_recovery)

let test_journal_v3_taint_roundtrip () =
  (* A traced campaign journals its propagation summaries, stamped v3, and
     they read back field-for-field — including the events as spans. *)
  with_journal_lines ~taint_trace:true (fun path _ trials ->
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "schema is v3"
        (Some Faults.Journal.schema_v3)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check (option bool)) "manifest flags tracing" (Some true)
        (Option.bind (Json.member "taint_trace" m) Json.to_bool);
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          match t.Faults.Campaign.taint, v.v_taint with
          | Some s, Some tv ->
            Alcotest.(check bool) "seeded" s.Interp.Taint.ts_seeded
              tv.Faults.Journal.tv_seeded;
            Alcotest.(check int) "reg hwm" s.ts_reg_hwm tv.tv_reg_hwm;
            Alcotest.(check int) "mem words" s.ts_mem_words tv.tv_mem_words;
            Alcotest.(check (option int)) "first store" s.ts_first_store
              tv.tv_first_store;
            Alcotest.(check (option int)) "first branch" s.ts_first_branch
              tv.tv_first_branch;
            Alcotest.(check (option int)) "died at" s.ts_died_at
              tv.tv_died_at;
            Alcotest.(check (option int)) "end distance" s.ts_end_distance
              tv.tv_end_distance;
            Alcotest.(check bool) "output tainted" s.ts_output_tainted
              tv.tv_output_tainted;
            Alcotest.(check int) "events total" s.ts_events_total
              tv.tv_events_total;
            Alcotest.(check int) "span per retained event"
              (List.length s.ts_events)
              (List.length tv.tv_spans);
            List.iter2
              (fun (e : Interp.Taint.event) (sp : Trace.span) ->
                Alcotest.(check string) "span name"
                  (Interp.Taint.kind_name e.ev_kind)
                  sp.Trace.sp_name;
                Alcotest.(check int) "span step" e.ev_step sp.Trace.sp_step;
                if e.ev_uid >= 0 then
                  Alcotest.(check (option int)) "span uid" (Some e.ev_uid)
                    (Trace.attr_int sp "uid"))
              s.ts_events tv.tv_spans
          | None, _ -> Alcotest.fail "traced trial lost its summary"
          | Some _, None -> Alcotest.fail "summary lost in the journal")
        views)

let test_journal_untraced_stays_v2 () =
  (* The byte-identity contract: with tracing off, a v3-era journal is
     exactly a v2 journal — same schema string, and no taint field (not
     even an empty one) anywhere in the file. *)
  with_journal_lines ~taint_trace:false (fun _ lines _ ->
      (match lines with
       | manifest :: _ ->
         Alcotest.(check (option string)) "schema stays v2"
           (Some Faults.Journal.schema)
           (Option.bind
              (Json.member "schema" (Json.parse manifest))
              Json.to_str)
       | [] -> Alcotest.fail "journal empty");
      let contains_taint line =
        let needle = "taint" and hay = line in
        let n = String.length needle in
        let rec scan i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "no taint bytes anywhere" false
        (List.exists contains_taint lines))

let test_journal_fold_streams () =
  (* fold is the primitive and load its wrapper: both agree, and fold
     visits the trials in file order. *)
  with_journal_lines ~taint_trace:true (fun path _ _ ->
      let m_load, views = Faults.Journal.load path in
      let m_fold, (count, rev_indices) =
        Faults.Journal.fold path ~init:(0, []) ~f:(fun (n, acc) v ->
            (n + 1, v.Faults.Journal.v_index :: acc))
      in
      Alcotest.(check bool) "same manifest" true (m_load = m_fold);
      Alcotest.(check int) "same trial count" (List.length views) count;
      Alcotest.(check (list int)) "file order"
        (List.map (fun (v : Faults.Journal.view) -> v.v_index) views)
        (List.rev rev_indices))

(* ----- Determinism under observability -----

   The whole point of the telemetry design: journaling, profiling and
   stats collection must be unobservable in the results — bit-identical
   trial lists with every hook enabled, serial and parallel. *)

let check_observability_inert ~domains () =
  let bare_summary, bare = small_campaign ~domains:1 () in
  let profile = Interp.Profile.create () in
  let journal = ref [] in
  let stats = ref None in
  let instr_summary, instrumented =
    small_campaign ~profile
      ~on_trial:(fun i t -> journal := (i, t) :: !journal)
      ~stats_out:stats ~domains ()
  in
  Alcotest.(check bool) "trial lists bit-identical" true
    (Faults.Campaign.trials_equal bare instrumented);
  Alcotest.(check bool) "summaries identical" true
    (bare_summary.Faults.Campaign.counts
     = instr_summary.Faults.Campaign.counts);
  (* The hooks did observe the campaign. *)
  Alcotest.(check int) "journal saw every trial" (List.length bare)
    (List.length !journal);
  Alcotest.(check bool) "journal in seed order" true
    (List.rev_map fst !journal = List.init (List.length bare) Fun.id);
  Alcotest.(check bool) "profile counted instructions" true
    (Interp.Profile.total_instrs profile > 0);
  Alcotest.(check bool) "stats reported" true (!stats <> None)

let test_observability_inert_serial () = check_observability_inert ~domains:1 ()
let test_observability_inert_parallel () =
  check_observability_inert ~domains:2 ()

let test_profile_merge_deterministic () =
  (* Same campaign, serial vs. parallel: the merged profiles must agree
     (merge happens in trial order, not completion order). *)
  let collect domains =
    let p = Interp.Profile.create () in
    let (_ : Faults.Campaign.summary), (_ : Faults.Campaign.trial list) =
      small_campaign ~profile:p ~domains ()
    in
    (Interp.Profile.total_instrs p, Interp.Profile.opcode_rows p,
     Interp.Profile.check_rows p)
  in
  Alcotest.(check bool) "serial = parallel profile" true
    (collect 1 = collect 4)

(* ----- Stats: Wilson intervals ----- *)

let test_stats_wilson_edges () =
  let open Stats in
  let vac = wilson ~k:0 ~n:0 () in
  Alcotest.(check (float 0.0)) "vacuous low" 0.0 vac.ci_low;
  Alcotest.(check (float 0.0)) "vacuous high" 1.0 vac.ci_high;
  Alcotest.(check (float 0.0)) "vacuous width" 1.0 (width vac);
  let zero = wilson ~k:0 ~n:20 () in
  Alcotest.(check (float 0.0)) "k=0 estimate" 0.0 zero.ci_estimate;
  Alcotest.(check (float 0.0)) "k=0 low" 0.0 zero.ci_low;
  Alcotest.(check bool) "k=0 high informative" true
    (zero.ci_high > 0.0 && zero.ci_high < 1.0);
  let full = wilson ~k:20 ~n:20 () in
  Alcotest.(check (float 0.0)) "k=n estimate" 1.0 full.ci_estimate;
  Alcotest.(check (float 0.0)) "k=n high" 1.0 full.ci_high;
  Alcotest.(check bool) "k=n low informative" true
    (full.ci_low > 0.0 && full.ci_low < 1.0);
  Alcotest.(check bool) "k clamps into [0,n]" true
    (wilson ~k:50 ~n:20 () = full && wilson ~k:(-3) ~n:20 () = zero);
  Alcotest.(check bool) "width shrinks with n" true
    (width (wilson ~k:100 ~n:1000 ()) < width (wilson ~k:10 ~n:100 ()));
  Alcotest.(check bool) "narrower z narrows the interval" true
    (width (wilson ~z:1.0 ~k:10 ~n:100 ()) < width (wilson ~k:10 ~n:100 ()));
  Alcotest.(check bool) "converged at depth" true
    (converged ~k:5000 ~n:10_000 ~half_width:0.02 ());
  Alcotest.(check bool) "not converged when shallow" false
    (converged ~k:5 ~n:10 ~half_width:0.02 ())

let test_stats_wilson_json_pp () =
  let iv = Stats.wilson ~k:25 ~n:200 () in
  let j = Stats.to_json iv in
  let f name = Option.bind (Json.member name j) Json.to_float in
  Alcotest.(check (option (float 1e-12))) "est" (Some iv.Stats.ci_estimate)
    (f "est");
  Alcotest.(check (option (float 1e-12))) "lo" (Some iv.Stats.ci_low) (f "lo");
  Alcotest.(check (option (float 1e-12))) "hi" (Some iv.Stats.ci_high)
    (f "hi");
  let s = Stats.pp_pct iv in
  Alcotest.(check bool)
    (Printf.sprintf "pp_pct looks like a percent (%s)" s)
    true
    (String.contains s '%'
     && String.length s > 2
     && String.sub s 0 4 = "12.5")

let prop_wilson_bounds =
  QCheck.Test.make ~name:"wilson interval brackets k/n inside [0,1]"
    ~count:500
    QCheck.(pair (int_range 0 500) (int_range 1 500))
    (fun (a, b) ->
      let n = max a b and k = min a b in
      let iv = Stats.wilson ~k ~n () in
      let est = float_of_int k /. float_of_int n in
      iv.Stats.ci_estimate = est
      && 0.0 <= iv.ci_low
      && iv.ci_low <= est
      && est <= iv.ci_high
      && iv.ci_high <= 1.0
      && (n < 2 || iv.ci_low < iv.ci_high))

(* ----- Trace: point-span round trip ----- *)

let test_span_collision_prefixing () =
  (* Attributes named like the reserved wire keys must survive the trip —
     under a prefix on the wire, restored verbatim on the way back. *)
  let s =
    Trace.span ~step:9 "store"
      ~attrs:
        [ ("name", Json.Str "shadow"); ("step", Json.Int 7);
          ("attr.name", Json.Str "pre-escaped"); ("uid", Json.Int 3) ]
  in
  (match Trace.to_json s with
   | Json.Obj fields ->
     let keys = List.map fst fields in
     Alcotest.(check (list string)) "wire keys escape collisions"
       [ "name"; "step"; "attr.name"; "attr.step"; "attr.attr.name"; "uid" ]
       keys
   | _ -> Alcotest.fail "span did not serialize to an object");
  Alcotest.(check bool) "round trip is exact" true
    (Trace.of_json (Trace.to_json s) = Some s)

let span_attr_keys =
  [| "name"; "step"; "attr.name"; "attr.step"; "attr.attr.x"; "uid"; "k";
     "value" |]

let prop_span_roundtrip =
  QCheck.Test.make ~name:"span serialization round-trips totally" ~count:300
    QCheck.(
      pair (int_range 0 10_000)
        (small_list (pair (int_range 0 7) small_int)))
    (fun (step, raw) ->
      let attrs =
        List.fold_left
          (fun acc (ki, v) ->
            let k = span_attr_keys.(ki) in
            if List.mem_assoc k acc then acc else acc @ [ (k, Json.Int v) ])
          [] raw
      in
      let s = Trace.span ~step ~attrs "ev" in
      Trace.of_json (Trace.to_json s) = Some s)

(* ----- Trace: the flight recorder ----- *)

let test_trace_recorder_durs () =
  let r = Trace.recorder () in
  Trace.with_dur (Some r) ~cat:"campaign" "outer" (fun () ->
      Trace.with_dur (Some r)
        ~args:[ ("start", Json.Int 0) ]
        ~track:2 ~cat:"pool" "chunk"
        (fun () -> Unix.sleepf 0.002));
  match Trace.durs r with
  | [ outer; chunk ] ->
    Alcotest.(check string) "outer name" "outer" outer.Trace.du_name;
    Alcotest.(check string) "outer cat" "campaign" outer.du_cat;
    Alcotest.(check int) "outer on caller track" 0 outer.du_track;
    Alcotest.(check string) "chunk name" "chunk" chunk.du_name;
    Alcotest.(check int) "chunk track" 2 chunk.du_track;
    Alcotest.(check (option int)) "chunk args survive" (Some 0)
      (Option.bind (List.assoc_opt "start" chunk.du_args) Json.to_int);
    (* Ascending start order, and the nested span sits inside the outer. *)
    Alcotest.(check bool) "sorted by start" true
      (outer.du_start_us <= chunk.du_start_us);
    Alcotest.(check bool) "nested span is shorter" true
      (chunk.du_dur_us <= outer.du_dur_us && chunk.du_dur_us >= 0.0)
  | ds -> Alcotest.failf "expected 2 spans, got %d" (List.length ds)

let test_trace_with_dur_none_and_raise () =
  (* [None] is a bare call... *)
  Alcotest.(check int) "uninstrumented call" 42
    (Trace.with_dur None ~cat:"x" "y" (fun () -> 42));
  (* ...and a raising body still records its span before propagating. *)
  let r = Trace.recorder () in
  (match
     Trace.with_dur (Some r) ~cat:"campaign" "boom" (fun () ->
         raise Trial_blew_up)
   with
   | () -> Alcotest.fail "expected Trial_blew_up"
   | exception Trial_blew_up -> ());
  match Trace.durs r with
  | [ d ] -> Alcotest.(check string) "span recorded on raise" "boom" d.du_name
  | ds -> Alcotest.failf "expected 1 span, got %d" (List.length ds)

let test_trace_chrome_format () =
  let r = Trace.recorder () in
  Trace.with_dur (Some r) ~cat:"campaign" "golden_run" (fun () -> ());
  Trace.with_dur (Some r) ~track:3 ~cat:"pool" "worker"
    ~args:[ ("items", Json.Int 7) ]
    (fun () -> ());
  let j = Trace.to_chrome r in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let ph e = Option.bind (Json.member "ph" e) Json.to_str in
  let metadata = List.filter (fun e -> ph e = Some "M") events in
  let spans = List.filter (fun e -> ph e = Some "X") events in
  Alcotest.(check int) "one thread_name record per track" 2
    (List.length metadata);
  let track_label e =
    Option.bind (Json.member "args" e) (fun a ->
        Option.bind (Json.member "name" a) Json.to_str)
  in
  Alcotest.(check (list (option string))) "tracks labelled as domains"
    [ Some "domain 0 (caller)"; Some "domain 3" ]
    (List.map track_label metadata);
  Alcotest.(check int) "one complete event per span" 2 (List.length spans);
  List.iter
    (fun e ->
      Alcotest.(check bool) "ts/dur are numbers" true
        (Option.bind (Json.member "ts" e) Json.to_float <> None
         && Option.bind (Json.member "dur" e) Json.to_float <> None);
      Alcotest.(check (option int)) "single process" (Some 1)
        (Option.bind (Json.member "pid" e) Json.to_int))
    spans;
  (* args only where given, and tid carries the worker track. *)
  let worker =
    List.find
      (fun e ->
        Option.bind (Json.member "name" e) Json.to_str = Some "worker")
      spans
  in
  Alcotest.(check (option int)) "worker tid" (Some 3)
    (Option.bind (Json.member "tid" worker) Json.to_int);
  Alcotest.(check (option int)) "worker args" (Some 7)
    (Option.bind (Json.member "args" worker) (fun a ->
         Option.bind (Json.member "items" a) Json.to_int));
  (* write_chrome emits exactly the same JSON, parseable from disk. *)
  let path = Filename.temp_file "softft_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_chrome r ~path;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "file carries the same JSON" (Json.to_string j)
        line;
      Alcotest.(check bool) "and parses back" true
        (match Json.parse line with Json.Obj _ -> true | _ -> false))

(* ----- Metrics: interpolated quantiles ----- *)

let test_metrics_approx_quantile () =
  let r = Metrics.registry () in
  let empty = Metrics.histogram r "empty" in
  Alcotest.(check int) "empty histogram" 0 (Metrics.approx_quantile empty 0.5);
  let zeros = Metrics.histogram r "zeros" in
  List.iter (Metrics.observe zeros) [ 0; 0; 0 ];
  Alcotest.(check int) "all-zero observations" 0
    (Metrics.approx_quantile zeros 0.9);
  (* One observation of 1000 sits in bucket [512,1024): the interpolated
     mid-bucket estimate beats hist_quantile's upper bound. *)
  let one = Metrics.histogram r "one" in
  Metrics.observe one 1000;
  Alcotest.(check int) "interpolates inside the bucket" 768
    (Metrics.approx_quantile one 0.5);
  Alcotest.(check bool) "tighter than the bucket bound" true
    (Metrics.approx_quantile one 0.5 < Metrics.hist_quantile one 0.5);
  (* Uniform 1..100: monotone in q, clamped to the observed max, and q is
     clamped into [0,1]. *)
  let u = Metrics.histogram r "uniform" in
  for v = 1 to 100 do
    Metrics.observe u v
  done;
  let qs = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let estimates = List.map (Metrics.approx_quantile u) qs in
  Alcotest.(check bool) "monotone in q" true
    (List.sort compare estimates = estimates);
  let p50 = Metrics.approx_quantile u 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 lands in its bucket (%d)" p50)
    true
    (p50 >= 32 && p50 <= 64);
  List.iter
    (fun q ->
      Alcotest.(check bool) "never exceeds the max" true
        (Metrics.approx_quantile u q <= Metrics.hist_max u))
    qs;
  Alcotest.(check int) "q clamps low" (Metrics.approx_quantile u 0.0)
    (Metrics.approx_quantile u (-3.0));
  Alcotest.(check int) "q clamps high" (Metrics.approx_quantile u 1.0)
    (Metrics.approx_quantile u 2.0)

(* ----- Progress: exact counts under parallelism, windowed rate ----- *)

let all_outcomes = Array.of_list Faults.Classify.all

let prop_progress_counts_exact =
  (* Outcome accounting is exact — not approximate — whatever the domain
     count: every note lands in exactly one counter. *)
  QCheck.Test.make ~name:"progress counts are exact at 1/2/4 domains"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 8))
    (fun picks ->
      let outcomes =
        Array.of_list (List.map (fun i -> all_outcomes.(i)) picks)
      in
      let n = Array.length outcomes in
      List.for_all
        (fun domains ->
          let pg = Faults.Progress.create ~interval:1e9 ~total:n () in
          let (_ : int array) =
            Faults.Pool.map ~domains
              (fun i ->
                Faults.Progress.note pg outcomes.(i);
                i)
              n
          in
          let snap = Faults.Progress.snapshot ~final:true pg in
          snap.pg_done = n
          && snap.pg_done <= snap.pg_total
          && List.for_all
               (fun (o, got) ->
                 let expected =
                   Array.fold_left
                     (fun acc o' -> if o' = o then acc + 1 else acc)
                     0 outcomes
                 in
                 got = expected)
               snap.pg_counts)
        [ 1; 2; 4 ])

let test_progress_window_rate () =
  let pg = Faults.Progress.create ~interval:1e9 ~total:100 () in
  for _ = 1 to 50 do
    Faults.Progress.note pg Faults.Classify.Masked
  done;
  let snap = Faults.Progress.snapshot pg in
  Alcotest.(check bool) "windowed rate measurable" true
    (snap.pg_window_rate > 0.0);
  Alcotest.(check bool) "eta finite and non-negative" true
    (snap.pg_eta >= 0.0 && Float.is_finite snap.pg_eta);
  let j = Faults.Progress.snapshot_json snap in
  Alcotest.(check bool) "json carries both rates" true
    (Option.bind (Json.member "trials_per_sec" j) Json.to_float <> None
     && Option.bind (Json.member "window_trials_per_sec" j) Json.to_float
        <> None);
  (* Per-outcome Wilson interval rides along on the heartbeat. *)
  let ci =
    Option.bind (Json.member "ci" j) (fun ci ->
        Option.bind (Json.member "Masked" ci) (fun m ->
            Option.bind (Json.member "est" m) Json.to_float))
  in
  Alcotest.(check (option (float 1e-9))) "ci estimate" (Some 1.0) ci

let test_progress_heartbeat_jsonl () =
  (* Every heartbeat line a real parallel campaign emits must parse, stay
     within bounds, and grow monotonically. *)
  let path = Filename.temp_file "softft_progress" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let pg =
        Faults.Progress.create ~interval:0.0
          ~sinks:[ Faults.Progress.jsonl_sink oc ]
          ~total:30 ()
      in
      let (_ : Faults.Campaign.summary), (_ : Faults.Campaign.trial list) =
        small_campaign ~progress:pg ~domains:2 ()
      in
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check bool) "per-trial emission plus final" true
        (List.length lines >= 31);
      let last_done = ref 0 in
      List.iter
        (fun line ->
          let j = Json.parse line in
          let int name = Option.bind (Json.member name j) Json.to_int in
          Alcotest.(check (option string)) "self-describing" (Some "progress")
            (Option.bind (Json.member "type" j) Json.to_str);
          match int "done", int "total" with
          | Some d, Some t ->
            Alcotest.(check bool) "done within total" true (d <= t);
            Alcotest.(check bool) "done monotone" true (d >= !last_done);
            last_done := d;
            (* Counts are read under the emission lock: they sum to done. *)
            let counted =
              match Json.member "counts" j with
              | Some (Json.Obj fields) ->
                List.fold_left
                  (fun acc (_, v) ->
                    acc + Option.value ~default:0 (Json.to_int v))
                  0 fields
              | _ -> 0
            in
            Alcotest.(check int) "counts sum to done" d counted
          | _ -> Alcotest.fail "heartbeat missing done/total")
        lines;
      match List.rev lines with
      | last :: _ ->
        Alcotest.(check (option bool)) "last line is final" (Some true)
          (Option.bind (Json.member "final" (Json.parse last)) Json.to_bool);
        Alcotest.(check int) "campaign completed" 30 !last_done
      | [] -> Alcotest.fail "no heartbeat lines")

(* ----- Determinism: the flight recorder and statistics are inert ----- *)

let check_flight_recorder_inert ~domains () =
  let bare_summary, bare = small_campaign ~domains:1 () in
  let r = Obs.Trace.recorder () in
  let pg = Faults.Progress.create ~interval:1e9 ~total:30 () in
  let traced_summary, traced =
    small_campaign ~progress:pg ~trace:r ~domains ()
  in
  Alcotest.(check bool) "trials bit-identical under tracing" true
    (Faults.Campaign.trials_equal bare traced);
  Alcotest.(check bool) "counts identical" true
    (bare_summary.Faults.Campaign.counts
     = traced_summary.Faults.Campaign.counts);
  (* The recorder did see the campaign's phases. *)
  let names =
    List.sort_uniq compare
      (List.map (fun d -> d.Trace.du_name) (Trace.durs r))
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span recorded") true
        (List.mem phase names))
    [ "golden_run"; "trials"; "worker" ]

let test_flight_recorder_inert_serial () =
  check_flight_recorder_inert ~domains:1 ()

let test_flight_recorder_inert_parallel () =
  check_flight_recorder_inert ~domains:4 ()

let test_journal_bytes_trace_invariant () =
  (* The strongest form of the contract: one manifest, two journal writes —
     serial bare trials vs. parallel traced trials — and the files must be
     byte-identical. *)
  let _, bare = small_campaign ~domains:1 () in
  let r = Obs.Trace.recorder () in
  let summary, traced = small_campaign ~trace:r ~domains:4 () in
  let manifest =
    Faults.Journal.manifest_record ~git:"test" ~technique:"none"
      ~label:"array_sum" ~trials:30 ~seed:2024 ~domains:0
      ~hw_window:Faults.Classify.default_hw_window ~fault_kind:"register_bit"
      ~golden:summary.Faults.Campaign.golden_info ()
  in
  let write ?trace trials =
    let path = Filename.temp_file "softft_journal" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Faults.Journal.write ?trace ~path ~manifest ~trials ();
        In_channel.with_open_bin path In_channel.input_all)
  in
  Alcotest.(check bool) "journal bytes identical" true
    (write bare = write ~trace:r traced)

(* ----- Journal: v4 final statistics ----- *)

let test_journal_v4_stats () =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let summary, trials = small_campaign ~domains:2 () in
      let manifest =
        Faults.Journal.manifest_record ~git:"test" ~technique:"none"
          ~counts:summary.Faults.Campaign.counts ~label:"array_sum" ~trials:30
          ~seed:2024 ~domains:2 ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      Faults.Journal.write ~path ~manifest ~trials ();
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "stamped v4"
        (Some Faults.Journal.schema_v4)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check int) "v4 trials load" 30 (List.length views);
      let stats =
        match Json.member "stats" m with
        | Some (Json.Obj fields) -> fields
        | _ -> Alcotest.fail "manifest has no stats object"
      in
      (* One entry per observed outcome, none for unobserved ones, and the
         entries agree with the summary and with Wilson at n=30. *)
      let total = ref 0 in
      List.iter
        (fun ((o : Faults.Classify.outcome), k) ->
          let entry = List.assoc_opt (Faults.Classify.name o) stats in
          if k = 0 then
            Alcotest.(check bool) "unobserved outcome absent" true
              (entry = None)
          else begin
            total := !total + k;
            match entry with
            | None -> Alcotest.failf "missing stats for %s"
                        (Faults.Classify.name o)
            | Some e ->
              let iv = Stats.wilson ~k ~n:30 () in
              Alcotest.(check (option int)) "n" (Some k)
                (Option.bind (Json.member "n" e) Json.to_int);
              Alcotest.(check (option (float 1e-12))) "est"
                (Some iv.Stats.ci_estimate)
                (Option.bind (Json.member "est" e) Json.to_float);
              Alcotest.(check (option (float 1e-12))) "lo"
                (Some iv.Stats.ci_low)
                (Option.bind (Json.member "lo" e) Json.to_float);
              Alcotest.(check (option (float 1e-12))) "hi"
                (Some iv.Stats.ci_high)
                (Option.bind (Json.member "hi" e) Json.to_float)
          end)
        summary.Faults.Campaign.counts;
      Alcotest.(check int) "stats cover every trial" 30 !total)

let test_journal_v4_outranks_v3 () =
  (* counts + taint tracing: the manifest carries both and stamps the
     newest schema. *)
  let subject = Test_faults.protected_array_sum () in
  let summary, _ =
    Faults.Campaign.run subject ~trials:20 ~seed:7 ~taint_trace:true
  in
  let m =
    Faults.Journal.manifest_record ~git:"test" ~technique:"dup"
      ~counts:summary.Faults.Campaign.counts ~taint_trace:true
      ~label:"array_sum" ~trials:20 ~seed:7 ~domains:1
      ~hw_window:Faults.Classify.default_hw_window ~fault_kind:"register_bit"
      ~golden:summary.Faults.Campaign.golden_info ()
  in
  Alcotest.(check (option string)) "v4 outranks v3"
    (Some Faults.Journal.schema_v4)
    (Option.bind (Json.member "schema" m) Json.to_str);
  Alcotest.(check (option bool)) "taint flag kept" (Some true)
    (Option.bind (Json.member "taint_trace" m) Json.to_bool)

(* ----- Bench history: bench-diff ----- *)

let bench_file ?cores ~serial ~parallel ~speedup () =
  Json.Obj
    ([ ("schema", Json.Str "softft.bench_campaign.v3");
       ("trials", Json.Int 600) ]
     @ (match cores with
        | Some c -> [ ("host_cores", Json.Int c) ]
        | None -> [])
     @ [ ("workloads",
          Json.List
            [ Json.Obj
                [ ("name", Json.Str "kmeans");
                  ("serial_trials_per_sec", Json.Float serial);
                  ("parallel_trials_per_sec", Json.Float parallel);
                  ("parallel_speedup", Json.Float speedup) ] ]) ])

let test_bench_diff_regression () =
  let old_j = bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  let new_j = bench_file ~cores:4 ~serial:80.0 ~parallel:310.0 ~speedup:3.9 () in
  let d = Softft.Experiments.bench_diff old_j new_j in
  Alcotest.(check bool) "comparable hosts" true d.bd_comparable;
  Alcotest.(check int) "all three metrics compared" 3 (List.length d.bd_rows);
  (match Softft.Experiments.bench_diff_regressions d with
   | [ r ] ->
     Alcotest.(check string) "serial throughput flagged" "serial trials/s"
       r.Softft.Experiments.bd_metric;
     Alcotest.(check (float 0.01)) "delta" (-20.0) r.bd_delta_pct
   | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  (* The same drop within tolerance is not a regression... *)
  let mild = bench_file ~cores:4 ~serial:90.0 ~parallel:300.0 ~speedup:3.33 () in
  Alcotest.(check int) "10%% drop tolerated" 0
    (List.length
       (Softft.Experiments.bench_diff_regressions
          (Softft.Experiments.bench_diff old_j mild)));
  (* ...until the tolerance tightens. *)
  Alcotest.(check int) "tolerance is a parameter" 1
    (List.length
       (Softft.Experiments.bench_diff_regressions
          (Softft.Experiments.bench_diff ~tolerance_pct:5.0 old_j mild)))

let test_bench_diff_speedup_not_gated () =
  (* The speedup row is informational — a ratio of the gated throughputs —
     so even a large drop must not double-report. *)
  let old_j = bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  let new_j = bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:1.0 () in
  let d = Softft.Experiments.bench_diff old_j new_j in
  let speedup_row =
    List.find
      (fun r -> r.Softft.Experiments.bd_metric = "parallel speedup")
      d.bd_rows
  in
  Alcotest.(check (float 0.01)) "drop visible" (-66.67)
    speedup_row.bd_delta_pct;
  Alcotest.(check int) "but never gating" 0
    (List.length (Softft.Experiments.bench_diff_regressions d))

let test_bench_diff_incomparable_hosts () =
  let old_j = bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  let new_j = bench_file ~cores:8 ~serial:50.0 ~parallel:150.0 ~speedup:3.0 () in
  let d = Softft.Experiments.bench_diff old_j new_j in
  Alcotest.(check bool) "hosts differ" false d.bd_comparable;
  Alcotest.(check bool) "rows still rendered for the human" true
    (List.exists (fun r -> r.Softft.Experiments.bd_regression) d.bd_rows);
  Alcotest.(check int) "gate stands down" 0
    (List.length (Softft.Experiments.bench_diff_regressions d));
  (* A file with no host_cores at all can never arm the gate either. *)
  let anon = bench_file ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  let d2 = Softft.Experiments.bench_diff anon anon in
  Alcotest.(check int) "missing cores read as -1" (-1) d2.bd_old_cores;
  Alcotest.(check bool) "and never compare" false d2.bd_comparable

let test_bench_diff_workload_churn () =
  (* Dropped or added workloads produce no rows (nothing to compare), and
     a genuinely improved run reports zero regressions. *)
  let old_j = bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  let renamed =
    match bench_file ~cores:4 ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | ("workloads", Json.List [ Json.Obj w ]) ->
               ( "workloads",
                 Json.List
                   [ Json.Obj
                       (List.map
                          (function
                            | ("name", _) -> ("name", Json.Str "other")
                            | kv -> kv)
                          w) ] )
             | kv -> kv)
           fields)
    | _ -> assert false
  in
  let d = Softft.Experiments.bench_diff old_j renamed in
  Alcotest.(check int) "no shared workloads, no rows" 0
    (List.length d.bd_rows);
  let better = bench_file ~cores:4 ~serial:140.0 ~parallel:420.0 ~speedup:3.0 () in
  let d2 = Softft.Experiments.bench_diff old_j better in
  Alcotest.(check int) "improvements never gate" 0
    (List.length (Softft.Experiments.bench_diff_regressions d2));
  Alcotest.(check bool) "improvement deltas positive" true
    (List.for_all
       (fun r -> r.Softft.Experiments.bd_delta_pct >= 0.0)
       d2.bd_rows)

let test_bench_diff_host_warning () =
  (* The stand-down must be loud: incomparable hosts produce the one-line
     stderr warning (pointing at --require-same-host, the CI escape
     hatch), comparable hosts none at all. *)
  let at cores = bench_file ~cores ~serial:100.0 ~parallel:300.0 ~speedup:3.0 in
  let warning d = Softft.Experiments.bench_diff_host_warning d in
  (match warning (Softft.Experiments.bench_diff (at 4 ()) (at 8 ())) with
   | None -> Alcotest.fail "host mismatch produced no warning"
   | Some msg ->
     let contains needle =
       let n = String.length needle in
       let rec scan i =
         i + n <= String.length msg
         && (String.sub msg i n = needle || scan (i + 1))
       in
       scan 0
     in
     Alcotest.(check bool) "warning says the gate is skipped" true
       (contains "SKIPPED");
     Alcotest.(check bool) "warning names both core counts" true
       (contains "old 4" && contains "new 8");
     Alcotest.(check bool) "warning points at --require-same-host" true
       (contains "--require-same-host"));
  (* A file with no host_cores stands the gate down the same way. *)
  let anon = bench_file ~serial:100.0 ~parallel:300.0 ~speedup:3.0 () in
  Alcotest.(check bool) "missing cores warn too" true
    (warning (Softft.Experiments.bench_diff (at 4 ()) anon) <> None);
  Alcotest.(check (option string)) "comparable hosts stay silent" None
    (warning (Softft.Experiments.bench_diff (at 4 ()) (at 4 ())))

(* ----- Journal reports: the CI column degrades on pre-v4 journals ----- *)

let with_stdout_silenced f =
  (* print_journal_report writes its tables to stdout; the test only cares
     that rendering succeeds, so park stdout on /dev/null for the call. *)
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 null Unix.stdout;
  Unix.close null;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let test_journal_report_pre_v4_ci_degrades () =
  (* Regression: aggregating a pre-v4 journal used to recompute intervals
     the journal never recorded.  The CI column must instead degrade to
     "—" — and the whole report must still render. *)
  with_journal_lines (fun path lines _ ->
      let v2_of line =
        match Json.parse line with
        | Json.Obj fields ->
          Json.to_string
            (Json.Obj
               (List.filter_map
                  (function
                    | ("schema", _) ->
                      Some ("schema", Json.Str Faults.Journal.schema)
                    | ("stats", _) | ("counts", _) -> None
                    | kv -> Some kv)
                  fields))
        | _ -> Alcotest.fail "manifest is not an object"
      in
      (match lines with
       | manifest :: trials -> rewrite path (v2_of manifest :: trials)
       | [] -> Alcotest.fail "journal empty");
      let m, views = Faults.Journal.load path in
      Alcotest.(check bool) "fixture carries no stats" true
        (Json.member "stats" m = None);
      let rows =
        Softft.Experiments.journal_outcome_rows
          ?stats:(Json.member "stats" m) views
      in
      List.iter
        (fun row ->
          match List.rev row with
          | ci :: _ ->
            Alcotest.(check string) "CI cell degrades to an em dash"
              "\xe2\x80\x94" ci
          | [] -> Alcotest.fail "empty report row")
        rows;
      (* And the full report renders without raising — the exit-0 path. *)
      with_stdout_silenced (fun () ->
          Softft.Experiments.print_journal_report ~manifest:m views));
  (* Control: a current journal (v4 stats present) renders real
     intervals, so the dash is genuinely the degraded path. *)
  let stats = ref None in
  let summary, trials = small_campaign ~stats_out:stats ~domains:1 () in
  let m =
    Faults.Journal.manifest_record ~git:"test" ~technique:"none"
      ?stats:!stats ~counts:summary.Faults.Campaign.counts ~label:"array_sum"
      ~trials:30 ~seed:2024 ~domains:1
      ~hw_window:Faults.Classify.default_hw_window ~fault_kind:"register_bit"
      ~golden:summary.Faults.Campaign.golden_info ()
  in
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Faults.Journal.write ~path ~manifest:m ~trials ();
      let m, views = Faults.Journal.load path in
      let rows =
        Softft.Experiments.journal_outcome_rows
          ?stats:(Json.member "stats" m) views
      in
      List.iter
        (fun row ->
          match List.rev row with
          | ci :: _ ->
            Alcotest.(check bool) "CI cell is an interval" true
              (String.length ci > 0 && ci.[0] = '[')
          | [] -> Alcotest.fail "empty report row")
        rows)

(* ----- Progress: ring-boundary regression, per-stratum counters ----- *)

let test_progress_ring_boundary () =
  (* Regression: crossing the 256-entry completion ring used to read a
     stale slot as the window start, yielding an inf/negative windowed
     rate.  March straight across the boundary and check every snapshot
     stays finite — serial first, then under 2 and 4 domains. *)
  let check_snap tag (snap : Faults.Progress.snapshot) =
    Alcotest.(check bool) (tag ^ ": window rate finite") true
      (Float.is_finite snap.pg_window_rate);
    Alcotest.(check bool) (tag ^ ": window rate non-negative") true
      (snap.pg_window_rate >= 0.0);
    Alcotest.(check bool) (tag ^ ": eta finite, non-negative") true
      (Float.is_finite snap.pg_eta && snap.pg_eta >= 0.0)
  in
  let total = 600 in
  let pg = Faults.Progress.create ~interval:1e9 ~total () in
  for i = 1 to total do
    Faults.Progress.note pg Faults.Classify.Masked;
    (* Snapshot at every step around both ring crossings (256, 512) and a
       few in the steady state past them. *)
    if (i >= 254 && i <= 260) || (i >= 510 && i <= 516) || i mod 97 = 0 then
      check_snap (Printf.sprintf "serial @%d" i) (Faults.Progress.snapshot pg)
  done;
  check_snap "serial final" (Faults.Progress.snapshot ~final:true pg);
  List.iter
    (fun domains ->
      let pg = Faults.Progress.create ~interval:1e9 ~total () in
      let (_ : int array) =
        Faults.Pool.map ~domains
          (fun i ->
            Faults.Progress.note pg Faults.Classify.Masked;
            if i mod 61 = 0 then
              check_snap
                (Printf.sprintf "domains=%d" domains)
                (Faults.Progress.snapshot pg);
            i)
          total
      in
      let snap = Faults.Progress.snapshot ~final:true pg in
      check_snap (Printf.sprintf "domains=%d final" domains) snap;
      Alcotest.(check int)
        (Printf.sprintf "domains=%d: every note counted" domains)
        total snap.pg_done)
    [ 1; 2; 4 ]

let test_progress_strata_counters () =
  (* Adaptive campaigns tag completions with a stratum id; the heartbeat
     keeps per-stratum tallies.  Out-of-range ids and untagged notes must
     count toward done without touching the stratum counters. *)
  let pg = Faults.Progress.create ~interval:1e9 ~strata:3 ~total:20 () in
  for _ = 1 to 5 do
    Faults.Progress.note ~stratum:0 pg Faults.Classify.Masked
  done;
  for _ = 1 to 3 do
    Faults.Progress.note ~stratum:2 pg Faults.Classify.Asdc
  done;
  Faults.Progress.note ~stratum:7 pg Faults.Classify.Masked;
  Faults.Progress.note ~stratum:(-1) pg Faults.Classify.Masked;
  Faults.Progress.note pg Faults.Classify.Masked;
  let snap = Faults.Progress.snapshot pg in
  Alcotest.(check int) "done counts every note" 11 snap.pg_done;
  Alcotest.(check (array int)) "per-stratum tallies" [| 5; 0; 3 |]
    snap.pg_strata;
  (* Without ~strata the counters stay absent, not sized-but-zero. *)
  let bare = Faults.Progress.create ~interval:1e9 ~total:5 () in
  Faults.Progress.note ~stratum:0 bare Faults.Classify.Masked;
  Alcotest.(check (array int)) "no strata configured" [||]
    (Faults.Progress.snapshot bare).pg_strata

(* ----- Journal: v5 adaptive roundtrip ----- *)

let test_journal_v5_adaptive_roundtrip () =
  (* An adaptive campaign journals its stratum definitions, tallies and
     the savings headline, stamps v5, and each trial carries its stratum
     tag — all of which must read back. *)
  let subject = Test_faults.protected_array_sum () in
  let cov = Analysis.Coverage.analyze subject.Faults.Campaign.prog in
  let groups =
    Analysis.Strata.reg_groups subject.Faults.Campaign.prog cov
  in
  let summary, trials, ad =
    Faults.Campaign.run_adaptive ~seed:23 ~domains:2 ~groups
      ~group_names:Analysis.Strata.group_names
      ~priors:(Analysis.Strata.priors cov) ~ci:0.1 subject
  in
  let manifest =
    Faults.Journal.manifest_record ~git:"test" ~technique:"dup"
      ~counts:summary.Faults.Campaign.counts ~adaptive:ad
      ~label:"array_sum" ~trials:summary.trials ~seed:23 ~domains:2
      ~hw_window:Faults.Classify.default_hw_window ~fault_kind:"register_bit"
      ~golden:summary.Faults.Campaign.golden_info ()
  in
  Alcotest.(check (option string)) "adaptive outranks v4"
    (Some Faults.Journal.schema_v5)
    (Option.bind (Json.member "schema" manifest) Json.to_str);
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Faults.Journal.write ~path ~manifest ~trials ();
      let m, views = Faults.Journal.load path in
      let section =
        match Json.member "adaptive" m with
        | Some s -> s
        | None -> Alcotest.fail "manifest lost its adaptive section"
      in
      Alcotest.(check (option (float 1e-9))) "ci target" (Some 0.1)
        (Option.bind (Json.member "ci_target" section) Json.to_float);
      Alcotest.(check (option int)) "trial total" (Some ad.ad_trials)
        (Option.bind (Json.member "trials" section) Json.to_int);
      Alcotest.(check (option int)) "savings headline"
        (Some ad.ad_equiv_uniform)
        (Option.bind
           (Json.member "equivalent_uniform_trials" section)
           Json.to_int);
      (match Json.member "strata" section with
       | Some (Json.List ss) ->
         Alcotest.(check int) "one record per stratum"
           (Array.length ad.ad_strata) (List.length ss)
       | _ -> Alcotest.fail "adaptive section has no strata list");
      Alcotest.(check int) "every trial loads"
        (List.length trials) (List.length views);
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          Alcotest.(check (option int)) "stratum tag roundtrips"
            t.Faults.Campaign.stratum v.v_stratum)
        views)

let tests =
  [ Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "metrics: counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics: histogram buckets" `Quick
      test_metrics_histogram_buckets;
    Alcotest.test_case "log: jsonl sink + level" `Quick
      test_log_jsonl_sink_and_level;
    Alcotest.test_case "pool: stats serial" `Quick test_pool_stats_serial;
    Alcotest.test_case "pool: stats parallel" `Quick test_pool_stats_parallel;
    Alcotest.test_case "pool: stats empty" `Quick test_pool_stats_empty;
    Alcotest.test_case "pool: worker exception cancels" `Quick
      test_pool_cancellation;
    Alcotest.test_case "pool: serial exception propagates" `Quick
      test_pool_serial_exception;
    Alcotest.test_case "journal: write/load roundtrip" `Quick
      test_journal_write_load;
    Alcotest.test_case "journal: malformed input" `Quick test_journal_malformed;
    Alcotest.test_case "journal: no manifest is an error" `Quick
      test_journal_no_manifest;
    Alcotest.test_case "journal: v1 still loads" `Quick test_journal_v1_loads;
    Alcotest.test_case "journal: v2 recovery roundtrip" `Quick
      test_journal_v2_recovery_roundtrip;
    Alcotest.test_case "journal: v3 taint roundtrip" `Quick
      test_journal_v3_taint_roundtrip;
    Alcotest.test_case "journal: untraced stays v2" `Quick
      test_journal_untraced_stays_v2;
    Alcotest.test_case "journal: fold streams" `Quick
      test_journal_fold_streams;
    Alcotest.test_case "determinism: hooks inert (serial)" `Quick
      test_observability_inert_serial;
    Alcotest.test_case "determinism: hooks inert (domains=2)" `Quick
      test_observability_inert_parallel;
    Alcotest.test_case "determinism: profile merge" `Quick
      test_profile_merge_deterministic;
    Alcotest.test_case "stats: wilson edges" `Quick test_stats_wilson_edges;
    Alcotest.test_case "stats: wilson json + pp" `Quick
      test_stats_wilson_json_pp;
    Alcotest.test_case "trace: span collision prefixing" `Quick
      test_span_collision_prefixing;
    Alcotest.test_case "trace: recorder spans" `Quick test_trace_recorder_durs;
    Alcotest.test_case "trace: with_dur inert + raise" `Quick
      test_trace_with_dur_none_and_raise;
    Alcotest.test_case "trace: chrome format" `Quick test_trace_chrome_format;
    Alcotest.test_case "metrics: approx quantile" `Quick
      test_metrics_approx_quantile;
    Alcotest.test_case "progress: windowed rate" `Quick
      test_progress_window_rate;
    Alcotest.test_case "progress: heartbeat jsonl" `Quick
      test_progress_heartbeat_jsonl;
    Alcotest.test_case "determinism: flight recorder inert (serial)" `Quick
      test_flight_recorder_inert_serial;
    Alcotest.test_case "determinism: flight recorder inert (domains=4)" `Quick
      test_flight_recorder_inert_parallel;
    Alcotest.test_case "determinism: journal bytes trace-invariant" `Quick
      test_journal_bytes_trace_invariant;
    Alcotest.test_case "journal: v4 final stats" `Quick test_journal_v4_stats;
    Alcotest.test_case "journal: v4 outranks v3" `Quick
      test_journal_v4_outranks_v3;
    Alcotest.test_case "bench-diff: regression gate" `Quick
      test_bench_diff_regression;
    Alcotest.test_case "bench-diff: speedup not gated" `Quick
      test_bench_diff_speedup_not_gated;
    Alcotest.test_case "bench-diff: incomparable hosts" `Quick
      test_bench_diff_incomparable_hosts;
    Alcotest.test_case "bench-diff: workload churn" `Quick
      test_bench_diff_workload_churn;
    Alcotest.test_case "bench-diff: host mismatch warning" `Quick
      test_bench_diff_host_warning;
    Alcotest.test_case "report: pre-v4 CI column degrades" `Quick
      test_journal_report_pre_v4_ci_degrades;
    Alcotest.test_case "progress: ring-boundary rate stays finite" `Quick
      test_progress_ring_boundary;
    Alcotest.test_case "progress: per-stratum counters" `Quick
      test_progress_strata_counters;
    Alcotest.test_case "journal: v5 adaptive roundtrip" `Quick
      test_journal_v5_adaptive_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_wilson_bounds; prop_span_roundtrip; prop_progress_counts_exact ]
