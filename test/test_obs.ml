(** Observability subsystem tests: JSON codec, metrics, logging sinks,
    the campaign trial journal, pool stats, and — the contract that
    matters — determinism of campaigns under full telemetry. *)

open Obs

(* ----- JSON ----- *)

let sample_json =
  Json.Obj
    [ ("null", Json.Null);
      ("t", Json.Bool true);
      ("f", Json.Bool false);
      ("int", Json.Int (-42));
      ("big", Json.Int max_int);
      ("float", Json.Float 0.1);
      ("exp", Json.Float 1.5e300);
      ("str", Json.Str "line\nbreak \"quoted\" \\ tab\t\x01");
      ("utf8", Json.Str "\xce\xbcops");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("nested", Json.Obj [ ("empty", Json.Obj []) ]) ]

let test_json_roundtrip () =
  let s = Json.to_string sample_json in
  Alcotest.(check bool) "roundtrip" true (Json.parse s = sample_json);
  (* And printing is stable through a second cycle. *)
  Alcotest.(check string) "stable" s (Json.to_string (Json.parse s))

let test_json_unicode_escapes () =
  Alcotest.(check bool) "bmp escape" true
    (Json.parse {|"µs"|} = Json.Str "\xc2\xb5s");
  (* Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8. *)
  Alcotest.(check bool) "surrogate pair" true
    (Json.parse {|"😀"|} = Json.Str "\xf0\x9f\x98\x80")

let expect_parse_error s =
  match Json.parse s with
  | exception Json.Parse_error _ -> ()
  | j ->
    Alcotest.failf "expected Parse_error on %S, got %s" s (Json.to_string j)

let test_json_parse_errors () =
  List.iter expect_parse_error
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 garbage";
      "{\"a\" 1}"; "[1 2]"; "nul" ]

let test_json_accessors () =
  let j = Json.parse {|{"a": 3, "b": 2.5, "s": "x", "l": [1], "t": true}|} in
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (Json.member "a" j) Json.to_int);
  Alcotest.(check (option (float 1e-9))) "int promotes to float" (Some 3.0)
    (Option.bind (Json.member "a" j) Json.to_float);
  Alcotest.(check (option (float 1e-9))) "float" (Some 2.5)
    (Option.bind (Json.member "b" j) Json.to_float);
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Json.member "s" j) Json.to_str);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "t" j) Json.to_bool);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Json.member "zz" j) Json.to_int);
  Alcotest.(check bool) "wrong type" true
    (Option.bind (Json.member "s" j) Json.to_int = None)

(* ----- Metrics ----- *)

let test_metrics_counter () =
  let r = Metrics.registry () in
  let c = Metrics.counter r "trials" in
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  Alcotest.(check int) "counted" 6 (Metrics.counter_value c);
  (* Get-or-create: same name, same instrument. *)
  Metrics.incr (Metrics.counter r "trials");
  Alcotest.(check int) "interned" 7 (Metrics.counter_value c)

let test_metrics_histogram_buckets () =
  let r = Metrics.registry () in
  let h = Metrics.histogram r "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1024 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 1034 (Metrics.hist_sum h);
  Alcotest.(check int) "max" 1024 (Metrics.hist_max h);
  (* log2 buckets: 0 -> [0,1), 1 -> [1,2), 2..3 -> [2,4), 4 -> [4,8),
     1024 -> [1024,2048). *)
  Alcotest.(check (list (triple int int int))) "buckets"
    [ (0, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 1); (1024, 2048, 1) ]
    (Metrics.hist_buckets h);
  Alcotest.(check int) "p50 upper bound" 4 (Metrics.hist_quantile h 0.5);
  Alcotest.(check int) "p100 upper bound" 2048 (Metrics.hist_quantile h 1.0)

(* ----- Logging ----- *)

let test_log_jsonl_sink_and_level () =
  let path = Filename.temp_file "softft_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let log = Log.make ~level:Log.Warn ~sinks:[ Log.jsonl_sink oc ] "test" in
      Alcotest.(check bool) "warn enabled" true (Log.enabled log Log.Warn);
      Alcotest.(check bool) "info filtered" false (Log.enabled log Log.Info);
      Log.info log "dropped below level";
      Log.warn log ~fields:[ ("n", Json.Int 3) ] "kept";
      Log.error (Log.child log "sub") "child shares sinks";
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev_map Json.parse !lines with
      | [ e1; e2 ] ->
        let str name j = Option.bind (Json.member name j) Json.to_str in
        Alcotest.(check (option string)) "level" (Some "warn")
          (str "level" e1);
        Alcotest.(check (option string)) "msg" (Some "kept") (str "msg" e1);
        Alcotest.(check (option int)) "field" (Some 3)
          (Option.bind (Json.member "n" e1) Json.to_int);
        Alcotest.(check (option string)) "child component" (Some "test/sub")
          (str "component" e2)
      | lines -> Alcotest.failf "expected 2 log lines, got %d" (List.length lines))

(* ----- Pool stats ----- *)

let check_pool_stats ~domains n =
  let stats = ref None in
  let out = Faults.Pool.map ~domains ~stats (fun i -> i * i) n in
  Alcotest.(check int) "results intact" n (Array.length out);
  match !stats with
  | None -> Alcotest.fail "no stats reported"
  | Some (s : Faults.Pool.stats) ->
    Alcotest.(check int) "workers" s.st_domains (Array.length s.st_wall);
    Alcotest.(check int) "item slots" s.st_domains (Array.length s.st_items);
    Alcotest.(check int) "all items accounted" n
      (Array.fold_left ( + ) 0 s.st_items);
    Alcotest.(check bool) "chunk positive" true (n = 0 || s.st_chunk > 0)

let test_pool_stats_serial () = check_pool_stats ~domains:1 37
let test_pool_stats_parallel () = check_pool_stats ~domains:3 37
let test_pool_stats_empty () = check_pool_stats ~domains:2 0

exception Trial_blew_up

let test_pool_cancellation () =
  (* A worker exception must propagate out of [map] (not hang, not be
     swallowed), and the other domains must stop claiming chunks instead of
     draining the whole index space first. *)
  let n = 1000 in
  let computed = Atomic.make 0 in
  let f i =
    if i = 0 then raise Trial_blew_up
    else begin
      Unix.sleepf 0.001;
      Atomic.incr computed;
      i
    end
  in
  (match Faults.Pool.map ~domains:4 f n with
   | (_ : int array) -> Alcotest.fail "expected Trial_blew_up"
   | exception Trial_blew_up -> ());
  (* Worker 0 raises on its first index; every other worker finishes at
     most the chunks already in flight before seeing the flag.  Draining
     would need all ~1000 slow items. *)
  Alcotest.(check bool)
    (Printf.sprintf "cancelled early (%d of %d computed)"
       (Atomic.get computed) n)
    true
    (Atomic.get computed < n / 2)

let test_pool_serial_exception () =
  (* The degenerate serial path must propagate too. *)
  match Faults.Pool.map ~domains:1 (fun _ -> raise Trial_blew_up) 5 with
  | (_ : int array) -> Alcotest.fail "expected Trial_blew_up"
  | exception Trial_blew_up -> ()

(* ----- Journal ----- *)

let small_campaign ?profile ?on_trial ?stats_out ~domains () =
  Faults.Campaign.run ?profile ?on_trial ?stats_out ~domains
    (Test_faults.array_sum_subject ())
    ~trials:30 ~seed:2024

let test_journal_write_load () =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let stats = ref None in
      let summary, trials = small_campaign ~stats_out:stats ~domains:2 () in
      let manifest =
        Faults.Journal.manifest_record ~git:"test" ~technique:"none"
          ?stats:!stats ~label:"array_sum" ~trials:30 ~seed:2024 ~domains:2
          ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      Faults.Journal.write ~path ~manifest ~trials;
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "schema" (Some Faults.Journal.schema)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check (option int)) "trials" (Some 30)
        (Option.bind (Json.member "trials" m) Json.to_int);
      Alcotest.(check bool) "timings present" true
        (Json.member "timings" m <> None);
      Alcotest.(check int) "one view per trial" (List.length trials)
        (List.length views);
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          Alcotest.(check int) "index" i v.v_index;
          Alcotest.(check int) "seed" t.Faults.Campaign.trial_seed v.v_seed;
          Alcotest.(check string) "outcome"
            (Faults.Classify.name t.Faults.Campaign.outcome)
            v.v_outcome;
          Alcotest.(check (option int)) "latency"
            t.Faults.Campaign.detect_latency v.v_latency;
          Alcotest.(check int) "cycles" t.Faults.Campaign.cycles v.v_cycles)
        views)

let test_journal_malformed () =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"type\":\"trial\",\"i\":0}\n";
      close_out oc;
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the line (%s)" msg)
          true
          (String.length msg >= 6 && String.sub msg 0 6 = "line 1")
      | _ -> Alcotest.fail "expected Malformed")

(* Write a valid journal for the campaign and hand its lines to [k]. *)
let with_journal_lines ?(checkpoint_interval = 0) ?(taint_trace = false) k =
  let path = Filename.temp_file "softft_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let subject = Test_faults.protected_array_sum () in
      let summary, trials =
        Faults.Campaign.run subject ~trials:40 ~seed:2024 ~domains:2
          ~checkpoint_interval ~taint_trace
      in
      let manifest =
        Faults.Journal.manifest_record ~git:"test" ~technique:"dup"
          ~checkpoint_interval ~taint_trace ~label:"array_sum" ~trials:40
          ~seed:2024 ~domains:2 ~hw_window:Faults.Classify.default_hw_window
          ~fault_kind:"register_bit"
          ~golden:summary.Faults.Campaign.golden_info ()
      in
      Faults.Journal.write ~path ~manifest ~trials;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      k path (List.rev !lines) trials)

let rewrite path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_journal_no_manifest () =
  (* Regression: a journal whose manifest line is missing used to load as
     an empty report; it must instead fail loudly and name the file. *)
  with_journal_lines (fun path lines _ ->
      rewrite path (List.tl lines);
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed msg ->
        let mentions_path =
          let needle = Filename.basename path in
          let hay = msg and n = String.length (Filename.basename path) in
          let rec scan i =
            i + n <= String.length hay
            && (String.sub hay i n = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names the file (%s)" msg)
          true mentions_path
      | _ -> Alcotest.fail "expected Malformed (no manifest)");
  (* Same for a journal that is empty outright. *)
  with_journal_lines (fun path _ _ ->
      rewrite path [];
      match Faults.Journal.load path with
      | exception Faults.Journal.Malformed _ -> ()
      | _ -> Alcotest.fail "expected Malformed (empty file)")

let test_journal_v1_loads () =
  (* Backward compatibility: a v1 journal (old schema string, no
     checkpoint_interval, no recovery fields) must still load, with the
     v2-only view fields at their defaults. *)
  with_journal_lines (fun path lines _ ->
      let v1_of line =
        (* Rewrite the manifest to its v1 form textually: v2 only *added*
           fields, so deleting them yields a faithful v1 record. *)
        match Json.parse line with
        | Json.Obj fields ->
          Json.to_string
            (Json.Obj
               (List.filter_map
                  (function
                    | ("schema", _) ->
                      Some ("schema", Json.Str Faults.Journal.schema_v1)
                    | ("checkpoint_interval", _) -> None
                    | kv -> Some kv)
                  fields))
        | _ -> Alcotest.fail "manifest is not an object"
      in
      (match lines with
       | manifest :: trials -> rewrite path (v1_of manifest :: trials)
       | [] -> Alcotest.fail "journal empty");
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "v1 schema accepted"
        (Some Faults.Journal.schema_v1)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check int) "all trials load" 40 (List.length views);
      List.iter
        (fun (v : Faults.Journal.view) ->
          Alcotest.(check int) "no checkpoints in v1" 0 v.v_checkpoints;
          Alcotest.(check bool) "no recovery in v1" true (v.v_recovery = None))
        views)

let test_journal_v2_recovery_roundtrip () =
  (* With checkpointing on, recovered trials must journal their telemetry
     and read back field-for-field. *)
  with_journal_lines ~checkpoint_interval:150 (fun path _ trials ->
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option int)) "manifest records interval" (Some 150)
        (Option.bind (Json.member "checkpoint_interval" m) Json.to_int);
      let saw_recovery = ref false in
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          Alcotest.(check int) "checkpoints roundtrip"
            t.Faults.Campaign.checkpoints v.v_checkpoints;
          match t.Faults.Campaign.recovery, v.v_recovery with
          | None, None -> ()
          | Some r, Some rv ->
            saw_recovery := true;
            Alcotest.(check int) "detect step"
              r.Interp.Machine.rec_detect_step rv.Faults.Journal.rv_detect_step;
            Alcotest.(check int) "checkpoint step"
              r.Interp.Machine.rec_checkpoint_step rv.rv_checkpoint_step;
            Alcotest.(check int) "replayed steps"
              r.Interp.Machine.rec_replayed_steps rv.rv_replayed_steps;
            Alcotest.(check int) "wasted cycles"
              r.Interp.Machine.rec_wasted_cycles rv.rv_wasted_cycles;
            Alcotest.(check int) "rollback cycles"
              r.Interp.Machine.rec_rollback_cycles rv.rv_rollback_cycles
          | Some _, None -> Alcotest.fail "recovery lost in journal"
          | None, Some _ -> Alcotest.fail "journal invented a recovery")
        views;
      Alcotest.(check bool) "campaign exercised recovery" true !saw_recovery)

let test_journal_v3_taint_roundtrip () =
  (* A traced campaign journals its propagation summaries, stamped v3, and
     they read back field-for-field — including the events as spans. *)
  with_journal_lines ~taint_trace:true (fun path _ trials ->
      let m, views = Faults.Journal.load path in
      Alcotest.(check (option string)) "schema is v3"
        (Some Faults.Journal.schema_v3)
        (Option.bind (Json.member "schema" m) Json.to_str);
      Alcotest.(check (option bool)) "manifest flags tracing" (Some true)
        (Option.bind (Json.member "taint_trace" m) Json.to_bool);
      List.iteri
        (fun i (v : Faults.Journal.view) ->
          let t = List.nth trials i in
          match t.Faults.Campaign.taint, v.v_taint with
          | Some s, Some tv ->
            Alcotest.(check bool) "seeded" s.Interp.Taint.ts_seeded
              tv.Faults.Journal.tv_seeded;
            Alcotest.(check int) "reg hwm" s.ts_reg_hwm tv.tv_reg_hwm;
            Alcotest.(check int) "mem words" s.ts_mem_words tv.tv_mem_words;
            Alcotest.(check (option int)) "first store" s.ts_first_store
              tv.tv_first_store;
            Alcotest.(check (option int)) "first branch" s.ts_first_branch
              tv.tv_first_branch;
            Alcotest.(check (option int)) "died at" s.ts_died_at
              tv.tv_died_at;
            Alcotest.(check (option int)) "end distance" s.ts_end_distance
              tv.tv_end_distance;
            Alcotest.(check bool) "output tainted" s.ts_output_tainted
              tv.tv_output_tainted;
            Alcotest.(check int) "events total" s.ts_events_total
              tv.tv_events_total;
            Alcotest.(check int) "span per retained event"
              (List.length s.ts_events)
              (List.length tv.tv_spans);
            List.iter2
              (fun (e : Interp.Taint.event) (sp : Trace.span) ->
                Alcotest.(check string) "span name"
                  (Interp.Taint.kind_name e.ev_kind)
                  sp.Trace.sp_name;
                Alcotest.(check int) "span step" e.ev_step sp.Trace.sp_step;
                if e.ev_uid >= 0 then
                  Alcotest.(check (option int)) "span uid" (Some e.ev_uid)
                    (Trace.attr_int sp "uid"))
              s.ts_events tv.tv_spans
          | None, _ -> Alcotest.fail "traced trial lost its summary"
          | Some _, None -> Alcotest.fail "summary lost in the journal")
        views)

let test_journal_untraced_stays_v2 () =
  (* The byte-identity contract: with tracing off, a v3-era journal is
     exactly a v2 journal — same schema string, and no taint field (not
     even an empty one) anywhere in the file. *)
  with_journal_lines ~taint_trace:false (fun _ lines _ ->
      (match lines with
       | manifest :: _ ->
         Alcotest.(check (option string)) "schema stays v2"
           (Some Faults.Journal.schema)
           (Option.bind
              (Json.member "schema" (Json.parse manifest))
              Json.to_str)
       | [] -> Alcotest.fail "journal empty");
      let contains_taint line =
        let needle = "taint" and hay = line in
        let n = String.length needle in
        let rec scan i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "no taint bytes anywhere" false
        (List.exists contains_taint lines))

let test_journal_fold_streams () =
  (* fold is the primitive and load its wrapper: both agree, and fold
     visits the trials in file order. *)
  with_journal_lines ~taint_trace:true (fun path _ _ ->
      let m_load, views = Faults.Journal.load path in
      let m_fold, (count, rev_indices) =
        Faults.Journal.fold path ~init:(0, []) ~f:(fun (n, acc) v ->
            (n + 1, v.Faults.Journal.v_index :: acc))
      in
      Alcotest.(check bool) "same manifest" true (m_load = m_fold);
      Alcotest.(check int) "same trial count" (List.length views) count;
      Alcotest.(check (list int)) "file order"
        (List.map (fun (v : Faults.Journal.view) -> v.v_index) views)
        (List.rev rev_indices))

(* ----- Determinism under observability -----

   The whole point of the telemetry design: journaling, profiling and
   stats collection must be unobservable in the results — bit-identical
   trial lists with every hook enabled, serial and parallel. *)

let check_observability_inert ~domains () =
  let bare_summary, bare = small_campaign ~domains:1 () in
  let profile = Interp.Profile.create () in
  let journal = ref [] in
  let stats = ref None in
  let instr_summary, instrumented =
    small_campaign ~profile
      ~on_trial:(fun i t -> journal := (i, t) :: !journal)
      ~stats_out:stats ~domains ()
  in
  Alcotest.(check bool) "trial lists bit-identical" true
    (Faults.Campaign.trials_equal bare instrumented);
  Alcotest.(check bool) "summaries identical" true
    (bare_summary.Faults.Campaign.counts
     = instr_summary.Faults.Campaign.counts);
  (* The hooks did observe the campaign. *)
  Alcotest.(check int) "journal saw every trial" (List.length bare)
    (List.length !journal);
  Alcotest.(check bool) "journal in seed order" true
    (List.rev_map fst !journal = List.init (List.length bare) Fun.id);
  Alcotest.(check bool) "profile counted instructions" true
    (Interp.Profile.total_instrs profile > 0);
  Alcotest.(check bool) "stats reported" true (!stats <> None)

let test_observability_inert_serial () = check_observability_inert ~domains:1 ()
let test_observability_inert_parallel () =
  check_observability_inert ~domains:2 ()

let test_profile_merge_deterministic () =
  (* Same campaign, serial vs. parallel: the merged profiles must agree
     (merge happens in trial order, not completion order). *)
  let collect domains =
    let p = Interp.Profile.create () in
    let (_ : Faults.Campaign.summary), (_ : Faults.Campaign.trial list) =
      small_campaign ~profile:p ~domains ()
    in
    (Interp.Profile.total_instrs p, Interp.Profile.opcode_rows p,
     Interp.Profile.check_rows p)
  in
  Alcotest.(check bool) "serial = parallel profile" true
    (collect 1 = collect 4)

let tests =
  [ Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "metrics: counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics: histogram buckets" `Quick
      test_metrics_histogram_buckets;
    Alcotest.test_case "log: jsonl sink + level" `Quick
      test_log_jsonl_sink_and_level;
    Alcotest.test_case "pool: stats serial" `Quick test_pool_stats_serial;
    Alcotest.test_case "pool: stats parallel" `Quick test_pool_stats_parallel;
    Alcotest.test_case "pool: stats empty" `Quick test_pool_stats_empty;
    Alcotest.test_case "pool: worker exception cancels" `Quick
      test_pool_cancellation;
    Alcotest.test_case "pool: serial exception propagates" `Quick
      test_pool_serial_exception;
    Alcotest.test_case "journal: write/load roundtrip" `Quick
      test_journal_write_load;
    Alcotest.test_case "journal: malformed input" `Quick test_journal_malformed;
    Alcotest.test_case "journal: no manifest is an error" `Quick
      test_journal_no_manifest;
    Alcotest.test_case "journal: v1 still loads" `Quick test_journal_v1_loads;
    Alcotest.test_case "journal: v2 recovery roundtrip" `Quick
      test_journal_v2_recovery_roundtrip;
    Alcotest.test_case "journal: v3 taint roundtrip" `Quick
      test_journal_v3_taint_roundtrip;
    Alcotest.test_case "journal: untraced stays v2" `Quick
      test_journal_untraced_stays_v2;
    Alcotest.test_case "journal: fold streams" `Quick
      test_journal_fold_streams;
    Alcotest.test_case "determinism: hooks inert (serial)" `Quick
      test_observability_inert_serial;
    Alcotest.test_case "determinism: hooks inert (domains=2)" `Quick
      test_observability_inert_parallel;
    Alcotest.test_case "determinism: profile merge" `Quick
      test_profile_merge_deterministic;
  ]
