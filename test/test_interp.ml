(** Tests for the interpreter substrate: memory, cost model, machine
    semantics, fault injection. *)

open Ir

let run_main ?config prog args =
  let mem = Interp.Memory.create () in
  Interp.Machine.run ?config prog ~entry:"main" ~args ~mem

(* ----- Memory ----- *)

let test_memory_roundtrip () =
  let mem = Interp.Memory.create () in
  let base = Interp.Memory.alloc mem 16 in
  Interp.Memory.store mem (base + 3) (Value.of_int 99);
  Alcotest.(check int) "load back" 99
    (Value.to_int (Interp.Memory.load mem (base + 3)));
  Alcotest.(check int) "unwritten cell is zero" 0
    (Value.to_int (Interp.Memory.load mem base))

let test_memory_bounds () =
  let mem = Interp.Memory.create () in
  let base = Interp.Memory.alloc mem 8 in
  Alcotest.check_raises "below" (Interp.Memory.Segfault (base - 1)) (fun () ->
    ignore (Interp.Memory.load mem (base - 1)));
  Alcotest.check_raises "above" (Interp.Memory.Segfault (base + 8)) (fun () ->
    ignore (Interp.Memory.load mem (base + 8)))

let test_memory_guard_gaps () =
  let mem = Interp.Memory.create () in
  let a = Interp.Memory.alloc mem 100 in
  let b = Interp.Memory.alloc mem 100 in
  Alcotest.(check bool) "regions widely separated" true (b - a >= 0x10000)

let test_memory_bulk_helpers () =
  let mem = Interp.Memory.create () in
  let data = [| 5; -3; 0; 42 |] in
  let base = Interp.Memory.alloc_ints mem data in
  Alcotest.(check (array int)) "ints roundtrip" data
    (Interp.Memory.read_ints mem base 4);
  let fdata = [| 1.5; -2.25 |] in
  let fbase = Interp.Memory.alloc_floats mem fdata in
  Alcotest.(check (array (float 0.0))) "floats roundtrip" fdata
    (Interp.Memory.read_floats mem fbase 2)

let test_memory_tolerant_read () =
  let mem = Interp.Memory.create () in
  let base = Interp.Memory.alloc mem 3 in
  Interp.Memory.store mem base (Value.of_float 2.9);
  Interp.Memory.store mem (base + 1) (Value.of_float Float.nan);
  Interp.Memory.store mem (base + 2) (Value.of_int 7);
  Alcotest.(check (array int)) "tolerant" [| 2; 0; 7 |]
    (Interp.Memory.read_ints_tolerant mem base 3)

let test_float_address_traps () =
  Alcotest.(check bool) "float address raises Segfault" true
    (try
       ignore (Interp.Memory.addr_of_value (Value.of_float 3.0));
       false
     with Interp.Memory.Segfault _ -> true)

(* ----- Machine semantics ----- *)

let build_storeload () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let base = Builder.alloc b (Builder.imm 4) in
  Builder.seti b base (Builder.imm 2) (Builder.param b 0);
  Builder.ret b (Builder.geti b base (Builder.imm 2));
  Builder.finish b;
  prog

let test_machine_store_load () =
  match (run_main (build_storeload ()) [ Value.of_int 77 ]).stop with
  | Interp.Machine.Finished (Some v) ->
    Alcotest.(check int) "store/load" 77 (Value.to_int v)
  | stop -> Alcotest.failf "unexpected: %a" Interp.Machine.pp_stop stop

let test_machine_div_by_zero_trap () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  Builder.ret b (Builder.sdiv b (Builder.imm 10) (Builder.param b 0));
  Builder.finish b;
  match (run_main prog [ Value.of_int 0 ]).stop with
  | Interp.Machine.Trapped Interp.Machine.Division_by_zero -> ()
  | stop -> Alcotest.failf "unexpected: %a" Interp.Machine.pp_stop stop

let test_machine_fuel () =
  (* An infinite loop ends as Out_of_fuel. *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let (_ : Instr.reg list) =
    Builder.loop b ~init:[ Builder.imm 0 ]
      ~cond:(fun _ -> Builder.imm 1)
      ~body:(fun regs ->
        match regs with
        | [ r ] -> [ Builder.add b (Reg r) (Builder.imm 1) ]
        | _ -> assert false)
  in
  Builder.ret b (Builder.imm 0);
  Builder.finish b;
  let config = { Interp.Machine.default_config with fuel = 1000 } in
  match (run_main ~config prog []).stop with
  | Interp.Machine.Out_of_fuel -> ()
  | stop -> Alcotest.failf "unexpected: %a" Interp.Machine.pp_stop stop

let test_machine_oob_trap () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  Builder.ret b (Builder.load b (Builder.param b 0));
  Builder.finish b;
  match (run_main prog [ Value.of_int 5 ]).stop with
  | Interp.Machine.Trapped (Interp.Machine.Segfault 5) -> ()
  | stop -> Alcotest.failf "unexpected: %a" Interp.Machine.pp_stop stop

let test_machine_deterministic () =
  let prog = build_storeload () in
  let r1 = run_main prog [ Value.of_int 1 ] in
  let r2 = run_main prog [ Value.of_int 1 ] in
  Alcotest.(check int) "steps equal" r1.steps r2.steps;
  Alcotest.(check int) "cycles equal" r1.cycles r2.cycles

let test_machine_counts_steps_and_cycles () =
  let r = run_main (build_storeload ()) [ Value.of_int 1 ] in
  Alcotest.(check bool) "steps positive" true (r.steps > 0);
  Alcotest.(check bool) "cycles >= steps" true (r.cycles >= r.steps - 2)

(* ----- Fault injection ----- *)

let sum_prog () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n ~init:(Builder.imm 0)
      ~body:(fun ~i acc -> Builder.add b acc i)
  in
  Builder.ret b s;
  Builder.finish b;
  prog

let test_injection_records_flip () =
  let prog = sum_prog () in
  let config =
    { Interp.Machine.default_config with
      fault = Some (Interp.Machine.register_fault ~at_step:50 ~fault_rng:(Rng.create 7) ()) }
  in
  let r = run_main ~config prog [ Value.of_int 100 ] in
  match r.injection with
  | Some inj ->
    Alcotest.(check bool) "flip changed payload" false
      (Value.equal inj.before inj.after);
    Alcotest.(check bool) "flip near requested step" true (inj.inj_step >= 50)
  | None -> Alcotest.fail "no injection recorded"

let test_injection_deterministic_per_seed () =
  let outcome seed =
    let prog = sum_prog () in
    let config =
      { Interp.Machine.default_config with
        fault = Some (Interp.Machine.register_fault ~at_step:40 ~fault_rng:(Rng.create seed) ()) }
    in
    let r = run_main ~config prog [ Value.of_int 200 ] in
    Format.asprintf "%a/%d" Interp.Machine.pp_stop r.stop r.steps
  in
  Alcotest.(check string) "same seed, same outcome" (outcome 3) (outcome 3);
  Alcotest.(check bool) "fault-free differs from nothing" true
    (String.length (outcome 3) > 0)

let test_injection_can_corrupt_result () =
  (* Across many seeds, at least one flip must change the returned sum
     without being masked — proof the flip lands in live state. *)
  let golden =
    match (run_main (sum_prog ()) [ Value.of_int 100 ]).stop with
    | Interp.Machine.Finished (Some v) -> Value.to_int64 v
    | _ -> Alcotest.fail "golden failed"
  in
  let corrupted = ref 0 in
  for seed = 1 to 40 do
    let config =
      { Interp.Machine.default_config with
        fuel = 100_000;
        fault = Some (Interp.Machine.register_fault ~at_step:100 ~fault_rng:(Rng.create seed) ()) }
    in
    match (run_main ~config (sum_prog ()) [ Value.of_int 100 ]).stop with
    | Interp.Machine.Finished (Some v) ->
      if Value.to_int64 v <> golden then incr corrupted
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some corruptions (%d/40)" !corrupted)
    true (!corrupted > 0)

let test_no_fault_no_injection () =
  let r = run_main (sum_prog ()) [ Value.of_int 10 ] in
  Alcotest.(check bool) "no injection" true (r.injection = None)

(* ----- Cost model ----- *)

let test_cost_model_sanity () =
  Alcotest.(check bool) "div slower than add" true
    (Interp.Cost.binop Opcode.Sdiv > Interp.Cost.binop Opcode.Add);
  Alcotest.(check bool) "load slower than add" true
    (Interp.Cost.instr
       { Instr.uid = 0; dest = Some 0; kind = Instr.Load (Instr.Imm Value.zero);
         origin = Instr.From_source }
     > Interp.Cost.binop Opcode.Add);
  Alcotest.(check int) "phi is free" 0 Interp.Cost.phi;
  Alcotest.(check bool) "table II is non-empty" true
    (List.length (Interp.Cost.describe ()) > 5)

let tests =
  [ Alcotest.test_case "memory: roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "memory: bounds" `Quick test_memory_bounds;
    Alcotest.test_case "memory: guard gaps" `Quick test_memory_guard_gaps;
    Alcotest.test_case "memory: bulk helpers" `Quick test_memory_bulk_helpers;
    Alcotest.test_case "memory: tolerant reads" `Quick test_memory_tolerant_read;
    Alcotest.test_case "memory: float address traps" `Quick test_float_address_traps;
    Alcotest.test_case "machine: store/load" `Quick test_machine_store_load;
    Alcotest.test_case "machine: div-by-zero trap" `Quick
      test_machine_div_by_zero_trap;
    Alcotest.test_case "machine: fuel exhaustion" `Quick test_machine_fuel;
    Alcotest.test_case "machine: out-of-bounds trap" `Quick test_machine_oob_trap;
    Alcotest.test_case "machine: deterministic" `Quick test_machine_deterministic;
    Alcotest.test_case "machine: step/cycle accounting" `Quick
      test_machine_counts_steps_and_cycles;
    Alcotest.test_case "inject: records flip" `Quick test_injection_records_flip;
    Alcotest.test_case "inject: deterministic per seed" `Quick
      test_injection_deterministic_per_seed;
    Alcotest.test_case "inject: can corrupt live state" `Quick
      test_injection_can_corrupt_result;
    Alcotest.test_case "inject: absent without plan" `Quick test_no_fault_no_injection;
    Alcotest.test_case "cost: model sanity" `Quick test_cost_model_sanity;
  ]
