(** Campaign-warehouse tests: run keys, ingest idempotence, cross-run
    diffing, the regression gate, fixture-journal compatibility and
    per-instruction heatmaps (DESIGN.md §15). *)

module Store = Warehouse.Store
module Heatmap = Warehouse.Heatmap
module Campaign = Faults.Campaign
module Journal = Faults.Journal

let tmp_dir () =
  let path = Filename.temp_file "softft_wh" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let tmp_journal () = Filename.temp_file "softft_whj" ".jsonl"

(* One campaign per (workload, technique), shared across tests — the
   results are deterministic in the seed, so caching changes nothing. *)
let campaign_cache : (string, Campaign.summary * Campaign.trial list * Softft.protected) Hashtbl.t =
  Hashtbl.create 8

let seed = 0xC0FFEE
let trials = 150

let run_campaign name technique =
  let key = name ^ "/" ^ Softft.technique_name technique in
  match Hashtbl.find_opt campaign_cache key with
  | Some r -> r
  | None ->
    let w = Workloads.Registry.find name in
    let p = Softft.protect w technique in
    let summary, results =
      Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed
        ~domains:2
    in
    let r = (summary, results, p) in
    Hashtbl.replace campaign_cache key r;
    r

let manifest_of ?(git = "test") ?(domains = 2) ?(seed = seed) ?technique
    (summary : Campaign.summary) =
  Journal.manifest_record ~git ?technique
    ~counts:summary.Campaign.counts ~label:summary.Campaign.subject_label
    ~trials:summary.Campaign.trials ~seed ~domains
    ~hw_window:Faults.Classify.default_hw_window ~fault_kind:"register_bit"
    ~golden:summary.Campaign.golden_info ()

let write_journal ?technique (summary : Campaign.summary) results =
  let path = tmp_journal () in
  Journal.write ~path ~manifest:(manifest_of ?technique summary)
    ~trials:results ();
  path

(* ----- Wilson-interval disjointness ----- *)

let test_disjoint () =
  let a = Obs.Stats.wilson ~k:5 ~n:1000 () in
  let b = Obs.Stats.wilson ~k:100 ~n:1000 () in
  Alcotest.(check bool) "far-apart rates are disjoint" true
    (Obs.Stats.disjoint a b);
  Alcotest.(check bool) "disjointness is symmetric" true
    (Obs.Stats.disjoint b a);
  Alcotest.(check bool) "an interval is never disjoint from itself" false
    (Obs.Stats.disjoint a a);
  let c = Obs.Stats.wilson ~k:6 ~n:1000 () in
  Alcotest.(check bool) "overlapping neighbours are not disjoint" false
    (Obs.Stats.disjoint a c)

(* ----- Run keys ----- *)

let test_run_key_stable_across_domains () =
  let summary, _, p = run_campaign "kmeans" Softft.Dup_valchk in
  let digest = Store.prog_digest p.Softft.prog in
  let key domains git =
    Store.run_key ~prog_digest:digest (manifest_of ~domains ~git summary)
  in
  Alcotest.(check string) "domains 1 vs 2" (key 1 "test") (key 2 "test");
  Alcotest.(check string) "domains 2 vs 4" (key 2 "test") (key 4 "test");
  Alcotest.(check string) "git revision is excluded" (key 2 "test")
    (key 2 "other-rev");
  let other_seed =
    Store.run_key ~prog_digest:digest (manifest_of ~seed:7 summary)
  in
  Alcotest.(check bool) "a different seed is a different run" true
    (other_seed <> key 2 "test")

let test_prog_digest_sensitivity () =
  let _, _, p_dupval = run_campaign "kmeans" Softft.Dup_valchk in
  let w = Workloads.Registry.find "kmeans" in
  let p_orig = Softft.protect w Softft.Original in
  Alcotest.(check bool) "different programs, different digests" true
    (Store.prog_digest p_dupval.Softft.prog
     <> Store.prog_digest p_orig.Softft.prog);
  Alcotest.(check string) "rebuilding the program reproduces the digest"
    (Store.prog_digest p_dupval.Softft.prog)
    (Store.prog_digest (Softft.protect w Softft.Dup_valchk).Softft.prog)

(* ----- Ingest ----- *)

let test_ingest_idempotent () =
  let summary, results, p = run_campaign "kmeans" Softft.Dup_valchk in
  let dir = tmp_dir () in
  let path = write_journal summary results in
  let digest = Store.prog_digest p.Softft.prog in
  let first = Store.ingest ~prog_digest:digest ~dir path in
  (match first with
   | `Ingested _ -> ()
   | `Duplicate _ -> Alcotest.fail "first ingest reported a duplicate");
  (match Store.ingest ~prog_digest:digest ~dir path with
   | `Duplicate _ -> ()
   | `Ingested _ -> Alcotest.fail "second ingest was not a no-op");
  Alcotest.(check int) "one index entry" 1
    (List.length (Store.entries ~dir));
  (* Filing the same run straight from memory hits the same key. *)
  (match
     Store.file_run ~prog_digest:digest ~dir
       ~manifest:(manifest_of ~domains:4 summary) ~trials:results ()
   with
   | `Duplicate _ -> ()
   | `Ingested _ ->
     Alcotest.fail "file_run at another domain count minted a new key");
  Sys.remove path

let test_ingest_records_counts () =
  let summary, results, _ = run_campaign "kmeans" Softft.Dup_valchk in
  let dir = tmp_dir () in
  let path = write_journal summary results in
  (match Store.ingest ~dir path with
   | `Ingested e ->
     Alcotest.(check int) "trials" trials e.Store.e_trials;
     let total =
       List.fold_left (fun acc (_, k) -> acc + k) 0 e.Store.e_counts
     in
     Alcotest.(check int) "outcome counts sum to trials" trials total
   | `Duplicate _ -> Alcotest.fail "fresh warehouse reported a duplicate");
  Sys.remove path

(* ----- Diffing ----- *)

let test_diff_self_zero_significant () =
  let summary, results, _ = run_campaign "kmeans" Softft.Dup_valchk in
  let path = write_journal summary results in
  let d = Store.diff_runs ~old_path:path ~new_path:path in
  let all = (d.Store.df_sdc :: d.Store.df_outcomes) @ d.Store.df_strata in
  List.iter
    (fun (r : Store.diff_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: self-diff is never significant" r.Store.dr_name)
        false r.Store.dr_significant;
      Alcotest.(check int)
        (Printf.sprintf "%s: identical counts" r.Store.dr_name)
        r.Store.dr_old_k r.Store.dr_new_k)
    all;
  Sys.remove path

let test_diff_v5_strata_rows () =
  let path = Filename.concat "fixtures" "journal_v5.jsonl" in
  let d = Store.diff_runs ~old_path:path ~new_path:path in
  Alcotest.(check bool) "v5 self-diff carries per-stratum rows" true
    (d.Store.df_strata <> []);
  List.iter
    (fun (r : Store.diff_row) ->
      Alcotest.(check bool) "stratum self-delta is not significant" false
        r.Store.dr_significant)
    d.Store.df_strata

(* A synthetic journal with a chosen SDC count — rate separation under
   test control, independent of any workload's actual fault response. *)
let synthetic_journal ~sdc_k ~trials =
  let path = tmp_journal () in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"type\":\"manifest\",\"schema\":\"softft.journal.v1\",\"git\":\"t\",\
     \"label\":\"synthetic/test\",\"trials\":%d,\"seed\":1,\"domains\":1,\
     \"hw_window\":1000,\"fault_kind\":\"register_bit\"}\n"
    trials;
  for i = 0 to trials - 1 do
    Printf.fprintf oc
      "{\"type\":\"trial\",\"i\":%d,\"seed\":%d,\"at_step\":3,\
       \"outcome\":%S,\"steps\":10,\"cycles\":12,\
       \"injection\":{\"step\":3,\"reg\":1,\"bit\":0}}\n"
      i (100 + i)
      (if i < sdc_k then "ASDC" else "Masked")
  done;
  close_out oc;
  path

let test_diff_detects_disjoint_rates () =
  let old_path = synthetic_journal ~sdc_k:50 ~trials:200 in
  let new_path = synthetic_journal ~sdc_k:0 ~trials:200 in
  let d = Store.diff_runs ~old_path ~new_path in
  Alcotest.(check bool) "25% -> 0% SDC is significant" true
    d.Store.df_sdc.Store.dr_significant;
  Alcotest.(check bool) "and downward" true
    (d.Store.df_sdc.Store.dr_new.Obs.Stats.ci_estimate
     < d.Store.df_sdc.Store.dr_old.Obs.Stats.ci_estimate);
  (* A small wobble inside the intervals is noise, not a delta. *)
  let near_path = synthetic_journal ~sdc_k:47 ~trials:200 in
  let d' = Store.diff_runs ~old_path ~new_path:near_path in
  Alcotest.(check bool) "overlapping intervals never flag" false
    d'.Store.df_sdc.Store.dr_significant;
  List.iter Sys.remove [ old_path; new_path; near_path ]

(* ----- The regression gate ----- *)

let entry ~seq ~label ~sdc_k ~trials ~tps ~cores : Store.entry =
  { Store.e_seq = seq;
    e_key = Printf.sprintf "key%d" seq;
    e_label = label;
    e_technique = Some "Dup + val chks";
    e_journal_schema = "softft.journal.v4";
    e_git = "test";
    e_prog_digest = None;
    e_trials = trials;
    e_seed = 0;
    e_domains = 1;
    e_hw_window = 1000;
    e_fault_kind = "register_bit";
    e_checkpoint_interval = 0;
    e_taint_trace = false;
    e_ci_target = None;
    e_path = Printf.sprintf "runs/key%d.jsonl" seq;
    e_host = "host";
    e_host_cores = cores;
    e_ingested_at = 0.0;
    e_trials_per_sec = Some tps;
    e_counts = [ ("ASDC", sdc_k); ("Masked", trials - sdc_k) ];
    e_sdc = Obs.Stats.wilson ~k:sdc_k ~n:trials () }

let test_regress_gate () =
  let base = [ entry ~seq:1 ~label:"a/test" ~sdc_k:5 ~trials:1000 ~tps:100.0 ~cores:8 ] in
  let worse = [ entry ~seq:2 ~label:"a/test" ~sdc_k:100 ~trials:1000 ~tps:100.0 ~cores:8 ] in
  let g = Store.regress ~baseline:base ~current:worse () in
  Alcotest.(check int) "one matched pair" 1 (List.length g.Store.rx_rows);
  Alcotest.(check bool) "SDC up with disjoint intervals regresses" true
    (List.hd g.Store.rx_rows).Store.rg_regressed;
  Alcotest.(check bool) "the gate fails" true (g.Store.rx_failures <> []);
  (* The same movement downward is an improvement, not a failure. *)
  let g' = Store.regress ~baseline:worse ~current:base () in
  Alcotest.(check bool) "SDC down improves" true
    (List.hd g'.Store.rx_rows).Store.rg_improved;
  Alcotest.(check (list string)) "and passes" [] g'.Store.rx_failures;
  (* Self-comparison is always green. *)
  let g'' = Store.regress ~baseline:base ~current:base () in
  Alcotest.(check (list string)) "self-regress is green" []
    g''.Store.rx_failures

let test_regress_throughput_gate () =
  let base = [ entry ~seq:1 ~label:"a/test" ~sdc_k:5 ~trials:1000 ~tps:100.0 ~cores:8 ] in
  let slow = [ entry ~seq:2 ~label:"a/test" ~sdc_k:5 ~trials:1000 ~tps:50.0 ~cores:8 ] in
  let g = Store.regress ~tolerance_pct:15.0 ~baseline:base ~current:slow () in
  Alcotest.(check bool) "same-host slowdown beyond tolerance fails" true
    (g.Store.rx_failures <> []);
  (* Without opting in, throughput never gates. *)
  let g' = Store.regress ~baseline:base ~current:slow () in
  Alcotest.(check (list string)) "coverage-only gate ignores throughput" []
    g'.Store.rx_failures;
  (* A different machine stands the throughput gate down (bench-diff's
     host rule). *)
  let other = [ entry ~seq:2 ~label:"a/test" ~sdc_k:5 ~trials:1000 ~tps:50.0 ~cores:4 ] in
  let g'' = Store.regress ~tolerance_pct:15.0 ~baseline:base ~current:other () in
  Alcotest.(check (list string)) "host mismatch stands down" []
    g''.Store.rx_failures

let test_regress_unmatched_identities () =
  let base = [ entry ~seq:1 ~label:"a/test" ~sdc_k:5 ~trials:1000 ~tps:100.0 ~cores:8 ] in
  let curr = [ entry ~seq:2 ~label:"b/test" ~sdc_k:5 ~trials:1000 ~tps:100.0 ~cores:8 ] in
  let g = Store.regress ~baseline:base ~current:curr () in
  Alcotest.(check int) "no matched pairs" 0 (List.length g.Store.rx_rows);
  Alcotest.(check int) "baseline-only identity" 1
    (List.length g.Store.rx_only_old);
  Alcotest.(check int) "current-only identity" 1
    (List.length g.Store.rx_only_new);
  Alcotest.(check (list string)) "unmatched identities never fail" []
    g.Store.rx_failures

(* ----- resolve / bench snapshots ----- *)

let test_resolve_key_prefix () =
  let summary, results, p = run_campaign "kmeans" Softft.Dup_valchk in
  let dir = tmp_dir () in
  let digest = Store.prog_digest p.Softft.prog in
  let e =
    match
      Store.file_run ~prog_digest:digest ~dir ~manifest:(manifest_of summary)
        ~trials:results ()
    with
    | `Ingested e | `Duplicate e -> e
  in
  let full = Store.resolve ~dir e.Store.e_key in
  Alcotest.(check bool) "full key resolves to an existing journal" true
    (Sys.file_exists full);
  Alcotest.(check string) "an 8-char prefix resolves to the same path" full
    (Store.resolve ~dir (String.sub e.Store.e_key 0 8));
  (match Store.resolve ~dir "zzzzzzzz" with
   | _ -> Alcotest.fail "an unknown key resolved"
   | exception Failure _ -> ())

let test_bench_ingest_latest () =
  let dir = tmp_dir () in
  let write contents =
    let path = Filename.temp_file "softft_bench" ".json" in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let b1 = write "{\"workloads\":[],\"n\":1}\n" in
  let b2 = write "{\"workloads\":[],\"n\":2}\n" in
  Alcotest.(check bool) "empty warehouse has no latest bench" true
    (Store.latest_bench ~dir = None);
  (match Store.ingest_bench ~dir b1 with
   | `Ingested _ -> ()
   | `Duplicate _ -> Alcotest.fail "fresh bench reported duplicate");
  ignore (Store.ingest_bench ~dir b2);
  let latest =
    match Store.latest_bench ~dir with
    | Some p -> p
    | None -> Alcotest.fail "no latest bench after two ingests"
  in
  Alcotest.(check string) "latest is the second snapshot"
    (In_channel.with_open_text b2 In_channel.input_all)
    (In_channel.with_open_text latest In_channel.input_all);
  (match Store.ingest_bench ~dir b1 with
   | `Duplicate _ -> ()
   | `Ingested _ -> Alcotest.fail "re-ingesting bench bytes was not a no-op");
  (match Store.latest_bench ~dir with
   | Some p ->
     Alcotest.(check string) "duplicate ingest does not move latest"
       (In_channel.with_open_text b2 In_channel.input_all)
       (In_channel.with_open_text p In_channel.input_all)
   | None -> Alcotest.fail "latest bench vanished");
  Sys.remove b1;
  Sys.remove b2

(* ----- Fixture journals (schema compatibility, v1..v5) ----- *)

let fixture v = Filename.concat "fixtures" (Printf.sprintf "journal_v%d.jsonl" v)

let test_fixtures_parse () =
  let expect_views = [ (1, 3); (2, 3); (3, 2); (4, 4); (5, 4) ] in
  List.iter
    (fun (v, n) ->
      let manifest, views = Journal.load (fixture v) in
      let schema =
        Option.value ~default:"?"
          (Option.bind (Obs.Json.member "schema" manifest) Obs.Json.to_str)
      in
      Alcotest.(check string)
        (Printf.sprintf "v%d schema" v)
        (Printf.sprintf "softft.journal.v%d" v)
        schema;
      Alcotest.(check int) (Printf.sprintf "v%d views" v) n
        (List.length views);
      (* fold agrees with load. *)
      let _, folded =
        Journal.fold (fixture v) ~init:0 ~f:(fun acc _ -> acc + 1)
      in
      Alcotest.(check int) (Printf.sprintf "v%d fold count" v) n folded)
    expect_views

let test_fixture_version_fields () =
  let _, v2 = Journal.load (fixture 2) in
  Alcotest.(check bool) "v2 carries a recovery record" true
    (List.exists (fun v -> v.Journal.v_recovery <> None) v2);
  let _, v3 = Journal.load (fixture 3) in
  Alcotest.(check bool) "v3 carries taint summaries" true
    (List.for_all (fun v -> v.Journal.v_taint <> None) v3);
  let _, v4 = Journal.load (fixture 4) in
  Alcotest.(check bool) "v4 tolerates an injection-free trial" true
    (List.exists (fun v -> v.Journal.v_inj_reg = None) v4);
  let _, v5 = Journal.load (fixture 5) in
  Alcotest.(check bool) "v5 trials carry stratum ids" true
    (List.for_all (fun v -> v.Journal.v_stratum <> None) v5)

let test_fixtures_ingest () =
  let dir = tmp_dir () in
  List.iter (fun v ->
      match Store.ingest ~dir (fixture v) with
      | `Ingested _ -> ()
      | `Duplicate _ ->
        Alcotest.fail (Printf.sprintf "fixture v%d ingested twice" v))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "five distinct runs" 5
    (List.length (Store.entries ~dir));
  (* The v5 entry carries its adaptive interval, not pooled Wilson. *)
  let e5 =
    List.find
      (fun (e : Store.entry) -> e.Store.e_journal_schema = "softft.journal.v5")
      (Store.entries ~dir)
  in
  Alcotest.(check (option (float 1e-9))) "adaptive ci target recorded"
    (Some 0.05) e5.Store.e_ci_target;
  Alcotest.(check (float 1e-9)) "adaptive SDC estimate preserved" 0.2
    e5.Store.e_sdc.Obs.Stats.ci_estimate

(* ----- Heatmaps ----- *)

let heatmap_of name technique =
  let summary, results, p = run_campaign name technique in
  let path = write_journal summary results in
  let _, views = Journal.load path in
  Sys.remove path;
  let cov = Analysis.Coverage.analyze p.Softft.prog in
  ( Heatmap.build ~prog:p.Softft.prog ~cov
      ~label:summary.Campaign.subject_label
      ~technique:(Softft.technique_name technique)
      views,
    views )

let test_heatmap_totals () =
  let hm, views = heatmap_of "kmeans" Softft.Dup_valchk in
  Alcotest.(check int) "per-site totals sum to the injected-trial count"
    hm.Heatmap.hm_injected
    (Heatmap.total_injections hm);
  let injected =
    List.length (List.filter (fun v -> v.Journal.v_inj_reg <> None) views)
  in
  Alcotest.(check int) "hm_injected counts the journal's injections"
    injected hm.Heatmap.hm_injected;
  Alcotest.(check int) "hm_trials counts every trial" trials
    hm.Heatmap.hm_trials;
  let sdc_names = [ "ASDC"; "USDC(large)"; "USDC(small)" ] in
  let journal_sdc =
    List.length
      (List.filter
         (fun v ->
           v.Journal.v_inj_reg <> None
           && List.mem v.Journal.v_outcome sdc_names)
         views)
  in
  let site_sdc =
    List.fold_left
      (fun acc (s : Heatmap.site) -> acc + s.Heatmap.s_sdc)
      0 hm.Heatmap.hm_sites
  in
  Alcotest.(check int) "SDC split agrees with the journal" journal_sdc
    site_sdc

let test_heatmap_static_vs_measured_ranking () =
  (* DESIGN.md §11: SDC-prone exposure ranks original > selective
     (dup+valchk) > full duplication, and the measured SDC rates follow. *)
  List.iter
    (fun name ->
      let frac t =
        let hm, _ = heatmap_of name t in
        (hm.Heatmap.hm_static_fraction,
         hm.Heatmap.hm_measured_sdc.Obs.Stats.ci_estimate)
      in
      let s_orig, m_orig = frac Softft.Original in
      let s_sel, m_sel = frac Softft.Dup_valchk in
      let s_full, m_full = frac Softft.Full_dup in
      Alcotest.(check bool)
        (name ^ ": static original > selective")
        true (s_orig > s_sel);
      Alcotest.(check bool)
        (name ^ ": static selective > full")
        true (s_sel > s_full);
      Alcotest.(check bool)
        (name ^ ": measured original >= selective")
        true (m_orig >= m_sel);
      Alcotest.(check bool)
        (name ^ ": measured selective >= full")
        true (m_sel >= m_full);
      (* kmeans' nearest-centroid output absorbs every surviving flip at
         this trial count (all three rates are 0), so the strict measured
         separation is asserted on jpegdec, whose original variant does
         leak ASDC. *)
      if name = "jpegdec" then
        Alcotest.(check bool)
          (name ^ ": measured original > full")
          true (m_orig > m_full))
    [ "kmeans"; "jpegdec" ]

let test_heatmap_renderings () =
  let hm, _ = heatmap_of "kmeans" Softft.Dup_valchk in
  let csv = Heatmap.to_csv hm in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "CSV header"
    "func,block,uid,site,status,sdc_prone,injections,sdc,detected,masked,other"
    (List.hd lines);
  Alcotest.(check int) "one CSV row per site"
    (List.length hm.Heatmap.hm_sites)
    (List.length (List.tl lines));
  let html = Heatmap.to_html hm in
  let contains needle =
    let n = String.length needle and h = String.length html in
    let rec go i = i + n <= h && (String.sub html i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HTML is a standalone page" true
    (contains "<!doctype html>" || contains "<!DOCTYPE html>");
  Alcotest.(check bool) "HTML names the run" true
    (contains hm.Heatmap.hm_label)

let tests =
  [ Alcotest.test_case "stats: interval disjointness" `Quick test_disjoint;
    Alcotest.test_case "key: stable across domains and git" `Quick
      test_run_key_stable_across_domains;
    Alcotest.test_case "key: program digest sensitivity" `Quick
      test_prog_digest_sensitivity;
    Alcotest.test_case "ingest: idempotent" `Quick test_ingest_idempotent;
    Alcotest.test_case "ingest: outcome counts" `Quick
      test_ingest_records_counts;
    Alcotest.test_case "diff-runs: self has zero significant deltas" `Quick
      test_diff_self_zero_significant;
    Alcotest.test_case "diff-runs: v5 strata rows" `Quick
      test_diff_v5_strata_rows;
    Alcotest.test_case "diff-runs: disjoint rates flag" `Quick
      test_diff_detects_disjoint_rates;
    Alcotest.test_case "regress: coverage gate" `Quick test_regress_gate;
    Alcotest.test_case "regress: throughput gate" `Quick
      test_regress_throughput_gate;
    Alcotest.test_case "regress: unmatched identities" `Quick
      test_regress_unmatched_identities;
    Alcotest.test_case "resolve: key prefixes" `Quick test_resolve_key_prefix;
    Alcotest.test_case "bench snapshots: latest" `Quick
      test_bench_ingest_latest;
    Alcotest.test_case "fixtures: v1..v5 parse" `Quick test_fixtures_parse;
    Alcotest.test_case "fixtures: version-specific fields" `Quick
      test_fixture_version_fields;
    Alcotest.test_case "fixtures: all five ingest" `Quick
      test_fixtures_ingest;
    Alcotest.test_case "heatmap: totals sum to injections" `Quick
      test_heatmap_totals;
    Alcotest.test_case "heatmap: static vs measured ranking" `Quick
      test_heatmap_static_vs_measured_ranking;
    Alcotest.test_case "heatmap: CSV and HTML renderings" `Quick
      test_heatmap_renderings ]
