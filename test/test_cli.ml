(** Help-surface snapshot: every `experiments' subcommand answers --help
    with exit 0 and documents its flags — the CLI contract CI and the
    README walkthrough rely on.  Runs the real binary (a test dep). *)

let exe = Filename.concat (Filename.concat ".." "bin") "experiments.exe"

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let help_of sub =
  let out = Filename.temp_file "softft_help" ".txt" in
  let rc =
    Sys.command
      (Printf.sprintf "%s %s --help=plain > %s 2>&1" exe
         (match sub with "" -> "" | s -> Filename.quote s)
         (Filename.quote out))
  in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (rc, text)

(* Every subcommand, with the flags its help must document.  A flag
   silently dropped from the CLI breaks scripts; this list is the
   snapshot that catches it. *)
let surface =
  [ ("all", [ "--trials"; "--seed"; "--benchmarks"; "--domains"; "--quiet" ]);
    ("crossval", [ "--trials"; "--seed"; "--domains" ]);
    ("one",
     [ "--trials"; "--seed"; "--domains"; "--checkpoint"; "--journal";
       "--progress"; "--trace-timeline" ]);
    ("campaign",
     [ "--adaptive"; "--ci"; "--max-trials"; "--bands"; "--journal";
       "--warehouse"; "--progress"; "--trace-timeline" ]);
    ("coverage", [ "--dynamic"; "--csv"; "--regs-csv"; "--journal" ]);
    ("optimize",
     [ "--budget"; "--beam"; "--checkpoint"; "--validate"; "--ci";
       "--max-trials"; "--warehouse"; "--csv"; "--plan-out" ]);
    ("lint", [ "--benchmarks" ]);
    ("report", [ "--strata"; "--csv" ]);
    ("bench-diff", [ "--tolerance"; "--require-same-host" ]);
    ("ingest", [ "--warehouse" ]);
    ("history", [ "--warehouse" ]);
    ("diff-runs", [ "--warehouse" ]);
    ("regress", [ "--baseline"; "--current"; "--tolerance" ]);
    ("heatmap", [ "--warehouse"; "--journal"; "--csv"; "--html" ]);
    ("table1", []);
    ("dump", []);
    ("trace", [ "--limit" ]);
    ("trace-fault", [ "--trial" ]) ]

let test_subcommand_help () =
  List.iter
    (fun (sub, flags) ->
      let rc, text = help_of sub in
      Alcotest.(check int) (sub ^ " --help exits 0") 0 rc;
      List.iter
        (fun flag ->
          Alcotest.(check bool)
            (Printf.sprintf "%s --help documents %s" sub flag)
            true (contains text flag))
        flags)
    surface

let test_toplevel_lists_subcommands () =
  let rc, text = help_of "" in
  Alcotest.(check int) "experiments --help exits 0" 0 rc;
  List.iter
    (fun (sub, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "top-level help lists %s" sub)
        true (contains text sub))
    surface

let test_unknown_subcommand_fails () =
  (* Without --help: cmdliner must reject the command, not fall back. *)
  let rc =
    Sys.command (Printf.sprintf "%s no-such-subcommand > /dev/null 2>&1" exe)
  in
  Alcotest.(check bool) "unknown subcommand exits nonzero" true (rc <> 0)

let tests =
  [ Alcotest.test_case "every subcommand's --help" `Quick
      test_subcommand_help;
    Alcotest.test_case "top-level help lists all subcommands" `Quick
      test_toplevel_lists_subcommands;
    Alcotest.test_case "unknown subcommand" `Quick
      test_unknown_subcommand_fails ]
