(** Tests for the transform-invariant lint ({!Analysis.Lint}): each rule
    catches a hand-built violation, and every pipeline configuration of
    every workload is lint-clean. *)

open Ir

let rules_of issues =
  List.sort_uniq compare
    (List.map (fun (i : Analysis.Lint.issue) -> i.rule) issues)

let check ?expect ?profile text =
  Analysis.Lint.check ?expect ?profile (Parser.parse text)

(* ----- rule: dominance ----- *)

let test_dominance_violation () =
  (* %r1 is defined only on the a-path but used unconditionally in c; the
     structural verifier accepts this (a def exists), the lint must not. *)
  let issues =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  br %r0, a, b\n\
       a:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  jmp c\n\
       b:\n\
      \  jmp c\n\
       c:\n\
      \  %r2 = add %r1, 1    ; #1\n\
      \  ret %r2\n\
       }\n"
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Dominance (rules_of issues))

let test_dominance_clean_diamond () =
  let issues =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  br %r0, a, b\n\
       a:\n\
      \  %r2 = add %r1, 2    ; #1\n\
      \  jmp c\n\
       b:\n\
      \  jmp c\n\
       c:\n\
      \  %r3 = phi [a: %r2], [b: %r1]    ; #2\n\
      \  ret %r3\n\
       }\n"
  in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (i : Analysis.Lint.issue) -> i.message) issues)

let test_dominance_phi_edge_violation () =
  (* The phi in c reads %r1 on the edge from b, where it is unavailable. *)
  let issues =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  br %r0, a, b\n\
       a:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  jmp c\n\
       b:\n\
      \  jmp c\n\
       c:\n\
      \  %r3 = phi [a: %r1], [b: %r1]    ; #2\n\
      \  ret %r3\n\
       }\n"
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Dominance (rules_of issues))

(* ----- rule: separation ----- *)

let test_separation_violation () =
  (* %r3 is original computation reading the shadow %r2. *)
  let issues =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  %r2 = add %r0, 1    ; #1  ; dup of #0\n\
      \  %r3 = add %r2, 2    ; #2\n\
      \  dup_check %r1 == %r2    ; #3  ; check\n\
      \  ret %r3\n\
       }\n"
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Separation (rules_of issues))

let test_separation_terminator_violation () =
  let issues =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  %r2 = add %r0, 1    ; #1  ; dup of #0\n\
      \  dup_check %r1 == %r2    ; #3  ; check\n\
      \  ret %r2\n\
       }\n"
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Separation (rules_of issues))

(* ----- rule: chain coverage ----- *)

let test_chain_coverage_orphan_shadow () =
  (* A clone that never reaches any dup_check: an invariant violation under
     Selective, legitimate under Any. *)
  let text =
    "func @main(%r0) {\n\
     entry:\n\
    \  %r1 = add %r0, 1    ; #0\n\
    \  %r2 = add %r0, 1    ; #1  ; dup of #0\n\
    \  ret %r1\n\
     }\n"
  in
  Alcotest.(check bool) "flagged under Selective" true
    (List.mem Analysis.Lint.Chain_coverage
       (rules_of (check ~expect:Analysis.Lint.Selective text)));
  Alcotest.(check int) "ignored under Any" 0
    (List.length (check text))

let test_chain_coverage_unguarded_escape () =
  (* Under Full, a return of a value that has a shadow must be preceded by
     a dup_check in the block. *)
  let text =
    "func @main(%r0) {\n\
     entry:\n\
    \  %r1 = add %r0, 1    ; #0\n\
    \  %r2 = add %r0, 1    ; #1  ; dup of #0\n\
    \  dup_check %r1 == %r2    ; #2  ; check\n\
    \  %r3 = mul %r1, 3    ; #3\n\
    \  %r4 = mul %r2, 3    ; #4  ; dup of #3\n\
    \  ret %r3\n\
     }\n"
  in
  Alcotest.(check bool) "flagged under Full" true
    (List.mem Analysis.Lint.Chain_coverage
       (rules_of (check ~expect:Analysis.Lint.Full text)))

let test_chain_coverage_missing_latch_check () =
  (* Strip the latch dup_checks from a selectively protected workload: the
     lint must notice the now-unchecked shadow chains. *)
  let p = Softft.protect (Workloads.Registry.find "kmeans") Softft.Dup_only in
  let removed = ref 0 in
  Prog.iter_funcs
    (fun f ->
      Func.iter_blocks
        (fun b ->
          let keep (ins : Instr.t) =
            match ins.kind with
            | Instr.Dup_check _ ->
              incr removed;
              false
            | _ -> true
          in
          b.body <- Array.of_list (List.filter keep (Array.to_list b.body)))
        f)
    p.prog;
  Alcotest.(check bool) "some checks removed" true (!removed > 0);
  let issues =
    Analysis.Lint.check ~expect:Analysis.Lint.Selective p.prog
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Chain_coverage (rules_of issues))

(* ----- rule: check shape ----- *)

let test_check_shape_violations () =
  let empty_range =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  value_check %r1 in range [5, 2]    ; #1  ; check\n\
      \  ret %r1\n\
       }\n"
  in
  Alcotest.(check bool) "empty range flagged" true
    (List.mem Analysis.Lint.Check_shape (rules_of empty_range));
  let same_double =
    check
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  value_check %r1 in double 7, 7    ; #1  ; check\n\
      \  ret %r1\n\
       }\n"
  in
  Alcotest.(check bool) "identical double flagged" true
    (List.mem Analysis.Lint.Check_shape (rules_of same_double))

let test_check_shape_profile_consistency () =
  let text =
    "func @main(%r0) {\n\
     entry:\n\
    \  %r1 = add %r0, 1    ; #0\n\
    \  value_check %r1 in range [0, 5]    ; #1  ; check\n\
    \  ret %r1\n\
     }\n"
  in
  let matching _uid =
    Some (Instr.Range (Value.of_int 0, Value.of_int 5))
  in
  let disagreeing _uid =
    Some (Instr.Range (Value.of_int 0, Value.of_int 10))
  in
  Alcotest.(check int) "matching profile clean" 0
    (List.length (check ~profile:matching text));
  Alcotest.(check bool) "disagreeing profile flagged" true
    (List.mem Analysis.Lint.Check_shape
       (rules_of (check ~profile:disagreeing text)));
  (* Checks the profile does not know (e.g. CFC signatures) are skipped. *)
  Alcotest.(check int) "unknown uid skipped" 0
    (List.length (check ~profile:(fun _ -> None) text))

(* ----- rule: reachability ----- *)

let test_reachability_violation () =
  (* The verifier rejects unreachable blocks at parse time, so build the
     program by mutation. *)
  let prog = Parser.parse "func @main(%r0) {\nentry:\n  ret %r0\n}\n" in
  let f = Prog.find_func prog "main" in
  let dead = Func.add_block f "dead" in
  dead.term <- Instr.Jmp "dead";
  let issues = Analysis.Lint.check prog in
  Alcotest.(check bool) "flagged" true
    (List.mem Analysis.Lint.Reachability (rules_of issues));
  Alcotest.(check bool) "verifier agrees" false (Verifier.is_valid prog)

(* ----- the raising form and the pipeline flag ----- *)

let test_run_raises () =
  let prog =
    Parser.parse
      "func @main(%r0) {\n\
       entry:\n\
      \  %r1 = add %r0, 1    ; #0\n\
      \  %r2 = add %r2, 1    ; #1\n\
      \  ret %r1\n\
       }\n"
  in
  (* Self-referential %r2 passes the structural verifier (a def exists)
     but cannot be dominated by itself. *)
  match Analysis.Lint.run prog with
  | () -> Alcotest.fail "expected Lint.Error"
  | exception Analysis.Lint.Error issues ->
    Alcotest.(check bool) "nonempty" true (issues <> [])

(* ----- property: every pipeline configuration is lint-clean ----- *)

let lint_configurations =
  [ ("baseline", fun w -> Softft.protect ~lint:true w Softft.Original);
    ("full-dup", fun w -> Softft.protect ~lint:true w Softft.Full_dup);
    ("selective", fun w -> Softft.protect ~lint:true w Softft.Dup_only);
    ("selective+opt1+opt2",
     fun w -> Softft.protect ~lint:true w Softft.Dup_valchk);
    ("selective-no-opt1",
     fun w -> Softft.protect ~lint:true ~opt1:false w Softft.Dup_valchk);
    ("selective-no-opt2",
     fun w -> Softft.protect ~lint:true ~opt2:false w Softft.Dup_valchk);
    ("cfc", fun w -> Softft.protect ~lint:true w Softft.Cfc_only);
    ("selective+cfc",
     fun w -> Softft.protect ~lint:true w Softft.Dup_valchk_cfc) ]

let test_all_workloads_lint_clean () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (config, protect) ->
          match protect w with
          | (_ : Softft.protected) -> ()
          | exception Analysis.Lint.Error issues ->
            Alcotest.failf "%s under %s: %a" w.name config
              (Format.pp_print_list Analysis.Lint.pp_issue)
              issues)
        lint_configurations)
    Workloads.Registry.all

let tests =
  [ Alcotest.test_case "dominance: cross-branch use" `Quick
      test_dominance_violation;
    Alcotest.test_case "dominance: clean diamond" `Quick
      test_dominance_clean_diamond;
    Alcotest.test_case "dominance: phi edge" `Quick
      test_dominance_phi_edge_violation;
    Alcotest.test_case "separation: shadow into original" `Quick
      test_separation_violation;
    Alcotest.test_case "separation: shadow into terminator" `Quick
      test_separation_terminator_violation;
    Alcotest.test_case "chain: orphan shadow" `Quick
      test_chain_coverage_orphan_shadow;
    Alcotest.test_case "chain: unguarded escape" `Quick
      test_chain_coverage_unguarded_escape;
    Alcotest.test_case "chain: missing latch check" `Quick
      test_chain_coverage_missing_latch_check;
    Alcotest.test_case "check shape: malformed constants" `Quick
      test_check_shape_violations;
    Alcotest.test_case "check shape: profile consistency" `Quick
      test_check_shape_profile_consistency;
    Alcotest.test_case "reachability: stranded block" `Quick
      test_reachability_violation;
    Alcotest.test_case "run: raises on issues" `Quick test_run_raises;
    Alcotest.test_case "all workloads x configs lint-clean" `Slow
      test_all_workloads_lint_clean;
  ]
