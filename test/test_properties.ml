(** Property-based tests over randomly generated IR programs: the
    protection passes must keep any well-formed program verified and
    fault-free-semantics-identical. *)

open Ir

(* Generate a random loop program: a counted loop carrying [n_carried]
   integer accumulators updated by random side-effect-free expressions over
   the carried values, the index and a memory table. *)
let random_program rng =
  let n_carried = 1 + Rng.int rng 3 in
  let iters = 10 + Rng.int rng 60 in
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let table = Builder.alloc b (Builder.imm 16) in
  Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 16)
    ~body:(fun ~i ->
      Builder.seti b table i (Builder.mul b i (Builder.imm (1 + Rng.int rng 9))));
  let init = List.init n_carried (fun k -> Builder.imm (Rng.int rng 100 - 50 + k)) in
  let rec random_expr b rng depth ~i ~carried =
    if depth = 0 || Rng.int rng 3 = 0 then begin
      match Rng.int rng 4 with
      | 0 -> i
      | 1 -> Builder.imm (Rng.int rng 64)
      | 2 -> List.nth carried (Rng.int rng (List.length carried))
      | _ ->
        let idx = Builder.and_ b i (Builder.imm 15) in
        Builder.geti b table idx
    end
    else begin
      let x = random_expr b rng (depth - 1) ~i ~carried in
      let y = random_expr b rng (depth - 1) ~i ~carried in
      let op =
        match Rng.int rng 6 with
        | 0 -> Opcode.Add
        | 1 -> Opcode.Sub
        | 2 -> Opcode.Mul
        | 3 -> Opcode.And
        | 4 -> Opcode.Or
        | _ -> Opcode.Xor
      in
      Builder.binop b op x y
    end
  in
  let finals =
    Builder.for_up b ~from:(Builder.imm 0) ~until:(Builder.imm iters)
      ~carried:init
      ~body:(fun ~i regs ->
        let carried = List.map (fun r -> Instr.Reg r) regs in
        List.map
          (fun _ -> random_expr b rng (1 + Rng.int rng 3) ~i ~carried)
          regs)
      ()
  in
  let result =
    List.fold_left
      (fun acc r -> Builder.xor b acc (Instr.Reg r))
      (Builder.imm 0) finals
  in
  Builder.ret b result;
  Builder.finish b;
  prog

let run_result prog =
  let mem = Interp.Memory.create () in
  match (Interp.Machine.run prog ~entry:"main" ~args:[] ~mem).stop with
  | Interp.Machine.Finished (Some v) -> Value.to_int64 v
  | stop ->
    Alcotest.failf "random program did not finish: %a" Interp.Machine.pp_stop
      stop

(* Two structurally identical builds from the same seed: transforms mutate
   in place, so each check builds its own copies. *)
let with_pair seed f =
  let rng1 = Rng.create seed and rng2 = Rng.create seed in
  f (random_program rng1) (random_program rng2)

let prop_generated_programs_verify =
  QCheck.Test.make ~name:"random programs verify" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = random_program (Rng.create seed) in
      Verifier.is_valid prog)

let prop_dup_preserves =
  QCheck.Test.make ~name:"duplication preserves random-program semantics"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_pair seed (fun original transformed ->
        let expected = run_result original in
        let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
          Transform.Duplicate.run transformed
        in
        Verifier.is_valid transformed && run_result transformed = expected))

let prop_full_dup_preserves =
  QCheck.Test.make
    ~name:"full duplication preserves random-program semantics" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_pair seed (fun original transformed ->
        let expected = run_result original in
        let (_ : Transform.Full_dup.stats) = Transform.Full_dup.run transformed in
        Verifier.is_valid transformed && run_result transformed = expected))

let prop_dup_valchk_preserves =
  QCheck.Test.make
    ~name:"dup+value checks preserve random-program semantics" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_pair seed (fun original transformed ->
        let expected = run_result original in
        let mem = Interp.Memory.create () in
        let profile_data, (_ : Interp.Machine.result) =
          Profiling.Value_profile.collect transformed ~entry:"main" ~args:[]
            ~mem
        in
        let profile uid = Profiling.Value_profile.check_kind profile_data uid in
        let (_ : Transform.Pipeline.stats) =
          Transform.Pipeline.protect ~profile transformed
            Transform.Pipeline.Dup_valchk
        in
        Verifier.is_valid transformed && run_result transformed = expected))

let prop_transform_only_grows =
  QCheck.Test.make ~name:"transforms never remove instructions" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_pair seed (fun original transformed ->
        let before = Prog.instr_count original in
        let (_ : Transform.Duplicate.stats), (_ : (int, unit) Hashtbl.t) =
          Transform.Duplicate.run transformed
        in
        Prog.instr_count transformed >= before))

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip preserves behaviour"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = random_program (Rng.create seed) in
      let expected = run_result prog in
      let text = Printer.prog_to_string prog in
      let reparsed = Parser.parse text in
      Printer.prog_to_string reparsed = text && run_result reparsed = expected)

let prop_flip_bit_changes_exactly_one_bit =
  QCheck.Test.make ~name:"bit flip changes exactly one payload bit" ~count:200
    QCheck.(pair int64 (int_range 0 63))
    (fun (payload, bit) ->
      let v = Value.Int payload in
      let flipped = Value.flip_bit v bit in
      let diff = Int64.logxor (Value.bits v) (Value.bits flipped) in
      diff = Int64.shift_left 1L bit)

(* Snapshot forking must be unobservable on arbitrary programs, not just
   the curated workloads: campaigns over random loop programs produce
   bit-identical trial lists with forking on and off, across random
   checkpoint/taint configurations and stride choices (including strides
   past the end of the run, which degrade to from-scratch trials). *)
let prop_fork_preserves_campaign =
  QCheck.Test.make ~name:"snapshot forking preserves campaign results"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = random_program (Rng.create seed) in
      let subject =
        {
          Faults.Campaign.label = "random";
          prog;
          entry = "main";
          fresh_state =
            (fun () ->
              {
                Faults.Campaign.mem = Interp.Memory.create ();
                args = [];
                read_output =
                  (function
                  | Some v -> [| Value.to_real v |]
                  | None -> [| nan |]);
              });
          metric = Fidelity.Metric.mismatch_spec 0.0;
        }
      in
      let checkpoint_interval = if seed mod 2 = 0 then 0 else 50 + (seed mod 200) in
      let taint_trace = seed mod 3 = 0 in
      let fork_stride = if seed mod 5 = 0 then Some (1 + (seed mod 4000)) else None in
      let run fork =
        Faults.Campaign.run subject ~trials:8 ~seed:(seed land 0xFFFF) ~fork
          ?fork_stride ~checkpoint_interval ~taint_trace
      in
      let s_on, t_on = run true in
      let s_off, t_off = run false in
      s_on.Faults.Campaign.counts = s_off.Faults.Campaign.counts
      && Faults.Campaign.trials_equal t_on t_off)

(* ----- Adaptive stratified estimation (DESIGN.md §14) ----- *)

(* Census identity: stratify a synthetic finite population by anything at
   all, observe each stratum exhaustively, and the mass-reweighted rate
   must equal the plain pooled rate a uniform census would report — the
   unbiasedness that makes per-stratum sampling legitimate. *)
let prop_stratified_census_matches_uniform =
  QCheck.Test.make
    ~name:"stratified reweighting reproduces the uniform rate" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (pair (int_range 1 50) (int_range 0 50)))
    (fun strata ->
      let strata = List.map (fun (n, k) -> (n, min k n)) strata in
      let total = List.fold_left (fun acc (n, _) -> acc + n) 0 strata in
      let sdc = List.fold_left (fun acc (_, k) -> acc + k) 0 strata in
      let obs =
        List.map
          (fun (n, k) ->
            { Obs.Stats.so_mass = float_of_int n /. float_of_int total;
              so_k = k; so_n = n })
          strata
      in
      let combined = Obs.Stats.stratified obs in
      let uniform = float_of_int sdc /. float_of_int total in
      Float.abs (combined.Obs.Stats.ci_estimate -. uniform) < 1e-9)

(* The early-stopping lemma: masses summing to <= 1 and every per-stratum
   Wilson half width at or under tau bound the combined (quadrature) half
   width by tau — so stopping each stratum at the target can never leave
   the whole-program interval wider than the target. *)
let prop_early_stop_never_widens =
  QCheck.Test.make
    ~name:"per-stratum convergence bounds the combined width" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (int_range 1 20) (int_range 1 400) (int_range 0 400)))
    (fun raw ->
      let weight_total =
        float_of_int
          (max 1 (List.fold_left (fun acc (w, _, _) -> acc + w) 0 raw))
      in
      let obs =
        List.map
          (fun (w, n, k) ->
            { Obs.Stats.so_mass = float_of_int w /. weight_total;
              so_k = min k n; so_n = n })
          raw
      in
      let tau =
        List.fold_left
          (fun acc (o : Obs.Stats.stratum_obs) ->
            let iv = Obs.Stats.wilson ~k:o.so_k ~n:o.so_n () in
            Float.max acc (Obs.Stats.width iv /. 2.0))
          0.0 obs
      in
      let combined = Obs.Stats.stratified obs in
      Obs.Stats.width combined /. 2.0 <= tau +. 1e-9)

(* Random ring-occupancy curves: [cum.(g).(t)] non-decreasing from 0,
   per-step increments across groups summing to at most 1. *)
let random_cum rng ~ngroups ~t_max =
  let cum = Array.make_matrix ngroups (t_max + 1) 0.0 in
  for t = 1 to t_max do
    for g = 0 to ngroups - 1 do
      (* Raw increment in [0, 1/ngroups]: group shares of one step's ring
         can never exceed the step's whole weight.  Zeroes are common, so
         empty bands and wholly absent groups get exercised. *)
      let inc =
        float_of_int (Rng.int rng 10) /. (9.0 *. float_of_int ngroups)
      in
      cum.(g).(t) <- cum.(g).(t - 1) +. inc
    done
  done;
  cum

let prop_build_strata_masses_partition =
  QCheck.Test.make
    ~name:"strata masses and the empty share partition the space"
    ~count:300
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 5))
    (fun (seed, bands) ->
      let rng = Rng.create seed in
      let ngroups = 1 + Rng.int rng 3 in
      let t_max = 1 + Rng.int rng 40 in
      let cum = random_cum rng ~ngroups ~t_max in
      let plan =
        Faults.Campaign.build_strata ~groups:(Array.make 8 0)
          ~group_names:(Array.init ngroups string_of_int)
          ~priors:(Array.make ngroups 0.5) ~bands ~window:t_max cum
      in
      let mass_sum =
        Array.fold_left
          (fun acc (s : Faults.Campaign.stratum) -> acc +. s.st_mass)
          plan.Faults.Campaign.sp_mass_empty plan.sp_strata
      in
      Float.abs (mass_sum -. 1.0) < 1e-9
      && Array.for_all
           (fun (s : Faults.Campaign.stratum) ->
             s.st_mass > 0.0 && s.st_lo >= 1 && s.st_lo < s.st_hi
             && s.st_hi <= t_max + 1)
           plan.sp_strata)

let prop_sample_at_step_stays_in_stratum =
  QCheck.Test.make
    ~name:"stratified step draws land inside the stratum, on occupied steps"
    ~count:300
    QCheck.(pair (int_range 0 1_000_000) (float_range 0.0 0.9999))
    (fun (seed, u) ->
      let rng = Rng.create seed in
      let ngroups = 1 + Rng.int rng 3 in
      let t_max = 1 + Rng.int rng 40 in
      let cum = random_cum rng ~ngroups ~t_max in
      let plan =
        Faults.Campaign.build_strata ~groups:(Array.make 8 0)
          ~group_names:(Array.init ngroups string_of_int)
          ~priors:(Array.make ngroups 0.5) ~bands:(1 + Rng.int rng 4)
          ~window:t_max cum
      in
      Array.for_all
        (fun (s : Faults.Campaign.stratum) ->
          let t = Faults.Campaign.sample_at_step plan s ~u in
          t >= s.st_lo && t < s.st_hi
          (* The chosen step carries ring weight for the group: a stratum
             never injects into a step where its group is absent. *)
          && cum.(s.st_group).(t) > cum.(s.st_group).(t - 1))
        plan.Faults.Campaign.sp_strata)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generated_programs_verify;
      prop_dup_preserves;
      prop_full_dup_preserves;
      prop_dup_valchk_preserves;
      prop_transform_only_grows;
      prop_parser_roundtrip;
      prop_flip_bit_changes_exactly_one_bit;
      prop_fork_preserves_campaign;
      prop_stratified_census_matches_uniform;
      prop_early_stop_never_widens;
      prop_build_strata_masses_partition;
      prop_sample_at_step_stays_in_stratum;
    ]
