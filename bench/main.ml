(** Benchmark and reproduction harness.

    Two halves:
    - Bechamel micro-benchmarks, one per paper table/figure, timing the
      computational core that experiment exercises (transform passes,
      golden runs, injection trials, classification);
    - the reproduction harness proper, which re-runs the paper's
      experiments and prints every table and figure (see DESIGN.md §4).

    Usage:
      bench/main.exe                 micro-benchmarks + all tables (default trials)
      bench/main.exe all             all tables only
      bench/main.exe fig2|fig10|fig11|fig12|fig13|table1|table2|crossval|falsepos
      bench/main.exe micro           micro-benchmarks only
      bench/main.exe campaign-perf   campaign throughput, serial vs. parallel
                                     (writes BENCH_campaign.json)
      bench/main.exe taint           campaign throughput, tracing off vs. on
                                     (verifies outcomes are bit-identical)
      options: --trials N  --seed N  --benchmarks a,b,c  --domains N  --quick
               --trace-timeline FILE  (campaign-perf: flight-recorder
                                       Chrome-trace timeline)
               --warehouse DIR  (also file BENCH_campaign.json into the
                                 campaign warehouse, for
                                 `bench-diff latest:DIR`) *)

let default_trials = ref 120
let seed = ref 0xC0FFEE
let selected_benchmarks : string list option ref = ref None
let domains = ref (Faults.Pool.recommended_domains ())
let trace_timeline : string option ref = ref None
let warehouse_dir : string option ref = ref None

(* With --warehouse, every BENCH_campaign.json this harness writes is also
   filed as a warehouse bench snapshot, so bench-diff's baseline can be
   named latest:<dir> instead of a copied file. *)
let file_bench path =
  match !warehouse_dir with
  | None -> ()
  | Some dir ->
    (match Warehouse.Store.ingest_bench ~dir path with
     | `Ingested rel -> Printf.printf "warehouse: filed %s\n" rel
     | `Duplicate rel -> Printf.printf "warehouse: duplicate %s\n" rel)

let log =
  lazy (Obs.Log.make ~sinks:[ Obs.Log.stderr_sink () ] "bench")

let workloads () =
  match !selected_benchmarks with
  | None -> Workloads.Registry.all
  | Some names -> List.map Workloads.Registry.find names

(* ----- Bechamel micro-benchmarks ----- *)

let stage = Bechamel.Staged.stage

let micro_tests () =
  let open Bechamel in
  let w = Workloads.Registry.find "g721enc" in
  let original = Softft.protect w Softft.Original in
  let protected_ = Softft.protect w Softft.Dup_valchk in
  let golden = Softft.golden protected_ ~role:Workloads.Workload.Test in
  let disabled = Hashtbl.create 4 in
  [ (* Figure 2 / 11 / 13 all stand on single-trial fault injections. *)
    Test.make ~name:"fig2_injection_trial_original"
      (stage (fun () ->
         Faults.Campaign.run_trial
           (Softft.subject original ~role:Workloads.Workload.Test)
           ~golden ~disabled ~hw_window:1000 ~seed:42));
    Test.make ~name:"fig11_injection_trial_protected"
      (stage (fun () ->
         Faults.Campaign.run_trial
           (Softft.subject protected_ ~role:Workloads.Workload.Test)
           ~golden ~disabled ~hw_window:1000 ~seed:42));
    Test.make ~name:"fig13_outcome_classification"
      (stage (fun () ->
         Faults.Classify.classify ~hw_window:1000
           ~result:
             { Interp.Machine.stop = Interp.Machine.Finished None; steps = 100;
               cycles = 100; valchk_failures = 0; failed_check_uids = [];
               injection = None; recovered = None; rollback_denied = false;
               checkpoints = 0; taint = None }
           ~identical:(fun () -> false)
           ~acceptable:(fun () -> true)));
    (* Figure 10: the static transformation itself. *)
    Test.make ~name:"fig10_protect_dup_valchk"
      (stage (fun () -> Softft.protect w Softft.Dup_valchk));
    (* Figure 12: simulated execution (the overhead measurement primitive). *)
    Test.make ~name:"fig12_golden_run_protected"
      (stage (fun () -> Softft.golden protected_ ~role:Workloads.Workload.Test));
    (* Table I: building a workload program. *)
    Test.make ~name:"table1_build_workload" (stage (fun () -> w.build ()));
    (* Table II: the simulated machine itself, amortized over a full run. *)
    Test.make ~name:"table2_interpreter_run"
      (stage (fun () -> Softft.golden original ~role:Workloads.Workload.Test));
    (* The offline profiling step feeding the Figure 6 check shapes. *)
    Test.make ~name:"value_profiling_run"
      (stage (fun () -> Workloads.Workload.profile w));
  ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let tests = Test.make_grouped ~name:"softft" ~fmt:"%s/%s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n== Micro-benchmarks (one per paper table/figure) ==\n";
  Printf.printf "%-50s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 66 '-');
  let rows = ref [] in
  Hashtbl.iter (fun name r -> rows := (name, r) :: !rows) results;
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        in
        Printf.printf "%-50s %15s\n" name pretty
      | Some _ | None -> Printf.printf "%-50s %15s\n" name "n/a")
    (List.sort compare !rows)

(* ----- Reproduction harness ----- *)

let evaluated = ref None

let results () =
  match !evaluated with
  | Some r -> r
  | None ->
    let r =
      Softft.Experiments.evaluate ~trials:!default_trials ~seed:!seed
        ~log:(Lazy.force log) ~domains:!domains (workloads ())
    in
    evaluated := Some r;
    r

let print_all () =
  Softft.Experiments.print_table1 ();
  Softft.Experiments.print_table2 ();
  let r = results () in
  Softft.Experiments.print_fig2 r;
  Softft.Experiments.print_fig10 r;
  Softft.Experiments.print_fig11 r;
  Softft.Experiments.print_fig12 r;
  Softft.Experiments.print_fig13 r;
  Softft.Experiments.print_falsepos r;
  Softft.Experiments.print_headline r;
  Printf.printf
    "\n(95%% confidence margin of error at %d trials/config: +-%.1f points)\n"
    !default_trials
    (100.0
     *. Softft.margin_of_error ~trials:!default_trials ~proportion:0.5)

let run_crossval () =
  let rows =
    Softft.Experiments.crossval ~trials:!default_trials ~seed:!seed
      ~domains:!domains ()
  in
  Softft.Experiments.print_crossval rows

(* ----- Campaign throughput: trials/sec, serial vs. domain-parallel -----

   The perf trajectory future PRs regress against: per workload, time the
   same fixed-seed campaign at [~domains:1] and at the requested domain
   count, check the two runs agree bit-for-bit, and persist both
   throughputs to BENCH_campaign.json. *)

let campaign_perf_workloads () =
  match !selected_benchmarks with
  | Some names -> List.map Workloads.Registry.find names
  | None ->
    List.map Workloads.Registry.find [ "jpegdec"; "g721enc"; "kmeans" ]

(* One sweep point: the same fixed-seed campaign at a given domain count
   (forking on), checked bit-for-bit against the serial reference. *)
type perf_point = {
  pp_domains : int;
  pp_wall : float;
  pp_stats : Faults.Campaign.run_stats option;
  pp_identical : bool;
}

type perf_row = {
  pr_name : string;
  pr_steps : int;
  pr_nofork_wall : float;      (** serial, golden-prefix forking disabled *)
  pr_nofork_stats : Faults.Campaign.run_stats option;
  pr_points : perf_point list; (** forking on, one per sweep domain count *)
  pr_identical : bool;         (** every configuration above agreed bit-exactly *)
}

(* The parallel-phase seconds of a run — what domain scaling actually
   divides (golden run and snapshot capture are inherently serial). *)
let trial_phase wall = function
  | Some (s : Faults.Campaign.run_stats) -> s.trials_sec
  | None -> wall

let run_campaign_perf () =
  let log = Lazy.force log in
  let trials = !default_trials in
  let sweep = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        Obs.Log.info log
          ~fields:
            [ ("workload", Obs.Json.Str w.name);
              ("trials", Obs.Json.Int trials) ]
          "campaign-perf run";
        let p = Softft.protect w Softft.Dup_valchk in
        let subject = Softft.subject p ~role:Workloads.Workload.Test in
        (* Warm the compile cache and the golden run outside the timing. *)
        let golden = Faults.Campaign.golden_run subject in
        (* Best of two timed repetitions (by trial-phase seconds, the
           quantity the speedups compare): campaigns are deterministic, so
           the repetitions produce identical results and the minimum is
           the run least disturbed by scheduler noise. *)
        let timed ?(fork = true) domains =
          let once () =
            let stats = ref None in
            let t0 = Unix.gettimeofday () in
            let summary, trial_list =
              Faults.Campaign.run ~seed:!seed ~domains ~fork ~stats_out:stats
                subject ~trials
            in
            (Unix.gettimeofday () -. t0, summary, trial_list, !stats)
          in
          let ((w1, _, _, s1) as r1) = once () in
          let ((w2, _, _, s2) as r2) = once () in
          if trial_phase w1 s1 <= trial_phase w2 s2 then r1 else r2
        in
        (* The bit-exactness reference: serial, forking on. *)
        let ref_wall, ref_summary, ref_trials, ref_stats = timed 1 in
        let nofork_wall, _, nofork_trials, nofork_stats =
          timed ~fork:false 1
        in
        let nofork_ok =
          Faults.Campaign.trials_equal ref_trials nofork_trials
        in
        if not nofork_ok then
          Obs.Log.warn log
            ~fields:[ ("workload", Obs.Json.Str w.name) ]
            "forked run diverged from from-scratch run";
        let points =
          List.map
            (fun d ->
              if d = 1 then
                { pp_domains = 1; pp_wall = ref_wall; pp_stats = ref_stats;
                  pp_identical = true }
              else begin
                let wall, summary, trial_list, stats = timed d in
                let same =
                  summary.Faults.Campaign.counts
                    = ref_summary.Faults.Campaign.counts
                  && Faults.Campaign.trials_equal ref_trials trial_list
                in
                if not same then
                  Obs.Log.warn log
                    ~fields:
                      [ ("workload", Obs.Json.Str w.name);
                        ("domains", Obs.Json.Int d) ]
                    "parallel run diverged from serial";
                { pp_domains = d; pp_wall = wall; pp_stats = stats;
                  pp_identical = same }
              end)
            sweep
        in
        { pr_name = w.name; pr_steps = golden.Faults.Campaign.steps;
          pr_nofork_wall = nofork_wall; pr_nofork_stats = nofork_stats;
          pr_points = points;
          pr_identical =
            nofork_ok && List.for_all (fun p -> p.pp_identical) points })
      (campaign_perf_workloads ())
  in
  let per_sec sec = float_of_int trials /. max 1e-9 sec in
  Printf.printf
    "\n== Campaign throughput (%d trials/campaign, domain sweep %s) ==\n"
    trials
    (String.concat "/" (List.map string_of_int sweep));
  Printf.printf "%-12s %12s %13s %13s %8s %8s %6s\n" "workload"
    "golden steps" "no-fork tr/s" "fork tr/s" "fork-x" "par-x" "same?";
  Printf.printf "%s\n" (String.make 78 '-');
  let phase_of r d =
    let p = List.find (fun p -> p.pp_domains = d) r.pr_points in
    trial_phase p.pp_wall p.pp_stats
  in
  List.iter
    (fun r ->
      let nofork_phase = trial_phase r.pr_nofork_wall r.pr_nofork_stats in
      let serial_phase = phase_of r 1 in
      let par_phase = phase_of r 2 in
      Printf.printf "%-12s %12d %13.1f %13.1f %7.2fx %7.2fx %6s\n" r.pr_name
        r.pr_steps (per_sec nofork_phase) (per_sec serial_phase)
        (nofork_phase /. max 1e-9 serial_phase)
        (serial_phase /. max 1e-9 par_phase)
        (if r.pr_identical then "yes" else "NO"))
    rows;
  let opt_field name f = function None -> [] | Some v -> [ (name, f v) ] in
  (* Schema v3 (supersedes v2): per workload, a from-scratch (no-fork)
     serial baseline plus a domain sweep with forking on.  [fork_speedup]
     and [parallel_speedup] compare parallel-phase seconds; the wall and
     phase timings of every configuration are preserved under "timings".
     "parallel_speedup" and "bit_identical" keep their v2 meaning (2
     domains vs. serial) so trend tooling and the CI gate read one key. *)
  let json =
    Obs.Json.Obj
      [ ("schema", Obs.Json.Str "softft.bench_campaign.v3");
        ("trials", Obs.Json.Int trials);
        ("seed", Obs.Json.Int !seed);
        ("host_cores", Obs.Json.Int (Faults.Pool.recommended_domains ()));
        ("technique", Obs.Json.Str "dup_valchk");
        ("workloads",
         Obs.Json.List
           (List.map
              (fun r ->
                let nofork_phase =
                  trial_phase r.pr_nofork_wall r.pr_nofork_stats
                in
                let serial_phase = phase_of r 1 in
                let par_phase = phase_of r 2 in
                Obs.Json.Obj
                  ([ ("name", Obs.Json.Str r.pr_name);
                     ("golden_steps", Obs.Json.Int r.pr_steps);
                     ("nofork_sec", Obs.Json.Float nofork_phase);
                     ("nofork_trials_per_sec",
                      Obs.Json.Float (per_sec nofork_phase));
                     ("serial_sec", Obs.Json.Float serial_phase);
                     ("serial_trials_per_sec",
                      Obs.Json.Float (per_sec serial_phase));
                     ("fork_speedup",
                      Obs.Json.Float (nofork_phase /. max 1e-9 serial_phase));
                     ("parallel_sec", Obs.Json.Float par_phase);
                     ("parallel_trials_per_sec",
                      Obs.Json.Float (per_sec par_phase));
                     ("parallel_speedup",
                      Obs.Json.Float (serial_phase /. max 1e-9 par_phase));
                     ("bit_identical", Obs.Json.Bool r.pr_identical) ]
                   @ opt_field "nofork" Faults.Journal.stats_json
                       r.pr_nofork_stats
                   @ [ ("domains",
                        Obs.Json.List
                          (List.map
                             (fun p ->
                               let phase =
                                 trial_phase p.pp_wall p.pp_stats
                               in
                               Obs.Json.Obj
                                 ([ ("domains", Obs.Json.Int p.pp_domains);
                                    ("wall_sec", Obs.Json.Float p.pp_wall);
                                    ("trials_sec", Obs.Json.Float phase);
                                    ("trials_per_sec",
                                     Obs.Json.Float (per_sec phase));
                                    ("speedup",
                                     Obs.Json.Float
                                       (serial_phase /. max 1e-9 phase));
                                    ("bit_identical",
                                     Obs.Json.Bool p.pp_identical) ]
                                  @ opt_field "timings"
                                      Faults.Journal.stats_json p.pp_stats))
                             r.pr_points)) ]))
              rows)) ]
  in
  let path = "BENCH_campaign.json" in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path;
  file_bench path;
  (* One extra (untimed) campaign per workload with the flight recorder
     attached — kept out of the timed repetitions above so the published
     throughputs never carry the recorder's (tiny) cost. *)
  match !trace_timeline with
  | None -> ()
  | Some tpath ->
    let r = Obs.Trace.recorder () in
    let d = min 4 (Faults.Pool.recommended_domains ()) in
    List.iter
      (fun (w : Workloads.Workload.t) ->
        let p = Softft.protect w Softft.Dup_valchk in
        let subject = Softft.subject p ~role:Workloads.Workload.Test in
        ignore
          (Faults.Campaign.run ~seed:!seed ~domains:d ~trace:r subject
             ~trials))
      (campaign_perf_workloads ());
    Obs.Trace.write_chrome r ~path:tpath;
    Printf.printf "wrote %s\n" tpath

(* ----- Adaptive-campaign bench: trials to a target SDC half-width -----

   Per workload, one adaptive stratified campaign (DESIGN.md §14) against
   the dup+valchk variant: how many trials it needed, versus the
   fixed-size uniform design guaranteeing the same target (the savings
   headline) and the oracle sequential-uniform lower bound — plus a
   serial-vs-parallel bit-identity check, the same determinism contract
   campaign-perf enforces.  Results merge into BENCH_campaign.json under
   an "adaptive" key, so one artifact carries both perf trajectories. *)
let run_adaptive_bench () =
  (* --quick keeps CI minutes-scale: a looser target converges in a few
     pilot rounds while still exercising every scheduler phase. *)
  let ci = if !default_trials <= 40 then 0.05 else 0.01 in
  let dom = max 2 !domains in
  let names =
    match !selected_benchmarks with
    | Some names -> names
    | None -> [ "kmeans"; "jpegdec" ]
  in
  Printf.printf
    "\n== Adaptive stratified campaigns (target SDC half-width %.3f) ==\n"
    ci;
  Printf.printf "%-12s %7s %8s %8s %8s %7s %6s\n" "workload" "strata"
    "trials" "planned" "oracle" "saved" "same?";
  Printf.printf "%s\n" (String.make 64 '-');
  let rows =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        let p = Softft.protect w Softft.Dup_valchk in
        let cov = Analysis.Coverage.analyze p.Softft.prog in
        let groups = Analysis.Strata.reg_groups p.Softft.prog cov in
        let priors = Analysis.Strata.priors cov in
        let subject = Softft.subject p ~role:Workloads.Workload.Test in
        let run d =
          let t0 = Unix.gettimeofday () in
          let _, trial_list, ad =
            Faults.Campaign.run_adaptive ~seed:!seed ~domains:d ~groups
              ~group_names:Analysis.Strata.group_names ~priors ~ci subject
          in
          (Unix.gettimeofday () -. t0, trial_list, ad)
        in
        let wall, trials1, ad = run 1 in
        let _, trials_n, _ = run dom in
        let same = Faults.Campaign.trials_equal trials1 trials_n in
        let saved =
          float_of_int ad.Faults.Campaign.ad_equiv_uniform
          /. float_of_int (max 1 ad.ad_trials)
        in
        Printf.printf "%-12s %7d %8d %8d %8d %6.1fx %6s\n" w.name
          (Array.length ad.ad_strata)
          ad.ad_trials ad.ad_equiv_uniform ad.ad_oracle_uniform saved
          (if same then "yes" else "NO");
        (w.name, wall, ad, same))
      names
  in
  let adaptive_json =
    Obs.Json.Obj
      [ ("ci_target", Obs.Json.Float ci);
        ("seed", Obs.Json.Int !seed);
        ("technique", Obs.Json.Str "dup_valchk");
        ("workloads",
         Obs.Json.List
           (List.map
              (fun (name, wall, (ad : Faults.Campaign.adaptive), same) ->
                Obs.Json.Obj
                  [ ("name", Obs.Json.Str name);
                    ("strata", Obs.Json.Int (Array.length ad.ad_strata));
                    ("trials", Obs.Json.Int ad.ad_trials);
                    ("planned_uniform_trials",
                     Obs.Json.Int ad.ad_equiv_uniform);
                    ("oracle_uniform_trials",
                     Obs.Json.Int ad.ad_oracle_uniform);
                    ("trials_saved_factor",
                     Obs.Json.Float
                       (float_of_int ad.ad_equiv_uniform
                        /. float_of_int (max 1 ad.ad_trials)));
                    ("sdc", Obs.Stats.to_json ad.ad_sdc);
                    ("wall_sec", Obs.Json.Float wall);
                    ("bit_identical", Obs.Json.Bool same) ])
              rows)) ]
  in
  let path = "BENCH_campaign.json" in
  (* Merge, don't clobber: campaign-perf owns the file's top-level perf
     fields; the adaptive section rides along under its own key. *)
  let base =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Obs.Json.parse s with
      | Obs.Json.Obj fields ->
        List.filter (fun (k, _) -> k <> "adaptive") fields
      | _ | (exception Obs.Json.Parse_error _) -> []
    end
    else []
  in
  let json = Obs.Json.Obj (base @ [ ("adaptive", adaptive_json) ]) in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (adaptive section)\n" path;
  file_bench path

(* ----- Plan-optimizer bench: predicted vs measured at the knee -----

   Per workload, one Pareto search over the protection-plan space
   (DESIGN.md §16) under a 15% overhead budget, then adaptive validation
   of the frontier's knee points — the static predictor's SDC ranking
   against the measured stratified estimates, the §11 cross-check run at
   bench cadence.  Results merge into BENCH_campaign.json under an
   "optimize" key, next to campaign-perf's and adaptive's sections. *)
let run_optimize_bench () =
  let ci = if !default_trials <= 40 then 0.08 else 0.05 in
  let budget = 0.15 in
  let names =
    match !selected_benchmarks with
    | Some names -> names
    | None -> [ "kmeans"; "jpegdec" ]
  in
  Printf.printf
    "\n== Plan optimizer: predicted vs measured at the knee (budget \
     %.0f%%, half-width %.2f) ==\n"
    (100.0 *. budget) ci;
  Printf.printf "%-10s %-24s %9s %9s %9s %9s %7s\n" "workload" "plan"
    "pred.SDC" "meas.SDC" "pred.ovh" "meas.ovh" "trials";
  Printf.printf "%s\n" (String.make 82 '-');
  let rows =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        let prog = w.build () in
        let vp = Workloads.Workload.profile ~prog w in
        let profile uid = Profiling.Value_profile.check_kind vp uid in
        let exec_counts =
          let prof = Interp.Profile.create () in
          let orig = Softft.protect w Softft.Original in
          let (_ : Faults.Campaign.golden) =
            Softft.golden ~profile:prof orig ~role:Workloads.Workload.Train
          in
          Interp.Profile.func_block_counts prof
        in
        let fr =
          Softft.Optimize.search ~beam:2 ~budget ~exec_counts ~profile prog
        in
        let knees = Softft.Optimize.knee_points ~n:2 fr.fr_points in
        let vals =
          Softft.Optimize.validate ~seed:!seed ~domains:!domains ~ci w knees
        in
        List.iter
          (fun (v : Softft.Optimize.validation) ->
            Printf.printf "%-10s %-24s %9.4f %9.4f %8.1f%% %8.1f%% %7d\n"
              w.name v.vl_point.op_label
              (Softft.Optimize.sdc v.vl_point)
              v.vl_measured_sdc.Obs.Stats.ci_estimate
              (100.0 *. Softft.Optimize.overhead v.vl_point)
              (100.0 *. v.vl_measured_overhead)
              v.vl_trials)
          vals;
        let concordant = Softft.Optimize.rank_order_agrees vals in
        Printf.printf "%-10s rank order %s, %d plans explored, %d \
                       dominated fixed pipeline(s)\n"
          w.name
          (if concordant then "concordant" else "DISCORDANT")
          fr.Softft.Optimize.fr_explored
          (List.length fr.Softft.Optimize.fr_dominated_fixed);
        (name, fr, vals, concordant))
      names
  in
  let optimize_json =
    Obs.Json.Obj
      [ ("budget", Obs.Json.Float budget);
        ("ci_target", Obs.Json.Float ci);
        ("seed", Obs.Json.Int !seed);
        ("workloads",
         Obs.Json.List
           (List.map
              (fun (name, (fr : Softft.Optimize.frontier), vals, concordant) ->
                Obs.Json.Obj
                  [ ("name", Obs.Json.Str name);
                    ("explored", Obs.Json.Int fr.fr_explored);
                    ("frontier_size",
                     Obs.Json.Int (List.length fr.fr_points));
                    ("dominated_fixed",
                     Obs.Json.List
                       (List.map
                          (fun (f, by) ->
                            Obs.Json.Obj
                              [ ("fixed", Obs.Json.Str f);
                                ("by", Obs.Json.Str by) ])
                          fr.fr_dominated_fixed));
                    ("rank_order_concordant", Obs.Json.Bool concordant);
                    ("knees",
                     Obs.Json.List
                       (List.map Softft.Optimize.validation_json vals)) ])
              rows)) ]
  in
  let path = "BENCH_campaign.json" in
  (* Merge, don't clobber: campaign-perf owns the file's top-level perf
     fields; the optimize section rides along under its own key. *)
  let base =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Obs.Json.parse s with
      | Obs.Json.Obj fields ->
        List.filter (fun (k, _) -> k <> "optimize") fields
      | _ | (exception Obs.Json.Parse_error _) -> []
    end
    else []
  in
  let json = Obs.Json.Obj (base @ [ ("optimize", optimize_json) ]) in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (optimize section)\n" path;
  file_bench path

(* Tracing-overhead bench: the same campaign with the propagation tracer
   off and on.  Verifies the observation-only contract (identical outcomes,
   steps and cycles) and reports what the shadow state costs — the tracer
   is opt-in, so this cost is paid only by `--taint` campaigns, but it
   should still stay within a small factor. *)
let run_taint_bench () =
  let trials = !default_trials in
  let dom = !domains in
  Printf.printf
    "\n== Propagation-tracing overhead (%d trials/campaign, %d domains) ==\n"
    trials dom;
  Printf.printf "%-12s %14s %14s %9s %6s\n" "workload" "plain tr/s"
    "traced tr/s" "slowdown" "same?";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let p = Softft.protect w Softft.Dup_valchk in
      let subject = Softft.subject p ~role:Workloads.Workload.Test in
      ignore (Faults.Campaign.golden_run subject);
      let timed taint_trace =
        let t0 = Unix.gettimeofday () in
        let summary, trial_list =
          Faults.Campaign.run ~seed:!seed ~domains:dom ~taint_trace subject
            ~trials
        in
        (Unix.gettimeofday () -. t0, summary, trial_list)
      in
      let plain_sec, plain_summary, plain_trials = timed false in
      let traced_sec, traced_summary, traced_trials = timed true in
      (* The traced trials differ exactly in their [taint] field; compare
         everything else bit-exactly. *)
      let strip (t : Faults.Campaign.trial) =
        { t with Faults.Campaign.taint = None }
      in
      let identical =
        plain_summary.Faults.Campaign.counts
          = traced_summary.Faults.Campaign.counts
        && Faults.Campaign.trials_equal plain_trials
             (List.map strip traced_trials)
        && List.for_all
             (fun (t : Faults.Campaign.trial) -> t.taint <> None)
             traced_trials
      in
      let per_sec sec = float_of_int trials /. max 1e-9 sec in
      Printf.printf "%-12s %14.1f %14.1f %8.2fx %6s\n" w.name
        (per_sec plain_sec) (per_sec traced_sec)
        (traced_sec /. max 1e-9 plain_sec)
        (if identical then "yes" else "NO"))
    (match !selected_benchmarks with
     | Some names -> names
     | None -> [ "jpegdec"; "kmeans" ])

let () =
  let commands = ref [] in
  let rec parse = function
    | [] -> ()
    | "--trials" :: n :: rest ->
      default_trials := int_of_string n;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | "--benchmarks" :: names :: rest ->
      selected_benchmarks := Some (String.split_on_char ',' names);
      parse rest
    | "--domains" :: n :: rest ->
      (domains :=
         match String.lowercase_ascii n with
         | "auto" -> Faults.Pool.recommended_domains ()
         | n -> max 1 (int_of_string n));
      parse rest
    | "--trace-timeline" :: path :: rest ->
      trace_timeline := Some path;
      parse rest
    | "--warehouse" :: dir :: rest ->
      warehouse_dir := Some dir;
      parse rest
    | "--quick" :: rest ->
      default_trials := 40;
      selected_benchmarks := Some [ "jpegdec"; "g721enc"; "kmeans" ];
      parse rest
    | cmd :: rest ->
      commands := cmd :: !commands;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let run_command = function
    | "micro" -> run_micro ()
    | "all" -> print_all ()
    | "table1" -> Softft.Experiments.print_table1 ()
    | "table2" -> Softft.Experiments.print_table2 ()
    | "fig2" -> Softft.Experiments.print_fig2 (results ())
    | "fig10" -> Softft.Experiments.print_fig10 (results ())
    | "fig11" -> Softft.Experiments.print_fig11 (results ())
    | "fig12" -> Softft.Experiments.print_fig12 (results ())
    | "fig13" -> Softft.Experiments.print_fig13 (results ())
    | "falsepos" -> Softft.Experiments.print_falsepos (results ())
    | "headline" -> Softft.Experiments.print_headline (results ())
    | "crossval" -> run_crossval ()
    | "campaign-perf" -> run_campaign_perf ()
    | "adaptive" -> run_adaptive_bench ()
    | "optimize" -> run_optimize_bench ()
    | "taint" -> run_taint_bench ()
    | "ablation" ->
      List.iter
        (fun name ->
          let w = Workloads.Registry.find name in
          let rows =
            Softft.Experiments.ablation ~trials:!default_trials ~seed:!seed
              ~domains:!domains w
          in
          Softft.Experiments.print_ablation w rows)
        (match !selected_benchmarks with
         | Some names -> names
         | None -> [ "jpegdec"; "g721enc" ])
    | "sources" ->
      let rows =
        Softft.Experiments.detection_sources ~trials:!default_trials
          ~seed:!seed ~domains:!domains (workloads ())
      in
      Softft.Experiments.print_detection_sources rows
    | "csv" ->
      print_string (Softft.Experiments.to_csv (results ()))
    | "branchfault" ->
      let rows =
        Softft.Experiments.branch_faults ~trials:!default_trials ~seed:!seed
          ~domains:!domains
          (match !selected_benchmarks with
           | Some names -> List.map Workloads.Registry.find names
           | None ->
             List.map Workloads.Registry.find [ "jpegdec"; "g721enc"; "kmeans" ])
      in
      Softft.Experiments.print_branch_faults rows
    | "latency" ->
      let rows =
        Softft.Experiments.latency ~trials:!default_trials ~seed:!seed
          ~domains:!domains (workloads ())
      in
      Softft.Experiments.print_latency rows
    | "recovery" ->
      (* Checkpoint-interval sweep: fault-free overhead vs. the fraction of
         software detections that become transparent recoveries. *)
      List.iter
        (fun name ->
          let w = Workloads.Registry.find name in
          let rows =
            Softft.Experiments.recovery ~trials:!default_trials ~seed:!seed
              ~domains:!domains w
          in
          Softft.Experiments.print_recovery w rows)
        (match !selected_benchmarks with
         | Some names -> names
         | None -> [ "jpegdec"; "kmeans" ])
    | cmd ->
      Printf.eprintf
        "unknown command %S (try: micro all fig2 fig10 fig11 fig12 fig13 \
         table1 table2 falsepos headline crossval campaign-perf adaptive \
         optimize taint ablation latency recovery branchfault sources csv)\n"
        cmd;
      exit 1
  in
  let run_extras () =
    (* The studies beyond the paper's own tables, at reduced scope so the
       default invocation stays minutes-scale. *)
    let subset names = List.map Workloads.Registry.find names in
    List.iter
      (fun name ->
        let w = Workloads.Registry.find name in
        Softft.Experiments.print_ablation w
          (Softft.Experiments.ablation ~trials:!default_trials ~seed:!seed
             ~domains:!domains w))
      [ "jpegdec"; "g721enc" ];
    Softft.Experiments.print_detection_sources
      (Softft.Experiments.detection_sources ~trials:!default_trials
         ~seed:!seed ~domains:!domains
         (subset [ "jpegdec"; "g721enc"; "kmeans" ]));
    Softft.Experiments.print_latency
      (Softft.Experiments.latency ~trials:!default_trials ~seed:!seed
         ~domains:!domains (subset [ "jpegdec"; "g721enc"; "kmeans" ]));
    Softft.Experiments.print_branch_faults
      (Softft.Experiments.branch_faults ~trials:!default_trials ~seed:!seed
         ~domains:!domains (subset [ "jpegdec"; "g721enc"; "kmeans" ]));
    run_crossval ()
  in
  match List.rev !commands with
  | [] ->
    run_micro ();
    print_all ();
    run_extras ()
  | [ "extras" ] -> run_extras ()
  | cmds -> List.iter run_command cmds
