open Ir

(** The simulated machine: an IR interpreter with a virtual register file per
    call frame, a cycle cost model, software-check semantics and single-bit
    fault injection into live registers.

    This stands in for the paper's GEM5 ARMv7-a model: the fault target (the
    architectural register file), the outcome signals (software check hits,
    memory-access symptoms, infinite loops) and the relative runtime (cycle
    model) are the quantities the evaluation needs.

    The interpreter runs the precompiled representation ({!Compiled}):
    branches, calls and phi edges are integer-indexed, so the hot loop never
    hashes a label or scans the function list.  {!run} lowers the program on
    entry; campaigns lower once and call {!run_compiled} for every trial. *)

type trap =
  | Segfault of int
  | Division_by_zero
  | Kind_confusion of string
  | Undefined_register of Instr.reg
  | Unknown_function of string

type detection = {
  check_uid : int;
  dup_check : bool;       (** true: duplication compare; false: value check *)
}

type fault_kind =
  | Register_bit     (** flip one bit of one live register (the paper's model) *)
  | Branch_target    (** corrupt the target of the next taken branch — the
                         fault class the paper defers to signature-based
                         control-flow checking (Â§IV-C) *)

(** A single injected fault, recorded for outcome analysis. *)
type injection = {
  inj_step : int;
  inj_kind : fault_kind;
  inj_reg : Instr.reg;    (** -1 for branch-target faults *)
  inj_bit : int;          (** -1 for branch-target faults *)
  before : Value.t;
  after : Value.t;
}

type stop =
  | Finished of Value.t option
  | Trapped of trap
  | Sw_detected of detection
  | Out_of_fuel

(** One rollback-and-replay recovery event (DESIGN.md §9): a software check
    fired, a retained checkpoint predating the injection was restored, and
    execution replayed from there.  The step/cycle counters are *not*
    rewound by the rollback, so the trial's totals honestly charge the
    wasted segment, the restore itself and the replay. *)
type recovery = {
  rec_detection : detection;    (** the check whose firing triggered rollback *)
  rec_detect_step : int;        (** step count when the check fired *)
  rec_checkpoint_step : int;    (** step of the restored checkpoint *)
  rec_replayed_steps : int;     (** detect - checkpoint: work to re-execute *)
  rec_wasted_cycles : int;      (** cycles spent between checkpoint and
                                    detection, thrown away by the rollback *)
  rec_rollback_cycles : int;    (** cost of the state restore itself *)
}

type result = {
  stop : stop;
  steps : int;
  cycles : int;
  valchk_failures : int;          (** dynamic count of ignored check failures *)
  failed_check_uids : int list;   (** distinct uids of value checks that failed
                                      without stopping the run *)
  injection : injection option;   (** what was actually flipped, if anything *)
  recovered : recovery option;    (** the rollback this run performed, if any *)
  rollback_denied : bool;         (** a check fired with recovery enabled, but
                                      no retained checkpoint predated the
                                      fault (detection latency exceeded the
                                      checkpoint window) *)
  checkpoints : int;              (** checkpoints taken during the run *)
  taint : Taint.summary option;   (** propagation summary; [Some] iff the
                                      run was configured with [taint_trace] *)
}

type valchk_mode =
  | Detect     (** a failing value check stops the run (fault detected) *)
  | Record     (** failures are counted and execution continues; used to
                   measure the false-positive rate on fault-free runs *)

type fault_plan = {
  at_step : int;
  fault_rng : Rng.t;
  kind : fault_kind;
  restrict : (int array * int) option;
      (** stratified campaigns: (register→group map, target group); the
          register draw is uniform over the ring slots whose register maps
          to the target group, i.e. the uniform model conditioned on the
          stratum.  [None] (uniform campaigns) keeps the historical draw
          bit-identical. *)
}

let register_fault ?restrict ~at_step ~fault_rng () =
  { at_step; fault_rng; kind = Register_bit; restrict }

(** Ring-occupancy observation (adaptive campaigns, DESIGN.md §14): an
    instrumented golden replay that records, at every step's fault point,
    what share of the architectural ring each stratum group holds.
    [ro_cum.(g).(t)] accumulates [Σ_{t'≤t} L_{t'}^g / L_{t'}] where
    [L_t^g] counts ring slots whose register maps to group [g] — exactly
    the probability weight a uniform (step, slot) draw puts on group [g]
    at step [t], so stratum masses and per-stratum step CDFs read straight
    off these arrays.  Arrays must be zeroed and sized [steps + 1]. *)
type ring_obs = {
  ro_groups : int array;        (** program register code → group id *)
  ro_cum : float array array;   (** one cumulative array per group *)
}

let ring_obs ~groups ~ngroups ~steps =
  { ro_groups = groups;
    ro_cum = Array.init (max 1 ngroups) (fun _ -> Array.make (steps + 1) 0.0) }

type config = {
  fuel : int;
  mode : valchk_mode;
  on_def : (int -> Value.t -> unit) option;
      (** profiling hook: called with (uid, value) for each dynamically
          executed value-producing instruction *)
  fault : fault_plan option;
  disabled_checks : (int, unit) Hashtbl.t;
      (** value checks that fire on the fault-free run: per the paper, a
          check whose recovery fails to make it pass is executed once and
          then ignored, so campaigns disable such checks instead of counting
          their failures as detections *)
  profile : Profile.t option;
      (** execution profile to fill (opcode mix, block heat, check
          exec/fire counts).  Observation-only: the run is bit-identical
          with or without it; [None] costs one pointer test per event. *)
  checkpoint_interval : int;
      (** take a rollback checkpoint every this many dynamic instructions
          (and once at step 0); 0 disables recovery — the default, and the
          paper's baseline configuration *)
  taint_trace : bool;
      (** carry shadow taint state ({!Taint}) seeded at the injection site
          and propagated through every value-producing instruction, load
          and store; observation-only — execution, costs and outcomes are
          bit-identical with tracing on or off (DESIGN.md §10) *)
  obs : ring_obs option;
      (** record per-step ring occupancy by stratum group into the given
          arrays (mass-measurement replay of a golden run); incompatible
          with [fault].  Execution, costs and outcomes are bit-identical
          with or without it — only the arrays are filled. *)
}

let default_config =
  { fuel = 200_000_000; mode = Detect; on_def = None; fault = None;
    disabled_checks = Hashtbl.create 1; profile = None;
    checkpoint_interval = 0; taint_trace = false; obs = None }

(* Internal signalling exceptions. *)
exception Stop_detected of detection
exception Stop_trap of trap

(* Every field an arena reset touches is mutable: pooled frames are reused
   across calls and trials instead of reallocated (the register-file
   arrays are the dominant per-call allocation). *)
type frame = {
  mutable cfunc : Compiled.cfunc;
  values : Value.t array;
  defined : bool array;
  (** ring of the most recent register writes — the modelled architectural
      register file contents (see [arch_registers]) *)
  recent : int array;
  mutable recent_n : int;
  mutable recent_pos : int;
  mutable cblock : Compiled.cblock;
  mutable idx : int;              (** next body-instruction index *)
  mutable prev_block : int;       (** index of the block we came from;
                                      -1 on function entry *)
  mutable ret_dest : Instr.reg option; (** caller register receiving the result *)
  mutable taint : Taint.regs;     (** shadow register taint; the shared
                                      {!Taint.no_regs} when tracing is off *)
}

(** Reusable per-worker scratch (DESIGN.md §12): recycled frames (register
    files, defined bits, rings) and the phi scratch arrays, reset between
    runs instead of reallocated.  One arena serves one worker domain at a
    time; attach it to every {!run_compiled} call of that worker's trials.
    Observation-free: results are bit-identical with or without one. *)
type arena = {
  mutable ar_frames : frame list;  (** free pool, all [ar_width] registers wide *)
  mutable ar_width : int;          (** register-file width of the pooled frames;
                                       a different program drops the pool *)
  mutable ar_phi_vals : Value.t array;
  mutable ar_phi_set : bool array;
}

let arena () =
  { ar_frames = []; ar_width = -1; ar_phi_vals = [||]; ar_phi_set = [||] }

type state = {
  compiled : Compiled.t;
  imms : Value.t array;             (** the compiled immediate pool *)
  on_def : (int -> Value.t -> unit) option;  (** hoisted from [config] *)
  profile : Profile.t option;       (** hoisted from [config] *)
  trace : Taint.t option;           (** taint tracer; [Some] iff
                                        [config.taint_trace] *)
  mem : Memory.t;
  config : config;
  mutable stack : frame list;
  mutable steps : int;
  mutable cycles : int;
  mutable valchk_failures : int;
  mutable failed_uids : (int, unit) Hashtbl.t;
  mutable injection : injection option;
  mutable fault_pending : fault_plan option;
  mutable fault_at : int;         (** step of the pending fault; [max_int]
                                      when none, so the per-step check is a
                                      single integer compare *)
  mutable branch_fault_armed : Rng.t option;
      (** a pending branch-target corruption waiting for the next branch *)
  mutable slack_credit : int;     (** spare-issue-slot account, see Cost *)
  (* Checkpoint/rollback recovery state (DESIGN.md §9).  Two checkpoints
     rotate: one may have been taken between injection and detection (and
     so captured corrupted state), but with detection latency below the
     interval the one before it is guaranteed clean. *)
  mutable next_checkpoint : int;  (** step of the next scheduled checkpoint;
                                      [max_int] when recovery is disabled, so
                                      the loop-head check is one compare *)
  mutable ckpt_cur : Snapshot.t option;   (** most recent checkpoint *)
  mutable ckpt_prev : Snapshot.t option;  (** the one before it *)
  mutable ckpt_count : int;
  mutable recovered : recovery option;
  mutable rollback_denied : bool;
  phi_vals : Value.t array;       (** scratch for parallel phi copies *)
  phi_set : bool array;
  obs : ring_obs option;          (** ring-occupancy recording, if any *)
  arena : arena option;           (** frame pool / scratch source, if any *)
  fork : Fork.plan option;        (** golden-prefix capture plan, if any *)
  mutable next_fork : int;        (** step of the next fork capture;
                                      [max_int] when not capturing *)
}

(** The modelled architectural register file holds the 16 most recently
    written values: a bit flip in ARMv7's 16 architectural registers hits
    recently produced (mostly live) values, not arbitrary stale SSA
    temporaries.  The ring may contain a register more than once; that
    biases faults toward frequently rewritten registers, as a rotating
    physical file would. *)
let arch_registers = 16

(* Reads refresh the ring too: a register consulted every iteration (a loop
   bound, a base address) stays resident in a real register file and keeps
   absorbing faults, even though it was written long ago.  The ring size is
   hardwired ([arch_registers] = 16) so the updates need no length loads. *)
let read _st (fr : frame) op =
  match op with
  | Instr.Imm v -> v
  | Instr.Reg r ->
    (* [r] comes from static code, so it is < [next_reg] (the array size),
       and [recent_pos] is masked to 0-15: the checks the compiler cannot
       see are established by construction. *)
    if Array.unsafe_get fr.defined r then begin
      Array.unsafe_set fr.recent fr.recent_pos r;
      fr.recent_pos <- (fr.recent_pos + 1) land 15;
      if fr.recent_n < 16 then fr.recent_n <- fr.recent_n + 1;
      Array.unsafe_get fr.values r
    end
    else raise (Stop_trap (Undefined_register r));
  [@@inline]

(* Same as {!read} for an integer-coded operand (register index, or [lnot]
   of an immediate-pool slot — immediates touch no ring, as before). *)
let read_code st (fr : frame) code =
  if code >= 0 then begin
    if Array.unsafe_get fr.defined code then begin
      Array.unsafe_set fr.recent fr.recent_pos code;
      fr.recent_pos <- (fr.recent_pos + 1) land 15;
      if fr.recent_n < 16 then fr.recent_n <- fr.recent_n + 1;
      Array.unsafe_get fr.values code
    end
    else raise (Stop_trap (Undefined_register code))
  end
  else Array.unsafe_get st.imms (lnot code)
  [@@inline]

let write (fr : frame) r v =
  if not (Array.unsafe_get fr.defined r) then Array.unsafe_set fr.defined r true;
  Array.unsafe_set fr.recent fr.recent_pos r;
  fr.recent_pos <- (fr.recent_pos + 1) land 15;
  if fr.recent_n < 16 then fr.recent_n <- fr.recent_n + 1;
  Array.unsafe_set fr.values r v
  [@@inline]

let fresh_frame (st : state) (cfunc : Compiled.cfunc) ~ret_dest =
  { cfunc;
    values = Array.make st.compiled.next_reg Value.zero;
    defined = Array.make st.compiled.next_reg false;
    recent = Array.make arch_registers 0; recent_n = 0; recent_pos = 0;
    cblock = cfunc.cf_blocks.(cfunc.cf_entry); idx = 0;
    prev_block = -1; ret_dest;
    taint =
      (match st.trace with
       | Some _ -> Taint.fresh_regs st.compiled.Compiled.next_reg
       | None -> Taint.no_regs) }

(* Frame allocation goes through the arena when one is attached: a
   recycled frame is reset in place — clear the defined bits, rewind the
   ring — instead of reallocating the register file, which is the dominant
   per-call allocation.  The reset leaves [values] dirty; that is safe
   because every read is gated on [defined] and the fault targeting ring
   only ever holds registers that were written or read. *)
let alloc_frame (st : state) (cfunc : Compiled.cfunc) ~ret_dest =
  match st.arena with
  | Some a when a.ar_width = st.compiled.Compiled.next_reg ->
    (match a.ar_frames with
     | fr :: rest ->
       a.ar_frames <- rest;
       let width = a.ar_width in
       fr.cfunc <- cfunc;
       Array.fill fr.defined 0 width false;
       fr.recent_n <- 0;
       fr.recent_pos <- 0;
       fr.cblock <- cfunc.Compiled.cf_blocks.(cfunc.Compiled.cf_entry);
       fr.idx <- 0;
       fr.prev_block <- -1;
       fr.ret_dest <- ret_dest;
       (match st.trace with
        | Some _ ->
          let t = fr.taint in
          if t != Taint.no_regs && Array.length t.Taint.bits = width
          then begin
            Array.fill t.Taint.bits 0 width false;
            t.Taint.n <- 0
          end
          else fr.taint <- Taint.fresh_regs width
        | None -> fr.taint <- Taint.no_regs);
       fr
     | [] -> fresh_frame st cfunc ~ret_dest)
  | _ -> fresh_frame st cfunc ~ret_dest

(* Return a frame to the arena once it leaves the stack (function return,
   rollback replacement, end of run).  Snapshots never alias frames —
   {!snap_frame} copies the arrays — so recycling cannot corrupt retained
   checkpoints or fork snapshots. *)
let recycle_frame (st : state) (fr : frame) =
  match st.arena with
  | Some a when a.ar_width = Array.length fr.values ->
    a.ar_frames <- fr :: a.ar_frames
  | _ -> ()

let note_frame_profile st (cfunc : Compiled.cfunc) =
  match st.profile with
  | Some p ->
    Profile.note_block p cfunc.Compiled.cf_name
      (Array.length cfunc.Compiled.cf_blocks) cfunc.Compiled.cf_entry
  | None -> ()

(** Program-entry frame: arguments are already values. *)
let entry_frame (st : state) (cfunc : Compiled.cfunc) ~args =
  let fr = alloc_frame st cfunc ~ret_dest:None in
  (try List.iter2 (fun r v -> write fr r v) cfunc.cf_params args
   with Invalid_argument _ ->
     invalid_arg
       (Printf.sprintf "call to %s: expected %d arguments, got %d"
          cfunc.cf_name
          (List.length cfunc.cf_params) (List.length args)));
  note_frame_profile st cfunc;
  fr

(** Call frame: arguments are operands of the caller's frame, bound to the
    callee's parameters left to right with no intermediate argument list
    (zero-alloc dispatch).  Reads hit the caller, writes the fresh callee —
    distinct frames even under recursion — so interleaving them preserves
    the exact ring-update sequence of the historical evaluate-then-bind
    path. *)
let call_frame (st : state) (cfunc : Compiled.cfunc) ~(caller : frame) ~args
    ~ret_dest =
  let fr = alloc_frame st cfunc ~ret_dest in
  let rec bind params ops =
    match params, ops with
    | [], [] -> ()
    | p :: ps, op :: rest ->
      let v = read st caller op in
      write fr p v;
      bind ps rest
    | [], _ :: _ | _ :: _, [] ->
      invalid_arg
        (Printf.sprintf "call to %s: expected %d arguments, got %d"
           cfunc.Compiled.cf_name
           (List.length cfunc.Compiled.cf_params) (List.length args))
  in
  bind cfunc.Compiled.cf_params args;
  note_frame_profile st cfunc;
  fr

(** Flip a random bit of a random recently-written register of the active
    frame — the paper's register-file single-event upset. *)
let inject_fault st (plan : fault_plan) =
  match plan.kind with
  | Branch_target -> st.branch_fault_armed <- Some plan.fault_rng
  | Register_bit ->
    (match st.stack with
     | [] -> ()
     | fr :: _ ->
       if fr.recent_n > 0 then begin
         (* Restricted draws (stratified campaigns) pick uniformly among
            the ring slots whose register belongs to the target group —
            the uniform draw conditioned on the stratum.  A step is only
            ever targeted when the golden replay saw a candidate there, so
            the no-candidate branch is a safety net (no injection: the
            trial degenerates to a golden replay). *)
         let nth =
           match plan.restrict with
           | None -> Rng.int plan.fault_rng fr.recent_n
           | Some (groups, target) ->
             let candidates = ref 0 in
             for i = 0 to fr.recent_n - 1 do
               if groups.(fr.recent.(i)) = target then incr candidates
             done;
             if !candidates = 0 then -1
             else begin
               let pick = Rng.int plan.fault_rng !candidates in
               let nth = ref (-1) in
               let seen = ref 0 in
               for i = 0 to fr.recent_n - 1 do
                 if !nth < 0 && groups.(fr.recent.(i)) = target then begin
                   if !seen = pick then nth := i;
                   incr seen
                 end
               done;
               !nth
             end
         in
         if nth >= 0 then begin
           let reg = fr.recent.(nth) in
           let bit = Rng.int plan.fault_rng 64 in
           let before = fr.values.(reg) in
           let after = Value.flip_bit before bit in
           fr.values.(reg) <- after;
           st.injection <-
             Some { inj_step = st.steps; inj_kind = Register_bit;
                    inj_reg = reg; inj_bit = bit; before; after };
           (match st.trace with
            | Some tr -> Taint.seed tr fr.taint ~reg ~step:st.steps
            | None -> ())
         end
       end)

(* The rare branch of {!tick}, out of line so the hot loop pays a single
   compare per step.  Reached when the pending fault's step arrived — or,
   in a mass-measurement replay ([st.obs]), on every step ([fault_at] is
   pinned to 0): the replay accumulates the ring's per-group occupancy at
   exactly the point {!inject_fault} would sample it. *)
let slow_tick st =
  match st.obs with
  | Some o ->
    let t = st.steps in
    if t >= 1 && t < Array.length o.ro_cum.(0) then begin
      Array.iter (fun c -> c.(t) <- c.(t - 1)) o.ro_cum;
      match st.stack with
      | fr :: _ when fr.recent_n > 0 ->
        let inv = 1.0 /. float_of_int fr.recent_n in
        for i = 0 to fr.recent_n - 1 do
          let c = o.ro_cum.(o.ro_groups.(fr.recent.(i))) in
          c.(t) <- c.(t) +. inv
        done
      | _ -> ()
    end
  | None ->
    st.fault_at <- max_int;
    (match st.fault_pending with
     | Some plan ->
       st.fault_pending <- None;
       inject_fault st plan
     | None -> ())

let tick st ~cycles =
  st.steps <- st.steps + 1;
  st.cycles <- st.cycles + cycles;
  if st.steps >= st.fault_at then slow_tick st
  [@@inline]

(** Evaluate the phi batch of a block on entry from [fr.prev_block]:
    parallel-copy semantics (all reads before any write), staged through
    the preallocated scratch arrays so nothing is allocated per batch. *)
let run_phis st (fr : frame) =
  let phis = fr.cblock.Compiled.cb_phis in
  let n = Array.length phis in
  if n > 0 then begin
    let pred = fr.prev_block in
    (* A phi without an edge from the (possibly fault-corrupted) previous
       block keeps its stale value: the parallel copies that real codegen
       places in the predecessor never executed.  Fault-free runs always
       have the edge. *)
    for i = 0 to n - 1 do
      let phi = phis.(i) in
      let preds = phi.Compiled.cp_preds in
      let m = Array.length preds in
      let j = ref 0 in
      while !j < m && preds.(!j) <> pred do incr j done;
      if !j < m then begin
        st.phi_vals.(i) <- read st fr phi.Compiled.cp_ops.(!j);
        st.phi_set.(i) <- true
      end
      else st.phi_set.(i) <- false
    done;
    for i = 0 to n - 1 do
      if st.phi_set.(i) then write fr phis.(i).Compiled.cp_dest st.phi_vals.(i)
    done;
    (* Shadow taint follows the same parallel-copy discipline: all source
       taints are read before any destination bit changes, so a phi whose
       source is another phi's destination sees the pre-batch state. *)
    (match st.trace with
     | Some tr ->
       let taints = Array.make (max n 1) false in
       for i = 0 to n - 1 do
         if st.phi_set.(i) then begin
           let phi = phis.(i) in
           let preds = phi.Compiled.cp_preds in
           let m = Array.length preds in
           let j = ref 0 in
           while !j < m && preds.(!j) <> pred do incr j done;
           taints.(i) <-
             (match phi.Compiled.cp_ops.(!j) with
              | Instr.Imm _ -> false
              | Instr.Reg r -> Taint.reg_tainted fr.taint r)
         end
       done;
       for i = 0 to n - 1 do
         if st.phi_set.(i) then
           Taint.set_reg tr fr.taint phis.(i).Compiled.cp_dest taints.(i)
             ~step:st.steps
       done
     | None -> ());
    for _ = 1 to n do tick st ~cycles:Cost.phi done
  end

let goto st (fr : frame) target ~label =
  let target =
    match st.branch_fault_armed with
    | None -> target
    | Some rng ->
      st.branch_fault_armed <- None;
      let blocks = fr.cfunc.Compiled.cf_blocks in
      let corrupted = Rng.int rng (Array.length blocks) in
      st.injection <-
        Some { inj_step = st.steps; inj_kind = Branch_target; inj_reg = -1;
               inj_bit = -1; before = Value.zero; after = Value.zero };
      (match st.trace with
       | Some tr -> Taint.seed_control tr ~step:st.steps
       | None -> ());
      corrupted
  in
  if target < 0 then
    invalid_arg
      (Printf.sprintf "%s: no block %S" fr.cfunc.Compiled.cf_name label);
  fr.prev_block <- fr.cblock.Compiled.cb_index;
  fr.cblock <- fr.cfunc.Compiled.cf_blocks.(target);
  fr.idx <- 0;
  (match st.profile with
   | Some p ->
     Profile.note_block p fr.cfunc.Compiled.cf_name
       (Array.length fr.cfunc.Compiled.cf_blocks) target
   | None -> ());
  run_phis st fr

(* Cycle accounting with the slack-credit model (see Cost): source
   instructions accrue spare-slot credit, duplicated shadow instructions
   consume it or pay one issue slot, checks always pay.  [meta] is the
   precomputed cost/origin word from {!Compiled.cblock.cb_meta}. *)
let instr_cycles st meta =
  let origin = Compiled.meta_origin meta in
  if origin = Compiled.origin_source then begin
    let credit = st.slack_credit + Cost.slack_gain in
    st.slack_credit <-
      (if credit > Cost.slack_cap then Cost.slack_cap else credit);
    Compiled.meta_cost meta
  end
  else if origin = Compiled.origin_duplicated then begin
    if st.slack_credit >= Cost.slack_cost then begin
      st.slack_credit <- st.slack_credit - Cost.slack_cost;
      0
    end
    else Cost.shadow_slot
  end
  else Compiled.meta_cost meta
  [@@inline]

(* Raw operand access for the taint tracer.  Deliberately NOT {!read_code}:
   that refreshes the recent-register ring, which fault targeting observes —
   the tracer must leave it untouched or tracing would change which register
   a later fault hits. *)
let code_value st (fr : frame) code =
  if code >= 0 then Array.unsafe_get fr.values code
  else Array.unsafe_get st.imms (lnot code)
  [@@inline]

(* Shadow-taint transfer for one executed instruction (DESIGN.md §10).
   Runs after the instruction's architectural effects, so register values
   (used to recompute addresses and select arms) are those the instruction
   itself saw; values never change between execution and this step. *)
let taint_step st tr (fr : frame) (ci : Compiled.cinstr) =
  let step = st.steps in
  let rt code = Taint.reg_tainted fr.taint code in
  match ci with
  | Compiled.CAdd { uid; dest; a; b }
  | Compiled.CSub { uid; dest; a; b }
  | Compiled.CBinop { uid; dest; a; b; _ } ->
    Taint.def tr fr.taint ~dest ~tainted:(rt a || rt b) ~uid ~step
  | Compiled.CUnop { uid; dest; a; _ } ->
    Taint.def tr fr.taint ~dest ~tainted:(rt a) ~uid ~step
  | Compiled.CIcmp { dest; a; b; _ } | Compiled.CFcmp { dest; a; b; _ } ->
    Taint.def tr fr.taint ~dest ~tainted:(rt a || rt b) ~uid:(-1) ~step
  | Compiled.CSelect { uid; dest; c; a; b } ->
    (* Only the taken arm was read; taint mirrors the dynamic data flow
       (plus the condition, which selected the value). *)
    let chosen = if Value.truthy (code_value st fr c) then a else b in
    Taint.def tr fr.taint ~dest ~tainted:(rt c || rt chosen) ~uid ~step
  | Compiled.CConst { dest; _ } | Compiled.CAlloc { dest; _ } ->
    Taint.set_reg tr fr.taint dest false ~step
  | Compiled.CLoad { uid; dest; a } ->
    let addr = Memory.addr_of_value (code_value st fr a) in
    Taint.load tr fr.taint ~dest ~addr ~addr_tainted:(rt a) ~uid ~step
  | Compiled.CStore { uid; a; v } ->
    let addr = Memory.addr_of_value (code_value st fr a) in
    Taint.store tr ~addr ~tainted:(rt v || rt a) ~uid ~step
  | Compiled.CCall { args; _ } ->
    (* The callee frame was just pushed; argument taint flows to its
       parameters (the frame starts all-clean, so only true bits are set). *)
    (match st.stack with
     | callee :: _ when callee != fr ->
       (try
          List.iter2
            (fun p op ->
              match op with
              | Instr.Imm _ -> ()
              | Instr.Reg r ->
                if Taint.reg_tainted fr.taint r then
                  Taint.set_reg tr callee.taint p true ~step)
            callee.cfunc.Compiled.cf_params args
        with Invalid_argument _ -> ())
     | _ -> ())
  | Compiled.CDup_check { uid; a; b } ->
    if rt a || rt b then Taint.check tr ~uid ~step
  | Compiled.CValue_check { uid; a; _ } ->
    if rt a then Taint.check tr ~uid ~step

(* The executor walks {!Compiled.cinstr} micro-ops: flat records with
   integer-coded operands, so one instruction costs one block load instead
   of a chase through kind, operand and destination AST nodes.  Two-operand
   reads keep the source interpreter's right-to-left evaluation order ([b]
   before [a]) so the recent-register ring — and therefore fault targeting —
   stays bit-identical.  There is also no per-instruction [try]: workload
   exceptions ([Division_by_zero], [Kind_error], [Segfault]) abort the whole
   run, so {!run_compiled} translates them to traps in its single outer
   handler instead of paying for a trap frame on every step. *)
let exec_instr st (fr : frame) (ci : Compiled.cinstr) meta =
  tick st ~cycles:(instr_cycles st meta);
  (match st.profile with Some p -> Profile.note_instr p ci | None -> ());
  (match ci with
  | Compiled.CAdd { uid; dest; a; b } ->
    (* Specialization of the dominant binop: the add runs inline on the
       unboxed payloads instead of through [Opcode.eval_binop]'s dispatch. *)
    let vb = read_code st fr b in
    let va = read_code st fr a in
    let v = Value.of_int64 (Int64.add (Value.to_int64 va) (Value.to_int64 vb)) in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CSub { uid; dest; a; b } ->
    let vb = read_code st fr b in
    let va = read_code st fr a in
    let v = Value.of_int64 (Int64.sub (Value.to_int64 va) (Value.to_int64 vb)) in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CBinop { op; uid; dest; a; b } ->
    let vb = read_code st fr b in
    let va = read_code st fr a in
    let v = Opcode.eval_binop op va vb in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CUnop { op; uid; dest; a } ->
    let v = Opcode.eval_unop op (read_code st fr a) in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CIcmp { op; dest; a; b } ->
    let vb = read_code st fr b in
    let va = read_code st fr a in
    let v = Opcode.eval_icmp op va vb in
    if dest >= 0 then write fr dest v
  | Compiled.CFcmp { op; dest; a; b } ->
    let vb = read_code st fr b in
    let va = read_code st fr a in
    let v = Opcode.eval_fcmp op va vb in
    if dest >= 0 then write fr dest v
  | Compiled.CSelect { uid; dest; c; a; b } ->
    let v =
      if Value.truthy (read_code st fr c) then read_code st fr a
      else read_code st fr b
    in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CConst { dest; v } -> if dest >= 0 then write fr dest v
  | Compiled.CLoad { uid; dest; a } ->
    let addr = Memory.addr_of_value (read_code st fr a) in
    let v = Memory.load st.mem addr in
    if dest >= 0 then write fr dest v;
    (match st.on_def with Some f -> f uid v | None -> ())
  | Compiled.CStore { a; v; _ } ->
    let addr = Memory.addr_of_value (read_code st fr a) in
    Memory.store st.mem addr (read_code st fr v)
  | Compiled.CAlloc { dest; n } ->
    let size = Value.to_int (read_code st fr n) in
    if size < 0 || size > 1 lsl 28 then
      raise (Stop_trap (Segfault size));
    let base = Memory.alloc st.mem size in
    if dest >= 0 then write fr dest (Value.of_int base)
  | Compiled.CCall { name; callee; args; dest } ->
    if callee < 0 then raise (Stop_trap (Unknown_function name));
    let cf = st.compiled.Compiled.funcs.(callee) in
    let callee_frame = call_frame st cf ~caller:fr ~args ~ret_dest:dest in
    st.stack <- callee_frame :: st.stack
  | Compiled.CDup_check { uid; a; b } ->
    let vb = read_code st fr b in
    let va = read_code st fr a in
    (match st.profile with Some p -> Profile.note_check_exec p uid | None -> ());
    if not (Value.equal va vb) then begin
      (match st.profile with
       | Some p -> Profile.note_check_fire p uid
       | None -> ());
      (* The raise skips the post-instruction taint step; record the
         tainted-check event here so the detection shows in the trace. *)
      (match st.trace with
       | Some tr
         when Taint.reg_tainted fr.taint a || Taint.reg_tainted fr.taint b ->
         Taint.check tr ~uid ~step:st.steps
       | _ -> ());
      raise (Stop_detected { check_uid = uid; dup_check = true })
    end
  | Compiled.CValue_check { uid; ck; a } ->
    (match st.profile with Some p -> Profile.note_check_exec p uid | None -> ());
    if not (Instr.check_passes ck (read_code st fr a)) then begin
      (match st.profile with
       | Some p -> Profile.note_check_fire p uid
       | None -> ());
      match st.config.mode with
      | Detect ->
        if Hashtbl.mem st.config.disabled_checks uid then begin
          st.valchk_failures <- st.valchk_failures + 1;
          Hashtbl.replace st.failed_uids uid ()
        end
        else begin
          (match st.trace with
           | Some tr when Taint.reg_tainted fr.taint a ->
             Taint.check tr ~uid ~step:st.steps
           | _ -> ());
          raise (Stop_detected { check_uid = uid; dup_check = false })
        end
      | Record ->
        st.valchk_failures <- st.valchk_failures + 1;
        Hashtbl.replace st.failed_uids uid ()
    end);
  (match st.trace with
   | Some tr -> taint_step st tr fr ci
   | None -> ())

(** Execute the terminator; returns [Some v] when the whole program returns. *)
let exec_terminator st (fr : frame) =
  match fr.cblock.Compiled.cb_term with
  | Compiled.Cjmp (target, label) ->
    tick st ~cycles:Cost.jmp;
    goto st fr target ~label;
    None
  | Compiled.Cbr (c, t1, l1, t2, l2) ->
    tick st ~cycles:Cost.br;
    let cond = Value.truthy (read st fr c) in
    (match st.trace with
     | Some tr ->
       (match c with
        | Instr.Reg r when Taint.reg_tainted fr.taint r ->
          Taint.branch tr ~step:st.steps
        | Instr.Reg _ | Instr.Imm _ -> ())
     | None -> ());
    if cond then goto st fr t1 ~label:l1 else goto st fr t2 ~label:l2;
    None
  | Compiled.Cret op ->
    tick st ~cycles:Cost.ret;
    (* Inline match, not [Option.map]: the partial application would
       allocate a closure on every return. *)
    let v = match op with None -> None | Some o -> Some (read st fr o) in
    let ret_tainted =
      match st.trace with
      | Some _ ->
        (match op with
         | Some (Instr.Reg r) -> Taint.reg_tainted fr.taint r
         | Some (Instr.Imm _) | None -> false)
      | None -> false
    in
    (match st.stack with
     | [] -> assert false
     | _self :: rest ->
       st.stack <- rest;
       (match rest with
        | [] ->
          (match st.trace with
           | Some tr ->
             Taint.set_ret tr ret_tainted;
             Taint.drop_frame tr fr.taint;
             (* A tainted return value escaped through the output — that is
                propagation, not death, so the death check is skipped. *)
             if not ret_tainted then Taint.death_check tr ~step:st.steps
           | None -> ());
          recycle_frame st fr;
          Some v         (* program finished *)
        | caller :: _ ->
          (match fr.ret_dest, v with
           | Some r, Some value -> write caller r value
           | Some r, None -> write caller r Value.zero
           | None, _ -> ());
          (match st.trace with
           | Some tr ->
             (* The dying frame's taint leaves first, then the returned
                value's taint (if any) lands in the caller's destination;
                only then can the taint set be pronounced dead. *)
             Taint.drop_frame tr fr.taint;
             (match fr.ret_dest with
              | Some r -> Taint.set_reg tr caller.taint r ret_tainted ~step:st.steps
              | None -> ());
             Taint.death_check tr ~step:st.steps
           | None -> ());
          recycle_frame st fr;
          None))

(* ----- Checkpoint / rollback recovery (DESIGN.md §9) ----- *)

let snap_frame (fr : frame) : Snapshot.frame_snap =
  { fs_cfunc = fr.cfunc;
    fs_values = Array.copy fr.values;
    fs_defined = Array.copy fr.defined;
    fs_recent = Array.copy fr.recent;
    fs_recent_n = fr.recent_n;
    fs_recent_pos = fr.recent_pos;
    fs_block = fr.cblock.Compiled.cb_index;
    fs_idx = fr.idx;
    fs_prev_block = fr.prev_block;
    fs_ret_dest = fr.ret_dest }

(* The arrays are copied again on restore so the snapshot itself stays
   pristine — a retained checkpoint must survive its own restoration (and
   fork snapshots are shared read-only across worker domains).  Shadow
   taint is not snapshotted: the restored state predates the fault, so the
   frames come back with all-clean shadow registers (the tracer's counters
   are cleared by {!Taint.rollback} alongside).  Goes through the arena
   pool when one is attached. *)
let restore_frame st (fs : Snapshot.frame_snap) : frame =
  let fr = alloc_frame st fs.fs_cfunc ~ret_dest:fs.fs_ret_dest in
  Array.blit fs.fs_values 0 fr.values 0 (Array.length fs.fs_values);
  Array.blit fs.fs_defined 0 fr.defined 0 (Array.length fs.fs_defined);
  Array.blit fs.fs_recent 0 fr.recent 0 (Array.length fs.fs_recent);
  fr.recent_n <- fs.fs_recent_n;
  fr.recent_pos <- fs.fs_recent_pos;
  fr.cblock <- fs.fs_cfunc.Compiled.cf_blocks.(fs.fs_block);
  fr.idx <- fs.fs_idx;
  fr.prev_block <- fs.fs_prev_block;
  fr

(* Capture one golden-prefix fork snapshot ({!Fork}): the current loop
   head is a consistent resume position (same argument as checkpoints:
   the fast path retires whole blocks, so the head only ever sees block
   boundaries or slow-path steps).  [ckpt] carries the checkpoint the run
   took at this very step, when checkpointing is on — captures then
   coincide with checkpoint events so a resumed trial can synthesize the
   checkpoint a from-scratch run would hold. *)
let capture_fork st ~ckpt =
  match st.fork with
  | None -> ()
  | Some plan ->
    let snap =
      { Fork.fk_step = st.steps;
        fk_cycles = st.cycles;
        fk_frames = List.map snap_frame st.stack;
        fk_mem = Memory.capture st.mem;
        fk_valchk_failures = st.valchk_failures;
        fk_failed_uids =
          Hashtbl.fold (fun uid () acc -> uid :: acc) st.failed_uids []
          |> List.sort compare;
        fk_slack_credit = st.slack_credit;
        fk_ckpt = ckpt }
    in
    plan.Fork.fp_snaps <- snap :: plan.Fork.fp_snaps;
    st.next_fork <- st.steps + plan.Fork.fp_stride

(* Checkpoints are taken at the interpreter loop head, where [fr.idx] is a
   consistent resume position (the call-free fast path retires a whole
   block's worth of [idx] up front, so mid-body state is not resumable).
   The snapshot may therefore land up to a block length after the scheduled
   step — deterministically, since the trigger is the step counter. *)
let take_checkpoint st =
  let dirty =
    match st.ckpt_cur with
    | Some c -> Memory.undo_since st.mem c.Snapshot.sn_mem
    | None -> Memory.undo_length st.mem
  in
  let snap =
    Snapshot.create ~step:st.steps ~cycles:st.cycles
      ~frames:(List.map snap_frame st.stack) ~mem:st.mem ~dirty_words:dirty
  in
  (* The checkpoint before the previous one is now unreachable: its part of
     the memory undo journal can be dropped. *)
  (match st.ckpt_cur with
   | Some c -> Memory.retire st.mem c.Snapshot.sn_mem
   | None -> ());
  st.ckpt_prev <- st.ckpt_cur;
  st.ckpt_cur <- Some snap;
  st.ckpt_count <- st.ckpt_count + 1;
  st.cycles <- st.cycles + Cost.checkpoint ~words:(Snapshot.words snap);
  st.next_checkpoint <- st.steps + st.config.checkpoint_interval;
  (* When a checkpointing golden run is also capturing fork snapshots, the
     capture happens exactly here, after the checkpoint cost is charged:
     the snapshot's resume cycles include that cost, and the checkpoint's
     own pre-cost cycles and footprint ride along so a resumed trial
     reproduces both the rollback target and its accounting. *)
  if st.steps >= st.next_fork then
    capture_fork st
      ~ckpt:
        (Some { Fork.fc_words = Snapshot.words snap;
                fc_cycles = snap.Snapshot.sn_cycles;
                fc_count = st.ckpt_count })

(** A software check fired: try to roll back to the newest retained
    checkpoint that predates the injected fault and replay.  Returns false
    (and records the denial) when recovery is off, already used — one
    transient fault means one recovery — or no clean checkpoint remains,
    i.e. the detection latency exceeded the checkpoint window. *)
let try_recover st (d : detection) =
  if st.config.checkpoint_interval <= 0 || st.recovered <> None then false
  else
    match st.injection with
    | None ->
      (* Fault-free run (or the fault never landed): the check fired on the
         program's own behaviour; replaying would just fire it again. *)
      st.rollback_denied <- true;
      false
    | Some inj ->
      let clean c = Snapshot.predates c ~inj_step:inj.inj_step in
      let pick =
        match st.ckpt_cur with
        | Some c when clean c -> Some c
        | _ ->
          (match st.ckpt_prev with
           | Some c when clean c -> Some c
           | _ -> None)
      in
      (match pick with
       | None ->
         st.rollback_denied <- true;
         false
       | Some snap ->
         let detect_step = st.steps and detect_cycles = st.cycles in
         Memory.rollback st.mem snap.Snapshot.sn_mem;
         (* The wasted segment's frames go back to the pool; the restore
            below blits the snapshot's private copies into them. *)
         List.iter (recycle_frame st) st.stack;
         st.stack <- List.map (restore_frame st) snap.Snapshot.sn_frames;
         st.slack_credit <- 0;               (* the rollback flushes the pipe *)
         (* The restore erased the transient fault's architectural effects;
            the shadow taint dies with them. *)
         (match st.trace with
          | Some tr -> Taint.rollback tr ~step:st.steps
          | None -> ());
         let rollback_cycles = Cost.rollback ~words:(Snapshot.words snap) in
         st.cycles <- st.cycles + rollback_cycles;
         (* The fault was transient: its architectural effects are erased by
            the restore and the replay runs clean, so nothing is re-armed.
            Steps/cycles stay monotone — the replayed instructions charge
            their cost again, which is exactly the recovery overhead. *)
         st.branch_fault_armed <- None;
         st.recovered <-
           Some { rec_detection = d;
                  rec_detect_step = detect_step;
                  rec_checkpoint_step = snap.Snapshot.sn_step;
                  rec_replayed_steps = detect_step - snap.Snapshot.sn_step;
                  rec_wasted_cycles = detect_cycles - snap.Snapshot.sn_cycles;
                  rec_rollback_cycles = rollback_cycles };
         (* Checkpoints taken inside the wasted segment are gone with it;
            keep checkpointing from the restored one on the usual cadence. *)
         st.ckpt_prev <- None;
         st.ckpt_cur <- Some snap;
         st.next_checkpoint <- st.steps + st.config.checkpoint_interval;
         true)

let run_compiled ?(config = default_config) ?arena ?fork_capture ?resume
    compiled ~entry ~args ~mem =
  (* Phi scratch and the frame pool come from the arena when one is
     attached; a width change (different program) drops the pool. *)
  let nphi = max 1 compiled.Compiled.max_phis in
  let phi_vals, phi_set =
    match arena with
    | Some a ->
      if Array.length a.ar_phi_vals < nphi then begin
        a.ar_phi_vals <- Array.make nphi Value.zero;
        a.ar_phi_set <- Array.make nphi false
      end;
      (a.ar_phi_vals, a.ar_phi_set)
    | None -> (Array.make nphi Value.zero, Array.make nphi false)
  in
  (match arena with
   | Some a ->
     if a.ar_width <> compiled.Compiled.next_reg then begin
       a.ar_frames <- [];
       a.ar_width <- compiled.Compiled.next_reg
     end
   | None -> ());
  let st =
    { compiled; imms = compiled.Compiled.imms; on_def = config.on_def;
      profile = config.profile;
      trace = (if config.taint_trace then Some (Taint.create ()) else None);
      mem; config; stack = []; steps = 0; cycles = 0;
      valchk_failures = 0; failed_uids = Hashtbl.create 4; injection = None;
      fault_pending = config.fault;
      fault_at =
        (match config.fault, config.obs with
         | Some p, _ -> p.at_step
         | None, Some _ -> 0     (* observe the ring at every step *)
         | None, None -> max_int);
      obs = config.obs;
      branch_fault_armed = None;
      slack_credit = 0;
      next_checkpoint =
        (if config.checkpoint_interval > 0 then 0 else max_int);
      ckpt_cur = None; ckpt_prev = None; ckpt_count = 0;
      recovered = None; rollback_denied = false;
      phi_vals; phi_set;
      arena; fork = fork_capture;
      (* The first capture waits one full stride: the step-0 state is the
         input state the caller already has. *)
      next_fork =
        (match fork_capture with
         | Some p -> p.Fork.fp_stride
         | None -> max_int) }
  in
  let finish stop =
    (* Frames still on the stack feed the next trial's allocations. *)
    List.iter (recycle_frame st) st.stack;
    st.stack <- [];
    { stop; steps = st.steps; cycles = st.cycles;
      valchk_failures = st.valchk_failures;
      failed_check_uids =
        Hashtbl.fold (fun uid () acc -> uid :: acc) st.failed_uids []
        |> List.sort compare;
      injection = st.injection;
      recovered = st.recovered; rollback_denied = st.rollback_denied;
      checkpoints = st.ckpt_count;
      taint = Option.map (fun tr -> Taint.summarize tr ~end_step:st.steps) st.trace }
  in
  let exec_loop () =
    let result = ref None in
    (* Pattern-matching the condition keeps the loop head a tag test; [=]
       on options would call the polymorphic comparator every step. *)
    while (match !result with None -> true | Some _ -> false) do
      if st.steps >= st.next_checkpoint then take_checkpoint st;
      (* Fork captures piggyback on checkpoint events when checkpointing
         is on (see {!take_checkpoint}); otherwise any loop head crossing
         the stride boundary is a consistent capture point.  [next_fork]
         is [max_int] outside capture runs, so trials pay one compare. *)
      if st.steps >= st.next_fork && config.checkpoint_interval = 0 then
        capture_fork st ~ckpt:None;
      if st.steps >= config.fuel then result := Some Out_of_fuel
      else begin
        match st.stack with
        | [] -> assert false
        | fr :: _ ->
          let cblock = fr.cblock in
          let code = cblock.Compiled.cb_code in
          let n = Array.length code in
          if fr.idx < n then begin
            if (not cblock.Compiled.cb_has_call)
               && st.steps + (n - fr.idx) < config.fuel
            then begin
              (* Call-free block comfortably inside the fuel budget: [fr]
                 stays the top frame and no fuel stop can hit mid-body, so
                 the whole remainder runs without per-step stack or bounds
                 bookkeeping.  Nothing reads [fr.idx] mid-body, so it can
                 be retired up front. *)
              let meta = cblock.Compiled.cb_meta in
              let start = fr.idx in
              fr.idx <- n;
              for i = start to n - 1 do
                (* [i < n] = both array lengths, by the loop bound. *)
                exec_instr st fr (Array.unsafe_get code i)
                  (Array.unsafe_get meta i)
              done
            end
            else begin
              let ci = code.(fr.idx) in
              let meta = cblock.Compiled.cb_meta.(fr.idx) in
              fr.idx <- fr.idx + 1;
              exec_instr st fr ci meta
            end
          end
          else begin
            match exec_terminator st fr with
            | Some v -> result := Some (Finished v)
            | None -> ()
          end
      end
    done;
    (match !result with Some s -> s | None -> assert false)
  in
  (* A software detection is a recovery opportunity before it is a stop:
     roll back and re-enter the loop when a clean checkpoint exists.
     [try_recover] permits at most one rollback per run, so this always
     terminates. *)
  let rec drive () =
    match exec_loop () with
    | stop -> stop
    | exception Stop_detected d ->
      if try_recover st d then drive () else Sw_detected d
  in
  match
    (match resume with
     | None ->
       let entry_func = Compiled.find_func compiled entry in
       let fr = entry_frame st entry_func ~args in
       st.stack <- [ fr ];
       if config.checkpoint_interval > 0 then Memory.enable_undo mem
     | Some (snap : Fork.snap) ->
       (* Resume from a golden-prefix fork snapshot: restore the memory
          image, the frame stack and every counter a from-scratch run
          would carry at this step.  The injection must land after the
          fork, or the resumed run would skip the very step the fault
          targets. *)
       (match config.fault with
        | Some p when p.at_step <= snap.Fork.fk_step ->
          invalid_arg
            "Machine.run_compiled: resume snapshot does not predate the fault"
        | Some _ | None -> ());
       Memory.restore_image mem snap.Fork.fk_mem;
       st.steps <- snap.Fork.fk_step;
       st.cycles <- snap.Fork.fk_cycles;
       st.valchk_failures <- snap.Fork.fk_valchk_failures;
       List.iter (fun uid -> Hashtbl.replace st.failed_uids uid ())
         snap.Fork.fk_failed_uids;
       st.slack_credit <- snap.Fork.fk_slack_credit;
       st.stack <- List.map (restore_frame st) snap.Fork.fk_frames;
       if config.checkpoint_interval > 0 then begin
         Memory.enable_undo mem;
         match snap.Fork.fk_ckpt with
         | Some ck ->
           (* Synthesize the checkpoint the from-scratch run would hold:
              taken at the fork step, mark at position 0 of the just-reset
              undo journal (rolling back to it restores state-at-fork,
              which is the checkpoint's state), golden footprint for
              bit-identical rollback costs.  [ckpt_prev] is never needed:
              the injection postdates this checkpoint, so it is always the
              newest clean one. *)
           st.ckpt_count <- ck.Fork.fc_count;
           st.ckpt_cur <-
             Some
               (Snapshot.resume ~step:snap.Fork.fk_step
                  ~cycles:ck.Fork.fc_cycles ~frames:snap.Fork.fk_frames
                  ~mem ~words:ck.Fork.fc_words);
           st.next_checkpoint <- snap.Fork.fk_step + config.checkpoint_interval
         | None ->
           invalid_arg
             "Machine.run_compiled: checkpointing run resumed from a \
              snapshot captured without checkpoint state"
       end);
    drive ()
  with
  | stop -> finish stop
  | exception Stop_trap t -> finish (Trapped t)
  | exception Opcode.Division_by_zero -> finish (Trapped Division_by_zero)
  | exception Value.Kind_error m -> finish (Trapped (Kind_confusion m))
  | exception Memory.Segfault x -> finish (Trapped (Segfault x))

let run ?config prog ~entry ~args ~mem =
  run_compiled ?config (Compiled.of_prog prog) ~entry ~args ~mem

let pp_trap ppf = function
  | Segfault a -> Format.fprintf ppf "segfault @%d" a
  | Division_by_zero -> Format.fprintf ppf "division by zero"
  | Kind_confusion m -> Format.fprintf ppf "kind confusion: %s" m
  | Undefined_register r -> Format.fprintf ppf "undefined register %%r%d" r
  | Unknown_function f -> Format.fprintf ppf "unknown function %s" f

let pp_stop ppf = function
  | Finished None -> Format.fprintf ppf "finished"
  | Finished (Some v) -> Format.fprintf ppf "finished with %a" Value.pp v
  | Trapped t -> Format.fprintf ppf "trap: %a" pp_trap t
  | Sw_detected d ->
    Format.fprintf ppf "software detection at check #%d (%s)" d.check_uid
      (if d.dup_check then "dup" else "value")
  | Out_of_fuel -> Format.fprintf ppf "out of fuel"
