(** Per-instruction cycle cost model of the simulated machine.

    Models the paper's 2-issue out-of-order ARMv7-a core (Table II) at the
    level the evaluation needs: *relative* runtimes between protection
    variants.  Source instructions pay scalar latencies; shadow
    instructions inserted by the duplication passes either hide in spare
    issue slots (tracked by the machine's slack-credit account) or pay one
    slot; checks always pay one slot. *)

val binop : Ir.Opcode.binop -> int
val unop : Ir.Opcode.unop -> int
val check_kind : Ir.Instr.check_kind -> int

(** Cycles a duplicate-comparison check pays; named so the static plan
    predictor prices comparisons identically to the interpreter. *)
val dup_check : int

(** Latency of a source instruction.  The machine applies the slack model
    on top of this for [Duplicated] instructions. *)
val instr : Ir.Instr.t -> int

(** Phi nodes are SSA bookkeeping (register renaming): free. *)
val phi : int

val jmp : int
val br : int
val ret : int

(** Slack-credit model parameters: each source instruction accrues
    [slack_gain] credit up to [slack_cap]; a shadow instruction either
    spends [slack_cost] credit and issues free or pays [shadow_slot]. *)

val shadow_slot : int
val slack_gain : int
val slack_cost : int
val slack_cap : int

(** Checkpoint/rollback cost model (DESIGN.md §9): a fixed base plus the
    live-state words copied, streamed at [checkpoint_bandwidth] words per
    cycle; a rollback additionally pays a pipeline flush. *)

val checkpoint_base : int
val checkpoint_bandwidth : int
val rollback_flush : int

(** Cycles charged for taking a checkpoint of [words] live-state words. *)
val checkpoint : words:int -> int

(** Cycles charged for restoring a checkpoint of [words] words. *)
val rollback : words:int -> int

(** Table II analogue: parameter/value pairs describing the machine. *)
val describe : unit -> (string * string) list
