open Ir

(** Execution tracing: capture the first values produced by a run, rendered
    against the static program.  A debugging aid for kernel authors (see
    the `trace` subcommand of bin/experiments.exe); it rides on the
    machine's profiling hook, so tracing changes nothing about execution. *)

type event = {
  ordinal : int;           (** 0-based index among traced events *)
  uid : int;               (** static instruction *)
  value : Value.t;
}

(** [first_values prog ~entry ~args ~mem ~limit] runs the program and
    returns the first [limit] values produced by value-producing
    instructions, along with the machine result.  [config] is the base
    machine configuration to extend (default {!Machine.default_config}):
    profiling, checkpointing, fault plans etc. are honoured, and a caller
    [on_def] hook is chained after the tracing one rather than dropped. *)
let first_values ?config ?(limit = 100) prog ~entry ~args ~mem =
  let base =
    match config with Some c -> c | None -> Machine.default_config
  in
  let events = ref [] in
  let count = ref 0 in
  let on_def uid value =
    if !count < limit then begin
      events := { ordinal = !count; uid; value } :: !events;
      incr count
    end;
    match base.Machine.on_def with Some f -> f uid value | None -> ()
  in
  let config = { base with Machine.on_def = Some on_def } in
  let result = Machine.run ~config prog ~entry ~args ~mem in
  (List.rev !events, result)

(** Render events with their defining instructions. *)
let render prog events =
  (* uid -> rendered instruction, computed once. *)
  let instr_text = Hashtbl.create 256 in
  Prog.iter_funcs
    (fun f ->
      Func.iter_instrs
        (fun ins ->
          Hashtbl.replace instr_text ins.Instr.uid
            (String.trim (Format.asprintf "%a" Printer.pp_instr ins)))
        f)
    prog;
  List.map
    (fun e ->
      let text =
        match Hashtbl.find_opt instr_text e.uid with
        | Some t -> t
        | None -> Printf.sprintf "#%d" e.uid
      in
      Printf.sprintf "%5d  %-60s -> %s" e.ordinal text
        (Value.to_string e.value))
    events
