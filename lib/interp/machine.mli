(** The simulated machine: an IR interpreter with a virtual register file
    per call frame, a cycle cost model, software-check semantics and
    single-event fault injection.

    This stands in for the paper's GEM5 ARMv7-a model: the fault target
    (the architectural register file, modelled as the 16 most recently
    accessed registers), the outcome signals (software check hits,
    memory-access symptoms, infinite loops) and the relative runtime
    (slack-aware cycle model) are the quantities the evaluation needs. *)

type trap =
  | Segfault of int
  | Division_by_zero
  | Kind_confusion of string
  | Undefined_register of Ir.Instr.reg
  | Unknown_function of string

type detection = {
  check_uid : int;
  dup_check : bool;   (** true: duplication compare; false: value check *)
}

type fault_kind =
  | Register_bit    (** flip one bit of one live register (the paper's model) *)
  | Branch_target   (** corrupt the target of the next taken branch — the
                        fault class the paper defers to signature-based
                        control-flow checking (§IV-C) *)

(** A single injected fault, recorded for outcome analysis. *)
type injection = {
  inj_step : int;
  inj_kind : fault_kind;
  inj_reg : Ir.Instr.reg;   (** -1 for branch-target faults *)
  inj_bit : int;            (** -1 for branch-target faults *)
  before : Ir.Value.t;
  after : Ir.Value.t;
}

type stop =
  | Finished of Ir.Value.t option
  | Trapped of trap
  | Sw_detected of detection
  | Out_of_fuel

(** One rollback-and-replay recovery event (DESIGN.md §9): a software check
    fired, a retained checkpoint predating the injection was restored and
    execution replayed from there.  Step/cycle counters are *not* rewound
    by a rollback, so the trial's totals honestly charge the wasted
    segment, the restore itself and the replay. *)
type recovery = {
  rec_detection : detection;    (** the check whose firing triggered rollback *)
  rec_detect_step : int;        (** step count when the check fired *)
  rec_checkpoint_step : int;    (** step of the restored checkpoint *)
  rec_replayed_steps : int;     (** detect - checkpoint: work re-executed *)
  rec_wasted_cycles : int;      (** cycles between checkpoint and detection,
                                    thrown away by the rollback *)
  rec_rollback_cycles : int;    (** cost of the state restore itself *)
}

type result = {
  stop : stop;
  steps : int;
  cycles : int;
  valchk_failures : int;        (** dynamic count of ignored check failures *)
  failed_check_uids : int list; (** distinct uids of value checks that failed
                                    without stopping the run *)
  injection : injection option; (** what was actually injected, if anything *)
  recovered : recovery option;  (** the rollback this run performed, if any *)
  rollback_denied : bool;       (** a check fired with recovery enabled, but
                                    no retained checkpoint predated the fault
                                    (detection latency exceeded the
                                    checkpoint window) *)
  checkpoints : int;            (** checkpoints taken during the run *)
  taint : Taint.summary option; (** propagation summary; [Some] iff the run
                                    was configured with [taint_trace] *)
}

type valchk_mode =
  | Detect   (** a failing value check stops the run (fault detected) *)
  | Record   (** failures are counted and execution continues; used to
                 measure the false-positive rate on fault-free runs *)

type fault_plan = {
  at_step : int;
  fault_rng : Rng.t;
  kind : fault_kind;
  restrict : (int array * int) option;
      (** stratified campaigns: (register→group map, target group).  The
          register draw becomes uniform over the ring slots whose register
          maps to the target group — the historical uniform draw
          conditioned on the stratum.  [None] keeps the uniform draw
          bit-identical to previous releases. *)
}

val register_fault :
  ?restrict:int array * int ->
  at_step:int -> fault_rng:Rng.t -> unit -> fault_plan

(** Ring-occupancy observation for adaptive campaigns (DESIGN.md §14):
    attach to a golden replay via [config.obs] and the machine fills
    [ro_cum.(g).(t)] with [Σ_{t'≤t} L_{t'}^g / L_{t'}], where [L_t^g]
    counts architectural-ring slots whose register maps to group [g] at
    step [t]'s fault point (and [L_t] is the occupied ring size) — the
    exact probability weight a uniform (step, slot) fault draw puts on
    group [g] at step [t].  Stratum masses and per-stratum step CDFs read
    straight off the cumulative arrays. *)
type ring_obs = {
  ro_groups : int array;        (** program register code → group id *)
  ro_cum : float array array;   (** one cumulative array per group,
                                    length [steps + 1], index = step *)
}

(** Fresh zeroed observation arrays for a golden run of [steps] steps. *)
val ring_obs : groups:int array -> ngroups:int -> steps:int -> ring_obs

type config = {
  fuel : int;
  mode : valchk_mode;
  on_def : (int -> Ir.Value.t -> unit) option;
      (** profiling hook: called with (uid, value) for each dynamically
          executed value-producing instruction *)
  fault : fault_plan option;
  disabled_checks : (int, unit) Hashtbl.t;
      (** value checks that fire on the fault-free run: a check whose
          recovery fails to make it pass is executed once and then ignored,
          so campaigns disable such checks instead of counting their
          failures as detections *)
  profile : Profile.t option;
      (** execution profile to fill (opcode mix, block heat, check
          exec/fire counts); observation-only, the run is bit-identical
          with or without it *)
  checkpoint_interval : int;
      (** take a rollback checkpoint every this many dynamic instructions
          (and once at step 0); 0 disables recovery — the default.  When
          enabled, a run whose software check fires rolls back to the newest
          checkpoint predating the injected fault and replays; the machine
          retains the two most recent checkpoints, so recovery succeeds
          whenever the detection latency is below the interval. *)
  taint_trace : bool;
      (** carry shadow taint state ({!Taint}) seeded at the injection site
          and propagated through every value-producing instruction, load and
          store (DESIGN.md §10); observation-only — execution, costs and
          outcomes are bit-identical with tracing on or off *)
  obs : ring_obs option;
      (** fill the given {!ring_obs} arrays during the run (one
          mass-measurement replay of the golden run per adaptive campaign);
          incompatible with [fault].  Observation-only: execution, costs
          and outcomes are bit-identical with or without it. *)
}

val default_config : config

(** Size of the modelled architectural register file (16, as in ARMv7). *)
val arch_registers : int

(** [run prog ~entry ~args ~mem] interprets [entry] to completion (or trap,
    detection, fault, fuel exhaustion).  The program is lowered with
    {!Compiled.of_prog} on every call; repeated runs of the same program
    (fault-injection trials) should lower once and use {!run_compiled}. *)
val run :
  ?config:config ->
  Ir.Prog.t ->
  entry:string ->
  args:Ir.Value.t list ->
  mem:Memory.t ->
  result

(** Reusable per-worker scratch (DESIGN.md §12): recycled call frames
    (register files, defined bits, recent rings) and the phi scratch
    arrays, reset between runs instead of reallocated.  One arena serves
    one worker domain at a time — attach the same arena to every
    {!run_compiled} call of that worker's trials.  Strictly
    observation-free: results are bit-identical with or without one. *)
type arena

val arena : unit -> arena

(** Like {!run}, against an already-lowered program.  Bit-identical to
    {!run} on the program it was compiled from; safe to call concurrently
    from several domains (the compiled form is read-only, all run state is
    per-call).

    [arena] recycles frame and scratch allocations across runs (one arena
    per worker domain; observation-free).

    [fork_capture] (golden runs only) appends a resumable {!Fork.snap} to
    the plan every time the step counter crosses a stride boundary — at a
    loop head, or exactly at a checkpoint event when [checkpoint_interval]
    is on.  Capture is observation-free for the capturing run itself.

    [resume] starts the run from a previously captured fork snapshot
    instead of the program entry: memory, frames, and the step/cycle/check
    counters are restored so the run is bit-identical to a from-scratch
    run — provided the configuration matches the capture run's (same
    program, same [checkpoint_interval], and a fault landing strictly
    after the snapshot's step; violations raise [Invalid_argument]).
    [args] and [entry] are ignored on resume.  Runs that profile or hook
    [on_def] observe only the post-fork suffix, so campaigns fall back to
    from-scratch execution for profiled trials. *)
val run_compiled :
  ?config:config ->
  ?arena:arena ->
  ?fork_capture:Fork.plan ->
  ?resume:Fork.snap ->
  Compiled.t ->
  entry:string ->
  args:Ir.Value.t list ->
  mem:Memory.t ->
  result

val pp_trap : Format.formatter -> trap -> unit
val pp_stop : Format.formatter -> stop -> unit
