open Ir

(** One-time lowering of a program to an interpreter-friendly form.

    The tree-walking machine resolves a string label through a [Hashtbl] on
    every branch, scans the function list on every call and walks
    label-keyed association lists for every phi batch.  Fault-injection
    campaigns re-run the same program thousands of times, so we lower it
    once: blocks and functions become integer indices into arrays, phi
    incoming edges become predecessor-index arrays, and the block list of
    every function is materialized as the array the branch-fault path needs.

    The lowered instructions ({!cinstr}) are flat records with int-coded
    operands; only call argument lists, phi incomings and terminator
    operands still reference the source operand type.  A compiled program
    is a snapshot of the source: compile after all transforms (campaigns
    do), and recompile after editing. *)

(** A phi batch entry: destination register plus parallel arrays of
    (predecessor block index, incoming operand).  An incoming edge whose
    label is not a block of the function gets index [-2], which matches no
    runtime predecessor (the entry pseudo-predecessor is [-1]). *)
type cphi = {
  cp_dest : Instr.reg;
  cp_preds : int array;
  cp_ops : Instr.operand array;
}

(** Terminator with block labels resolved to indices.  A target label
    missing from the function compiles to [-1]; taking that edge at run
    time reproduces the uncompiled interpreter's [Invalid_argument]. *)
type cterm =
  | Cret of Instr.operand option
  | Cjmp of int * string
  | Cbr of Instr.operand * int * string * int * string

(** Operand code: a register index ([>= 0]) or [lnot i] for the [i]-th
    entry of the program's immediate pool ({!t.imms}).  Decoding is a sign
    test instead of a constructor match, and the flat int avoids chasing an
    operand block per read. *)
type code = int

(** Fully lowered instruction: destinations are plain ints ([-1] = none),
    operands are {!code}s, call targets are resolved function indices.  One
    flat block per instruction, no nested AST nodes on the hot path. *)
type cinstr =
  | CAdd of { uid : int; dest : int; a : code; b : code }
  | CSub of { uid : int; dest : int; a : code; b : code }
  | CBinop of { op : Opcode.binop; uid : int; dest : int; a : code; b : code }
  | CUnop of { op : Opcode.unop; uid : int; dest : int; a : code }
  | CIcmp of { op : Opcode.icmp; dest : int; a : code; b : code }
  | CFcmp of { op : Opcode.fcmp; dest : int; a : code; b : code }
  | CSelect of { uid : int; dest : int; c : code; a : code; b : code }
  | CConst of { dest : int; v : Value.t }
  | CLoad of { uid : int; dest : int; a : code }
  | CStore of { uid : int; a : code; v : code }
  | CAlloc of { dest : int; n : code }
  | CCall of { name : string; callee : int;  (** -1: not in the program *)
               args : Instr.operand list; dest : Instr.reg option }
  | CDup_check of { uid : int; a : code; b : code }
  | CValue_check of { uid : int; ck : Instr.check_kind; a : code }

type cblock = {
  cb_index : int;
  cb_label : string;
  cb_phis : cphi array;
  cb_code : cinstr array;      (** the lowered body *)
  cb_meta : int array;         (** per body slot: base cycle cost in the low
                                   byte, instruction origin (see
                                   {!meta_origin}) in the next — precomputed
                                   so the hot loop does no cost-model
                                   matching *)
  cb_has_call : bool;          (** whether any body instruction is a call *)
  cb_term : cterm;
}

(** Origin codes packed into {!cblock.cb_meta}. *)
let origin_source = 0
let origin_duplicated = 1
let origin_check = 2

let meta_of_instr (ins : Instr.t) =
  let origin =
    match ins.origin with
    | Instr.From_source -> origin_source
    | Instr.Duplicated _ -> origin_duplicated
    | Instr.Check_insertion -> origin_check
  in
  Cost.instr ins lor (origin lsl 8)

let meta_cost meta = meta land 0xFF
let meta_origin meta = meta lsr 8

type cfunc = {
  cf_name : string;
  cf_params : Instr.reg list;
  cf_blocks : cblock array;    (** in layout order, entry first *)
  cf_entry : int;
}

type t = {
  source : Prog.t;
  funcs : cfunc array;
  func_index : (string, int) Hashtbl.t;
  imms : Value.t array;        (** immediate-operand pool; see {!code} *)
  next_reg : int;
  max_phis : int;              (** widest phi batch; sizes machine scratch *)
}

(* Immediate pool under construction: operands are appended during
   lowering and the pool is frozen into {!t.imms} at the end. *)
type imm_pool = { mutable rev : Value.t list; mutable n : int }

let code_of_operand pool (op : Instr.operand) =
  match op with
  | Instr.Reg r -> r
  | Instr.Imm v ->
    let i = pool.n in
    pool.rev <- v :: pool.rev;
    pool.n <- i + 1;
    lnot i

let compile_instr ~func_index ~pool (ins : Instr.t) =
  let imm op = code_of_operand pool op in
  let dest = match ins.dest with Some r -> r | None -> -1 in
  match ins.kind with
  | Instr.Binop (Opcode.Add, a, b) ->
    CAdd { uid = ins.uid; dest; a = imm a; b = imm b }
  | Instr.Binop (Opcode.Sub, a, b) ->
    CSub { uid = ins.uid; dest; a = imm a; b = imm b }
  | Instr.Binop (op, a, b) ->
    CBinop { op; uid = ins.uid; dest; a = imm a; b = imm b }
  | Instr.Unop (op, a) -> CUnop { op; uid = ins.uid; dest; a = imm a }
  | Instr.Icmp (op, a, b) -> CIcmp { op; dest; a = imm a; b = imm b }
  | Instr.Fcmp (op, a, b) -> CFcmp { op; dest; a = imm a; b = imm b }
  | Instr.Select (c, a, b) ->
    CSelect { uid = ins.uid; dest; c = imm c; a = imm a; b = imm b }
  | Instr.Const v -> CConst { dest; v }
  | Instr.Load a -> CLoad { uid = ins.uid; dest; a = imm a }
  | Instr.Store (a, v) -> CStore { uid = ins.uid; a = imm a; v = imm v }
  | Instr.Alloc n -> CAlloc { dest; n = imm n }
  | Instr.Call (name, args) ->
    CCall { name;
            callee =
              (match Hashtbl.find_opt func_index name with
               | Some fi -> fi
               | None -> -1);
            args; dest = ins.dest }
  | Instr.Dup_check (a, b) ->
    CDup_check { uid = ins.uid; a = imm a; b = imm b }
  | Instr.Value_check (ck, a) ->
    CValue_check { uid = ins.uid; ck; a = imm a }

let compile_func ~func_index ~pool (f : Func.t) =
  let blocks = Array.of_list f.blocks in
  let block_index = Hashtbl.create (Array.length blocks * 2) in
  Array.iteri
    (fun i (b : Block.t) ->
      if not (Hashtbl.mem block_index b.label) then
        Hashtbl.replace block_index b.label i)
    blocks;
  let resolve_block label =
    match Hashtbl.find_opt block_index label with
    | Some i -> i
    | None -> -1
  in
  let compile_phi (phi : Instr.phi) =
    let n = List.length phi.incoming in
    let preds = Array.make n (-2) in
    let ops = Array.make n (Instr.Imm Value.zero) in
    List.iteri
      (fun i (label, op) ->
        (match Hashtbl.find_opt block_index label with
         | Some b -> preds.(i) <- b
         | None -> preds.(i) <- -2);
        ops.(i) <- op)
      phi.incoming;
    { cp_dest = phi.phi_dest; cp_preds = preds; cp_ops = ops }
  in
  let compile_block i (b : Block.t) =
    { cb_index = i;
      cb_label = b.label;
      cb_phis = Array.of_list (List.map compile_phi b.phis);
      cb_code = Array.map (compile_instr ~func_index ~pool) b.body;
      cb_meta = Array.map meta_of_instr b.body;
      cb_has_call =
        Array.exists
          (fun (ins : Instr.t) ->
            match ins.kind with Instr.Call _ -> true | _ -> false)
          b.body;
      cb_term =
        (match b.term with
         | Instr.Ret op -> Cret op
         | Instr.Jmp l -> Cjmp (resolve_block l, l)
         | Instr.Br (c, l1, l2) ->
           Cbr (c, resolve_block l1, l1, resolve_block l2, l2)) }
  in
  { cf_name = f.name;
    cf_params = f.params;
    cf_blocks = Array.mapi compile_block blocks;
    cf_entry = (match resolve_block f.entry with -1 -> 0 | i -> i) }

let of_prog (prog : Prog.t) =
  let funcs = Array.of_list prog.funcs in
  let func_index = Hashtbl.create (Array.length funcs * 2) in
  Array.iteri
    (fun i (f : Func.t) ->
      if not (Hashtbl.mem func_index f.name) then
        Hashtbl.replace func_index f.name i)
    funcs;
  let pool = { rev = []; n = 0 } in
  let cfuncs = Array.map (compile_func ~func_index ~pool) funcs in
  let max_phis =
    Array.fold_left
      (fun acc cf ->
        Array.fold_left
          (fun acc cb -> max acc (Array.length cb.cb_phis))
          acc cf.cf_blocks)
      0 cfuncs
  in
  { source = prog; funcs = cfuncs; func_index;
    imms = Array.of_list (List.rev pool.rev);
    next_reg = prog.next_reg; max_phis }

(** [find_func t name] mirrors {!Ir.Prog.find_func}, including its error. *)
let find_func t name =
  match Hashtbl.find_opt t.func_index name with
  | Some i -> t.funcs.(i)
  | None -> invalid_arg (Printf.sprintf "no function %S" name)

let find_func_index t name = Hashtbl.find_opt t.func_index name

(* ----- per-program memoization ----- *)

(* Campaigns compile once and run thousands of trials against the result,
   possibly from several domains at once.  The cache is keyed by physical
   program identity and validated against a cheap structural stamp, so a
   program that was transformed in place since it was last compiled (the
   passes mint fresh uids and grow the instruction count) is recompiled
   rather than served stale. *)

type stamp = { s_funcs : int; s_instrs : int; s_next_reg : int; s_next_uid : int }

let stamp_of (prog : Prog.t) =
  { s_funcs = List.length prog.funcs;
    s_instrs = Prog.instr_count prog;
    s_next_reg = prog.next_reg;
    s_next_uid = prog.next_uid }

let cache : (Prog.t * stamp * t) list ref = ref []
let cache_mutex = Mutex.create ()
let cache_limit = 8

let cached prog =
  let stamp = stamp_of prog in
  Mutex.lock cache_mutex;
  let hit =
    List.find_opt (fun (p, s, _) -> p == prog && s = stamp) !cache
  in
  match hit with
  | Some (_, _, compiled) ->
    Mutex.unlock cache_mutex;
    compiled
  | None ->
    Mutex.unlock cache_mutex;
    let compiled = of_prog prog in
    Mutex.lock cache_mutex;
    let others = List.filter (fun (p, _, _) -> p != prog) !cache in
    cache :=
      (prog, stamp, compiled)
      :: (if List.length others >= cache_limit
          then List.filteri (fun i _ -> i < cache_limit - 1) others
          else others);
    Mutex.unlock cache_mutex;
    compiled
