open Ir

(** Word-addressed simulated memory.

    Memory is a set of disjoint allocated regions separated by large guard
    gaps; any access outside an allocated region raises {!Segfault}.  The
    gaps matter for fidelity to the paper's fault model: when a bit flip
    lands in an address computation, the access usually falls in a gap and
    produces a page-fault-like symptom (HWDetect) rather than silently
    hitting another object. *)

exception Segfault of int

type region = {
  base : int;
  size : int;
  cells : Value.t array;
}

type t = {
  mutable regions : region array;   (** sorted by base *)
  mutable next_base : int;
  mutable last : int;               (** index of the most recently hit region;
                                        accesses cluster, so checking it first
                                        skips the binary search almost always *)
  (* Undo journal for checkpoint/rollback recovery (see Snapshot): when
     enabled, every store appends (address, previous value) so any earlier
     memory state can be rebuilt by replaying the log backwards.  Off by
     default: the only hot-path cost when off is one boolean test per
     store. *)
  mutable undo_on : bool;
  mutable undo_addr : int array;
  mutable undo_prev : Value.t array;
  mutable undo_len : int;           (** valid entries in the arrays *)
  mutable undo_off : int;           (** absolute position of entry 0: marks
                                        store absolute positions so retiring
                                        old entries does not invalidate them *)
}

let guard_gap = 0x10000
let first_base = 0x40000

let create () =
  { regions = [||]; next_base = first_base; last = 0;
    undo_on = false; undo_addr = [||]; undo_prev = [||]; undo_len = 0;
    undo_off = 0 }

(** Allocate [size] words; returns the base address. *)
let alloc t size =
  if size < 0 then invalid_arg "Memory.alloc: negative size";
  let base = t.next_base in
  let region = { base; size; cells = Array.make (max size 1) Value.zero } in
  t.regions <- Array.append t.regions [| region |];
  (* Round the next base up so that single bit flips in low address bits
     stay inside the gap. *)
  t.next_base <- base + size + guard_gap - ((base + size) mod guard_gap);
  base

let find_region_slow t addr =
  (* Binary search over regions sorted by base; tracks the hit by index so
     every load/store stays allocation-free. *)
  let regions = t.regions in
  let lo = ref 0 and hi = ref (Array.length regions - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = regions.(mid) in
    if addr < r.base then hi := mid - 1
    else if addr >= r.base + r.size then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  if !found < 0 then raise (Segfault addr)
  else begin
    t.last <- !found;
    regions.(!found)
  end

let find_region t addr =
  let regions = t.regions in
  if t.last < Array.length regions then begin
    let r = regions.(t.last) in
    if addr >= r.base && addr - r.base < r.size then r
    else find_region_slow t addr
  end
  else find_region_slow t addr
  [@@inline]

(* find_region established base <= addr < base + size = length cells. *)
let load t addr =
  let r = find_region t addr in
  Array.unsafe_get r.cells (addr - r.base)
  [@@inline]

let undo_push t addr prev =
  let n = t.undo_len in
  if n = Array.length t.undo_addr then begin
    let cap = max 64 (2 * n) in
    let addr' = Array.make cap 0 and prev' = Array.make cap Value.zero in
    Array.blit t.undo_addr 0 addr' 0 n;
    Array.blit t.undo_prev 0 prev' 0 n;
    t.undo_addr <- addr';
    t.undo_prev <- prev'
  end;
  t.undo_addr.(n) <- addr;
  t.undo_prev.(n) <- prev;
  t.undo_len <- n + 1

let store t addr v =
  let r = find_region t addr in
  let i = addr - r.base in
  if t.undo_on then undo_push t addr (Array.unsafe_get r.cells i);
  Array.unsafe_set r.cells i v
  [@@inline]

(* ----- Undo journal: marks and rollback (checkpoint recovery) ----- *)

(** A point in the memory's history: region count, allocation cursor and
    undo-log position.  Valid as long as the undo log has not been rolled
    back past it. *)
type mark = {
  mk_regions : int;
  mk_next_base : int;
  mk_undo : int;
}

(** Start journaling stores (idempotent).  Only journaled history can be
    rolled back, so enable before the run's first store. *)
let enable_undo t = t.undo_on <- true

let undo_enabled t = t.undo_on

(** Total (absolute) undo entries recorded since journaling began. *)
let undo_length t = t.undo_off + t.undo_len

(** Undo entries recorded since [m] — the dirty-word count a checkpoint at
    [m] must have preserved (cost accounting). *)
let undo_since t (m : mark) = t.undo_off + t.undo_len - m.mk_undo

let mark t =
  { mk_regions = Array.length t.regions; mk_next_base = t.next_base;
    mk_undo = t.undo_off + t.undo_len }

(** Rewind the memory to [m]: replay the undo log backwards down to the
    mark (restoring every overwritten cell, oldest value last), drop the
    regions allocated since, and rewind the allocation cursor.  Requires
    journaling enabled at [m]'s creation and neither a rollback past [m]
    nor a {!retire} of [m]'s history since. *)
let rollback t (m : mark) =
  if m.mk_undo > t.undo_off + t.undo_len || m.mk_undo < t.undo_off
     || m.mk_regions > Array.length t.regions then
    invalid_arg "Memory.rollback: stale mark";
  for i = t.undo_len - 1 downto m.mk_undo - t.undo_off do
    let addr = t.undo_addr.(i) in
    let r = find_region t addr in
    r.cells.(addr - r.base) <- t.undo_prev.(i)
  done;
  t.undo_len <- m.mk_undo - t.undo_off;
  if Array.length t.regions > m.mk_regions then
    t.regions <- Array.sub t.regions 0 m.mk_regions;
  t.next_base <- m.mk_next_base;
  t.last <- 0

(** Drop undo entries older than [m]: nothing can roll back before it any
    more.  Called when a checkpoint is superseded, so the journal only ever
    holds the history the retained checkpoints might need — bounded by a
    couple of checkpoint intervals' worth of stores, not the whole run. *)
let retire t (m : mark) =
  let shift = m.mk_undo - t.undo_off in
  if shift > 0 then begin
    let keep = max 0 (t.undo_len - shift) in
    if keep > 0 then begin
      Array.blit t.undo_addr shift t.undo_addr 0 keep;
      Array.blit t.undo_prev shift t.undo_prev 0 keep
    end;
    t.undo_len <- keep;
    t.undo_off <- m.mk_undo
  end

(* ----- Whole-image capture and restore (golden-prefix forking) ----- *)

(** A deep, self-contained copy of the memory contents: every region's
    cells plus the allocation cursor.  Unlike a {!mark} (a position in the
    undo journal), an image does not depend on the journal's history, so it
    can restore a *different* [t] — the per-worker trial arenas restore the
    golden run's captured state into their own memory.  Immutable once
    captured; safe to share read-only across domains. *)
type image = {
  im_regions : region array;
  im_next_base : int;
}

let capture t =
  { im_regions =
      Array.map (fun r -> { r with cells = Array.copy r.cells }) t.regions;
    im_next_base = t.next_base }

(** Overwrite [t]'s entire contents with [im], reusing [t]'s existing cell
    arrays whenever the region layout matches (the steady state of an arena
    reset: a blit per region, no allocation).  The undo journal is emptied
    and journaling switched off — the restored state is a fresh starting
    point with no history; re-enable journaling afterwards if the run
    checkpoints. *)
let restore_image t (im : image) =
  let src = im.im_regions in
  let n = Array.length src in
  let old = t.regions in
  let n_old = Array.length old in
  let dst = if n_old = n then old else Array.sub src 0 n in
  for i = 0 to n - 1 do
    let s = src.(i) in
    if i < n_old && old.(i).base = s.base && old.(i).size = s.size then begin
      Array.blit s.cells 0 old.(i).cells 0 (Array.length s.cells);
      dst.(i) <- old.(i)
    end
    else dst.(i) <- { s with cells = Array.copy s.cells }
  done;
  t.regions <- dst;
  t.next_base <- im.im_next_base;
  t.last <- 0;
  t.undo_on <- false;
  t.undo_len <- 0;
  t.undo_off <- 0

(** Words an image pins (diagnostics / capture budgeting). *)
let image_words (im : image) =
  Array.fold_left (fun acc r -> acc + Array.length r.cells) 0 im.im_regions

(** Address extraction from a runtime value.  A float used as an address is a
    program error surfaced as a segfault-style trap; faults never change a
    value's kind, so this can only come from a workload bug. *)
let addr_of_value v =
  match v with
  | Value.Int i ->
    let a = Int64.to_int i in
    if Int64.of_int a <> i then raise (Segfault max_int) else a
  | Value.Float _ -> raise (Segfault min_int)

(* Bulk transfer helpers used by workload harnesses. *)

let write_values t base arr =
  Array.iteri (fun i v -> store t (base + i) v) arr

let write_ints t base arr =
  Array.iteri (fun i n -> store t (base + i) (Value.of_int n)) arr

let write_floats t base arr =
  Array.iteri (fun i f -> store t (base + i) (Value.of_float f)) arr

let read_values t base n = Array.init n (fun i -> load t (base + i))

let read_ints t base n =
  Array.init n (fun i -> Value.to_int (load t (base + i)))

let read_floats t base n =
  Array.init n (fun i -> Value.to_float (load t (base + i)))

(** Tolerant reads for possibly fault-corrupted output regions: any value
    kind is projected onto the reals, never raising. *)
let read_reals t base n =
  Array.init n (fun i -> Value.to_real (load t (base + i)))

let read_ints_tolerant t base n =
  Array.init n (fun i ->
    let r = Value.to_real (load t (base + i)) in
    if Float.is_finite r && Float.abs r < 1e18 then int_of_float r else 0)

(** Allocate a region and fill it. *)
let alloc_ints t arr =
  let base = alloc t (Array.length arr) in
  write_ints t base arr;
  base

let alloc_floats t arr =
  let base = alloc t (Array.length arr) in
  write_floats t base arr;
  base
