open Ir

(** Word-addressed simulated memory.

    Memory is a set of disjoint allocated regions separated by large guard
    gaps; any access outside an allocated region raises {!Segfault}.  The
    gaps matter for fidelity to the paper's fault model: when a bit flip
    lands in an address computation, the access usually falls in a gap and
    produces a page-fault-like symptom (HWDetect) rather than silently
    hitting another object. *)

exception Segfault of int

type region = {
  base : int;
  size : int;
  cells : Value.t array;
}

type t = {
  mutable regions : region array;   (** sorted by base *)
  mutable next_base : int;
  mutable last : int;               (** index of the most recently hit region;
                                        accesses cluster, so checking it first
                                        skips the binary search almost always *)
}

let guard_gap = 0x10000
let first_base = 0x40000

let create () = { regions = [||]; next_base = first_base; last = 0 }

(** Allocate [size] words; returns the base address. *)
let alloc t size =
  if size < 0 then invalid_arg "Memory.alloc: negative size";
  let base = t.next_base in
  let region = { base; size; cells = Array.make (max size 1) Value.zero } in
  t.regions <- Array.append t.regions [| region |];
  (* Round the next base up so that single bit flips in low address bits
     stay inside the gap. *)
  t.next_base <- base + size + guard_gap - ((base + size) mod guard_gap);
  base

let find_region_slow t addr =
  (* Binary search over regions sorted by base; tracks the hit by index so
     every load/store stays allocation-free. *)
  let regions = t.regions in
  let lo = ref 0 and hi = ref (Array.length regions - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = regions.(mid) in
    if addr < r.base then hi := mid - 1
    else if addr >= r.base + r.size then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  if !found < 0 then raise (Segfault addr)
  else begin
    t.last <- !found;
    regions.(!found)
  end

let find_region t addr =
  let regions = t.regions in
  if t.last < Array.length regions then begin
    let r = regions.(t.last) in
    if addr >= r.base && addr - r.base < r.size then r
    else find_region_slow t addr
  end
  else find_region_slow t addr
  [@@inline]

(* find_region established base <= addr < base + size = length cells. *)
let load t addr =
  let r = find_region t addr in
  Array.unsafe_get r.cells (addr - r.base)
  [@@inline]

let store t addr v =
  let r = find_region t addr in
  Array.unsafe_set r.cells (addr - r.base) v
  [@@inline]

(** Address extraction from a runtime value.  A float used as an address is a
    program error surfaced as a segfault-style trap; faults never change a
    value's kind, so this can only come from a workload bug. *)
let addr_of_value v =
  match v with
  | Value.Int i ->
    let a = Int64.to_int i in
    if Int64.of_int a <> i then raise (Segfault max_int) else a
  | Value.Float _ -> raise (Segfault min_int)

(* Bulk transfer helpers used by workload harnesses. *)

let write_values t base arr =
  Array.iteri (fun i v -> store t (base + i) v) arr

let write_ints t base arr =
  Array.iteri (fun i n -> store t (base + i) (Value.of_int n)) arr

let write_floats t base arr =
  Array.iteri (fun i f -> store t (base + i) (Value.of_float f)) arr

let read_values t base n = Array.init n (fun i -> load t (base + i))

let read_ints t base n =
  Array.init n (fun i -> Value.to_int (load t (base + i)))

let read_floats t base n =
  Array.init n (fun i -> Value.to_float (load t (base + i)))

(** Tolerant reads for possibly fault-corrupted output regions: any value
    kind is projected onto the reals, never raising. *)
let read_reals t base n =
  Array.init n (fun i -> Value.to_real (load t (base + i)))

let read_ints_tolerant t base n =
  Array.init n (fun i ->
    let r = Value.to_real (load t (base + i)) in
    if Float.is_finite r && Float.abs r < 1e18 then int_of_float r else 0)

(** Allocate a region and fill it. *)
let alloc_ints t arr =
  let base = alloc t (Array.length arr) in
  write_ints t base arr;
  base

let alloc_floats t arr =
  let base = alloc t (Array.length arr) in
  write_floats t base arr;
  base
