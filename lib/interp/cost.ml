open Ir

(** Per-instruction cycle cost model.

    The paper measures overheads on a GEM5 out-of-order ARMv7-a model
    (Table II).  We use a simple scalar latency model: absolute cycle counts
    are meaningless compared to GEM5, but the *ratios* between program
    variants — which is all the paper's Figure 12 reports — depend mainly on
    the instruction mix, which the model captures. *)

let binop (op : Opcode.binop) =
  match op with
  | Add | Sub | And | Or | Xor | Shl | Lshr | Ashr -> 1
  | Mul -> 3
  | Sdiv | Srem -> 12
  | Fadd | Fsub -> 2
  | Fmul -> 3
  | Fdiv -> 10

let unop (op : Opcode.unop) =
  match op with
  | Neg | Not | Fneg | Fabs -> 1
  | Float_of_int | Int_of_float -> 2
  | Fsqrt -> 12

(* All check shapes retire as a compare(+compare)-and-branch bundle; on the
   2-wide core that is one visible cycle. *)
let check_kind (ck : Instr.check_kind) =
  match ck with
  | Single _ | Double _ | Range _ -> 1

(* The paper's machine is a 2-issue out-of-order core (Table II).  Shadow
   computations inserted by the duplication passes are independent of the
   original dataflow, so the core issues them in spare slots: *sparse*
   duplication (state-variable chains) is nearly free, while *dense*
   duplication (the full-duplication baseline) saturates issue bandwidth
   and pays close to full price — exactly the 7.6 % vs 57 % split the
   paper reports.  The machine models this with a slack-credit account:
   every source instruction accrues [slack_gain] credit (capped by the
   scheduling window), and a shadow instruction either spends
   [slack_cost] credit and issues for free or pays [shadow_slot] cycle.
   Checks are real compare-and-branch work on the commit path and always
   pay their latency. *)
let shadow_slot = 1
let slack_gain = 6
let slack_cost = 20       (* i.e. ~0.3 free shadow slots per source instr *)
let slack_cap = 160       (* a ~27-instruction scheduling window *)

(* Checkpoint/rollback recovery (DESIGN.md §9).  A checkpoint copies the
   live register state of every frame and seals the memory undo log; the
   copy streams at [checkpoint_bandwidth] words per cycle on top of a fixed
   [checkpoint_base] (pipeline drain + bookkeeping).  A rollback restores
   the same state in the other direction and additionally pays a full
   pipeline flush.  The replayed instructions between the restored
   checkpoint and the detection point are charged at their normal cost by
   re-execution, so total trial cycles honestly include the wasted work. *)
let checkpoint_base = 32
let checkpoint_bandwidth = 4
let rollback_flush = 64

let checkpoint ~words = checkpoint_base + (words / checkpoint_bandwidth)
let rollback ~words = rollback_flush + (words / checkpoint_bandwidth)

(* Named so the static plan predictor (Analysis.Predict via
   Softft.Optimize.cost_model) prices comparisons identically to the
   interpreter. *)
let dup_check = 1

let instr (ins : Instr.t) =
  match ins.kind with
  | Binop (op, _, _) -> binop op
  | Unop (op, _) -> unop op
  | Icmp _ | Fcmp _ -> 1
  | Select _ -> 1
  | Const _ -> 1
  | Load _ -> 3
  | Store _ -> 2
  | Alloc _ -> 8
  | Call _ -> 4
  | Dup_check _ -> dup_check
  | Value_check (ck, _) -> check_kind ck

(* Phi nodes are SSA bookkeeping (register renaming); they produce no
   machine instructions. *)
let phi = 0
let jmp = 1
let br = 2
let ret = 2

(** Table II analogue: the parameters of the simulated machine. *)
let describe () =
  [ ("Simulation configuration", "IR interpreter, scalar latency model");
    ("Simulation mode", "syscall-free kernels, word-addressed memory");
    ("Integer add/logic", "1 cycle");
    ("Integer multiply", "3 cycles");
    ("Integer divide", "12 cycles");
    ("FP add/sub", "2 cycles");
    ("FP multiply", "3 cycles");
    ("FP divide / sqrt", "10-12 cycles");
    ("Load", "3 cycles");
    ("Store", "2 cycles");
    ("Branch", "2 cycles (taken or not)");
    ("Issue width", "2 (shadow instructions fill spare slots: 1 cycle)");
    ("Duplication check", "1 cycle");
    ("Value check", "1 cycle (issue slot)");
    ("HWDetect symptom window", "1000 dynamic instructions");
    ("Checkpoint", "32 cycles + 1 cycle per 4 live-state words");
    ("Rollback", "64 cycles + 1 cycle per 4 restored words, then replay");
  ]
