(** Shadow taint state for fault-propagation tracing (DESIGN.md §10).

    When [Machine.config.taint_trace] is on, the interpreter carries one
    shadow bit per register slot (per frame) and per memory word.  The bit
    is seeded at the injection site and propagated through every
    value-producing instruction, load and store, so a trial can answer the
    question the outcome alone cannot: *where did the corruption go?*

    The tracer is strictly observation-only.  It never reads machine state
    through the accessors that refresh the recent-register ring (fault
    targeting depends on that ring), never allocates on the hot path when
    tracing is off, and never influences values, costs or control flow —
    execution is bit-identical with tracing on or off, at any domain
    count. *)

(** Per-frame shadow register file: one bit per register slot plus the
    count of set bits (so dropping a frame on return is O(1)). *)
type regs = { bits : bool array; mutable n : int }

(** Shared placeholder for frames of untraced runs; never written. *)
let no_regs = { bits = [||]; n = 0 }

let fresh_regs size = { bits = Array.make size false; n = 0 }

type event_kind =
  | Seed      (** the injection landed; taint born *)
  | Def       (** a value-producing instruction consumed taint *)
  | Load      (** a load read a tainted word (or used a tainted address) *)
  | Store     (** a tainted value (or address) reached memory *)
  | Branch    (** a conditional branched on a tainted condition *)
  | Check     (** a software check inspected a tainted operand *)
  | Died      (** the last tainted register/word was overwritten *)

let kind_name = function
  | Seed -> "seed"
  | Def -> "def"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Check -> "check"
  | Died -> "died"

type event = {
  ev_kind : event_kind;
  ev_step : int;   (** absolute dynamic step of the event *)
  ev_uid : int;    (** static instruction uid; -1 when not applicable *)
  ev_addr : int;   (** memory word address; -1 for non-memory events *)
}

(** Only the first [event_limit] events are retained verbatim (a long USDC
    run touches millions); the total is still counted. *)
let event_limit = 64

type t = {
  mutable seeded : bool;
  mutable inj_step : int;
  mutable regs_cur : int;   (** tainted registers across all live frames *)
  mutable regs_hwm : int;
  mem : (int, unit) Hashtbl.t;    (** currently tainted memory words *)
  seen : (int, unit) Hashtbl.t;   (** words ever tainted *)
  mutable mem_ever : int;
  mutable first_store : int option;    (** absolute steps; distances are
                                           computed by {!summarize} *)
  mutable first_branch : int option;
  mutable died_at : int option;
  mutable ret_tainted : bool;
  mutable events_rev : event list;
  mutable events_n : int;
  mutable events_total : int;
}

let create () =
  { seeded = false; inj_step = 0; regs_cur = 0; regs_hwm = 0;
    mem = Hashtbl.create 64; seen = Hashtbl.create 64; mem_ever = 0;
    first_store = None; first_branch = None; died_at = None;
    ret_tainted = false; events_rev = []; events_n = 0; events_total = 0 }

let note_event tr kind ~step ~uid ~addr =
  tr.events_total <- tr.events_total + 1;
  if tr.events_n < event_limit then begin
    tr.events_rev <-
      { ev_kind = kind; ev_step = step; ev_uid = uid; ev_addr = addr }
      :: tr.events_rev;
    tr.events_n <- tr.events_n + 1
  end

let alive tr = tr.regs_cur > 0 || Hashtbl.length tr.mem > 0

(* Taint cannot revive once every carrier is gone (a clean value cannot
   become tainted), so the first death is the only one. *)
let death_check tr ~step =
  if tr.seeded && tr.died_at = None && not (alive tr) then begin
    tr.died_at <- Some step;
    note_event tr Died ~step ~uid:(-1) ~addr:(-1)
  end

let reg_tainted (regs : regs) r = r >= 0 && Array.unsafe_get regs.bits r

(** Set register [r]'s taint bit, maintaining the global count, high-water
    mark and death detection.  [r < 0] (no destination) is a no-op. *)
let set_reg tr (regs : regs) r tainted ~step =
  if r >= 0 then begin
    let cur = Array.unsafe_get regs.bits r in
    if tainted then begin
      if not cur then begin
        Array.unsafe_set regs.bits r true;
        regs.n <- regs.n + 1;
        tr.regs_cur <- tr.regs_cur + 1;
        if tr.regs_cur > tr.regs_hwm then tr.regs_hwm <- tr.regs_cur
      end
    end
    else if cur then begin
      Array.unsafe_set regs.bits r false;
      regs.n <- regs.n - 1;
      tr.regs_cur <- tr.regs_cur - 1;
      death_check tr ~step
    end
  end

let def tr regs ~dest ~tainted ~uid ~step =
  set_reg tr regs dest tainted ~step;
  if tainted then note_event tr Def ~step ~uid ~addr:(-1)

let mem_tainted tr addr = Hashtbl.mem tr.mem addr

let set_mem tr addr tainted ~step =
  if tainted then begin
    if not (Hashtbl.mem tr.mem addr) then Hashtbl.replace tr.mem addr ();
    if not (Hashtbl.mem tr.seen addr) then begin
      Hashtbl.replace tr.seen addr ();
      tr.mem_ever <- tr.mem_ever + 1
    end
  end
  else if Hashtbl.mem tr.mem addr then begin
    (* An untainted store over a tainted word scrubs it. *)
    Hashtbl.remove tr.mem addr;
    death_check tr ~step
  end

let load tr regs ~dest ~addr ~addr_tainted ~uid ~step =
  let tainted = addr_tainted || mem_tainted tr addr in
  set_reg tr regs dest tainted ~step;
  if tainted then note_event tr Load ~step ~uid ~addr

let store tr ~addr ~tainted ~uid ~step =
  set_mem tr addr tainted ~step;
  if tainted then begin
    (match tr.first_store with
     | None -> tr.first_store <- Some step
     | Some _ -> ());
    note_event tr Store ~step ~uid ~addr
  end

let branch tr ~step =
  (match tr.first_branch with
   | None -> tr.first_branch <- Some step
   | Some _ -> ());
  note_event tr Branch ~step ~uid:(-1) ~addr:(-1)

let check tr ~uid ~step = note_event tr Check ~step ~uid ~addr:(-1)

let seed tr regs ~reg ~step =
  tr.seeded <- true;
  tr.inj_step <- step;
  note_event tr Seed ~step ~uid:(-1) ~addr:(-1);
  if reg >= 0 then set_reg tr regs reg true ~step

(* A branch-target corruption touches no register, so it seeds no data
   taint: the tracer records the seed and the immediate death of the (empty)
   taint set.  Data-flow tracing deliberately does not model implicit
   (control-dependence) flows; see DESIGN.md §10. *)
let seed_control tr ~step =
  tr.seeded <- true;
  tr.inj_step <- step;
  note_event tr Seed ~step ~uid:(-1) ~addr:(-1);
  death_check tr ~step

(** The returning frame's taint leaves the machine; the caller accounts the
    return value separately ([set_reg] on the caller's destination), then
    runs {!death_check}. *)
let drop_frame tr (regs : regs) =
  if regs.n > 0 then tr.regs_cur <- tr.regs_cur - regs.n

let set_ret tr tainted = tr.ret_tainted <- tainted

(** A checkpoint rollback erases the transient fault's architectural
    effects: all shadow state is cleared (the machine replaces the frames'
    shadow registers with fresh ones) and the death is recorded at the
    rollback step. *)
let rollback tr ~step =
  tr.regs_cur <- 0;
  Hashtbl.reset tr.mem;
  death_check tr ~step

type summary = {
  ts_seeded : bool;
  ts_inj_step : int;
  ts_reg_hwm : int;
  ts_mem_words : int;
  ts_first_store : int option;
  ts_first_branch : int option;
  ts_died_at : int option;
  ts_end_distance : int option;
  ts_output_tainted : bool;
  ts_events : event list;
  ts_events_total : int;
}

let summarize tr ~end_step =
  let dist s = s - tr.inj_step in
  { ts_seeded = tr.seeded;
    ts_inj_step = (if tr.seeded then tr.inj_step else 0);
    ts_reg_hwm = tr.regs_hwm;
    ts_mem_words = tr.mem_ever;
    ts_first_store = Option.map dist tr.first_store;
    ts_first_branch = Option.map dist tr.first_branch;
    ts_died_at = Option.map dist tr.died_at;
    ts_end_distance = (if tr.seeded then Some (end_step - tr.inj_step) else None);
    ts_output_tainted = tr.ret_tainted || Hashtbl.length tr.mem > 0;
    ts_events = List.rev tr.events_rev;
    ts_events_total = tr.events_total }
