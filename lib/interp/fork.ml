(** Golden-prefix snapshot forking (DESIGN.md §12).

    Every fault-injection trial executes a fault-free prefix that is
    bit-identical to the golden run up to its injection step: the seeds,
    inputs and code are the same, and every value check that fails without
    a fault is disabled for trials, so the two executions cannot diverge
    before the flip.  A campaign therefore captures resumable machine
    snapshots *during one golden pass* — at a fixed step stride — and each
    trial starts from the newest snapshot strictly before its [at_step]
    instead of re-executing the prefix.

    A fork snapshot is a deep, immutable copy of everything a resumed run
    needs: the frame stack (register files, rings, control positions), the
    full memory image, and the counters a from-scratch run would carry at
    that step (steps, cycles, slack credit, recorded check failures).
    When the run checkpoints, snapshots are only taken at checkpoint
    events, and additionally record the golden checkpoint's footprint so
    the resumed trial can synthesize the checkpoint it would hold
    ({!Snapshot.resume}) — keeping rollback targets and costs
    bit-identical.

    Snapshots are read-only after capture and safe to share across
    domains: resuming copies out of them, never into them. *)

(** The checkpoint the golden run took at the capture step, recorded so a
    resumed trial reproduces the checkpoint state a from-scratch run would
    hold.  Present iff the capture run checkpointed. *)
type ckpt = {
  fc_words : int;   (** {!Snapshot.words} of that golden checkpoint *)
  fc_cycles : int;  (** cycle counter at its creation (before the
                        checkpoint cost was charged) *)
  fc_count : int;   (** checkpoints taken in the prefix, inclusive *)
}

type snap = {
  fk_step : int;            (** step counter at capture (between instructions) *)
  fk_cycles : int;          (** cycle counter to resume with (after any
                                checkpoint cost charged at this step) *)
  fk_frames : Snapshot.frame_snap list;  (** call stack, innermost first *)
  fk_mem : Memory.image;    (** deep copy of the whole memory *)
  fk_valchk_failures : int; (** ignored-check failures so far *)
  fk_failed_uids : int list;(** distinct uids of those checks, sorted *)
  fk_slack_credit : int;    (** spare-issue-slot account (see Cost) *)
  fk_ckpt : ckpt option;    (** [Some] iff the capture run checkpointed *)
}

(** A capture in progress: {!Machine.run_compiled} appends a snapshot
    whenever the step counter crosses the next stride boundary (at a loop
    head — or, when checkpointing, exactly at a checkpoint event, so the
    capture point is a consistent resume position either way). *)
type plan = {
  fp_stride : int;
  mutable fp_snaps : snap list;   (** newest first during capture *)
}

let plan ~stride =
  if stride <= 0 then invalid_arg "Fork.plan: stride must be positive";
  { fp_stride = stride; fp_snaps = [] }

(** Captured snapshots in ascending step order; a stride larger than the
    run's step count yields [[||]] (callers then fall back to
    from-scratch execution). *)
let finalize plan = Array.of_list (List.rev plan.fp_snaps)

(** Newest snapshot strictly before [at_step], or [None] (run from
    scratch).  Strictly: the injection lands while executing the
    instruction that advances the counter *to* [at_step], so a snapshot
    taken at [at_step] would already be past the from-scratch injection
    point. *)
let best snaps ~at_step =
  let n = Array.length snaps in
  let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if snaps.(mid).fk_step < at_step then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !found < 0 then None else Some snaps.(!found)

(** Memory words the snapshot array pins, for capture budgeting. *)
let words snaps =
  Array.fold_left (fun acc s -> acc + Memory.image_words s.fk_mem) 0 snaps
