(** Machine checkpoints for rollback recovery (DESIGN.md §9).

    A snapshot captures everything a run needs to resume from an earlier
    step: the call stack's register files and control positions
    ({!frame_snap}, captured by {!Machine} which owns the live frame
    representation) and a {!Memory.mark} into the memory undo journal.
    Cost is O(live state): registers are copied eagerly (a frame is a few
    hundred words), memory is *not* copied — the journal records
    overwritten cells as stores happen, and {!Memory.rollback} replays it
    backwards on restore.

    Snapshots are taken every [checkpoint_interval] dynamic instructions
    by {!Machine} when recovery is enabled; the machine keeps the two most
    recent so that a detection whose latency is below the interval always
    finds a checkpoint that predates the fault ({!predates}). *)

(** One frame of the captured call stack.  [fs_block]/[fs_idx] are the
    resume position (block index, next body-instruction index); the
    arrays are private copies, never aliased with live machine state. *)
type frame_snap = {
  fs_cfunc : Compiled.cfunc;
  fs_values : Ir.Value.t array;
  fs_defined : bool array;
  fs_recent : int array;
  fs_recent_n : int;
  fs_recent_pos : int;
  fs_block : int;
  fs_idx : int;
  fs_prev_block : int;
  fs_ret_dest : Ir.Instr.reg option;
}

type t = {
  sn_step : int;              (** step counter at capture *)
  sn_cycles : int;            (** cycle counter at capture *)
  sn_frames : frame_snap list;(** call stack, innermost first *)
  sn_mem : Memory.mark;       (** undo-journal position at capture *)
  sn_words : int;             (** live-state words, for cost accounting *)
}

(** Build a snapshot; takes the {!Memory.mark} itself.  [frames] is the
    captured stack (innermost first); [dirty_words] is the store count
    since the previous checkpoint ({!Memory.undo_since}), charged as the
    copy-on-checkpoint cost of the memory state. *)
val create :
  step:int ->
  cycles:int ->
  frames:frame_snap list ->
  mem:Memory.t ->
  dirty_words:int ->
  t

(** Rebuild the checkpoint a golden-prefix-forked run holds at its fork
    step ({!Fork}): [frames] are the fork snapshot's frame snaps, the
    {!Memory.mark} is taken on the trial's own just-reset undo journal,
    and [words] is the footprint the corresponding golden checkpoint
    recorded — so a later rollback restores the same state and charges the
    same {!Cost.rollback} as a from-scratch run's checkpoint would. *)
val resume :
  step:int ->
  cycles:int ->
  frames:frame_snap list ->
  mem:Memory.t ->
  words:int ->
  t

(** Live-state words the checkpoint preserved ({!Cost.checkpoint} input). *)
val words : t -> int

val step : t -> int

(** Does the snapshot predate a fault injected at [inj_step] (i.e. is its
    state guaranteed clean)?  True iff [sn_step < inj_step]: the injection
    lands while executing the instruction that advances the counter to
    [inj_step], and snapshots are taken between instructions. *)
val predates : t -> inj_step:int -> bool
