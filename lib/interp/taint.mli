(** Shadow taint state for fault-propagation tracing (DESIGN.md §10).

    One shadow bit per register slot (per frame) and per memory word,
    seeded at the injection site and propagated by {!Machine} through
    every value-producing instruction, load and store when
    [config.taint_trace] is on.  Strictly observation-only: the tracer
    never touches the recent-register ring or any other state the fault
    model observes, so execution, costs and outcomes are bit-identical
    with tracing on or off, at any domain count. *)

(** Per-frame shadow register file: one bit per register slot plus the
    count of set bits (so dropping a frame on return is O(1)). *)
type regs = { bits : bool array; mutable n : int }

(** Shared empty placeholder for frames of untraced runs; never written. *)
val no_regs : regs

val fresh_regs : int -> regs

type event_kind =
  | Seed      (** the injection landed; taint born *)
  | Def       (** a value-producing instruction consumed taint *)
  | Load      (** a load read a tainted word (or used a tainted address) *)
  | Store     (** a tainted value (or address) reached memory *)
  | Branch    (** a conditional branched on a tainted condition *)
  | Check     (** a software check inspected a tainted operand *)
  | Died      (** the last tainted register/word was overwritten *)

val kind_name : event_kind -> string

type event = {
  ev_kind : event_kind;
  ev_step : int;   (** absolute dynamic step of the event *)
  ev_uid : int;    (** static instruction uid; -1 when not applicable *)
  ev_addr : int;   (** memory word address; -1 for non-memory events *)
}

(** How many events {!summary.ts_events} retains verbatim (64); the total
    is still counted in {!summary.ts_events_total}. *)
val event_limit : int

(** One run's tracer state.  Single-run, single-domain: campaigns create
    one per trial. *)
type t

val create : unit -> t

val reg_tainted : regs -> int -> bool
val mem_tainted : t -> int -> bool

(** [set_reg t regs r tainted ~step] sets register [r]'s shadow bit,
    maintaining the global tainted-register count, the high-water mark and
    death detection.  [r < 0] (no destination) is a no-op. *)
val set_reg : t -> regs -> int -> bool -> step:int -> unit

(** {!set_reg} plus a [Def] propagation event when [tainted]. *)
val def : t -> regs -> dest:int -> tainted:bool -> uid:int -> step:int -> unit

(** Taint flow through a load: destination becomes tainted iff the address
    register or the addressed word is tainted. *)
val load :
  t -> regs -> dest:int -> addr:int -> addr_tainted:bool -> uid:int ->
  step:int -> unit

(** Taint flow through a store: the word becomes tainted iff the stored
    value or the address is; an untainted store scrubs a tainted word. *)
val store : t -> addr:int -> tainted:bool -> uid:int -> step:int -> unit

(** A conditional branched on a tainted condition. *)
val branch : t -> step:int -> unit

(** A software check inspected a tainted operand. *)
val check : t -> uid:int -> step:int -> unit

(** Seed taint at the injection site: the flipped register of the active
    frame.  [reg < 0] records the seed without tainting a register. *)
val seed : t -> regs -> reg:int -> step:int -> unit

(** Seed for a branch-target corruption: no register is touched, so no
    data taint is born (implicit control flows are not modelled; DESIGN.md
    §10) — the seed and the immediate death are recorded. *)
val seed_control : t -> step:int -> unit

(** The returning frame's shadow registers leave the machine.  The caller
    accounts the returned value separately ({!set_reg} on its destination)
    and then runs {!death_check}. *)
val drop_frame : t -> regs -> unit

(** Record whether the program's final return value was tainted. *)
val set_ret : t -> bool -> unit

(** Record the death of the taint set if it is empty (idempotent). *)
val death_check : t -> step:int -> unit

(** A checkpoint rollback erased the transient fault: clear all shadow
    state and record the death at the rollback step.  The machine replaces
    the frames' shadow registers with fresh ones alongside. *)
val rollback : t -> step:int -> unit

(** Per-trial propagation summary, the journal payload.  All [*_store],
    [*_branch], [died_at] and [end_distance] fields are dynamic-instruction
    distances from the injection step. *)
type summary = {
  ts_seeded : bool;            (** the fault actually landed *)
  ts_inj_step : int;           (** absolute seed step; 0 when unseeded *)
  ts_reg_hwm : int;            (** tainted-register high-water mark *)
  ts_mem_words : int;          (** distinct memory words ever tainted *)
  ts_first_store : int option;   (** distance to the first tainted store *)
  ts_first_branch : int option;  (** distance to the first tainted branch *)
  ts_died_at : int option;       (** distance at which taint died, if it did *)
  ts_end_distance : int option;  (** distance from seed to detection-or-end *)
  ts_output_tainted : bool;    (** taint reached the program output: the
                                   returned value, or memory words still
                                   tainted when the run stopped *)
  ts_events : event list;      (** first {!event_limit} events, in order *)
  ts_events_total : int;
}

val summarize : t -> end_step:int -> summary
