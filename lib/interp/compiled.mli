(** One-time lowering of a program to an interpreter-friendly form.

    String block labels become integer indices into per-function block
    arrays, call targets become function indices, and phi incoming lists
    become predecessor-index arrays — so the interpreter's hot path (branch,
    call, phi) does integer compares instead of hashing strings and
    scanning association lists.

    Instructions are lowered to flat records with int-coded operands
    ({!cinstr}); the compiled form is a snapshot of the source program.
    Compile after all transforms; recompile after editing. *)

(** A phi batch entry: destination register plus parallel arrays of
    (predecessor block index, incoming operand).  Unknown labels compile to
    predecessor [-2], which matches no runtime predecessor (the entry
    pseudo-predecessor is [-1]). *)
type cphi = {
  cp_dest : Ir.Instr.reg;
  cp_preds : int array;
  cp_ops : Ir.Instr.operand array;
}

(** Terminator with targets resolved to block indices; the original labels
    ride along for error reporting.  A missing label compiles to [-1] and
    traps only if the edge is taken, as the uncompiled interpreter did. *)
type cterm =
  | Cret of Ir.Instr.operand option
  | Cjmp of int * string
  | Cbr of Ir.Instr.operand * int * string * int * string

(** Operand code: a register index ([>= 0]) or [lnot i] for the [i]-th
    entry of the program's immediate pool ({!t.imms}). *)
type code = int

(** Fully lowered instruction: destinations are plain ints ([-1] = none),
    operands are {!code}s, call targets are resolved function indices. *)
type cinstr =
  | CAdd of { uid : int; dest : int; a : code; b : code }
  | CSub of { uid : int; dest : int; a : code; b : code }
  | CBinop of { op : Ir.Opcode.binop; uid : int; dest : int; a : code; b : code }
  | CUnop of { op : Ir.Opcode.unop; uid : int; dest : int; a : code }
  | CIcmp of { op : Ir.Opcode.icmp; dest : int; a : code; b : code }
  | CFcmp of { op : Ir.Opcode.fcmp; dest : int; a : code; b : code }
  | CSelect of { uid : int; dest : int; c : code; a : code; b : code }
  | CConst of { dest : int; v : Ir.Value.t }
  | CLoad of { uid : int; dest : int; a : code }
  | CStore of { uid : int; a : code; v : code }
  | CAlloc of { dest : int; n : code }
  | CCall of { name : string; callee : int;  (** -1: not in the program *)
               args : Ir.Instr.operand list; dest : Ir.Instr.reg option }
  | CDup_check of { uid : int; a : code; b : code }
  | CValue_check of { uid : int; ck : Ir.Instr.check_kind; a : code }

type cblock = {
  cb_index : int;
  cb_label : string;
  cb_phis : cphi array;
  cb_code : cinstr array;      (** the lowered body *)
  cb_meta : int array;         (** per body slot: base cycle cost (low byte)
                                   and origin code (next byte), decoded with
                                   {!meta_cost} / {!meta_origin} *)
  cb_has_call : bool;          (** whether any body instruction is a call *)
  cb_term : cterm;
}

(** Origin codes stored in {!cblock.cb_meta}. *)
val origin_source : int
val origin_duplicated : int
val origin_check : int

val meta_cost : int -> int
val meta_origin : int -> int

type cfunc = {
  cf_name : string;
  cf_params : Ir.Instr.reg list;
  cf_blocks : cblock array;    (** in layout order, entry first *)
  cf_entry : int;
}

type t = {
  source : Ir.Prog.t;
  funcs : cfunc array;
  func_index : (string, int) Hashtbl.t;
  imms : Ir.Value.t array;     (** immediate-operand pool; see {!code} *)
  next_reg : int;
  max_phis : int;              (** widest phi batch; sizes machine scratch *)
}

(** Lower a program.  O(static program size). *)
val of_prog : Ir.Prog.t -> t

(** Memoized {!of_prog}, keyed by physical program identity and validated
    against a structural stamp (function count, instruction count, counter
    values) so in-place transformations force recompilation.  Safe to call
    from multiple domains. *)
val cached : Ir.Prog.t -> t

(** [find_func t name] mirrors {!Ir.Prog.find_func}, including the
    [Invalid_argument] it raises for unknown names. *)
val find_func : t -> string -> cfunc

val find_func_index : t -> string -> int option
