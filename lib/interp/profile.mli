(** Interpreter execution profiling: per-opcode-class dynamic counts,
    per-block execution counts and check execute/fire counters.

    A profile is attached to one run via {!Machine.config.profile}; when
    the field is [None] the interpreter pays a single pointer test per
    recorded event and nothing else.  Profiles are observation-only —
    they never feed back into execution, so a profiled run is
    bit-identical to a bare one (the observability determinism contract,
    DESIGN.md §8).

    A profile instance is plainly mutable and NOT domain-safe: give each
    run (or each campaign trial) its own instance and combine them with
    {!merge_into} afterwards, in a deterministic order. *)

type t

val create : unit -> t
val reset : t -> unit

(** Accumulate [src] into [dst] (bucket-wise sums). *)
val merge_into : dst:t -> t -> unit

(** {2 Recording — called by {!Machine}, only when profiling is on} *)

val note_instr : t -> Compiled.cinstr -> unit

(** [note_block p func_name n_blocks block_idx] counts one execution of
    the block. *)
val note_block : t -> string -> int -> int -> unit

val note_check_exec : t -> int -> unit
val note_check_fire : t -> int -> unit

(** {2 Views} *)

(** Dynamic instructions recorded (sum over opcode classes). *)
val total_instrs : t -> int

(** Opcode classes with nonzero dynamic counts, heaviest first. *)
val opcode_rows : t -> (string * int) list

(** [(func, block_index, executions)], hottest first, at most [limit]. *)
val hot_blocks : ?limit:int -> t -> (string * int * int) list

(** [(check_uid, executed, fired)] for every check that executed,
    by uid. *)
val check_rows : t -> (int * int * int) list

(** Per-block execution counts of [func], indexed in block layout order
    (the node ids of [Analysis.Cfg]); [None] if the function never ran.
    Returns a copy — mutating it does not touch the profile. *)
val func_block_counts : t -> string -> int array option
