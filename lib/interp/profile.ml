(** Interpreter execution profiling; see the interface for the contract. *)

(* Opcode classes mirror the {!Compiled.cinstr} constructors: the dynamic
   mix of micro-ops is the quantity that explains where trial time goes. *)
let class_names =
  [| "add"; "sub"; "binop"; "unop"; "icmp"; "fcmp"; "select"; "const";
     "load"; "store"; "alloc"; "call"; "dup_check"; "value_check" |]

let n_classes = Array.length class_names

let class_of = function
  | Compiled.CAdd _ -> 0
  | Compiled.CSub _ -> 1
  | Compiled.CBinop _ -> 2
  | Compiled.CUnop _ -> 3
  | Compiled.CIcmp _ -> 4
  | Compiled.CFcmp _ -> 5
  | Compiled.CSelect _ -> 6
  | Compiled.CConst _ -> 7
  | Compiled.CLoad _ -> 8
  | Compiled.CStore _ -> 9
  | Compiled.CAlloc _ -> 10
  | Compiled.CCall _ -> 11
  | Compiled.CDup_check _ -> 12
  | Compiled.CValue_check _ -> 13

type t = {
  opcode_counts : int array;
  block_counts : (string, int array) Hashtbl.t;
  check_exec : (int, int ref) Hashtbl.t;
  check_fired : (int, int ref) Hashtbl.t;
}

let create () =
  { opcode_counts = Array.make n_classes 0;
    block_counts = Hashtbl.create 8;
    check_exec = Hashtbl.create 8;
    check_fired = Hashtbl.create 8 }

let reset t =
  Array.fill t.opcode_counts 0 n_classes 0;
  Hashtbl.reset t.block_counts;
  Hashtbl.reset t.check_exec;
  Hashtbl.reset t.check_fired

let note_instr t ci =
  let c = class_of ci in
  t.opcode_counts.(c) <- t.opcode_counts.(c) + 1
  [@@inline]

let note_block t func_name n_blocks block_idx =
  let counts =
    match Hashtbl.find_opt t.block_counts func_name with
    | Some a -> a
    | None ->
      let a = Array.make n_blocks 0 in
      Hashtbl.replace t.block_counts func_name a;
      a
  in
  counts.(block_idx) <- counts.(block_idx) + 1

let bump table uid =
  match Hashtbl.find_opt table uid with
  | Some r -> r := !r + 1
  | None -> Hashtbl.replace table uid (ref 1)

let note_check_exec t uid = bump t.check_exec uid
let note_check_fire t uid = bump t.check_fired uid

let bump_by table uid n =
  match Hashtbl.find_opt table uid with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace table uid (ref n)

let merge_into ~dst src =
  for i = 0 to n_classes - 1 do
    dst.opcode_counts.(i) <- dst.opcode_counts.(i) + src.opcode_counts.(i)
  done;
  Hashtbl.iter
    (fun name counts ->
      match Hashtbl.find_opt dst.block_counts name with
      | Some existing when Array.length existing = Array.length counts ->
        Array.iteri (fun i n -> existing.(i) <- existing.(i) + n) counts
      | Some _ | None ->
        (* First sight of the function (or a shape mismatch from profiles
           of different programs — callers should not mix those; keep the
           longer array to stay total). *)
        Hashtbl.replace dst.block_counts name (Array.copy counts))
    src.block_counts;
  Hashtbl.iter (fun uid r -> bump_by dst.check_exec uid !r) src.check_exec;
  Hashtbl.iter (fun uid r -> bump_by dst.check_fired uid !r) src.check_fired

let total_instrs t = Array.fold_left ( + ) 0 t.opcode_counts

let opcode_rows t =
  let rows = ref [] in
  for i = n_classes - 1 downto 0 do
    if t.opcode_counts.(i) > 0 then
      rows := (class_names.(i), t.opcode_counts.(i)) :: !rows
  done;
  List.stable_sort (fun (_, a) (_, b) -> compare b a) !rows

let hot_blocks ?(limit = 10) t =
  let rows = ref [] in
  Hashtbl.iter
    (fun name counts ->
      Array.iteri
        (fun i n -> if n > 0 then rows := (name, i, n) :: !rows)
        counts)
    t.block_counts;
  let sorted =
    List.sort
      (fun (fa, ia, na) (fb, ib, nb) ->
        match compare nb na with 0 -> compare (fa, ia) (fb, ib) | c -> c)
      !rows
  in
  List.filteri (fun i _ -> i < limit) sorted

let func_block_counts t func =
  Option.map Array.copy (Hashtbl.find_opt t.block_counts func)

let check_rows t =
  let uids = Hashtbl.create 8 in
  Hashtbl.iter (fun uid _ -> Hashtbl.replace uids uid ()) t.check_exec;
  Hashtbl.iter (fun uid _ -> Hashtbl.replace uids uid ()) t.check_fired;
  Hashtbl.fold (fun uid () acc -> uid :: acc) uids []
  |> List.sort compare
  |> List.map (fun uid ->
         let get table =
           match Hashtbl.find_opt table uid with Some r -> !r | None -> 0
         in
         (uid, get t.check_exec, get t.check_fired))
