(** Checkpoint state for rollback recovery; see the interface. *)

type frame_snap = {
  fs_cfunc : Compiled.cfunc;
  fs_values : Ir.Value.t array;
  fs_defined : bool array;
  fs_recent : int array;
  fs_recent_n : int;
  fs_recent_pos : int;
  fs_block : int;
  fs_idx : int;
  fs_prev_block : int;
  fs_ret_dest : Ir.Instr.reg option;
}

type t = {
  sn_step : int;
  sn_cycles : int;
  sn_frames : frame_snap list;
  sn_mem : Memory.mark;
  sn_words : int;
}

(* One frame's live-state footprint: the register file (values + defined
   bits, the latter packed one word per 64) plus the 16-entry recent ring
   and a constant of control state. *)
let frame_words (fs : frame_snap) =
  Array.length fs.fs_values
  + (Array.length fs.fs_defined + 63) / 64
  + Array.length fs.fs_recent + 4

let create ~step ~cycles ~frames ~mem ~dirty_words =
  let words =
    List.fold_left (fun acc fs -> acc + frame_words fs) dirty_words frames
  in
  { sn_step = step; sn_cycles = cycles; sn_frames = frames;
    sn_mem = Memory.mark mem; sn_words = words }

(* Rebuild the checkpoint a resumed (golden-prefix-forked) run would hold
   at its fork step: the frame snaps come from the fork snapshot, the mark
   is position 0 of the trial's own (just reset) undo journal — rolling
   back to it restores exactly the state-at-fork, which equals the state
   the from-scratch checkpoint preserved — and [words] is the golden
   checkpoint's recorded footprint, so {!Cost.rollback} charges are
   bit-identical to the from-scratch run's. *)
let resume ~step ~cycles ~frames ~mem ~words =
  { sn_step = step; sn_cycles = cycles; sn_frames = frames;
    sn_mem = Memory.mark mem; sn_words = words }

let words t = t.sn_words
let step t = t.sn_step

(** Is a snapshot clean with respect to a fault injected at [inj_step]?
    The injection happens while executing the instruction that advances the
    step counter to [inj_step], and checkpoints are taken between
    instructions, so a snapshot at step [s] predates the corruption iff
    [s < inj_step]. *)
let predates t ~inj_step = t.sn_step < inj_step
