(** Structured leveled logging; see the interface for the contract. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  ts : float;
  level : level;
  component : string;
  message : string;
  fields : (string * Json.t) list;
}

type sink = event -> unit

(* Level and sinks live in a core record shared between a logger and its
   children, so reconfiguring either is visible to the whole family. *)
type core = { mutable level : level; mutable sinks : sink list }
type t = { core : core; component : string }

let make ?(level = Info) ?(sinks = []) component =
  { core = { level; sinks }; component }

let null = make ~level:Error "null"
let child t name = { t with component = t.component ^ "/" ^ name }
let set_level t level = t.core.level <- level
let add_sink t sink = t.core.sinks <- t.core.sinks @ [ sink ]

let enabled t level =
  severity level >= severity t.core.level
  && (match t.core.sinks with [] -> false | _ :: _ -> true)

(* One mutex for every sink: events from worker domains interleave as
   whole lines, never as torn fragments. *)
let emit_mutex = Mutex.create ()

let log t level ?(fields = []) message =
  if enabled t level then begin
    let ev =
      { ts = Unix.gettimeofday (); level; component = t.component; message;
        fields }
    in
    Mutex.lock emit_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_mutex)
      (fun () -> List.iter (fun sink -> sink ev) t.core.sinks)
  end

let debug t ?fields message = log t Debug ?fields message
let info t ?fields message = log t Info ?fields message
let warn t ?fields message = log t Warn ?fields message
let error t ?fields message = log t Error ?fields message

let event_to_json ev =
  Json.Obj
    ([ ("ts", Json.Float ev.ts);
       ("level", Json.Str (level_name ev.level));
       ("component", Json.Str ev.component);
       ("msg", Json.Str ev.message) ]
     @ ev.fields)

let field_repr = function
  | Json.Str s -> s
  | v -> Json.to_string v

let stderr_sink () ev =
  let tm = Unix.localtime ev.ts in
  let ms = int_of_float (Float.rem ev.ts 1.0 *. 1000.0) in
  let fields =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (field_repr v))
         ev.fields)
  in
  Printf.eprintf "%02d:%02d:%02d.%03d %-5s [%s] %s%s\n%!" tm.Unix.tm_hour
    tm.Unix.tm_min tm.Unix.tm_sec ms
    (String.uppercase_ascii (level_name ev.level))
    ev.component ev.message fields

let jsonl_sink oc ev =
  output_string oc (Json.to_string (event_to_json ev));
  output_char oc '\n';
  flush oc
