(** Minimal JSON: see the interface for scope.  Hand-rolled because the
    container has no JSON library baked in, and the observability layer
    must not add dependencies to the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- Serialization ----- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that round-trips: try increasing precision
   instead of always paying 17 significant digits of noise. *)
let float_repr f =
  let r12 = Printf.sprintf "%.12g" f in
  if float_of_string r12 = f then r12 else Printf.sprintf "%.17g" f

let rec add_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_into buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        add_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_into buf v;
  Buffer.contents buf

(* ----- Parsing ----- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let expect_lit st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

(* UTF-8 encode one scalar value (surrogate pairs are combined by the
   string parser before calling this). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1
       | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1
       | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1
       | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
       | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
       | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
       | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
       | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1
       | Some 'u' ->
         st.pos <- st.pos + 1;
         let cp = parse_hex4 st in
         let cp =
           (* Combine a UTF-16 surrogate pair into one scalar value. *)
           if cp >= 0xD800 && cp <= 0xDBFF
              && st.pos + 1 < String.length st.src
              && st.src.[st.pos] = '\\' && st.src.[st.pos + 1] = 'u'
           then begin
             st.pos <- st.pos + 2;
             let lo = parse_hex4 st in
             0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
           end
           else cp
         in
         add_utf8 buf cp
       | _ -> fail st "bad escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> st.pos <- st.pos + 1
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1
    | _ -> continue_ := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* Integer literal beyond the OCaml int range: keep the value. *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> expect_lit st "null" Null
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

(* ----- Accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
