(** Metrics registry: counters, gauges and fixed-log2-bucket histograms.

    All instruments are updated with atomics, so campaign worker domains
    can share them.  Metrics are strictly observation-only — nothing in
    the experiment pipeline may branch on a metric value, which is what
    keeps instrumented runs bit-identical to bare ones (the determinism
    contract, DESIGN.md §8).

    Span timers use {!Unix.gettimeofday}; on the platforms this repo
    targets it is monotonic enough for coarse campaign phases, and no
    experiment *result* ever depends on a measured duration. *)

type registry

val registry : unit -> registry

(** Process-wide default registry. *)
val default : registry

type counter

(** Get-or-create by name (one instrument per name per registry). *)
val counter : registry -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** Histogram over non-negative integers with fixed log2 buckets:
    bucket 0 holds values [<= 0], bucket [i >= 1] holds
    [2^(i-1) <= v < 2^i].  Bucket boundaries are value-independent, so
    merging and comparing histograms across runs is exact. *)
type histogram

val histogram : registry -> string -> histogram
val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

(** Mean of observed values; 0 when empty. *)
val hist_mean : histogram -> float

(** Smallest observed-value upper bound [hi] such that at least
    [q * count] observations fall in buckets up to [hi] — a bucketed
    quantile (exact to bucket resolution).  0 when empty. *)
val hist_quantile : histogram -> float -> int

(** [approx_quantile h q] interpolates the [q]-quantile inside its log2
    bucket (observations assumed uniform over the bucket), instead of
    {!hist_quantile}'s upper bound — a tighter point estimate once
    buckets get wide.  Clamped to the observed max; 0 when empty. *)
val approx_quantile : histogram -> float -> int

(** Non-empty buckets as [(lo, hi, count)] with [lo] inclusive and [hi]
    exclusive; bucket 0 reports [(0, 1, n)]. *)
val hist_buckets : histogram -> (int * int * int) list

(** Wall-clock span recorded into a histogram in microseconds. *)
type span

val start_span : histogram -> span

(** Seconds elapsed; also records the span into its histogram. *)
val stop_span : span -> float

(** [time h f] runs [f ()] inside a span. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Snapshot of every instrument, for dumps and JSONL sinks. *)
val to_json : registry -> Json.t
