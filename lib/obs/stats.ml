(** Streaming proportion statistics; see the interface for the contract. *)

(* 97.5th percentile of the standard normal — the two-sided 95% z. *)
let z95 = 1.959963984540054

type interval = {
  ci_estimate : float;
  ci_low : float;
  ci_high : float;
}

(* Wilson score interval.  Unlike the Wald interval (p ± z·sqrt(pq/n)) it
   never escapes [0,1], stays informative at p=0 or p=1, and is accurate
   at the small counts an early campaign heartbeat reports — which is why
   it is the convergence criterion adaptive sampling can stop on. *)
let wilson ?(z = z95) ~k ~n () =
  if n <= 0 then { ci_estimate = 0.0; ci_low = 0.0; ci_high = 1.0 }
  else begin
    let k = max 0 (min k n) in
    let nf = float_of_int n in
    let p = float_of_int k /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
    in
    { ci_estimate = p;
      ci_low = Float.max 0.0 (center -. half);
      ci_high = Float.min 1.0 (center +. half) }
  end

let width iv = iv.ci_high -. iv.ci_low

let converged ?z ~k ~n ~half_width () =
  n > 0 && width (wilson ?z ~k ~n ()) <= 2.0 *. half_width

let to_json iv =
  Json.Obj
    [ ("est", Json.Float iv.ci_estimate);
      ("lo", Json.Float iv.ci_low);
      ("hi", Json.Float iv.ci_high) ]

let pp_pct iv =
  Printf.sprintf "%.1f%%±%.1f" (100.0 *. iv.ci_estimate)
    (100.0 *. width iv /. 2.0)
