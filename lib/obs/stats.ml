(** Streaming proportion statistics; see the interface for the contract. *)

(* 97.5th percentile of the standard normal — the two-sided 95% z. *)
let z95 = 1.959963984540054

type interval = {
  ci_estimate : float;
  ci_low : float;
  ci_high : float;
}

(* Wilson score interval.  Unlike the Wald interval (p ± z·sqrt(pq/n)) it
   never escapes [0,1], stays informative at p=0 or p=1, and is accurate
   at the small counts an early campaign heartbeat reports — which is why
   it is the convergence criterion adaptive sampling can stop on. *)
let wilson ?(z = z95) ~k ~n () =
  if n <= 0 then { ci_estimate = 0.0; ci_low = 0.0; ci_high = 1.0 }
  else begin
    let k = max 0 (min k n) in
    let nf = float_of_int n in
    let p = float_of_int k /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
    in
    (* At k = 0 (and symmetrically k = n) [center] and [half] are equal
       in exact arithmetic, but the sqrt can round [center -. half] a ulp
       above zero, leaving a "lower bound" strictly above the estimate —
       clamp both bounds to bracket [p], which the Wilson interval always
       does mathematically. *)
    { ci_estimate = p;
      ci_low = Float.max 0.0 (Float.min p (center -. half));
      ci_high = Float.min 1.0 (Float.max p (center +. half)) }
  end

let width iv = iv.ci_high -. iv.ci_low

(* Two intervals are "significantly different" for warehouse diffing only
   when they share no point at all — the most conservative pairwise test
   expressible on the marginals, immune to the correlated-seed structure
   of repo campaigns (same seed stream => same injection sites). *)
let disjoint a b = a.ci_high < b.ci_low || b.ci_high < a.ci_low

let converged ?z ~k ~n ~half_width () =
  n > 0 && width (wilson ?z ~k ~n ()) <= 2.0 *. half_width

(* ----- Stratified estimation (adaptive campaigns, DESIGN.md §14) ----- *)

type stratum_obs = { so_mass : float; so_k : int; so_n : int }

(* Mass-weighted recombination.  The estimate is the unbiasedness identity
   p = Σ_s m_s·p_s; the half width combines the per-stratum Wilson half
   widths in quadrature (strata are sampled independently), so if every
   sampled stratum satisfies h_s ≤ τ then the combined half width is at
   most τ·sqrt(Σ m_s²) ≤ τ·Σ m_s ≤ τ — per-stratum early stopping can
   never widen the whole-program interval past the requested target.
   Unsampled strata (n = 0) contribute their vacuous [0,1] interval, i.e.
   a half width of m_s/2. *)
let stratified ?(z = z95) strata =
  let est, var =
    List.fold_left
      (fun (est, var) s ->
        let m = Float.max 0.0 s.so_mass in
        if m = 0.0 then (est, var)
        else begin
          let w = wilson ~z ~k:s.so_k ~n:s.so_n () in
          let h = width w /. 2.0 in
          (est +. (m *. w.ci_estimate), var +. ((m *. h) *. (m *. h)))
        end)
      (0.0, 0.0) strata
  in
  let half = sqrt var in
  { ci_estimate = est;
    ci_low = Float.max 0.0 (est -. half);
    ci_high = Float.min 1.0 (est +. half) }

(* Wilson half width at a continuous proportion [p] over [n] trials. *)
let wilson_half ~z ~p n =
  let nf = float_of_int n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. nf) in
  z /. denom *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))

(* Smallest uniform-sampling trial count whose Wilson interval at rate [p]
   is as tight as [half_width] — monotone in n, so plain doubling plus
   bisection.  This prices an adaptive campaign in the only currency a
   uniform campaign understands. *)
let equivalent_uniform_trials ?(z = z95) ~p ~half_width () =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  let h = Float.max 1e-9 half_width in
  if wilson_half ~z ~p 1 <= h then 1
  else begin
    let hi = ref 1 in
    while wilson_half ~z ~p !hi > h && !hi < max_int / 4 do
      hi := !hi * 2
    done;
    let lo = ref (!hi / 2) in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if wilson_half ~z ~p mid <= h then hi := mid else lo := mid
    done;
    !hi
  end

let to_json iv =
  Json.Obj
    [ ("est", Json.Float iv.ci_estimate);
      ("lo", Json.Float iv.ci_low);
      ("hi", Json.Float iv.ci_high) ]

let pp_pct iv =
  Printf.sprintf "%.1f%%±%.1f" (100.0 *. iv.ci_estimate)
    (100.0 *. width iv /. 2.0)
