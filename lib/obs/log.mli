(** Structured, leveled logging for the experiment harness.

    An event is a timestamped (level, component, message, fields) record;
    sinks render it — {!stderr_sink} pretty-prints for humans,
    {!jsonl_sink} emits one machine-readable JSON object per line.  Sink
    emission is serialized by a global mutex, so loggers may be shared
    across campaign worker domains.

    Logging is observation-only: no experiment result may depend on
    whether (or where) events are emitted. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** Case-insensitive; [None] for unknown names. *)
val level_of_string : string -> level option

type event = {
  ts : float;  (** Unix seconds, {!Unix.gettimeofday} *)
  level : level;
  component : string;
  message : string;
  fields : (string * Json.t) list;
}

type sink = event -> unit

type t

(** [make component] is a logger that drops everything until a sink is
    attached; events below [level] (default [Info]) are never emitted. *)
val make : ?level:level -> ?sinks:sink list -> string -> t

(** Shared no-op logger: the default for library entry points. *)
val null : t

(** Same sinks and level as the parent (shared, so later
    {!set_level}/{!add_sink} on either affects both), component tagged
    ["parent/name"]. *)
val child : t -> string -> t

val set_level : t -> level -> unit
val add_sink : t -> sink -> unit

(** True when an event at [level] would reach the sinks — guards
    expensive field construction. *)
val enabled : t -> level -> bool

val debug : t -> ?fields:(string * Json.t) list -> string -> unit
val info : t -> ?fields:(string * Json.t) list -> string -> unit
val warn : t -> ?fields:(string * Json.t) list -> string -> unit
val error : t -> ?fields:(string * Json.t) list -> string -> unit

(** The JSONL schema: [{"ts":…,"level":…,"component":…,"msg":…,…fields}]. *)
val event_to_json : event -> Json.t

(** Human-readable sink on stderr: [HH:MM:SS.mmm LEVEL [component] msg k=v]. *)
val stderr_sink : unit -> sink

(** One compact JSON object per event, flushed per line, on [oc]. *)
val jsonl_sink : out_channel -> sink
