(** Counters, gauges and log2 histograms; see the interface for the
    determinism contract. *)

let buckets_len = 64

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  counts : int Atomic.t array;  (** [buckets_len] log2 buckets *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  instruments : (string, instrument) Hashtbl.t;
  mutex : Mutex.t;  (** guards get-or-create, not updates *)
}

let registry () = { instruments = Hashtbl.create 16; mutex = Mutex.create () }
let default = registry ()

let intern reg name build select =
  Mutex.lock reg.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.mutex)
    (fun () ->
      match Hashtbl.find_opt reg.instruments name with
      | Some existing -> select name existing
      | None ->
        let fresh = build () in
        Hashtbl.replace reg.instruments name fresh;
        select name fresh)

let kind_mismatch name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter reg name =
  intern reg name
    (fun () -> Counter (Atomic.make 0))
    (fun name -> function Counter c -> c | _ -> kind_mismatch name)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge reg name =
  intern reg name
    (fun () -> Gauge (Atomic.make 0.0))
    (fun name -> function Gauge g -> g | _ -> kind_mismatch name)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram reg name =
  intern reg name
    (fun () ->
      Histogram
        { counts = Array.init buckets_len (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0; h_sum = Atomic.make 0;
          h_max = Atomic.make 0 })
    (fun name -> function Histogram h -> h | _ -> kind_mismatch name)

(* Bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    min !b (buckets_len - 1)
  end

let rec raise_max cell v =
  let current = Atomic.get cell in
  if v > current && not (Atomic.compare_and_set cell current v) then
    raise_max cell v

let observe h v =
  ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum (max 0 v));
  raise_max h.h_max v

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum
let hist_max h = Atomic.get h.h_max

let hist_mean h =
  let n = hist_count h in
  if n = 0 then 0.0 else float_of_int (hist_sum h) /. float_of_int n

let bucket_bounds i = if i = 0 then (0, 1) else (1 lsl (i - 1), 1 lsl i)

let hist_quantile h q =
  let n = hist_count h in
  if n = 0 then 0
  else begin
    let need =
      int_of_float (ceil (q *. float_of_int n)) |> max 1 |> min n
    in
    let acc = ref 0 in
    let result = ref 0 in
    (try
       for i = 0 to buckets_len - 1 do
         acc := !acc + Atomic.get h.counts.(i);
         if !acc >= need then begin
           result := snd (bucket_bounds i);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* Interpolated quantile: find the bucket holding the rank like
   {!hist_quantile}, then place the rank inside it assuming observations
   spread uniformly over [lo, hi) — a much better point estimate than the
   bucket's upper bound once buckets get wide (log2 buckets double), and
   what the report's latency table prints.  Clamped to the tracked exact
   max so the tail quantile never overshoots reality. *)
let approx_quantile h q =
  let n = hist_count h in
  if n = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let need =
      int_of_float (ceil (q *. float_of_int n)) |> max 1 |> min n
    in
    let acc = ref 0 in
    let result = ref (hist_max h) in
    (try
       for i = 0 to buckets_len - 1 do
         let c = Atomic.get h.counts.(i) in
         if c > 0 then begin
           let prev = !acc in
           acc := prev + c;
           if !acc >= need then begin
             let lo, hi = bucket_bounds i in
             let frac =
               (float_of_int (need - prev) -. 0.5) /. float_of_int c
             in
             result :=
               lo
               + int_of_float
                   (Float.round (frac *. float_of_int (hi - lo)));
             raise Exit
           end
         end
       done
     with Exit -> ());
    min !result (hist_max h)
  end

let hist_buckets h =
  let out = ref [] in
  for i = buckets_len - 1 downto 0 do
    let n = Atomic.get h.counts.(i) in
    if n > 0 then begin
      let lo, hi = bucket_bounds i in
      out := (lo, hi, n) :: !out
    end
  done;
  !out

type span = { sp_hist : histogram; sp_start : float }

let start_span h = { sp_hist = h; sp_start = Unix.gettimeofday () }

let stop_span sp =
  let elapsed = Unix.gettimeofday () -. sp.sp_start in
  observe sp.sp_hist (int_of_float (elapsed *. 1e6));
  elapsed

let time h f =
  let sp = start_span h in
  Fun.protect ~finally:(fun () -> ignore (stop_span sp)) f

let to_json reg =
  Mutex.lock reg.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.mutex)
    (fun () ->
      let fields =
        Hashtbl.fold
          (fun name instrument acc ->
            let v =
              match instrument with
              | Counter c -> Json.Int (counter_value c)
              | Gauge g -> Json.Float (gauge_value g)
              | Histogram h ->
                Json.Obj
                  [ ("count", Json.Int (hist_count h));
                    ("sum", Json.Int (hist_sum h));
                    ("max", Json.Int (hist_max h));
                    ("mean", Json.Float (hist_mean h));
                    ("buckets",
                     Json.List
                       (List.map
                          (fun (lo, hi, n) ->
                            Json.Obj
                              [ ("lo", Json.Int lo); ("hi", Json.Int hi);
                                ("n", Json.Int n) ])
                          (hist_buckets h))) ]
            in
            (name, v) :: acc)
          reg.instruments []
      in
      Json.Obj (List.sort compare fields))
