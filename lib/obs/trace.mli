(** Trace spans: the journal representation of propagation events.

    One named point event on a run's dynamic-step timeline plus free-form
    JSON attributes.  Producers convert domain events (e.g. the fault
    tracer's taint events) into spans; consumers read attributes back
    generically, so journals stay loadable across code versions. *)

type span = {
  sp_name : string;                    (** event kind, e.g. ["store"] *)
  sp_step : int;                       (** dynamic instruction step *)
  sp_attrs : (string * Json.t) list;   (** extra fields, flattened *)
}

val span : ?attrs:(string * Json.t) list -> step:int -> string -> span

(** Spans serialize flat: [{"name":…,"step":…,<attrs>…}].  [name] and
    [step] are reserved keys; same-named attributes are dropped on the
    wire. *)
val to_json : span -> Json.t

(** Inverse of {!to_json}; [None] when [name] or [step] is missing —
    unknown extra fields become attributes (forward compatibility). *)
val of_json : Json.t -> span option

(** Attribute lookup; [None] when absent. *)
val attr : span -> string -> Json.t option

val attr_int : span -> string -> int option
