(** Trace spans: point events on a step timeline, and wall-clock duration
    spans for the campaign flight recorder.

    A point {!span} is one named event on a run's dynamic-step timeline
    plus free-form JSON attributes — the journal representation of
    propagation events.  Producers convert domain events (e.g. the fault
    tracer's taint events) into spans; consumers read attributes back
    generically, so journals stay loadable across code versions.

    A duration {!dur} is one named interval on the *wall-clock* timeline
    of a campaign: begin/end timestamps, a track (worker domain id), and
    a category.  Duration spans are collected by a {!recorder} and
    rendered as Chrome trace-event JSON, loadable by Perfetto or
    chrome://tracing. *)

type span = {
  sp_name : string;                    (** event kind, e.g. ["store"] *)
  sp_step : int;                       (** dynamic instruction step *)
  sp_attrs : (string * Json.t) list;   (** extra fields, flattened *)
}

val span : ?attrs:(string * Json.t) list -> step:int -> string -> span

(** Spans serialize flat: [{"name":…,"step":…,<attrs>…}].  [name] and
    [step] are reserved keys; an attribute whose key collides with them
    (or already starts with ["attr."]) goes to the wire under an
    ["attr."] prefix, which {!of_json} strips — the round trip is total,
    nothing is dropped. *)
val to_json : span -> Json.t

(** Inverse of {!to_json}; [None] when [name] or [step] is missing —
    unknown extra fields become attributes (forward compatibility). *)
val of_json : Json.t -> span option

(** Attribute lookup; [None] when absent. *)
val attr : span -> string -> Json.t option

val attr_int : span -> string -> int option

(** {1 Duration spans — the campaign flight recorder} *)

type dur = {
  du_name : string;                    (** e.g. ["golden_run"], ["chunk"] *)
  du_cat : string;                     (** e.g. ["campaign"], ["pool"] *)
  du_track : int;                      (** worker domain id; 0 = caller *)
  du_start_us : float;                 (** µs since the recorder's epoch *)
  du_dur_us : float;                   (** span length in µs, >= 0 *)
  du_args : (string * Json.t) list;    (** free-form span attributes *)
}

(** Collects duration spans from any domain (mutex-guarded; recording is
    cold-path — once per phase or per chunk claim, never per trial). *)
type recorder

val recorder : unit -> recorder

(** µs elapsed since the recorder was created. *)
val now_us : recorder -> float

(** A begun-but-unfinished span, held by the instrumented code between
    {!begin_dur} and {!end_dur}. *)
type open_dur

val begin_dur :
  recorder -> ?args:(string * Json.t) list -> ?track:int -> cat:string ->
  string -> open_dur

(** Close and record the span; [?args] are appended to the open span's. *)
val end_dur : recorder -> ?args:(string * Json.t) list -> open_dur -> unit

(** [with_dur trace ~cat name f] runs [f] inside a duration span when a
    recorder is attached, and is a bare call of [f] when [trace] is
    [None] — instrumented paths cost nothing un-instrumented.  The span
    is recorded even when [f] raises. *)
val with_dur :
  recorder option -> ?args:(string * Json.t) list -> ?track:int ->
  cat:string -> string -> (unit -> 'a) -> 'a

(** Recorded spans, ascending by start time (then track). *)
val durs : recorder -> dur list

(** Chrome trace-event JSON ([{"traceEvents":[…]}]): one complete event
    (ph ["X"], ts/dur in µs) per span with [du_track] as the thread id,
    plus thread-name metadata so the UI labels tracks ["domain N"].
    Loadable by Perfetto and chrome://tracing. *)
val to_chrome : recorder -> Json.t

(** Write {!to_chrome} to [path] (single line + newline). *)
val write_chrome : recorder -> path:string -> unit
