(** Minimal JSON values: just enough for the observability stack (event
    sinks, trial journals, metric dumps) without an external dependency.

    Serialization always produces valid JSON: non-finite floats become
    [null], strings are escaped per RFC 8259.  The parser accepts the
    subset this repo emits plus standard escapes ([\uXXXX] included), so
    journals round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering — one JSONL record per call. *)
val to_string : t -> string

exception Parse_error of string

(** Parse one JSON document; raises {!Parse_error} with a position on
    malformed input.  Numbers without [.], [e] or [E] parse as {!Int}. *)
val parse : string -> t

(** Field lookup on an {!Obj}; [None] on other constructors or absence. *)
val member : string -> t -> t option

(** Coercions; [to_float] promotes {!Int}. *)
val to_int : t -> int option

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
