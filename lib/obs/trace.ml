(** Trace spans: point events on a step timeline, and wall-clock duration
    spans for the campaign flight recorder.

    A point {!span} is one named event on a run's dynamic-step timeline
    plus free-form JSON attributes — the journal representation of
    propagation events.  The observability layer knows nothing about the
    interpreter; producers (the fault tracer via [Faults.Journal]) convert
    their domain events into spans, and consumers read the attributes back
    generically — so journals stay loadable across code versions that add
    attributes.

    A duration {!dur} is one named interval on the *wall-clock* timeline
    of a campaign: begin/end timestamps, a track (worker domain), and a
    category.  Duration spans are collected by a {!recorder} and rendered
    as Chrome trace-event JSON ({!to_chrome}), loadable by Perfetto or
    chrome://tracing — the flight-recorder view of where a campaign's
    wall time goes. *)

type span = {
  sp_name : string;                    (** event kind, e.g. ["store"] *)
  sp_step : int;                       (** dynamic instruction step *)
  sp_attrs : (string * Json.t) list;   (** extra fields, flattened *)
}

let span ?(attrs = []) ~step name =
  { sp_name = name; sp_step = step; sp_attrs = attrs }

(* Attributes are flattened into the span object itself (not nested), so a
   span line reads naturally in a JSONL journal.  [name]/[step] are
   reserved keys: an attribute that would collide with them — or that
   already carries the escape prefix — goes to the wire under an ["attr."]
   prefix, which {!of_json} strips again.  That makes the round trip total
   instead of silently dropping colliding attributes. *)
let attr_prefix = "attr."

let needs_prefix k =
  k = "name" || k = "step" || String.starts_with ~prefix:attr_prefix k

let to_json s =
  Json.Obj
    (("name", Json.Str s.sp_name)
     :: ("step", Json.Int s.sp_step)
     :: List.map
          (fun (k, v) -> ((if needs_prefix k then attr_prefix ^ k else k), v))
          s.sp_attrs)

let strip_prefix k =
  if String.starts_with ~prefix:attr_prefix k then
    String.sub k (String.length attr_prefix)
      (String.length k - String.length attr_prefix)
  else k

let of_json j =
  match
    ( Option.bind (Json.member "name" j) Json.to_str,
      Option.bind (Json.member "step" j) Json.to_int )
  with
  | Some name, Some step ->
    let attrs =
      match j with
      | Json.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            if k = "name" || k = "step" then None
            else Some (strip_prefix k, v))
          fields
      | _ -> []
    in
    Some { sp_name = name; sp_step = step; sp_attrs = attrs }
  | _, _ -> None

let attr s key = List.assoc_opt key s.sp_attrs
let attr_int s key = Option.bind (attr s key) Json.to_int

(* ----- Duration spans (the flight recorder) ----- *)

type dur = {
  du_name : string;
  du_cat : string;
  du_track : int;
  du_start_us : float;
  du_dur_us : float;
  du_args : (string * Json.t) list;
}

type recorder = {
  rc_t0 : float;            (* epoch; event timestamps are relative *)
  rc_lock : Mutex.t;        (* guards the list; recording is cold-path *)
  mutable rc_durs : dur list;  (* newest first *)
}

let recorder () =
  { rc_t0 = Unix.gettimeofday (); rc_lock = Mutex.create (); rc_durs = [] }

type open_dur = {
  od_name : string;
  od_cat : string;
  od_track : int;
  od_start_us : float;
  od_args : (string * Json.t) list;
}

let now_us r = (Unix.gettimeofday () -. r.rc_t0) *. 1e6

let begin_dur r ?(args = []) ?(track = 0) ~cat name =
  { od_name = name; od_cat = cat; od_track = track;
    od_start_us = now_us r; od_args = args }

let end_dur r ?(args = []) od =
  let d =
    { du_name = od.od_name; du_cat = od.od_cat; du_track = od.od_track;
      du_start_us = od.od_start_us;
      du_dur_us = Float.max 0.0 (now_us r -. od.od_start_us);
      du_args = od.od_args @ args }
  in
  Mutex.lock r.rc_lock;
  r.rc_durs <- d :: r.rc_durs;
  Mutex.unlock r.rc_lock

(** Run [f] inside a duration span when a recorder is attached; a bare
    call of [f] when [trace] is [None] — so instrumented code paths cost
    nothing un-instrumented.  The span is recorded even when [f] raises
    (the timeline should show where a campaign died). *)
let with_dur trace ?args ?track ~cat name f =
  match trace with
  | None -> f ()
  | Some r ->
    let od = begin_dur r ?args ?track ~cat name in
    Fun.protect ~finally:(fun () -> end_dur r od) f

(** Recorded spans in ascending start order. *)
let durs r =
  Mutex.lock r.rc_lock;
  let ds = r.rc_durs in
  Mutex.unlock r.rc_lock;
  List.sort
    (fun a b ->
      match compare a.du_start_us b.du_start_us with
      | 0 -> compare a.du_track b.du_track
      | c -> c)
    ds

(* Chrome trace-event format (the catapult JSON that Perfetto and
   chrome://tracing load): one complete event (ph "X") per duration span,
   timestamps and durations in microseconds, [du_track] as the thread id,
   plus one thread_name metadata record per track so the UI labels worker
   rows "domain N". *)
let chrome_event d =
  Json.Obj
    ([ ("name", Json.Str d.du_name);
       ("cat", Json.Str d.du_cat);
       ("ph", Json.Str "X");
       ("ts", Json.Float d.du_start_us);
       ("dur", Json.Float d.du_dur_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int d.du_track) ]
     @ (match d.du_args with
        | [] -> []
        | args -> [ ("args", Json.Obj args) ]))

let to_chrome r =
  let ds = durs r in
  let tracks =
    List.sort_uniq compare (List.map (fun d -> d.du_track) ds)
  in
  let metadata =
    List.map
      (fun t ->
        Json.Obj
          [ ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int t);
            ("args",
             Json.Obj
               [ ("name",
                  Json.Str
                    (if t = 0 then "domain 0 (caller)"
                     else Printf.sprintf "domain %d" t)) ]) ])
      tracks
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata @ List.map chrome_event ds));
      ("displayTimeUnit", Json.Str "ms") ]

let write_chrome r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_chrome r));
      output_char oc '\n')
