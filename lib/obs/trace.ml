(** Trace spans: the journal representation of propagation events.

    A span is one named point event on a run's dynamic-step timeline plus
    free-form JSON attributes.  The observability layer knows nothing about
    the interpreter; producers (the fault tracer via [Faults.Journal])
    convert their domain events into spans, and consumers read the
    attributes back generically — so journals stay loadable across code
    versions that add attributes. *)

type span = {
  sp_name : string;                    (** event kind, e.g. ["store"] *)
  sp_step : int;                       (** dynamic instruction step *)
  sp_attrs : (string * Json.t) list;   (** extra fields, flattened *)
}

let span ?(attrs = []) ~step name =
  { sp_name = name; sp_step = step; sp_attrs = attrs }

(* Attributes are flattened into the span object itself (not nested), so a
   span line reads naturally in a JSONL journal; [name]/[step] are reserved
   keys and shadow same-named attributes on the wire. *)
let to_json s =
  Json.Obj
    (("name", Json.Str s.sp_name)
     :: ("step", Json.Int s.sp_step)
     :: List.filter (fun (k, _) -> k <> "name" && k <> "step") s.sp_attrs)

let of_json j =
  match
    ( Option.bind (Json.member "name" j) Json.to_str,
      Option.bind (Json.member "step" j) Json.to_int )
  with
  | Some name, Some step ->
    let attrs =
      match j with
      | Json.Obj fields ->
        List.filter (fun (k, _) -> k <> "name" && k <> "step") fields
      | _ -> []
    in
    Some { sp_name = name; sp_step = step; sp_attrs = attrs }
  | _, _ -> None

let attr s key = List.assoc_opt key s.sp_attrs
let attr_int s key = Option.bind (attr s key) Json.to_int
