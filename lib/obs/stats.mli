(** Streaming proportion statistics for fault campaigns.

    A campaign observes [k] occurrences of an outcome over [n] completed
    trials; this module turns those two integers into a confidence
    interval, incrementally — no per-trial state beyond the counters the
    campaign already keeps ({!Faults.Progress}'s atomics), so the interval
    can be recomputed at every heartbeat and at campaign end for the
    journal manifest.  Pure and allocation-light: safe to call from any
    domain, strictly observation-only (nothing in the experiment pipeline
    may branch on an interval — the determinism contract, DESIGN.md §8).

    The interval is Wilson's score interval, the standard choice for
    proportions at small counts: it never leaves [0,1] and stays
    informative at k=0 and k=n, where the naive Wald interval collapses
    to a width of zero.  This is the substrate adaptive early stopping
    (ROADMAP item 5) decides on. *)

(** The two-sided 95% standard-normal quantile (≈1.96), the default [z]. *)
val z95 : float

type interval = {
  ci_estimate : float;  (** the point estimate k/n *)
  ci_low : float;       (** lower confidence bound, clamped to [0,1] *)
  ci_high : float;      (** upper confidence bound, clamped to [0,1] *)
}

(** [wilson ~k ~n ()] is the Wilson score interval for [k] successes over
    [n] trials at confidence level [z] (default {!z95}, i.e. 95%).
    [n <= 0] yields the vacuous interval [0, 1] with estimate 0; [k] is
    clamped into [0, n]. *)
val wilson : ?z:float -> k:int -> n:int -> unit -> interval

(** [ci_high - ci_low]. *)
val width : interval -> float

(** [disjoint a b] is true when the two intervals share no point — the
    conservative significance test warehouse run diffs flag deltas with:
    overlapping intervals are never reported as a real change. *)
val disjoint : interval -> interval -> bool

(** [converged ~k ~n ~half_width ()] is true when the interval's half
    width has shrunk to [half_width] or below — the per-stratum stopping
    rule of adaptive sampling. *)
val converged : ?z:float -> k:int -> n:int -> half_width:float -> unit -> bool

(** One stratum's observations for {!stratified}: [so_mass] is the
    stratum's share of the whole sampling space (the probability a single
    uniform draw lands in it; masses should sum to ≤ 1), [so_k]/[so_n] the
    outcome count and trials sampled inside it. *)
type stratum_obs = { so_mass : float; so_k : int; so_n : int }

(** Mass-weighted recombination of independently sampled strata into one
    whole-program interval: estimate [Σ m_s·k_s/n_s] (the unbiased
    post-stratified rate), half width [sqrt (Σ (m_s·h_s)²)] with [h_s] the
    per-stratum Wilson half width (quadrature — strata are independent).
    Consequence: if every stratum has [h_s ≤ τ] then the combined half
    width is at most [τ·sqrt (Σ m_s²) ≤ τ], so per-stratum early stopping
    never violates a whole-program convergence target.  Unsampled strata
    ([so_n = 0]) contribute their vacuous [0,1] interval; zero-mass strata
    contribute nothing. *)
val stratified : ?z:float -> stratum_obs list -> interval

(** Smallest number of *uniform* trials whose Wilson interval at observed
    rate [p] would be as tight as [half_width] — what an adaptive
    campaign's convergence would have cost without stratification (the
    "equivalent uniform trials" a report prices savings against). *)
val equivalent_uniform_trials :
  ?z:float -> p:float -> half_width:float -> unit -> int

(** [{"est":…,"lo":…,"hi":…}] — the journal/heartbeat wire form. *)
val to_json : interval -> Json.t

(** Compact percent rendering, e.g. ["12.5%±2.1"] (half width after ±). *)
val pp_pct : interval -> string
