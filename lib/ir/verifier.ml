(** Structural well-formedness checks for programs.

    Run after construction and after every transformation pass; catching a
    malformed program here is vastly cheaper than debugging an interpreter
    run.  Checks: branch targets exist, every block is reachable from the
    entry, phi incoming edges exactly match CFG predecessors, SSA single
    assignment, every used register has a definition somewhere in the
    function (full dominance checking is [Analysis.Lint], which this module
    cannot depend on; the transformation pipeline runs both), uid
    uniqueness across the program. *)

type error = {
  func : string;
  block : string;
  message : string;
}

exception Invalid of error

let fail ~func ~block fmt =
  Format.kasprintf (fun message -> raise (Invalid { func; block; message })) fmt

let pp_error ppf e =
  Format.fprintf ppf "%s/%s: %s" e.func e.block e.message

let verify_func (f : Func.t) ~seen_uid ~check_uid =
  let fname = f.name in
  (* Branch targets exist. *)
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun target ->
          if not (Func.mem_block f target) then
            fail ~func:fname ~block:b.Block.label "branch to unknown block %S"
              target)
        (Block.successors b))
    f;
  (* Entry exists and has no phis (nothing can jump to it in our builder). *)
  if not (Func.mem_block f f.entry) then
    fail ~func:fname ~block:f.entry "missing entry block";
  (* Every block is reachable from the entry; transformation passes assume
     it (unreachable blocks would also make dominance vacuous), and
     [Transform.Dce] prunes the blocks constant folding strands. *)
  let reachable = Hashtbl.create 16 in
  let rec dfs label =
    if not (Hashtbl.mem reachable label) then begin
      Hashtbl.replace reachable label ();
      List.iter dfs (Block.successors (Func.find_block f label))
    end
  in
  dfs f.entry;
  Func.iter_blocks
    (fun b ->
      if not (Hashtbl.mem reachable b.Block.label) then
        fail ~func:fname ~block:b.Block.label
          "block unreachable from entry %S" f.entry)
    f;
  (* Single assignment + defs set. *)
  let defined = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if Hashtbl.mem defined r then
        fail ~func:fname ~block:f.entry "parameter %%r%d defined twice" r;
      Hashtbl.replace defined r ())
    f.params;
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Instr.phi) ->
          check_uid ~func:fname ~block:b.Block.label phi.phi_uid;
          if Hashtbl.mem defined phi.phi_dest then
            fail ~func:fname ~block:b.Block.label
              "register %%r%d defined twice (phi)" phi.phi_dest;
          Hashtbl.replace defined phi.phi_dest ())
        b.phis;
      Array.iter
        (fun (ins : Instr.t) ->
          check_uid ~func:fname ~block:b.Block.label ins.uid;
          match ins.dest with
          | None -> ()
          | Some r ->
            if Hashtbl.mem defined r then
              fail ~func:fname ~block:b.Block.label
                "register %%r%d defined twice" r;
            Hashtbl.replace defined r ())
        b.body)
    f;
  (* Every use refers to some definition in this function. *)
  let check_operand ~block op =
    match op with
    | Instr.Imm _ -> ()
    | Instr.Reg r ->
      if not (Hashtbl.mem defined r) then
        fail ~func:fname ~block "use of undefined register %%r%d" r
  in
  Func.iter_blocks
    (fun b ->
      let block = b.Block.label in
      List.iter
        (fun (phi : Instr.phi) ->
          List.iter (fun (_, op) -> check_operand ~block op) phi.incoming)
        b.phis;
      Array.iter
        (fun ins -> List.iter (check_operand ~block) (Instr.operands ins))
        b.body;
      match b.term with
      | Instr.Ret None | Instr.Jmp _ -> ()
      | Instr.Ret (Some op) | Instr.Br (op, _, _) -> check_operand ~block op)
    f;
  (* Phi incoming labels exactly match CFG predecessors. *)
  let preds = Func.predecessors f in
  Func.iter_blocks
    (fun b ->
      let block = b.Block.label in
      let pred_set = List.sort_uniq String.compare (Hashtbl.find preds block) in
      List.iter
        (fun (phi : Instr.phi) ->
          let labels =
            List.sort_uniq String.compare (List.map fst phi.incoming)
          in
          if labels <> pred_set then
            fail ~func:fname ~block
              "phi %%r%d incoming {%s} does not match predecessors {%s}"
              phi.phi_dest (String.concat "," labels)
              (String.concat "," pred_set))
        b.phis)
    f;
  ignore seen_uid

(** [verify prog] raises {!Invalid} if [prog] is malformed. *)
let verify (p : Prog.t) =
  let seen_uid = Hashtbl.create 256 in
  let check_uid ~func ~block uid =
    if Hashtbl.mem seen_uid uid then
      fail ~func ~block "duplicate instruction uid #%d" uid;
    if uid >= p.next_uid then
      fail ~func ~block "uid #%d not below program counter %d" uid p.next_uid;
    Hashtbl.replace seen_uid uid ()
  in
  Prog.iter_funcs (fun f -> verify_func f ~seen_uid ~check_uid) p

(** Boolean form for tests. *)
let is_valid p =
  match verify p with
  | () -> true
  | exception Invalid _ -> false
