(** Runtime values held in virtual registers and memory cells.

    A value models the contents of one 64-bit architectural register.  We keep
    a kind tag (integer vs. floating point) purely as simulation metadata: the
    paper's fault model flips a bit of the 64-bit payload, which we reproduce
    by flipping a bit of the integer, or of the IEEE-754 representation of the
    float.  Faults never change the kind tag, exactly as a bit flip in a real
    register file never changes how the program subsequently interprets the
    register. *)

type t =
  | Int of int64
  | Float of float

let zero = Int 0L
let one = Int 1L

(* Small integers dominate the integer traffic of the interpreted kernels
   (loop counters, indices, pixel components), so the constructors below
   intern them: producing such a value costs an array load instead of two
   heap blocks (the [Int] cell plus the boxed [int64]).  Values are
   immutable and never compared physically, so the sharing is
   unobservable. *)
let small_lo = -64
let small_hi = 1024

let small =
  Array.init (small_hi - small_lo + 1) (fun i -> Int (Int64.of_int (small_lo + i)))

let of_int64 i =
  if i >= -64L && i <= 1024L then small.(Int64.to_int i - small_lo) else Int i
  [@@inline]

let of_int n =
  if n >= small_lo && n <= small_hi then small.(n - small_lo)
  else Int (Int64.of_int n)

let of_float f = Float f

(* Comparisons run once per dynamic compare instruction; sharing the two
   constants keeps the hot loop from allocating a fresh block each time. *)
let of_bool b = if b then one else zero [@@inline]

(** 64-bit payload of a value, as stored in a physical register. *)
let bits = function
  | Int i -> i
  | Float f -> Int64.bits_of_float f

(** Rebuild a value of the same kind as [like] from a 64-bit payload. *)
let of_bits ~like payload =
  match like with
  | Int _ -> Int payload
  | Float _ -> Float (Int64.float_of_bits payload)

(** [flip_bit v b] flips bit [b] (0-63) of the register payload of [v],
    preserving the kind.  This is the paper's single-event-upset model. *)
let flip_bit v b =
  assert (b >= 0 && b < 64);
  let payload = Int64.logxor (bits v) (Int64.shift_left 1L b) in
  of_bits ~like:v payload

let is_int = function Int _ -> true | Float _ -> false
let is_float = function Float _ -> true | Int _ -> false

exception Kind_error of string

let to_int64 = function
  | Int i -> i
  | Float _ -> raise (Kind_error "expected integer value, found float")
  [@@inline]

let to_float = function
  | Float f -> f
  | Int _ -> raise (Kind_error "expected float value, found integer")
  [@@inline]

let to_int v = Int64.to_int (to_int64 v)

(** Truthiness used by conditional branches and [Select]. *)
let truthy = function
  | Int i -> i <> 0L
  | Float f -> f <> 0.0
  [@@inline]

let equal a b =
  match a, b with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y ->
    (* Bit equality so that NaN compares equal to itself; duplication checks
       compare register payloads, not IEEE semantics. *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Int _, Float _ | Float _, Int _ -> false

let compare a b =
  match a, b with
  | Int x, Int y -> Int64.compare x y
  | Float x, Float y -> Float.compare x y
  | Int _, Float _ -> -1
  | Float _, Int _ -> 1

(** Numeric view used by profiling histograms: every value projects onto the
    real line so that ranges can be learned uniformly. *)
let to_real = function
  | Int i -> Int64.to_float i
  | Float f -> f

(** Magnitude of the change a bit flip caused, used to split USDCs into
    large- and small-disturbance classes (paper, Figure 2). *)
let disturbance ~before ~after =
  match before, after with
  | Int x, Int y -> Int64.to_float (Int64.abs (Int64.sub y x))
  | Float x, Float y ->
    let d = Float.abs (y -. x) in
    if Float.is_nan d then Float.infinity else d
  | Int _, Float _ | Float _, Int _ -> Float.infinity

let pp ppf = function
  | Int i -> Format.fprintf ppf "%Ld" i
  | Float f -> Format.fprintf ppf "%h" f

let to_string v = Format.asprintf "%a" pp v
