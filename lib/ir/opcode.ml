(** Operation kinds of the IR.

    The instruction set mirrors the scalar core of LLVM IR: integer and float
    arithmetic, comparisons, conversions, and a select.  Memory and control
    flow live in {!Instr} and {!Block}. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type unop =
  | Neg            (** integer negation *)
  | Not            (** bitwise complement *)
  | Fneg
  | Float_of_int   (** signed conversion *)
  | Int_of_float   (** truncation toward zero *)
  | Fsqrt
  | Fabs

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

exception Division_by_zero

(* Integer results go through {!Value.of_int64}, which interns the small
   values the kernels churn through; see value.ml. *)
let eval_binop op a b =
  let open Value in
  match op with
  | Add -> of_int64 (Int64.add (to_int64 a) (to_int64 b))
  | Sub -> of_int64 (Int64.sub (to_int64 a) (to_int64 b))
  | Mul -> of_int64 (Int64.mul (to_int64 a) (to_int64 b))
  | Sdiv ->
    let d = to_int64 b in
    if Int64.equal d 0L then raise Division_by_zero
    else of_int64 (Int64.div (to_int64 a) d)
  | Srem ->
    let d = to_int64 b in
    if Int64.equal d 0L then raise Division_by_zero
    else of_int64 (Int64.rem (to_int64 a) d)
  | And -> of_int64 (Int64.logand (to_int64 a) (to_int64 b))
  | Or -> of_int64 (Int64.logor (to_int64 a) (to_int64 b))
  | Xor -> of_int64 (Int64.logxor (to_int64 a) (to_int64 b))
  | Shl -> of_int64 (Int64.shift_left (to_int64 a) (Int64.to_int (to_int64 b) land 63))
  | Lshr -> of_int64 (Int64.shift_right_logical (to_int64 a) (Int64.to_int (to_int64 b) land 63))
  | Ashr -> of_int64 (Int64.shift_right (to_int64 a) (Int64.to_int (to_int64 b) land 63))
  | Fadd -> Float (to_float a +. to_float b)
  | Fsub -> Float (to_float a -. to_float b)
  | Fmul -> Float (to_float a *. to_float b)
  | Fdiv -> Float (to_float a /. to_float b)

let eval_unop op a =
  let open Value in
  match op with
  | Neg -> of_int64 (Int64.neg (to_int64 a))
  | Not -> of_int64 (Int64.lognot (to_int64 a))
  | Fneg -> Float (-.to_float a)
  | Float_of_int -> Float (Int64.to_float (to_int64 a))
  | Int_of_float -> of_int64 (Int64.of_float (to_float a))
  | Fsqrt -> Float (sqrt (to_float a))
  | Fabs -> Float (Float.abs (to_float a))

let eval_icmp op a b =
  let x = Value.to_int64 a and y = Value.to_int64 b in
  let c = Int64.compare x y in
  Value.of_bool
    (match op with
     | Ieq -> c = 0 | Ine -> c <> 0
     | Islt -> c < 0 | Isle -> c <= 0
     | Isgt -> c > 0 | Isge -> c >= 0)

let eval_fcmp op a b =
  let x = Value.to_float a and y = Value.to_float b in
  Value.of_bool
    (match op with
     | Feq -> x = y | Fne -> x <> y
     | Flt -> x < y | Fle -> x <= y
     | Fgt -> x > y | Fge -> x >= y)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let unop_name = function
  | Neg -> "neg" | Not -> "not" | Fneg -> "fneg"
  | Float_of_int -> "sitofp" | Int_of_float -> "fptosi"
  | Fsqrt -> "fsqrt" | Fabs -> "fabs"

let icmp_name = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge"

let fcmp_name = function
  | Feq -> "oeq" | Fne -> "one" | Flt -> "olt" | Fle -> "ole"
  | Fgt -> "ogt" | Fge -> "oge"
