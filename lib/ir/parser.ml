(** Parser for the textual IR form emitted by {!Printer}.

    Round-tripping programs through text lets users dump a protected
    program (`experiments dump`), edit it, and reload it — and gives the
    test suite a strong print/parse/print fixpoint property.

    The grammar is exactly what {!Printer} produces:
    {v
    func @name(%r0, %r1) {
    label:
      %r2 = phi [pred: %r0], [latch: %r3]    ; #4
      %r3 = add %r2, 1    ; #5
      value_check %r3 in range [0, 63]    ; #6
      br %r4, body, exit
    }
    v}
    Trailing [; #uid] comments are significant (uids key the profiles), and
    origin comments ([; check], [; dup of #N]) are restored so that a
    round-tripped program keeps its cost-model and statistics behaviour. *)

exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ----- tokenizing helpers ----- *)

let strip s = String.trim s

(* "dup of #N" origin comments. *)
let starts_with_origin s =
  String.length s > 8 && String.sub s 0 8 = "dup of #"

(* Split off the trailing "; #uid [; origin]" comment; returns
   (code, uid option, origin). *)
let split_comment ~line s =
  match String.index_opt s ';' with
  | None -> (strip s, None, Instr.From_source)
  | Some i ->
    let code = strip (String.sub s 0 i) in
    let comment = strip (String.sub s (i + 1) (String.length s - i - 1)) in
    let uid_text, origin_text =
      match String.index_opt comment ';' with
      | Some j ->
        (strip (String.sub comment 0 j),
         strip (String.sub comment (j + 1) (String.length comment - j - 1)))
      | None -> (strip comment, "")
    in
    let uid =
      if String.length uid_text > 0 && uid_text.[0] = '#' then begin
        match int_of_string_opt (String.sub uid_text 1 (String.length uid_text - 1)) with
        | Some n -> Some n
        | None -> fail ~line "bad uid comment %S" comment
      end
      else None
    in
    let origin =
      if origin_text = "check" then Instr.Check_insertion
      else if starts_with_origin origin_text then begin
        let n_text =
          String.sub origin_text 8 (String.length origin_text - 8)
        in
        match int_of_string_opt n_text with
        | Some n -> Instr.Duplicated n
        | None -> fail ~line "bad origin comment %S" origin_text
      end
      else Instr.From_source
    in
    (code, uid, origin)

let parse_reg ~line s =
  let s = strip s in
  if String.length s > 2 && s.[0] = '%' && s.[1] = 'r' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some r -> r
    | None -> fail ~line "bad register %S" s
  else fail ~line "expected register, found %S" s

let parse_value ~line s =
  let s = strip s in
  match Int64.of_string_opt s with
  | Some i -> Value.Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Value.Float f
     | None -> fail ~line "bad value %S" s)

let parse_operand ~line s =
  let s = strip s in
  if String.length s > 1 && s.[0] = '%' then Instr.Reg (parse_reg ~line s)
  else Instr.Imm (parse_value ~line s)

(* Split on top-level commas (no nesting in our operand syntax). *)
let split_commas s =
  if strip s = "" then []
  else List.map strip (String.split_on_char ',' s)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.sub s (String.length prefix)
    (String.length s - String.length prefix)

(* ----- instruction parsing ----- *)

let binop_of_name = function
  | "add" -> Some Opcode.Add | "sub" -> Some Opcode.Sub
  | "mul" -> Some Opcode.Mul | "sdiv" -> Some Opcode.Sdiv
  | "srem" -> Some Opcode.Srem | "and" -> Some Opcode.And
  | "or" -> Some Opcode.Or | "xor" -> Some Opcode.Xor
  | "shl" -> Some Opcode.Shl | "lshr" -> Some Opcode.Lshr
  | "ashr" -> Some Opcode.Ashr | "fadd" -> Some Opcode.Fadd
  | "fsub" -> Some Opcode.Fsub | "fmul" -> Some Opcode.Fmul
  | "fdiv" -> Some Opcode.Fdiv | _ -> None

let unop_of_name = function
  | "neg" -> Some Opcode.Neg | "not" -> Some Opcode.Not
  | "fneg" -> Some Opcode.Fneg | "sitofp" -> Some Opcode.Float_of_int
  | "fptosi" -> Some Opcode.Int_of_float | "fsqrt" -> Some Opcode.Fsqrt
  | "fabs" -> Some Opcode.Fabs | _ -> None

let icmp_of_name = function
  | "eq" -> Some Opcode.Ieq | "ne" -> Some Opcode.Ine
  | "slt" -> Some Opcode.Islt | "sle" -> Some Opcode.Isle
  | "sgt" -> Some Opcode.Isgt | "sge" -> Some Opcode.Isge
  | _ -> None

let fcmp_of_name = function
  | "oeq" -> Some Opcode.Feq | "one" -> Some Opcode.Fne
  | "olt" -> Some Opcode.Flt | "ole" -> Some Opcode.Fle
  | "ogt" -> Some Opcode.Fgt | "oge" -> Some Opcode.Fge
  | _ -> None

(* "word rest" split. *)
let head_word ~line s =
  let s = strip s in
  match String.index_opt s ' ' with
  | Some i ->
    (String.sub s 0 i, strip (String.sub s (i + 1) (String.length s - i - 1)))
  | None ->
    if s = "" then fail ~line "empty instruction" else (s, "")

let parse_check_kind ~line s =
  let s = strip s in
  if starts_with ~prefix:"single " s then
    Instr.Single (parse_value ~line (after ~prefix:"single " s))
  else if starts_with ~prefix:"double " s then begin
    match split_commas (after ~prefix:"double " s) with
    | [ a; b ] -> Instr.Double (parse_value ~line a, parse_value ~line b)
    | _ -> fail ~line "bad double check %S" s
  end
  else if starts_with ~prefix:"range [" s then begin
    let body = after ~prefix:"range [" s in
    match String.index_opt body ']' with
    | None -> fail ~line "unterminated range %S" s
    | Some i ->
      (match split_commas (String.sub body 0 i) with
       | [ lo; hi ] -> Instr.Range (parse_value ~line lo, parse_value ~line hi)
       | _ -> fail ~line "bad range %S" s)
  end
  else fail ~line "bad check kind %S" s

let parse_kind ~line code =
  let op_name, rest = head_word ~line code in
  match binop_of_name op_name with
  | Some op ->
    (match split_commas rest with
     | [ a; b ] -> Instr.Binop (op, parse_operand ~line a, parse_operand ~line b)
     | _ -> fail ~line "binop needs two operands: %S" code)
  | None ->
    (match unop_of_name op_name with
     | Some op -> Instr.Unop (op, parse_operand ~line rest)
     | None ->
       (match op_name with
        | "icmp" | "fcmp" ->
          let pred, rest = head_word ~line rest in
          (match split_commas rest with
           | [ a; b ] ->
             let a = parse_operand ~line a and b = parse_operand ~line b in
             if op_name = "icmp" then
               (match icmp_of_name pred with
                | Some p -> Instr.Icmp (p, a, b)
                | None -> fail ~line "bad icmp predicate %S" pred)
             else
               (match fcmp_of_name pred with
                | Some p -> Instr.Fcmp (p, a, b)
                | None -> fail ~line "bad fcmp predicate %S" pred)
           | _ -> fail ~line "cmp needs two operands: %S" code)
        | "select" ->
          (match split_commas rest with
           | [ c; a; b ] ->
             Instr.Select
               (parse_operand ~line c, parse_operand ~line a,
                parse_operand ~line b)
           | _ -> fail ~line "select needs three operands: %S" code)
        | "const" -> Instr.Const (parse_value ~line rest)
        | "load" -> Instr.Load (parse_operand ~line rest)
        | "store" ->
          (match split_commas rest with
           | [ a; v ] -> Instr.Store (parse_operand ~line a, parse_operand ~line v)
           | _ -> fail ~line "store needs two operands: %S" code)
        | "alloc" -> Instr.Alloc (parse_operand ~line rest)
        | "call" ->
          (* call @name(args) *)
          if not (starts_with ~prefix:"@" rest) then
            fail ~line "bad call %S" code
          else begin
            match String.index_opt rest '(' with
            | None -> fail ~line "bad call %S" code
            | Some i ->
              let name = String.sub rest 1 (i - 1) in
              (match String.rindex_opt rest ')' with
               | None -> fail ~line "unterminated call %S" code
               | Some j ->
                 let args = String.sub rest (i + 1) (j - i - 1) in
                 Instr.Call
                   (name, List.map (parse_operand ~line) (split_commas args)))
          end
        | "dup_check" ->
          (* dup_check a == b *)
          (match Str_split.split_on_string " == " rest with
           | [ a; b ] ->
             Instr.Dup_check (parse_operand ~line a, parse_operand ~line b)
           | _ -> fail ~line "bad dup_check %S" code)
        | "value_check" ->
          (* value_check op in kind *)
          (match Str_split.split_on_string " in " rest with
           | [ op; kind ] ->
             Instr.Value_check (parse_check_kind ~line kind, parse_operand ~line op)
           | _ -> fail ~line "bad value_check %S" code)
        | _ -> fail ~line "unknown instruction %S" code))

(* phi: "%rN = phi [lbl: op], [lbl: op]" *)
let parse_phi_incoming ~line rest =
  let rec collect acc s =
    let s = strip s in
    if s = "" then List.rev acc
    else if s.[0] = ',' then collect acc (String.sub s 1 (String.length s - 1))
    else if s.[0] = '[' then begin
      match String.index_opt s ']' with
      | None -> fail ~line "unterminated phi edge %S" s
      | Some i ->
        let inner = String.sub s 1 (i - 1) in
        (match String.index_opt inner ':' with
         | None -> fail ~line "bad phi edge %S" inner
         | Some j ->
           let lbl = strip (String.sub inner 0 j) in
           let op =
             parse_operand ~line
               (String.sub inner (j + 1) (String.length inner - j - 1))
           in
           collect ((lbl, op) :: acc)
             (String.sub s (i + 1) (String.length s - i - 1)))
    end
    else fail ~line "bad phi incoming list %S" s
  in
  collect [] rest

let parse_terminator ~line code =
  let word, rest = head_word ~line code in
  match word with
  | "ret" ->
    if rest = "" then Instr.Ret None
    else Instr.Ret (Some (parse_operand ~line rest))
  | "jmp" -> Instr.Jmp rest
  | "br" ->
    (match split_commas rest with
     | [ c; t; f ] -> Instr.Br (parse_operand ~line c, t, f)
     | _ -> fail ~line "bad br %S" code)
  | _ -> fail ~line "unknown terminator %S" code

(* ----- program assembly ----- *)

type pending_func = {
  pf_name : string;
  pf_params : Instr.reg list;
  mutable pf_blocks : (string * Instr.phi list * Instr.t list * Instr.terminator option) list;
}

(** [parse text] rebuilds a program from {!Printer} output. *)
let parse text =
  let prog = Prog.create () in
  let max_reg = ref (-1) and max_uid = ref (-1) in
  let note_reg r = if r > !max_reg then max_reg := r in
  let note_uid u = if u > !max_uid then max_uid := u in
  let fresh_uid () =
    (* uids are mandatory in printed output; fall back gracefully. *)
    incr max_uid;
    !max_uid
  in
  let funcs : pending_func list ref = ref [] in
  let current_func : pending_func option ref = ref None in
  let current_label = ref None in
  let cur_phis = ref [] and cur_body = ref [] and cur_term = ref None in
  let flush_block () =
    match !current_func, !current_label with
    | Some pf, Some label ->
      pf.pf_blocks <-
        pf.pf_blocks
        @ [ (label, List.rev !cur_phis, List.rev !cur_body, !cur_term) ];
      current_label := None;
      cur_phis := [];
      cur_body := [];
      cur_term := None
    | _, _ -> ()
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let code, uid, origin = split_comment ~line raw in
      if code = "" then ()
      else if starts_with ~prefix:"func @" code then begin
        flush_block ();
        (match String.index_opt code '(' with
         | None -> fail ~line "bad func header %S" code
         | Some i ->
           let name = String.sub code 6 (i - 6) in
           (match String.rindex_opt code ')' with
            | None -> fail ~line "bad func header %S" code
            | Some j ->
              let params_text = String.sub code (i + 1) (j - i - 1) in
              let params =
                List.map (parse_reg ~line) (split_commas params_text)
              in
              List.iter note_reg params;
              let pf = { pf_name = name; pf_params = params; pf_blocks = [] } in
              funcs := pf :: !funcs;
              current_func := Some pf))
      end
      else if code = "}" then flush_block ()
      else if String.length code > 1 && code.[String.length code - 1] = ':'
              && not (String.contains code ' ') then begin
        flush_block ();
        current_label := Some (String.sub code 0 (String.length code - 1))
      end
      else begin
        (* Instruction, phi, or terminator inside the current block. *)
        let uid_value = match uid with Some u -> note_uid u; u | None -> fresh_uid () in
        match String.index_opt code '=' with
        | Some i when String.length code > 0 && code.[0] = '%' ->
          let dest = parse_reg ~line (String.sub code 0 i) in
          note_reg dest;
          let rhs = strip (String.sub code (i + 1) (String.length code - i - 1)) in
          if starts_with ~prefix:"phi " rhs then begin
            let incoming = parse_phi_incoming ~line (after ~prefix:"phi " rhs) in
            cur_phis :=
              { Instr.phi_uid = uid_value; phi_dest = dest; incoming;
                phi_origin = origin }
              :: !cur_phis
          end
          else
            cur_body :=
              { Instr.uid = uid_value; dest = Some dest;
                kind = parse_kind ~line rhs; origin }
              :: !cur_body
        | Some _ | None ->
          let word, _ = head_word ~line code in
          (match word with
           | "ret" | "jmp" | "br" ->
             cur_term := Some (parse_terminator ~line code)
           | _ ->
             cur_body :=
               { Instr.uid = uid_value; dest = None;
                 kind = parse_kind ~line code; origin }
               :: !cur_body)
      end)
    lines;
  flush_block ();
  (* Materialize functions. *)
  List.iter
    (fun pf ->
      match pf.pf_blocks with
      | [] -> fail ~line:0 "function %s has no blocks" pf.pf_name
      | (entry_label, _, _, _) :: _ ->
        let f =
          { Func.name = pf.pf_name; params = pf.pf_params;
            entry = entry_label; blocks = []; index = Hashtbl.create 16 }
        in
        List.iter
          (fun (label, phis, body, term) ->
            let b = Block.create ~label in
            b.phis <- phis;
            b.body <- Array.of_list body;
            (match term with
             | Some t -> b.term <- t
             | None -> fail ~line:0 "block %s lacks a terminator" label);
            Hashtbl.replace f.index label b;
            f.blocks <- f.blocks @ [ b ])
          pf.pf_blocks;
        Prog.register_func prog f)
    (List.rev !funcs);
  prog.next_reg <- !max_reg + 1;
  prog.next_uid <- !max_uid + 1;
  Verifier.verify prog;
  prog
