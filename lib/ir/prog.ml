(** A program: a set of functions plus the counters that mint fresh
    registers and instruction uids.

    The counters live on the program so that transformation passes
    (duplication, check insertion) can create instructions whose uids never
    collide with existing ones — profiling data is keyed by uid. *)

type t = {
  mutable funcs : Func.t list;
  mutable next_reg : int;
  mutable next_uid : int;
  by_name : (string, Func.t) Hashtbl.t;
      (** name -> function, kept in sync by {!add_func}/{!register_func} so
          every [call] resolves in O(1) instead of scanning [funcs] *)
}

let create () =
  { funcs = []; next_reg = 0; next_uid = 0; by_name = Hashtbl.create 8 }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  u

(** Append an already-built function, indexing it by name.  Every code path
    that grows [funcs] must go through here (or {!add_func}) so the name
    index never goes stale. *)
let register_func t (f : Func.t) =
  if Hashtbl.mem t.by_name f.name then
    invalid_arg (Printf.sprintf "duplicate function %S" f.name);
  t.funcs <- t.funcs @ [ f ];
  Hashtbl.replace t.by_name f.name f

let add_func t ~name ~n_params ~entry_label =
  let params = List.init n_params (fun _ -> fresh_reg t) in
  let f = Func.create ~name ~params ~entry_label in
  register_func t f;
  f

let find_func t name =
  match Hashtbl.find_opt t.by_name name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "no function %S" name)

let mem_func t name = Hashtbl.mem t.by_name name

let iter_funcs f t = List.iter f t.funcs

let instr_count t =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 t.funcs

(** Find the instruction with the given uid, with its function and block. *)
let find_instr t uid =
  let found = ref None in
  iter_funcs
    (fun f ->
      Func.iter_blocks
        (fun b ->
          Array.iter
            (fun (ins : Instr.t) -> if ins.uid = uid then found := Some (f, b, ins))
            b.body)
        f)
    t;
  !found
