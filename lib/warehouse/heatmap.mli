(** Per-instruction SDC heatmaps: the join of a campaign journal with the
    static coverage classification (DESIGN.md §11 made per-site).

    Every injected trial records the register it flipped; in SSA with
    program-wide register numbering that register has exactly one
    defining site (instruction, phi or parameter — {!Analysis.Usedef}),
    so the join attributes each injection to the instruction whose value
    it corrupted, with no interpreter involvement at all.  The rendered
    listing shows, per site, how many injections landed there and how
    they resolved (SDC / detected / masked / other) next to the static
    protection status — the measured column the static analyzer's
    prediction is checked against.

    Accounting invariant: the per-site totals, including the two pseudo
    sites (control-fault injections hit a branch target, not a register;
    unmapped registers have no recorded definition), sum exactly to the
    journal's injected-trial count. *)

type site = {
  s_func : string;
  s_block : string;      (** ["" ] for parameter pseudo-sites *)
  s_uid : int;           (** instruction/phi uid; [-1] for parameters *)
  s_desc : string;       (** printed instruction, phi or parameter *)
  s_status : string;     (** static coverage status name, or ["—"] *)
  s_sdc_prone : bool;    (** statically SDC-prone (unprotected exposure) *)
  s_total : int;
  s_sdc : int;
  s_detected : int;
  s_masked : int;
  s_other : int;
}

type t = {
  hm_label : string;
  hm_technique : string;
  hm_trials : int;           (** all trials in the journal *)
  hm_injected : int;         (** trials that recorded an injection *)
  hm_sites : site list;      (** program order; two pseudo rows —
                                 ["(control faults)"] then
                                 ["(unmapped)"] — last, present only
                                 when nonzero *)
  hm_static_fraction : float;       (** static SDC-prone fraction *)
  hm_measured_sdc : Obs.Stats.interval;  (** measured SDC rate, Wilson *)
}

(** Build the heatmap for one program from its journal trial views. *)
val build :
  prog:Ir.Prog.t ->
  cov:Analysis.Coverage.t ->
  label:string ->
  technique:string ->
  Faults.Journal.view list ->
  t

(** Sum of every site's [s_total] — always equals [hm_injected]. *)
val total_injections : t -> int

(** RFC 4180 CSV, one row per site plus a header. *)
val to_csv : t -> string

(** Standalone HTML page: the annotated listing with a single-hue
    sequential color scale on injection density and the SDC split as
    text (never color alone). *)
val to_html : t -> string
