(** Per-instruction SDC heatmaps; see the interface for the join. *)

type site = {
  s_func : string;
  s_block : string;
  s_uid : int;
  s_desc : string;
  s_status : string;
  s_sdc_prone : bool;
  s_total : int;
  s_sdc : int;
  s_detected : int;
  s_masked : int;
  s_other : int;
}

type t = {
  hm_label : string;
  hm_technique : string;
  hm_trials : int;
  hm_injected : int;
  hm_sites : site list;
  hm_static_fraction : float;
  hm_measured_sdc : Obs.Stats.interval;
}

(* Tally bucket addresses: a uid covers instructions and phis (the
   program-wide uid space is shared); parameters have no uid and key on
   (function, register).  The two pseudo buckets keep the accounting
   exact — every injected trial lands somewhere. *)
type key =
  | K_uid of int
  | K_param of string * int
  | K_control
  | K_unmapped

type cell = {
  mutable c_total : int;
  mutable c_sdc : int;
  mutable c_detected : int;
  mutable c_masked : int;
  mutable c_other : int;
}

let classify_outcome name =
  match Faults.Classify.of_name name with
  | Some o when Faults.Classify.is_sdc o -> `Sdc
  | Some Faults.Classify.Masked -> `Masked
  | Some
      ( Faults.Classify.Sw_detect | Faults.Classify.Hw_detect
      | Faults.Classify.Recovered | Faults.Classify.Unrecoverable ) ->
    `Detected
  | Some _ | None -> `Other

let sdc_prone_status = function
  | Analysis.Coverage.Unprotected | Analysis.Coverage.Dup_unchecked -> true
  | Analysis.Coverage.Dup_checked | Analysis.Coverage.Value_checked
  | Analysis.Coverage.Shadow | Analysis.Coverage.Check ->
    false

let build ~(prog : Ir.Prog.t) ~(cov : Analysis.Coverage.t) ~label ~technique
    views =
  (* Register -> defining site, program-wide.  SSA plus program-wide
     register numbering make this total and unambiguous; first definition
     wins defensively. *)
  let site_of_reg = Hashtbl.create 256 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let ud = Analysis.Usedef.compute f in
      Hashtbl.iter
        (fun reg def ->
          if not (Hashtbl.mem site_of_reg reg) then
            Hashtbl.replace site_of_reg reg
              (match def with
               | Analysis.Usedef.Param -> K_param (f.Ir.Func.name, reg)
               | Analysis.Usedef.Phi_def (_, phi) ->
                 K_uid phi.Ir.Instr.phi_uid
               | Analysis.Usedef.Instr_def (_, ins) ->
                 K_uid ins.Ir.Instr.uid))
        ud.Analysis.Usedef.defs)
    prog.Ir.Prog.funcs;
  let cells = Hashtbl.create 256 in
  let cell key =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
      let c =
        { c_total = 0; c_sdc = 0; c_detected = 0; c_masked = 0; c_other = 0 }
      in
      Hashtbl.replace cells key c;
      c
  in
  let trials = ref 0 and injected = ref 0 and sdc_trials = ref 0 in
  List.iter
    (fun (v : Faults.Journal.view) ->
      incr trials;
      let cls = classify_outcome v.Faults.Journal.v_outcome in
      if cls = `Sdc then incr sdc_trials;
      match v.Faults.Journal.v_inj_reg with
      | None -> ()   (* empty-ring draw: nothing was injected *)
      | Some reg ->
        incr injected;
        let key =
          if reg < 0 then K_control
          else
            match Hashtbl.find_opt site_of_reg reg with
            | Some k -> k
            | None -> K_unmapped
        in
        let c = cell key in
        c.c_total <- c.c_total + 1;
        (match cls with
         | `Sdc -> c.c_sdc <- c.c_sdc + 1
         | `Detected -> c.c_detected <- c.c_detected + 1
         | `Masked -> c.c_masked <- c.c_masked + 1
         | `Other -> c.c_other <- c.c_other + 1))
    views;
  (* Static status lookups for the side-by-side column. *)
  let status_of_uid = Hashtbl.create 256 in
  List.iter
    (fun (r : Analysis.Coverage.instr_row) ->
      if not (Hashtbl.mem status_of_uid r.Analysis.Coverage.i_uid) then
        Hashtbl.replace status_of_uid r.Analysis.Coverage.i_uid
          r.Analysis.Coverage.i_status)
    cov.Analysis.Coverage.instrs;
  let status_of_reg = Analysis.Coverage.reg_status cov in
  let counts_of key =
    match Hashtbl.find_opt cells key with
    | Some c -> (c.c_total, c.c_sdc, c.c_detected, c.c_masked, c.c_other)
    | None -> (0, 0, 0, 0, 0)
  in
  let mk ~func ~block ~uid ~desc ~status key =
    let total, sdc, detected, masked, other = counts_of key in
    let status_name, prone =
      match status with
      | Some st ->
        (Analysis.Coverage.status_name st, sdc_prone_status st)
      | None -> ("—", false)
    in
    { s_func = func;
      s_block = block;
      s_uid = uid;
      s_desc = desc;
      s_status = status_name;
      s_sdc_prone = prone;
      s_total = total;
      s_sdc = sdc;
      s_detected = detected;
      s_masked = masked;
      s_other = other }
  in
  let sites = ref [] in
  let push s = sites := s :: !sites in
  List.iter
    (fun (f : Ir.Func.t) ->
      let fname = f.Ir.Func.name in
      List.iter
        (fun reg ->
          push
            (mk ~func:fname ~block:"" ~uid:(-1)
               ~desc:(Printf.sprintf "param %%r%d" reg)
               ~status:(status_of_reg reg)
               (K_param (fname, reg))))
        f.Ir.Func.params;
      List.iter
        (fun (b : Ir.Block.t) ->
          let bl = b.Ir.Block.label in
          List.iter
            (fun (phi : Ir.Instr.phi) ->
              push
                (mk ~func:fname ~block:bl ~uid:phi.Ir.Instr.phi_uid
                   ~desc:
                     (Format.asprintf "%%r%d = phi" phi.Ir.Instr.phi_dest)
                   ~status:(Hashtbl.find_opt status_of_uid
                              phi.Ir.Instr.phi_uid)
                   (K_uid phi.Ir.Instr.phi_uid)))
            b.Ir.Block.phis;
          Array.iter
            (fun (ins : Ir.Instr.t) ->
              let desc =
                match ins.Ir.Instr.dest with
                | Some r ->
                  Format.asprintf "%%r%d = %a" r Ir.Printer.pp_kind
                    ins.Ir.Instr.kind
                | None ->
                  Format.asprintf "%a" Ir.Printer.pp_kind ins.Ir.Instr.kind
              in
              push
                (mk ~func:fname ~block:bl ~uid:ins.Ir.Instr.uid ~desc
                   ~status:(Hashtbl.find_opt status_of_uid ins.Ir.Instr.uid)
                   (K_uid ins.Ir.Instr.uid)))
            b.Ir.Block.body)
        f.Ir.Func.blocks)
    prog.Ir.Prog.funcs;
  let pseudo name key =
    let total, _, _, _, _ = counts_of key in
    if total = 0 then ()
    else push (mk ~func:"" ~block:"" ~uid:(-1) ~desc:name ~status:None key)
  in
  pseudo "(control faults)" K_control;
  pseudo "(unmapped)" K_unmapped;
  { hm_label = label;
    hm_technique = technique;
    hm_trials = !trials;
    hm_injected = !injected;
    hm_sites = List.rev !sites;
    hm_static_fraction = cov.Analysis.Coverage.sdc_prone_fraction;
    hm_measured_sdc = Obs.Stats.wilson ~k:!sdc_trials ~n:!trials () }

let total_injections t =
  List.fold_left (fun acc s -> acc + s.s_total) 0 t.hm_sites

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let csv_field s =
  let needs_quote =
    String.exists (function '"' | ',' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "func,block,uid,site,status,sdc_prone,injections,sdc,detected,masked,other\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (String.concat ","
           [ csv_field s.s_func;
             csv_field s.s_block;
             string_of_int s.s_uid;
             csv_field (String.trim s.s_desc);
             csv_field s.s_status;
             string_of_bool s.s_sdc_prone;
             string_of_int s.s_total;
             string_of_int s.s_sdc;
             string_of_int s.s_detected;
             string_of_int s.s_masked;
             string_of_int s.s_other ]);
      Buffer.add_char buf '\n')
    t.hm_sites;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* HTML                                                                *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Sequential single-hue ramp (light #f7fbff -> dark #08519c), the
   magnitude encoding for injection density; SDC counts are text in a
   reserved red and never color alone — the numbers are always printed. *)
let ramp_color frac =
  let lerp a b t = int_of_float (float_of_int a +. ((float_of_int b -. float_of_int a) *. t)) in
  (* sqrt stretch: campaign injections are residency-weighted, so a few
     hot sites would otherwise wash every other row to white *)
  let u = sqrt (Float.max 0.0 (Float.min 1.0 frac)) in
  Printf.sprintf "#%02x%02x%02x" (lerp 0xf7 0x08 u) (lerp 0xfb 0x51 u)
    (lerp 0xff 0x9c u)

let to_html t =
  let buf = Buffer.create 16384 in
  let add = Buffer.add_string buf in
  let max_total =
    List.fold_left (fun m s -> max m s.s_total) 1 t.hm_sites
  in
  let title =
    Printf.sprintf "SDC heatmap — %s (%s)" t.hm_label t.hm_technique
  in
  add "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  add (Printf.sprintf "<title>%s</title>\n" (html_escape title));
  add
    {|<style>
body { font-family: system-ui, sans-serif; margin: 24px; color: #1a1a1a; }
h1 { font-size: 18px; }
p.summary { color: #555; max-width: 64em; }
table { border-collapse: collapse; font-size: 13px; }
th { text-align: left; font-weight: 600; color: #555; padding: 4px 10px;
     border-bottom: 1px solid #ccc; position: sticky; top: 0; background: #fff; }
td { padding: 3px 10px; border-bottom: 1px solid #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
td.code { font-family: ui-monospace, monospace; white-space: pre; }
tr.blockhdr td { background: #f2f2f2; font-weight: 600; color: #333; }
td.inj { text-align: right; font-variant-numeric: tabular-nums; }
span.sdc { color: #b2182b; font-weight: 600; }
span.prone { color: #b2182b; }
.legend { margin: 12px 0; font-size: 12px; color: #555; }
.legend span.swatch { display: inline-block; width: 28px; height: 12px;
  margin-right: 2px; vertical-align: middle; border: 1px solid #ddd; }
</style>
</head>
<body>
|};
  add (Printf.sprintf "<h1>%s</h1>\n" (html_escape title));
  add
    (Printf.sprintf
       "<p class=\"summary\">%d trials, %d injected. Static SDC-prone \
        fraction %.1f%% vs measured SDC rate %.1f%% [%.1f, %.1f] \
        (Wilson 95%%). Each row is one instruction; the <em>inj</em> \
        column is shaded light&rarr;dark by injection count, and the \
        outcome split is printed as numbers beside it.</p>\n"
       t.hm_trials t.hm_injected
       (100.0 *. t.hm_static_fraction)
       (100.0 *. t.hm_measured_sdc.Obs.Stats.ci_estimate)
       (100.0 *. t.hm_measured_sdc.Obs.Stats.ci_low)
       (100.0 *. t.hm_measured_sdc.Obs.Stats.ci_high));
  add "<div class=\"legend\">injections: ";
  List.iter
    (fun f ->
      add
        (Printf.sprintf "<span class=\"swatch\" style=\"background:%s\"></span>"
           (ramp_color f)))
    [ 0.0; 0.04; 0.16; 0.36; 0.64; 1.0 ];
  add
    (Printf.sprintf
       " 0&rarr;%d &nbsp;&middot;&nbsp; <span class=\"sdc\">SDC</span> \
        counts in red &nbsp;&middot;&nbsp; &#9888; = statically \
        SDC-prone</div>\n"
       max_total);
  add
    "<table>\n<thead><tr><th>site</th><th>static status</th>\
     <th>inj</th><th>SDC</th><th>det</th><th>mask</th><th>other</th>\
     </tr></thead>\n<tbody>\n";
  let current_block = ref None in
  List.iter
    (fun s ->
      let blk =
        if s.s_func = "" then None else Some (s.s_func, s.s_block)
      in
      if blk <> !current_block then begin
        current_block := blk;
        match blk with
        | Some (f, b) ->
          add
            (Printf.sprintf
               "<tr class=\"blockhdr\"><td colspan=\"7\">@%s%s</td></tr>\n"
               (html_escape f)
               (if b = "" then " (params)"
                else Printf.sprintf " / %s:" (html_escape b)))
        | None ->
          add
            "<tr class=\"blockhdr\"><td colspan=\"7\">pseudo sites</td></tr>\n"
      end;
      let shade =
        ramp_color (float_of_int s.s_total /. float_of_int max_total)
      in
      let ink = if s.s_total * 3 > max_total then "#fff" else "#1a1a1a" in
      add
        (Printf.sprintf
           "<tr><td class=\"code\">%s</td><td>%s%s</td>\
            <td class=\"inj\" style=\"background:%s;color:%s\" \
            title=\"%d of %d injections\">%d</td>\
            <td class=\"num\">%s</td><td class=\"num\">%d</td>\
            <td class=\"num\">%d</td><td class=\"num\">%d</td></tr>\n"
           (html_escape (String.trim s.s_desc))
           (html_escape s.s_status)
           (if s.s_sdc_prone then " <span class=\"prone\">&#9888;</span>"
            else "")
           shade ink s.s_total t.hm_injected s.s_total
           (if s.s_sdc > 0 then
              Printf.sprintf "<span class=\"sdc\">%d</span>" s.s_sdc
            else "0")
           s.s_detected s.s_masked s.s_other))
    t.hm_sites;
  add "</tbody>\n</table>\n</body>\n</html>\n";
  Buffer.contents buf
