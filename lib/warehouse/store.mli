(** Content-addressed store of campaign runs (DESIGN.md §15).

    A warehouse directory files every ingested campaign journal under a
    *run key* — the digest of everything that determines the campaign's
    results (program, technique, fault model, recovery/taint/adaptive
    configuration, seed, trial count) and nothing that doesn't (worker
    domains, git revision, wall-clock timings, host).  Campaigns are
    bit-deterministic in the seed at any domain count, so the key is a
    true content address: the same configuration always produces the
    same trials, and re-ingesting them is a no-op.

    Layout under the warehouse directory:
    - [index.jsonl] — append-only index, one {!schema} record per
      ingested run (outcome counts, Wilson intervals, throughput, host,
      journal schema) or bench snapshot;
    - [runs/<key>.jsonl] — the journal, byte-for-byte;
    - [bench/<key>.json] — ingested BENCH_campaign.json snapshots, for
      [bench-diff --baseline latest:<dir>].

    This is the seed of the campaign-server result cache (ROADMAP item
    2): a request whose key is already filed costs one index lookup. *)

(** Index record schema identifier: ["softft.warehouse.v1"]. *)
val schema : string

(** Canonical program digest: the hex MD5 of the printed IR
    ({!Ir.Printer.prog_to_string}) — stable across process runs and
    domain counts, sensitive to any instruction, operand or uid
    change. *)
val prog_digest : Ir.Prog.t -> string

(** [run_key ?prog_digest manifest] derives the run key from a journal
    manifest.  Includes label, technique, fault kind, hardware window,
    checkpoint interval, taint tracing, seed, trial count, the adaptive
    CI target and the protection-plan document when present, and the
    program digest when given; excludes domains, git, timings and host,
    so the key is bit-identical across [--domains 1/2/4] and across
    machines. *)
val run_key : ?prog_digest:string -> Obs.Json.t -> string

(** One ingested run as recorded in the index. *)
type entry = {
  e_seq : int;                      (** ingestion order, dense from 1 *)
  e_key : string;
  e_label : string;
  e_technique : string option;
  e_journal_schema : string;
  e_git : string;
  e_prog_digest : string option;
  e_trials : int;
  e_seed : int;
  e_domains : int;
  e_hw_window : int;
  e_fault_kind : string;
  e_checkpoint_interval : int;
  e_taint_trace : bool;
  e_ci_target : float option;       (** adaptive (v5) runs only *)
  e_path : string;                  (** journal path, relative to dir *)
  e_host : string;
  e_host_cores : int;
  e_ingested_at : float;            (** epoch seconds at ingestion *)
  e_trials_per_sec : float option;  (** from manifest timings, if any *)
  e_counts : (string * int) list;   (** outcome name -> trials *)
  e_sdc : Obs.Stats.interval;       (** SDC aggregate; the adaptive
                                        mass-reweighted interval on v5
                                        runs, plain Wilson otherwise *)
}

(** Parse the index; run entries only, in ingestion order.  An absent
    index is an empty warehouse, a malformed line raises [Failure]. *)
val entries : dir:string -> entry list

(** Same, but reading a bare index file — what the [regress] gate's
    committed-baseline snapshot is. *)
val entries_of_file : string -> entry list

(** [ingest ?prog_digest ~dir path] files journal [path]: computes its
    key, copies it to [runs/<key>.jsonl] and appends an index record —
    unless the key is already filed, in which case nothing is written.
    Raises {!Faults.Journal.Malformed} on a broken journal. *)
val ingest :
  ?prog_digest:string ->
  dir:string ->
  string ->
  [ `Ingested of entry | `Duplicate of entry ]

(** File a finished campaign straight from memory — the body of the
    [?warehouse] sink of {!Faults.Campaign.run}/[run_adaptive]: writes
    the journal ([manifest] plus [trials]) to [runs/<key>.jsonl] and
    indexes it, or does nothing when the key is already filed. *)
val file_run :
  ?prog_digest:string ->
  dir:string ->
  manifest:Obs.Json.t ->
  trials:Faults.Campaign.trial list ->
  unit ->
  [ `Ingested of entry | `Duplicate of entry ]

(** File a BENCH_campaign.json snapshot under the digest of its bytes;
    duplicate content is a no-op.  Returns the filed path (relative to
    [dir]). *)
val ingest_bench :
  dir:string -> string -> [ `Ingested of string | `Duplicate of string ]

(** Absolute path of the most recently ingested bench snapshot, if any —
    what [bench-diff --baseline latest:<dir>] resolves to. *)
val latest_bench : dir:string -> string option

(** [resolve ?dir key_or_path] turns a CLI argument into a journal path:
    an existing file is itself; otherwise it must be a run key (or
    unique key prefix) in the warehouse at [dir].  Raises [Failure] with
    a human message on no match or an ambiguous prefix. *)
val resolve : ?dir:string -> string -> string

(** {1 Cross-run diffing} *)

(** One compared rate: [dr_significant] only when the two Wilson
    intervals are disjoint ({!Obs.Stats.disjoint}) — overlapping
    intervals never flag, so a run diffed against itself reports zero
    significant deltas by construction. *)
type diff_row = {
  dr_name : string;
  dr_old_k : int;
  dr_old_n : int;
  dr_old : Obs.Stats.interval;
  dr_new_k : int;
  dr_new_n : int;
  dr_new : Obs.Stats.interval;
  dr_significant : bool;
}

type diff = {
  df_old : string;             (** old journal path *)
  df_new : string;
  df_outcomes : diff_row list; (** per outcome, canonical order first *)
  df_sdc : diff_row;           (** the SDC aggregate *)
  df_strata : diff_row list;   (** per-stratum SDC deltas; nonempty only
                                   when both runs carry v5 stratum ids *)
}

(** Diff two journals outcome by outcome. *)
val diff_runs : old_path:string -> new_path:string -> diff

(** {1 The regression gate} *)

(** One baseline/current run pair matched by configuration identity
    (label, technique, fault kind, hardware window, checkpoint interval,
    taint tracing — the latest run per identity on each side). *)
type regress_row = {
  rg_identity : string;
  rg_old : entry;
  rg_new : entry;
  rg_sdc : diff_row;             (** old vs new SDC aggregate *)
  rg_regressed : bool;           (** SDC rate up with disjoint intervals *)
  rg_improved : bool;            (** SDC rate down with disjoint intervals *)
  rg_throughput_ratio : float option;
      (** new/old trials-per-sec, only when both sides report it *)
}

type regress = {
  rx_rows : regress_row list;
  rx_only_old : entry list;      (** identities without a current run *)
  rx_only_new : entry list;
  rx_failures : string list;     (** human messages; nonempty fails the
                                     gate *)
}

(** Compare two index snapshots.  Coverage gate: any matched pair whose
    SDC rate rose with disjoint intervals is a failure.  Throughput gate
    (opt-in): with [tolerance_pct], a matched pair whose throughput
    dropped more than that — on the same [host_cores] only, mirroring
    [bench-diff]'s host stand-down — is also a failure. *)
val regress :
  ?tolerance_pct:float ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  regress
