(** Campaign warehouse: the content-addressed run store ({!Store}) and
    the cross-run analytics that read it ({!Heatmap}; diffing and the
    regression gate live in {!Store}).  DESIGN.md §15. *)

module Store = Store
module Heatmap = Heatmap
