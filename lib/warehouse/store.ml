(** Content-addressed campaign store; see the interface for the layout. *)

let schema = "softft.warehouse.v1"

let prog_digest prog =
  Digest.to_hex (Digest.string (Ir.Printer.prog_to_string prog))

(* ------------------------------------------------------------------ *)
(* Run keys                                                            *)
(* ------------------------------------------------------------------ *)

let mstr name m =
  match Obs.Json.member name m with
  | Some j -> Option.value ~default:"" (Obs.Json.to_str j)
  | None -> ""

let mint ?(default = 0) name m =
  match Obs.Json.member name m with
  | Some j -> Option.value ~default (Obs.Json.to_int j)
  | None -> default

let mbool name m =
  match Obs.Json.member name m with
  | Some j -> Option.value ~default:false (Obs.Json.to_bool j)
  | None -> false

(* Everything that determines the trials goes in; everything that only
   describes the circumstances of the run (domains, git, timings, host)
   stays out — the campaign determinism contract makes the former a
   complete address and the latter noise. *)
let run_key ?prog_digest manifest =
  let adaptive_tag =
    match Obs.Json.member "adaptive" manifest with
    | None -> "-"
    | Some a ->
      (match Obs.Json.member "ci_target" a with
       | Some (Obs.Json.Float f) -> Printf.sprintf "%.6g" f
       | Some (Obs.Json.Int i) -> string_of_int i
       | _ -> "?")
  in
  (* The protection plan (when the run executed one) is part of the run's
     identity: two plans with the same label shape must not collide. *)
  let plan_tag =
    match Obs.Json.member "plan" manifest with
    | None -> "-"
    | Some p -> Digest.to_hex (Digest.string (Obs.Json.to_string p))
  in
  let identity =
    String.concat "|"
      [ "softft.runkey.v2";
        "prog=" ^ Option.value ~default:"-" prog_digest;
        "label=" ^ mstr "label" manifest;
        "tech=" ^ mstr "technique" manifest;
        "fault=" ^ mstr "fault_kind" manifest;
        "hw=" ^ string_of_int (mint "hw_window" manifest);
        "ckpt=" ^ string_of_int (mint "checkpoint_interval" manifest);
        "taint=" ^ string_of_bool (mbool "taint_trace" manifest);
        "seed=" ^ string_of_int (mint "seed" manifest);
        "trials=" ^ string_of_int (mint "trials" manifest);
        "adaptive=" ^ adaptive_tag;
        "plan=" ^ plan_tag ]
  in
  Digest.to_hex (Digest.string identity)

(* ------------------------------------------------------------------ *)
(* Index records                                                       *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_seq : int;
  e_key : string;
  e_label : string;
  e_technique : string option;
  e_journal_schema : string;
  e_git : string;
  e_prog_digest : string option;
  e_trials : int;
  e_seed : int;
  e_domains : int;
  e_hw_window : int;
  e_fault_kind : string;
  e_checkpoint_interval : int;
  e_taint_trace : bool;
  e_ci_target : float option;
  e_path : string;
  e_host : string;
  e_host_cores : int;
  e_ingested_at : float;
  e_trials_per_sec : float option;
  e_counts : (string * int) list;
  e_sdc : Obs.Stats.interval;
}

let index_path dir = Filename.concat dir "index.jsonl"

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let interval_json (iv : Obs.Stats.interval) =
  Obs.Json.Obj
    [ ("est", Obs.Json.Float iv.ci_estimate);
      ("lo", Obs.Json.Float iv.ci_low);
      ("hi", Obs.Json.Float iv.ci_high) ]

let interval_of_json j =
  let f name =
    match Obs.Json.member name j with
    | Some v -> Option.value ~default:0.0 (Obs.Json.to_float v)
    | None -> 0.0
  in
  { Obs.Stats.ci_estimate = f "est"; ci_low = f "lo"; ci_high = f "hi" }

let entry_json e =
  Obs.Json.Obj
    ([ ("type", Obs.Json.Str "run");
       ("schema", Obs.Json.Str schema);
       ("seq", Obs.Json.Int e.e_seq);
       ("key", Obs.Json.Str e.e_key);
       ("label", Obs.Json.Str e.e_label) ]
     @ opt_field "technique" (fun t -> Obs.Json.Str t) e.e_technique
     @ [ ("journal_schema", Obs.Json.Str e.e_journal_schema);
         ("git", Obs.Json.Str e.e_git) ]
     @ opt_field "prog_digest" (fun d -> Obs.Json.Str d) e.e_prog_digest
     @ [ ("trials", Obs.Json.Int e.e_trials);
         ("seed", Obs.Json.Int e.e_seed);
         ("domains", Obs.Json.Int e.e_domains);
         ("hw_window", Obs.Json.Int e.e_hw_window);
         ("fault_kind", Obs.Json.Str e.e_fault_kind);
         ("checkpoint_interval", Obs.Json.Int e.e_checkpoint_interval);
         ("taint_trace", Obs.Json.Bool e.e_taint_trace) ]
     @ opt_field "ci_target" (fun c -> Obs.Json.Float c) e.e_ci_target
     @ [ ("path", Obs.Json.Str e.e_path);
         ("host", Obs.Json.Str e.e_host);
         ("host_cores", Obs.Json.Int e.e_host_cores);
         ("ingested_at", Obs.Json.Float e.e_ingested_at) ]
     @ opt_field "trials_per_sec" (fun t -> Obs.Json.Float t)
         e.e_trials_per_sec
     @ [ ("counts",
          Obs.Json.Obj
            (List.map (fun (o, k) -> (o, Obs.Json.Int k)) e.e_counts));
         ("sdc", interval_json e.e_sdc) ])

let entry_of_json j =
  let str name = mstr name j in
  let opt_str name =
    match Obs.Json.member name j with
    | Some v -> Obs.Json.to_str v
    | None -> None
  in
  let opt_float name =
    match Obs.Json.member name j with
    | Some v -> Obs.Json.to_float v
    | None -> None
  in
  { e_seq = mint "seq" j;
    e_key = str "key";
    e_label = str "label";
    e_technique = opt_str "technique";
    e_journal_schema = str "journal_schema";
    e_git = str "git";
    e_prog_digest = opt_str "prog_digest";
    e_trials = mint "trials" j;
    e_seed = mint "seed" j;
    e_domains = mint "domains" j;
    e_hw_window = mint "hw_window" j;
    e_fault_kind = str "fault_kind";
    e_checkpoint_interval = mint "checkpoint_interval" j;
    e_taint_trace = mbool "taint_trace" j;
    e_ci_target = opt_float "ci_target";
    e_path = str "path";
    e_host = str "host";
    e_host_cores = mint "host_cores" j;
    e_ingested_at = Option.value ~default:0.0 (opt_float "ingested_at");
    e_trials_per_sec = opt_float "trials_per_sec";
    e_counts =
      (match Obs.Json.member "counts" j with
       | Some (Obs.Json.Obj fields) ->
         List.filter_map
           (fun (o, v) -> Option.map (fun k -> (o, k)) (Obs.Json.to_int v))
           fields
       | _ -> []);
    e_sdc =
      (match Obs.Json.member "sdc" j with
       | Some iv -> interval_of_json iv
       | None -> Obs.Stats.wilson ~k:0 ~n:0 ()) }

let index_lines_of_file path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | "" -> go acc
          | line ->
            (match Obs.Json.parse line with
             | j -> go (j :: acc)
             | exception Obs.Json.Parse_error msg ->
               failwith (Printf.sprintf "%s: malformed index line: %s" path msg))
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

let index_lines dir = index_lines_of_file (index_path dir)

let records_of_type ty dir =
  List.filter (fun j -> mstr "type" j = ty) (index_lines dir)

let entries ~dir = List.map entry_of_json (records_of_type "run" dir)

let entries_of_file path =
  List.map entry_of_json
    (List.filter (fun j -> mstr "type" j = "run") (index_lines_of_file path))

let next_seq lines =
  1 + List.fold_left (fun m j -> max m (mint "seq" j)) 0 lines

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append_index dir json =
  mkdir_p dir;
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (index_path dir)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Summarizing a journal into an index record                          *)
(* ------------------------------------------------------------------ *)

let outcome_rank =
  let ranks = Hashtbl.create 16 in
  List.iteri
    (fun i o -> Hashtbl.replace ranks (Faults.Classify.name o) i)
    Faults.Classify.all;
  fun name ->
    match Hashtbl.find_opt ranks name with
    | Some i -> (i, name)
    | None -> (max_int, name)   (* future outcomes sort last, by name *)

let sort_counts counts =
  List.sort (fun (a, _) (b, _) -> compare (outcome_rank a) (outcome_rank b))
    counts

let is_sdc_name name =
  match Faults.Classify.of_name name with
  | Some o -> Faults.Classify.is_sdc o
  | None -> false

(* Counts come from the trial records themselves, not the manifest, so
   v1 journals (no final stats) summarize identically to v4+ ones. *)
let summarize_journal path =
  let counts = Hashtbl.create 16 in
  let manifest, n =
    Faults.Journal.fold path ~init:0 ~f:(fun n v ->
      let o = v.Faults.Journal.v_outcome in
      Hashtbl.replace counts o
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o));
      n + 1)
  in
  let counts =
    sort_counts (Hashtbl.fold (fun o k acc -> (o, k) :: acc) counts [])
  in
  (manifest, n, counts)

let sdc_interval manifest ~counts ~n =
  (* The adaptive mass-reweighted interval is the honest one on v5 runs
     (raw stratified counts are allocation-biased); elsewhere plain
     Wilson on the pooled counts. *)
  match Obs.Json.member "adaptive" manifest with
  | Some a when Obs.Json.member "sdc" a <> None ->
    interval_of_json (Option.get (Obs.Json.member "sdc" a))
  | _ ->
    let k =
      List.fold_left
        (fun acc (o, k) -> if is_sdc_name o then acc + k else acc)
        0 counts
    in
    Obs.Stats.wilson ~k ~n ()

let entry_of_manifest ?prog_digest ~key ~seq ~path ~n ~counts manifest =
  let trials_per_sec =
    match Obs.Json.member "timings" manifest with
    | Some t ->
      (match Obs.Json.member "trials_sec" t with
       | Some s ->
         (match Obs.Json.to_float s with
          | Some sec when sec > 0.0 -> Some (float_of_int n /. sec)
          | _ -> None)
       | None -> None)
    | None -> None
  in
  let opt_str name =
    match Obs.Json.member name manifest with
    | Some v -> Obs.Json.to_str v
    | None -> None
  in
  { e_seq = seq;
    e_key = key;
    e_label = mstr "label" manifest;
    e_technique = opt_str "technique";
    e_journal_schema = mstr "schema" manifest;
    e_git = mstr "git" manifest;
    e_prog_digest = prog_digest;
    e_trials = n;
    e_seed = mint "seed" manifest;
    e_domains = mint "domains" manifest;
    e_hw_window = mint "hw_window" manifest;
    e_fault_kind = mstr "fault_kind" manifest;
    e_checkpoint_interval = mint "checkpoint_interval" manifest;
    e_taint_trace = mbool "taint_trace" manifest;
    e_ci_target =
      (match Obs.Json.member "adaptive" manifest with
       | Some a ->
         (match Obs.Json.member "ci_target" a with
          | Some v -> Obs.Json.to_float v
          | None -> None)
       | None -> None);
    e_path = path;
    e_host = Unix.gethostname ();
    e_host_cores = Domain.recommended_domain_count ();
    e_ingested_at = Unix.gettimeofday ();
    e_trials_per_sec = trials_per_sec;
    e_counts = counts;
    e_sdc = sdc_interval manifest ~counts ~n }

(* ------------------------------------------------------------------ *)
(* Ingestion                                                           *)
(* ------------------------------------------------------------------ *)

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic len)
  in
  let oc = open_out_bin dst in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc bytes)

let find_key dir key =
  List.find_opt (fun e -> e.e_key = key) (entries ~dir)

let file_indexed ?prog_digest ~dir ~manifest ~n ~counts write_journal =
  let key = run_key ?prog_digest manifest in
  match find_key dir key with
  | Some e -> `Duplicate e
  | None ->
    let rel = Filename.concat "runs" (key ^ ".jsonl") in
    mkdir_p (Filename.concat dir "runs");
    write_journal (Filename.concat dir rel);
    let seq = next_seq (index_lines dir) in
    let e =
      entry_of_manifest ?prog_digest ~key ~seq ~path:rel ~n ~counts manifest
    in
    append_index dir (entry_json e);
    `Ingested e

let ingest ?prog_digest ~dir path =
  let manifest, n, counts = summarize_journal path in
  file_indexed ?prog_digest ~dir ~manifest ~n ~counts (fun dst ->
    copy_file path dst)

let file_run ?prog_digest ~dir ~manifest ~trials () =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (t : Faults.Campaign.trial) ->
      let o = Faults.Classify.name t.outcome in
      Hashtbl.replace counts o
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    trials;
  let counts =
    sort_counts (Hashtbl.fold (fun o k acc -> (o, k) :: acc) counts [])
  in
  file_indexed ?prog_digest ~dir ~manifest ~n:(List.length trials) ~counts
    (fun dst -> Faults.Journal.write ~path:dst ~manifest ~trials ())

let ingest_bench ~dir path =
  let ic = open_in_bin path in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let key = Digest.to_hex (Digest.string bytes) in
  let rel = Filename.concat "bench" (key ^ ".json") in
  let already =
    List.exists
      (fun j -> mstr "key" j = key)
      (records_of_type "bench" dir)
  in
  if already then `Duplicate rel
  else begin
    mkdir_p (Filename.concat dir "bench");
    let oc = open_out_bin (Filename.concat dir rel) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc bytes);
    let seq = next_seq (index_lines dir) in
    append_index dir
      (Obs.Json.Obj
         [ ("type", Obs.Json.Str "bench");
           ("schema", Obs.Json.Str schema);
           ("seq", Obs.Json.Int seq);
           ("key", Obs.Json.Str key);
           ("path", Obs.Json.Str rel);
           ("host", Obs.Json.Str (Unix.gethostname ()));
           ("host_cores",
            Obs.Json.Int (Domain.recommended_domain_count ()));
           ("ingested_at", Obs.Json.Float (Unix.gettimeofday ())) ]);
    `Ingested rel
  end

let latest_bench ~dir =
  let latest =
    List.fold_left
      (fun best j ->
        match best with
        | Some b when mint "seq" b >= mint "seq" j -> best
        | _ -> Some j)
      None
      (records_of_type "bench" dir)
  in
  Option.map (fun j -> Filename.concat dir (mstr "path" j)) latest

let resolve ?dir arg =
  if Sys.file_exists arg then arg
  else
    match dir with
    | None ->
      failwith
        (Printf.sprintf
           "%s: no such file (pass --warehouse DIR to resolve run keys)" arg)
    | Some dir ->
      let matches =
        List.filter
          (fun e ->
            String.length arg > 0
            && String.length e.e_key >= String.length arg
            && String.sub e.e_key 0 (String.length arg) = arg)
          (entries ~dir)
      in
      (match matches with
       | [ e ] -> Filename.concat dir e.e_path
       | [] ->
         failwith
           (Printf.sprintf "%s: neither a file nor a run key in %s" arg dir)
       | _ :: _ :: _ ->
         failwith
           (Printf.sprintf "%s: ambiguous key prefix in %s (%d matches)" arg
              dir (List.length matches)))

(* ------------------------------------------------------------------ *)
(* Cross-run diffing                                                   *)
(* ------------------------------------------------------------------ *)

type diff_row = {
  dr_name : string;
  dr_old_k : int;
  dr_old_n : int;
  dr_old : Obs.Stats.interval;
  dr_new_k : int;
  dr_new_n : int;
  dr_new : Obs.Stats.interval;
  dr_significant : bool;
}

type diff = {
  df_old : string;
  df_new : string;
  df_outcomes : diff_row list;
  df_sdc : diff_row;
  df_strata : diff_row list;
}

let diff_row ~name ~old_k ~old_n ~new_k ~new_n =
  let old_iv = Obs.Stats.wilson ~k:old_k ~n:old_n () in
  let new_iv = Obs.Stats.wilson ~k:new_k ~n:new_n () in
  { dr_name = name;
    dr_old_k = old_k;
    dr_old_n = old_n;
    dr_old = old_iv;
    dr_new_k = new_k;
    dr_new_n = new_n;
    dr_new = new_iv;
    dr_significant = Obs.Stats.disjoint old_iv new_iv }

(* Per-outcome counts plus per-stratum (n, sdc) tallies in one pass. *)
let diff_side path =
  let counts = Hashtbl.create 16 in
  let strata = Hashtbl.create 8 in
  let _, n =
    Faults.Journal.fold path ~init:0 ~f:(fun n v ->
      let o = v.Faults.Journal.v_outcome in
      Hashtbl.replace counts o
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o));
      (match v.Faults.Journal.v_stratum with
       | Some s ->
         let sn, sk =
           Option.value ~default:(0, 0) (Hashtbl.find_opt strata s)
         in
         Hashtbl.replace strata s
           (sn + 1, if is_sdc_name o then sk + 1 else sk)
       | None -> ());
      n + 1)
  in
  (counts, strata, n)

let diff_runs ~old_path ~new_path =
  let old_counts, old_strata, old_n = diff_side old_path in
  let new_counts, new_strata, new_n = diff_side new_path in
  let get tbl o = Option.value ~default:0 (Hashtbl.find_opt tbl o) in
  let names =
    let all = Hashtbl.create 16 in
    Hashtbl.iter (fun o _ -> Hashtbl.replace all o ()) old_counts;
    Hashtbl.iter (fun o _ -> Hashtbl.replace all o ()) new_counts;
    List.sort
      (fun a b -> compare (outcome_rank a) (outcome_rank b))
      (Hashtbl.fold (fun o () acc -> o :: acc) all [])
  in
  let outcomes =
    List.map
      (fun o ->
        diff_row ~name:o ~old_k:(get old_counts o) ~old_n
          ~new_k:(get new_counts o) ~new_n)
      names
  in
  let sdc_k tbl =
    Hashtbl.fold (fun o k acc -> if is_sdc_name o then acc + k else acc)
      tbl 0
  in
  let sdc =
    diff_row ~name:"SDC" ~old_k:(sdc_k old_counts) ~old_n
      ~new_k:(sdc_k new_counts) ~new_n
  in
  let strata =
    if Hashtbl.length old_strata = 0 || Hashtbl.length new_strata = 0 then []
    else begin
      let ids = Hashtbl.create 8 in
      Hashtbl.iter (fun s _ -> Hashtbl.replace ids s ()) old_strata;
      Hashtbl.iter (fun s _ -> Hashtbl.replace ids s ()) new_strata;
      List.map
        (fun s ->
          let old_sn, old_sk =
            Option.value ~default:(0, 0) (Hashtbl.find_opt old_strata s)
          in
          let new_sn, new_sk =
            Option.value ~default:(0, 0) (Hashtbl.find_opt new_strata s)
          in
          diff_row
            ~name:(Printf.sprintf "stratum %d SDC" s)
            ~old_k:old_sk ~old_n:old_sn ~new_k:new_sk ~new_n:new_sn)
        (List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) ids []))
    end
  in
  { df_old = old_path;
    df_new = new_path;
    df_outcomes = outcomes;
    df_sdc = sdc;
    df_strata = strata }

(* ------------------------------------------------------------------ *)
(* The regression gate                                                 *)
(* ------------------------------------------------------------------ *)

type regress_row = {
  rg_identity : string;
  rg_old : entry;
  rg_new : entry;
  rg_sdc : diff_row;
  rg_regressed : bool;
  rg_improved : bool;
  rg_throughput_ratio : float option;
}

type regress = {
  rx_rows : regress_row list;
  rx_only_old : entry list;
  rx_only_new : entry list;
  rx_failures : string list;
}

(* The configuration identity deliberately excludes seed, trials and the
   program digest: a new baseline run with more trials, or a code change
   that altered the protected program, is exactly what the gate must
   still compare — Wilson intervals absorb the count difference. *)
let identity e =
  String.concat " "
    [ e.e_label;
      Option.value ~default:"-" e.e_technique;
      e.e_fault_kind;
      "hw=" ^ string_of_int e.e_hw_window;
      "ckpt=" ^ string_of_int e.e_checkpoint_interval;
      "taint=" ^ string_of_bool e.e_taint_trace ]

let latest_per_identity es =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let id = identity e in
      match Hashtbl.find_opt tbl id with
      | Some prev when prev.e_seq >= e.e_seq -> ()
      | _ -> Hashtbl.replace tbl id e)
    es;
  tbl

let sdc_count e =
  List.fold_left
    (fun acc (o, k) -> if is_sdc_name o then acc + k else acc)
    0 e.e_counts

let regress ?tolerance_pct ~baseline ~current () =
  let old_tbl = latest_per_identity baseline in
  let new_tbl = latest_per_identity current in
  let rows = ref [] and failures = ref [] in
  let only_old = ref [] and only_new = ref [] in
  Hashtbl.iter
    (fun id old_e ->
      match Hashtbl.find_opt new_tbl id with
      | None -> only_old := old_e :: !only_old
      | Some new_e ->
        (* Adaptive runs carry their mass-reweighted interval in the
           index; pooled Wilson would be allocation-biased, so compare
           the stored intervals and only fall back to recomputation for
           plain runs (where both agree). *)
        let sdc =
          let row =
            diff_row ~name:"SDC" ~old_k:(sdc_count old_e)
              ~old_n:old_e.e_trials ~new_k:(sdc_count new_e)
              ~new_n:new_e.e_trials
          in
          if old_e.e_ci_target = None && new_e.e_ci_target = None then row
          else
            { row with
              dr_old = old_e.e_sdc;
              dr_new = new_e.e_sdc;
              dr_significant = Obs.Stats.disjoint old_e.e_sdc new_e.e_sdc }
        in
        let regressed =
          sdc.dr_significant
          && sdc.dr_new.ci_estimate > sdc.dr_old.ci_estimate
        in
        let improved =
          sdc.dr_significant
          && sdc.dr_new.ci_estimate < sdc.dr_old.ci_estimate
        in
        let throughput_ratio =
          match (old_e.e_trials_per_sec, new_e.e_trials_per_sec) with
          | Some o, Some n when o > 0.0 -> Some (n /. o)
          | _ -> None
        in
        if regressed then
          failures :=
            Printf.sprintf
              "%s: SDC rate regressed %.2f%% [%.2f, %.2f] -> %.2f%% [%.2f, %.2f] (disjoint 95%% intervals)"
              id
              (100.0 *. sdc.dr_old.ci_estimate)
              (100.0 *. sdc.dr_old.ci_low)
              (100.0 *. sdc.dr_old.ci_high)
              (100.0 *. sdc.dr_new.ci_estimate)
              (100.0 *. sdc.dr_new.ci_low)
              (100.0 *. sdc.dr_new.ci_high)
            :: !failures;
        (match (tolerance_pct, throughput_ratio) with
         | Some tol, Some ratio
           when old_e.e_host_cores = new_e.e_host_cores
                && ratio < 1.0 -. (tol /. 100.0) ->
           failures :=
             Printf.sprintf
               "%s: throughput dropped %.1f%% (beyond %.1f%% tolerance)" id
               (100.0 *. (1.0 -. ratio))
               tol
             :: !failures
         | _ -> ());
        rows :=
          { rg_identity = id;
            rg_old = old_e;
            rg_new = new_e;
            rg_sdc = sdc;
            rg_regressed = regressed;
            rg_improved = improved;
            rg_throughput_ratio = throughput_ratio }
          :: !rows)
    old_tbl;
  Hashtbl.iter
    (fun id new_e ->
      if not (Hashtbl.mem old_tbl id) then only_new := new_e :: !only_new)
    new_tbl;
  { rx_rows =
      List.sort (fun a b -> compare a.rg_identity b.rg_identity) !rows;
    rx_only_old =
      List.sort (fun a b -> compare a.e_seq b.e_seq) !only_old;
    rx_only_new =
      List.sort (fun a b -> compare a.e_seq b.e_seq) !only_new;
    rx_failures = List.rev !failures }
