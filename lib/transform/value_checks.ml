open Ir

(** Stand-alone expected-value check insertion (paper §III-C, Figure 6),
    with Optimization 1 (paper Figure 8): when several instructions on one
    producer chain are amenable to checks, only the instruction lowest in
    the chain — the one closest to the consumer — is checked, since a fault
    anywhere above it propagates into its output. *)

type stats = {
  mutable candidates : int;
  mutable suppressed_by_opt1 : int;
  mutable inserted : int;
}

let empty_stats () = { candidates = 0; suppressed_by_opt1 = 0; inserted = 0 }

let run_func prog (func : Func.t) ~use_opt1 ~only ~profile ~already_checked
    ~stats =
  let usedef = Analysis.Usedef.compute func in
  (* Gather candidates: original value-producing instructions whose profile
     is amenable and that Optimization 2 did not already cover. *)
  let candidates = ref [] in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (fun (ins : Instr.t) ->
          if Instr.produces_value ins
             && ins.origin = Instr.From_source
             && only ins.uid
             && not (Hashtbl.mem already_checked ins.uid) then begin
            match profile ins.uid with
            | Some ck -> candidates := (b, ins, ck) :: !candidates
            | None -> ()
          end)
        b.body)
    func;
  let candidates = List.rev !candidates in
  stats.candidates <- stats.candidates + List.length candidates;
  (* Optimization 1: mark candidates that sit strictly inside the producer
     chain of another candidate; only the deepest check survives. *)
  let covered = Hashtbl.create 16 in
  if use_opt1 then
  List.iter
    (fun ((_ : Block.t), (ins : Instr.t), (_ : Instr.check_kind)) ->
      List.iter
        (fun r ->
          let chain, (_ : Instr.reg list) =
            Analysis.Usedef.producer_chain usedef r
          in
          List.iter
            (fun (producer : Instr.t) ->
              Hashtbl.replace covered producer.uid ())
            chain)
        (Instr.uses ins))
    candidates;
  List.iter
    (fun (b, (ins : Instr.t), ck) ->
      if Hashtbl.mem covered ins.uid then
        stats.suppressed_by_opt1 <- stats.suppressed_by_opt1 + 1
      else begin
        match ins.dest with
        | None -> ()
        | Some dest ->
          let check =
            { Instr.uid = Prog.fresh_uid prog; dest = None;
              kind = Instr.Value_check (ck, Instr.Reg dest);
              origin = Instr.Check_insertion }
          in
          Block.insert_after b ~after_uid:ins.uid [ check ];
          stats.inserted <- stats.inserted + 1
      end)
    candidates

(** Insert value checks across the program.  [profile] maps an instruction
    uid to its derived check shape; [already_checked] holds uids covered by
    Optimization 2 during duplication.  [only], when given, restricts
    candidates to the uids it accepts — protection plans use it to place
    checks at an explicit site list. *)
let run ?(use_opt1 = true) ?only (prog : Prog.t) ~profile ~already_checked =
  let stats = empty_stats () in
  let only = match only with None -> fun _ -> true | Some f -> f in
  List.iter
    (fun func ->
      run_func prog func ~use_opt1 ~only ~profile ~already_checked ~stats)
    prog.funcs;
  stats
