open Ir

(** Selective duplication of state-variable producer chains (paper §III-B).

    For every state variable (loop-header phi) the pass clones the producer
    chain feeding its back edges — recursively over use-def edges, cloning
    intermediate phis as needed — and inserts a [Dup_check] at each back edge
    comparing the original against the shadow value.  Chains terminate at
    loads, calls, allocations and parameters (cloning loads would double
    memory traffic; a corrupted address tends to trap instead, paper Fig. 7).

    With a value profile supplied, Optimization 2 applies: when the chain
    walk reaches an instruction amenable to an expected-value check, the
    clone is replaced by a [Value_check] on the original value and the walk
    stops there (paper Fig. 9). *)

type stats = {
  mutable state_vars : int;
  mutable cloned_instrs : int;
  mutable cloned_phis : int;
  mutable dup_checks : int;
  mutable opt2_value_checks : int;
}

let empty_stats () =
  { state_vars = 0; cloned_instrs = 0; cloned_phis = 0; dup_checks = 0;
    opt2_value_checks = 0 }

type ctx = {
  prog : Prog.t;
  usedef : Analysis.Usedef.t;
  shadow : (Instr.reg, Instr.operand) Hashtbl.t;
  profile : (int -> Instr.check_kind option) option;
  (** original-instruction uids that received an Opt-2 value check, so the
      later stand-alone value-check pass does not re-check them *)
  opt2_checked : (int, unit) Hashtbl.t;
  stats : stats;
}

let rec shadow_operand ctx (op : Instr.operand) =
  match op with
  | Imm v -> Instr.Imm v
  | Reg r -> shadow_reg ctx r

and shadow_reg ctx r =
  match Hashtbl.find_opt ctx.shadow r with
  | Some s -> s
  | None ->
    let s =
      match Analysis.Usedef.def_of ctx.usedef r with
      | None | Some Analysis.Usedef.Param -> Instr.Reg r
      | Some (Analysis.Usedef.Phi_def (b, phi)) -> clone_phi ctx b phi
      | Some (Analysis.Usedef.Instr_def (b, ins)) ->
        if Analysis.Usedef.chain_terminator ins then Instr.Reg r
        else begin
          match opt2_check ctx ins with
          | true -> Instr.Reg r
          | false -> clone_instr ctx b ins r
        end
    in
    Hashtbl.replace ctx.shadow r s;
    s

(* Optimization 2: terminate the chain with a value check when profitable.
   Returns true when a check was (or already had been) placed on [ins]. *)
and opt2_check ctx (ins : Instr.t) =
  match ctx.profile with
  | None -> false
  | Some profile ->
    if Hashtbl.mem ctx.opt2_checked ins.uid then true
    else begin
      match profile ins.uid with
      | None -> false
      | Some ck ->
        (match ins.dest with
         | None -> false
         | Some dest ->
           let check =
             { Instr.uid = Prog.fresh_uid ctx.prog; dest = None;
               kind = Instr.Value_check (ck, Instr.Reg dest);
               origin = Instr.Check_insertion }
           in
           (match Prog.find_instr ctx.prog ins.uid with
            | Some (_, block, _) ->
              Block.insert_after block ~after_uid:ins.uid [ check ];
              Hashtbl.replace ctx.opt2_checked ins.uid ();
              ctx.stats.opt2_value_checks <- ctx.stats.opt2_value_checks + 1;
              true
            | None -> false))
    end

and clone_phi ctx (b : Block.t) (phi : Instr.phi) =
  let dest = Prog.fresh_reg ctx.prog in
  (* Pre-register before recursing: loop-carried phis reference their own
     producer chain (e.g. [crc = f(crc)] in the paper's Fig. 3). *)
  Hashtbl.replace ctx.shadow phi.phi_dest (Instr.Reg dest);
  let clone =
    { Instr.phi_uid = Prog.fresh_uid ctx.prog; phi_dest = dest;
      incoming = []; phi_origin = Instr.Duplicated phi.phi_uid }
  in
  b.phis <- b.phis @ [ clone ];
  clone.incoming <-
    List.map (fun (lbl, op) -> (lbl, shadow_operand ctx op)) phi.incoming;
  ctx.stats.cloned_phis <- ctx.stats.cloned_phis + 1;
  Instr.Reg dest

and clone_instr ctx (b : Block.t) (ins : Instr.t) orig_reg =
  let dest = Prog.fresh_reg ctx.prog in
  Hashtbl.replace ctx.shadow orig_reg (Instr.Reg dest);
  let shadowed = Instr.map_operands (shadow_operand ctx) ins in
  let clone =
    { shadowed with
      uid = Prog.fresh_uid ctx.prog; dest = Some dest;
      origin = Instr.Duplicated ins.uid }
  in
  Block.insert_after b ~after_uid:ins.uid [ clone ];
  ctx.stats.cloned_instrs <- ctx.stats.cloned_instrs + 1;
  Instr.Reg dest

let protect_state_var ctx (sv : State_vars.state_var) =
  ctx.stats.state_vars <- ctx.stats.state_vars + 1;
  (* The back-edge walks below clone the producer web on demand — chains
     that pass through the header phi clone it through recursion.  Cloning
     the phi eagerly instead would strand an orphan shadow (duplication
     cost, no detection) whenever every back-edge chain terminates
     immediately, e.g. on a load. *)
  (* Compare original vs shadow where the back edge leaves the body. *)
  List.iter
    (fun (latch_lbl, op) ->
      match op with
      | Instr.Imm _ -> ()
      | Instr.Reg r ->
        let s = shadow_reg ctx r in
        if s <> Instr.Reg r then begin
          let latch = Func.find_block sv.func latch_lbl in
          let check =
            { Instr.uid = Prog.fresh_uid ctx.prog; dest = None;
              kind = Instr.Dup_check (Instr.Reg r, s);
              origin = Instr.Check_insertion }
          in
          Block.append latch [ check ];
          ctx.stats.dup_checks <- ctx.stats.dup_checks + 1
        end)
    sv.back_edges

(** Run selective duplication over the whole program.  [profile], when
    given, enables Optimization 2.  [select], when given, restricts the
    pass to the state variables it accepts — protection plans use it to
    duplicate an arbitrary chain subset.  Returns statistics and the set
    of uids that received a value check during duplication. *)
let run ?profile ?select (prog : Prog.t) =
  let stats = empty_stats () in
  let opt2_checked = Hashtbl.create 16 in
  List.iter
    (fun func ->
      let svs = State_vars.of_func func in
      let svs =
        match select with None -> svs | Some keep -> List.filter keep svs
      in
      if svs <> [] then begin
        let ctx =
          { prog; usedef = Analysis.Usedef.compute func;
            shadow = Hashtbl.create 64; profile; opt2_checked; stats }
        in
        List.iter (protect_state_var ctx) svs
      end)
    prog.funcs;
  (stats, opt2_checked)
