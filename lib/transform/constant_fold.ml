open Ir

(** Constant folding and algebraic simplification.

    The paper applies its protection to compiler-optimized code ("compiled
    with their suggested compiler options"); running the standard cleanup
    passes first keeps the protection from wasting duplication and checks
    on computations a real compiler would have folded away.

    The pass rewrites, per function and in dominance (layout) order:
    - operations on two immediates into the computed immediate,
    - algebraic identities (x+0, x*1, x*0, x-0, x&0, x|0, x^0, shifts by 0),
    - selects with a constant condition,
    - conditional branches on a constant condition into jumps (the dead
      edge is removed from successor phis, and blocks left unreachable are
      pruned so the verifier's reachability invariant survives the pass).

    Folded instructions become dead and are left for {!Dce}. *)

type stats = {
  mutable folded : int;
  mutable identities : int;
  mutable branches_resolved : int;
  mutable unreachable_blocks : int;
}

(* Registers known to hold an immediate value. *)
type env = (Instr.reg, Value.t) Hashtbl.t

let known (env : env) (op : Instr.operand) =
  match op with
  | Imm v -> Some v
  | Reg r -> Hashtbl.find_opt env r

let is_int_imm op n =
  match op with
  | Instr.Imm (Value.Int i) -> Int64.equal i (Int64.of_int n)
  | Instr.Imm (Value.Float _) | Instr.Reg _ -> false

(* Try to evaluate a side-effect-free instruction whose operands are all
   known.  Division by zero stays un-folded: its trap is a runtime event. *)
let eval_known (kind : Instr.kind) (env : env) =
  match kind with
  | Binop (op, a, b) ->
    (match known env a, known env b with
     | Some va, Some vb ->
       (try Some (Opcode.eval_binop op va vb)
        with Opcode.Division_by_zero | Value.Kind_error _ -> None)
     | _, _ -> None)
  | Unop (op, a) ->
    (match known env a with
     | Some va ->
       (try Some (Opcode.eval_unop op va) with Value.Kind_error _ -> None)
     | None -> None)
  | Icmp (op, a, b) ->
    (match known env a, known env b with
     | Some va, Some vb ->
       (try Some (Opcode.eval_icmp op va vb) with Value.Kind_error _ -> None)
     | _, _ -> None)
  | Fcmp (op, a, b) ->
    (match known env a, known env b with
     | Some va, Some vb ->
       (try Some (Opcode.eval_fcmp op va vb) with Value.Kind_error _ -> None)
     | _, _ -> None)
  | Select (c, a, b) ->
    (match known env c with
     | Some vc -> (
       let chosen = if Value.truthy vc then a else b in
       match known env chosen with Some v -> Some v | None -> None)
     | None -> None)
  | Const v -> Some v
  | Load _ | Store _ | Alloc _ | Call _ | Dup_check _ | Value_check _ -> None

(* Algebraic identities that rewrite to one of the operands. *)
let identity (kind : Instr.kind) =
  match kind with
  | Binop (Opcode.Add, x, z) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Add, z, x) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Sub, x, z) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Mul, x, one) when is_int_imm one 1 -> Some x
  | Binop (Opcode.Mul, one, x) when is_int_imm one 1 -> Some x
  | Binop (Opcode.Mul, _, z) when is_int_imm z 0 -> Some (Instr.Imm Value.zero)
  | Binop (Opcode.Mul, z, _) when is_int_imm z 0 -> Some (Instr.Imm Value.zero)
  | Binop (Opcode.And, _, z) when is_int_imm z 0 -> Some (Instr.Imm Value.zero)
  | Binop (Opcode.And, z, _) when is_int_imm z 0 -> Some (Instr.Imm Value.zero)
  | Binop (Opcode.Or, x, z) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Or, z, x) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Xor, x, z) when is_int_imm z 0 -> Some x
  | Binop (Opcode.Xor, z, x) when is_int_imm z 0 -> Some x
  | Binop ((Opcode.Shl | Opcode.Lshr | Opcode.Ashr), x, z) when is_int_imm z 0 ->
    Some x
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Const _ | Load _
  | Store _ | Alloc _ | Call _ | Dup_check _ | Value_check _ -> None

let run_func (f : Func.t) ~stats =
  let env : env = Hashtbl.create 64 in
  (* Registers rewritten to another operand (copy propagation of folds). *)
  let replaced : (Instr.reg, Instr.operand) Hashtbl.t = Hashtbl.create 64 in
  let rec resolve op =
    match op with
    | Instr.Reg r ->
      (match Hashtbl.find_opt replaced r with
       | Some op' -> resolve op'
       | None -> op)
    | Instr.Imm _ -> op
  in
  Func.iter_blocks
    (fun b ->
      (* Phis: just resolve operands. *)
      List.iter
        (fun (phi : Instr.phi) ->
          phi.incoming <-
            List.map (fun (lbl, op) -> (lbl, resolve op)) phi.incoming)
        b.phis;
      b.body <-
        Array.map
          (fun (ins : Instr.t) ->
            let ins = Instr.map_operands resolve ins in
            match ins.dest with
            | None -> ins
            | Some dest ->
              (match eval_known ins.kind env with
               | Some v ->
                 Hashtbl.replace env dest v;
                 stats.folded <- stats.folded + 1;
                 { ins with kind = Instr.Const v }
               | None ->
                 (match identity ins.kind with
                  | Some op ->
                    stats.identities <- stats.identities + 1;
                    Hashtbl.replace replaced dest (resolve op);
                    (* Keep a Const/copy so SSA stays well-formed; DCE will
                       drop it once all uses are rewritten. *)
                    (match resolve op with
                     | Instr.Imm v -> { ins with kind = Instr.Const v }
                     | Instr.Reg _ as src ->
                       { ins with kind = Instr.Binop (Opcode.Add, src, Instr.Imm Value.zero) })
                  | None -> ins)))
          b.body;
      (* Resolve the terminator; fold constant branches. *)
      (match b.term with
       | Instr.Ret op -> b.term <- Instr.Ret (Option.map resolve op)
       | Instr.Jmp _ -> ()
       | Instr.Br (c, if_true, if_false) ->
         let c = resolve c in
         (match known env c with
          | Some v ->
            let taken, dead =
              if Value.truthy v then (if_true, if_false)
              else (if_false, if_true)
            in
            stats.branches_resolved <- stats.branches_resolved + 1;
            b.term <- Instr.Jmp taken;
            if dead <> taken then begin
              let dead_block = Func.find_block f dead in
              List.iter
                (fun (phi : Instr.phi) ->
                  phi.incoming <-
                    List.filter (fun (lbl, _) -> lbl <> b.label) phi.incoming)
                dead_block.phis
            end
          | None -> b.term <- Instr.Br (c, if_true, if_false))))
    f

(** Remove the blocks of [f] that are unreachable from the entry (resolving
    a branch strands the arm not taken), stripping their labels from
    surviving phis.  Shared with {!Dce.run} so either pass leaves the
    verifier's reachability invariant intact.  Returns how many blocks were
    removed. *)
let prune_unreachable (f : Func.t) =
  let reachable = Hashtbl.create 16 in
  let rec dfs label =
    if not (Hashtbl.mem reachable label) then begin
      Hashtbl.replace reachable label ();
      List.iter dfs (Block.successors (Func.find_block f label))
    end
  in
  dfs f.entry;
  let live (b : Block.t) = Hashtbl.mem reachable b.label in
  if List.for_all live f.blocks then 0
  else begin
    let dead = List.filter (fun b -> not (live b)) f.blocks in
    f.blocks <- List.filter live f.blocks;
    List.iter (fun (b : Block.t) -> Hashtbl.remove f.index b.label) dead;
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (phi : Instr.phi) ->
            phi.incoming <-
              List.filter (fun (lbl, _) -> Hashtbl.mem reachable lbl)
                phi.incoming)
          b.phis)
      f.blocks;
    List.length dead
  end

(** Fold constants across the program; returns statistics.  Run {!Dce}
    afterwards to drop the dead remains. *)
let run (prog : Prog.t) =
  let stats =
    { folded = 0; identities = 0; branches_resolved = 0;
      unreachable_blocks = 0 }
  in
  List.iter (fun f -> run_func f ~stats) prog.funcs;
  if stats.branches_resolved > 0 then
    List.iter
      (fun f ->
        stats.unreachable_blocks <-
          stats.unreachable_blocks + prune_unreachable f)
      prog.funcs;
  stats
