open Ir

(** Program-variant construction: ties the passes into the four techniques
    the paper evaluates, and reports the static statistics of Figure 10. *)

type technique =
  | Original       (** unmodified program *)
  | Dup_only       (** state-variable producer-chain duplication only *)
  | Dup_valchk     (** duplication + expected-value checks + Opt. 1 and 2 *)
  | Full_dup       (** SWIFT-style full duplication baseline *)
  | Cfc_only       (** signature-based control-flow checking only *)
  | Dup_valchk_cfc (** the paper's scheme combined with the complementary
                       signature scheme it points to for branch-target
                       faults (Â§IV-C) *)
  | Planned        (** an explicit protection plan executed by {!of_plan};
                       generalizes the fixed configurations above *)

let all_techniques = [ Original; Dup_only; Dup_valchk; Full_dup ]
let extended_techniques = all_techniques @ [ Cfc_only; Dup_valchk_cfc ]

let technique_name = function
  | Original -> "Original"
  | Dup_only -> "Dup only"
  | Dup_valchk -> "Dup + val chks"
  | Full_dup -> "Full duplication"
  | Cfc_only -> "CFC only"
  | Dup_valchk_cfc -> "Dup + val chks + CFC"
  | Planned -> "Planned"

(** Static statistics in the vocabulary of Figure 10: everything is reported
    against the *original* static instruction count. *)
type stats = {
  technique : technique;
  original_instrs : int;      (** static IR instructions before the pass *)
  state_vars : int;
  duplicated_instrs : int;    (** clones added (instructions + phis) *)
  dup_checks : int;
  value_checks : int;         (** stand-alone + Optimization-2 checks *)
  suppressed_by_opt1 : int;
}

let fraction ~of_ n =
  if of_ = 0 then 0.0 else float_of_int n /. float_of_int of_

let duplicated_fraction s = fraction ~of_:s.original_instrs s.duplicated_instrs
let value_check_fraction s = fraction ~of_:s.original_instrs s.value_checks
let state_var_fraction s = fraction ~of_:s.original_instrs s.state_vars

(** Apply [technique] to [prog] in place.  [profile] supplies the
    expected-value check shapes (required only by [Dup_valchk]).  [opt1]
    and [opt2] toggle the paper's two interaction optimizations (both on
    by default; exposed for the ablation study).  The transformed program
    is re-verified before returning; with [lint] on, the transform-invariant
    lint ({!Analysis.Lint}) additionally runs after every stage, with the
    duplication discipline the stage just established and the value profile
    wired into its check-shape rule. *)
let protect ?profile ?(opt1 = true) ?(opt2 = true) ?(lint = false)
    (prog : Prog.t) technique =
  let original_instrs = Prog.instr_count prog in
  let stage expect =
    if lint then Analysis.Lint.run ~expect ?profile prog
  in
  let stats =
    match technique with
    | Original ->
      stage Analysis.Lint.Any;
      { technique; original_instrs; state_vars = State_vars.count_prog prog;
        duplicated_instrs = 0; dup_checks = 0; value_checks = 0;
        suppressed_by_opt1 = 0 }
    | Dup_only ->
      let d, (_ : (int, unit) Hashtbl.t) = Duplicate.run prog in
      stage Analysis.Lint.Selective;
      { technique; original_instrs; state_vars = d.state_vars;
        duplicated_instrs = d.cloned_instrs + d.cloned_phis;
        dup_checks = d.dup_checks; value_checks = 0; suppressed_by_opt1 = 0 }
    | Dup_valchk ->
      let profile =
        match profile with
        | Some p -> p
        | None ->
          invalid_arg "Pipeline.protect: Dup_valchk requires a value profile"
      in
      let d, opt2_checked =
        if opt2 then Duplicate.run ~profile prog else Duplicate.run prog
      in
      stage Analysis.Lint.Selective;
      let v =
        Value_checks.run ~use_opt1:opt1 prog ~profile
          ~already_checked:opt2_checked
      in
      stage Analysis.Lint.Selective;
      { technique; original_instrs; state_vars = d.state_vars;
        duplicated_instrs = d.cloned_instrs + d.cloned_phis;
        dup_checks = d.dup_checks;
        value_checks = v.inserted + d.opt2_value_checks;
        suppressed_by_opt1 = v.suppressed_by_opt1 }
    | Full_dup ->
      let f = Full_dup.run prog in
      stage Analysis.Lint.Full;
      { technique; original_instrs; state_vars = State_vars.count_prog prog;
        duplicated_instrs = f.cloned_instrs + f.cloned_phis;
        dup_checks = f.dup_checks; value_checks = 0; suppressed_by_opt1 = 0 }
    | Cfc_only ->
      let c = Cfc.run prog in
      stage Analysis.Lint.Any;
      { technique; original_instrs; state_vars = State_vars.count_prog prog;
        duplicated_instrs = 0; dup_checks = 0;
        value_checks = c.signature_checks; suppressed_by_opt1 = 0 }
    | Dup_valchk_cfc ->
      let profile =
        match profile with
        | Some p -> p
        | None ->
          invalid_arg "Pipeline.protect: Dup_valchk_cfc requires a value profile"
      in
      let d, opt2_checked =
        if opt2 then Duplicate.run ~profile prog else Duplicate.run prog
      in
      stage Analysis.Lint.Selective;
      let v =
        Value_checks.run ~use_opt1:opt1 prog ~profile
          ~already_checked:opt2_checked
      in
      stage Analysis.Lint.Selective;
      let c = Cfc.run prog in
      stage Analysis.Lint.Selective;
      { technique; original_instrs; state_vars = d.state_vars;
        duplicated_instrs = d.cloned_instrs + d.cloned_phis;
        dup_checks = d.dup_checks;
        value_checks = v.inserted + d.opt2_value_checks + c.signature_checks;
        suppressed_by_opt1 = v.suppressed_by_opt1 }
    | Planned ->
      invalid_arg "Pipeline.protect: Planned is built by Pipeline.of_plan"
  in
  Verifier.verify prog;
  stats

(** Execute a protection plan on [prog] in place: duplicate exactly the
    planned producer chains (with planned terminators applied through the
    Opt-2 hook, restricted to their uids), then place the planned
    stand-alone value checks — no Opt-1 second-guessing, the plan is the
    decision.  [profile] is required as soon as the plan names terminator
    or check sites.  The plan's checkpoint interval is a runtime knob:
    callers pass it to golden runs and campaigns themselves.  With [lint]
    on, {!Analysis.Lint} runs after every stage with the plan-derived
    expectation ({!Analysis.Lint.Plan}). *)
let of_plan ?profile ?(lint = false) (prog : Prog.t) (plan : Analysis.Plan.t) =
  let plan = Analysis.Plan.normalize plan in
  let original_instrs = Prog.instr_count prog in
  let stage expect_plan =
    if lint then
      Analysis.Lint.run ~expect:(Analysis.Lint.Plan expect_plan) ?profile prog
  in
  let places_checks =
    plan.Analysis.Plan.terminators <> [] || plan.Analysis.Plan.checks <> []
  in
  (match profile with
   | None when places_checks ->
     invalid_arg "Pipeline.of_plan: plan places value checks but no profile was given"
   | _ -> ());
  let term_profile =
    match profile with
    | Some p when plan.Analysis.Plan.terminators <> [] ->
      Some
        (fun uid ->
          if Analysis.Plan.mem_terminator plan uid then p uid else None)
    | _ -> None
  in
  let select (sv : State_vars.state_var) =
    Analysis.Plan.mem_chain plan ~phi_uid:sv.State_vars.phi.Instr.phi_uid
  in
  let d, opt2_checked = Duplicate.run ?profile:term_profile ~select prog in
  (* Stand-alone checks are not placed yet, so stage 1 lints against the
     plan with its check list emptied. *)
  stage { plan with Analysis.Plan.checks = [] };
  let v =
    if plan.Analysis.Plan.checks = [] then Value_checks.empty_stats ()
    else
      let p = Option.get profile in
      Value_checks.run ~use_opt1:false
        ~only:(fun uid -> Analysis.Plan.mem_check plan uid)
        prog ~profile:p ~already_checked:opt2_checked
  in
  stage plan;
  Verifier.verify prog;
  { technique = Planned; original_instrs; state_vars = d.state_vars;
    duplicated_instrs = d.cloned_instrs + d.cloned_phis;
    dup_checks = d.dup_checks;
    value_checks = v.inserted + d.opt2_value_checks;
    suppressed_by_opt1 = v.suppressed_by_opt1 }

(** The lint expectation matching each technique's duplication discipline,
    for callers that lint a finished program on their own. *)
let lint_expectation = function
  | Original | Cfc_only -> Analysis.Lint.Any
  | Dup_only | Dup_valchk | Dup_valchk_cfc -> Analysis.Lint.Selective
  | Full_dup -> Analysis.Lint.Full
  | Planned -> Analysis.Lint.Any
  (* Without the plan value the latch rule cannot be derived; callers that
     hold the plan lint with [Analysis.Lint.Plan] directly. *)
