open Ir

(** Dead-code elimination.

    Removes value-producing instructions (and phis) whose results are never
    used, iterating to a fixed point so whole dead chains disappear.
    Side-effecting instructions — stores, calls, allocations, and the
    protection checks — are always live, as are terminator operands.

    Also prunes blocks unreachable from the entry (constant folding strands
    them when it resolves a conditional branch), stripping their edges from
    surviving phis, so the verifier's reachability invariant holds after
    {!optimize}. *)

type stats = {
  mutable removed_instrs : int;
  mutable removed_phis : int;
  mutable removed_blocks : int;
}

let collect_uses (f : Func.t) =
  let used : (Instr.reg, unit) Hashtbl.t = Hashtbl.create 128 in
  let mark op =
    match op with
    | Instr.Reg r -> Hashtbl.replace used r ()
    | Instr.Imm _ -> ()
  in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Instr.phi) ->
          List.iter (fun (_, op) -> mark op) phi.incoming)
        b.phis;
      Array.iter
        (fun (ins : Instr.t) -> List.iter mark (Instr.operands ins))
        b.body;
      match b.term with
      | Instr.Ret (Some op) | Instr.Br (op, _, _) -> mark op
      | Instr.Ret None | Instr.Jmp _ -> ())
    f;
  used

let sweep_func (f : Func.t) ~stats =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = collect_uses f in
    Func.iter_blocks
      (fun b ->
        let keep_instr (ins : Instr.t) =
          Instr.has_side_effect ins
          ||
          (match ins.dest with
           | None -> true
           | Some r -> Hashtbl.mem used r)
        in
        let before = Array.length b.body in
        b.body <- Array.of_list (List.filter keep_instr (Array.to_list b.body));
        let removed = before - Array.length b.body in
        if removed > 0 then begin
          stats.removed_instrs <- stats.removed_instrs + removed;
          changed := true
        end;
        let keep_phi (phi : Instr.phi) = Hashtbl.mem used phi.phi_dest in
        let before_phis = List.length b.phis in
        b.phis <- List.filter keep_phi b.phis;
        let removed_phis = before_phis - List.length b.phis in
        if removed_phis > 0 then begin
          stats.removed_phis <- stats.removed_phis + removed_phis;
          changed := true
        end)
      f
  done

(** Remove unreachable blocks and dead code across the program. *)
let run (prog : Prog.t) =
  let stats = { removed_instrs = 0; removed_phis = 0; removed_blocks = 0 } in
  List.iter
    (fun f ->
      stats.removed_blocks <-
        stats.removed_blocks + Constant_fold.prune_unreachable f)
    prog.funcs;
  List.iter (fun f -> sweep_func f ~stats) prog.funcs;
  stats

(** The standard cleanup sequence the workload "frontend" runs before
    protection: fold constants, merge common subexpressions, then sweep the
    dead remains. *)
let optimize (prog : Prog.t) =
  let fold_stats = Constant_fold.run prog in
  let cse_stats = Cse.run prog in
  let dce_stats = run prog in
  Verifier.verify prog;
  (fold_stats, cse_stats, dce_stats)
