(** Backward liveness analysis over the CFG.

    Computes, per block, the registers live on entry and on exit.  Phi
    semantics follow SSA convention: a phi's incoming operand is live at
    the end of the corresponding predecessor (not at the head of the phi's
    own block), and phi destinations are defined at block entry.

    Used to reason about how many live values a register-file fault can
    actually hit, and by tests that sanity-check the fault model. *)

type t = {
  cfg : Cfg.t;
  live_in : (Ir.Instr.reg, unit) Hashtbl.t array;
  live_out : (Ir.Instr.reg, unit) Hashtbl.t array;
}

let regs_of_operand acc (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Reg r -> r :: acc
  | Ir.Instr.Imm _ -> acc

(* use/def summary of one block, phi uses excluded (they belong to the
   predecessor edge). *)
let block_use_def (b : Ir.Block.t) =
  let uses = Hashtbl.create 16 in
  let defs = Hashtbl.create 16 in
  let use r = if not (Hashtbl.mem defs r) then Hashtbl.replace uses r () in
  (* Phi destinations are defined at block entry. *)
  List.iter
    (fun (phi : Ir.Instr.phi) -> Hashtbl.replace defs phi.phi_dest ())
    b.phis;
  Array.iter
    (fun (ins : Ir.Instr.t) ->
      List.iter use (Ir.Instr.uses ins);
      match ins.dest with
      | Some r -> Hashtbl.replace defs r ()
      | None -> ())
    b.body;
  (match b.term with
   | Ir.Instr.Ret (Some op) | Ir.Instr.Br (op, _, _) ->
     List.iter use (regs_of_operand [] op)
   | Ir.Instr.Ret None | Ir.Instr.Jmp _ -> ());
  (uses, defs)

(* Registers a predecessor must keep live for [succ]'s phis on the edge
   from [pred_label].  Several phis may read the same predecessor register;
   dedupe so callers that count edge uses see each register once. *)
let phi_edge_uses (succ : Ir.Block.t) ~pred_label =
  List.filter_map
    (fun (phi : Ir.Instr.phi) ->
      match List.assoc_opt pred_label phi.incoming with
      | Some (Ir.Instr.Reg r) -> Some r
      | Some (Ir.Instr.Imm _) | None -> None)
    succ.phis
  |> List.sort_uniq compare

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let live_in = Array.init n (fun _ -> Hashtbl.create 16) in
  let live_out = Array.init n (fun _ -> Hashtbl.create 16) in
  let use_def = Array.init n (fun i -> block_use_def (Cfg.block cfg i)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = Cfg.block cfg i in
      (* live_out = union over successors of (their live_in minus their phi
         defs) plus the phi-edge uses owed to them. *)
      let out = live_out.(i) in
      List.iter
        (fun s ->
          let succ_block = Cfg.block cfg s in
          let succ_phi_defs =
            List.map (fun (p : Ir.Instr.phi) -> p.phi_dest) succ_block.phis
          in
          Hashtbl.iter
            (fun r () ->
              if (not (List.mem r succ_phi_defs)) && not (Hashtbl.mem out r)
              then begin
                Hashtbl.replace out r ();
                changed := true
              end)
            live_in.(s);
          List.iter
            (fun r ->
              if not (Hashtbl.mem out r) then begin
                Hashtbl.replace out r ();
                changed := true
              end)
            (phi_edge_uses succ_block ~pred_label:b.label))
        cfg.succ.(i);
      (* live_in = uses + (live_out - defs) *)
      let uses, defs = use_def.(i) in
      let inn = live_in.(i) in
      Hashtbl.iter
        (fun r () ->
          if not (Hashtbl.mem inn r) then begin
            Hashtbl.replace inn r ();
            changed := true
          end)
        uses;
      Hashtbl.iter
        (fun r () ->
          if (not (Hashtbl.mem defs r)) && not (Hashtbl.mem inn r) then begin
            Hashtbl.replace inn r ();
            changed := true
          end)
        out
    done
  done;
  { cfg; live_in; live_out }

let live_in t label =
  let i = Cfg.index t.cfg label in
  Hashtbl.fold (fun r () acc -> r :: acc) t.live_in.(i) [] |> List.sort compare

let live_out t label =
  let i = Cfg.index t.cfg label in
  Hashtbl.fold (fun r () acc -> r :: acc) t.live_out.(i) [] |> List.sort compare

(** Peak number of simultaneously live registers across block boundaries —
    a proxy for register pressure. *)
let max_pressure t =
  Array.fold_left
    (fun acc tbl -> max acc (Hashtbl.length tbl))
    0 t.live_in
