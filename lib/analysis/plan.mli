(** First-class protection plans (ROADMAP item 3, DESIGN.md §16).

    The paper ships three fixed protection pipelines; a {e plan} makes the
    configuration space between them a value: which state-variable
    producer chains to duplicate, where a chain should terminate early in
    an expected-value check (the paper's Optimization 2 as an explicit
    per-site decision), which stand-alone expected-value checks to place
    (Optimization 1's outcome as an explicit site list), and the
    checkpoint interval.  [Transform.Pipeline.of_plan] executes a plan;
    {!Predict} prices one without running anything.

    Plans reference the {e original} program: chains by the uid of their
    loop-header phi, check sites by instruction uid.  Uids are minted per
    program and stable across the deterministic workload builds, so a plan
    serialized against one build applies to any other build of the same
    workload. *)

(** One state-variable producer chain, named by its loop-header phi. *)
type chain = {
  ch_func : string;
  ch_phi_uid : int;
}

(** One instruction site receiving an expected-value check. *)
type site = {
  vs_func : string;
  vs_uid : int;
}

type t = {
  chains : chain list;       (** producer chains to duplicate *)
  terminators : site list;   (** chain-walk stops: clone replaced by a
                                 value check at this site (Opt. 2) *)
  checks : site list;        (** stand-alone value-check sites *)
  checkpoint : int;          (** checkpoint interval K; 0 = off *)
}

val empty : t

(** Normalize: sort and dedupe each component (by (func, uid)).  All
    constructors below return normalized plans; [equal] compares
    normalized forms. *)
val normalize : t -> t

val equal : t -> t -> bool

(** Membership; sites and chains are keyed by uid (uids are unique
    program-wide). *)
val mem_chain : t -> phi_uid:int -> bool

val mem_terminator : t -> int -> bool
val mem_check : t -> int -> bool

(** Functional extension; result is normalized. *)
val add_chain : t -> chain -> t

val add_terminator : t -> site -> t
val add_check : t -> site -> t

(** Every state-variable chain of the program: loop-header phis with at
    least one back-edge operand, in (function, phi uid) order. *)
val candidate_chains : Ir.Prog.t -> chain list

(** Every stand-alone check candidate: original value-producing
    instructions whose [profile] knows a check shape, in (function, uid)
    order — the same gathering rule as [Transform.Value_checks]. *)
val candidate_sites :
  profile:(int -> Ir.Instr.check_kind option) -> Ir.Prog.t -> site list

(** Short human label, e.g. ["plan[c3 t1 v4 K0]"]. *)
val describe : t -> string

(** Compact stable identity for campaign labels and warehouse filing:
    component counts plus a digest prefix of the canonical JSON. *)
val slug : t -> string

(** {2 JSON round-trip} *)

val schema : string

val to_json : t -> Obs.Json.t

(** Raises [Failure] on malformed or wrong-schema input. *)
val of_json : Obs.Json.t -> t

val to_string : t -> string

(** Parse a JSON plan document; raises [Failure] (or
    [Obs.Json.Parse_error]) on malformed input. *)
val of_string : string -> t
