type chain = {
  ch_func : string;
  ch_phi_uid : int;
}

type site = {
  vs_func : string;
  vs_uid : int;
}

type t = {
  chains : chain list;
  terminators : site list;
  checks : site list;
  checkpoint : int;
}

let empty = { chains = []; terminators = []; checks = []; checkpoint = 0 }

let chain_key c = (c.ch_func, c.ch_phi_uid)
let site_key s = (s.vs_func, s.vs_uid)

let dedup_sorted key l =
  let sorted = List.sort (fun a b -> compare (key a) (key b)) l in
  let rec go = function
    | a :: b :: rest when key a = key b -> go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let normalize p =
  {
    chains = dedup_sorted chain_key p.chains;
    terminators = dedup_sorted site_key p.terminators;
    checks = dedup_sorted site_key p.checks;
    checkpoint = max 0 p.checkpoint;
  }

let equal a b = normalize a = normalize b

(* Uids are unique program-wide, so membership ignores the function
   component: a plan can only ever be applied to the program whose uids
   it names. *)
let mem_chain p ~phi_uid =
  List.exists (fun c -> c.ch_phi_uid = phi_uid) p.chains

let mem_terminator p uid = List.exists (fun s -> s.vs_uid = uid) p.terminators
let mem_check p uid = List.exists (fun s -> s.vs_uid = uid) p.checks

let add_chain p c = normalize { p with chains = c :: p.chains }
let add_terminator p s = normalize { p with terminators = s :: p.terminators }
let add_check p s = normalize { p with checks = s :: p.checks }

(* A chain candidate is a loop-header phi with at least one register
   operand arriving over a back edge — the same gathering rule as
   [Transform.State_vars.of_func], restated here because the analysis
   layer sits below the transforms. *)
let candidate_chains prog =
  List.concat_map
    (fun (f : Ir.Func.t) ->
      let cfg = Cfg.of_func f in
      let loops = Loops.compute cfg in
      Loops.header_phis loops
      |> List.filter_map (fun ((loop : Loops.loop), _header, (phi : Ir.Instr.phi)) ->
             let latch_labels =
               List.map (fun i -> (Cfg.block cfg i).Ir.Block.label) loop.Loops.latches
             in
             let has_back_edge =
               List.exists
                 (fun (lbl, _) -> List.mem lbl latch_labels)
                 phi.Ir.Instr.incoming
             in
             if has_back_edge then
               Some { ch_func = f.Ir.Func.name; ch_phi_uid = phi.Ir.Instr.phi_uid }
             else None))
    prog.Ir.Prog.funcs
  |> dedup_sorted chain_key

let candidate_sites ~profile prog =
  List.concat_map
    (fun (f : Ir.Func.t) ->
      List.concat_map
        (fun (b : Ir.Block.t) ->
          Array.to_list b.Ir.Block.body
          |> List.filter_map (fun (ins : Ir.Instr.t) ->
                 if
                   Ir.Instr.produces_value ins
                   && ins.Ir.Instr.origin = Ir.Instr.From_source
                   && profile ins.Ir.Instr.uid <> None
                 then Some { vs_func = f.Ir.Func.name; vs_uid = ins.Ir.Instr.uid }
                 else None))
        f.Ir.Func.blocks)
    prog.Ir.Prog.funcs
  |> dedup_sorted site_key

let describe p =
  let p = normalize p in
  Printf.sprintf "plan[c%d t%d v%d K%d]" (List.length p.chains)
    (List.length p.terminators) (List.length p.checks) p.checkpoint

let schema = "softft.plan.v1"

let to_json p =
  let p = normalize p in
  let chain_json c =
    Obs.Json.Obj
      [ ("func", Obs.Json.Str c.ch_func); ("phi_uid", Obs.Json.Int c.ch_phi_uid) ]
  in
  let site_json s =
    Obs.Json.Obj
      [ ("func", Obs.Json.Str s.vs_func); ("uid", Obs.Json.Int s.vs_uid) ]
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.Str schema);
      ("checkpoint", Obs.Json.Int p.checkpoint);
      ("chains", Obs.Json.List (List.map chain_json p.chains));
      ("terminators", Obs.Json.List (List.map site_json p.terminators));
      ("checks", Obs.Json.List (List.map site_json p.checks)) ]

let of_json j =
  let str k o =
    match Option.bind (Obs.Json.member k o) Obs.Json.to_str with
    | Some v -> v
    | None -> failwith (Printf.sprintf "plan: missing string field %S" k)
  in
  (match Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str with
  | Some s when s = schema -> ()
  | Some s -> failwith (Printf.sprintf "plan: unknown schema %S" s)
  | None -> failwith "plan: missing schema field");
  let int_field k o =
    match Option.bind (Obs.Json.member k o) Obs.Json.to_int with
    | Some v -> v
    | None -> failwith (Printf.sprintf "plan: missing int field %S" k)
  in
  let list_field k =
    match Obs.Json.member k j with
    | Some (Obs.Json.List l) -> l
    | Some _ -> failwith (Printf.sprintf "plan: field %S is not a list" k)
    | None -> failwith (Printf.sprintf "plan: missing field %S" k)
  in
  let chain_of o = { ch_func = str "func" o; ch_phi_uid = int_field "phi_uid" o } in
  let site_of o = { vs_func = str "func" o; vs_uid = int_field "uid" o } in
  normalize
    {
      chains = List.map chain_of (list_field "chains");
      terminators = List.map site_of (list_field "terminators");
      checks = List.map site_of (list_field "checks");
      checkpoint = int_field "checkpoint" j;
    }

let to_string p = Obs.Json.to_string (to_json p)
let of_string s = of_json (Obs.Json.parse s)

let slug p =
  let p = normalize p in
  let digest = Digest.to_hex (Digest.string (to_string p)) in
  Printf.sprintf "c%dt%dv%dk%d-%s" (List.length p.chains)
    (List.length p.terminators) (List.length p.checks) p.checkpoint
    (String.sub digest 0 6)
