type cost_model = {
  cm_instr : Ir.Instr.t -> int;
  cm_phi : int;
  cm_jmp : int;
  cm_br : int;
  cm_ret : int;
  cm_dup_check : int;
  cm_value_check : Ir.Instr.check_kind -> int;
  cm_shadow_slot : int;
  cm_slack_gain : int;
  cm_slack_cost : int;
  cm_checkpoint_cycles : int;
}

type estimate = {
  pe_sdc_fraction : float;
  pe_exposure_total : float;
  pe_exposure_unprotected : float;
  pe_baseline_cycles : float;
  pe_added_cycles : float;
  pe_overhead : float;
  pe_cloned_instrs : int;
  pe_cloned_phis : int;
  pe_dup_checks : int;
  pe_value_checks : int;
}

let term_cost cost (t : Ir.Instr.terminator) =
  match t with
  | Ir.Instr.Ret _ -> cost.cm_ret
  | Ir.Instr.Jmp _ -> cost.cm_jmp
  | Ir.Instr.Br _ -> cost.cm_br

(* Mirrors [Transform.Duplicate.shadow_reg]'s decision tree symbolically:
   returns whether [r] would receive a non-trivial shadow (a clone).
   Planned terminators with an amenable profile become mid-chain value
   checks and stop the walk, exactly like the Opt-2 hook. *)
let simulate ~(plan : Plan.t) ~profile ~(ud : Usedef.t) ~on_clone_instr
    ~on_clone_phi ~on_opt2_check =
  let memo : (Ir.Instr.reg, bool) Hashtbl.t = Hashtbl.create 64 in
  let opt2_sites : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec sim r =
    match Hashtbl.find_opt memo r with
    | Some b -> b
    | None -> (
      match Usedef.def_of ud r with
      | None | Some Usedef.Param ->
        Hashtbl.replace memo r false;
        false
      | Some (Usedef.Phi_def (_, phi)) ->
        (* Pre-register before recursing, as clone_phi does, so
           loop-carried references see the clone. *)
        Hashtbl.replace memo r true;
        on_clone_phi phi;
        List.iter
          (fun (_, op) ->
            match op with Ir.Instr.Reg r' -> ignore (sim r') | Ir.Instr.Imm _ -> ())
          phi.Ir.Instr.incoming;
        true
      | Some (Usedef.Instr_def (_, ins)) ->
        if Usedef.chain_terminator ins then (
          Hashtbl.replace memo r false;
          false)
        else
          let opt2 =
            Plan.mem_terminator plan ins.Ir.Instr.uid
            && ins.Ir.Instr.dest <> None
            &&
            match profile ins.Ir.Instr.uid with Some _ -> true | None -> false
          in
          if opt2 then (
            Hashtbl.replace memo r false;
            (if not (Hashtbl.mem opt2_sites ins.Ir.Instr.uid) then (
               Hashtbl.replace opt2_sites ins.Ir.Instr.uid ();
               match profile ins.Ir.Instr.uid with
               | Some ck -> on_opt2_check ins ck
               | None -> ()));
            false)
          else (
            Hashtbl.replace memo r true;
            on_clone_instr ins;
            List.iter (fun r' -> ignore (sim r')) (Ir.Instr.uses ins);
            true)
      )
  in
  (sim, memo, opt2_sites)

let estimate ?exec_counts ?profile ~cost (prog : Ir.Prog.t) (plan : Plan.t) =
  let plan = Plan.normalize plan in
  let profile = match profile with Some f -> f | None -> fun _ -> None in
  let exposure_total = ref 0.0 and exposure_unprot = ref 0.0 in
  let baseline = ref 0.0 and added = ref 0.0 and steps = ref 0.0 in
  let cloned_instrs = ref 0 and cloned_phis = ref 0 in
  let dup_checks = ref 0 and value_checks = ref 0 in
  Ir.Prog.iter_funcs
    (fun f ->
      let ud = Usedef.compute f in
      let cfg = Cfg.of_func f in
      let live = Liveness.compute cfg in
      let loops = Loops.compute cfg in
      let n = Cfg.n_blocks cfg in
      let weights =
        match Option.bind exec_counts (fun g -> g f.Ir.Func.name) with
        | Some c when Array.length c = n -> Array.map float_of_int c
        | Some _ | None -> Array.make n 1.0
      in
      let block_of_uid : (int, int) Hashtbl.t = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let b = Cfg.block cfg i in
        List.iter
          (fun (phi : Ir.Instr.phi) ->
            Hashtbl.replace block_of_uid phi.phi_uid i)
          b.Ir.Block.phis;
        Array.iter
          (fun (ins : Ir.Instr.t) -> Hashtbl.replace block_of_uid ins.uid i)
          b.Ir.Block.body;
        (* Priced baseline and dynamic step count of the original. *)
        let body_cost =
          Array.fold_left (fun a ins -> a + cost.cm_instr ins) 0 b.Ir.Block.body
        in
        let phi_cost = cost.cm_phi * List.length b.Ir.Block.phis in
        baseline :=
          !baseline
          +. (weights.(i) *. float_of_int (body_cost + phi_cost + term_cost cost b.Ir.Block.term));
        steps :=
          !steps
          +. (weights.(i)
              *. float_of_int (Array.length b.Ir.Block.body + List.length b.Ir.Block.phis + 1))
      done;
      let weight_of_uid uid =
        match Hashtbl.find_opt block_of_uid uid with
        | Some i -> weights.(i)
        | None -> 1.0
      in
      (* Shadow ops per block, for the slack approximation. *)
      let shadows_per_block = Array.make n 0 in
      let value_checked : (Ir.Instr.reg, unit) Hashtbl.t = Hashtbl.create 16 in
      let on_clone_instr (ins : Ir.Instr.t) =
        incr cloned_instrs;
        match Hashtbl.find_opt block_of_uid ins.uid with
        | Some i -> shadows_per_block.(i) <- shadows_per_block.(i) + 1
        | None -> ()
      in
      let on_clone_phi (phi : Ir.Instr.phi) =
        incr cloned_phis;
        added := !added +. (weight_of_uid phi.phi_uid *. float_of_int cost.cm_phi)
      in
      let on_opt2_check (ins : Ir.Instr.t) ck =
        incr value_checks;
        added :=
          !added +. (weight_of_uid ins.uid *. float_of_int (cost.cm_value_check ck));
        match ins.dest with
        | Some d -> Hashtbl.replace value_checked d ()
        | None -> ()
      in
      let sim, covered, opt2_sites =
        simulate ~plan ~profile ~ud ~on_clone_instr ~on_clone_phi ~on_opt2_check
      in
      (* Walk every planned chain from its back-edge operands, placing a
         latch dup-check whenever the shadow is non-trivial — the same
         rule as [Duplicate.protect_state_var]. *)
      List.iter
        (fun ((loop : Loops.loop), _header, (phi : Ir.Instr.phi)) ->
          if Plan.mem_chain plan ~phi_uid:phi.Ir.Instr.phi_uid then
            List.iter
              (fun latch_idx ->
                let latch_lbl = Cfg.label cfg latch_idx in
                List.iter
                  (fun (lbl, op) ->
                    if lbl = latch_lbl then
                      match op with
                      | Ir.Instr.Reg r ->
                        if sim r then (
                          incr dup_checks;
                          added :=
                            !added
                            +. (weights.(latch_idx) *. float_of_int cost.cm_dup_check))
                      | Ir.Instr.Imm _ -> ())
                  phi.Ir.Instr.incoming)
              loop.Loops.latches)
        (Loops.header_phis loops);
      (* Stand-alone planned check sites (skipping sites the chain walk
         already converted into Opt-2 checks, as the transform does via
         [already_checked]). *)
      for i = 0 to n - 1 do
        let b = Cfg.block cfg i in
        Array.iter
          (fun (ins : Ir.Instr.t) ->
            if
              Plan.mem_check plan ins.Ir.Instr.uid
              && ins.Ir.Instr.origin = Ir.Instr.From_source
              && Ir.Instr.produces_value ins
              && not (Hashtbl.mem opt2_sites ins.Ir.Instr.uid)
            then
              match (profile ins.Ir.Instr.uid, ins.Ir.Instr.dest) with
              | Some ck, Some d ->
                incr value_checks;
                added :=
                  !added +. (weights.(i) *. float_of_int (cost.cm_value_check ck));
                Hashtbl.replace value_checked d ()
              | _ -> ())
          b.Ir.Block.body
      done;
      (* Slack-discounted shadow cost: each source instruction earns
         cm_slack_gain credits and a free shadow costs cm_slack_cost, so
         per block roughly n_src·gain/cost shadows ride for free. *)
      for i = 0 to n - 1 do
        let n_sh = float_of_int shadows_per_block.(i) in
        if n_sh > 0.0 then begin
          let n_src = float_of_int (Array.length (Cfg.block cfg i).Ir.Block.body) in
          let free =
            if cost.cm_slack_cost <= 0 then n_sh
            else
              min n_sh
                (n_src *. float_of_int cost.cm_slack_gain
                 /. float_of_int cost.cm_slack_cost)
          in
          added :=
            !added +. (weights.(i) *. (n_sh -. free) *. float_of_int cost.cm_shadow_slot)
        end
      done;
      (* Exposure of unprotected original registers, as Coverage.analyze
         computes it: live-in residency weighted by block frequency, with
         every defined register seeded so intra-block values get a row. *)
      let exposure : (Ir.Instr.reg, float) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace exposure r 0.0) f.Ir.Func.params;
      for i = 0 to n - 1 do
        let b = Cfg.block cfg i in
        List.iter
          (fun (phi : Ir.Instr.phi) -> if not (Hashtbl.mem exposure phi.phi_dest) then Hashtbl.replace exposure phi.phi_dest 0.0)
          b.Ir.Block.phis;
        Array.iter
          (fun (ins : Ir.Instr.t) ->
            match ins.dest with
            | Some r -> if not (Hashtbl.mem exposure r) then Hashtbl.replace exposure r 0.0
            | None -> ())
          b.Ir.Block.body
      done;
      for i = 0 to n - 1 do
        Hashtbl.iter
          (fun r () ->
            let prev = try Hashtbl.find exposure r with Not_found -> 0.0 in
            Hashtbl.replace exposure r (prev +. weights.(i)))
          live.Liveness.live_in.(i)
      done;
      Hashtbl.iter
        (fun r e ->
          exposure_total := !exposure_total +. e;
          let protected_ =
            (match Hashtbl.find_opt covered r with Some b -> b | None -> false)
            || Hashtbl.mem value_checked r
          in
          if not protected_ then exposure_unprot := !exposure_unprot +. e)
        exposure)
    prog;
  (* Checkpoint overhead: one lump cost every K dynamic steps. *)
  (if plan.Plan.checkpoint > 0 then
     let k = float_of_int plan.Plan.checkpoint in
     added := !added +. (!steps /. k *. float_of_int cost.cm_checkpoint_cycles));
  {
    pe_sdc_fraction =
      (if !exposure_total > 0.0 then !exposure_unprot /. !exposure_total else 0.0);
    pe_exposure_total = !exposure_total;
    pe_exposure_unprotected = !exposure_unprot;
    pe_baseline_cycles = !baseline;
    pe_added_cycles = !added;
    pe_overhead = (if !baseline > 0.0 then !added /. !baseline else 0.0);
    pe_cloned_instrs = !cloned_instrs;
    pe_cloned_phis = !cloned_phis;
    pe_dup_checks = !dup_checks;
    pe_value_checks = !value_checks;
  }
