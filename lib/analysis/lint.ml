(** Transform-invariant lint; see the interface for the rule catalogue. *)

type rule =
  | Reachability
  | Dominance
  | Separation
  | Chain_coverage
  | Check_shape

type expectation = Any | Selective | Full | Plan of Plan.t

type issue = {
  rule : rule;
  func : string;
  block : string;
  message : string;
}

exception Error of issue list

let rule_name = function
  | Reachability -> "reachability"
  | Dominance -> "dominance"
  | Separation -> "separation"
  | Chain_coverage -> "chain-coverage"
  | Check_shape -> "check-shape"

let pp_issue ppf i =
  Format.fprintf ppf "[%s] %s/%s: %s" (rule_name i.rule) i.func i.block
    i.message

(* Where a register is defined, in coordinates that make dominance of a use
   decidable: parameters dominate everything, phis define at block entry,
   body instructions at their index. *)
type def_pos =
  | Dparam
  | Dphi of int          (* block index *)
  | Dbody of int * int   (* block index, body index *)

let check_kind_equal (a : Ir.Instr.check_kind) (b : Ir.Instr.check_kind) =
  match a, b with
  | Ir.Instr.Single x, Ir.Instr.Single y -> Ir.Value.equal x y
  | Ir.Instr.Double (x1, x2), Ir.Instr.Double (y1, y2) ->
    Ir.Value.equal x1 y1 && Ir.Value.equal x2 y2
  | Ir.Instr.Range (x1, x2), Ir.Instr.Range (y1, y2) ->
    Ir.Value.equal x1 y1 && Ir.Value.equal x2 y2
  | (Ir.Instr.Single _ | Ir.Instr.Double _ | Ir.Instr.Range _), _ -> false

let is_duplicated = function
  | Ir.Instr.Duplicated _ -> true
  | Ir.Instr.From_source | Ir.Instr.Check_insertion -> false

let regs_of_operands ops =
  List.filter_map
    (function Ir.Instr.Reg r -> Some r | Ir.Instr.Imm _ -> None)
    ops

let check_func ~expect ~profile (f : Ir.Func.t) ~emit =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let reachable = Cfg.reachable cfg in
  let n = Cfg.n_blocks cfg in
  let issue ~rule ~block fmt =
    Format.kasprintf
      (fun message -> emit { rule; func = f.name; block; message })
      fmt
  in
  (* ----- Reachability ----- *)
  for i = 0 to n - 1 do
    if not reachable.(i) then
      issue ~rule:Reachability ~block:(Cfg.block cfg i).Ir.Block.label
        "block unreachable from the entry"
  done;
  (* ----- Definition sites ----- *)
  let defs : (Ir.Instr.reg, def_pos) Hashtbl.t = Hashtbl.create 64 in
  (* reg -> uid of the defining instruction or phi *)
  let def_uid : (Ir.Instr.reg, int) Hashtbl.t = Hashtbl.create 64 in
  (* uid of an original -> dest register of its [Duplicated] clone *)
  let clone_of_uid : (int, Ir.Instr.reg) Hashtbl.t = Hashtbl.create 32 in
  (* registers defined by [Duplicated] instructions or phis *)
  let shadow : (Ir.Instr.reg, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace defs r Dparam) f.params;
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    List.iter
      (fun (phi : Ir.Instr.phi) ->
        Hashtbl.replace defs phi.phi_dest (Dphi i);
        Hashtbl.replace def_uid phi.phi_dest phi.phi_uid;
        match phi.phi_origin with
        | Ir.Instr.Duplicated u ->
          Hashtbl.replace shadow phi.phi_dest ();
          Hashtbl.replace clone_of_uid u phi.phi_dest
        | Ir.Instr.From_source | Ir.Instr.Check_insertion -> ())
      b.phis;
    Array.iteri
      (fun j (ins : Ir.Instr.t) ->
        match ins.dest with
        | None -> ()
        | Some r ->
          Hashtbl.replace defs r (Dbody (i, j));
          Hashtbl.replace def_uid r ins.uid;
          (match ins.origin with
           | Ir.Instr.Duplicated u ->
             Hashtbl.replace shadow r ();
             Hashtbl.replace clone_of_uid u r
           | Ir.Instr.From_source | Ir.Instr.Check_insertion -> ()))
      b.body
  done;
  (* The shadow of an original register, reconstructed from provenance:
     the dest of the clone of its defining instruction, if one exists. *)
  let shadow_of r =
    match Hashtbl.find_opt def_uid r with
    | None -> None
    | Some u -> Hashtbl.find_opt clone_of_uid u
  in
  (* ----- Dominance: every use dominated by its def ----- *)
  (* Uses in unreachable blocks are skipped: dominance is undefined there
     and the Reachability issue already covers the block. *)
  let dominated_in_body ~ublock ~upos r =
    match Hashtbl.find_opt defs r with
    | None -> true   (* undefined register: the structural verifier's job *)
    | Some Dparam -> true
    | Some (Dphi db) -> db = ublock || Dom.dominates dom db ublock
    | Some (Dbody (db, dj)) ->
      if db = ublock then dj < upos else Dom.dominates dom db ublock
  in
  let available_at_exit ~pblock r =
    match Hashtbl.find_opt defs r with
    | None -> true
    | Some Dparam -> true
    | Some (Dphi db) | Some (Dbody (db, _)) ->
      db = pblock || Dom.dominates dom db pblock
  in
  for i = 0 to n - 1 do
    if reachable.(i) then begin
      let b = Cfg.block cfg i in
      let block = b.Ir.Block.label in
      List.iter
        (fun (phi : Ir.Instr.phi) ->
          List.iter
            (fun (pred_lbl, op) ->
              match op with
              | Ir.Instr.Imm _ -> ()
              | Ir.Instr.Reg r ->
                (match Hashtbl.find_opt cfg.index_of pred_lbl with
                 | None -> ()   (* unknown predecessor: verifier's job *)
                 | Some p ->
                   if reachable.(p) && not (available_at_exit ~pblock:p r)
                   then
                     issue ~rule:Dominance ~block
                       "phi %%r%d incoming %%r%d from %s is not dominated \
                        by its definition"
                       phi.phi_dest r pred_lbl))
            phi.incoming)
        b.phis;
      Array.iteri
        (fun j (ins : Ir.Instr.t) ->
          List.iter
            (fun r ->
              if not (dominated_in_body ~ublock:i ~upos:j r) then
                issue ~rule:Dominance ~block
                  "use of %%r%d in #%d is not dominated by its definition" r
                  ins.uid)
            (Ir.Instr.uses ins))
        b.body;
      List.iter
        (fun r ->
          if not (dominated_in_body ~ublock:i ~upos:max_int r) then
            issue ~rule:Dominance ~block
              "terminator use of %%r%d is not dominated by its definition" r)
        (regs_of_operands
           (match b.term with
            | Ir.Instr.Ret (Some op) | Ir.Instr.Br (op, _, _) -> [ op ]
            | Ir.Instr.Ret None | Ir.Instr.Jmp _ -> []))
    end
  done;
  (* ----- Separation: shadows never flow back into the original sphere ----- *)
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    let block = b.Ir.Block.label in
    List.iter
      (fun (phi : Ir.Instr.phi) ->
        if not (is_duplicated phi.phi_origin) then
          List.iter
            (fun (_, op) ->
              match op with
              | Ir.Instr.Reg r when Hashtbl.mem shadow r ->
                issue ~rule:Separation ~block
                  "original phi %%r%d reads shadow register %%r%d"
                  phi.phi_dest r
              | Ir.Instr.Reg _ | Ir.Instr.Imm _ -> ())
            phi.incoming)
      b.phis;
    Array.iter
      (fun (ins : Ir.Instr.t) ->
        let shadow_ok =
          is_duplicated ins.origin
          || (match ins.kind with Ir.Instr.Dup_check _ -> true | _ -> false)
        in
        if not shadow_ok then
          List.iter
            (fun r ->
              if Hashtbl.mem shadow r then
                issue ~rule:Separation ~block
                  "%s #%d reads shadow register %%r%d"
                  (match ins.kind with
                   | Ir.Instr.Value_check _ -> "value check"
                   | _ -> "original instruction")
                  ins.uid r)
            (Ir.Instr.uses ins))
      b.body;
    List.iter
      (fun r ->
        if Hashtbl.mem shadow r then
          issue ~rule:Separation ~block
            "terminator reads shadow register %%r%d" r)
      (regs_of_operands
         (match b.term with
          | Ir.Instr.Ret (Some op) | Ir.Instr.Br (op, _, _) -> [ op ]
          | Ir.Instr.Ret None | Ir.Instr.Jmp _ -> []))
  done;
  (* ----- Chain coverage ----- *)
  (match expect with
   | Any -> ()
   | Selective | Plan _ ->
     (* Backward closure from every Dup_check over duplicate defs: a shadow
        register is covered when its value (or a value computed from it)
        is eventually compared against an original. *)
     let covered : (Ir.Instr.reg, unit) Hashtbl.t = Hashtbl.create 32 in
     Ir.Func.iter_blocks
       (fun b ->
         Array.iter
           (fun (ins : Ir.Instr.t) ->
             match ins.kind with
             | Ir.Instr.Dup_check (a, b') ->
               List.iter
                 (fun r -> Hashtbl.replace covered r ())
                 (regs_of_operands [ a; b' ])
             | _ -> ())
           b.body)
       f;
     let changed = ref true in
     while !changed do
       changed := false;
       Ir.Func.iter_blocks
         (fun b ->
           List.iter
             (fun (phi : Ir.Instr.phi) ->
               if is_duplicated phi.phi_origin
                  && Hashtbl.mem covered phi.phi_dest then
                 List.iter
                   (fun (_, op) ->
                     match op with
                     | Ir.Instr.Reg r when not (Hashtbl.mem covered r) ->
                       Hashtbl.replace covered r ();
                       changed := true
                     | Ir.Instr.Reg _ | Ir.Instr.Imm _ -> ())
                   phi.incoming)
             b.phis;
           Array.iter
             (fun (ins : Ir.Instr.t) ->
               match ins.dest with
               | Some d
                 when is_duplicated ins.origin && Hashtbl.mem covered d ->
                 List.iter
                   (fun r ->
                     if not (Hashtbl.mem covered r) then begin
                       Hashtbl.replace covered r ();
                       changed := true
                     end)
                   (Ir.Instr.uses ins)
               | Some _ | None -> ())
             b.body)
         f
     done;
     for i = 0 to n - 1 do
       let b = Cfg.block cfg i in
       let block = b.Ir.Block.label in
       List.iter
         (fun (phi : Ir.Instr.phi) ->
           if is_duplicated phi.phi_origin
              && not (Hashtbl.mem covered phi.phi_dest) then
             issue ~rule:Chain_coverage ~block
               "shadow phi %%r%d never reaches a dup_check" phi.phi_dest)
         b.phis;
       Array.iter
         (fun (ins : Ir.Instr.t) ->
           match ins.dest with
           | Some d when is_duplicated ins.origin
                         && not (Hashtbl.mem covered d) ->
             issue ~rule:Chain_coverage ~block
               "shadow register %%r%d (#%d) never reaches a dup_check" d
               ins.uid
           | Some _ | None -> ())
         b.body
     done;
     (* Every duplicated state variable is compared in the latch before the
        back edge: mirrors {!Transform.Duplicate.protect_state_var}.  Under
        a plan the rule inverts for chains the plan leaves out: a latch
        comparison there means the pipeline protected more than it was
        asked to. *)
     let plan = match expect with Plan p -> Some p | _ -> None in
     let loops = Loops.compute cfg in
     (* Back-edge registers of planned chains, so a shared back-edge
        register checked on behalf of a planned phi is not misread as an
        unplanned comparison for a second phi carrying the same value. *)
     let planned_latch_regs : (int * Ir.Instr.reg, unit) Hashtbl.t =
       Hashtbl.create 16
     in
     (match plan with
      | None -> ()
      | Some p ->
        List.iter
          (fun (l : Loops.loop) ->
            let header = Cfg.block cfg l.header in
            List.iter
              (fun (phi : Ir.Instr.phi) ->
                if Plan.mem_chain p ~phi_uid:phi.phi_uid then
                  List.iter
                    (fun latch ->
                      let lb = Cfg.block cfg latch in
                      match List.assoc_opt lb.Ir.Block.label phi.incoming with
                      | Some (Ir.Instr.Reg r) ->
                        Hashtbl.replace planned_latch_regs (latch, r) ()
                      | None | Some (Ir.Instr.Imm _) -> ())
                    l.latches)
              header.phis)
          loops.loops);
     List.iter
       (fun (l : Loops.loop) ->
         let header = Cfg.block cfg l.header in
         List.iter
           (fun (phi : Ir.Instr.phi) ->
             if not (is_duplicated phi.phi_origin) then begin
               let required =
                 match plan with
                 | None -> Hashtbl.mem clone_of_uid phi.phi_uid
                 | Some p -> Plan.mem_chain p ~phi_uid:phi.phi_uid
               in
               List.iter
                 (fun latch ->
                   let lb = Cfg.block cfg latch in
                   match List.assoc_opt lb.Ir.Block.label phi.incoming with
                   | None | Some (Ir.Instr.Imm _) -> ()
                   | Some (Ir.Instr.Reg r) ->
                     (match shadow_of r with
                      | None -> ()   (* chain terminated (or value-checked)
                                        before the back edge: no shadow to
                                        compare *)
                      | Some s ->
                        let has_check =
                          Array.exists
                            (fun (ins : Ir.Instr.t) ->
                              match ins.kind with
                              | Ir.Instr.Dup_check
                                  (Ir.Instr.Reg a, Ir.Instr.Reg b') ->
                                a = r && b' = s
                              | _ -> false)
                            lb.body
                        in
                        if required && not has_check then
                          issue ~rule:Chain_coverage
                            ~block:lb.Ir.Block.label
                            "back edge to %s carries state variable %%r%d \
                             (shadow %%r%d) without a dup_check in the latch"
                            header.Ir.Block.label r s;
                        if
                          (not required) && plan <> None && has_check
                          && not (Hashtbl.mem planned_latch_regs (latch, r))
                        then
                          issue ~rule:Chain_coverage
                            ~block:lb.Ir.Block.label
                            "latch dup_check compares %%r%d (shadow %%r%d) \
                             but its chain is not in the plan"
                            r s))
                 l.latches
             end)
           header.phis)
       loops.loops;
     (* Plan-only value-check placement: every check sits on a planned
        site, and every amenable planned stand-alone site has its check. *)
     (match plan with
      | None -> ()
      | Some p ->
        let dest_of_uid : (int, Ir.Instr.reg) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.iter (fun r u -> Hashtbl.replace dest_of_uid u r) def_uid;
        let value_checked : (Ir.Instr.reg, unit) Hashtbl.t =
          Hashtbl.create 16
        in
        for i = 0 to n - 1 do
          let b = Cfg.block cfg i in
          Array.iter
            (fun (ins : Ir.Instr.t) ->
              match ins.kind with
              | Ir.Instr.Value_check (_, Ir.Instr.Reg r) ->
                Hashtbl.replace value_checked r ();
                (match Hashtbl.find_opt def_uid r with
                 | None -> ()
                 | Some u ->
                   if not (Plan.mem_terminator p u || Plan.mem_check p u) then
                     issue ~rule:Chain_coverage ~block:b.Ir.Block.label
                       "value check #%d guards site #%d, which the plan does \
                        not name"
                       ins.uid u)
              | _ -> ())
            b.body
        done;
        match profile with
        | None -> ()
        | Some pf ->
          List.iter
            (fun (s : Plan.site) ->
              if s.Plan.vs_func = f.name && pf s.Plan.vs_uid <> None then
                match Hashtbl.find_opt dest_of_uid s.Plan.vs_uid with
                | None ->
                  issue ~rule:Chain_coverage ~block:f.entry
                    "plan names check site #%d but the function defines no \
                     such instruction"
                    s.Plan.vs_uid
                | Some d ->
                  if not (Hashtbl.mem value_checked d) then
                    issue ~rule:Chain_coverage ~block:f.entry
                      "plan names check site #%d but no value check guards \
                       %%r%d"
                      s.Plan.vs_uid d)
            p.Plan.checks)
   | Full ->
     (* Every escape of a value that has a shadow is guarded: stores and
        calls by a preceding in-block dup_check, branch/return operands by
        a dup_check anywhere in the block body — mirrors
        {!Transform.Full_dup}'s synchronisation points. *)
     for i = 0 to n - 1 do
       let b = Cfg.block cfg i in
       let block = b.Ir.Block.label in
       let checked_before j r =
         let found = ref false in
         Array.iteri
           (fun k (ins : Ir.Instr.t) ->
             if k < j then
               match ins.kind with
               | Ir.Instr.Dup_check (Ir.Instr.Reg a, _) when a = r ->
                 found := true
               | _ -> ())
           b.body;
         !found
       in
       Array.iteri
         (fun j (ins : Ir.Instr.t) ->
           let escape_operands =
             match ins.kind with
             | Ir.Instr.Store (a, v) -> [ a; v ]
             | Ir.Instr.Call (_, args) -> args
             | _ -> []
           in
           if ins.origin <> Ir.Instr.Check_insertion then
             List.iter
               (fun r ->
                 match shadow_of r with
                 | Some _ when not (checked_before j r) ->
                   issue ~rule:Chain_coverage ~block
                     "#%d lets %%r%d escape without a preceding dup_check"
                     ins.uid r
                 | Some _ | None -> ())
               (regs_of_operands escape_operands))
         b.body;
       List.iter
         (fun r ->
           match shadow_of r with
           | Some _ when not (checked_before (Array.length b.body) r) ->
             issue ~rule:Chain_coverage ~block
               "terminator lets %%r%d escape without a dup_check in the \
                block" r
           | Some _ | None -> ())
         (regs_of_operands
            (match b.term with
             | Ir.Instr.Ret (Some op) | Ir.Instr.Br (op, _, _) -> [ op ]
             | Ir.Instr.Ret None | Ir.Instr.Jmp _ -> []))
     done);
  (* ----- Check shape ----- *)
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    let block = b.Ir.Block.label in
    Array.iter
      (fun (ins : Ir.Instr.t) ->
        match ins.kind with
        | Ir.Instr.Value_check (ck, op) ->
          (match ck with
           | Ir.Instr.Single _ -> ()
           | Ir.Instr.Double (a, b') ->
             if Ir.Value.equal a b' then
               issue ~rule:Check_shape ~block
                 "value check #%d: double with two identical constants"
                 ins.uid
           | Ir.Instr.Range (lo, hi) ->
             if Ir.Value.is_int lo <> Ir.Value.is_int hi then
               issue ~rule:Check_shape ~block
                 "value check #%d: range mixes int and float bounds" ins.uid
             else if Ir.Value.compare lo hi > 0 then
               issue ~rule:Check_shape ~block
                 "value check #%d: empty range (lo > hi)" ins.uid);
          (match profile, op with
           | Some pf, Ir.Instr.Reg r ->
             (match Option.bind (Hashtbl.find_opt def_uid r) pf with
              | Some recorded when not (check_kind_equal ck recorded) ->
                issue ~rule:Check_shape ~block
                  "value check #%d disagrees with the recorded profile of \
                   its instruction"
                  ins.uid
              | Some _ | None -> ())
           | (Some _ | None), _ -> ())
        | _ -> ())
      b.body
  done

let check ?(expect = Any) ?profile (p : Ir.Prog.t) =
  let issues = ref [] in
  let emit i = issues := i :: !issues in
  Ir.Prog.iter_funcs (fun f -> check_func ~expect ~profile f ~emit) p;
  List.rev !issues

let run ?expect ?profile p =
  match check ?expect ?profile p with
  | [] -> ()
  | issues -> raise (Error issues)
