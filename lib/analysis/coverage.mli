(** Static protection-coverage and vulnerability analysis of transformed IR.

    Classifies every instruction, phi and register of a (possibly
    protected) program by how a fault striking it would be handled, using
    only the provenance metadata the transformation passes leave behind —
    no fault campaign required:

    - [Dup_checked]: the value is recomputed by a [Duplicated] chain whose
      result is compared by a [Dup_check] (or the register is itself an
      operand of one), so an error is detected before it can escape.
    - [Value_checked]: the value is guarded by an expected-value
      [Value_check] learned from profiling; detection is probabilistic but
      the slot is covered.
    - [Dup_unchecked]: a shadow chain exists but never reaches a
      comparison — duplication cost paid with no detection benefit.
    - [Shadow] / [Check]: protection machinery itself.  A fault in a
      shadow register or a check input makes the comparison disagree and
      is flagged (a false positive, never a silent corruption).
    - [Unprotected]: a fault here can propagate silently.

    Combining each register's protection status with its live range
    ({!Liveness}) and per-block dynamic execution counts (from
    [Interp.Profile], passed abstractly as [exec_counts]) yields an
    AVF-style exposure estimate per register slot: the share of
    register-file residency occupied by unprotected live values predicts
    the SDC-prone fraction a fault campaign should measure. *)

type status =
  | Dup_checked
  | Value_checked
  | Dup_unchecked
  | Shadow
  | Check
  | Unprotected

val status_name : status -> string

(** One classified instruction or phi ([i_uid] is the phi uid for phis,
    [i_pos] its index among the block's phis then body). *)
type instr_row = {
  i_func : string;
  i_block : string;
  i_uid : int;
  i_desc : string;       (** short opcode description, e.g. "binop", "phi" *)
  i_status : status;
}

(** One register slot with its exposure: the sum over blocks where the
    register is live-in of that block's execution weight (dynamic count
    when [exec_counts] knows the function, otherwise 1 per block). *)
type reg_row = {
  r_func : string;
  r_reg : Ir.Instr.reg;
  r_status : status;
  r_exposure : float;
}

type t = {
  instrs : instr_row list;
  regs : reg_row list;
  by_status : (status * int) list;   (** instruction counts, every status *)
  total_instrs : int;
  exposure_total : float;
  exposure_unprotected : float;      (** [Unprotected] + [Dup_unchecked] *)
  sdc_prone_fraction : float;        (** exposure-weighted; 0 when empty *)
  dynamic_weights : bool;            (** true if any function had counts *)
}

(** [analyze ?exec_counts prog] classifies the whole program.
    [exec_counts f] returns per-block dynamic execution counts for
    function [f] in block layout order (e.g. [Interp.Profile.func_block_counts]);
    functions without counts fall back to uniform weight 1 per block. *)
val analyze : ?exec_counts:(string -> int array option) -> Ir.Prog.t -> t

(** Register slots ranked most-vulnerable first: unprotected exposure
    before protected, higher exposure first.  The order is total —
    exposure ties break by (function, register) ascending — so the
    ranking is deterministic run-to-run. *)
val ranked_regs : ?limit:int -> t -> reg_row list

(** Fraction of instructions whose status is in [statuses]. *)
val instr_fraction : t -> status list -> float

(** [reg_status t] is a lookup from program-wide register code to its
    classified status (first classification wins, matching the journal
    join convention); [None] for slots the analysis never saw. *)
val reg_status : t -> Ir.Instr.reg -> status option
