(** Transform-invariant lint: the dominance-based and provenance-based
    checks {!Ir.Verifier} defers to its dominator-analysis consumers.

    The structural verifier proves a program is well-formed SSA; this lint
    proves a *protected* program still respects the invariants the
    protection passes rely on:

    - {b Reachability}: every block is reachable from the entry (the
      verifier checks this too; here unreachable blocks additionally
      suppress the dominance diagnostics they would otherwise drown in).
    - {b Dominance}: every use is dominated by its definition — body and
      terminator uses on the use site, phi uses on the exit of the
      incoming predecessor.
    - {b Separation} (sphere of replication): registers defined by
      [Duplicated] instructions never flow into [From_source] computation,
      value checks or terminators; only duplicate instructions and
      [Dup_check] comparisons may consume shadow values.
    - {b Chain coverage}: duplicated chains end in a comparison.  Under
      [Selective] every shadow register must reach a [Dup_check] through
      shadow data flow, and every duplicated state variable must be
      compared in the latch block before the loop's back edge.  Under
      [Full] every store/call operand and branch/return operand that has a
      shadow must be guarded by a [Dup_check] before the value escapes.
      Under [Plan p] the [Selective] shadow-closure rule applies, but the
      latch rule is derived from the plan's chain set: planned chains must
      be compared in their latches, unplanned loop-header phis must {e not}
      carry a latch comparison, every [Value_check] must sit on a site the
      plan names (terminator or stand-alone), and — when a profile is
      supplied — every amenable planned stand-alone site must actually
      carry its check.
    - {b Check shape}: every [Value_check] constant is internally
      consistent (ordered, kind-homogeneous ranges; distinct doubles) and,
      when a value profile is supplied, matches the recorded shape for the
      checked instruction. *)

type rule =
  | Reachability
  | Dominance
  | Separation
  | Chain_coverage
  | Check_shape

(** What duplication discipline the program under lint claims to follow:
    [Selective] for state-variable producer-chain duplication
    ({!Transform.Duplicate}), [Full] for the SWIFT-style baseline
    ({!Transform.Full_dup}), [Plan p] for a plan-driven pipeline
    ([Transform.Pipeline.of_plan]), [Any] when unknown — [Any] still runs
    every provenance-independent rule, but skips the coverage placement
    rules that differ between the disciplines. *)
type expectation = Any | Selective | Full | Plan of Plan.t

type issue = {
  rule : rule;
  func : string;
  block : string;
  message : string;
}

exception Error of issue list

val rule_name : rule -> string
val pp_issue : Format.formatter -> issue -> unit

(** [check prog] returns every invariant violation, in function/block
    order; an empty list means the program is lint-clean.  [expect]
    (default [Any]) selects the duplication-discipline rules; [profile]
    enables the value-check/profile consistency comparison for
    instructions the profile knows. *)
val check :
  ?expect:expectation ->
  ?profile:(int -> Ir.Instr.check_kind option) ->
  Ir.Prog.t ->
  issue list

(** Like {!check}, but raises {!Error} with the issues when any are
    found — the form the transformation pipeline runs after each stage. *)
val run :
  ?expect:expectation ->
  ?profile:(int -> Ir.Instr.check_kind option) ->
  Ir.Prog.t ->
  unit
