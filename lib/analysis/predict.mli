(** Static predictor for protection plans (DESIGN.md §16).

    Prices a {!Plan.t} without transforming, interpreting or injecting:

    - {b SDC-prone fraction} — replays the duplication pass's chain walk
      symbolically over use-def edges to decide which original registers
      would end up covered by a latch dup-check or an expected-value
      check, then reuses the §11 AVF residency model (liveness live-in
      residency × profiled block weights) to weight what remains
      unprotected.  The denominator is fixed by the original program, so
      adding chains to a plan can only shrink the estimate.
    - {b runtime overhead} — prices the would-be-inserted shadow
      instructions, checks and checkpoints with an injected cost model
      against the same block weights, including a steady-state
      approximation of the interpreter's slack credit (a fraction of
      shadow slots ride for free in unused issue slots).

    The cost model is a record of callbacks so this module stays below
    [lib/interp]; [Softft.Optimize.cost_model] wires in [Interp.Cost]. *)

type cost_model = {
  cm_instr : Ir.Instr.t -> int;        (** body instruction cycles *)
  cm_phi : int;
  cm_jmp : int;
  cm_br : int;
  cm_ret : int;
  cm_dup_check : int;
  cm_value_check : Ir.Instr.check_kind -> int;
  cm_shadow_slot : int;                (** cycles per unslacked shadow op *)
  cm_slack_gain : int;                 (** slack credits per source instr *)
  cm_slack_cost : int;                 (** credits one free shadow consumes *)
  cm_checkpoint_cycles : int;          (** lump cycles per checkpoint *)
}

type estimate = {
  pe_sdc_fraction : float;        (** predicted SDC-prone exposure share *)
  pe_exposure_total : float;
  pe_exposure_unprotected : float;
  pe_baseline_cycles : float;     (** priced original program *)
  pe_added_cycles : float;        (** priced protection additions *)
  pe_overhead : float;            (** added / baseline *)
  pe_cloned_instrs : int;
  pe_cloned_phis : int;
  pe_dup_checks : int;
  pe_value_checks : int;          (** mid-chain (Opt 2) + stand-alone *)
}

(** [estimate ?exec_counts ?profile ~cost prog plan] prices [plan]
    against the {e original} [prog].  [exec_counts] supplies per-function
    block execution counts in layout order (same convention as
    [Coverage.analyze]; uniform weights otherwise).  [profile] decides
    which sites are check-amenable; without it, planned terminators and
    checks are inert, exactly as the transform would treat them. *)
val estimate :
  ?exec_counts:(string -> int array option) ->
  ?profile:(int -> Ir.Instr.check_kind option) ->
  cost:cost_model ->
  Ir.Prog.t ->
  Plan.t ->
  estimate
