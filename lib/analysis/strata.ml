(** Protection-group partition of a program's registers, the static half
    of adaptive stratified fault campaigns (DESIGN.md §14).

    {!Coverage} classifies every register slot by how a fault striking it
    would be handled; this module collapses those six statuses into the
    three campaign-facing protection groups — the strata a stratified
    injection campaign samples independently — and attaches a static
    SDC-proneness prior per group, so the adaptive allocator has a
    variance guess before any trial has run. *)

type group =
  | Dup_checked     (** duplication machinery: faults detected by compares *)
  | Value_checked   (** guarded by learned value checks: probabilistic *)
  | Unprotected     (** faults can propagate silently — the SDC-prone group *)

let ngroups = 3

let group_index = function
  | Dup_checked -> 0
  | Value_checked -> 1
  | Unprotected -> 2

let group_name = function
  | Dup_checked -> "dup-checked"
  | Value_checked -> "value-checked"
  | Unprotected -> "unprotected"

let group_names = Array.init ngroups (fun _ -> "")

let () =
  List.iter
    (fun g -> group_names.(group_index g) <- group_name g)
    [ Dup_checked; Value_checked; Unprotected ]

(* Shadow registers and check inputs behave like duplication machinery: a
   fault there makes the comparison disagree and is flagged, never a
   silent corruption.  Dup_unchecked paid for a shadow chain that reaches
   no compare, so for fault outcomes it is unprotected. *)
let of_status = function
  | Coverage.Dup_checked | Coverage.Shadow | Coverage.Check -> Dup_checked
  | Coverage.Value_checked -> Value_checked
  | Coverage.Dup_unchecked | Coverage.Unprotected -> Unprotected

(** [reg_groups prog cov] maps every program register code to its group
    index ([registers are numbered program-wide]); registers the coverage
    analysis never classified (never live, or padding below [next_reg])
    default to [Unprotected] — the conservative choice. *)
let reg_groups (prog : Ir.Prog.t) (cov : Coverage.t) =
  let n = max 1 prog.Ir.Prog.next_reg in
  let groups = Array.make n (group_index Unprotected) in
  let seen = Array.make n false in
  List.iter
    (fun (r : Coverage.reg_row) ->
      let reg = r.Coverage.r_reg in
      if reg >= 0 && reg < n && not seen.(reg) then begin
        seen.(reg) <- true;
        groups.(reg) <- group_index (of_status r.Coverage.r_status)
      end)
    cov.Coverage.regs;
  groups

(** Static SDC-proneness prior per group, indexed by {!group_index}: the
    analyzer's exposure-weighted SDC-prone fraction seeds the unprotected
    group, duplication and value checking get small fixed guesses (their
    residual SDC rates are low but nonzero — value checks are
    probabilistic, compares have windows).  Only a Neyman-allocation
    seed; real counts take over within one pilot round. *)
let priors (cov : Coverage.t) =
  let p = Array.make ngroups 0.0 in
  p.(group_index Dup_checked) <- 0.01;
  p.(group_index Value_checked) <- 0.05;
  p.(group_index Unprotected)
  <- Float.max 0.1 (Float.min 1.0 cov.Coverage.sdc_prone_fraction);
  p
