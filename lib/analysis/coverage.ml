(** Static protection coverage; see the interface for the model. *)

type status =
  | Dup_checked
  | Value_checked
  | Dup_unchecked
  | Shadow
  | Check
  | Unprotected

let status_name = function
  | Dup_checked -> "dup-checked"
  | Value_checked -> "value-checked"
  | Dup_unchecked -> "dup-unchecked"
  | Shadow -> "shadow"
  | Check -> "check"
  | Unprotected -> "unprotected"

let all_statuses =
  [ Dup_checked; Value_checked; Dup_unchecked; Shadow; Check; Unprotected ]

type instr_row = {
  i_func : string;
  i_block : string;
  i_uid : int;
  i_desc : string;
  i_status : status;
}

type reg_row = {
  r_func : string;
  r_reg : Ir.Instr.reg;
  r_status : status;
  r_exposure : float;
}

type t = {
  instrs : instr_row list;
  regs : reg_row list;
  by_status : (status * int) list;
  total_instrs : int;
  exposure_total : float;
  exposure_unprotected : float;
  sdc_prone_fraction : float;
  dynamic_weights : bool;
}

let kind_desc (k : Ir.Instr.kind) =
  match k with
  | Ir.Instr.Binop _ -> "binop"
  | Ir.Instr.Unop _ -> "unop"
  | Ir.Instr.Icmp _ -> "icmp"
  | Ir.Instr.Fcmp _ -> "fcmp"
  | Ir.Instr.Select _ -> "select"
  | Ir.Instr.Const _ -> "const"
  | Ir.Instr.Load _ -> "load"
  | Ir.Instr.Store _ -> "store"
  | Ir.Instr.Alloc _ -> "alloc"
  | Ir.Instr.Call _ -> "call"
  | Ir.Instr.Dup_check _ -> "dup_check"
  | Ir.Instr.Value_check _ -> "value_check"

(* Ordering used when a no-dest instruction inherits the weakest protection
   among its operand registers. *)
let strength = function
  | Unprotected -> 0
  | Dup_unchecked -> 1
  | Value_checked -> 2
  | Dup_checked -> 3
  | Shadow -> 4
  | Check -> 5

let weaker a b = if strength a <= strength b then a else b

let is_duplicated = function
  | Ir.Instr.Duplicated _ -> true
  | Ir.Instr.From_source | Ir.Instr.Check_insertion -> false

(* Per-function classification state, built in one sweep over the IR. *)
type fstate = {
  def_uid : (Ir.Instr.reg, int) Hashtbl.t;
  def_origin : (Ir.Instr.reg, Ir.Instr.origin) Hashtbl.t;
  clone_of_uid : (int, Ir.Instr.reg) Hashtbl.t;
  covered : (Ir.Instr.reg, unit) Hashtbl.t;      (* shadow regs reaching a check *)
  dup_check_operand : (Ir.Instr.reg, unit) Hashtbl.t;
  value_checked : (Ir.Instr.reg, unit) Hashtbl.t;
}

let build_fstate (f : Ir.Func.t) =
  let st =
    { def_uid = Hashtbl.create 64;
      def_origin = Hashtbl.create 64;
      clone_of_uid = Hashtbl.create 32;
      covered = Hashtbl.create 32;
      dup_check_operand = Hashtbl.create 32;
      value_checked = Hashtbl.create 32 }
  in
  Ir.Func.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Ir.Instr.phi) ->
          Hashtbl.replace st.def_uid phi.phi_dest phi.phi_uid;
          Hashtbl.replace st.def_origin phi.phi_dest phi.phi_origin;
          match phi.phi_origin with
          | Ir.Instr.Duplicated u ->
            Hashtbl.replace st.clone_of_uid u phi.phi_dest
          | Ir.Instr.From_source | Ir.Instr.Check_insertion -> ())
        b.phis;
      Array.iter
        (fun (ins : Ir.Instr.t) ->
          (match ins.dest with
           | Some r ->
             Hashtbl.replace st.def_uid r ins.uid;
             Hashtbl.replace st.def_origin r ins.origin;
             (match ins.origin with
              | Ir.Instr.Duplicated u -> Hashtbl.replace st.clone_of_uid u r
              | Ir.Instr.From_source | Ir.Instr.Check_insertion -> ())
           | None -> ());
          match ins.kind with
          | Ir.Instr.Dup_check (a, b') ->
            List.iter
              (function
                | Ir.Instr.Reg r ->
                  Hashtbl.replace st.dup_check_operand r ()
                | Ir.Instr.Imm _ -> ())
              [ a; b' ]
          | Ir.Instr.Value_check (_, Ir.Instr.Reg r) ->
            Hashtbl.replace st.value_checked r ()
          | _ -> ())
        b.body)
    f;
  (* Backward closure over duplicate dataflow from every dup_check operand:
     the shadow chains that actually end in a comparison. *)
  Hashtbl.iter (fun r () -> Hashtbl.replace st.covered r ())
    st.dup_check_operand;
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.Func.iter_blocks
      (fun b ->
        List.iter
          (fun (phi : Ir.Instr.phi) ->
            if is_duplicated phi.phi_origin
               && Hashtbl.mem st.covered phi.phi_dest then
              List.iter
                (fun (_, op) ->
                  match op with
                  | Ir.Instr.Reg r when not (Hashtbl.mem st.covered r) ->
                    Hashtbl.replace st.covered r ();
                    changed := true
                  | Ir.Instr.Reg _ | Ir.Instr.Imm _ -> ())
                phi.incoming)
          b.phis;
        Array.iter
          (fun (ins : Ir.Instr.t) ->
            match ins.dest with
            | Some d when is_duplicated ins.origin
                          && Hashtbl.mem st.covered d ->
              List.iter
                (fun r ->
                  if not (Hashtbl.mem st.covered r) then begin
                    Hashtbl.replace st.covered r ();
                    changed := true
                  end)
                (Ir.Instr.uses ins)
            | Some _ | None -> ())
          b.body)
      f
  done;
  st

(* Protection status of the value held in register [r]. *)
let reg_status st r =
  match Hashtbl.find_opt st.def_origin r with
  | Some (Ir.Instr.Duplicated _) ->
    if Hashtbl.mem st.covered r then Shadow else Dup_unchecked
  | Some Ir.Instr.Check_insertion -> Check
  | Some Ir.Instr.From_source | None ->
    (* [None] is a parameter (or an undefined reg, the verifier's
       province): same rules, it just cannot have a clone. *)
    let cloned =
      match Hashtbl.find_opt st.def_uid r with
      | None -> None
      | Some u -> Hashtbl.find_opt st.clone_of_uid u
    in
    if Hashtbl.mem st.dup_check_operand r then Dup_checked
    else
      (match cloned with
       | Some c when Hashtbl.mem st.covered c -> Dup_checked
       | Some _ -> Dup_unchecked
       | None ->
         if Hashtbl.mem st.value_checked r then Value_checked
         else Unprotected)

let instr_status st (ins : Ir.Instr.t) =
  match ins.origin with
  | Ir.Instr.Check_insertion -> Check
  | Ir.Instr.Duplicated _ ->
    (match ins.dest with
     | Some d when Hashtbl.mem st.covered d -> Shadow
     | Some _ -> Dup_unchecked
     | None -> Shadow)
  | Ir.Instr.From_source ->
    (match ins.dest with
     | Some d -> reg_status st d
     | None ->
       (* Stores, void calls: a register fault reaches them only through
          their operands, so they inherit the weakest operand protection;
          with no register operands there is nothing in the register file
          to strike. *)
       (match Ir.Instr.uses ins with
        | [] -> Dup_checked
        | rs ->
          List.fold_left
            (fun acc r -> weaker acc (reg_status st r))
            Check rs))

let phi_status st (phi : Ir.Instr.phi) =
  match phi.phi_origin with
  | Ir.Instr.Check_insertion -> Check
  | Ir.Instr.Duplicated _ ->
    if Hashtbl.mem st.covered phi.phi_dest then Shadow else Dup_unchecked
  | Ir.Instr.From_source -> reg_status st phi.phi_dest

let analyze ?exec_counts (p : Ir.Prog.t) =
  let instrs = ref [] and regs = ref [] in
  let counts = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace counts s 0) all_statuses;
  let bump s = Hashtbl.replace counts s (Hashtbl.find counts s + 1) in
  let exposure_total = ref 0.0 and exposure_unprot = ref 0.0 in
  let dynamic = ref false in
  Ir.Prog.iter_funcs
    (fun f ->
      let st = build_fstate f in
      let cfg = Cfg.of_func f in
      let live = Liveness.compute cfg in
      let n = Cfg.n_blocks cfg in
      let weights =
        match Option.bind exec_counts (fun g -> g f.name) with
        | Some c when Array.length c = n ->
          dynamic := true;
          Array.map float_of_int c
        | Some _ | None -> Array.make n 1.0
      in
      (* Instruction table, in layout order. *)
      for i = 0 to n - 1 do
        let b = Cfg.block cfg i in
        List.iter
          (fun (phi : Ir.Instr.phi) ->
            let s = phi_status st phi in
            bump s;
            instrs :=
              { i_func = f.name; i_block = b.label; i_uid = phi.phi_uid;
                i_desc = "phi"; i_status = s }
              :: !instrs)
          b.phis;
        Array.iter
          (fun (ins : Ir.Instr.t) ->
            let s = instr_status st ins in
            bump s;
            instrs :=
              { i_func = f.name; i_block = b.label; i_uid = ins.uid;
                i_desc = kind_desc ins.kind; i_status = s }
              :: !instrs)
          b.body
      done;
      (* Register exposure: residency of each live value, weighted by how
         often its blocks execute. *)
      let exposure = Hashtbl.create 64 in
      (* Every defined register gets a row: a value live only inside one
         block has zero block-boundary residency but can still be hit, and
         the journal join needs a status for it. *)
      List.iter (fun r -> Hashtbl.replace exposure r 0.0) f.params;
      Hashtbl.iter (fun r _ -> Hashtbl.replace exposure r 0.0) st.def_uid;
      for i = 0 to n - 1 do
        Hashtbl.iter
          (fun r () ->
            let prev =
              match Hashtbl.find_opt exposure r with
              | Some e -> e
              | None -> 0.0
            in
            Hashtbl.replace exposure r (prev +. weights.(i)))
          live.Liveness.live_in.(i)
      done;
      (* Registers are unique keys, so sorting by id alone is a total
         order; never let hashtable iteration order leak into [regs]. *)
      Hashtbl.fold (fun r e acc -> (r, e) :: acc) exposure []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.iter (fun (r, e) ->
             let s = reg_status st r in
             exposure_total := !exposure_total +. e;
             (match s with
              | Unprotected | Dup_unchecked ->
                exposure_unprot := !exposure_unprot +. e
              | Dup_checked | Value_checked | Shadow | Check -> ());
             regs :=
               { r_func = f.name; r_reg = r; r_status = s; r_exposure = e }
               :: !regs))
    p;
  let by_status =
    List.map (fun s -> (s, Hashtbl.find counts s)) all_statuses
  in
  let total_instrs = List.fold_left (fun a (_, n) -> a + n) 0 by_status in
  { instrs = List.rev !instrs;
    regs = List.rev !regs;
    by_status;
    total_instrs;
    exposure_total = !exposure_total;
    exposure_unprotected = !exposure_unprot;
    sdc_prone_fraction =
      (if !exposure_total > 0.0 then !exposure_unprot /. !exposure_total
       else 0.0);
    dynamic_weights = !dynamic }

(* Total order: unprotected classes first, exposure descending, then
   (function, register) ascending — every tie is broken explicitly, so
   the ranking (and the CSV built from it) is bit-stable across runs. *)
let ranked_regs ?limit t =
  let unprot = function Unprotected | Dup_unchecked -> 0 | _ -> 1 in
  let ranked =
    List.sort
      (fun a b ->
        match Int.compare (unprot a.r_status) (unprot b.r_status) with
        | 0 ->
          (match Float.compare b.r_exposure a.r_exposure with
           | 0 ->
             (match String.compare a.r_func b.r_func with
              | 0 -> Int.compare a.r_reg b.r_reg
              | c -> c)
           | c -> c)
        | c -> c)
      t.regs
  in
  match limit with
  | None -> ranked
  | Some k -> List.filteri (fun i _ -> i < k) ranked

let instr_fraction t statuses =
  if t.total_instrs = 0 then 0.0
  else
    let n =
      List.fold_left
        (fun acc (s, c) -> if List.mem s statuses then acc + c else acc)
        0 t.by_status
    in
    float_of_int n /. float_of_int t.total_instrs

(* First classification wins: [regs] lists a slot once per function it is
   live in, and the program-wide numbering means later duplicates are the
   same physical slot seen from another frame. *)
let reg_status t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem tbl r.r_reg) then
        Hashtbl.replace tbl r.r_reg r.r_status)
    t.regs;
  fun reg -> Hashtbl.find_opt tbl reg
