(** Campaign trial journal; see the interface for the file layout. *)

open Obs

let schema = "softft.journal.v1"

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let value_json (v : Ir.Value.t) =
  match v with
  | Ir.Value.Int i ->
    (* int64 payloads may exceed the OCaml int range; keep them lossless
       as decimal strings. *)
    Json.Obj [ ("kind", Json.Str "int"); ("v", Json.Str (Int64.to_string i)) ]
  | Ir.Value.Float f ->
    Json.Obj
      [ ("kind", Json.Str "float"); ("v", Json.Float f);
        ("bits", Json.Str (Int64.to_string (Int64.bits_of_float f))) ]

let fault_kind_name = function
  | Interp.Machine.Register_bit -> "register_bit"
  | Interp.Machine.Branch_target -> "branch_target"

let injection_json (inj : Interp.Machine.injection) =
  Json.Obj
    [ ("kind", Json.Str (fault_kind_name inj.inj_kind));
      ("step", Json.Int inj.inj_step);
      ("reg", Json.Int inj.inj_reg);
      ("bit", Json.Int inj.inj_bit);
      ("before", value_json inj.before);
      ("after", value_json inj.after) ]

let opt_field name f = function
  | None -> []
  | Some v -> [ (name, f v) ]

let trial_record ~index (t : Campaign.trial) =
  Json.Obj
    ([ ("type", Json.Str "trial");
       ("i", Json.Int index);
       ("seed", Json.Int t.trial_seed);
       ("at_step", Json.Int t.at_step);
       ("outcome", Json.Str (Classify.name t.outcome));
       ("steps", Json.Int t.steps);
       ("cycles", Json.Int t.cycles) ]
     @ opt_field "detect_latency" (fun l -> Json.Int l) t.detect_latency
     @ (match t.detected_by with
        | None -> []
        | Some (d : Interp.Machine.detection) ->
          [ ("check_uid", Json.Int d.check_uid);
            ("dup_check", Json.Bool d.dup_check) ])
     @ opt_field "injection" injection_json t.injection)

let pool_stats_json (ps : Pool.stats) =
  Json.Obj
    [ ("domains", Json.Int ps.st_domains);
      ("chunk", Json.Int ps.st_chunk);
      ("wall_sec",
       Json.List (Array.to_list (Array.map (fun s -> Json.Float s) ps.st_wall)));
      ("items",
       Json.List (Array.to_list (Array.map (fun n -> Json.Int n) ps.st_items)))
    ]

let stats_json (rs : Campaign.run_stats) =
  Json.Obj
    ([ ("golden_sec", Json.Float rs.golden_sec);
       ("trials_sec", Json.Float rs.trials_sec);
       ("wall_sec", Json.Float rs.wall_sec) ]
     @ opt_field "pool" pool_stats_json rs.pool)

let manifest_record ?git ?technique ?stats ~label ~trials ~seed ~domains
    ~hw_window ~fault_kind ~(golden : Campaign.golden) () =
  let git = match git with Some g -> g | None -> git_describe () in
  Json.Obj
    ([ ("type", Json.Str "manifest");
       ("schema", Json.Str schema);
       ("git", Json.Str git);
       ("label", Json.Str label);
       ("trials", Json.Int trials);
       ("seed", Json.Int seed);
       ("domains", Json.Int domains);
       ("hw_window", Json.Int hw_window);
       ("fault_kind", Json.Str fault_kind) ]
     @ opt_field "technique" (fun t -> Json.Str t) technique
     @ [ ("golden",
          Json.Obj
            [ ("steps", Json.Int golden.steps);
              ("cycles", Json.Int golden.cycles);
              ("false_positives", Json.Int golden.false_positives);
              ("failing_checks",
               Json.List
                 (List.map (fun uid -> Json.Int uid) golden.failing_checks))
            ]) ]
     @ opt_field "timings" stats_json stats)

let write ~path ~manifest ~trials =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string manifest);
      output_char oc '\n';
      List.iteri
        (fun index t ->
          output_string oc (Json.to_string (trial_record ~index t));
          output_char oc '\n')
        trials)

(* ----- Reading ----- *)

type view = {
  v_index : int;
  v_seed : int;
  v_at_step : int;
  v_outcome : string;
  v_check_uid : int option;
  v_dup_check : bool option;
  v_latency : int option;
  v_steps : int;
  v_cycles : int;
}

exception Malformed of string

let require line name = function
  | Some v -> v
  | None ->
    raise (Malformed (Printf.sprintf "line %d: missing field %S" line name))

let view_of_json ~line j =
  let int_field name = Option.bind (Json.member name j) Json.to_int in
  let need_int name = require line name (int_field name) in
  { v_index = need_int "i";
    v_seed = need_int "seed";
    v_at_step = need_int "at_step";
    v_outcome =
      require line "outcome"
        (Option.bind (Json.member "outcome" j) Json.to_str);
    v_check_uid = int_field "check_uid";
    v_dup_check = Option.bind (Json.member "dup_check" j) Json.to_bool;
    v_latency = int_field "detect_latency";
    v_steps = need_int "steps";
    v_cycles = need_int "cycles" }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let manifest = ref None in
      let views = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           line_no := !line_no + 1;
           if String.trim line <> "" then begin
             let j =
               try Json.parse line
               with Json.Parse_error msg ->
                 raise
                   (Malformed (Printf.sprintf "line %d: %s" !line_no msg))
             in
             match Option.bind (Json.member "type" j) Json.to_str with
             | Some "manifest" ->
               if !manifest = None then manifest := Some j
             | Some "trial" ->
               views := view_of_json ~line:!line_no j :: !views
             | Some _ | None -> ()  (* forward compatibility: skip *)
           end
         done
       with End_of_file -> ());
      (!manifest, List.rev !views))
