(** Campaign trial journal; see the interface for the file layout. *)

open Obs

(* v2 adds the recovery configuration to the manifest
   ([checkpoint_interval]) and per-trial recovery events; v3 adds the
   fault-propagation summary ([taint]) per trial; v4 adds the final
   outcome statistics (counts + Wilson 95% intervals) to the manifest;
   v5 adds the adaptive-stratification section (strata, reweighted
   intervals, equivalent-uniform trials) and a per-trial stratum id.
   Every addition is an optional field, so v1–v4 journals are still
   loadable — and each version is stamped only when its feature was
   actually used, keeping feature-free journals byte-identical to their
   older forms. *)
let schema = "softft.journal.v2"
let schema_v1 = "softft.journal.v1"
let schema_v3 = "softft.journal.v3"
let schema_v4 = "softft.journal.v4"
let schema_v5 = "softft.journal.v5"

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let value_json (v : Ir.Value.t) =
  match v with
  | Ir.Value.Int i ->
    (* int64 payloads may exceed the OCaml int range; keep them lossless
       as decimal strings. *)
    Json.Obj [ ("kind", Json.Str "int"); ("v", Json.Str (Int64.to_string i)) ]
  | Ir.Value.Float f ->
    Json.Obj
      [ ("kind", Json.Str "float"); ("v", Json.Float f);
        ("bits", Json.Str (Int64.to_string (Int64.bits_of_float f))) ]

let fault_kind_name = function
  | Interp.Machine.Register_bit -> "register_bit"
  | Interp.Machine.Branch_target -> "branch_target"

let injection_json (inj : Interp.Machine.injection) =
  Json.Obj
    [ ("kind", Json.Str (fault_kind_name inj.inj_kind));
      ("step", Json.Int inj.inj_step);
      ("reg", Json.Int inj.inj_reg);
      ("bit", Json.Int inj.inj_bit);
      ("before", value_json inj.before);
      ("after", value_json inj.after) ]

let opt_field name f = function
  | None -> []
  | Some v -> [ (name, f v) ]

let recovery_json (r : Interp.Machine.recovery) =
  Json.Obj
    [ ("check_uid", Json.Int r.rec_detection.check_uid);
      ("dup_check", Json.Bool r.rec_detection.dup_check);
      ("detect_step", Json.Int r.rec_detect_step);
      ("checkpoint_step", Json.Int r.rec_checkpoint_step);
      ("replayed_steps", Json.Int r.rec_replayed_steps);
      ("wasted_cycles", Json.Int r.rec_wasted_cycles);
      ("rollback_cycles", Json.Int r.rec_rollback_cycles) ]

(* Propagation events go to the wire as generic {!Obs.Trace} spans, so
   readers aggregate them without knowing the tracer's event vocabulary. *)
let span_of_event (e : Interp.Taint.event) =
  Trace.span ~step:e.ev_step
    (Interp.Taint.kind_name e.ev_kind)
    ~attrs:
      ((if e.ev_uid >= 0 then [ ("uid", Json.Int e.ev_uid) ] else [])
       @ (if e.ev_addr >= 0 then [ ("addr", Json.Int e.ev_addr) ] else []))

let taint_json (s : Interp.Taint.summary) =
  Json.Obj
    ([ ("seeded", Json.Bool s.ts_seeded);
       ("inj_step", Json.Int s.ts_inj_step);
       ("reg_hwm", Json.Int s.ts_reg_hwm);
       ("mem_words", Json.Int s.ts_mem_words) ]
     @ opt_field "first_store" (fun d -> Json.Int d) s.ts_first_store
     @ opt_field "first_branch" (fun d -> Json.Int d) s.ts_first_branch
     @ opt_field "died_at" (fun d -> Json.Int d) s.ts_died_at
     @ opt_field "end_distance" (fun d -> Json.Int d) s.ts_end_distance
     @ [ ("output_tainted", Json.Bool s.ts_output_tainted);
         ("events_total", Json.Int s.ts_events_total);
         ("spans",
          Json.List
            (List.map (fun e -> Trace.to_json (span_of_event e)) s.ts_events))
       ])

let trial_record ~index (t : Campaign.trial) =
  Json.Obj
    ([ ("type", Json.Str "trial");
       ("i", Json.Int index);
       ("seed", Json.Int t.trial_seed);
       ("at_step", Json.Int t.at_step);
       ("outcome", Json.Str (Classify.name t.outcome));
       ("steps", Json.Int t.steps);
       ("cycles", Json.Int t.cycles) ]
     @ opt_field "detect_latency" (fun l -> Json.Int l) t.detect_latency
     @ (match t.detected_by with
        | None -> []
        | Some (d : Interp.Machine.detection) ->
          [ ("check_uid", Json.Int d.check_uid);
            ("dup_check", Json.Bool d.dup_check) ])
     @ opt_field "injection" injection_json t.injection
     (* v2 recovery telemetry; omitted when checkpointing is off, so a
        recovery-free v2 trial line is byte-identical to its v1 form. *)
     @ (if t.checkpoints > 0 then [ ("checkpoints", Json.Int t.checkpoints) ]
        else [])
     @ opt_field "recovery" recovery_json t.recovery
     (* v3 propagation telemetry; absent without [taint_trace], so an
        untraced v3-era trial line is byte-identical to its v2 form. *)
     @ opt_field "taint" taint_json t.taint
     (* v5 stratum tag; absent on the uniform path, so a uniform trial
        line is byte-identical to its v4 form. *)
     @ opt_field "stratum" (fun s -> Json.Int s) t.stratum)

let pool_stats_json (ps : Pool.stats) =
  Json.Obj
    [ ("domains", Json.Int ps.st_domains);
      ("chunk", Json.Int ps.st_chunk);
      ("wall_sec",
       Json.List (Array.to_list (Array.map (fun s -> Json.Float s) ps.st_wall)));
      ("items",
       Json.List (Array.to_list (Array.map (fun n -> Json.Int n) ps.st_items)))
    ]

let stats_json (rs : Campaign.run_stats) =
  Json.Obj
    ([ ("golden_sec", Json.Float rs.golden_sec);
       ("setup_sec", Json.Float rs.setup_sec);
       ("trials_sec", Json.Float rs.trials_sec);
       ("wall_sec", Json.Float rs.wall_sec);
       ("domains", Json.Int rs.domains) ]
     @ opt_field "pool" pool_stats_json rs.pool)

(* Final per-outcome statistics for the v4 manifest: count, estimate, and
   Wilson 95% bounds per observed outcome.  Deterministic — counts come
   from the (scheduling-independent) summary, so the manifest line stays
   byte-identical at any domain count. *)
let final_stats_json ~trials counts =
  Json.Obj
    (List.filter_map
       (fun ((o : Classify.outcome), k) ->
         if k = 0 then None
         else begin
           let iv = Stats.wilson ~k ~n:trials () in
           Some
             ( Classify.name o,
               Json.Obj
                 [ ("n", Json.Int k);
                   ("est", Json.Float iv.Stats.ci_estimate);
                   ("lo", Json.Float iv.Stats.ci_low);
                   ("hi", Json.Float iv.Stats.ci_high) ] )
         end)
       counts)

(* The v5 adaptive section: stratum definitions and tallies, the
   mass-reweighted whole-program intervals, and the equivalent-uniform
   price of the same precision.  Deterministic — everything derives from
   the (scheduling-independent) campaign counts. *)
let adaptive_json (a : Campaign.adaptive) =
  let stratum_json (ss : Campaign.stratum_stats) =
    let s = ss.Campaign.ss_stratum in
    Json.Obj
      [ ("id", Json.Int s.Campaign.st_id);
        ("group", Json.Int s.Campaign.st_group);
        ("group_name", Json.Str s.Campaign.st_group_name);
        ("band", Json.Int s.Campaign.st_band);
        ("lo", Json.Int s.Campaign.st_lo);
        ("hi", Json.Int s.Campaign.st_hi);
        ("mass", Json.Float s.Campaign.st_mass);
        ("prior", Json.Float s.Campaign.st_prior);
        ("trials", Json.Int ss.Campaign.ss_trials);
        ("counts",
         Json.Obj
           (List.filter_map
              (fun ((o : Classify.outcome), k) ->
                if k = 0 then None
                else Some (Classify.name o, Json.Int k))
              ss.Campaign.ss_counts)) ]
  in
  Json.Obj
    [ ("ci_target", Json.Float a.Campaign.ad_ci_target);
      ("trials", Json.Int a.Campaign.ad_trials);
      ("equivalent_uniform_trials", Json.Int a.Campaign.ad_equiv_uniform);
      ("oracle_uniform_trials", Json.Int a.Campaign.ad_oracle_uniform);
      ("mass_empty", Json.Float a.Campaign.ad_mass_empty);
      ("sdc", Stats.to_json a.Campaign.ad_sdc);
      ("outcomes",
       Json.Obj
         (List.filter_map
            (fun ((o : Classify.outcome), iv) ->
              if iv.Stats.ci_estimate = 0.0 && iv.Stats.ci_high = 0.0 then
                None
              else Some (Classify.name o, Stats.to_json iv))
            a.Campaign.ad_outcomes));
      ("strata",
       Json.List (Array.to_list (Array.map stratum_json a.Campaign.ad_strata)))
    ]

let manifest_record ?git ?technique ?plan ?stats ?counts ?adaptive
    ?(checkpoint_interval = 0) ?(taint_trace = false) ~label ~trials ~seed
    ~domains ~hw_window ~fault_kind ~(golden : Campaign.golden) () =
  let git = match git with Some g -> g | None -> git_describe () in
  Json.Obj
    ([ ("type", Json.Str "manifest");
       (* The schema only advances when the feature is actually present:
          v5 needs the adaptive section, v4 final stats, v3 tracing; a
          stats-free untraced manifest stays byte-identical to its v2
          form. *)
       ("schema",
        Json.Str
          (if adaptive <> None then schema_v5
           else if counts <> None then schema_v4
           else if taint_trace then schema_v3
           else schema));
       ("git", Json.Str git);
       ("label", Json.Str label);
       ("trials", Json.Int trials);
       ("seed", Json.Int seed);
       ("domains", Json.Int domains);
       ("hw_window", Json.Int hw_window);
       ("fault_kind", Json.Str fault_kind);
       ("checkpoint_interval", Json.Int checkpoint_interval) ]
     @ (if taint_trace then [ ("taint_trace", Json.Bool true) ] else [])
     @ opt_field "technique" (fun t -> Json.Str t) technique
     @ opt_field "plan" (fun j -> j) plan
     @ [ ("golden",
          Json.Obj
            [ ("steps", Json.Int golden.steps);
              ("cycles", Json.Int golden.cycles);
              ("false_positives", Json.Int golden.false_positives);
              ("failing_checks",
               Json.List
                 (List.map (fun uid -> Json.Int uid) golden.failing_checks))
            ]) ]
     @ opt_field "timings" stats_json stats
     @ opt_field "stats" (final_stats_json ~trials) counts
     @ opt_field "adaptive" adaptive_json adaptive)

let write ?trace ~path ~manifest ~trials () =
  Trace.with_dur trace ~cat:"journal" "write"
    ~args:[ ("trials", Json.Int (List.length trials)) ]
  @@ fun () ->
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string manifest);
      output_char oc '\n';
      List.iteri
        (fun index t ->
          output_string oc (Json.to_string (trial_record ~index t));
          output_char oc '\n')
        trials)

(* ----- Reading ----- *)

(** Recovery telemetry read back from a v2 trial record. *)
type recovery_view = {
  rv_detect_step : int;
  rv_checkpoint_step : int;
  rv_replayed_steps : int;
  rv_wasted_cycles : int;
  rv_rollback_cycles : int;
}

(** Propagation telemetry read back from a v3 trial record. *)
type taint_view = {
  tv_seeded : bool;
  tv_reg_hwm : int;
  tv_mem_words : int;
  tv_first_store : int option;
  tv_first_branch : int option;
  tv_died_at : int option;
  tv_end_distance : int option;
  tv_output_tainted : bool;
  tv_events_total : int;
  tv_spans : Trace.span list;
}

type view = {
  v_index : int;
  v_seed : int;
  v_at_step : int;
  v_outcome : string;
  v_check_uid : int option;
  v_dup_check : bool option;
  v_latency : int option;
  v_steps : int;
  v_cycles : int;
  v_checkpoints : int;
  v_recovery : recovery_view option;
  v_taint : taint_view option;
  v_inj_reg : int option;
  v_stratum : int option;
}

exception Malformed of string

let require line name = function
  | Some v -> v
  | None ->
    raise (Malformed (Printf.sprintf "line %d: missing field %S" line name))

let recovery_view_of_json ~line j =
  let need_int name =
    require line name (Option.bind (Json.member name j) Json.to_int)
  in
  { rv_detect_step = need_int "detect_step";
    rv_checkpoint_step = need_int "checkpoint_step";
    rv_replayed_steps = need_int "replayed_steps";
    rv_wasted_cycles = need_int "wasted_cycles";
    rv_rollback_cycles = need_int "rollback_cycles" }

let taint_view_of_json ~line j =
  let int_field name = Option.bind (Json.member name j) Json.to_int in
  let bool_field name = Option.bind (Json.member name j) Json.to_bool in
  { tv_seeded = require line "seeded" (bool_field "seeded");
    tv_reg_hwm = require line "reg_hwm" (int_field "reg_hwm");
    tv_mem_words = require line "mem_words" (int_field "mem_words");
    tv_first_store = int_field "first_store";
    tv_first_branch = int_field "first_branch";
    tv_died_at = int_field "died_at";
    tv_end_distance = int_field "end_distance";
    tv_output_tainted =
      require line "output_tainted" (bool_field "output_tainted");
    tv_events_total = Option.value ~default:0 (int_field "events_total");
    tv_spans =
      (match Json.member "spans" j with
       | Some (Json.List items) -> List.filter_map Trace.of_json items
       | Some _ | None -> []) }

let view_of_json ~line j =
  let int_field name = Option.bind (Json.member name j) Json.to_int in
  let need_int name = require line name (int_field name) in
  { v_index = need_int "i";
    v_seed = need_int "seed";
    v_at_step = need_int "at_step";
    v_outcome =
      require line "outcome"
        (Option.bind (Json.member "outcome" j) Json.to_str);
    v_check_uid = int_field "check_uid";
    v_dup_check = Option.bind (Json.member "dup_check" j) Json.to_bool;
    v_latency = int_field "detect_latency";
    v_steps = need_int "steps";
    v_cycles = need_int "cycles";
    (* v2 fields, absent from v1 journals and recovery-free trials. *)
    v_checkpoints = Option.value ~default:0 (int_field "checkpoints");
    v_recovery =
      Option.map (recovery_view_of_json ~line) (Json.member "recovery" j);
    (* v3 field, absent from v1/v2 journals and untraced campaigns. *)
    v_taint =
      Option.map (taint_view_of_json ~line) (Json.member "taint" j);
    (* The injected register, from the nested injection record; absent
       when the trial's fault window closed before any injection. *)
    v_inj_reg =
      Option.bind (Json.member "injection" j) (fun inj ->
          Option.bind (Json.member "reg" inj) Json.to_int);
    (* v5 field, absent from older journals and uniform campaigns. *)
    v_stratum = int_field "stratum" }

(* Streaming reader: one line is parsed, folded, and dropped before the
   next is read, so a multi-gigabyte journal aggregates in constant memory
   — span-heavy v3 journals made the load-everything approach untenable. *)
let fold path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let manifest = ref None in
      let acc = ref init in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           line_no := !line_no + 1;
           if String.trim line <> "" then begin
             let j =
               try Json.parse line
               with Json.Parse_error msg ->
                 raise
                   (Malformed (Printf.sprintf "line %d: %s" !line_no msg))
             in
             match Option.bind (Json.member "type" j) Json.to_str with
             | Some "manifest" ->
               if !manifest = None then manifest := Some j
             | Some "trial" ->
               acc := f !acc (view_of_json ~line:!line_no j)
             | Some _ | None -> ()  (* forward compatibility: skip *)
           end
         done
       with End_of_file -> ());
      match !manifest with
      | None ->
        (* An empty or manifest-less file is a broken journal, not an empty
           campaign: surface it instead of aggregating nothing. *)
        raise (Malformed (Printf.sprintf "no manifest in %s" path))
      | Some m -> (m, !acc))

let load path =
  let manifest, rev = fold path ~init:[] ~f:(fun acc v -> v :: acc) in
  (manifest, List.rev rev)
