(** Minimal domain worker pool for embarrassingly parallel index spaces.

    Fans an index space [0, n) out over OCaml 5 domains in contiguous
    chunks.  Each index is computed exactly once and lands at its own slot
    of the output array, so the result is independent of scheduling;
    determinism is the caller's seed discipline (derive all per-index seeds
    before dispatch) plus that placement guarantee. *)

(** Domains the hardware comfortably supports, always at least 1. *)
val recommended_domains : unit -> int

(** What one {!map} call actually did — the observability record that
    makes parallel-overhead regressions diagnosable (DESIGN.md §8):
    per-worker wall time and work share, plus the chunking parameter.
    Worker 0 is the calling domain. *)
type stats = {
  st_domains : int;        (** workers used, after clamping to [n] *)
  st_chunk : int;          (** indices claimed per atomic fetch-and-add *)
  st_wall : float array;   (** per-worker busy wall seconds *)
  st_items : int array;    (** per-worker indices executed *)
}

(** [map ~domains f n] is [\[| f 0; f 1; ...; f (n-1) |\]], computed by
    [domains] workers.  [f] must be safe to call from any domain and must
    not depend on call order.  [domains <= 1] (or [n <= 1]) degenerates to
    a plain in-order serial loop with no domain spawned.  [chunk] overrides
    the work-dealing granularity (default: scaled to [n] and [domains]).
    If [f] raises, the other workers cooperatively stop at their next chunk
    boundary (no further chunks are claimed), every domain is joined, and
    one of the raised exceptions is re-raised — the call neither hangs nor
    silently drains the remaining index space.  When [stats] is given it
    receives the run's {!stats}
    (also on the degenerate serial path); timing is observation-only and
    does not affect the output.  [progress] is called once per completed
    index with the global completed count (a monotone [1..n] sequence); it
    runs on whichever worker domain finished the index, so it must be
    thread-safe, and — like [stats] — never affects the output. *)
val map :
  ?chunk:int ->
  ?stats:stats option ref ->
  ?progress:(int -> unit) ->
  domains:int ->
  (int -> 'a) ->
  int ->
  'a array
