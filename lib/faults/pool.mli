(** Minimal domain worker pool for embarrassingly parallel index spaces.

    Fans an index space [0, n) out over OCaml 5 domains in contiguous
    chunks.  Each index is computed exactly once and lands at its own slot
    of the output array, so the result is independent of scheduling;
    determinism is the caller's seed discipline (derive all per-index seeds
    before dispatch) plus that placement guarantee. *)

(** Domains the hardware comfortably supports, always at least 1. *)
val recommended_domains : unit -> int

(** What one {!map} call actually did — the observability record that
    makes parallel-overhead regressions diagnosable (DESIGN.md §8):
    per-worker wall time and work share, plus the chunking parameter.
    Worker 0 is the calling domain. *)
type stats = {
  st_domains : int;        (** workers used, after clamping to [n] *)
  st_chunk : int;          (** fixed chunk size, or the first guided
                               claim's size under guided scheduling *)
  st_wall : float array;   (** per-worker busy wall seconds *)
  st_items : int array;    (** per-worker indices executed *)
}

(** Per-worker GC tuning for {!map}: OCaml 5 minor collections are
    stop-the-world across *all* domains, so allocation-heavy workers drag
    each other into frequent global pauses at the default 256k-word minor
    heap.  A larger per-domain minor heap and a laxer space overhead trade
    memory for fewer global syncs.  Settings are applied inside each
    worker and restored on the calling domain afterwards. *)
type gc_tuning = {
  gc_minor_heap_words : int;   (** per-domain minor heap size, in words *)
  gc_space_overhead : int;     (** major-GC space/work trade-off, percent *)
}

(** The tuning fault campaigns use: a 2M-word (16 MiB) minor heap per
    worker and double the default space overhead. *)
val campaign_gc_tuning : gc_tuning

(** [map ~domains f n] is [\[| f 0; f 1; ...; f (n-1) |\]], computed by
    [domains] workers.  [f] must be safe to call from any domain and must
    not depend on call order.  [domains <= 1] (or [n <= 1]) degenerates to
    a plain in-order serial loop with no domain spawned.  By default
    workers claim guided (decreasing-size) chunks — large claims early to
    amortize the atomic, single items at the tail so a straggler bounds
    the finish-line imbalance by one index; [chunk] forces fixed-size
    chunks instead.  [gc] applies a per-domain {!gc_tuning} for the
    duration of the call (observation-free: the output never depends on
    it).  If [f] raises, the other workers cooperatively stop at their
    next chunk boundary (no further chunks are claimed), every domain is
    joined, and one of the raised exceptions is re-raised — the call
    neither hangs nor silently drains the remaining index space.  When
    [stats] is given it receives the run's {!stats}
    (also on the degenerate serial path); timing is observation-only and
    does not affect the output.  [progress] is called once per completed
    index with the global completed count (a monotone [1..n] sequence); it
    runs on whichever worker domain finished the index, so it must be
    thread-safe, and — like [stats] — never affects the output.  [trace]
    attaches a flight recorder: one [pool/worker] duration span per
    worker lifetime and one [pool/chunk] span per chunk claim, each on
    the worker's track — the gaps between chunk spans on a track are the
    pool's idle time.  Also observation-only. *)
val map :
  ?chunk:int ->
  ?gc:gc_tuning ->
  ?stats:stats option ref ->
  ?progress:(int -> unit) ->
  ?trace:Obs.Trace.recorder ->
  domains:int ->
  (int -> 'a) ->
  int ->
  'a array
