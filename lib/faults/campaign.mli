(** Statistical fault injection campaigns (paper §IV).

    A campaign takes a *subject* — a program variant plus the recipe for
    materializing its input state and reading back its output — and runs N
    independent trials.  Each trial injects one fault (a random register
    bit flip, or a branch-target corruption) at a random dynamic
    instruction, then classifies the run against the fault-free golden
    output. *)

(** Everything needed for one execution: a fresh memory image, the entry
    arguments, and how to read the output back as a flat signal for
    fidelity evaluation.  Built per run so trials never observe each
    other's stores. *)
type run_state = {
  mem : Interp.Memory.t;
  args : Ir.Value.t list;
  read_output : Ir.Value.t option -> float array;
}

type subject = {
  label : string;
  prog : Ir.Prog.t;
  entry : string;
  fresh_state : unit -> run_state;
  metric : Fidelity.Metric.spec;
}

type golden = {
  output : float array;
  steps : int;
  cycles : int;
  false_positives : int;      (** dynamic value-check failures, no fault *)
  failing_checks : int list;  (** static uids of those checks *)
}

exception Golden_run_failed of string * string

(** Fault-free reference execution; raises {!Golden_run_failed} if the
    subject does not run to completion.  [profile] attaches an execution
    profile ({!Interp.Profile}) to the run — observation-only.
    [checkpoint_interval] (default 0: off) enables rollback checkpointing:
    output and step count are unchanged, but the cycle count then includes
    the fault-free checkpoint overhead. *)
val golden_run :
  ?profile:Interp.Profile.t -> ?checkpoint_interval:int -> subject -> golden

type trial = {
  trial_seed : int;
  at_step : int;
  outcome : Classify.outcome;
  injection : Interp.Machine.injection option;
  detected_by : Interp.Machine.detection option;
      (** which software check fired, for SWDetect outcomes *)
  detect_latency : int option;
      (** dynamic instructions between the fault and its detection, for
          SWDetect/HWDetect outcomes — the window a recovery scheme must
          cover (paper §IV-D) *)
  steps : int;    (** dynamic instructions the faulted run executed,
                      including any post-rollback replay *)
  cycles : int;   (** simulated cycles of the faulted run, including
                      checkpoint, rollback and replay overhead *)
  recovery : Interp.Machine.recovery option;
      (** the checkpoint rollback the trial performed, if any *)
  checkpoints : int;   (** checkpoints the trial's run took *)
  taint : Interp.Taint.summary option;
      (** fault-propagation summary, when the campaign ran with
          [taint_trace] — [None] otherwise *)
  stratum : int option;
      (** the stratum this trial sampled ({!run_adaptive}); [None] on the
          uniform path *)
}

(** Bit-exact trial (list) equality, the parallel-determinism contract's
    notion of "identical".  Unlike polymorphic [=], injected float
    payloads compare by their register bits, so NaN equals NaN. *)
val trial_equal : trial -> trial -> bool
val trials_equal : trial list -> trial list -> bool

type summary = {
  subject_label : string;
  trials : int;
  counts : (Classify.outcome * int) list;
  golden_info : golden;
}

val count : summary -> Classify.outcome -> int

(** Share of trials with this outcome, in percent; 0 for an empty campaign
    (never NaN). *)
val percent : summary -> Classify.outcome -> float

val percent_many : summary -> Classify.outcome list -> float

(** One fault-injection trial; exposed for custom drivers (the bench
    harness and the image-pipeline example).  [compiled] lets a driver
    lower the subject program once and reuse it across trials; when
    omitted the per-program compile cache is consulted. *)
val run_trial :
  ?fault_kind:Interp.Machine.fault_kind ->
  ?compiled:Interp.Compiled.t ->
  ?profile:Interp.Profile.t ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  subject ->
  golden:golden ->
  disabled:(int, unit) Hashtbl.t ->
  hw_window:int ->
  seed:int ->
  trial

(** [derive_seeds ~seed ~trials] is every trial's seed, drawn from the
    master generator up front — the campaign determinism contract: seed
    assignment depends only on ([seed], trial index), never on worker
    scheduling.  Matches the sequence the historical serial loop drew one
    trial at a time, except that a colliding draw (the 30-bit draws can
    repeat across indices) is deterministically bumped into a higher band
    until unique — every returned seed is distinct, so no two trials are
    silently the same trial. *)
val derive_seeds : seed:int -> trials:int -> int array

(** Wall-clock accounting of one {!run}; observation-only. *)
type run_stats = {
  golden_sec : float;    (** the golden run alone *)
  setup_sec : float;     (** seed derivation, check disabling, compile
                             cache and the fork-snapshot capture pass *)
  trials_sec : float;    (** the parallel trial phase *)
  wall_sec : float;      (** whole campaign, entry to exit *)
  domains : int;         (** worker domains the campaign was asked to use *)
  pool : Pool.stats option;  (** per-domain breakdown of the trial phase *)
}

(** Run a whole campaign: one golden run plus [trials] injections, all
    deterministic in [seed].  [fault_kind] selects register bit flips
    (default) or branch-target corruptions.  [domains] (default 1: serial)
    fans trials out over OCaml 5 domains; summaries and trial lists are
    bit-identical for any worker count.  [checkpoint_interval] (default 0:
    off) enables checkpoint/rollback recovery in the golden run and every
    trial (DESIGN.md §9); it participates in the same determinism contract
    — recovery decisions depend only on the trial's own execution, never on
    scheduling.

    Observability hooks, all observation-only (any combination leaves
    results bit-identical): [profile] accumulates every trial's execution
    profile (merged in trial order); [on_trial] is called with
    [(index, trial)] for each trial in deterministic seed order after the
    parallel phase — the journal emission point; [stats_out] receives the
    campaign's {!run_stats}; [warehouse] is a filing sink invoked once,
    after every other hook, with the finished summary, the full trial
    list and the run's stats — the attachment point for a content-
    addressed run store ([Warehouse.Store.campaign_sink]), so sweeps file
    each subject's results the moment that subject completes; [progress]
    receives every trial's outcome as
    it completes, from whichever worker domain ran it (the {!Progress}
    heartbeat — its final snapshot fires before [run] returns); [trace]
    attaches a flight recorder ({!Obs.Trace.recorder}) that records one
    duration span per campaign phase (golden run, fork capture, trial
    phase) on track 0 plus {!Pool.map}'s per-worker/per-chunk spans —
    render the timeline with {!Obs.Trace.to_chrome}.

    [taint_trace] (default false) attaches the fault-propagation tracer
    ({!Interp.Taint}) to every trial: outcomes, step and cycle counts stay
    bit-identical, each trial just additionally carries [Some] propagation
    summary.  The golden run stays untraced.

    [fork] (default true) enables golden-prefix snapshot forking
    (DESIGN.md §12): one extra fault-free pass captures resumable machine
    snapshots at a fixed step stride, and every trial then starts from the
    newest snapshot strictly before its injection step instead of
    re-executing the fault-free prefix.  Trials are bit-identical with
    forking on or off — outcomes, steps, cycles, everything a {!trial}
    records.  [fork_snapshots] (default 32) sets how many snapshots the
    capture pass aims for (stride = golden steps / [fork_snapshots]);
    [fork_stride] overrides the stride directly.  A stride larger than the
    golden run captures nothing and the campaign degrades to from-scratch
    trials; likewise when the capture pass fails to replay the golden run
    exactly, or when [profile] is set (a profiled trial must observe its
    whole execution, not just the post-fork suffix). *)
val run :
  ?hw_window:int ->
  ?seed:int ->
  ?fault_kind:Interp.Machine.fault_kind ->
  ?domains:int ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  ?fork:bool ->
  ?fork_snapshots:int ->
  ?fork_stride:int ->
  ?profile:Interp.Profile.t ->
  ?on_trial:(int -> trial -> unit) ->
  ?stats_out:run_stats option ref ->
  ?warehouse:(summary -> trial list -> run_stats option -> unit) ->
  ?progress:Progress.t ->
  ?trace:Obs.Trace.recorder ->
  subject ->
  trials:int ->
  summary * trial list

(** {1 Adaptive stratified campaigns (DESIGN.md §14)} *)

(** One stratum of the (injection step × ring slot) sampling space: the
    ring slots whose register belongs to protection group [st_group],
    restricted to injection steps in the residency band
    [[st_lo, st_hi)].  [st_mass] is the probability a single *uniform*
    fault draw lands in this stratum — the reweighting factor that makes
    stratified estimates unbiased; [st_prior] the static SDC-proneness
    guess that seeds the variance estimate before any trial has run. *)
type stratum = {
  st_id : int;
  st_group : int;
  st_group_name : string;
  st_band : int;
  st_lo : int;      (** first injection step of the band (inclusive) *)
  st_hi : int;      (** one past the last injection step (exclusive) *)
  st_mass : float;
  st_prior : float;
}

(** The full partition: the register→group map, the measured cumulative
    ring-occupancy weights ({!Interp.Machine.ring_obs}), the injection
    window, the strata, and the exactly known share of empty-ring steps
    (a uniform draw there injects nothing — Masked by construction). *)
type strata_plan = {
  sp_groups : int array;
  sp_cum : float array array;
  sp_window : int;
  sp_strata : stratum array;
  sp_mass_empty : float;
}

(** [build_strata ~groups ~group_names ~priors ~bands ~window cum]
    partitions the injection space into (group × residency band) strata
    from the measured cumulative weights.  Pure; exposed for property
    tests.  Invariant: Σ [st_mass] + [sp_mass_empty] = 1 (up to float
    rounding), zero-mass strata are dropped, ids are dense from 0. *)
val build_strata :
  groups:int array ->
  group_names:string array ->
  priors:float array ->
  bands:int ->
  window:int ->
  float array array ->
  strata_plan

(** Inverse-CDF draw of an injection step inside a stratum from
    [u ∈ [0,1)]; pure, exposed for property tests.  Returned steps always
    lie in [[st_lo, st_hi)] and carry positive group weight. *)
val sample_at_step : strata_plan -> stratum -> u:float -> int

(** One stratum's final tally. *)
type stratum_stats = {
  ss_stratum : stratum;
  ss_trials : int;
  ss_counts : (Classify.outcome * int) list;
}

(** Everything {!run_adaptive} knows beyond a uniform summary: the target,
    the per-stratum tallies, the mass-reweighted whole-program intervals
    (per outcome and for the SDC aggregate), and the uniform price of the
    same precision, from two angles:

    - [ad_equiv_uniform] — the savings headline: the trials a *fixed-size*
      uniform campaign must plan to guarantee the target half width.
      Fixed-size is the right baseline because stopping on an interim
      interval is exactly what this scheduler adds; without it the design
      must assume worst-case variance p = 0.5 (the repo's standing
      margin-of-error convention).
    - [ad_oracle_uniform] — the honest lower bound reported next to the
      headline: uniform trials that would match the *achieved* width at
      the *observed* rate, i.e. a sequential uniform campaign with oracle
      foresight.  Near-zero rates make this small (the Wilson interval at
      k = 0 tightens like 1/n), so adaptive campaigns chiefly buy
      guaranteed precision and per-stratum rates, not oracle-beating
      totals, on heavily protected subjects. *)
type adaptive = {
  ad_ci_target : float;
  ad_strata : stratum_stats array;
  ad_mass_empty : float;
  ad_trials : int;
  ad_outcomes : (Classify.outcome * Obs.Stats.interval) list;
  ad_sdc : Obs.Stats.interval;
  ad_equiv_uniform : int;
  ad_oracle_uniform : int;
}

(** Adaptive stratified campaign: Neyman-style variance-proportional
    allocation over protection-group × residency-band strata with
    per-stratum early stopping on the Wilson interval of the SDC rate.
    Stops when the mass-reweighted whole-program SDC half width reaches
    [ci], or at [max_trials].  Register-bit faults only.

    Deterministic in ([seed], subject, [groups]): per-stratum seed
    streams are split from the master up front, allocation depends only
    on deterministic counts, and batches are built serially — any
    [~domains] produces bit-identical trials, like {!run}.

    [groups] maps program register codes to protection groups (from
    [Analysis.Strata], but any partition works); [group_names] labels
    them; [priors] gives each group's static SDC-proneness guess.
    [bands] (default 3) residency bands per group; [round0] (default 32)
    pilot trials per stratum.  [progress_for] builds the heartbeat once
    the stratum count is known (create it with [~strata:nstrata] to get
    per-stratum counters); other hooks are as in {!run}, all
    observation-only — the [warehouse] filing sink additionally receives
    the {!adaptive} result so a v5 run files with its strata intact. *)
val run_adaptive :
  ?hw_window:int ->
  ?seed:int ->
  ?domains:int ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  ?fork:bool ->
  ?fork_snapshots:int ->
  ?fork_stride:int ->
  ?on_trial:(int -> trial -> unit) ->
  ?stats_out:run_stats option ref ->
  ?warehouse:(summary -> trial list -> run_stats option -> adaptive -> unit) ->
  ?progress_for:(nstrata:int -> total:int -> Progress.t) ->
  ?trace:Obs.Trace.recorder ->
  ?bands:int ->
  ?max_trials:int ->
  ?round0:int ->
  groups:int array ->
  group_names:string array ->
  priors:float array ->
  ci:float ->
  subject ->
  summary * trial list * adaptive

(** Mean of per-subject percentages, the paper's cross-benchmark average. *)
val mean_percent : summary list -> Classify.outcome list -> float
