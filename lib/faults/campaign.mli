(** Statistical fault injection campaigns (paper §IV).

    A campaign takes a *subject* — a program variant plus the recipe for
    materializing its input state and reading back its output — and runs N
    independent trials.  Each trial injects one fault (a random register
    bit flip, or a branch-target corruption) at a random dynamic
    instruction, then classifies the run against the fault-free golden
    output. *)

(** Everything needed for one execution: a fresh memory image, the entry
    arguments, and how to read the output back as a flat signal for
    fidelity evaluation.  Built per run so trials never observe each
    other's stores. *)
type run_state = {
  mem : Interp.Memory.t;
  args : Ir.Value.t list;
  read_output : Ir.Value.t option -> float array;
}

type subject = {
  label : string;
  prog : Ir.Prog.t;
  entry : string;
  fresh_state : unit -> run_state;
  metric : Fidelity.Metric.spec;
}

type golden = {
  output : float array;
  steps : int;
  cycles : int;
  false_positives : int;      (** dynamic value-check failures, no fault *)
  failing_checks : int list;  (** static uids of those checks *)
}

exception Golden_run_failed of string * string

(** Fault-free reference execution; raises {!Golden_run_failed} if the
    subject does not run to completion.  [profile] attaches an execution
    profile ({!Interp.Profile}) to the run — observation-only.
    [checkpoint_interval] (default 0: off) enables rollback checkpointing:
    output and step count are unchanged, but the cycle count then includes
    the fault-free checkpoint overhead. *)
val golden_run :
  ?profile:Interp.Profile.t -> ?checkpoint_interval:int -> subject -> golden

type trial = {
  trial_seed : int;
  at_step : int;
  outcome : Classify.outcome;
  injection : Interp.Machine.injection option;
  detected_by : Interp.Machine.detection option;
      (** which software check fired, for SWDetect outcomes *)
  detect_latency : int option;
      (** dynamic instructions between the fault and its detection, for
          SWDetect/HWDetect outcomes — the window a recovery scheme must
          cover (paper §IV-D) *)
  steps : int;    (** dynamic instructions the faulted run executed,
                      including any post-rollback replay *)
  cycles : int;   (** simulated cycles of the faulted run, including
                      checkpoint, rollback and replay overhead *)
  recovery : Interp.Machine.recovery option;
      (** the checkpoint rollback the trial performed, if any *)
  checkpoints : int;   (** checkpoints the trial's run took *)
  taint : Interp.Taint.summary option;
      (** fault-propagation summary, when the campaign ran with
          [taint_trace] — [None] otherwise *)
}

(** Bit-exact trial (list) equality, the parallel-determinism contract's
    notion of "identical".  Unlike polymorphic [=], injected float
    payloads compare by their register bits, so NaN equals NaN. *)
val trial_equal : trial -> trial -> bool
val trials_equal : trial list -> trial list -> bool

type summary = {
  subject_label : string;
  trials : int;
  counts : (Classify.outcome * int) list;
  golden_info : golden;
}

val count : summary -> Classify.outcome -> int

(** Share of trials with this outcome, in percent; 0 for an empty campaign
    (never NaN). *)
val percent : summary -> Classify.outcome -> float

val percent_many : summary -> Classify.outcome list -> float

(** One fault-injection trial; exposed for custom drivers (the bench
    harness and the image-pipeline example).  [compiled] lets a driver
    lower the subject program once and reuse it across trials; when
    omitted the per-program compile cache is consulted. *)
val run_trial :
  ?fault_kind:Interp.Machine.fault_kind ->
  ?compiled:Interp.Compiled.t ->
  ?profile:Interp.Profile.t ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  subject ->
  golden:golden ->
  disabled:(int, unit) Hashtbl.t ->
  hw_window:int ->
  seed:int ->
  trial

(** [derive_seeds ~seed ~trials] is every trial's seed, drawn from the
    master generator up front — the campaign determinism contract: seed
    assignment depends only on ([seed], trial index), never on worker
    scheduling.  Matches the sequence the historical serial loop drew one
    trial at a time, except that a colliding draw (the 30-bit draws can
    repeat across indices) is deterministically bumped into a higher band
    until unique — every returned seed is distinct, so no two trials are
    silently the same trial. *)
val derive_seeds : seed:int -> trials:int -> int array

(** Wall-clock accounting of one {!run}; observation-only. *)
type run_stats = {
  golden_sec : float;    (** the golden run alone *)
  setup_sec : float;     (** seed derivation, check disabling, compile
                             cache and the fork-snapshot capture pass *)
  trials_sec : float;    (** the parallel trial phase *)
  wall_sec : float;      (** whole campaign, entry to exit *)
  domains : int;         (** worker domains the campaign was asked to use *)
  pool : Pool.stats option;  (** per-domain breakdown of the trial phase *)
}

(** Run a whole campaign: one golden run plus [trials] injections, all
    deterministic in [seed].  [fault_kind] selects register bit flips
    (default) or branch-target corruptions.  [domains] (default 1: serial)
    fans trials out over OCaml 5 domains; summaries and trial lists are
    bit-identical for any worker count.  [checkpoint_interval] (default 0:
    off) enables checkpoint/rollback recovery in the golden run and every
    trial (DESIGN.md §9); it participates in the same determinism contract
    — recovery decisions depend only on the trial's own execution, never on
    scheduling.

    Observability hooks, all observation-only (any combination leaves
    results bit-identical): [profile] accumulates every trial's execution
    profile (merged in trial order); [on_trial] is called with
    [(index, trial)] for each trial in deterministic seed order after the
    parallel phase — the journal emission point; [stats_out] receives the
    campaign's {!run_stats}; [progress] receives every trial's outcome as
    it completes, from whichever worker domain ran it (the {!Progress}
    heartbeat — its final snapshot fires before [run] returns); [trace]
    attaches a flight recorder ({!Obs.Trace.recorder}) that records one
    duration span per campaign phase (golden run, fork capture, trial
    phase) on track 0 plus {!Pool.map}'s per-worker/per-chunk spans —
    render the timeline with {!Obs.Trace.to_chrome}.

    [taint_trace] (default false) attaches the fault-propagation tracer
    ({!Interp.Taint}) to every trial: outcomes, step and cycle counts stay
    bit-identical, each trial just additionally carries [Some] propagation
    summary.  The golden run stays untraced.

    [fork] (default true) enables golden-prefix snapshot forking
    (DESIGN.md §12): one extra fault-free pass captures resumable machine
    snapshots at a fixed step stride, and every trial then starts from the
    newest snapshot strictly before its injection step instead of
    re-executing the fault-free prefix.  Trials are bit-identical with
    forking on or off — outcomes, steps, cycles, everything a {!trial}
    records.  [fork_snapshots] (default 32) sets how many snapshots the
    capture pass aims for (stride = golden steps / [fork_snapshots]);
    [fork_stride] overrides the stride directly.  A stride larger than the
    golden run captures nothing and the campaign degrades to from-scratch
    trials; likewise when the capture pass fails to replay the golden run
    exactly, or when [profile] is set (a profiled trial must observe its
    whole execution, not just the post-fork suffix). *)
val run :
  ?hw_window:int ->
  ?seed:int ->
  ?fault_kind:Interp.Machine.fault_kind ->
  ?domains:int ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  ?fork:bool ->
  ?fork_snapshots:int ->
  ?fork_stride:int ->
  ?profile:Interp.Profile.t ->
  ?on_trial:(int -> trial -> unit) ->
  ?stats_out:run_stats option ref ->
  ?progress:Progress.t ->
  ?trace:Obs.Trace.recorder ->
  subject ->
  trials:int ->
  summary * trial list

(** Mean of per-subject percentages, the paper's cross-benchmark average. *)
val mean_percent : summary list -> Classify.outcome list -> float
