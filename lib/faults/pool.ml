(** Minimal domain worker pool for embarrassingly parallel index spaces.

    Fault-injection campaigns are N independent trials (DESIGN.md §4): one
    golden run, then N seeded single-fault runs that never observe each
    other's state.  This module fans an index space [0, n) out over OCaml 5
    domains.  Each index is computed exactly once and its result lands at
    its own slot of the output array, so the output is independent of how
    the scheduler interleaves workers — determinism is the caller's seed
    discipline (derive all per-index seeds *before* dispatch) plus this
    placement guarantee. *)

(** Domains the hardware comfortably supports, always at least 1. *)
let recommended_domains () = max 1 (Domain.recommended_domain_count ())

(* Contiguous chunks keep per-index dispatch overhead (one atomic
   fetch-and-add per chunk) negligible against trial runtimes while still
   load-balancing runs whose lengths vary by outcome (an early SWDetect
   trial is much shorter than a run to completion). *)
let default_chunk ~domains n = max 1 (min 32 (n / (domains * 8)))

type stats = {
  st_domains : int;
  st_chunk : int;
  st_wall : float array;
  st_items : int array;
}

let put_stats out stats = match out with None -> () | Some r -> r := Some stats

(** [map ~domains f n] is [\[| f 0; f 1; ...; f (n-1) |\]], computed by
    [domains] workers.  [f] must be safe to call from any domain and must
    not depend on call order.  [domains <= 1] (or [n <= 1]) degenerates to
    a plain in-order serial loop with no domain spawned.  [stats] receives
    the per-worker timing/work record — observation only, the output array
    never depends on it. *)
let map ?chunk ?stats ?progress ~domains f n =
  (* Global completed-trial counter behind [?progress]; shared across
     workers so the hook sees one monotone 1..n sequence regardless of how
     chunks interleave. *)
  let completed = Atomic.make 0 in
  let notify () =
    match progress with
    | None -> ()
    | Some p -> p (Atomic.fetch_and_add completed 1 + 1)
  in
  if n = 0 then begin
    put_stats stats
      { st_domains = 0; st_chunk = 0; st_wall = [||]; st_items = [||] };
    [||]
  end
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then begin
      let t0 = Unix.gettimeofday () in
      let first = f 0 in
      let out = Array.make n first in
      notify ();
      for i = 1 to n - 1 do
        out.(i) <- f i;
        notify ()
      done;
      put_stats stats
        { st_domains = 1; st_chunk = n;
          st_wall = [| Unix.gettimeofday () -. t0 |]; st_items = [| n |] };
      out
    end
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> default_chunk ~domains n
      in
      let out = Array.make n None in
      let next = Atomic.make 0 in
      (* Cooperative cancellation: the first worker whose [f] raises sets
         this, and every other worker stops at its next chunk boundary
         instead of pointlessly draining the rest of the index space before
         the exception can propagate. *)
      let cancelled = Atomic.make false in
      let wall = Array.make domains 0.0 in
      let items = Array.make domains 0 in
      let worker wid () =
        let t0 = Unix.gettimeofday () in
        let done_ = ref 0 in
        Fun.protect
          ~finally:(fun () ->
            (* Each worker writes only its own slots; the joins below
               publish them to the caller (also on the exception path, so
               a cancelled run still reports what each worker did). *)
            wall.(wid) <- Unix.gettimeofday () -. t0;
            items.(wid) <- !done_)
          (fun () ->
            try
              let continue_ = ref true in
              while !continue_ do
                if Atomic.get cancelled then continue_ := false
                else begin
                  let start = Atomic.fetch_and_add next chunk in
                  if start >= n then continue_ := false
                  else
                    for i = start to min (start + chunk) n - 1 do
                      out.(i) <- Some (f i);
                      done_ := !done_ + 1;
                      notify ()
                    done
                end
              done
            with e ->
              Atomic.set cancelled true;
              raise e)
      in
      let helpers =
        Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      let main_exn = (try worker 0 (); None with e -> Some e) in
      (* Join everyone before re-raising so no domain outlives the call. *)
      let helper_exn =
        Array.fold_left
          (fun acc d ->
            match (try Domain.join d; None with e -> Some e) with
            | Some _ as e when acc = None -> e
            | _ -> acc)
          None helpers
      in
      (match main_exn, helper_exn with
       | Some e, _ | None, Some e -> raise e
       | None, None -> ());
      put_stats stats
        { st_domains = domains; st_chunk = chunk; st_wall = wall;
          st_items = items };
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        out
    end
  end
