(** Minimal domain worker pool for embarrassingly parallel index spaces.

    Fault-injection campaigns are N independent trials (DESIGN.md §4): one
    golden run, then N seeded single-fault runs that never observe each
    other's state.  This module fans an index space [0, n) out over OCaml 5
    domains.  Each index is computed exactly once and its result lands at
    its own slot of the output array, so the output is independent of how
    the scheduler interleaves workers — determinism is the caller's seed
    discipline (derive all per-index seeds *before* dispatch) plus this
    placement guarantee. *)

(** Domains the hardware comfortably supports, always at least 1. *)
let recommended_domains () = max 1 (Domain.recommended_domain_count ())

(* Ceiling on a guided-self-scheduling claim; with claims decaying toward
   single items at the tail, the cap only shapes the very first claims of
   large index spaces. *)
let guided_cap = 64

(* Size of the next guided claim when [cur] indices are already taken:
   half an even share of the remaining work.  Early claims are large
   (amortizing the atomic), tail claims decay to one item, so a straggler
   (one jpegdec-length trial) bounds the finish-line imbalance by a single
   item instead of a whole fixed-size chunk. *)
let guided_size ~domains ~n cur =
  max 1 (min guided_cap ((n - cur + (2 * domains) - 1) / (2 * domains)))

type stats = {
  st_domains : int;
  st_chunk : int;
  st_wall : float array;
  st_items : int array;
}

let put_stats out stats = match out with None -> () | Some r -> r := Some stats

(** Per-worker GC tuning ({!map}'s [gc]): OCaml 5 minor collections are
    stop-the-world across *all* domains, so campaign workers that allocate
    boxed values every step drag each other into frequent global pauses at
    the 256k-word default minor heap.  A larger per-domain minor heap and a
    laxer space overhead trade memory for fewer global syncs — the main
    multi-domain scaling lever for allocation-heavy trial workers. *)
type gc_tuning = {
  gc_minor_heap_words : int;   (** per-domain minor heap size, in words *)
  gc_space_overhead : int;     (** major-GC space/work trade-off, percent *)
}

(** The tuning fault campaigns use: a 16 MiB (2M-word) minor heap per
    worker and double the default space overhead. *)
let campaign_gc_tuning =
  { gc_minor_heap_words = 1 lsl 21; gc_space_overhead = 200 }

(* Run [f] under a tuning, restoring the caller domain's settings after
   (spawned workers die with their domain, but worker 0 is the caller). *)
let with_gc tuning f =
  match tuning with
  | None -> f ()
  | Some t ->
    let g = Gc.get () in
    Fun.protect
      ~finally:(fun () -> Gc.set g)
      (fun () ->
        Gc.set
          { g with
            Gc.minor_heap_size = t.gc_minor_heap_words;
            space_overhead = t.gc_space_overhead };
        f ())

(** [map ~domains f n] is [\[| f 0; f 1; ...; f (n-1) |\]], computed by
    [domains] workers.  [f] must be safe to call from any domain and must
    not depend on call order.  [domains <= 1] (or [n <= 1]) degenerates to
    a plain in-order serial loop with no domain spawned.  [stats] receives
    the per-worker timing/work record — observation only, the output array
    never depends on it.  [chunk] forces fixed-size chunks; by default
    workers claim guided (decreasing) chunks.  [gc] applies a per-domain
    GC tuning for the duration of the call. *)
let map ?chunk ?gc ?stats ?progress ?trace ~domains f n =
  (* Global completed-trial counter behind [?progress]; shared across
     workers so the hook sees one monotone 1..n sequence regardless of how
     chunks interleave. *)
  let completed = Atomic.make 0 in
  let notify () =
    match progress with
    | None -> ()
    | Some p -> p (Atomic.fetch_and_add completed 1 + 1)
  in
  if n = 0 then begin
    put_stats stats
      { st_domains = 0; st_chunk = 0; st_wall = [||]; st_items = [||] };
    [||]
  end
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then
      with_gc gc (fun () ->
        let t0 = Unix.gettimeofday () in
        let out =
          Obs.Trace.with_dur trace ~cat:"pool" "worker"
            ~args:[ ("items", Obs.Json.Int n) ]
            (fun () ->
              let first = f 0 in
              let out = Array.make n first in
              notify ();
              for i = 1 to n - 1 do
                out.(i) <- f i;
                notify ()
              done;
              out)
        in
        put_stats stats
          { st_domains = 1; st_chunk = n;
            st_wall = [| Unix.gettimeofday () -. t0 |]; st_items = [| n |] };
        out)
    else begin
      (* [Some c]: fixed-size chunks of c.  [None]: guided self-scheduling
         (see {!guided_size}); [st_chunk] then reports the first claim's
         size. *)
      let fixed = Option.map (max 1) chunk in
      let claim next =
        match fixed with
        | Some c -> (Atomic.fetch_and_add next c, c)
        | None ->
          let rec go () =
            let cur = Atomic.get next in
            if cur >= n then (cur, 1)
            else begin
              let size = guided_size ~domains ~n cur in
              if Atomic.compare_and_set next cur (cur + size) then (cur, size)
              else go ()
            end
          in
          go ()
      in
      let chunk =
        match fixed with
        | Some c -> c
        | None -> guided_size ~domains ~n 0
      in
      let out = Array.make n None in
      let next = Atomic.make 0 in
      (* Cooperative cancellation: the first worker whose [f] raises sets
         this, and every other worker stops at its next chunk boundary
         instead of pointlessly draining the rest of the index space before
         the exception can propagate. *)
      let cancelled = Atomic.make false in
      let wall = Array.make domains 0.0 in
      let items = Array.make domains 0 in
      let worker wid () =
        with_gc gc @@ fun () ->
        let t0 = Unix.gettimeofday () in
        let done_ = ref 0 in
        (* One flight-recorder span per worker lifetime (track = worker
           id) plus one per chunk claim: the gaps between chunk spans on
           a track are exactly the pool's idle/contention time. *)
        let wspan =
          Option.map
            (fun r -> Obs.Trace.begin_dur r ~track:wid ~cat:"pool" "worker")
            trace
        in
        Fun.protect
          ~finally:(fun () ->
            (match trace, wspan with
             | Some r, Some od ->
               Obs.Trace.end_dur r od
                 ~args:[ ("items", Obs.Json.Int !done_) ]
             | _, _ -> ());
            (* Each worker writes only its own slots; the joins below
               publish them to the caller (also on the exception path, so
               a cancelled run still reports what each worker did). *)
            wall.(wid) <- Unix.gettimeofday () -. t0;
            items.(wid) <- !done_)
          (fun () ->
            try
              let continue_ = ref true in
              while !continue_ do
                if Atomic.get cancelled then continue_ := false
                else begin
                  let start, size = claim next in
                  if start >= n then continue_ := false
                  else
                    Obs.Trace.with_dur trace ~track:wid ~cat:"pool" "chunk"
                      ~args:
                        [ ("start", Obs.Json.Int start);
                          ("size", Obs.Json.Int (min (start + size) n - start))
                        ]
                      (fun () ->
                        for i = start to min (start + size) n - 1 do
                          out.(i) <- Some (f i);
                          done_ := !done_ + 1;
                          notify ()
                        done)
                end
              done
            with e ->
              Atomic.set cancelled true;
              raise e)
      in
      let helpers =
        Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      let main_exn = (try worker 0 (); None with e -> Some e) in
      (* Join everyone before re-raising so no domain outlives the call. *)
      let helper_exn =
        Array.fold_left
          (fun acc d ->
            match (try Domain.join d; None with e -> Some e) with
            | Some _ as e when acc = None -> e
            | _ -> acc)
          None helpers
      in
      (match main_exn, helper_exn with
       | Some e, _ | None, Some e -> raise e
       | None, None -> ());
      put_stats stats
        { st_domains = domains; st_chunk = chunk; st_wall = wall;
          st_items = items };
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        out
    end
  end
