(** Statistical fault injection campaigns (paper §IV).

    A campaign takes a *subject* — a program variant plus the recipe for
    materializing its input state and reading back its output — and runs N
    independent trials.  Each trial flips one random bit of one random live
    register at one random dynamic instruction, then classifies the run.

    The golden (fault-free) run is performed once per subject; it yields the
    reference output, the dynamic instruction count that bounds the fault
    window, the simulated runtime, and the set of value checks that fail
    without any fault (those are disabled for the trials, modelling the
    paper's recover-once-then-ignore policy, and reported as the
    false-positive rate). *)

(** Everything needed for one execution: a fresh memory image, the entry
    arguments, and how to read the output back as a flat signal for fidelity
    evaluation.  Built per run so trials never observe each other's stores. *)
type run_state = {
  mem : Interp.Memory.t;
  args : Ir.Value.t list;
  read_output : Ir.Value.t option -> float array;
}

type subject = {
  label : string;
  prog : Ir.Prog.t;
  entry : string;
  fresh_state : unit -> run_state;
  metric : Fidelity.Metric.spec;
}

type golden = {
  output : float array;
  steps : int;
  cycles : int;
  false_positives : int;          (** dynamic value-check failures, no fault *)
  failing_checks : int list;      (** static uids of those checks *)
}

exception Golden_run_failed of string * string

(** Fault-free reference execution of the subject.  [profile] attaches an
    execution profile to the run (observation-only).  [checkpoint_interval]
    runs the golden with checkpointing enabled: the output and step count
    are unchanged (checkpoints retire no instructions), but the cycle count
    then includes the checkpoint overhead — the fault-free cost a recovery
    deployment actually pays. *)
let golden_run ?profile ?(checkpoint_interval = 0) subject =
  let state = subject.fresh_state () in
  let config =
    { Interp.Machine.default_config with mode = Interp.Machine.Record;
      profile; checkpoint_interval }
  in
  let result =
    Interp.Machine.run_compiled ~config
      (Interp.Compiled.cached subject.prog)
      ~entry:subject.entry ~args:state.args ~mem:state.mem
  in
  match result.stop with
  | Interp.Machine.Finished ret ->
    { output = state.read_output ret;
      steps = result.steps;
      cycles = result.cycles;
      false_positives = result.valchk_failures;
      failing_checks = result.failed_check_uids }
  | stop ->
    raise
      (Golden_run_failed
         (subject.label, Format.asprintf "%a" Interp.Machine.pp_stop stop))

type trial = {
  trial_seed : int;
  at_step : int;
  outcome : Classify.outcome;
  injection : Interp.Machine.injection option;
  detected_by : Interp.Machine.detection option;
      (** which software check fired, for SWDetect outcomes *)
  detect_latency : int option;
      (** dynamic instructions between the flip and its detection, for
          SWDetect/HWDetect outcomes — the window a recovery scheme must
          cover (paper Â§IV-D) *)
  steps : int;    (** dynamic instructions the faulted run executed *)
  cycles : int;   (** simulated cycles of the faulted run *)
  recovery : Interp.Machine.recovery option;
      (** the checkpoint rollback the trial performed, if any *)
  checkpoints : int;   (** checkpoints the trial's run took *)
  taint : Interp.Taint.summary option;
      (** fault-propagation summary, when the campaign ran with
          [taint_trace] — [None] otherwise *)
}

(* Bit-exact trial comparison for the parallel-determinism contract.
   Polymorphic [=] is wrong here: an injected fault on a float register can
   produce NaN in [injection.before]/[after], and NaN <> NaN even when the
   payloads are bit-identical.  [Value.equal] compares register bits. *)
let injection_equal (a : Interp.Machine.injection)
    (b : Interp.Machine.injection) =
  a.inj_step = b.inj_step && a.inj_kind = b.inj_kind
  && a.inj_reg = b.inj_reg && a.inj_bit = b.inj_bit
  && Ir.Value.equal a.before b.before
  && Ir.Value.equal a.after b.after

let trial_equal a b =
  a.trial_seed = b.trial_seed && a.at_step = b.at_step
  && a.outcome = b.outcome
  && (match a.injection, b.injection with
      | None, None -> true
      | Some x, Some y -> injection_equal x y
      | None, Some _ | Some _, None -> false)
  && a.detected_by = b.detected_by
  && a.detect_latency = b.detect_latency
  && a.steps = b.steps && a.cycles = b.cycles
  (* [recovery] holds only ints and a detection record, so structural
     equality is exact. *)
  && a.recovery = b.recovery
  && a.checkpoints = b.checkpoints
  (* [taint] summaries hold ints, bools, int options and event records —
     no floats — so structural equality is exact here too. *)
  && a.taint = b.taint

let trials_equal a b =
  List.length a = List.length b && List.for_all2 trial_equal a b

type summary = {
  subject_label : string;
  trials : int;
  counts : (Classify.outcome * int) list;
  golden_info : golden;
}

let count summary outcome =
  match List.assoc_opt outcome summary.counts with
  | Some n -> n
  | None -> 0

(* An empty campaign has no outcome shares, not NaN ones: guard the 0/0. *)
let percent summary outcome =
  if summary.trials <= 0 then 0.0
  else
    100.0 *. float_of_int (count summary outcome)
    /. float_of_int summary.trials

let percent_many summary outcomes =
  List.fold_left (fun acc o -> acc +. percent summary o) 0.0 outcomes

(** Run one fault-injection trial.  [compiled] lets campaigns lower the
    subject program once and share it across all trials (and domains); when
    omitted it is looked up in the per-program compile cache. *)
let run_trial ?(fault_kind = Interp.Machine.Register_bit) ?compiled ?profile
    ?(checkpoint_interval = 0) ?(taint_trace = false) subject
    ~(golden : golden) ~disabled ~hw_window ~seed =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Interp.Compiled.cached subject.prog
  in
  let rng = Rng.create seed in
  (* Random in time: a dynamic instruction index within the golden window.
     The fault-free prefix of the run is deterministic, so the flip always
     lands. *)
  let at_step = 1 + Rng.int rng (max 1 (golden.steps - 1)) in
  let state = subject.fresh_state () in
  let config =
    { Interp.Machine.default_config with
      fuel = (golden.steps * 8) + 10_000;
      mode = Interp.Machine.Detect;
      fault =
        Some { Interp.Machine.at_step; fault_rng = Rng.split rng;
               kind = fault_kind };
      disabled_checks = disabled;
      profile; checkpoint_interval; taint_trace }
  in
  let result =
    Interp.Machine.run_compiled ~config compiled ~entry:subject.entry
      ~args:state.args ~mem:state.mem
  in
  let outcome =
    let output = lazy (
      match result.stop with
      | Interp.Machine.Finished ret -> state.read_output ret
      | Interp.Machine.Trapped _ | Interp.Machine.Sw_detected _
      | Interp.Machine.Out_of_fuel -> [||])
    in
    Classify.classify ~hw_window ~result
      ~identical:(fun () ->
        Fidelity.Metric.identical ~reference:golden.output (Lazy.force output))
      ~acceptable:(fun () ->
        Fidelity.Metric.acceptable subject.metric ~reference:golden.output
          (Lazy.force output))
  in
  let detect_latency =
    (* For recovered runs the latency is measured at the detection that
       triggered the rollback, not at the (later) end of the replay. *)
    match outcome, result.injection with
    | ( ( Classify.Sw_detect | Classify.Hw_detect | Classify.Recovered
        | Classify.Unrecoverable ),
        Some inj ) ->
      (match result.recovered with
       | Some r -> Some (r.Interp.Machine.rec_detect_step - inj.inj_step)
       | None -> Some (result.steps - inj.inj_step))
    | _, _ -> None
  in
  let detected_by =
    match result.stop with
    | Interp.Machine.Sw_detected d -> Some d
    | Interp.Machine.Finished _ ->
      (* A recovered run finished, but it did detect: report the check
         whose firing triggered the rollback. *)
      Option.map
        (fun r -> r.Interp.Machine.rec_detection)
        result.recovered
    | Interp.Machine.Trapped _ | Interp.Machine.Out_of_fuel -> None
  in
  { trial_seed = seed; at_step; outcome; injection = result.injection;
    detected_by; detect_latency; steps = result.steps;
    cycles = result.cycles; recovery = result.recovered;
    checkpoints = result.checkpoints; taint = result.taint }

(** All trial seeds, derived from the master RNG *before* any trial runs.
    This is the campaign determinism contract: seed assignment depends only
    on ([seed], trial index), never on worker scheduling, so any [~domains]
    produces bit-identical trials.  The sequence matches what the historical
    serial loop drew from the master generator one trial at a time. *)
let derive_seeds ~seed ~trials =
  let master = Rng.create seed in
  let seeds = Array.make (max trials 0) 0 in
  for i = 0 to trials - 1 do
    seeds.(i) <- (Int64.to_int (Rng.bits master) land 0x3FFFFFFF) + i
  done;
  seeds

(** Wall-clock accounting of one {!run}: where the campaign spent its
    time, and how the trial work spread over domains.  Observation-only;
    never feeds back into results. *)
type run_stats = {
  golden_sec : float;    (** golden run (and check-disabling setup) *)
  trials_sec : float;    (** the parallel trial phase *)
  wall_sec : float;      (** whole campaign, entry to exit *)
  pool : Pool.stats option;  (** per-domain breakdown of the trial phase *)
}

(** Run a whole campaign: one golden run plus [trials] injections.
    [fault_kind] selects the paper's register bit flips (default) or
    branch-target corruptions (the Â§IV-C complementary fault class).
    [domains] fans the trials out over OCaml 5 domains ({!Pool}); results
    are bit-identical to the serial run for any worker count because every
    trial's seed is pre-derived by {!derive_seeds} and each trial executes
    against its own fresh state.

    The observability hooks are all optional and observation-only — any
    combination leaves the summary and trial list bit-identical:
    - [profile] accumulates the execution profiles of every trial
      (per-trial instances, merged in trial order after the parallel
      phase, so worker scheduling stays unobservable);
    - [on_trial] receives [(index, trial)] for every trial, in
      deterministic seed order, after the parallel phase — the journal
      emission point;
    - [stats_out] receives the campaign's {!run_stats};
    - [progress] receives every trial's outcome as it completes, from
      whichever worker domain ran it ({!Progress} is thread-safe) — the
      live-telemetry heartbeat; its final snapshot fires before [run]
      returns.

    [taint_trace] runs every trial with the fault-propagation tracer
    attached ({!Interp.Taint}); outcomes, step and cycle counts are
    bit-identical to an untraced campaign, each trial just additionally
    carries its propagation summary.  The golden run stays untraced —
    without an injection there is nothing to seed. *)
let run ?(hw_window = Classify.default_hw_window) ?(seed = 0xC0FFEE)
    ?(fault_kind = Interp.Machine.Register_bit) ?(domains = 1)
    ?(checkpoint_interval = 0) ?(taint_trace = false) ?profile ?on_trial
    ?stats_out ?progress subject ~trials =
  let t_start = Unix.gettimeofday () in
  (* The golden also runs with checkpointing so its cycle count carries the
     fault-free overhead of the recovery configuration; its output and step
     count (the fault window) are interval-independent. *)
  let golden = golden_run ~checkpoint_interval subject in
  let disabled = Hashtbl.create 8 in
  List.iter (fun uid -> Hashtbl.replace disabled uid ()) golden.failing_checks;
  let seeds = derive_seeds ~seed ~trials in
  let compiled = Interp.Compiled.cached subject.prog in
  let t_trials = Unix.gettimeofday () in
  (* Each trial profiles into its own instance; the merge below runs in
     trial order on the calling domain, so the aggregate is deterministic
     and the hot path shares nothing across workers. *)
  let trial_profiles =
    match profile with
    | None -> [||]
    | Some _ -> Array.init trials (fun _ -> Interp.Profile.create ())
  in
  let pool_stats = ref None in
  let results =
    Pool.map ~domains ~stats:pool_stats
      (fun i ->
        let profile =
          if Array.length trial_profiles = 0 then None
          else Some trial_profiles.(i)
        in
        let t =
          run_trial ~fault_kind ~compiled ?profile ~checkpoint_interval
            ~taint_trace subject ~golden ~disabled ~hw_window
            ~seed:seeds.(i)
        in
        (match progress with
         | Some pg -> Progress.note pg t.outcome
         | None -> ());
        t)
      trials
    |> Array.to_list
  in
  (match progress with Some pg -> Progress.finish pg | None -> ());
  let t_end = Unix.gettimeofday () in
  (match profile with
   | Some dst ->
     Array.iter (fun p -> Interp.Profile.merge_into ~dst p) trial_profiles
   | None -> ());
  (match on_trial with
   | Some emit -> List.iteri emit results
   | None -> ());
  (match stats_out with
   | Some r ->
     r :=
       Some
         { golden_sec = t_trials -. t_start; trials_sec = t_end -. t_trials;
           wall_sec = t_end -. t_start; pool = !pool_stats }
   | None -> ());
  let counts =
    List.map
      (fun o ->
        (o, List.length (List.filter (fun t -> t.outcome = o) results)))
      Classify.all
  in
  ({ subject_label = subject.label; trials; counts; golden_info = golden },
   results)

(** Mean of per-subject percentages, the paper's cross-benchmark average. *)
let mean_percent summaries outcomes =
  match summaries with
  | [] -> 0.0
  | _ :: _ ->
    List.fold_left
      (fun acc s -> acc +. percent_many s outcomes)
      0.0 summaries
    /. float_of_int (List.length summaries)
