(** Statistical fault injection campaigns (paper §IV).

    A campaign takes a *subject* — a program variant plus the recipe for
    materializing its input state and reading back its output — and runs N
    independent trials.  Each trial flips one random bit of one random live
    register at one random dynamic instruction, then classifies the run.

    The golden (fault-free) run is performed once per subject; it yields the
    reference output, the dynamic instruction count that bounds the fault
    window, the simulated runtime, and the set of value checks that fail
    without any fault (those are disabled for the trials, modelling the
    paper's recover-once-then-ignore policy, and reported as the
    false-positive rate). *)

(** Everything needed for one execution: a fresh memory image, the entry
    arguments, and how to read the output back as a flat signal for fidelity
    evaluation.  Built per run so trials never observe each other's stores. *)
type run_state = {
  mem : Interp.Memory.t;
  args : Ir.Value.t list;
  read_output : Ir.Value.t option -> float array;
}

type subject = {
  label : string;
  prog : Ir.Prog.t;
  entry : string;
  fresh_state : unit -> run_state;
  metric : Fidelity.Metric.spec;
}

type golden = {
  output : float array;
  steps : int;
  cycles : int;
  false_positives : int;          (** dynamic value-check failures, no fault *)
  failing_checks : int list;      (** static uids of those checks *)
}

exception Golden_run_failed of string * string

(** Fault-free reference execution of the subject.  [profile] attaches an
    execution profile to the run (observation-only).  [checkpoint_interval]
    runs the golden with checkpointing enabled: the output and step count
    are unchanged (checkpoints retire no instructions), but the cycle count
    then includes the checkpoint overhead — the fault-free cost a recovery
    deployment actually pays. *)
let golden_run ?profile ?(checkpoint_interval = 0) subject =
  let state = subject.fresh_state () in
  let config =
    { Interp.Machine.default_config with mode = Interp.Machine.Record;
      profile; checkpoint_interval }
  in
  let result =
    Interp.Machine.run_compiled ~config
      (Interp.Compiled.cached subject.prog)
      ~entry:subject.entry ~args:state.args ~mem:state.mem
  in
  match result.stop with
  | Interp.Machine.Finished ret ->
    { output = state.read_output ret;
      steps = result.steps;
      cycles = result.cycles;
      false_positives = result.valchk_failures;
      failing_checks = result.failed_check_uids }
  | stop ->
    raise
      (Golden_run_failed
         (subject.label, Format.asprintf "%a" Interp.Machine.pp_stop stop))

type trial = {
  trial_seed : int;
  at_step : int;
  outcome : Classify.outcome;
  injection : Interp.Machine.injection option;
  detected_by : Interp.Machine.detection option;
      (** which software check fired, for SWDetect outcomes *)
  detect_latency : int option;
      (** dynamic instructions between the flip and its detection, for
          SWDetect/HWDetect outcomes — the window a recovery scheme must
          cover (paper Â§IV-D) *)
  steps : int;    (** dynamic instructions the faulted run executed *)
  cycles : int;   (** simulated cycles of the faulted run *)
  recovery : Interp.Machine.recovery option;
      (** the checkpoint rollback the trial performed, if any *)
  checkpoints : int;   (** checkpoints the trial's run took *)
  taint : Interp.Taint.summary option;
      (** fault-propagation summary, when the campaign ran with
          [taint_trace] — [None] otherwise *)
  stratum : int option;
      (** the stratum this trial sampled, for adaptive campaigns —
          [None] on the uniform path *)
}

(* Bit-exact trial comparison for the parallel-determinism contract.
   Polymorphic [=] is wrong here: an injected fault on a float register can
   produce NaN in [injection.before]/[after], and NaN <> NaN even when the
   payloads are bit-identical.  [Value.equal] compares register bits. *)
let injection_equal (a : Interp.Machine.injection)
    (b : Interp.Machine.injection) =
  a.inj_step = b.inj_step && a.inj_kind = b.inj_kind
  && a.inj_reg = b.inj_reg && a.inj_bit = b.inj_bit
  && Ir.Value.equal a.before b.before
  && Ir.Value.equal a.after b.after

let trial_equal a b =
  a.trial_seed = b.trial_seed && a.at_step = b.at_step
  && a.outcome = b.outcome
  && (match a.injection, b.injection with
      | None, None -> true
      | Some x, Some y -> injection_equal x y
      | None, Some _ | Some _, None -> false)
  && a.detected_by = b.detected_by
  && a.detect_latency = b.detect_latency
  && a.steps = b.steps && a.cycles = b.cycles
  (* [recovery] holds only ints and a detection record, so structural
     equality is exact. *)
  && a.recovery = b.recovery
  && a.checkpoints = b.checkpoints
  (* [taint] summaries hold ints, bools, int options and event records —
     no floats — so structural equality is exact here too. *)
  && a.taint = b.taint
  && a.stratum = b.stratum

let trials_equal a b =
  List.length a = List.length b && List.for_all2 trial_equal a b

type summary = {
  subject_label : string;
  trials : int;
  counts : (Classify.outcome * int) list;
  golden_info : golden;
}

let count summary outcome =
  match List.assoc_opt outcome summary.counts with
  | Some n -> n
  | None -> 0

(* An empty campaign has no outcome shares, not NaN ones: guard the 0/0. *)
let percent summary outcome =
  if summary.trials <= 0 then 0.0
  else
    100.0 *. float_of_int (count summary outcome)
    /. float_of_int summary.trials

let percent_many summary outcomes =
  List.fold_left (fun acc o -> acc +. percent summary o) 0.0 outcomes

(* Shared trial epilogue: classify the stopped run against the golden
   reference and package the trial record.  Identical for from-scratch and
   snapshot-forked executions — the [result] already carries the full
   counters either way. *)
let finish_trial subject ~(golden : golden) ~hw_window ~seed ~at_step
    ~(state : run_state) (result : Interp.Machine.result) =
  let outcome =
    let output = lazy (
      match result.stop with
      | Interp.Machine.Finished ret -> state.read_output ret
      | Interp.Machine.Trapped _ | Interp.Machine.Sw_detected _
      | Interp.Machine.Out_of_fuel -> [||])
    in
    Classify.classify ~hw_window ~result
      ~identical:(fun () ->
        Fidelity.Metric.identical ~reference:golden.output (Lazy.force output))
      ~acceptable:(fun () ->
        Fidelity.Metric.acceptable subject.metric ~reference:golden.output
          (Lazy.force output))
  in
  let detect_latency =
    (* For recovered runs the latency is measured at the detection that
       triggered the rollback, not at the (later) end of the replay. *)
    match outcome, result.injection with
    | ( ( Classify.Sw_detect | Classify.Hw_detect | Classify.Recovered
        | Classify.Unrecoverable ),
        Some inj ) ->
      (match result.recovered with
       | Some r -> Some (r.Interp.Machine.rec_detect_step - inj.inj_step)
       | None -> Some (result.steps - inj.inj_step))
    | _, _ -> None
  in
  let detected_by =
    match result.stop with
    | Interp.Machine.Sw_detected d -> Some d
    | Interp.Machine.Finished _ ->
      (* A recovered run finished, but it did detect: report the check
         whose firing triggered the rollback. *)
      Option.map
        (fun r -> r.Interp.Machine.rec_detection)
        result.recovered
    | Interp.Machine.Trapped _ | Interp.Machine.Out_of_fuel -> None
  in
  { trial_seed = seed; at_step; outcome; injection = result.injection;
    detected_by; detect_latency; steps = result.steps;
    cycles = result.cycles; recovery = result.recovered;
    checkpoints = result.checkpoints; taint = result.taint;
    stratum = None }

(* Per-trial fault plan, drawn from the trial seed.  The [at_step] draw
   and the split both happen before execution, so the plan is a pure
   function of ([seed], golden window) — the determinism anchor for both
   execution strategies below. *)
let trial_plan ~fault_kind ~(golden : golden) ~seed =
  let rng = Rng.create seed in
  (* Random in time: a dynamic instruction index within the golden window.
     The fault-free prefix of the run is deterministic, so the flip always
     lands. *)
  let at_step = 1 + Rng.int rng (max 1 (golden.steps - 1)) in
  let fault =
    { Interp.Machine.at_step; fault_rng = Rng.split rng; kind = fault_kind;
      restrict = None }
  in
  (at_step, fault)

let trial_config ~fault ~disabled ~profile ~checkpoint_interval ~taint_trace
    ~(golden : golden) =
  { Interp.Machine.default_config with
    fuel = (golden.steps * 8) + 10_000;
    mode = Interp.Machine.Detect;
    fault = Some fault;
    disabled_checks = disabled;
    profile; checkpoint_interval; taint_trace }

(** Run one fault-injection trial.  [compiled] lets campaigns lower the
    subject program once and share it across all trials (and domains); when
    omitted it is looked up in the per-program compile cache. *)
let run_trial ?(fault_kind = Interp.Machine.Register_bit) ?compiled ?profile
    ?(checkpoint_interval = 0) ?(taint_trace = false) subject
    ~(golden : golden) ~disabled ~hw_window ~seed =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Interp.Compiled.cached subject.prog
  in
  let at_step, fault = trial_plan ~fault_kind ~golden ~seed in
  let state = subject.fresh_state () in
  let config =
    trial_config ~fault ~disabled ~profile ~checkpoint_interval ~taint_trace
      ~golden
  in
  let result =
    Interp.Machine.run_compiled ~config compiled ~entry:subject.entry
      ~args:state.args ~mem:state.mem
  in
  finish_trial subject ~golden ~hw_window ~seed ~at_step ~state result

(* One worker domain's reusable trial context ({!run}'s hot path): the
   run state is materialized once per domain, its pristine memory image is
   captured up front, and every trial either resumes from a fork snapshot
   (which overwrites memory itself) or blits the pristine image back —
   never reallocating the region arrays.  The arena recycles the machine's
   frame and phi scratch across the domain's trials. *)
type worker_ctx = {
  wc_state : run_state;
  wc_image0 : Interp.Memory.image;
  wc_arena : Interp.Machine.arena;
}

(* The arena/fork trial runner: bit-identical to {!run_trial} by the
   determinism argument of DESIGN.md §12 — the snapshot restores exactly
   the state a from-scratch run holds at the fork step, and the arena and
   image reset are observation-free. *)
let run_trial_in ?plan ~fault_kind ~compiled ~checkpoint_interval
    ~taint_trace ~(ctx : worker_ctx) ~snaps subject ~(golden : golden)
    ~disabled ~hw_window ~seed =
  let at_step, fault =
    match plan with
    | Some p -> p
    | None -> trial_plan ~fault_kind ~golden ~seed
  in
  let state = ctx.wc_state in
  let resume =
    match snaps with
    | Some arr -> Interp.Fork.best arr ~at_step
    | None -> None
  in
  (* A resumed run restores memory from its snapshot; a from-scratch run
     starts from the pristine image. *)
  (match resume with
   | Some _ -> ()
   | None -> Interp.Memory.restore_image state.mem ctx.wc_image0);
  let config =
    trial_config ~fault ~disabled ~profile:None ~checkpoint_interval
      ~taint_trace ~golden
  in
  let result =
    Interp.Machine.run_compiled ~config ~arena:ctx.wc_arena ?resume compiled
      ~entry:subject.entry ~args:state.args ~mem:state.mem
  in
  finish_trial subject ~golden ~hw_window ~seed ~at_step ~state result

(** All trial seeds, derived from the master RNG *before* any trial runs.
    This is the campaign determinism contract: seed assignment depends only
    on ([seed], trial index), never on worker scheduling, so any [~domains]
    produces bit-identical trials.  The sequence matches what the historical
    serial loop drew from the master generator one trial at a time. *)
let derive_seeds ~seed ~trials =
  let master = Rng.create seed in
  let seeds = Array.make (max trials 0) 0 in
  let used = Hashtbl.create (max 16 (2 * max trials 0)) in
  for i = 0 to trials - 1 do
    (* The 30-bit draw plus index can collide across indices (birthday
       bound: a few-percent chance by ~10^4 trials), and two trials with
       the same seed are the same trial — a silent loss of statistical
       power.  Dedup deterministically: keep every non-colliding draw
       as-is (preserving the historical sequence) and push a collision
       into the next 30-bit band until unique. *)
    let s = ref ((Int64.to_int (Rng.bits master) land 0x3FFFFFFF) + i) in
    while Hashtbl.mem used !s do
      s := !s + 0x40000000
    done;
    Hashtbl.add used !s ();
    seeds.(i) <- !s
  done;
  seeds

(* Golden-prefix snapshot capture (DESIGN.md §12): one extra fault-free
   pass records resumable snapshots every [stride] steps, so trials skip
   their fault-free prefix.  Shared by the uniform and adaptive
   schedulers.  Skipped when profiling — a profiled trial must observe
   its whole execution, not just the post-fork suffix. *)
let capture_fork_snaps ?trace ~fork ~fork_snapshots ~fork_stride ~profile
    ~trials ~checkpoint_interval ~compiled subject ~(golden : golden) =
  if (not fork) || profile <> None || trials = 0 || golden.steps <= 1 then
    None
  else
    Obs.Trace.with_dur trace ~cat:"campaign" "fork_capture" (fun () ->
    let stride =
      match fork_stride with
      | Some s -> max 1 s
      | None -> max 1 (golden.steps / max 1 fork_snapshots)
    in
    let plan = Interp.Fork.plan ~stride in
    let state = subject.fresh_state () in
    let config =
      { Interp.Machine.default_config with
        mode = Interp.Machine.Record; checkpoint_interval }
    in
    let r =
      Interp.Machine.run_compiled ~config ~fork_capture:plan compiled
        ~entry:subject.entry ~args:state.args ~mem:state.mem
    in
    (* The capture pass must replay the golden run exactly; anything
       else (a nondeterministic subject) voids the fork determinism
       argument, so fall back to from-scratch trials.  A stride larger
       than the run captures nothing and falls back the same way. *)
    match r.Interp.Machine.stop with
    | Interp.Machine.Finished _
      when r.Interp.Machine.steps = golden.steps
           && r.Interp.Machine.cycles = golden.cycles ->
      let snaps = Interp.Fork.finalize plan in
      if Array.length snaps = 0 then None else Some snaps
    | _ -> None)

(* Per-domain trial contexts, created lazily on first use and keyed by
   domain id (ids are unique among live domains, and the table dies with
   the campaign, so nothing leaks across campaigns).  The mutex only
   guards the table; each domain reads and writes its own key. *)
let ctx_table subject =
  let ctx_lock = Mutex.create () in
  let ctxs : (int, worker_ctx) Hashtbl.t = Hashtbl.create 8 in
  fun () ->
    let id = (Domain.self () :> int) in
    Mutex.lock ctx_lock;
    let found = Hashtbl.find_opt ctxs id in
    Mutex.unlock ctx_lock;
    match found with
    | Some c -> c
    | None ->
      let state = subject.fresh_state () in
      let c =
        { wc_state = state;
          wc_image0 = Interp.Memory.capture state.mem;
          wc_arena = Interp.Machine.arena () }
      in
      Mutex.lock ctx_lock;
      Hashtbl.replace ctxs id c;
      Mutex.unlock ctx_lock;
      c

(** Wall-clock accounting of one {!run}: where the campaign spent its
    time, and how the trial work spread over domains.  Observation-only;
    never feeds back into results. *)
type run_stats = {
  golden_sec : float;    (** the golden run alone *)
  setup_sec : float;     (** seed derivation, check disabling, compile
                             cache and the fork-snapshot capture pass *)
  trials_sec : float;    (** the parallel trial phase *)
  wall_sec : float;      (** whole campaign, entry to exit *)
  domains : int;         (** worker domains the campaign was asked to use *)
  pool : Pool.stats option;  (** per-domain breakdown of the trial phase *)
}

(** Run a whole campaign: one golden run plus [trials] injections.
    [fault_kind] selects the paper's register bit flips (default) or
    branch-target corruptions (the Â§IV-C complementary fault class).
    [domains] fans the trials out over OCaml 5 domains ({!Pool}); results
    are bit-identical to the serial run for any worker count because every
    trial's seed is pre-derived by {!derive_seeds} and each trial executes
    against its own fresh state.

    The observability hooks are all optional and observation-only — any
    combination leaves the summary and trial list bit-identical:
    - [profile] accumulates the execution profiles of every trial
      (per-trial instances, merged in trial order after the parallel
      phase, so worker scheduling stays unobservable);
    - [on_trial] receives [(index, trial)] for every trial, in
      deterministic seed order, after the parallel phase — the journal
      emission point;
    - [stats_out] receives the campaign's {!run_stats};
    - [progress] receives every trial's outcome as it completes, from
      whichever worker domain ran it ({!Progress} is thread-safe) — the
      live-telemetry heartbeat; its final snapshot fires before [run]
      returns;
    - [trace] attaches a flight recorder ({!Obs.Trace.recorder}): one
      duration span per campaign phase (golden run, fork capture, trial
      phase) on track 0, plus {!Pool.map}'s per-worker and per-chunk
      spans — render with {!Obs.Trace.to_chrome}.

    [taint_trace] runs every trial with the fault-propagation tracer
    attached ({!Interp.Taint}); outcomes, step and cycle counts are
    bit-identical to an untraced campaign, each trial just additionally
    carries its propagation summary.  The golden run stays untraced —
    without an injection there is nothing to seed. *)
let run ?(hw_window = Classify.default_hw_window) ?(seed = 0xC0FFEE)
    ?(fault_kind = Interp.Machine.Register_bit) ?(domains = 1)
    ?(checkpoint_interval = 0) ?(taint_trace = false) ?(fork = true)
    ?(fork_snapshots = 32) ?fork_stride ?profile ?on_trial ?stats_out
    ?warehouse ?progress ?trace subject ~trials =
  let t_start = Unix.gettimeofday () in
  (* The golden also runs with checkpointing so its cycle count carries the
     fault-free overhead of the recovery configuration; its output and step
     count (the fault window) are interval-independent. *)
  let golden =
    Obs.Trace.with_dur trace ~cat:"campaign" "golden_run" (fun () ->
      golden_run ~checkpoint_interval subject)
  in
  let t_golden = Unix.gettimeofday () in
  let disabled = Hashtbl.create 8 in
  List.iter (fun uid -> Hashtbl.replace disabled uid ()) golden.failing_checks;
  let seeds = derive_seeds ~seed ~trials in
  let compiled = Interp.Compiled.cached subject.prog in
  let fork_snaps =
    capture_fork_snaps ?trace ~fork ~fork_snapshots ~fork_stride ~profile
      ~trials ~checkpoint_interval ~compiled subject ~golden
  in
  let get_ctx = ctx_table subject in
  let t_trials = Unix.gettimeofday () in
  (* Each trial profiles into its own instance; the merge below runs in
     trial order on the calling domain, so the aggregate is deterministic
     and the hot path shares nothing across workers. *)
  let trial_profiles =
    match profile with
    | None -> [||]
    | Some _ -> Array.init trials (fun _ -> Interp.Profile.create ())
  in
  let pool_stats = ref None in
  let results =
    Obs.Trace.with_dur trace ~cat:"campaign" "trials"
      ~args:[ ("trials", Obs.Json.Int trials) ]
    @@ fun () ->
    Pool.map ~domains ~gc:Pool.campaign_gc_tuning ~stats:pool_stats ?trace
      (fun i ->
        let t =
          if Array.length trial_profiles = 0 then
            run_trial_in ~fault_kind ~compiled ~checkpoint_interval
              ~taint_trace ~ctx:(get_ctx ()) ~snaps:fork_snaps subject
              ~golden ~disabled ~hw_window ~seed:seeds.(i)
          else
            run_trial ~fault_kind ~compiled ~profile:trial_profiles.(i)
              ~checkpoint_interval ~taint_trace subject ~golden ~disabled
              ~hw_window ~seed:seeds.(i)
        in
        (match progress with
         | Some pg -> Progress.note pg t.outcome
         | None -> ());
        t)
      trials
    |> Array.to_list
  in
  (match progress with Some pg -> Progress.finish pg | None -> ());
  let t_end = Unix.gettimeofday () in
  (match profile with
   | Some dst ->
     Array.iter (fun p -> Interp.Profile.merge_into ~dst p) trial_profiles
   | None -> ());
  (match on_trial with
   | Some emit -> List.iteri emit results
   | None -> ());
  let stats =
    { golden_sec = t_golden -. t_start;
      setup_sec = t_trials -. t_golden;
      trials_sec = t_end -. t_trials;
      wall_sec = t_end -. t_start;
      domains = max 1 domains;
      pool = !pool_stats }
  in
  (match stats_out with Some r -> r := Some stats | None -> ());
  let counts =
    List.map
      (fun o ->
        (o, List.length (List.filter (fun t -> t.outcome = o) results)))
      Classify.all
  in
  let summary =
    { subject_label = subject.label; trials; counts; golden_info = golden }
  in
  (match warehouse with
   | Some file -> file summary results (Some stats)
   | None -> ());
  (summary, results)

(* ------------------------------------------------------------------ *)
(* Adaptive stratified campaigns (DESIGN.md §14).                      *)
(* ------------------------------------------------------------------ *)

type stratum = {
  st_id : int;
  st_group : int;
  st_group_name : string;
  st_band : int;
  st_lo : int;
  st_hi : int;
  st_mass : float;
  st_prior : float;
}

type strata_plan = {
  sp_groups : int array;
  sp_cum : float array array;
  sp_window : int;
  sp_strata : stratum array;
  sp_mass_empty : float;
}

(* Partition the (step, ring-slot) injection space into strata: one per
   (protection group × residency band).  [cum.(g).(t)] is the cumulative
   probability weight a uniform fault draw puts on group [g] by step [t]
   (the machine's {!Interp.Machine.ring_obs} measurement); [window] is the
   number of equally likely injection steps (golden steps - 1, steps
   [1..window]).  Band boundaries split the *occupied* weight into
   [bands] roughly equal shares, so late-program groups are not starved
   into slivers.  Masses are exact: they sum (with [sp_mass_empty], the
   weight of empty-ring steps where a draw injects nothing and the trial
   is Masked by construction) to 1, which is what makes the reweighted
   whole-program estimate unbiased. *)
let build_strata ~groups ~group_names ~priors ~bands ~window cum =
  let ngroups = Array.length cum in
  let t_max = window in
  let total t =
    let s = ref 0.0 in
    for g = 0 to ngroups - 1 do s := !s +. cum.(g).(t) done;
    !s
  in
  let occupied = if t_max >= 1 then total t_max else 0.0 in
  let bands = max 1 bands in
  let bounds = Array.make (bands + 1) 1 in
  bounds.(bands) <- t_max + 1;
  for b = 1 to bands - 1 do
    let share = float_of_int b /. float_of_int bands *. occupied in
    let t = ref 1 in
    while !t < t_max && total !t < share do incr t done;
    bounds.(b) <- min (t_max + 1) (!t + 1)
  done;
  for b = 1 to bands do
    if bounds.(b) < bounds.(b - 1) then bounds.(b) <- bounds.(b - 1)
  done;
  let strata = ref [] in
  let id = ref 0 in
  if t_max >= 1 then
    for g = 0 to ngroups - 1 do
      for b = 0 to bands - 1 do
        let lo = bounds.(b) and hi = bounds.(b + 1) in
        if hi > lo then begin
          let mass =
            Float.max 0.0
              ((cum.(g).(hi - 1) -. cum.(g).(lo - 1))
               /. float_of_int t_max)
          in
          if mass > 0.0 then begin
            let name =
              if g < Array.length group_names then group_names.(g)
              else string_of_int g
            in
            let prior =
              if g < Array.length priors then
                Float.min 1.0 (Float.max 0.0 priors.(g))
              else 0.0
            in
            strata :=
              { st_id = !id; st_group = g; st_group_name = name;
                st_band = b; st_lo = lo; st_hi = hi; st_mass = mass;
                st_prior = prior }
              :: !strata;
            incr id
          end
        end
      done
    done;
  let mass_empty =
    if t_max >= 1 then
      Float.max 0.0 ((float_of_int t_max -. occupied) /. float_of_int t_max)
    else 1.0
  in
  { sp_groups = groups; sp_cum = cum; sp_window = t_max;
    sp_strata = Array.of_list (List.rev !strata);
    sp_mass_empty = mass_empty }

(* Inverse-CDF draw of an injection step inside a stratum: [u] in [0,1)
   picks the first step whose cumulative group weight exceeds
   [c.(lo-1) + u * (c.(hi-1) - c.(lo-1))] — steps where the group has no
   ring presence carry no increment and are never chosen, so the draw is
   the uniform (step, slot) distribution conditioned on the stratum. *)
let sample_at_step plan (s : stratum) ~u =
  let c = plan.sp_cum.(s.st_group) in
  let base = c.(s.st_lo - 1) in
  let target = base +. (u *. (c.(s.st_hi - 1) -. base)) in
  let lo = ref s.st_lo and hi = ref (s.st_hi - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if c.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

(* The stratified counterpart of {!trial_plan}: same shape (all draws
   happen before execution, a pure function of the seed and the plan),
   but the step comes from the stratum's CDF and the register draw is
   restricted to ring slots in the stratum's group. *)
let adaptive_trial_plan plan (s : stratum) ~seed =
  let rng = Rng.create seed in
  let u = Rng.float rng in
  let at_step = sample_at_step plan s ~u in
  let fault =
    Interp.Machine.register_fault
      ~restrict:(plan.sp_groups, s.st_group)
      ~at_step ~fault_rng:(Rng.split rng) ()
  in
  (at_step, fault)

type stratum_stats = {
  ss_stratum : stratum;
  ss_trials : int;
  ss_counts : (Classify.outcome * int) list;
}

type adaptive = {
  ad_ci_target : float;
  ad_strata : stratum_stats array;
  ad_mass_empty : float;
  ad_trials : int;
  ad_outcomes : (Classify.outcome * Obs.Stats.interval) list;
  ad_sdc : Obs.Stats.interval;
  ad_equiv_uniform : int;
  ad_oracle_uniform : int;
}

(* Mass-measurement replay: one fault-free pass with the ring-occupancy
   observer attached.  Must replay the golden run exactly — a divergence
   voids the stratum masses and the unbiasedness argument, so it is a
   hard error, not a silent fallback. *)
let measure_ring_masses ?trace ~checkpoint_interval ~compiled ~ngroups
    ~groups subject ~(golden : golden) =
  Obs.Trace.with_dur trace ~cat:"campaign" "mass_replay" (fun () ->
    let obs =
      Interp.Machine.ring_obs ~groups ~ngroups ~steps:golden.steps
    in
    let state = subject.fresh_state () in
    let config =
      { Interp.Machine.default_config with
        mode = Interp.Machine.Record; checkpoint_interval;
        obs = Some obs }
    in
    let r =
      Interp.Machine.run_compiled ~config compiled ~entry:subject.entry
        ~args:state.args ~mem:state.mem
    in
    match r.Interp.Machine.stop with
    | Interp.Machine.Finished _
      when r.Interp.Machine.steps = golden.steps
           && r.Interp.Machine.cycles = golden.cycles ->
      obs.Interp.Machine.ro_cum
    | _ ->
      raise
        (Golden_run_failed
           ( subject.label,
             "mass-measurement replay diverged from the golden run" )))

let outcome_indices = List.mapi (fun i o -> (o, i)) Classify.all
let n_outcomes = List.length Classify.all
let outcome_index o = List.assoc o outcome_indices

(* Shift an interval by an exactly known additive mass (the empty-ring
   share, all Masked): no sampling error, so estimate and both bounds
   move together. *)
let shift_interval (iv : Obs.Stats.interval) extra =
  { Obs.Stats.ci_estimate = Float.min 1.0 (iv.ci_estimate +. extra);
    ci_low = Float.min 1.0 (iv.ci_low +. extra);
    ci_high = Float.min 1.0 (iv.ci_high +. extra) }

(** Adaptive stratified campaign (DESIGN.md §14): Neyman-style
    variance-proportional allocation over protection-group × residency-band
    strata, with per-stratum early stopping on the Wilson interval of the
    SDC rate.  Stops when the mass-reweighted whole-program SDC interval's
    half width reaches [ci] (or the [max_trials] budget runs out).
    Deterministic in ([seed], subject, groups): per-stratum seed streams
    are split from the master up front and allocation depends only on
    deterministic counts — never on worker scheduling, so any [~domains]
    produces bit-identical trials.

    [groups] maps program register codes to protection groups (from
    [Analysis.Strata], but any partition works), [group_names] labels
    them, [priors] seeds each group's variance estimate with a static
    SDC-proneness guess before any trial has run. *)
let run_adaptive ?(hw_window = Classify.default_hw_window)
    ?(seed = 0xC0FFEE) ?(domains = 1) ?(checkpoint_interval = 0)
    ?(taint_trace = false) ?(fork = true) ?(fork_snapshots = 32)
    ?fork_stride ?on_trial ?stats_out ?warehouse ?progress_for ?trace
    ?(bands = 3) ?(max_trials = 100_000) ?(round0 = 32) ~groups
    ~group_names ~priors ~ci subject =
  let t_start = Unix.gettimeofday () in
  let ci = Float.max 1e-4 ci in
  let golden =
    Obs.Trace.with_dur trace ~cat:"campaign" "golden_run" (fun () ->
      golden_run ~checkpoint_interval subject)
  in
  let t_golden = Unix.gettimeofday () in
  let disabled = Hashtbl.create 8 in
  List.iter (fun uid -> Hashtbl.replace disabled uid ()) golden.failing_checks;
  let compiled = Interp.Compiled.cached subject.prog in
  let ngroups = max 1 (Array.length group_names) in
  let cum =
    measure_ring_masses ?trace ~checkpoint_interval ~compiled ~ngroups
      ~groups subject ~golden
  in
  let plan =
    build_strata ~groups ~group_names ~priors ~bands
      ~window:(golden.steps - 1) cum
  in
  let nstrata = Array.length plan.sp_strata in
  let fork_snaps =
    capture_fork_snaps ?trace ~fork ~fork_snapshots ~fork_stride
      ~profile:None ~trials:max_trials ~checkpoint_interval ~compiled
      subject ~golden
  in
  let get_ctx = ctx_table subject in
  let progress =
    match progress_for with
    | Some f when nstrata > 0 -> Some (f ~nstrata ~total:max_trials)
    | Some _ | None -> None
  in
  let t_trials = Unix.gettimeofday () in
  (* Per-stratum deterministic seed streams, split from the master in
     ascending stratum order (an explicit loop: [Array.init]'s evaluation
     order is unspecified).  Seeds are deduped across *all* strata with
     the same bump-into-a-higher-band rule as {!derive_seeds}, so no two
     trials of the campaign silently share a seed. *)
  let master = Rng.create seed in
  let streams =
    Array.init nstrata (fun _ -> master)
  in
  for i = 0 to nstrata - 1 do
    streams.(i) <- Rng.split master
  done;
  let used = Hashtbl.create 1024 in
  let next_seed sid =
    let s = ref (Int64.to_int (Rng.bits streams.(sid)) land 0x3FFFFFFF) in
    while Hashtbl.mem used !s do
      s := !s + 0x40000000
    done;
    Hashtbl.add used !s ();
    !s
  in
  let counts = Array.make_matrix (max 1 nstrata) n_outcomes 0 in
  let ns = Array.make (max 1 nstrata) 0 in
  let total = ref 0 in
  let sdc_k i =
    let k = ref 0 in
    List.iter
      (fun o ->
        if Classify.is_sdc o then k := !k + counts.(i).(outcome_index o))
      Classify.all;
    !k
  in
  let strata_obs_for count_of =
    Array.to_list
      (Array.mapi
         (fun i (s : stratum) ->
           { Obs.Stats.so_mass = s.st_mass; so_k = count_of i;
             so_n = ns.(i) })
         plan.sp_strata)
  in
  let sdc_interval () = Obs.Stats.stratified (strata_obs_for sdc_k) in
  let half iv = Obs.Stats.width iv /. 2.0 in
  (* A stratum is active (still sampling) while its own SDC Wilson half
     width exceeds the target — the per-stratum early-stopping rule.  By
     the quadrature lemma ({!Obs.Stats.stratified}), all strata at or
     below [ci] puts the combined half width at or below [ci]. *)
  let stratum_half i =
    half (Obs.Stats.wilson ~k:(sdc_k i) ~n:ns.(i) ())
  in
  let pool_stats = ref None in
  let rev_trials = ref [] in
  let run_batch batch =
    let n = Array.length batch in
    if n > 0 then begin
      let results =
        Obs.Trace.with_dur trace ~cat:"campaign" "trials"
          ~args:[ ("trials", Obs.Json.Int n) ]
        @@ fun () ->
        Pool.map ~domains ~gc:Pool.campaign_gc_tuning ~stats:pool_stats
          ?trace
          (fun i ->
            let sid, tseed = batch.(i) in
            let s = plan.sp_strata.(sid) in
            let tp = adaptive_trial_plan plan s ~seed:tseed in
            let t =
              run_trial_in ~plan:tp
                ~fault_kind:Interp.Machine.Register_bit ~compiled
                ~checkpoint_interval ~taint_trace ~ctx:(get_ctx ())
                ~snaps:fork_snaps subject ~golden ~disabled ~hw_window
                ~seed:tseed
            in
            let t = { t with stratum = Some sid } in
            (match progress with
             | Some pg -> Progress.note ~stratum:sid pg t.outcome
             | None -> ());
            t)
          n
      in
      Array.iteri
        (fun i t ->
          let sid, _ = batch.(i) in
          counts.(sid).(outcome_index t.outcome)
          <- counts.(sid).(outcome_index t.outcome) + 1;
          ns.(sid) <- ns.(sid) + 1;
          incr total;
          rev_trials := t :: !rev_trials)
        results
    end
  in
  (* Allocation → batch: the batch array is built serially (stratum
     ascending, then per-stratum draw order), so the seed sequence — and
     with it every trial — is a pure function of the allocation counts. *)
  let batch_of alloc =
    let n = Array.fold_left ( + ) 0 alloc in
    let batch = Array.make (max 1 n) (0, 0) in
    let j = ref 0 in
    Array.iteri
      (fun sid a ->
        for _ = 1 to a do
          batch.(!j) <- (sid, next_seed sid);
          incr j
        done)
      alloc;
    if n = 0 then [||] else batch
  in
  if nstrata > 0 && max_trials > 0 then begin
    (* Round 0: a fixed pilot per stratum (ascending order, capped by the
       budget) to seed the variance estimates with real observations. *)
    let alloc0 = Array.make nstrata 0 in
    let remaining = ref max_trials in
    Array.iteri
      (fun sid _ ->
        let a = min round0 !remaining in
        alloc0.(sid) <- a;
        remaining := !remaining - a)
      plan.sp_strata;
    run_batch (batch_of alloc0);
    let continue = ref true in
    while !continue do
      let combined = sdc_interval () in
      let active =
        Array.to_list plan.sp_strata
        |> List.filter (fun (s : stratum) -> stratum_half s.st_id > ci)
      in
      if half combined <= ci || active = [] || !total >= max_trials then
        continue := false
      else begin
        let budget = min (max 64 !total) (max_trials - !total) in
        (* Neyman allocation: weight m_s·σ̂_s, with σ̂ from a
           Laplace-smoothed rate blended with the static prior — a
           stratum with few observations leans on the analyzer's
           sdc-proneness guess, a well-sampled one on its own counts. *)
        let weight (s : stratum) =
          let i = s.st_id in
          let c = 8.0 in
          let p =
            (float_of_int (sdc_k i) +. (c *. s.st_prior) +. 1.0)
            /. (float_of_int ns.(i) +. c +. 2.0)
          in
          s.st_mass *. sqrt (p *. (1.0 -. p))
        in
        let wsum = List.fold_left (fun a s -> a +. weight s) 0.0 active in
        let alloc = Array.make nstrata 0 in
        if wsum <= 0.0 then
          (* Degenerate weights: spread the budget evenly. *)
          List.iteri
            (fun i (s : stratum) ->
              let per = budget / List.length active in
              alloc.(s.st_id)
              <- (per + if i < budget mod List.length active then 1 else 0))
            active
        else begin
          (* Cumulative rounding: allocations are deterministic and sum
             exactly to the budget. *)
          let acc = ref 0.0 and given = ref 0 in
          List.iter
            (fun (s : stratum) ->
              acc :=
                !acc +. (float_of_int budget *. weight s /. wsum);
              let upto = int_of_float (Float.round !acc) in
              alloc.(s.st_id) <- max 0 (upto - !given);
              given := max !given upto)
            active
        end;
        if Array.fold_left ( + ) 0 alloc = 0 then continue := false
        else run_batch (batch_of alloc)
      end
    done
  end;
  (match progress with Some pg -> Progress.finish pg | None -> ());
  let t_end = Unix.gettimeofday () in
  let results = List.rev !rev_trials in
  (match on_trial with
   | Some emit -> List.iteri emit results
   | None -> ());
  let stats =
    { golden_sec = t_golden -. t_start;
      setup_sec = t_trials -. t_golden;
      trials_sec = t_end -. t_trials;
      wall_sec = t_end -. t_start;
      domains = max 1 domains;
      pool = !pool_stats }
  in
  (match stats_out with Some r -> r := Some stats | None -> ());
  let sum_counts =
    List.map
      (fun o ->
        let j = outcome_index o in
        let k = ref 0 in
        for i = 0 to nstrata - 1 do k := !k + counts.(i).(j) done;
        (o, !k))
      Classify.all
  in
  let stratum_stats =
    Array.map
      (fun (s : stratum) ->
        { ss_stratum = s;
          ss_trials = ns.(s.st_id);
          ss_counts =
            List.map
              (fun o -> (o, counts.(s.st_id).(outcome_index o)))
              Classify.all })
      plan.sp_strata
  in
  let outcome_interval o =
    let iv =
      Obs.Stats.stratified
        (strata_obs_for (fun i -> counts.(i).(outcome_index o)))
    in
    (* Empty-ring steps inject nothing: their mass is exactly Masked. *)
    if o = Classify.Masked then shift_interval iv plan.sp_mass_empty
    else iv
  in
  let sdc = sdc_interval () in
  let achieved_half = Float.max 1e-9 (half sdc) in
  let adaptive =
    { ad_ci_target = ci;
      ad_strata = stratum_stats;
      ad_mass_empty = plan.sp_mass_empty;
      ad_trials = !total;
      ad_outcomes =
        List.map (fun o -> (o, outcome_interval o)) Classify.all;
      ad_sdc = sdc;
      (* The savings headline: a fixed-size uniform campaign cannot stop
         early (stopping is this scheduler's contribution), so it must be
         planned at worst-case variance p = 0.5 — the repo's standing
         margin-of-error convention — to *guarantee* the target width. *)
      ad_equiv_uniform =
        Obs.Stats.equivalent_uniform_trials ~p:0.5 ~half_width:ci ();
      (* The oracle comparison: uniform trials that would match the
         achieved width given advance knowledge of the observed rate —
         the honest lower bound reported next to the headline. *)
      ad_oracle_uniform =
        Obs.Stats.equivalent_uniform_trials ~p:sdc.ci_estimate
          ~half_width:achieved_half () }
  in
  let summary =
    { subject_label = subject.label; trials = !total; counts = sum_counts;
      golden_info = golden }
  in
  (match warehouse with
   | Some file -> file summary results (Some stats) adaptive
   | None -> ());
  (summary, results, adaptive)

(** Mean of per-subject percentages, the paper's cross-benchmark average. *)
let mean_percent summaries outcomes =
  match summaries with
  | [] -> 0.0
  | _ :: _ ->
    List.fold_left
      (fun acc s -> acc +. percent_many s outcomes)
      0.0 summaries
    /. float_of_int (List.length summaries)
