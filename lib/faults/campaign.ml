(** Statistical fault injection campaigns (paper §IV).

    A campaign takes a *subject* — a program variant plus the recipe for
    materializing its input state and reading back its output — and runs N
    independent trials.  Each trial flips one random bit of one random live
    register at one random dynamic instruction, then classifies the run.

    The golden (fault-free) run is performed once per subject; it yields the
    reference output, the dynamic instruction count that bounds the fault
    window, the simulated runtime, and the set of value checks that fail
    without any fault (those are disabled for the trials, modelling the
    paper's recover-once-then-ignore policy, and reported as the
    false-positive rate). *)

(** Everything needed for one execution: a fresh memory image, the entry
    arguments, and how to read the output back as a flat signal for fidelity
    evaluation.  Built per run so trials never observe each other's stores. *)
type run_state = {
  mem : Interp.Memory.t;
  args : Ir.Value.t list;
  read_output : Ir.Value.t option -> float array;
}

type subject = {
  label : string;
  prog : Ir.Prog.t;
  entry : string;
  fresh_state : unit -> run_state;
  metric : Fidelity.Metric.spec;
}

type golden = {
  output : float array;
  steps : int;
  cycles : int;
  false_positives : int;          (** dynamic value-check failures, no fault *)
  failing_checks : int list;      (** static uids of those checks *)
}

exception Golden_run_failed of string * string

(** Fault-free reference execution of the subject.  [profile] attaches an
    execution profile to the run (observation-only).  [checkpoint_interval]
    runs the golden with checkpointing enabled: the output and step count
    are unchanged (checkpoints retire no instructions), but the cycle count
    then includes the checkpoint overhead — the fault-free cost a recovery
    deployment actually pays. *)
let golden_run ?profile ?(checkpoint_interval = 0) subject =
  let state = subject.fresh_state () in
  let config =
    { Interp.Machine.default_config with mode = Interp.Machine.Record;
      profile; checkpoint_interval }
  in
  let result =
    Interp.Machine.run_compiled ~config
      (Interp.Compiled.cached subject.prog)
      ~entry:subject.entry ~args:state.args ~mem:state.mem
  in
  match result.stop with
  | Interp.Machine.Finished ret ->
    { output = state.read_output ret;
      steps = result.steps;
      cycles = result.cycles;
      false_positives = result.valchk_failures;
      failing_checks = result.failed_check_uids }
  | stop ->
    raise
      (Golden_run_failed
         (subject.label, Format.asprintf "%a" Interp.Machine.pp_stop stop))

type trial = {
  trial_seed : int;
  at_step : int;
  outcome : Classify.outcome;
  injection : Interp.Machine.injection option;
  detected_by : Interp.Machine.detection option;
      (** which software check fired, for SWDetect outcomes *)
  detect_latency : int option;
      (** dynamic instructions between the flip and its detection, for
          SWDetect/HWDetect outcomes — the window a recovery scheme must
          cover (paper Â§IV-D) *)
  steps : int;    (** dynamic instructions the faulted run executed *)
  cycles : int;   (** simulated cycles of the faulted run *)
  recovery : Interp.Machine.recovery option;
      (** the checkpoint rollback the trial performed, if any *)
  checkpoints : int;   (** checkpoints the trial's run took *)
  taint : Interp.Taint.summary option;
      (** fault-propagation summary, when the campaign ran with
          [taint_trace] — [None] otherwise *)
}

(* Bit-exact trial comparison for the parallel-determinism contract.
   Polymorphic [=] is wrong here: an injected fault on a float register can
   produce NaN in [injection.before]/[after], and NaN <> NaN even when the
   payloads are bit-identical.  [Value.equal] compares register bits. *)
let injection_equal (a : Interp.Machine.injection)
    (b : Interp.Machine.injection) =
  a.inj_step = b.inj_step && a.inj_kind = b.inj_kind
  && a.inj_reg = b.inj_reg && a.inj_bit = b.inj_bit
  && Ir.Value.equal a.before b.before
  && Ir.Value.equal a.after b.after

let trial_equal a b =
  a.trial_seed = b.trial_seed && a.at_step = b.at_step
  && a.outcome = b.outcome
  && (match a.injection, b.injection with
      | None, None -> true
      | Some x, Some y -> injection_equal x y
      | None, Some _ | Some _, None -> false)
  && a.detected_by = b.detected_by
  && a.detect_latency = b.detect_latency
  && a.steps = b.steps && a.cycles = b.cycles
  (* [recovery] holds only ints and a detection record, so structural
     equality is exact. *)
  && a.recovery = b.recovery
  && a.checkpoints = b.checkpoints
  (* [taint] summaries hold ints, bools, int options and event records —
     no floats — so structural equality is exact here too. *)
  && a.taint = b.taint

let trials_equal a b =
  List.length a = List.length b && List.for_all2 trial_equal a b

type summary = {
  subject_label : string;
  trials : int;
  counts : (Classify.outcome * int) list;
  golden_info : golden;
}

let count summary outcome =
  match List.assoc_opt outcome summary.counts with
  | Some n -> n
  | None -> 0

(* An empty campaign has no outcome shares, not NaN ones: guard the 0/0. *)
let percent summary outcome =
  if summary.trials <= 0 then 0.0
  else
    100.0 *. float_of_int (count summary outcome)
    /. float_of_int summary.trials

let percent_many summary outcomes =
  List.fold_left (fun acc o -> acc +. percent summary o) 0.0 outcomes

(* Shared trial epilogue: classify the stopped run against the golden
   reference and package the trial record.  Identical for from-scratch and
   snapshot-forked executions — the [result] already carries the full
   counters either way. *)
let finish_trial subject ~(golden : golden) ~hw_window ~seed ~at_step
    ~(state : run_state) (result : Interp.Machine.result) =
  let outcome =
    let output = lazy (
      match result.stop with
      | Interp.Machine.Finished ret -> state.read_output ret
      | Interp.Machine.Trapped _ | Interp.Machine.Sw_detected _
      | Interp.Machine.Out_of_fuel -> [||])
    in
    Classify.classify ~hw_window ~result
      ~identical:(fun () ->
        Fidelity.Metric.identical ~reference:golden.output (Lazy.force output))
      ~acceptable:(fun () ->
        Fidelity.Metric.acceptable subject.metric ~reference:golden.output
          (Lazy.force output))
  in
  let detect_latency =
    (* For recovered runs the latency is measured at the detection that
       triggered the rollback, not at the (later) end of the replay. *)
    match outcome, result.injection with
    | ( ( Classify.Sw_detect | Classify.Hw_detect | Classify.Recovered
        | Classify.Unrecoverable ),
        Some inj ) ->
      (match result.recovered with
       | Some r -> Some (r.Interp.Machine.rec_detect_step - inj.inj_step)
       | None -> Some (result.steps - inj.inj_step))
    | _, _ -> None
  in
  let detected_by =
    match result.stop with
    | Interp.Machine.Sw_detected d -> Some d
    | Interp.Machine.Finished _ ->
      (* A recovered run finished, but it did detect: report the check
         whose firing triggered the rollback. *)
      Option.map
        (fun r -> r.Interp.Machine.rec_detection)
        result.recovered
    | Interp.Machine.Trapped _ | Interp.Machine.Out_of_fuel -> None
  in
  { trial_seed = seed; at_step; outcome; injection = result.injection;
    detected_by; detect_latency; steps = result.steps;
    cycles = result.cycles; recovery = result.recovered;
    checkpoints = result.checkpoints; taint = result.taint }

(* Per-trial fault plan, drawn from the trial seed.  The [at_step] draw
   and the split both happen before execution, so the plan is a pure
   function of ([seed], golden window) — the determinism anchor for both
   execution strategies below. *)
let trial_plan ~fault_kind ~(golden : golden) ~seed =
  let rng = Rng.create seed in
  (* Random in time: a dynamic instruction index within the golden window.
     The fault-free prefix of the run is deterministic, so the flip always
     lands. *)
  let at_step = 1 + Rng.int rng (max 1 (golden.steps - 1)) in
  let fault =
    { Interp.Machine.at_step; fault_rng = Rng.split rng; kind = fault_kind }
  in
  (at_step, fault)

let trial_config ~fault ~disabled ~profile ~checkpoint_interval ~taint_trace
    ~(golden : golden) =
  { Interp.Machine.default_config with
    fuel = (golden.steps * 8) + 10_000;
    mode = Interp.Machine.Detect;
    fault = Some fault;
    disabled_checks = disabled;
    profile; checkpoint_interval; taint_trace }

(** Run one fault-injection trial.  [compiled] lets campaigns lower the
    subject program once and share it across all trials (and domains); when
    omitted it is looked up in the per-program compile cache. *)
let run_trial ?(fault_kind = Interp.Machine.Register_bit) ?compiled ?profile
    ?(checkpoint_interval = 0) ?(taint_trace = false) subject
    ~(golden : golden) ~disabled ~hw_window ~seed =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Interp.Compiled.cached subject.prog
  in
  let at_step, fault = trial_plan ~fault_kind ~golden ~seed in
  let state = subject.fresh_state () in
  let config =
    trial_config ~fault ~disabled ~profile ~checkpoint_interval ~taint_trace
      ~golden
  in
  let result =
    Interp.Machine.run_compiled ~config compiled ~entry:subject.entry
      ~args:state.args ~mem:state.mem
  in
  finish_trial subject ~golden ~hw_window ~seed ~at_step ~state result

(* One worker domain's reusable trial context ({!run}'s hot path): the
   run state is materialized once per domain, its pristine memory image is
   captured up front, and every trial either resumes from a fork snapshot
   (which overwrites memory itself) or blits the pristine image back —
   never reallocating the region arrays.  The arena recycles the machine's
   frame and phi scratch across the domain's trials. *)
type worker_ctx = {
  wc_state : run_state;
  wc_image0 : Interp.Memory.image;
  wc_arena : Interp.Machine.arena;
}

(* The arena/fork trial runner: bit-identical to {!run_trial} by the
   determinism argument of DESIGN.md §12 — the snapshot restores exactly
   the state a from-scratch run holds at the fork step, and the arena and
   image reset are observation-free. *)
let run_trial_in ~fault_kind ~compiled ~checkpoint_interval ~taint_trace
    ~(ctx : worker_ctx) ~snaps subject ~(golden : golden) ~disabled
    ~hw_window ~seed =
  let at_step, fault = trial_plan ~fault_kind ~golden ~seed in
  let state = ctx.wc_state in
  let resume =
    match snaps with
    | Some arr -> Interp.Fork.best arr ~at_step
    | None -> None
  in
  (* A resumed run restores memory from its snapshot; a from-scratch run
     starts from the pristine image. *)
  (match resume with
   | Some _ -> ()
   | None -> Interp.Memory.restore_image state.mem ctx.wc_image0);
  let config =
    trial_config ~fault ~disabled ~profile:None ~checkpoint_interval
      ~taint_trace ~golden
  in
  let result =
    Interp.Machine.run_compiled ~config ~arena:ctx.wc_arena ?resume compiled
      ~entry:subject.entry ~args:state.args ~mem:state.mem
  in
  finish_trial subject ~golden ~hw_window ~seed ~at_step ~state result

(** All trial seeds, derived from the master RNG *before* any trial runs.
    This is the campaign determinism contract: seed assignment depends only
    on ([seed], trial index), never on worker scheduling, so any [~domains]
    produces bit-identical trials.  The sequence matches what the historical
    serial loop drew from the master generator one trial at a time. *)
let derive_seeds ~seed ~trials =
  let master = Rng.create seed in
  let seeds = Array.make (max trials 0) 0 in
  let used = Hashtbl.create (max 16 (2 * max trials 0)) in
  for i = 0 to trials - 1 do
    (* The 30-bit draw plus index can collide across indices (birthday
       bound: a few-percent chance by ~10^4 trials), and two trials with
       the same seed are the same trial — a silent loss of statistical
       power.  Dedup deterministically: keep every non-colliding draw
       as-is (preserving the historical sequence) and push a collision
       into the next 30-bit band until unique. *)
    let s = ref ((Int64.to_int (Rng.bits master) land 0x3FFFFFFF) + i) in
    while Hashtbl.mem used !s do
      s := !s + 0x40000000
    done;
    Hashtbl.add used !s ();
    seeds.(i) <- !s
  done;
  seeds

(** Wall-clock accounting of one {!run}: where the campaign spent its
    time, and how the trial work spread over domains.  Observation-only;
    never feeds back into results. *)
type run_stats = {
  golden_sec : float;    (** the golden run alone *)
  setup_sec : float;     (** seed derivation, check disabling, compile
                             cache and the fork-snapshot capture pass *)
  trials_sec : float;    (** the parallel trial phase *)
  wall_sec : float;      (** whole campaign, entry to exit *)
  domains : int;         (** worker domains the campaign was asked to use *)
  pool : Pool.stats option;  (** per-domain breakdown of the trial phase *)
}

(** Run a whole campaign: one golden run plus [trials] injections.
    [fault_kind] selects the paper's register bit flips (default) or
    branch-target corruptions (the Â§IV-C complementary fault class).
    [domains] fans the trials out over OCaml 5 domains ({!Pool}); results
    are bit-identical to the serial run for any worker count because every
    trial's seed is pre-derived by {!derive_seeds} and each trial executes
    against its own fresh state.

    The observability hooks are all optional and observation-only — any
    combination leaves the summary and trial list bit-identical:
    - [profile] accumulates the execution profiles of every trial
      (per-trial instances, merged in trial order after the parallel
      phase, so worker scheduling stays unobservable);
    - [on_trial] receives [(index, trial)] for every trial, in
      deterministic seed order, after the parallel phase — the journal
      emission point;
    - [stats_out] receives the campaign's {!run_stats};
    - [progress] receives every trial's outcome as it completes, from
      whichever worker domain ran it ({!Progress} is thread-safe) — the
      live-telemetry heartbeat; its final snapshot fires before [run]
      returns;
    - [trace] attaches a flight recorder ({!Obs.Trace.recorder}): one
      duration span per campaign phase (golden run, fork capture, trial
      phase) on track 0, plus {!Pool.map}'s per-worker and per-chunk
      spans — render with {!Obs.Trace.to_chrome}.

    [taint_trace] runs every trial with the fault-propagation tracer
    attached ({!Interp.Taint}); outcomes, step and cycle counts are
    bit-identical to an untraced campaign, each trial just additionally
    carries its propagation summary.  The golden run stays untraced —
    without an injection there is nothing to seed. *)
let run ?(hw_window = Classify.default_hw_window) ?(seed = 0xC0FFEE)
    ?(fault_kind = Interp.Machine.Register_bit) ?(domains = 1)
    ?(checkpoint_interval = 0) ?(taint_trace = false) ?(fork = true)
    ?(fork_snapshots = 32) ?fork_stride ?profile ?on_trial ?stats_out
    ?progress ?trace subject ~trials =
  let t_start = Unix.gettimeofday () in
  (* The golden also runs with checkpointing so its cycle count carries the
     fault-free overhead of the recovery configuration; its output and step
     count (the fault window) are interval-independent. *)
  let golden =
    Obs.Trace.with_dur trace ~cat:"campaign" "golden_run" (fun () ->
      golden_run ~checkpoint_interval subject)
  in
  let t_golden = Unix.gettimeofday () in
  let disabled = Hashtbl.create 8 in
  List.iter (fun uid -> Hashtbl.replace disabled uid ()) golden.failing_checks;
  let seeds = derive_seeds ~seed ~trials in
  let compiled = Interp.Compiled.cached subject.prog in
  (* Golden-prefix snapshot capture (DESIGN.md §12): one extra fault-free
     pass records resumable snapshots every [stride] steps, so trials skip
     their fault-free prefix.  Skipped when profiling — a profiled trial
     must observe its whole execution, not just the post-fork suffix. *)
  let fork_snaps =
    if (not fork) || profile <> None || trials = 0 || golden.steps <= 1 then
      None
    else
      Obs.Trace.with_dur trace ~cat:"campaign" "fork_capture" (fun () ->
      let stride =
        match fork_stride with
        | Some s -> max 1 s
        | None -> max 1 (golden.steps / max 1 fork_snapshots)
      in
      let plan = Interp.Fork.plan ~stride in
      let state = subject.fresh_state () in
      let config =
        { Interp.Machine.default_config with
          mode = Interp.Machine.Record; checkpoint_interval }
      in
      let r =
        Interp.Machine.run_compiled ~config ~fork_capture:plan compiled
          ~entry:subject.entry ~args:state.args ~mem:state.mem
      in
      (* The capture pass must replay the golden run exactly; anything
         else (a nondeterministic subject) voids the fork determinism
         argument, so fall back to from-scratch trials.  A stride larger
         than the run captures nothing and falls back the same way. *)
      match r.Interp.Machine.stop with
      | Interp.Machine.Finished _
        when r.Interp.Machine.steps = golden.steps
             && r.Interp.Machine.cycles = golden.cycles ->
        let snaps = Interp.Fork.finalize plan in
        if Array.length snaps = 0 then None else Some snaps
      | _ -> None)
  in
  (* Per-domain trial contexts, created lazily on first use and keyed by
     domain id (ids are unique among live domains, and the table dies with
     the run, so nothing leaks across campaigns).  The mutex only guards
     the table; each domain reads and writes its own key. *)
  let ctx_lock = Mutex.create () in
  let ctxs : (int, worker_ctx) Hashtbl.t = Hashtbl.create 8 in
  let get_ctx () =
    let id = (Domain.self () :> int) in
    Mutex.lock ctx_lock;
    let found = Hashtbl.find_opt ctxs id in
    Mutex.unlock ctx_lock;
    match found with
    | Some c -> c
    | None ->
      let state = subject.fresh_state () in
      let c =
        { wc_state = state;
          wc_image0 = Interp.Memory.capture state.mem;
          wc_arena = Interp.Machine.arena () }
      in
      Mutex.lock ctx_lock;
      Hashtbl.replace ctxs id c;
      Mutex.unlock ctx_lock;
      c
  in
  let t_trials = Unix.gettimeofday () in
  (* Each trial profiles into its own instance; the merge below runs in
     trial order on the calling domain, so the aggregate is deterministic
     and the hot path shares nothing across workers. *)
  let trial_profiles =
    match profile with
    | None -> [||]
    | Some _ -> Array.init trials (fun _ -> Interp.Profile.create ())
  in
  let pool_stats = ref None in
  let results =
    Obs.Trace.with_dur trace ~cat:"campaign" "trials"
      ~args:[ ("trials", Obs.Json.Int trials) ]
    @@ fun () ->
    Pool.map ~domains ~gc:Pool.campaign_gc_tuning ~stats:pool_stats ?trace
      (fun i ->
        let t =
          if Array.length trial_profiles = 0 then
            run_trial_in ~fault_kind ~compiled ~checkpoint_interval
              ~taint_trace ~ctx:(get_ctx ()) ~snaps:fork_snaps subject
              ~golden ~disabled ~hw_window ~seed:seeds.(i)
          else
            run_trial ~fault_kind ~compiled ~profile:trial_profiles.(i)
              ~checkpoint_interval ~taint_trace subject ~golden ~disabled
              ~hw_window ~seed:seeds.(i)
        in
        (match progress with
         | Some pg -> Progress.note pg t.outcome
         | None -> ());
        t)
      trials
    |> Array.to_list
  in
  (match progress with Some pg -> Progress.finish pg | None -> ());
  let t_end = Unix.gettimeofday () in
  (match profile with
   | Some dst ->
     Array.iter (fun p -> Interp.Profile.merge_into ~dst p) trial_profiles
   | None -> ());
  (match on_trial with
   | Some emit -> List.iteri emit results
   | None -> ());
  (match stats_out with
   | Some r ->
     r :=
       Some
         { golden_sec = t_golden -. t_start;
           setup_sec = t_trials -. t_golden;
           trials_sec = t_end -. t_trials;
           wall_sec = t_end -. t_start;
           domains = max 1 domains;
           pool = !pool_stats }
   | None -> ());
  let counts =
    List.map
      (fun o ->
        (o, List.length (List.filter (fun t -> t.outcome = o) results)))
      Classify.all
  in
  ({ subject_label = subject.label; trials; counts; golden_info = golden },
   results)

(** Mean of per-subject percentages, the paper's cross-benchmark average. *)
let mean_percent summaries outcomes =
  match summaries with
  | [] -> 0.0
  | _ :: _ ->
    List.fold_left
      (fun acc s -> acc +. percent_many s outcomes)
      0.0 summaries
    /. float_of_int (List.length summaries)
