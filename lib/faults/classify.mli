(** Outcome classification of a fault-injection trial (paper §IV-C).

    The five paper categories are Masked, HWDetect, SWDetect, Failure and
    USDC; we additionally keep the ASDC/USDC split of Figure 13 and the
    large/small-disturbance split of USDCs from Figure 2. *)

type outcome =
  | Masked            (** bit-identical output *)
  | Asdc              (** numerically different but acceptable output *)
  | Usdc_large        (** unacceptable; the fault caused a large value change *)
  | Usdc_small        (** unacceptable; small value change *)
  | Sw_detect         (** caught by an inserted software check *)
  | Hw_detect         (** trap (symptom) within the detection window *)
  | Failure           (** late trap, or infinite loop (fuel exhausted) *)
  | Recovered         (** check fired, checkpoint rollback replayed cleanly
                          and the output is bit-identical (DESIGN.md §9) *)
  | Unrecoverable     (** check fired with recovery enabled, but detection
                          latency exceeded the checkpoint window — or the
                          replay still failed to reproduce the golden
                          output *)

val all : outcome list
val name : outcome -> string

(** Inverse of {!name}; [None] for unknown strings (e.g. a journal written
    by a future schema). *)
val of_name : string -> outcome option

(** A symptom within this many dynamic instructions of the flip counts as
    HWDetect (paper: 1000). *)
val default_hw_window : int

(** Was the register disturbance "large"?  Integers: moved by at least
    2^16; floats: changed by more than 4x its own magnitude or became
    non-finite; branch-target corruptions always count as large. *)
val large_disturbance : Interp.Machine.injection -> bool

(** Classify one machine run.  [identical] and [acceptable] judge the
    produced output against the fault-free golden output; they are only
    consulted when the program ran to completion. *)
val classify :
  hw_window:int ->
  result:Interp.Machine.result ->
  identical:(unit -> bool) ->
  acceptable:(unit -> bool) ->
  outcome

(** Figure 11 collapses ASDCs into Masked. *)
val fig11_bucket : outcome -> string

val is_sdc : outcome -> bool
val is_usdc : outcome -> bool

(** Fault coverage as the paper defines it: Masked + SWDetect + HWDetect. *)
val is_covered : outcome -> bool
