(** Campaign trial journal: one JSONL record per trial plus a manifest.

    The journal is the per-trial telemetry the aggregate tables discard
    (paper §IV: which check fired, at what latency, for which injection)
    — the input of the [experiments report] subcommand and of detector
    placement studies à la DETOx.

    File layout: line 1 is the manifest record ([{"type":"manifest",…}]
    with schema version, config, golden reference data, timings and
    per-domain breakdown), followed by one [{"type":"trial",…}] record
    per trial, in deterministic seed order.  Journals are produced by
    {!write} from a completed campaign, or streamed through
    {!Campaign.run}'s [on_trial] hook using {!trial_record}. *)

(** Journal schema identifier, bumped on layout changes.  v2 added the
    recovery configuration to the manifest ([checkpoint_interval]) and
    optional per-trial recovery telemetry; v1 journals remain loadable.
    This is the identifier of an *untraced* journal — campaigns run with
    [taint_trace] stamp {!schema_v3} instead. *)
val schema : string

(** The previous schema identifier, still accepted by {!load}. *)
val schema_v1 : string

(** Schema identifier of a propagation-traced journal (per-trial [taint]
    summaries with {!Obs.Trace} spans); stamped only when the campaign
    actually traced, so untraced journals stay byte-identical to v2. *)
val schema_v3 : string

(** Schema identifier of a journal whose manifest carries final outcome
    statistics (per-outcome counts with Wilson 95% intervals under
    ["stats"]); stamped only when {!manifest_record} was given [counts],
    so stats-free journals keep their older identifiers. *)
val schema_v4 : string

(** Schema identifier of an adaptive stratified journal: the manifest
    carries the ["adaptive"] section (stratum definitions and tallies,
    mass-reweighted intervals, equivalent-uniform trials) and each trial
    a ["stratum"] id; stamped only when {!manifest_record} was given
    [adaptive], so uniform journals keep their older identifiers. *)
val schema_v5 : string

(** [git describe --always --dirty] of the working tree, or ["unknown"]
    outside a git checkout — pins a journal to the code that wrote it. *)
val git_describe : unit -> string

(** JSON form of one trial: index, seed, injection site/details, outcome,
    detecting check (uid + kind), detection latency, steps, cycles, and —
    for traced campaigns — the propagation summary under ["taint"]. *)
val trial_record : index:int -> Campaign.trial -> Obs.Json.t

(** JSON form of a propagation summary: scalar fields plus the retained
    events as {!Obs.Trace} spans under ["spans"]. *)
val taint_json : Interp.Taint.summary -> Obs.Json.t

(** JSON form of {!Campaign.run_stats} (phase wall times plus the
    per-domain pool breakdown) — also used by the bench harness's
    BENCH_campaign.json. *)
val stats_json : Campaign.run_stats -> Obs.Json.t

(** The campaign manifest.  [fault_kind] and [technique] are free-form
    labels; [stats] adds wall/per-domain timings when available;
    [counts] (the campaign summary's final outcome counts) adds the
    per-outcome ["stats"] object — count plus Wilson 95% interval per
    observed outcome — and stamps the manifest {!schema_v4};
    [checkpoint_interval] (default 0: recovery off) records the campaign's
    recovery configuration; [taint_trace] (default false) stamps the
    manifest {!schema_v3} and records that trials carry propagation
    summaries; [adaptive] (a {!Campaign.adaptive} result) adds the
    ["adaptive"] section and stamps {!schema_v5}; [plan] (an
    [Analysis.Plan.to_json] document) records the protection plan a
    plan-driven campaign executed, so warehouse run keys distinguish
    distinct plans. *)
val manifest_record :
  ?git:string ->
  ?technique:string ->
  ?plan:Obs.Json.t ->
  ?stats:Campaign.run_stats ->
  ?counts:(Classify.outcome * int) list ->
  ?adaptive:Campaign.adaptive ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  label:string ->
  trials:int ->
  seed:int ->
  domains:int ->
  hw_window:int ->
  fault_kind:string ->
  golden:Campaign.golden ->
  unit ->
  Obs.Json.t

(** Write a whole journal (manifest first, then the trials in list
    order).  Creates/truncates [path].  [trace] records the write as a
    [journal/write] duration span on the flight recorder. *)
val write :
  ?trace:Obs.Trace.recorder ->
  path:string -> manifest:Obs.Json.t -> trials:Campaign.trial list ->
  unit -> unit

(** Recovery telemetry read back from a v2 trial record. *)
type recovery_view = {
  rv_detect_step : int;
  rv_checkpoint_step : int;
  rv_replayed_steps : int;
  rv_wasted_cycles : int;
  rv_rollback_cycles : int;
}

(** Propagation telemetry read back from a v3 trial record.  Distances
    ([tv_first_store], [tv_first_branch], [tv_died_at], [tv_end_distance])
    are dynamic instructions from the injection. *)
type taint_view = {
  tv_seeded : bool;
  tv_reg_hwm : int;
  tv_mem_words : int;
  tv_first_store : int option;
  tv_first_branch : int option;
  tv_died_at : int option;
  tv_end_distance : int option;
  tv_output_tainted : bool;
  tv_events_total : int;
  tv_spans : Obs.Trace.span list;  (** first retained propagation events *)
}

(** A trial record read back from a journal — the aggregation view the
    [report] subcommand consumes, decoupled from the in-memory types so
    reports work across code versions. *)
type view = {
  v_index : int;
  v_seed : int;
  v_at_step : int;
  v_outcome : string;            (** {!Classify.name} spelling *)
  v_check_uid : int option;      (** detecting check, detections only *)
  v_dup_check : bool option;     (** detector kind, detections only *)
  v_latency : int option;        (** detection latency, detections only *)
  v_steps : int;
  v_cycles : int;
  v_checkpoints : int;           (** 0 for v1 journals / recovery off *)
  v_recovery : recovery_view option;  (** the trial's rollback, if any *)
  v_taint : taint_view option;   (** propagation summary, v3 traced only *)
  v_inj_reg : int option;        (** injected register, injections only *)
  v_stratum : int option;        (** stratum id, v5 adaptive trials only *)
}

exception Malformed of string

(** Stream a journal: fold [f] over every trial view in file order,
    returning the manifest and the final accumulator.  One line is parsed
    and dropped before the next is read, so arbitrarily large journals
    aggregate in constant memory.  Raises {!Malformed} on unparseable
    lines, missing required trial fields, or a file with no manifest
    record ("no manifest in <path>" — an empty file is a broken journal,
    not an empty campaign); unknown record types are ignored (forward
    compatibility), and v1 through v5 schemas all load. *)
val fold : string -> init:'a -> f:('a -> view -> 'a) -> Obs.Json.t * 'a

(** Parse a whole journal into its manifest and trial views — a thin
    wrapper over {!fold}; same errors and compatibility. *)
val load : string -> Obs.Json.t * view list
