(** Campaign trial journal: one JSONL record per trial plus a manifest.

    The journal is the per-trial telemetry the aggregate tables discard
    (paper §IV: which check fired, at what latency, for which injection)
    — the input of the [experiments report] subcommand and of detector
    placement studies à la DETOx.

    File layout: line 1 is the manifest record ([{"type":"manifest",…}]
    with schema version, config, golden reference data, timings and
    per-domain breakdown), followed by one [{"type":"trial",…}] record
    per trial, in deterministic seed order.  Journals are produced by
    {!write} from a completed campaign, or streamed through
    {!Campaign.run}'s [on_trial] hook using {!trial_record}. *)

(** Journal schema identifier, bumped on breaking layout changes. *)
val schema : string

(** [git describe --always --dirty] of the working tree, or ["unknown"]
    outside a git checkout — pins a journal to the code that wrote it. *)
val git_describe : unit -> string

(** JSON form of one trial: index, seed, injection site/details, outcome,
    detecting check (uid + kind), detection latency, steps, cycles. *)
val trial_record : index:int -> Campaign.trial -> Obs.Json.t

(** JSON form of {!Campaign.run_stats} (phase wall times plus the
    per-domain pool breakdown) — also used by the bench harness's
    BENCH_campaign.json. *)
val stats_json : Campaign.run_stats -> Obs.Json.t

(** The campaign manifest.  [fault_kind] and [technique] are free-form
    labels; [stats] adds wall/per-domain timings when available. *)
val manifest_record :
  ?git:string ->
  ?technique:string ->
  ?stats:Campaign.run_stats ->
  label:string ->
  trials:int ->
  seed:int ->
  domains:int ->
  hw_window:int ->
  fault_kind:string ->
  golden:Campaign.golden ->
  unit ->
  Obs.Json.t

(** Write a whole journal (manifest first, then the trials in list
    order).  Creates/truncates [path]. *)
val write :
  path:string -> manifest:Obs.Json.t -> trials:Campaign.trial list -> unit

(** A trial record read back from a journal — the aggregation view the
    [report] subcommand consumes, decoupled from the in-memory types so
    reports work across code versions. *)
type view = {
  v_index : int;
  v_seed : int;
  v_at_step : int;
  v_outcome : string;            (** {!Classify.name} spelling *)
  v_check_uid : int option;      (** detecting check, SWDetect only *)
  v_dup_check : bool option;     (** detector kind, SWDetect only *)
  v_latency : int option;        (** detection latency, SW/HWDetect *)
  v_steps : int;
  v_cycles : int;
}

exception Malformed of string

(** Parse a journal file into its manifest (if present) and trial views.
    Raises {!Malformed} on unparseable lines or missing required trial
    fields; unknown record types are ignored (forward compatibility). *)
val load : string -> Obs.Json.t option * view list
