(** Live campaign telemetry: a heartbeat for long fault campaigns.

    A {!t} counts completed trials and their outcomes from any worker
    domain (atomics only on the hot path) and periodically emits a
    {!snapshot} to its sinks — a human heartbeat line on stderr, a JSONL
    progress stream, or a custom sink.  Strictly observation-only: campaign
    results are bit-identical with or without a progress instance attached
    (the determinism contract of {!Campaign.run}); only the *emission
    moments* depend on wall-clock timing, never the counts' final value. *)

open Obs

(** One point-in-time progress report. *)
type snapshot = {
  pg_done : int;
  pg_total : int;
  pg_counts : (Classify.outcome * int) list;  (** running outcome counts,
                                                  in {!Classify.all} order *)
  pg_elapsed : float;     (** seconds since the instance was created *)
  pg_rate : float;        (** trials per second so far *)
  pg_eta : float;         (** estimated seconds to completion; 0 when done
                              or no rate is measurable yet *)
  pg_final : bool;        (** emitted by {!finish} *)
}

type sink = snapshot -> unit

type t = {
  total : int;
  t0 : float;
  interval : float;
  counts : int Atomic.t array;   (** indexed in {!Classify.all} order *)
  completed : int Atomic.t;
  sinks : sink list;
  lock : Mutex.t;                (** serializes sink emission *)
  mutable last_emit : float;
}

let outcome_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i o -> Hashtbl.replace tbl o i) Classify.all;
  fun o -> try Hashtbl.find tbl o with Not_found -> 0

let create ?(interval = 0.5) ?(sinks = []) ~total () =
  { total = max 0 total;
    t0 = Unix.gettimeofday ();
    interval = max 0.0 interval;
    counts = Array.init (List.length Classify.all) (fun _ -> Atomic.make 0);
    completed = Atomic.make 0;
    sinks;
    lock = Mutex.create ();
    last_emit = 0.0 }

let snapshot ?(final = false) t =
  let done_ = Atomic.get t.completed in
  let elapsed = Unix.gettimeofday () -. t.t0 in
  let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
  let eta =
    if rate > 0.0 && done_ < t.total then
      float_of_int (t.total - done_) /. rate
    else 0.0
  in
  { pg_done = done_;
    pg_total = t.total;
    pg_counts =
      List.mapi (fun i o -> (o, Atomic.get t.counts.(i))) Classify.all;
    pg_elapsed = elapsed;
    pg_rate = rate;
    pg_eta = eta;
    pg_final = final }

let emit t snap = List.iter (fun sink -> sink snap) t.sinks

(** Record one completed trial.  Safe to call from any domain; the sinks
    fire at most once per [interval] (whichever worker happens to cross the
    deadline emits — the others skip with a failed try-lock instead of
    queueing). *)
let note t outcome =
  Atomic.incr t.counts.(outcome_index outcome);
  ignore (Atomic.fetch_and_add t.completed 1);
  if t.sinks <> [] && Mutex.try_lock t.lock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let now = Unix.gettimeofday () in
        if now -. t.last_emit >= t.interval then begin
          t.last_emit <- now;
          emit t (snapshot t)
        end)

(** Emit the final snapshot unconditionally (blocking on the lock, so it
    never loses the race against a concurrent heartbeat). *)
let finish t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.last_emit <- Unix.gettimeofday ();
      emit t (snapshot ~final:true t))

let nonzero_counts snap = List.filter (fun (_, n) -> n > 0) snap.pg_counts

let stderr_sink () : sink =
 fun snap ->
  let counts =
    nonzero_counts snap
    |> List.map (fun (o, n) -> Printf.sprintf "%s:%d" (Classify.name o) n)
    |> String.concat " "
  in
  if snap.pg_final then
    Printf.eprintf "[campaign] %d/%d done in %.1fs  %.1f trials/s  %s\n%!"
      snap.pg_done snap.pg_total snap.pg_elapsed snap.pg_rate counts
  else
    Printf.eprintf
      "[campaign] %d/%d (%.1f%%)  %.1f trials/s  ETA %.1fs  %s\n%!"
      snap.pg_done snap.pg_total
      (if snap.pg_total > 0 then
         100.0 *. float_of_int snap.pg_done /. float_of_int snap.pg_total
       else 0.0)
      snap.pg_rate snap.pg_eta counts

let snapshot_json snap =
  Json.Obj
    [ ("type", Json.Str "progress");
      ("done", Json.Int snap.pg_done);
      ("total", Json.Int snap.pg_total);
      ("elapsed_sec", Json.Float snap.pg_elapsed);
      ("trials_per_sec", Json.Float snap.pg_rate);
      ("eta_sec", Json.Float snap.pg_eta);
      ("final", Json.Bool snap.pg_final);
      ("counts",
       Json.Obj
         (List.map
            (fun (o, n) -> (Classify.name o, Json.Int n))
            (nonzero_counts snap))) ]

(* Sinks are already serialized by the instance lock, so the channel needs
   no mutex of its own. *)
let jsonl_sink oc : sink =
 fun snap ->
  output_string oc (Json.to_string (snapshot_json snap));
  output_char oc '\n';
  flush oc
