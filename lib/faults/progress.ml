(** Live campaign telemetry: a heartbeat for long fault campaigns.

    A {!t} counts completed trials and their outcomes from any worker
    domain (atomics only on the hot path) and periodically emits a
    {!snapshot} to its sinks — a human heartbeat line on stderr, a JSONL
    progress stream, or a custom sink.  Strictly observation-only: campaign
    results are bit-identical with or without a progress instance attached
    (the determinism contract of {!Campaign.run}); only the *emission
    moments* depend on wall-clock timing, never the counts' final value. *)

open Obs

(** One point-in-time progress report. *)
type snapshot = {
  pg_done : int;
  pg_total : int;
  pg_counts : (Classify.outcome * int) list;  (** running outcome counts,
                                                  in {!Classify.all} order *)
  pg_elapsed : float;     (** seconds since the instance was created *)
  pg_rate : float;        (** all-time trials per second since [create] *)
  pg_window_rate : float; (** trials per second over the recent-completion
                              window — the honest instantaneous rate *)
  pg_eta : float;         (** estimated seconds to completion; 0 when done
                              or no rate is measurable yet *)
  pg_strata : int array;  (** per-stratum completed trials (adaptive
                              campaigns only; [[||]] otherwise) *)
  pg_final : bool;        (** emitted by {!finish} *)
}

type sink = snapshot -> unit

(* Completions retained for the windowed rate.  Each completion stamps its
   wall-clock offset (µs since [t0], word-sized int) at slot [i mod
   window_size]; readers reconstruct the window from [completed].  The
   array is written without synchronization — a torn window only skews the
   *estimate* in a snapshot, never a count, so this stays inside the
   observation-only contract. *)
let window_size = 256

type t = {
  total : int;
  t0 : float;
  interval : float;
  counts : int Atomic.t array;   (** indexed in {!Classify.all} order *)
  strata : int Atomic.t array;   (** per-stratum completions (adaptive) *)
  completed : int Atomic.t;
  window : int array;            (** µs offsets of recent completions *)
  sinks : sink list;
  lock : Mutex.t;                (** serializes sink emission *)
  mutable last_emit : float;
}

let outcome_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i o -> Hashtbl.replace tbl o i) Classify.all;
  fun o -> try Hashtbl.find tbl o with Not_found -> 0

let create ?(interval = 0.5) ?(sinks = []) ?(strata = 0) ~total () =
  { total = max 0 total;
    t0 = Unix.gettimeofday ();
    interval = max 0.0 interval;
    counts = Array.init (List.length Classify.all) (fun _ -> Atomic.make 0);
    strata = Array.init (max 0 strata) (fun _ -> Atomic.make 0);
    completed = Atomic.make 0;
    window = Array.make window_size 0;
    sinks;
    lock = Mutex.create ();
    last_emit = 0.0 }

let snapshot ?(final = false) t =
  let done_ = Atomic.get t.completed in
  let elapsed = Unix.gettimeofday () -. t.t0 in
  let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
  (* Rate over the last [min done_ window_size] completions.  The all-time
     rate divides by elapsed time since [create], which includes the
     golden-run/fork-capture setup before the first trial finishes — that
     inflated early ETAs badly on slow workloads.  The window starts at the
     oldest retained completion's timestamp, so setup never enters it. *)
  let window_rate =
    (* Retain one slot fewer than the ring holds: once [done_ >=
       window_size] the slot of completion [done_ - window_size] is the
       very next write target, so an in-flight completion may be
       overwriting it while we read — the classic torn read right at the
       wrap boundary. *)
    let retained = min done_ (window_size - 1) in
    if retained < 2 then rate
    else begin
      let oldest_us = t.window.((done_ - retained) mod window_size) in
      let span = elapsed -. (float_of_int oldest_us /. 1e6) in
      (* A torn slot or sub-µs span would yield an [inf] rate (and a
         non-finite JSONL heartbeat); fall back to the all-time rate on a
         degenerate window and clamp the divisor to a µs floor. *)
      if span <= 0.0 then rate
      else float_of_int retained /. Float.max span 1e-6
    end
  in
  let eta =
    if window_rate > 0.0 && done_ < t.total then
      float_of_int (t.total - done_) /. window_rate
    else 0.0
  in
  { pg_done = done_;
    pg_total = t.total;
    pg_counts =
      List.mapi (fun i o -> (o, Atomic.get t.counts.(i))) Classify.all;
    pg_elapsed = elapsed;
    pg_rate = rate;
    pg_window_rate = window_rate;
    pg_eta = eta;
    pg_strata = Array.map Atomic.get t.strata;
    pg_final = final }

let emit t snap = List.iter (fun sink -> sink snap) t.sinks

(** Record one completed trial.  Safe to call from any domain; with a
    nonzero [interval] the sinks fire at most once per [interval]
    (whichever worker happens to cross the deadline emits — the others
    skip with a failed try-lock instead of queueing), while [interval = 0]
    emits once per completion. *)
let note ?stratum t outcome =
  Atomic.incr t.counts.(outcome_index outcome);
  (match stratum with
   | Some s when s >= 0 && s < Array.length t.strata ->
     Atomic.incr t.strata.(s)
   | Some _ | None -> ());
  let i = Atomic.fetch_and_add t.completed 1 in
  t.window.(i mod window_size) <-
    int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6);
  (* interval = 0 promises one emission per completed trial (the
     per-trial JSONL contract tests and drivers rely on), so it must
     queue on the lock; a rate-limited heartbeat instead skips on
     contention — a concurrent emitter is already writing a snapshot at
     least as fresh as ours. *)
  let acquired () =
    if t.interval <= 0.0 then begin
      Mutex.lock t.lock;
      true
    end
    else Mutex.try_lock t.lock
  in
  if t.sinks <> [] && acquired () then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let now = Unix.gettimeofday () in
        if now -. t.last_emit >= t.interval then begin
          t.last_emit <- now;
          emit t (snapshot t)
        end)

(** Emit the final snapshot unconditionally (blocking on the lock, so it
    never loses the race against a concurrent heartbeat). *)
let finish t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.last_emit <- Unix.gettimeofday ();
      emit t (snapshot ~final:true t))

let nonzero_counts snap = List.filter (fun (_, n) -> n > 0) snap.pg_counts

(* Wilson 95% interval per observed outcome — streamed straight off the
   counters, so every heartbeat carries its own uncertainty. *)
let outcome_ci snap (_, k) = Stats.wilson ~k ~n:snap.pg_done ()

let stderr_sink () : sink =
 fun snap ->
  let counts =
    nonzero_counts snap
    |> List.map (fun ((o, n) as c) ->
         Printf.sprintf "%s:%d(%s)" (Classify.name o) n
           (Stats.pp_pct (outcome_ci snap c)))
    |> String.concat " "
  in
  if snap.pg_final then
    Printf.eprintf "[campaign] %d/%d done in %.1fs  %.1f trials/s  %s\n%!"
      snap.pg_done snap.pg_total snap.pg_elapsed snap.pg_rate counts
  else
    Printf.eprintf
      "[campaign] %d/%d (%.1f%%)  %.1f trials/s  ETA %.1fs  %s\n%!"
      snap.pg_done snap.pg_total
      (if snap.pg_total > 0 then
         100.0 *. float_of_int snap.pg_done /. float_of_int snap.pg_total
       else 0.0)
      snap.pg_window_rate snap.pg_eta counts

let snapshot_json snap =
  let strata =
    if Array.length snap.pg_strata = 0 then []
    else
      [ ("strata",
         Json.List
           (Array.to_list (Array.map (fun n -> Json.Int n) snap.pg_strata)))
      ]
  in
  Json.Obj
    ([ ("type", Json.Str "progress");
       ("done", Json.Int snap.pg_done);
       ("total", Json.Int snap.pg_total);
       ("elapsed_sec", Json.Float snap.pg_elapsed);
       ("trials_per_sec", Json.Float snap.pg_rate);
       ("window_trials_per_sec", Json.Float snap.pg_window_rate);
       ("eta_sec", Json.Float snap.pg_eta);
       ("final", Json.Bool snap.pg_final) ]
     @ strata
     @ [ ("counts",
          Json.Obj
            (List.map
               (fun (o, n) -> (Classify.name o, Json.Int n))
               (nonzero_counts snap)));
         ("ci",
          Json.Obj
            (List.map
               (fun ((o, _) as c) ->
                 (Classify.name o, Stats.to_json (outcome_ci snap c)))
               (nonzero_counts snap))) ])

(* Sinks are already serialized by the instance lock, so the channel needs
   no mutex of its own. *)
let jsonl_sink oc : sink =
 fun snap ->
  output_string oc (Json.to_string (snapshot_json snap));
  output_char oc '\n';
  flush oc
