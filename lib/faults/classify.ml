(** Outcome classification of a fault-injection trial (paper §IV-C).

    The five paper categories are Masked, HWDetect, SWDetect, Failure and
    USDC; we additionally keep the ASDC/USDC split of Figure 13 (SDCs whose
    output is still of acceptable quality) and the large/small-disturbance
    split of USDCs from Figure 2. *)

type outcome =
  | Masked            (** bit-identical output *)
  | Asdc              (** numerically different but acceptable output *)
  | Usdc_large        (** unacceptable; flip caused a large value change *)
  | Usdc_small        (** unacceptable; flip caused a small value change *)
  | Sw_detect         (** caught by an inserted software check *)
  | Hw_detect         (** trap (symptom) within the detection window *)
  | Failure           (** late trap, or infinite loop (fuel exhausted) *)
  | Recovered         (** check fired, checkpoint rollback replayed cleanly
                          and the output is bit-identical (DESIGN.md §9) *)
  | Unrecoverable     (** check fired with recovery enabled, but detection
                          latency exceeded the checkpoint window — or the
                          replay still failed to reproduce the golden
                          output *)

let all =
  [ Masked; Asdc; Usdc_large; Usdc_small; Sw_detect; Hw_detect; Failure;
    Recovered; Unrecoverable ]

let name = function
  | Masked -> "Masked"
  | Asdc -> "ASDC"
  | Usdc_large -> "USDC(large)"
  | Usdc_small -> "USDC(small)"
  | Sw_detect -> "SWDetect"
  | Hw_detect -> "HWDetect"
  | Failure -> "Failure"
  | Recovered -> "Recovered"
  | Unrecoverable -> "Unrecoverable"

let of_name = function
  | "Masked" -> Some Masked
  | "ASDC" -> Some Asdc
  | "USDC(large)" -> Some Usdc_large
  | "USDC(small)" -> Some Usdc_small
  | "SWDetect" -> Some Sw_detect
  | "HWDetect" -> Some Hw_detect
  | "Failure" -> Some Failure
  | "Recovered" -> Some Recovered
  | "Unrecoverable" -> Some Unrecoverable
  | _ -> None

(** Paper defaults: a symptom within 1000 dynamic instructions of the flip
    counts as HWDetect (§IV-C). *)
let default_hw_window = 1000

(** Was the register disturbance "large"?  Integers: the flip moved the
    value by at least 2^16; floats: the value changed by more than 4x its
    own magnitude (or became non-finite). *)
let large_disturbance (inj : Interp.Machine.injection) =
  match inj.inj_kind with
  | Interp.Machine.Branch_target -> true
  | Interp.Machine.Register_bit ->
  let d = Ir.Value.disturbance ~before:inj.before ~after:inj.after in
  match inj.before with
  | Ir.Value.Int _ -> d >= 65536.0
  | Ir.Value.Float f ->
    (not (Float.is_finite d)) || d > 4.0 *. (Float.abs f +. 1e-9)

(** Classify one finished-or-stopped machine run.

    [acceptable] and [identical] judge the produced output against the
    fault-free golden output; they are only consulted when the program ran
    to completion. *)
let classify ~hw_window ~(result : Interp.Machine.result)
    ~identical ~acceptable =
  match result.stop with
  | Interp.Machine.Sw_detected _ ->
    (* With recovery enabled, a check that still *stops* the run means the
       rollback was denied: no retained checkpoint predated the fault. *)
    if result.rollback_denied then Unrecoverable else Sw_detect
  | Interp.Machine.Out_of_fuel -> Failure
  | Interp.Machine.Trapped _ ->
    (match result.injection with
     | Some inj when result.steps - inj.inj_step <= hw_window -> Hw_detect
     | Some _ -> Failure
     | None -> Failure)
  | Interp.Machine.Finished _ ->
    (match result.recovered with
     | Some _ ->
       (* The run detected, rolled back and replayed to completion: full
          recovery iff the output is the golden one. *)
       if identical () then Recovered else Unrecoverable
     | None ->
       if identical () then Masked
       else if acceptable () then Asdc
       else begin
         match result.injection with
         | Some inj when large_disturbance inj -> Usdc_large
         | Some _ -> Usdc_small
         | None -> Usdc_small
       end)

(* Groupings used by the paper's different figures. *)

(** Figure 11 collapses ASDCs into Masked.  A recovered trial ends with
    bit-identical output, so it lands in the Masked bucket; an
    unrecoverable one is still a software detection (the check fired, the
    system just could not transparently repair). *)
let fig11_bucket = function
  | Masked | Asdc | Recovered -> "Masked"
  | Usdc_large | Usdc_small -> "USDC"
  | Sw_detect | Unrecoverable -> "SWDetect"
  | Hw_detect -> "HWDetect"
  | Failure -> "Failure"

let is_sdc = function
  | Asdc | Usdc_large | Usdc_small -> true
  | Masked | Sw_detect | Hw_detect | Failure | Recovered | Unrecoverable ->
    false

let is_usdc = function
  | Usdc_large | Usdc_small -> true
  | Masked | Asdc | Sw_detect | Hw_detect | Failure | Recovered
  | Unrecoverable -> false

(** Fault coverage as the paper defines it: Masked + SWDetect + HWDetect
    (the system continues or can trigger recovery).  Recovered and
    Unrecoverable both started as software detections, so both count. *)
let is_covered = function
  | Masked | Asdc | Sw_detect | Hw_detect | Recovered | Unrecoverable -> true
  | Usdc_large | Usdc_small | Failure -> false
