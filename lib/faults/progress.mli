(** Live campaign telemetry: a heartbeat for long fault campaigns.

    Counts completed trials and their outcomes from any worker domain and
    periodically emits a {!snapshot} to its sinks (stderr heartbeat line,
    JSONL stream, or custom).  Strictly observation-only: campaign results
    are bit-identical with or without a progress instance attached. *)

(** One point-in-time progress report. *)
type snapshot = {
  pg_done : int;
  pg_total : int;
  pg_counts : (Classify.outcome * int) list;  (** running outcome counts,
                                                  in {!Classify.all} order *)
  pg_elapsed : float;     (** seconds since the instance was created *)
  pg_rate : float;        (** all-time trials per second since [create] —
                              includes setup, so it lags early in a run *)
  pg_window_rate : float; (** trials per second over a sliding window of
                              recent completions (the instantaneous rate;
                              what the ETA is computed from) *)
  pg_eta : float;         (** estimated seconds to completion; 0 when done
                              or no rate is measurable yet *)
  pg_strata : int array;  (** per-stratum completed trials, indexed by
                              stratum id — [[||]] unless [create] was given
                              [~strata] (adaptive campaigns) *)
  pg_final : bool;        (** emitted by {!finish} *)
}

type sink = snapshot -> unit

type t

(** [create ~total ()] starts the clock.  [interval] (default 0.5 s)
    rate-limits sink emission; 0 emits on every completed trial (useful in
    tests).  [strata] (default 0) sizes the per-stratum completion
    counters for adaptive campaigns.  Sinks run serialized under the
    instance's lock, on whichever worker domain crossed the emission
    deadline. *)
val create :
  ?interval:float -> ?sinks:sink list -> ?strata:int -> total:int -> unit -> t

(** Record one completed trial and possibly emit a heartbeat.  Safe to call
    concurrently from any domain.  [stratum] additionally bumps that
    stratum's counter (ignored when out of range or strata are off). *)
val note : ?stratum:int -> t -> Classify.outcome -> unit

(** Emit the final snapshot ([pg_final = true]) unconditionally. *)
val finish : t -> unit

(** Read the current counters without emitting; [final] defaults to
    [false]. *)
val snapshot : ?final:bool -> t -> snapshot

(** Human heartbeat line on stderr, windowed rate with per-outcome Wilson
    95% intervals:
    [[campaign] 500/1000 (50.0%)  1234.5 trials/s  ETA 0.4s
     Masked:300(60.0%±4.3) …] *)
val stderr_sink : unit -> sink

(** One [{"type":"progress",…}] JSON line per emission on [oc]; the caller
    keeps the channel open for the campaign's duration. *)
val jsonl_sink : out_channel -> sink

(** JSON form of a snapshot (what {!jsonl_sink} writes). *)
val snapshot_json : snapshot -> Obs.Json.t
