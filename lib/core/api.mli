(** Public API of the reproduction: protect a workload with one of the
    paper's techniques, measure its runtime overhead, and run statistical
    fault-injection campaigns against it. *)

type technique = Transform.Pipeline.technique =
  | Original       (** unmodified program *)
  | Dup_only       (** state-variable producer-chain duplication only *)
  | Dup_valchk     (** the paper's scheme: duplication + expected-value
                       checks, Optimizations 1 and 2 applied *)
  | Full_dup       (** SWIFT-style full-duplication baseline *)
  | Cfc_only       (** signature-based control-flow checking only *)
  | Dup_valchk_cfc (** the paper's scheme plus the complementary
                       signature scheme for branch-target faults (§IV-C) *)
  | Planned        (** an explicit protection plan ({!Analysis.Plan});
                       built by {!protect_plan}, not {!protect} *)

(** The four techniques of the paper's evaluation. *)
val all_techniques : technique list

(** All techniques, including the control-flow-checking extensions. *)
val extended_techniques : technique list

val technique_name : technique -> string

(** A workload protected by one technique: the transformed program plus
    the static statistics of the transformation (Figure 10 vocabulary). *)
type protected = {
  workload : Workloads.Workload.t;
  technique : technique;
  prog : Ir.Prog.t;
  static_stats : Transform.Pipeline.stats;
  profile_false_positive_info : int option;
}

(** Build a fresh program for the workload and apply the technique.  For
    the check-inserting techniques the program is first value-profiled on
    the training input (the paper's offline step); [params] tunes the
    check-derivation heuristics, [opt1]/[opt2] toggle the interaction
    optimizations (ablation), and [profile_role] supports the §V
    cross-validation study.  [lint] (default false) runs the
    transform-invariant lint ({!Analysis.Lint}) after every pipeline
    stage, raising [Analysis.Lint.Error] on any violated invariant. *)
val protect :
  ?params:Profiling.Value_profile.params ->
  ?opt1:bool ->
  ?opt2:bool ->
  ?lint:bool ->
  ?profile_role:Workloads.Workload.input_role ->
  Workloads.Workload.t ->
  technique ->
  protected

(** Build a fresh program for the workload and execute a protection plan
    on it ({!Transform.Pipeline.of_plan}).  The workload is value-profiled
    on [profile_role] only when the plan names terminator or check sites.
    [lint] (default false) lints every stage against the plan-derived
    expectation ({!Analysis.Lint.Plan}).  The plan's checkpoint interval
    is a runtime knob: pass it to {!golden}/{!campaign} yourself. *)
val protect_plan :
  ?params:Profiling.Value_profile.params ->
  ?lint:bool ->
  ?profile_role:Workloads.Workload.input_role ->
  Workloads.Workload.t ->
  Analysis.Plan.t ->
  protected

(** Wrap as a fault-campaign subject on the given input role. *)
val subject :
  ?label:string ->
  protected ->
  role:Workloads.Workload.input_role ->
  Faults.Campaign.subject

(** Fault-free reference run (simulated cycles, output, false positives).
    [profile] attaches an observation-only execution profile to the run;
    [checkpoint_interval] (default 0: off) enables rollback checkpointing,
    whose fault-free overhead then shows up in the cycle count. *)
val golden :
  ?profile:Interp.Profile.t ->
  ?checkpoint_interval:int ->
  protected ->
  role:Workloads.Workload.input_role ->
  Faults.Campaign.golden

(** Runtime overhead versus the unmodified program, as a fraction
    (0.195 = 19.5 %), in simulated cycles — the Figure 12 quantity.
    Pass [baseline] to amortize the original's golden run. *)
val overhead :
  ?baseline:Faults.Campaign.golden ->
  protected ->
  role:Workloads.Workload.input_role ->
  float

(** Statistical fault injection against the protected program.  [domains]
    fans the trials out over OCaml 5 domains; results are bit-identical
    for any worker count (see {!Faults.Campaign.run}).
    [checkpoint_interval] (default 0: off) enables checkpoint/rollback
    recovery in the golden run and every trial (DESIGN.md §9).
    [taint_trace] (default false) attaches the fault-propagation tracer
    to every trial (DESIGN.md §10): outcomes stay bit-identical, trials
    gain propagation summaries.  [profile], [on_trial], [stats_out],
    [progress] and [trace] (the campaign flight recorder) are
    {!Faults.Campaign.run}'s observation-only telemetry hooks, and
    [warehouse] is its run-filing sink. *)
val campaign :
  ?hw_window:int ->
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?checkpoint_interval:int ->
  ?taint_trace:bool ->
  ?profile:Interp.Profile.t ->
  ?on_trial:(int -> Faults.Campaign.trial -> unit) ->
  ?stats_out:Faults.Campaign.run_stats option ref ->
  ?warehouse:
    (Faults.Campaign.summary ->
    Faults.Campaign.trial list ->
    Faults.Campaign.run_stats option ->
    unit) ->
  ?progress:Faults.Progress.t ->
  ?trace:Obs.Trace.recorder ->
  protected ->
  role:Workloads.Workload.input_role ->
  Faults.Campaign.summary * Faults.Campaign.trial list

(** 95 %-confidence margin of error for a proportion observed over
    [trials] fault-injection trials (Leveugle et al., cited in §IV-C). *)
val margin_of_error : trials:int -> proportion:float -> float
