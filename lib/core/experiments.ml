(** Reproduction drivers for every table and figure of the paper's
    evaluation (see DESIGN.md §4 for the experiment index).

    [evaluate] runs the full matrix (workload x technique): protection,
    golden run, overhead and a fault-injection campaign; the per-figure
    functions slice and print that matrix the way the paper does. *)

open Faults

type cell = {
  technique : Api.technique;
  static_stats : Transform.Pipeline.stats;
  golden : Campaign.golden;
  overhead : float;                       (** vs. Original on the same input *)
  summary : Campaign.summary;
}

type bench_result = {
  workload : Workloads.Workload.t;
  cells : cell list;                      (** one per technique, in order *)
}

let find_cell r technique =
  match List.find_opt (fun c -> c.technique = technique) r.cells with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "no %s cell for %s"
         (Api.technique_name technique) r.workload.name)

(** Run the full evaluation matrix.  [trials] is per (workload, technique);
    the paper uses 1000.  [domains] parallelizes each campaign over OCaml 5
    domains without changing any result (see {!Faults.Campaign.run}).
    [log] is a structured {!Obs.Log} logger; every campaign emits a start
    event and a completion event carrying its wall-clock timings. *)
let evaluate ?(trials = 200) ?(seed = 0xC0FFEE) ?(role = Workloads.Workload.Test)
    ?(techniques = Api.all_techniques) ?(log = Obs.Log.null)
    ?domains workloads =
  List.map
    (fun (w : Workloads.Workload.t) ->
      let baseline = ref None in
      let cells =
        List.map
          (fun technique ->
            let tname = Api.technique_name technique in
            Obs.Log.info log
              ~fields:
                [ ("workload", Obs.Json.Str w.name);
                  ("technique", Obs.Json.Str tname);
                  ("trials", Obs.Json.Int trials) ]
              "campaign start";
            let p = Api.protect w technique in
            let golden = Api.golden p ~role in
            (match technique with
             | Api.Original -> baseline := Some golden
             | Api.Dup_only | Api.Dup_valchk | Api.Full_dup | Api.Cfc_only
             | Api.Dup_valchk_cfc | Api.Planned -> ());
            let overhead =
              match !baseline with
              | Some base ->
                (float_of_int golden.cycles /. float_of_int base.cycles) -. 1.0
              | None -> 0.0
            in
            let stats = ref None in
            let summary, (_ : Campaign.trial list) =
              Api.campaign p ~role ~trials ~seed ?domains ~stats_out:stats
            in
            Obs.Log.info log
              ~fields:
                ([ ("workload", Obs.Json.Str w.name);
                   ("technique", Obs.Json.Str tname);
                   ("usdc_pct",
                    Obs.Json.Float
                      (Campaign.percent_many summary
                         [ Classify.Usdc_large; Classify.Usdc_small ])) ]
                 @ (match !stats with
                    | Some (rs : Campaign.run_stats) ->
                      [ ("wall_sec", Obs.Json.Float rs.wall_sec);
                        ("trials_sec", Obs.Json.Float rs.trials_sec) ]
                    | None -> []))
              "campaign done";
            { technique; static_stats = p.static_stats; golden; overhead;
              summary })
          techniques
      in
      { workload = w; cells })
    workloads

(* ----- Figure 2: SDC breakdown of unmodified applications ----- *)

let fig2_header =
  [ "benchmark"; "SDC%"; "ASDC%"; "USDC-large%"; "USDC-small%" ]

let fig2_rows results =
  let row r =
    let c = find_cell r Api.Original in
    let p o = Campaign.percent c.summary o in
    [ r.workload.name;
      Report.pct (p Classify.Asdc +. p Classify.Usdc_large +. p Classify.Usdc_small);
      Report.pct (p Classify.Asdc);
      Report.pct (p Classify.Usdc_large);
      Report.pct (p Classify.Usdc_small) ]
  in
  let mean outs =
    Campaign.mean_percent
      (List.map (fun r -> (find_cell r Api.Original).summary) results)
      outs
  in
  List.map row results
  @ [ [ "average";
        Report.pct (mean [ Classify.Asdc; Classify.Usdc_large; Classify.Usdc_small ]);
        Report.pct (mean [ Classify.Asdc ]);
        Report.pct (mean [ Classify.Usdc_large ]);
        Report.pct (mean [ Classify.Usdc_small ]) ] ]

let print_fig2 results =
  Report.print
    ~title:"Figure 2: SDCs of unmodified applications, split into \
            acceptable and unacceptable (large/small value change)"
    ~header:fig2_header ~rows:(fig2_rows results)

(* ----- Figure 10: static transformation statistics ----- *)

let fig10_header =
  [ "benchmark"; "static IR"; "state vars"; "dup instrs"; "value chks";
    "dup%"; "chk%" ]

let fig10_rows results =
  List.map
    (fun r ->
      let s = (find_cell r Api.Dup_valchk).static_stats in
      [ r.workload.name;
        string_of_int s.original_instrs;
        string_of_int s.state_vars;
        string_of_int s.duplicated_instrs;
        string_of_int s.value_checks;
        Report.frac_pct (Transform.Pipeline.duplicated_fraction s);
        Report.frac_pct (Transform.Pipeline.value_check_fraction s) ])
    results

let print_fig10 results =
  Report.print
    ~title:"Figure 10: state variables, duplicated instructions and value \
            checks as fractions of static IR instructions (Dup + val chks)"
    ~header:fig10_header ~rows:(fig10_rows results)

(* ----- Figure 11: fault outcome classification ----- *)

let fig11_techniques = [ Api.Original; Api.Dup_only; Api.Dup_valchk ]

let fig11_header =
  [ "benchmark/technique"; "Masked%"; "SWDetect%"; "HWDetect%"; "Failure%";
    "USDC%" ]

let fig11_row_of_summary label (s : Campaign.summary) =
  let p os = Campaign.percent_many s os in
  [ label;
    Report.pct (p [ Classify.Masked; Classify.Asdc ]);
    Report.pct (p [ Classify.Sw_detect ]);
    Report.pct (p [ Classify.Hw_detect ]);
    Report.pct (p [ Classify.Failure ]);
    Report.pct (p [ Classify.Usdc_large; Classify.Usdc_small ]) ]

let fig11_rows ?(techniques = fig11_techniques) results =
  List.concat_map
    (fun r ->
      List.map
        (fun t ->
          let c = find_cell r t in
          fig11_row_of_summary
            (Printf.sprintf "%s/%s" r.workload.name (Api.technique_name t))
            c.summary)
        techniques)
    results
  @ List.map
      (fun t ->
        let summaries = List.map (fun r -> (find_cell r t).summary) results in
        let mean os = Campaign.mean_percent summaries os in
        [ Printf.sprintf "average/%s" (Api.technique_name t);
          Report.pct (mean [ Classify.Masked; Classify.Asdc ]);
          Report.pct (mean [ Classify.Sw_detect ]);
          Report.pct (mean [ Classify.Hw_detect ]);
          Report.pct (mean [ Classify.Failure ]);
          Report.pct (mean [ Classify.Usdc_large; Classify.Usdc_small ]) ])
      techniques

let print_fig11 ?techniques results =
  Report.print
    ~title:"Figure 11: fault-injection outcome classification"
    ~header:fig11_header ~rows:(fig11_rows ?techniques results)

(* ----- Figure 12: performance overhead ----- *)

let fig12_header =
  [ "benchmark"; "Dup only"; "Dup + val chks"; "Full duplication" ]

let fig12_rows results =
  let pct_of r t = 100.0 *. (find_cell r t).overhead in
  List.map
    (fun r ->
      [ r.workload.name;
        Report.pct (pct_of r Api.Dup_only);
        Report.pct (pct_of r Api.Dup_valchk);
        Report.pct (pct_of r Api.Full_dup) ])
    results
  @ (let mean t =
       List.fold_left (fun acc r -> acc +. pct_of r t) 0.0 results
       /. float_of_int (max 1 (List.length results))
     in
     [ [ "average";
         Report.pct (mean Api.Dup_only);
         Report.pct (mean Api.Dup_valchk);
         Report.pct (mean Api.Full_dup) ] ])

let print_fig12 results =
  Report.print
    ~title:"Figure 12: runtime overhead vs. unmodified (simulated cycles)"
    ~header:fig12_header ~rows:(fig12_rows results)

(* ----- Figure 13: ASDC/USDC split of SDCs per technique ----- *)

let fig13_header =
  [ "benchmark/technique"; "SDC%"; "ASDC%"; "USDC%" ]

let fig13_rows ?(techniques = fig11_techniques) results =
  List.concat_map
    (fun r ->
      List.map
        (fun t ->
          let s = (find_cell r t).summary in
          let p os = Campaign.percent_many s os in
          [ Printf.sprintf "%s/%s" r.workload.name (Api.technique_name t);
            Report.pct
              (p [ Classify.Asdc; Classify.Usdc_large; Classify.Usdc_small ]);
            Report.pct (p [ Classify.Asdc ]);
            Report.pct (p [ Classify.Usdc_large; Classify.Usdc_small ]) ])
        techniques)
    results
  @ List.map
      (fun t ->
        let summaries = List.map (fun r -> (find_cell r t).summary) results in
        let mean os = Campaign.mean_percent summaries os in
        [ Printf.sprintf "average/%s" (Api.technique_name t);
          Report.pct
            (mean [ Classify.Asdc; Classify.Usdc_large; Classify.Usdc_small ]);
          Report.pct (mean [ Classify.Asdc ]);
          Report.pct (mean [ Classify.Usdc_large; Classify.Usdc_small ]) ])
      techniques

let print_fig13 ?techniques results =
  Report.print
    ~title:"Figure 13: silent data corruptions split into acceptable and \
            unacceptable"
    ~header:fig13_header ~rows:(fig13_rows ?techniques results)

(* ----- Table I: benchmark inventory ----- *)

let table1_header =
  [ "benchmark (suite)"; "category"; "inputs"; "fidelity (threshold)" ]

let table1_rows () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      [ Printf.sprintf "%s (%s)" w.name w.suite;
        w.category;
        Printf.sprintf "%s / %s" w.train_desc w.test_desc;
        Fidelity.Metric.spec_to_string w.metric ])
    Workloads.Registry.all

let print_table1 () =
  Report.print ~title:"Table I: benchmarks and fidelity measures"
    ~header:table1_header ~rows:(table1_rows ())

(* ----- Table II: simulated machine parameters ----- *)

let print_table2 () =
  Report.print ~title:"Table II: simulated machine parameters"
    ~header:[ "parameter"; "value" ]
    ~rows:(List.map (fun (k, v) -> [ k; v ]) (Interp.Cost.describe ()))

(* ----- False positives (paper §V): value-check failures, fault-free ----- *)

let falsepos_header =
  [ "benchmark"; "value chks"; "false positives"; "instructions"; "rate" ]

let falsepos_rows results =
  List.map
    (fun r ->
      let c = find_cell r Api.Dup_valchk in
      let fp = c.golden.false_positives in
      let rate =
        if fp = 0 then "none"
        else Printf.sprintf "1 per %d" (c.golden.steps / fp)
      in
      [ r.workload.name;
        string_of_int c.static_stats.value_checks;
        string_of_int fp;
        string_of_int c.golden.steps;
        rate ])
    results

let print_falsepos results =
  Report.print
    ~title:"False positives: value-check failures on fault-free runs \
            (checks that fire are disabled after one spurious recovery)"
    ~header:falsepos_header ~rows:(falsepos_rows results)

(* ----- Cross-validation (paper §V): swap train and test inputs ----- *)

type crossval_row = {
  cv_name : string;
  normal : Campaign.summary;
  swapped : Campaign.summary;
}

(** Profile on the test input and inject on the train input (the reverse of
    the normal direction), as the paper does for jpegdec and kmeans. *)
let crossval ?(trials = 200) ?(seed = 0xBEEF) ?(names = [ "jpegdec"; "kmeans" ])
    ?domains () =
  List.map
    (fun name ->
      let w = Workloads.Registry.find name in
      let normal_p = Api.protect w Api.Dup_valchk in
      let normal, (_ : Campaign.trial list) =
        Api.campaign normal_p ~role:Workloads.Workload.Test ~trials ~seed
          ?domains
      in
      let swapped_p =
        Api.protect ~profile_role:Workloads.Workload.Test w Api.Dup_valchk
      in
      let swapped, (_ : Campaign.trial list) =
        Api.campaign swapped_p ~role:Workloads.Workload.Train ~trials ~seed
          ?domains
      in
      { cv_name = name; normal; swapped })

    names

let crossval_header =
  [ "benchmark"; "direction"; "Masked%"; "SWDetect%"; "HWDetect%"; "Failure%";
    "USDC%" ]

let crossval_rows rows =
  List.concat_map
    (fun r ->
      let line label (s : Campaign.summary) =
        let p os = Campaign.percent_many s os in
        [ r.cv_name; label;
          Report.pct (p [ Classify.Masked; Classify.Asdc ]);
          Report.pct (p [ Classify.Sw_detect ]);
          Report.pct (p [ Classify.Hw_detect ]);
          Report.pct (p [ Classify.Failure ]);
          Report.pct (p [ Classify.Usdc_large; Classify.Usdc_small ]) ]
      in
      [ line "train->test" r.normal; line "test->train" r.swapped ])
    rows

let print_crossval rows =
  Report.print
    ~title:"Cross-validation: profile/inject input roles swapped \
            (Dup + val chks)"
    ~header:crossval_header ~rows:(crossval_rows rows)

(* ----- Coverage summary (paper abstract numbers) ----- *)

let print_headline results =
  let mean_pct t os =
    Campaign.mean_percent (List.map (fun r -> (find_cell r t).summary) results) os
  in
  let sdc = [ Classify.Asdc; Classify.Usdc_large; Classify.Usdc_small ] in
  let usdc = [ Classify.Usdc_large; Classify.Usdc_small ] in
  let mean_ovh t =
    100.0
    *. (List.fold_left (fun acc r -> acc +. (find_cell r t).overhead) 0.0 results
        /. float_of_int (max 1 (List.length results)))
  in
  Printf.printf
    "\n== Headline (paper: SDC 15%%->7.3%%, USDC 3.4%%->1.2%% at 19.5%% \
     overhead; full dup 1.4%% USDC at 57%%) ==\n";
  Printf.printf "%-18s %8s %8s %10s\n" "technique" "SDC%" "USDC%" "overhead%";
  List.iter
    (fun t ->
      Printf.printf "%-18s %7.1f%% %7.1f%% %9.1f%%\n"
        (Api.technique_name t) (mean_pct t sdc) (mean_pct t usdc)
        (mean_ovh t))
    [ Api.Original; Api.Dup_only; Api.Dup_valchk; Api.Full_dup ];
  (* The Â§V comparison quantity: what fraction of the unmodified
     program's USDCs the implemented detectors remove (paper: 82.5 % at
     19.5 % overhead). *)
  let usdc_orig = mean_pct Api.Original usdc in
  if usdc_orig > 0.0 then
    Printf.printf
      "USDC coverage of Dup + val chks: %.1f%% (paper Â§V: 82.5%%)\n"
      (100.0 *. (usdc_orig -. mean_pct Api.Dup_valchk usdc) /. usdc_orig)

(* ----- Ablation: the two interaction optimizations (paper §III-C) ----- *)

type ablation_row = {
  ab_label : string;
  ab_checks : int;
  ab_duplicated : int;
  ab_overhead : float;
  ab_usdc : float;
  ab_swdetect : float;
}

(** Compare Dup+val chks with each optimization toggled off, on one
    workload.  Opt. 1 removes redundant checks on one producer chain;
    Opt. 2 trades duplication for checks. *)
let ablation ?(trials = 200) ?(seed = 0xAB1A) ?domains
    (w : Workloads.Workload.t) =
  let role = Workloads.Workload.Test in
  let baseline = Api.golden (Api.protect w Api.Original) ~role in
  let configuration ~label ~opt1 ~opt2 =
    let p = Api.protect ~opt1 ~opt2 w Api.Dup_valchk in
    let overhead = Api.overhead ~baseline p ~role in
    let summary, (_ : Campaign.trial list) =
      Api.campaign p ~role ~trials ~seed ?domains
    in
    { ab_label = label;
      ab_checks = p.static_stats.value_checks;
      ab_duplicated = p.static_stats.duplicated_instrs;
      ab_overhead = overhead;
      ab_usdc =
        Campaign.percent_many summary [ Classify.Usdc_large; Classify.Usdc_small ];
      ab_swdetect = Campaign.percent summary Classify.Sw_detect }
  in
  [ configuration ~label:"both optimizations" ~opt1:true ~opt2:true;
    configuration ~label:"without opt 1" ~opt1:false ~opt2:true;
    configuration ~label:"without opt 2" ~opt1:true ~opt2:false;
    configuration ~label:"without either" ~opt1:false ~opt2:false;
  ]

let print_ablation w rows =
  Report.print
    ~title:
      (Printf.sprintf
         "Ablation on %s: interaction optimizations of Dup + val chks"
         w.Workloads.Workload.name)
    ~header:[ "configuration"; "checks"; "dup instrs"; "overhead"; "SWDetect%"; "USDC%" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.ab_label;
             string_of_int r.ab_checks;
             string_of_int r.ab_duplicated;
             Report.pct (100.0 *. r.ab_overhead);
             Report.pct r.ab_swdetect;
             Report.pct r.ab_usdc ])
         rows)

(* ----- Detection latency (paper §IV-D): the window recovery must cover ----- *)

type latency_row = {
  lat_label : string;
  lat_detections : int;
  lat_mean : float;
  lat_median : int;
  lat_p95 : int;
  lat_within_1000 : float;   (** fraction of detections within the ~1000
                                 instruction checkpoint the paper assumes *)
}

let latency_of_trials label trials =
  let latencies =
    List.filter_map (fun t -> t.Campaign.detect_latency) trials
    |> List.sort compare
  in
  let n = List.length latencies in
  if n = 0 then
    { lat_label = label; lat_detections = 0; lat_mean = 0.0; lat_median = 0;
      lat_p95 = 0; lat_within_1000 = 0.0 }
  else begin
    let arr = Array.of_list latencies in
    let mean =
      float_of_int (Array.fold_left ( + ) 0 arr) /. float_of_int n
    in
    let within =
      float_of_int (List.length (List.filter (fun l -> l <= 1000) latencies))
      /. float_of_int n
    in
    { lat_label = label; lat_detections = n; lat_mean = mean;
      lat_median = arr.(n / 2); lat_p95 = arr.(min (n - 1) (n * 95 / 100));
      lat_within_1000 = within }
  end

(** Detection-latency study: how many dynamic instructions pass between a
    flip and its detection, per technique.  A checkpoint-based recovery
    needs state at least that old (the paper argues ~1000 instructions). *)
let latency ?(trials = 300) ?(seed = 0x1A7) ?domains workloads =
  List.concat_map
    (fun (w : Workloads.Workload.t) ->
      List.map
        (fun technique ->
          let p = Api.protect w technique in
          let (_ : Campaign.summary), trial_list =
            Api.campaign p ~role:Workloads.Workload.Test ~trials ~seed ?domains
          in
          latency_of_trials
            (Printf.sprintf "%s/%s" w.name (Api.technique_name technique))
            trial_list)
        [ Api.Dup_only; Api.Dup_valchk ])
    workloads

let print_latency rows =
  Report.print
    ~title:
      "Detection latency: dynamic instructions between fault and detection \
       (SWDetect + HWDetect)"
    ~header:
      [ "benchmark/technique"; "detections"; "mean"; "median"; "p95";
        "within 1000" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.lat_label;
             string_of_int r.lat_detections;
             Printf.sprintf "%.0f" r.lat_mean;
             string_of_int r.lat_median;
             string_of_int r.lat_p95;
             Report.frac_pct r.lat_within_1000 ])
         rows)

(* ----- Checkpoint/rollback recovery (DESIGN.md §9): what turning the
   detections into transparent repairs costs, as a function of how often
   state is checkpointed ----- *)

type recovery_row = {
  rc_interval : int;        (** checkpoint interval; 0 = recovery off *)
  rc_overhead : float;      (** fault-free checkpointing overhead vs. the
                                same protected program without it *)
  rc_swdetect : float;      (** % of trials still stopping at a check *)
  rc_recovered : float;     (** % rolled back and replayed to the golden
                                output *)
  rc_unrecoverable : float; (** % whose detection outran the checkpoints *)
  rc_usdc : float;          (** % unacceptable SDCs (recovery-independent) *)
  rc_mean_replay : float;   (** mean replayed steps over recovered trials *)
  rc_mean_ckpts : float;    (** mean checkpoints taken per trial *)
}

(** Sweep the checkpoint interval on one protected workload: the runtime
    cost of checkpointing more often against the fraction of
    software-detected faults that become transparent recoveries.  The
    paper's §IV-D argument — detection latencies are almost always under
    ~1000 instructions — predicts that an interval around 1000 already
    recovers nearly every detection while keeping overhead low.  The first
    returned row is the recovery-off baseline. *)
let recovery ?(trials = 300) ?(seed = 0x5EC0) ?domains
    ?(technique = Api.Dup_valchk) ?(intervals = [ 250; 500; 1000; 2000; 4000 ])
    (w : Workloads.Workload.t) =
  let role = Workloads.Workload.Test in
  let p = Api.protect w technique in
  let base = Api.golden p ~role in
  let mean = function
    | [] -> 0.0
    | l ->
      float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let row interval =
    let summary, trial_list =
      Api.campaign p ~role ~trials ~seed ?domains
        ~checkpoint_interval:interval
    in
    let golden = summary.Campaign.golden_info in
    { rc_interval = interval;
      rc_overhead =
        (float_of_int golden.Campaign.cycles /. float_of_int base.Campaign.cycles)
        -. 1.0;
      rc_swdetect = Campaign.percent summary Classify.Sw_detect;
      rc_recovered = Campaign.percent summary Classify.Recovered;
      rc_unrecoverable = Campaign.percent summary Classify.Unrecoverable;
      rc_usdc =
        Campaign.percent_many summary
          [ Classify.Usdc_large; Classify.Usdc_small ];
      rc_mean_replay =
        mean
          (List.filter_map
             (fun (t : Campaign.trial) ->
               Option.map
                 (fun (r : Interp.Machine.recovery) -> r.rec_replayed_steps)
                 t.recovery)
             trial_list);
      rc_mean_ckpts =
        mean (List.map (fun (t : Campaign.trial) -> t.Campaign.checkpoints)
                trial_list) }
  in
  row 0 :: List.map row intervals

let print_recovery w rows =
  Report.print
    ~title:
      (Printf.sprintf
         "Checkpoint/rollback recovery on %s: interval vs. overhead vs. \
          recovered fraction (paper argues a ~1000-instruction window \
          suffices)"
         w.Workloads.Workload.name)
    ~header:
      [ "interval"; "overhead"; "SWDetect%"; "Recovered%"; "Unrecov%";
        "USDC%"; "mean replay"; "ckpts/trial" ]
    ~rows:
      (List.map
         (fun r ->
           [ (if r.rc_interval = 0 then "off" else string_of_int r.rc_interval);
             Report.pct (100.0 *. r.rc_overhead);
             Report.pct r.rc_swdetect;
             Report.pct r.rc_recovered;
             Report.pct r.rc_unrecoverable;
             Report.pct r.rc_usdc;
             Printf.sprintf "%.0f" r.rc_mean_replay;
             Printf.sprintf "%.1f" r.rc_mean_ckpts ])
         rows)

(* ----- Branch-target faults (paper §IV-C): the class the paper defers to
   signature-based control-flow checking ----- *)

type branchfault_row = {
  bf_label : string;
  bf_summary : Campaign.summary;
}

(** Inject branch-target corruptions (instead of register bit flips) and
    compare the paper's scheme with and without the complementary
    signature-based control-flow checking. *)
let branch_faults ?(trials = 200) ?(seed = 0xB4A) ?domains workloads =
  List.concat_map
    (fun (w : Workloads.Workload.t) ->
      List.map
        (fun technique ->
          let p = Api.protect w technique in
          let subject = Api.subject p ~role:Workloads.Workload.Test in
          let summary, (_ : Campaign.trial list) =
            Campaign.run ~seed ~fault_kind:Interp.Machine.Branch_target
              ?domains subject ~trials
          in
          { bf_label =
              Printf.sprintf "%s/%s" w.name (Api.technique_name technique);
            bf_summary = summary })
        [ Api.Original; Api.Dup_valchk; Api.Dup_valchk_cfc ])
    workloads

let print_branch_faults rows =
  Report.print
    ~title:
      "Branch-target faults: outcomes when the corrupted value is a branch \
       target (the paper's scheme needs the complementary CFC signatures \
       here)"
    ~header:
      [ "benchmark/technique"; "Masked%"; "SWDetect%"; "HWDetect%";
        "Failure%"; "USDC%" ]
    ~rows:
      (List.map
         (fun r ->
           let p os = Campaign.percent_many r.bf_summary os in
           [ r.bf_label;
             Report.pct (p [ Classify.Masked; Classify.Asdc ]);
             Report.pct (p [ Classify.Sw_detect ]);
             Report.pct (p [ Classify.Hw_detect ]);
             Report.pct (p [ Classify.Failure ]);
             Report.pct (p [ Classify.Usdc_large; Classify.Usdc_small ]) ])
         rows)

(* ----- Detection sources: which kind of check catches what ----- *)

type sources_row = {
  src_label : string;
  src_swdetect : int;
  src_dup_checks : int;     (** caught by a duplication compare *)
  src_value_checks : int;   (** caught by an expected-value check *)
}

(** Decompose SWDetect by detector kind — the anatomy of the Dup only vs.
    Dup + val chks gap.  Under Dup only every detection is a duplication
    compare; under the full scheme the value checks add coverage on the
    non-state computation. *)
let detection_sources ?(trials = 300) ?(seed = 0x5EC) ?domains workloads =
  List.concat_map
    (fun (w : Workloads.Workload.t) ->
      List.map
        (fun technique ->
          let p = Api.protect w technique in
          let (_ : Campaign.summary), trial_list =
            Api.campaign p ~role:Workloads.Workload.Test ~trials ~seed ?domains
          in
          let detections =
            List.filter_map (fun t -> t.Campaign.detected_by) trial_list
          in
          { src_label =
              Printf.sprintf "%s/%s" w.name (Api.technique_name technique);
            src_swdetect = List.length detections;
            src_dup_checks =
              List.length
                (List.filter
                   (fun (d : Interp.Machine.detection) -> d.dup_check)
                   detections);
            src_value_checks =
              List.length
                (List.filter
                   (fun (d : Interp.Machine.detection) -> not d.dup_check)
                   detections) })
        [ Api.Dup_only; Api.Dup_valchk ])
    workloads

let print_detection_sources rows =
  Report.print
    ~title:"Detection sources: SWDetect decomposed by detector kind"
    ~header:[ "benchmark/technique"; "SWDetect"; "dup checks"; "value checks" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.src_label;
             string_of_int r.src_swdetect;
             string_of_int r.src_dup_checks;
             string_of_int r.src_value_checks ])
         rows)

(* ----- CSV export for downstream plotting ----- *)

(** Comma-separated form of the full evaluation matrix: one row per
    (benchmark, technique) with outcome percentages, overhead and static
    statistics — the file a plotting script would consume to redraw the
    paper's figures. *)
let to_csv results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "benchmark,technique,trials,masked_pct,asdc_pct,usdc_large_pct,\
     usdc_small_pct,swdetect_pct,hwdetect_pct,failure_pct,overhead_pct,\
     static_instrs,state_vars,duplicated,value_checks,golden_cycles,\
     false_positives\n";
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          let p o = Campaign.percent c.summary o in
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d,%d,%d,%d\n"
               (Report.csv_field r.workload.Workloads.Workload.name)
               (Report.csv_field (Api.technique_name c.technique))
               c.summary.trials (p Classify.Masked) (p Classify.Asdc)
               (p Classify.Usdc_large) (p Classify.Usdc_small)
               (p Classify.Sw_detect) (p Classify.Hw_detect)
               (p Classify.Failure)
               (100.0 *. c.overhead)
               c.static_stats.original_instrs c.static_stats.state_vars
               c.static_stats.duplicated_instrs c.static_stats.value_checks
               c.golden.cycles c.golden.false_positives))
        r.cells)
    results;
  Buffer.contents buf

let write_csv path results =
  let oc = open_out path in
  output_string oc (to_csv results);
  close_out oc

(* ----- Journal reports: aggregate a campaign trial journal (see
   Faults.Journal) into the paper-style per-check and latency views that
   the end-of-campaign summary tables discard ----- *)

(* [stats] is the manifest's final-stats object (["stats"], journal v4+).
   The CI column renders only from it: a pre-v4 journal carries no final
   intervals, and recomputing them from replayed views would silently
   report confidence the journal never recorded — those rows degrade to
   "—" instead.  Outcomes the manifest omits were unobserved (k = 0), so
   their interval is recomputed from the zero count, which is exactly what
   the writer would have stamped. *)
let journal_outcome_rows ?stats (views : Faults.Journal.view list) =
  let trials = List.length views in
  let total = max 1 trials in
  List.map
    (fun o ->
      let name = Classify.name o in
      let n =
        List.length
          (List.filter
             (fun (v : Faults.Journal.view) -> v.v_outcome = name)
             views)
      in
      let ci =
        match stats with
        | None -> "\xe2\x80\x94"   (* — : pre-v4 journal, no final stats *)
        | Some stats ->
          let iv =
            match Obs.Json.member name stats with
            | Some entry ->
              let f field =
                Option.bind (Obs.Json.member field entry) Obs.Json.to_float
              in
              (match (f "lo", f "hi") with
               | Some lo, Some hi -> (lo, hi)
               | _ ->
                 let iv = Obs.Stats.wilson ~k:n ~n:trials () in
                 (iv.Obs.Stats.ci_low, iv.Obs.Stats.ci_high))
            | None ->
              let iv = Obs.Stats.wilson ~k:n ~n:trials () in
              (iv.Obs.Stats.ci_low, iv.Obs.Stats.ci_high)
          in
          Printf.sprintf "[%.1f, %.1f]" (100.0 *. fst iv) (100.0 *. snd iv)
      in
      [ name; string_of_int n;
        Report.pct (100.0 *. float_of_int n /. float_of_int total);
        ci ])
    Classify.all

(** Detection-latency histogram (log2 buckets) over every trial that
    recorded a latency — the distribution a checkpoint-recovery scheme
    must cover (paper §IV-D). *)
let journal_latency_rows (views : Faults.Journal.view list) =
  let reg = Obs.Metrics.registry () in
  let h = Obs.Metrics.histogram reg "detect_latency" in
  List.iter
    (fun (v : Faults.Journal.view) ->
      match v.v_latency with
      | Some l -> Obs.Metrics.observe h l
      | None -> ())
    views;
  let total = max 1 (Obs.Metrics.hist_count h) in
  let cumulative = ref 0 in
  let bucket_rows =
    List.map
      (fun (lo, hi, n) ->
        cumulative := !cumulative + n;
        [ Printf.sprintf "[%d, %d)" lo hi;
          string_of_int n;
          Report.pct (100.0 *. float_of_int !cumulative /. float_of_int total)
        ])
      (Obs.Metrics.hist_buckets h)
  in
  (* Interpolated quantiles straight from the histogram; tighter than the
     bucket upper bounds once log2 buckets get wide. *)
  let quantile_rows =
    if Obs.Metrics.hist_count h = 0 then []
    else
      List.map
        (fun (label, q) ->
          [ label; string_of_int (Obs.Metrics.approx_quantile h q); "" ])
        [ ("~p50", 0.5); ("~p95", 0.95); ("~p99", 0.99) ]
  in
  bucket_rows @ quantile_rows

(* Latencies of the SWDetect trials a given check caught, plus helpers. *)
let check_groups (views : Faults.Journal.view list) =
  let by_uid : (int, bool * int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (v : Faults.Journal.view) ->
      match v.v_check_uid with
      | None -> ()
      | Some uid ->
        let dup = match v.v_dup_check with Some d -> d | None -> false in
        let lats =
          match Hashtbl.find_opt by_uid uid with
          | Some (_, l) -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace by_uid uid (dup, l);
            l
        in
        (match v.v_latency with Some l -> lats := l :: !lats | None -> ()))
    views;
  Hashtbl.fold
    (fun uid (dup, lats) acc -> (uid, dup, List.sort compare !lats) :: acc)
    by_uid []
  |> List.sort (fun (ua, _, la) (ub, _, lb) ->
         match compare (List.length lb) (List.length la) with
         | 0 -> compare ua ub
         | c -> c)

let mean_of = function
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let nth_pct sorted p =
  match sorted with
  | [] -> 0
  | _ :: _ ->
    let n = List.length sorted in
    List.nth sorted (min (n - 1) (n * p / 100))

(** Per-check firing table: which detector catches how many faults, at
    what latency — the Table I / Figure 9 style decomposition DETOx-like
    placement studies need. *)
let journal_check_rows (views : Faults.Journal.view list) =
  let detections =
    List.length
      (List.filter
         (fun (v : Faults.Journal.view) -> v.v_check_uid <> None)
         views)
  in
  List.map
    (fun (uid, dup, lats) ->
      let fires =
        List.length
          (List.filter
             (fun (v : Faults.Journal.view) -> v.v_check_uid = Some uid)
             views)
      in
      [ string_of_int uid;
        (if dup then "dup" else "value");
        string_of_int fires;
        Report.pct
          (100.0 *. float_of_int fires /. float_of_int (max 1 detections));
        Printf.sprintf "%.0f" (mean_of lats);
        string_of_int (nth_pct lats 50);
        string_of_int (nth_pct lats 95) ])
    (check_groups views)

let journal_check_csv (views : Faults.Journal.view list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "check_uid,kind,fires,share_of_swdetect_pct,mean_latency,p50_latency,\
     p95_latency\n";
  List.iter
    (fun row ->
      (* The table rows are already plain numbers plus a % suffix;
         [csv_row] still quotes anything that would break the format. *)
      Buffer.add_string buf
        (Report.csv_row
           (List.map
              (fun cell ->
                match String.index_opt cell '%' with
                | Some i -> String.sub cell 0 i
                | None -> cell)
              row));
      Buffer.add_char buf '\n')
    (journal_check_rows views);
  Buffer.contents buf

(** Recovery aggregation over a v2 journal: how often the rollback path
    ran, how much work it replayed, what the checkpoints cost.  Empty for
    v1 journals and recovery-off campaigns. *)
let journal_recovery_rows (views : Faults.Journal.view list) =
  let recovered =
    List.filter_map (fun (v : Faults.Journal.view) -> v.v_recovery) views
  in
  let unrecoverable =
    List.length
      (List.filter
         (fun (v : Faults.Journal.view) -> v.v_outcome = "Unrecoverable")
         views)
  in
  if recovered = [] && unrecoverable = 0 then []
  else begin
    let replayed =
      List.sort compare
        (List.map
           (fun (r : Faults.Journal.recovery_view) -> r.rv_replayed_steps)
           recovered)
    in
    let rollback_cycles =
      List.map
        (fun (r : Faults.Journal.recovery_view) -> r.rv_rollback_cycles)
        recovered
    in
    let ckpts =
      List.map (fun (v : Faults.Journal.view) -> v.v_checkpoints) views
    in
    [ [ "recovered trials"; string_of_int (List.length recovered) ];
      [ "unrecoverable trials"; string_of_int unrecoverable ];
      [ "mean replayed steps"; Printf.sprintf "%.0f" (mean_of replayed) ];
      [ "p50 replayed steps"; string_of_int (nth_pct replayed 50) ];
      [ "p95 replayed steps"; string_of_int (nth_pct replayed 95) ];
      [ "mean rollback cycles";
        Printf.sprintf "%.0f" (mean_of rollback_cycles) ];
      [ "mean checkpoints/trial"; Printf.sprintf "%.1f" (mean_of ckpts) ] ]
  end

(* ----- Propagation report (journal v3 taint summaries) ----- *)

(* The (view, taint) pairs of every traced trial in the journal; empty for
   v1/v2 journals and untraced campaigns, which switches the whole
   propagation section off. *)
let journal_taints (views : Faults.Journal.view list) =
  List.filter_map
    (fun (v : Faults.Journal.view) ->
      Option.map (fun t -> (v, t)) v.v_taint)
    views

let log2_bucket d =
  if d < 1 then (0, 1)
  else begin
    let lo = ref 1 in
    while d >= !lo * 2 do
      lo := !lo * 2
    done;
    (!lo, !lo * 2)
  end

(** Latency vs. breadth: how widely taint had spread by the time the trial
    ended (detection, completion, or death), bucketed by the propagation
    distance — the "how long does a fault stay catchable, and how big has
    the blast radius grown" view (paper §IV-D read through the tracer). *)
let journal_propagation_rows taints =
  let by_bucket = Hashtbl.create 16 in
  List.iter
    (fun ((_ : Faults.Journal.view), (t : Faults.Journal.taint_view)) ->
      match t.tv_end_distance with
      | None -> ()
      | Some d ->
        let b = log2_bucket d in
        let l =
          match Hashtbl.find_opt by_bucket b with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace by_bucket b l;
            l
        in
        l := t :: !l)
    taints;
  Hashtbl.fold (fun b l acc -> (b, !l) :: acc) by_bucket []
  |> List.sort compare
  |> List.map (fun ((lo, hi), ts) ->
         let n = List.length ts in
         let mean f = mean_of (List.map f ts) in
         let tainted_out =
           List.length
             (List.filter
                (fun (t : Faults.Journal.taint_view) -> t.tv_output_tainted)
                ts)
         in
         [ Printf.sprintf "[%d, %d)" lo hi;
           string_of_int n;
           Printf.sprintf "%.1f"
             (mean (fun (t : Faults.Journal.taint_view) -> t.tv_reg_hwm));
           Printf.sprintf "%.1f"
             (mean (fun (t : Faults.Journal.taint_view) -> t.tv_mem_words));
           Report.pct
             (100.0 *. float_of_int tainted_out /. float_of_int (max 1 n)) ])

(** Per-outcome propagation breadth: how far faults of each fate spread —
    Masked faults should die narrow, SDCs should reach the output. *)
let journal_outcome_breadth_rows taints =
  List.filter_map
    (fun o ->
      let name = Classify.name o in
      let ts =
        List.filter_map
          (fun ((v : Faults.Journal.view), t) ->
            if v.v_outcome = name then Some t else None)
          taints
      in
      match ts with
      | [] -> None
      | _ :: _ ->
        let n = List.length ts in
        let mem =
          List.sort compare
            (List.map
               (fun (t : Faults.Journal.taint_view) -> t.tv_mem_words)
               ts)
        in
        let tainted_out =
          List.length
            (List.filter
               (fun (t : Faults.Journal.taint_view) -> t.tv_output_tainted)
               ts)
        in
        Some
          [ name; string_of_int n;
            Printf.sprintf "%.1f"
              (mean_of
                 (List.map
                    (fun (t : Faults.Journal.taint_view) -> t.tv_reg_hwm)
                    ts));
            string_of_int (nth_pct mem 50);
            string_of_int (nth_pct mem 95);
            Report.pct
              (100.0 *. float_of_int tainted_out /. float_of_int n) ])
    Classify.all

(** Why the Masked trials were masked: did the taint die (overwritten /
    scrubbed before it could matter), linger in memory the output never
    read, or even reach the output with a value that happened to match?
    The tracer is a conservative over-approximation, so the last bucket is
    exactly the "tainted but value-identical" luck the paper's soft-
    computation argument predicts. *)
let journal_masked_attribution_rows taints =
  let masked =
    List.filter_map
      (fun ((v : Faults.Journal.view), t) ->
        if v.v_outcome = "Masked" then Some t else None)
      taints
  in
  match masked with
  | [] -> []
  | _ :: _ ->
    let died =
      List.filter_map
        (fun (t : Faults.Journal.taint_view) -> t.tv_died_at)
        masked
    in
    let latent =
      List.filter
        (fun (t : Faults.Journal.taint_view) ->
          t.tv_died_at = None && not t.tv_output_tainted)
        masked
    in
    let lucky =
      List.filter
        (fun (t : Faults.Journal.taint_view) -> t.tv_output_tainted)
        masked
    in
    let died_sorted = List.sort compare died in
    [ [ "masked trials (traced)"; string_of_int (List.length masked) ];
      [ "taint died before the end"; string_of_int (List.length died) ];
      [ "mean death distance"; Printf.sprintf "%.0f" (mean_of died) ];
      [ "p95 death distance"; string_of_int (nth_pct died_sorted 95) ];
      [ "latent (alive, output untouched)";
        string_of_int (List.length latent) ];
      [ "output tainted, value identical"; string_of_int (List.length lucky) ]
    ]

let print_journal_propagation taints =
  Report.print
    ~title:
      "Propagation: latency vs. breadth (log2 buckets of distance to \
       detection-or-end)"
    ~header:
      [ "distance bucket"; "trials"; "mean reg hwm"; "mean mem words";
        "output tainted" ]
    ~rows:(journal_propagation_rows taints);
  Report.print ~title:"Propagation breadth by outcome"
    ~header:
      [ "outcome"; "trials"; "mean reg hwm"; "p50 mem"; "p95 mem";
        "output tainted" ]
    ~rows:(journal_outcome_breadth_rows taints);
  match journal_masked_attribution_rows taints with
  | [] -> ()
  | rows ->
    Report.print ~title:"Masked-fault attribution (why the fault vanished)"
      ~header:[ "statistic"; "value" ] ~rows

(* ----- Single-trial propagation rendering (the trace-fault subcommand;
   the taint analogue of Interp.Trace.render) ----- *)

(** Render one traced trial's propagation events against the static
    program: one line per retained event with its distance from the
    injection and the instruction it flowed through. *)
let render_taint_events prog (s : Interp.Taint.summary) =
  let instr_text = Hashtbl.create 256 in
  Ir.Prog.iter_funcs
    (fun f ->
      Ir.Func.iter_instrs
        (fun ins ->
          Hashtbl.replace instr_text ins.Ir.Instr.uid
            (String.trim (Format.asprintf "%a" Ir.Printer.pp_instr ins)))
        f)
    prog;
  List.map
    (fun (e : Interp.Taint.event) ->
      let site =
        if e.ev_uid >= 0 then
          match Hashtbl.find_opt instr_text e.ev_uid with
          | Some t -> t
          | None -> Printf.sprintf "#%d" e.ev_uid
        else if e.ev_addr >= 0 then Printf.sprintf "mem[%d]" e.ev_addr
        else ""
      in
      Printf.sprintf "%+6d  %-7s %s"
        (e.ev_step - s.ts_inj_step)
        (Interp.Taint.kind_name e.ev_kind)
        site)
    s.ts_events

(* ----- Adaptive stratification section (journal v5): the manifest's
   "adaptive" object rendered as a per-stratum table plus the combined
   reweighted SDC interval and the equivalent-uniform price of the same
   precision — the savings headline ----- *)

let print_journal_adaptive ad =
  let strata =
    match Option.bind (Obs.Json.member "strata" ad) Obs.Json.to_list with
    | Some l -> l
    | None -> []
  in
  let rows =
    List.map
      (fun s ->
        let i name =
          Option.value ~default:0
            (Option.bind (Obs.Json.member name s) Obs.Json.to_int)
        in
        let n = i "trials" in
        let sdc_k =
          match Obs.Json.member "counts" s with
          | Some counts ->
            List.fold_left
              (fun acc name ->
                acc
                + Option.value ~default:0
                    (Option.bind (Obs.Json.member name counts)
                       Obs.Json.to_int))
              0
              [ "ASDC"; "USDC(large)"; "USDC(small)" ]
          | None -> 0
        in
        [ string_of_int (i "id");
          Option.value ~default:"?"
            (Option.bind (Obs.Json.member "group_name" s) Obs.Json.to_str);
          Printf.sprintf "[%d,%d)" (i "lo") (i "hi");
          Printf.sprintf "%.4f"
            (Option.value ~default:0.0
               (Option.bind (Obs.Json.member "mass" s) Obs.Json.to_float));
          string_of_int n;
          Obs.Stats.pp_pct (Obs.Stats.wilson ~k:sdc_k ~n ()) ])
      strata
  in
  Report.print ~title:"Adaptive stratification (journal v5)"
    ~header:[ "stratum"; "group"; "steps"; "mass"; "trials"; "SDC" ]
    ~rows;
  let flt name j =
    Option.value ~default:0.0
      (Option.bind (Obs.Json.member name j) Obs.Json.to_float)
  in
  (match Obs.Json.member "sdc" ad with
   | Some s ->
     Printf.printf
       "  combined SDC rate      : %.4f [%.4f, %.4f]  (target half-width \
        %.4f)\n"
       (flt "est" s) (flt "lo" s) (flt "hi" s) (flt "ci_target" ad)
   | None -> ());
  let int name =
    Option.bind (Obs.Json.member name ad) Obs.Json.to_int
  in
  match int "trials", int "equivalent_uniform_trials" with
  | Some t, Some e when t > 0 ->
    Printf.printf
      "  trials used            : %d (planned uniform: %d, %.1fx saved%s)\n"
      t e
      (float_of_int e /. float_of_int t)
      (match int "oracle_uniform_trials" with
       | Some o -> Printf.sprintf "; oracle uniform: %d" o
       | None -> "")
  | _, _ -> ()

let print_journal_report ~manifest (views : Faults.Journal.view list) =
  let m = manifest in
  let str name =
    match Option.bind (Obs.Json.member name m) Obs.Json.to_str with
    | Some s -> s
    | None -> "?"
  in
  let int name =
    match Option.bind (Obs.Json.member name m) Obs.Json.to_int with
    | Some i -> string_of_int i
    | None -> "?"
  in
  let checkpoint_interval =
    match Option.bind (Obs.Json.member "checkpoint_interval" m) Obs.Json.to_int
    with
    | Some i -> i
    | None -> 0   (* v1 manifest: recovery did not exist *)
  in
  Printf.printf
    "journal: %s  (schema %s, git %s, %s trials, seed %s, %s domains, \
     fault kind %s, checkpoint interval %d)\n"
    (str "label") (str "schema") (str "git") (int "trials") (int "seed")
    (int "domains") (str "fault_kind") checkpoint_interval;
  Report.print ~title:"Outcome classification (from journal)"
    ~header:[ "outcome"; "trials"; "share"; "95% CI" ]
    ~rows:(journal_outcome_rows ?stats:(Obs.Json.member "stats" m) views);
  (match Obs.Json.member "adaptive" m with
   | Some ad -> print_journal_adaptive ad
   | None -> ());
  Report.print
    ~title:"Detection latency histogram (log2 buckets, SWDetect + HWDetect)"
    ~header:[ "latency bucket"; "detections"; "cumulative" ]
    ~rows:(journal_latency_rows views);
  Report.print
    ~title:"Per-check firings (SWDetect decomposed by detecting check)"
    ~header:
      [ "check uid"; "kind"; "fires"; "share"; "mean lat"; "p50"; "p95" ]
    ~rows:(journal_check_rows views);
  (match journal_recovery_rows views with
   | [] -> ()
   | rows ->
     Report.print ~title:"Checkpoint/rollback recovery (journal v2)"
       ~header:[ "statistic"; "value" ] ~rows);
  match journal_taints views with
  | [] -> ()   (* v1/v2 journal or untraced campaign: no section *)
  | taints -> print_journal_propagation taints

(* ----- Execution-profile report (Interp.Profile) ----- *)

let print_profile ?(block_limit = 12) (p : Interp.Profile.t) =
  Report.print ~title:"Dynamic opcode mix"
    ~header:[ "opcode class"; "dynamic count"; "share" ]
    ~rows:
      (let total = max 1 (Interp.Profile.total_instrs p) in
       List.map
         (fun (name, n) ->
           [ name; string_of_int n;
             Report.pct (100.0 *. float_of_int n /. float_of_int total) ])
         (Interp.Profile.opcode_rows p));
  Report.print ~title:"Hottest blocks"
    ~header:[ "function"; "block"; "executions" ]
    ~rows:
      (List.map
         (fun (func, block, n) ->
           [ func; string_of_int block; string_of_int n ])
         (Interp.Profile.hot_blocks ~limit:block_limit p));
  match Interp.Profile.check_rows p with
  | [] -> ()
  | rows ->
    Report.print ~title:"Check activity (executions vs. fires)"
      ~header:[ "check uid"; "executed"; "fired" ]
      ~rows:
        (List.map
           (fun (uid, ex, fired) ->
             [ string_of_int uid; string_of_int ex; string_of_int fired ])
           rows)

(* ----- Static protection-coverage report (Analysis.Coverage): what the
   transformation promises on paper, next to what a fault campaign
   actually measured ----- *)

let coverage_statuses =
  [ Analysis.Coverage.Dup_checked; Analysis.Coverage.Value_checked;
    Analysis.Coverage.Dup_unchecked; Analysis.Coverage.Shadow;
    Analysis.Coverage.Check; Analysis.Coverage.Unprotected ]

let coverage_status_rows (cov : Analysis.Coverage.t) =
  let total = max 1 cov.total_instrs in
  List.map
    (fun st ->
      let n =
        match List.assoc_opt st cov.by_status with Some n -> n | None -> 0
      in
      [ Analysis.Coverage.status_name st;
        string_of_int n;
        Report.pct (100.0 *. float_of_int n /. float_of_int total) ])
    coverage_statuses

let coverage_reg_rows ?(limit = 12) (cov : Analysis.Coverage.t) =
  List.map
    (fun (r : Analysis.Coverage.reg_row) ->
      [ r.r_func;
        Printf.sprintf "r%d" r.r_reg;
        Analysis.Coverage.status_name r.r_status;
        Printf.sprintf "%.0f" r.r_exposure;
        Report.pct
          (100.0 *. r.r_exposure /. Float.max 1.0 cov.exposure_total) ])
    (Analysis.Coverage.ranked_regs ~limit cov)

let print_coverage ~label (cov : Analysis.Coverage.t) =
  Report.print
    ~title:(Printf.sprintf "%s: protection status by instruction" label)
    ~header:[ "status"; "instrs"; "share" ]
    ~rows:(coverage_status_rows cov);
  Report.print
    ~title:
      (Printf.sprintf "%s: most vulnerable register slots (%s exposure)"
         label
         (if cov.dynamic_weights then "dynamic" else "static"))
    ~header:[ "function"; "register"; "status"; "exposure"; "share" ]
    ~rows:(coverage_reg_rows cov);
  Printf.printf
    "\npredicted SDC-prone fraction: %s  (unprotected exposure %.0f of \
     %.0f)\n"
    (Report.frac_pct cov.sdc_prone_fraction)
    cov.exposure_unprotected cov.exposure_total

(** Per-instruction CSV of the coverage classification. *)
let coverage_csv (cov : Analysis.Coverage.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "func,block,uid,kind,status\n";
  List.iter
    (fun (r : Analysis.Coverage.instr_row) ->
      Buffer.add_string buf
        (Report.csv_row
           [ r.i_func; r.i_block; string_of_int r.i_uid; r.i_desc;
             Analysis.Coverage.status_name r.i_status ]);
      Buffer.add_char buf '\n')
    cov.instrs;
  Buffer.contents buf

(** Per-register CSV: protection status and liveness exposure. *)
let coverage_reg_csv (cov : Analysis.Coverage.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "func,reg,status,exposure\n";
  List.iter
    (fun (r : Analysis.Coverage.reg_row) ->
      Buffer.add_string buf
        (Report.csv_row
           [ r.r_func; string_of_int r.r_reg;
             Analysis.Coverage.status_name r.r_status;
             Printf.sprintf "%.1f" r.r_exposure ]);
      Buffer.add_char buf '\n')
    (Analysis.Coverage.ranked_regs cov);
  Buffer.contents buf

(* A journal outcome spells silent corruption when the output differed
   without any detector firing (ASDC keeps the corruption silent even
   though the quality stays acceptable). *)
let outcome_is_sdc = function
  | "ASDC" | "USDC(large)" | "USDC(small)" -> true
  | _ -> false

let outcome_is_detected = function
  | "SWDetect" | "Recovered" | "Unrecoverable" -> true
  | _ -> false

(** Join the static classification with a campaign journal: bucket every
    injected trial by the protection status of the register it hit and
    measure each bucket's outcome mix.  The validation the analyzer
    exists for: unprotected slots must show a higher measured SDC rate
    than checked ones. *)
let coverage_vs_journal_rows (cov : Analysis.Coverage.t)
    (views : Faults.Journal.view list) =
  let status_of_reg = Analysis.Coverage.reg_status cov in
  let bucket_of (v : Faults.Journal.view) =
    Option.map
      (fun reg ->
        match status_of_reg reg with
        | Some st -> Analysis.Coverage.status_name st
        | None -> "(unmapped)")
      v.v_inj_reg
  in
  let row_of name =
    let hits =
      List.filter (fun v -> bucket_of v = Some name) views
    in
    match hits with
    | [] -> None
    | _ :: _ ->
      let n = List.length hits in
      let count pred =
        List.length
          (List.filter
             (fun (v : Faults.Journal.view) -> pred v.v_outcome)
             hits)
      in
      let sdc = count outcome_is_sdc in
      let detected = count outcome_is_detected in
      let masked = count (fun o -> o = "Masked") in
      Some
        [ name; string_of_int n;
          string_of_int sdc;
          Report.pct (100.0 *. float_of_int sdc /. float_of_int n);
          Report.pct (100.0 *. float_of_int detected /. float_of_int n);
          Report.pct (100.0 *. float_of_int masked /. float_of_int n) ]
  in
  List.filter_map row_of
    (List.map Analysis.Coverage.status_name coverage_statuses
     @ [ "(unmapped)" ])

let print_coverage_vs_journal (cov : Analysis.Coverage.t)
    (views : Faults.Journal.view list) =
  Report.print
    ~title:"Static prediction vs. injected outcomes (by register hit)"
    ~header:
      [ "status of hit reg"; "trials"; "SDC"; "SDC rate"; "detected";
        "masked" ]
    ~rows:(coverage_vs_journal_rows cov views);
  let injected =
    List.filter
      (fun (v : Faults.Journal.view) -> v.v_inj_reg <> None)
      views
  in
  let n = max 1 (List.length injected) in
  let sdc =
    List.length
      (List.filter
         (fun (v : Faults.Journal.view) -> outcome_is_sdc v.v_outcome)
         injected)
  in
  Printf.printf
    "\nstatic SDC-prone fraction %s vs. measured SDC rate %s over %d \
     injected trials\n"
    (Report.frac_pct cov.sdc_prone_fraction)
    (Report.pct (100.0 *. float_of_int sdc /. float_of_int n))
    (List.length injected)

(* ----- Per-register strata (report --strata): the coverage-map join of
   print_coverage_vs_journal, but with Wilson 95% intervals on every
   stratum rate — small strata (a status few registers carry) get wide
   intervals instead of falsely precise point estimates, which is what an
   adaptive sampler would allocate further trials by ----- *)

let journal_strata_rows (cov : Analysis.Coverage.t)
    (views : Faults.Journal.view list) =
  let status_of_reg = Analysis.Coverage.reg_status cov in
  let bucket_of (v : Faults.Journal.view) =
    Option.map
      (fun reg ->
        match status_of_reg reg with
        | Some st -> Analysis.Coverage.status_name st
        | None -> "(unmapped)")
      v.v_inj_reg
  in
  let ci_cell ~k ~n =
    let iv = Obs.Stats.wilson ~k ~n () in
    Printf.sprintf "%s [%.1f, %.1f]"
      (Report.pct (100.0 *. iv.Obs.Stats.ci_estimate))
      (100.0 *. iv.Obs.Stats.ci_low)
      (100.0 *. iv.Obs.Stats.ci_high)
  in
  List.filter_map
    (fun name ->
      let hits = List.filter (fun v -> bucket_of v = Some name) views in
      match hits with
      | [] -> None
      | _ :: _ ->
        let n = List.length hits in
        let count pred =
          List.length
            (List.filter
               (fun (v : Faults.Journal.view) -> pred v.v_outcome)
               hits)
        in
        Some
          [ name; string_of_int n;
            ci_cell ~k:(count outcome_is_sdc) ~n;
            ci_cell ~k:(count outcome_is_detected) ~n;
            ci_cell ~k:(count (fun o -> o = "Masked")) ~n ])
    (List.map Analysis.Coverage.status_name coverage_statuses
     @ [ "(unmapped)" ])

let print_journal_strata (cov : Analysis.Coverage.t)
    (views : Faults.Journal.view list) =
  Report.print
    ~title:
      "Per-register strata (by status of hit register, Wilson 95% \
       intervals)"
    ~header:[ "stratum"; "trials"; "SDC"; "detected"; "masked" ]
    ~rows:(journal_strata_rows cov views)

(* ----- Bench history (bench-diff): compare two BENCH_campaign.json runs
   per workload and flag throughput regressions beyond a tolerance.  The
   gate only fires when both files report the same host_cores — numbers
   from different machines diff informationally but never fail CI ----- *)

type bench_diff_row = {
  bd_workload : string;
  bd_metric : string;         (** row label, e.g. ["serial trials/s"] *)
  bd_old : float;
  bd_new : float;
  bd_delta_pct : float;       (** (new - old) / old, percent *)
  bd_regression : bool;       (** gated metric dropped beyond tolerance *)
}

type bench_diff = {
  bd_old_cores : int;         (** -1 when the file carries no host_cores *)
  bd_new_cores : int;
  bd_comparable : bool;       (** host_cores present and equal *)
  bd_tolerance_pct : float;
  bd_rows : bench_diff_row list;
}

let bench_workload_map j =
  match Obs.Json.member "workloads" j with
  | Some (Obs.Json.List ws) ->
    List.filter_map
      (fun w ->
        Option.map
          (fun n -> (n, w))
          (Option.bind (Obs.Json.member "name" w) Obs.Json.to_str))
      ws
  | Some _ | None -> []

let bench_diff ?(tolerance_pct = 15.0) old_j new_j =
  let cores j =
    Option.value ~default:(-1)
      (Option.bind (Obs.Json.member "host_cores" j) Obs.Json.to_int)
  in
  let old_cores = cores old_j in
  let new_cores = cores new_j in
  (* Only throughputs gate (third component); the speedup row is a ratio
     of the other two and would double-report the same regression. *)
  let metrics =
    [ ("serial trials/s", "serial_trials_per_sec", true);
      ("parallel trials/s", "parallel_trials_per_sec", true);
      ("parallel speedup", "parallel_speedup", false) ]
  in
  let news = bench_workload_map new_j in
  let rows =
    List.concat_map
      (fun (name, oldw) ->
        match List.assoc_opt name news with
        | None -> []   (* workload dropped from the suite: nothing to gate *)
        | Some neww ->
          List.filter_map
            (fun (label, field, gated) ->
              match
                ( Option.bind (Obs.Json.member field oldw) Obs.Json.to_float,
                  Option.bind (Obs.Json.member field neww) Obs.Json.to_float )
              with
              | Some o, Some n when o > 0.0 ->
                let delta = 100.0 *. (n -. o) /. o in
                Some
                  { bd_workload = name; bd_metric = label; bd_old = o;
                    bd_new = n; bd_delta_pct = delta;
                    bd_regression = gated && delta < -.tolerance_pct }
              | _, _ -> None)
            metrics)
      (bench_workload_map old_j)
  in
  { bd_old_cores = old_cores; bd_new_cores = new_cores;
    bd_comparable = old_cores >= 0 && old_cores = new_cores;
    bd_tolerance_pct = tolerance_pct; bd_rows = rows }

(** Rows that should fail a perf gate: gated metrics that regressed, and
    only when the two runs came from comparable hosts. *)
let bench_diff_regressions d =
  if not d.bd_comparable then []
  else List.filter (fun r -> r.bd_regression) d.bd_rows

(* The one-line stand-down warning a driver must surface on stderr when
   the hosts are incomparable — the gate silently passing used to be
   indistinguishable from the gate passing. [None] when comparable. *)
let bench_diff_host_warning d =
  if d.bd_comparable then None
  else
    let cores c = if c < 0 then "unknown" else string_of_int c in
    Some
      (Printf.sprintf
         "WARNING: bench-diff regression gate SKIPPED — host_cores differ \
          (old %s, new %s); deltas are informational only (use \
          --require-same-host to fail instead)"
         (cores d.bd_old_cores) (cores d.bd_new_cores))

let print_bench_diff d =
  Report.print ~title:"Bench history (new vs. old)"
    ~header:[ "workload"; "metric"; "old"; "new"; "delta" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.bd_workload; r.bd_metric;
             Printf.sprintf "%.2f" r.bd_old;
             Printf.sprintf "%.2f" r.bd_new;
             Printf.sprintf "%+.1f%%%s" r.bd_delta_pct
               (if r.bd_regression then "  REGRESSION" else "") ])
         d.bd_rows);
  if not d.bd_comparable then
    Printf.printf
      "\nhost_cores differ (old %d, new %d): deltas are informational \
       only, regression gate skipped\n"
      d.bd_old_cores d.bd_new_cores
  else
    match bench_diff_regressions d with
    | [] ->
      Printf.printf "\nno regressions beyond %.0f%% tolerance\n"
        d.bd_tolerance_pct
    | regs ->
      Printf.printf "\n%d regression(s) beyond %.0f%% tolerance\n"
        (List.length regs) d.bd_tolerance_pct
