(** Protection-plan search: a Pareto frontier over the configuration
    space between the paper's fixed pipelines (DESIGN.md §16).

    The search follows the DETOx discipline: a purely static predictor
    ({!Analysis.Predict}) prices every candidate plan, pruning the space;
    fault injection only runs afterwards, on the handful of knee points
    the caller asks to validate ({!validate}).

    The searched moves are the decisions a plan encodes: duplicate one
    more producer chain (in two flavors — plain, or with the chain's
    Opt-2 terminator sites applied), then greedily place stand-alone
    value checks on the surviving frontier.  Every evaluated plan is
    archived; the frontier is the non-dominated subset within the
    overhead budget.  The three fixed pipelines are expressed as plans
    and evaluated through the same predictor, so the frontier can be
    compared against them point-for-point. *)

module Plan = Analysis.Plan
module Predict = Analysis.Predict

type point = {
  op_plan : Plan.t;
  op_label : string;
  op_fixed : bool;       (** one of the fixed-pipeline plan equivalents *)
  op_est : Predict.estimate;
}

let sdc p = p.op_est.Predict.pe_sdc_fraction
let overhead p = p.op_est.Predict.pe_overhead

(** [a] is at least as good on both axes and strictly better on one. *)
let strictly_dominates a b =
  sdc a <= sdc b && overhead a <= overhead b
  && (sdc a < sdc b || overhead a < overhead b)

type frontier = {
  fr_points : point list;  (** non-dominated, overhead ascending *)
  fr_fixed : point list;   (** the fixed-pipeline equivalents *)
  fr_dominated_fixed : (string * string) list;
      (** (fixed label, frontier label that strictly dominates it) *)
  fr_explored : int;       (** distinct plans priced *)
  fr_budget : float;       (** overhead cap applied to the frontier *)
}

(** {!Analysis.Predict.cost_model} wired to the interpreter's
    {!Interp.Cost} constants.  [checkpoint_words] approximates the words a
    checkpoint copies (live registers + undo log seal); the interpreter
    charges the exact snapshot size, the predictor a fixed estimate. *)
let cost_model ?(checkpoint_words = 256) () =
  {
    Predict.cm_instr = Interp.Cost.instr;
    cm_phi = Interp.Cost.phi;
    cm_jmp = Interp.Cost.jmp;
    cm_br = Interp.Cost.br;
    cm_ret = Interp.Cost.ret;
    cm_dup_check = Interp.Cost.dup_check;
    cm_value_check = Interp.Cost.check_kind;
    cm_shadow_slot = Interp.Cost.shadow_slot;
    cm_slack_gain = Interp.Cost.slack_gain;
    cm_slack_cost = Interp.Cost.slack_cost;
    cm_checkpoint_cycles = Interp.Cost.checkpoint ~words:checkpoint_words;
  }

(* The sites Opt-2 would check if [c] were duplicated with every amenable
   site allowed as a terminator: walk the producer web from the chain's
   back edges, stopping at chain terminators and at the first amenable
   instruction — the same order the duplication pass visits them. *)
let chain_opt2_sites ~profile (prog : Ir.Prog.t) (c : Plan.chain) =
  match
    List.find_opt
      (fun (f : Ir.Func.t) -> f.Ir.Func.name = c.Plan.ch_func)
      prog.Ir.Prog.funcs
  with
  | None -> []
  | Some f ->
    let ud = Analysis.Usedef.compute f in
    let cfg = Analysis.Cfg.of_func f in
    let loops = Analysis.Loops.compute cfg in
    let seen : (Ir.Instr.reg, unit) Hashtbl.t = Hashtbl.create 32 in
    let sites = ref [] in
    let rec walk r =
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.replace seen r ();
        match Analysis.Usedef.def_of ud r with
        | None | Some Analysis.Usedef.Param -> ()
        | Some (Analysis.Usedef.Phi_def (_, phi)) ->
          List.iter
            (fun (_, op) ->
              match op with Ir.Instr.Reg r' -> walk r' | Ir.Instr.Imm _ -> ())
            phi.Ir.Instr.incoming
        | Some (Analysis.Usedef.Instr_def (_, ins)) ->
          if Analysis.Usedef.chain_terminator ins then ()
          else if ins.Ir.Instr.dest <> None && profile ins.Ir.Instr.uid <> None
          then
            sites :=
              { Plan.vs_func = f.Ir.Func.name; vs_uid = ins.Ir.Instr.uid }
              :: !sites
          else List.iter walk (Ir.Instr.uses ins)
      end
    in
    List.iter
      (fun ((l : Analysis.Loops.loop), _, (phi : Ir.Instr.phi)) ->
        if phi.Ir.Instr.phi_uid = c.Plan.ch_phi_uid then
          List.iter
            (fun latch ->
              let lbl = Analysis.Cfg.label cfg latch in
              List.iter
                (fun (l', op) ->
                  if l' = lbl then
                    match op with
                    | Ir.Instr.Reg r -> walk r
                    | Ir.Instr.Imm _ -> ())
                phi.Ir.Instr.incoming)
            l.Analysis.Loops.latches)
      (Analysis.Loops.header_phis loops);
    !sites

(* Mirror of Value_checks' Optimization 1 on the original program: among
   the amenable sites not already taken by Opt-2, suppress any that sits
   inside another kept candidate's producer chain. *)
let opt1_surviving ~profile ~(taken : (int, unit) Hashtbl.t)
    (prog : Ir.Prog.t) =
  List.concat_map
    (fun (f : Ir.Func.t) ->
      let ud = Analysis.Usedef.compute f in
      let candidates =
        List.concat_map
          (fun (b : Ir.Block.t) ->
            Array.to_list b.Ir.Block.body
            |> List.filter_map (fun (ins : Ir.Instr.t) ->
                   if
                     Ir.Instr.produces_value ins
                     && ins.Ir.Instr.origin = Ir.Instr.From_source
                     && (not (Hashtbl.mem taken ins.Ir.Instr.uid))
                     && profile ins.Ir.Instr.uid <> None
                   then Some ins
                   else None))
          f.Ir.Func.blocks
      in
      let covered : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (ins : Ir.Instr.t) ->
          List.iter
            (fun r ->
              let chain, (_ : Ir.Instr.reg list) =
                Analysis.Usedef.producer_chain ud r
              in
              List.iter
                (fun (producer : Ir.Instr.t) ->
                  Hashtbl.replace covered producer.Ir.Instr.uid ())
                chain)
            (Ir.Instr.uses ins))
        candidates;
      List.filter_map
        (fun (ins : Ir.Instr.t) ->
          if Hashtbl.mem covered ins.Ir.Instr.uid then None
          else Some { Plan.vs_func = f.Ir.Func.name; vs_uid = ins.Ir.Instr.uid })
        candidates)
    prog.Ir.Prog.funcs

(* Non-dominated subset, overhead ascending with strictly decreasing SDC;
   ties resolved toward the smaller plan then the label, so the frontier
   is deterministic. *)
let plan_size p =
  List.length p.op_plan.Plan.chains
  + List.length p.op_plan.Plan.terminators
  + List.length p.op_plan.Plan.checks

let pareto points =
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare (overhead a) (overhead b) with
        | 0 -> (
          match Float.compare (sdc a) (sdc b) with
          | 0 -> compare (plan_size a, a.op_label) (plan_size b, b.op_label)
          | c -> c)
        | c -> c)
      points
  in
  let best = ref infinity in
  List.filter
    (fun p ->
      if sdc p < !best then begin
        best := sdc p;
        true
      end
      else false)
    sorted

(** Knee points of a frontier: the [n] interior points farthest from the
    chord between the frontier's endpoints, in axis-normalized space;
    frontiers with at most [n] points are returned whole. *)
let knee_points ?(n = 2) (front : point list) =
  let m = List.length front in
  if m <= n then front
  else begin
    let pts = Array.of_list front in
    let x i = overhead pts.(i) and y i = sdc pts.(i) in
    let xr = max 1e-12 (abs_float (x (m - 1) -. x 0)) in
    let yr = max 1e-12 (abs_float (y (m - 1) -. y 0)) in
    let nx i = (x i -. x 0) /. xr and ny i = (y i -. y 0) /. yr in
    (* Chord between normalized endpoints is (0,0)-(1,-1) up to signs;
       use the generic point-line distance to stay robust. *)
    let x1 = nx (m - 1) and y1 = ny (m - 1) in
    let norm = max 1e-12 (sqrt ((x1 *. x1) +. (y1 *. y1))) in
    let dist i = abs_float ((y1 *. nx i) -. (x1 *. ny i)) /. norm in
    let interior = List.init (m - 2) (fun i -> i + 1) in
    let ranked =
      List.sort
        (fun a b ->
          match Float.compare (dist b) (dist a) with
          | 0 -> compare a b
          | c -> c)
        interior
    in
    let chosen = List.filteri (fun i _ -> i < n) ranked |> List.sort compare in
    List.map (fun i -> pts.(i)) chosen
  end

(** Search the plan space of [prog] under an overhead [budget] (a
    fraction; [None] = unbounded).  [profile] enables check placement and
    the Opt-2 chain flavors; [exec_counts] weighs blocks by profiled
    execution counts ({!Interp.Profile.func_block_counts}).  [checkpoint]
    stamps every searched plan with a checkpoint interval.  [beam] bounds
    the states kept per beam round. *)
let search ?(beam = 4) ?budget ?exec_counts ?profile ?(checkpoint = 0)
    (prog : Ir.Prog.t) =
  let budget = match budget with Some b -> b | None -> infinity in
  let cost = cost_model () in
  let explored = ref 0 in
  let archive : (string, point) Hashtbl.t = Hashtbl.create 64 in
  let consider ?(fixed = false) ?label plan =
    let plan = Plan.normalize { plan with Plan.checkpoint } in
    let key = Plan.slug plan in
    match Hashtbl.find_opt archive key with
    | Some p -> p
    | None ->
      incr explored;
      let est = Predict.estimate ?exec_counts ?profile ~cost prog plan in
      let label = match label with Some l -> l | None -> "plan:" ^ key in
      let p = { op_plan = plan; op_label = label; op_fixed = fixed; op_est = est } in
      Hashtbl.replace archive key p;
      p
  in
  let chains = Plan.candidate_chains prog in
  let prof = match profile with Some f -> f | None -> fun _ -> None in
  let sites =
    match profile with
    | Some _ -> Plan.candidate_sites ~profile:prof prog
    | None -> []
  in
  let opt2_cache : (int, Plan.site list) Hashtbl.t = Hashtbl.create 16 in
  let opt2_sites (c : Plan.chain) =
    match Hashtbl.find_opt opt2_cache c.Plan.ch_phi_uid with
    | Some s -> s
    | None ->
      let s =
        match profile with
        | None -> []
        | Some p -> chain_opt2_sites ~profile:p prog c
      in
      Hashtbl.replace opt2_cache c.Plan.ch_phi_uid s;
      s
  in
  (* Fixed-pipeline equivalents, priced through the same predictor. *)
  let p_orig = consider ~fixed:true ~label:"original" Plan.empty in
  let p_dup =
    consider ~fixed:true ~label:"dup_only" { Plan.empty with Plan.chains }
  in
  let p_dupval =
    match profile with
    | None -> None
    | Some _ ->
      let terminators = List.concat_map opt2_sites chains in
      let taken = Hashtbl.create 16 in
      List.iter (fun (s : Plan.site) -> Hashtbl.replace taken s.Plan.vs_uid ()) terminators;
      let checks = opt1_surviving ~profile:prof ~taken prog in
      Some
        (consider ~fixed:true ~label:"dup_valchk"
           { Plan.empty with Plan.chains; terminators; checks })
  in
  (* Beam over chain subsets: each round adds one chain to each kept
     state, in plain and Opt-2-terminated flavors, ranked by marginal
     SDC reduction per marginal cost. *)
  let beam_states = ref [ p_orig ] in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds <= List.length chains do
    incr rounds;
    let expansions =
      List.concat_map
        (fun (st : point) ->
          List.concat_map
            (fun (c : Plan.chain) ->
              if Plan.mem_chain st.op_plan ~phi_uid:c.Plan.ch_phi_uid then []
              else begin
                let base = Plan.add_chain st.op_plan c in
                let flavors =
                  match opt2_sites c with
                  | [] -> [ consider base ]
                  | ts ->
                    [ consider base;
                      consider (List.fold_left Plan.add_terminator base ts) ]
                in
                List.filter (fun p -> overhead p <= budget) flavors
                |> List.map (fun p -> (st, p))
              end)
            chains)
        !beam_states
    in
    if expansions = [] then continue_ := false
    else begin
      let score (parent, child) =
        (sdc parent -. sdc child)
        /. max 1e-9 (overhead child -. overhead parent)
      in
      let sorted =
        List.sort
          (fun a b ->
            match Float.compare (score b) (score a) with
            | 0 -> compare (snd a).op_label (snd b).op_label
            | c -> c)
          expansions
      in
      let seen = Hashtbl.create 16 in
      let kept = ref [] in
      List.iter
        (fun (_, child) ->
          let key = Plan.slug child.op_plan in
          if (not (Hashtbl.mem seen key)) && List.length !kept < beam then begin
            Hashtbl.replace seen key ();
            kept := child :: !kept
          end)
        sorted;
      beam_states := List.rev !kept
    end
  done;
  (* Greedy stand-alone check placement on the surviving frontier. *)
  if sites <> [] then begin
    let eligible =
      Hashtbl.fold (fun _ p acc -> p :: acc) archive []
      |> List.filter (fun p -> overhead p <= budget)
    in
    List.iter
      (fun (p0 : point) ->
        let cur = ref p0 in
        let improved = ref true in
        while !improved do
          improved := false;
          let best = ref None in
          List.iter
            (fun (s : Plan.site) ->
              if
                not
                  (Plan.mem_check !cur.op_plan s.Plan.vs_uid
                  || Plan.mem_terminator !cur.op_plan s.Plan.vs_uid)
              then begin
                let cand = consider (Plan.add_check !cur.op_plan s) in
                if overhead cand <= budget && sdc cand < sdc !cur -. 1e-12
                then begin
                  let sc =
                    (sdc !cur -. sdc cand)
                    /. max 1e-9 (overhead cand -. overhead !cur)
                  in
                  match !best with
                  | None -> best := Some (sc, cand)
                  | Some (bs, bc) ->
                    if sc > bs || (sc = bs && cand.op_label < bc.op_label)
                    then best := Some (sc, cand)
                end
              end)
            sites;
          match !best with
          | Some (_, c) ->
            cur := c;
            improved := true
          | None -> ()
        done)
      (pareto eligible)
  end;
  let all_points = Hashtbl.fold (fun _ p acc -> p :: acc) archive [] in
  let front =
    pareto (List.filter (fun p -> overhead p <= budget) all_points)
  in
  let fixed =
    [ p_orig; p_dup ] @ (match p_dupval with Some p -> [ p ] | None -> [])
  in
  let dominated_fixed =
    List.filter_map
      (fun fp ->
        List.find_opt
          (fun q ->
            strictly_dominates q fp
            && not (Plan.equal q.op_plan fp.op_plan))
          front
        |> Option.map (fun q -> (fp.op_label, q.op_label)))
      fixed
  in
  {
    fr_points = front;
    fr_fixed = fixed;
    fr_dominated_fixed = dominated_fixed;
    fr_explored = !explored;
    fr_budget = budget;
  }

(** {2 Injection validation of knee points (DETOx step 2)} *)

type validation = {
  vl_point : point;
  vl_trials : int;                       (** adaptive trials spent *)
  vl_measured_sdc : Obs.Stats.interval;  (** stratified SDC estimate *)
  vl_measured_overhead : float;          (** golden-cycle ratio − 1 *)
  vl_adaptive : Faults.Campaign.adaptive;
}

(** Run a targeted adaptive campaign (PR 8 machinery) against each point's
    plan, executed on a fresh build of [w].  [on_run] fires per point with
    the protected build and the raw campaign artifacts so callers can
    journal or warehouse them. *)
let validate ?(seed = 42) ?domains ?(ci = 0.03) ?max_trials
    ?(role = Workloads.Workload.Test)
    ?on_run (w : Workloads.Workload.t) (points : point list) =
  let baseline =
    let orig = Api.protect w Api.Original in
    Api.golden orig ~role
  in
  List.map
    (fun (pt : point) ->
      let p = Api.protect_plan ~lint:true w pt.op_plan in
      let ck = pt.op_plan.Plan.checkpoint in
      let g = Api.golden ~checkpoint_interval:ck p ~role in
      let measured_overhead =
        (float_of_int g.Faults.Campaign.cycles
        /. float_of_int baseline.Faults.Campaign.cycles)
        -. 1.0
      in
      let cov = Analysis.Coverage.analyze p.Api.prog in
      let groups = Analysis.Strata.reg_groups p.Api.prog cov in
      let priors = Analysis.Strata.priors cov in
      let stats_out = ref None in
      let subj =
        Api.subject
          ~label:(Printf.sprintf "%s/%s/%s" w.Workloads.Workload.name
                    (Plan.slug pt.op_plan)
                    (Workloads.Workload.role_name role))
          p ~role
      in
      let summary, trials, ad =
        Faults.Campaign.run_adaptive ~seed ?domains ~checkpoint_interval:ck
          ~stats_out ?max_trials ~groups
          ~group_names:Analysis.Strata.group_names ~priors ~ci subj
      in
      let v =
        { vl_point = pt;
          vl_trials = ad.Faults.Campaign.ad_trials;
          vl_measured_sdc = ad.Faults.Campaign.ad_sdc;
          vl_measured_overhead = measured_overhead;
          vl_adaptive = ad }
      in
      (match on_run with
       | Some f -> f v p summary trials !stats_out ad ~golden:g
       | None -> ());
      v)
    points

(** Do predicted and measured SDC agree in rank order?  Concordant when no
    pair is strictly inverted: a strictly lower prediction must not come
    with a strictly higher measurement partner being strictly lower.
    Measured ties are compatible with any predicted order. *)
let rank_order_agrees (vals : validation list) =
  let arr = Array.of_list vals in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then begin
            let pa = sdc a.vl_point and pb = sdc b.vl_point in
            let ma = a.vl_measured_sdc.Obs.Stats.ci_estimate
            and mb = b.vl_measured_sdc.Obs.Stats.ci_estimate in
            if (pa < pb && ma > mb) || (pa > pb && ma < mb) then ok := false
          end)
        arr)
    arr;
  !ok

(** {2 JSON renderings (plan files, bench sections)} *)

let point_json (p : point) =
  Obs.Json.Obj
    [ ("label", Obs.Json.Str p.op_label);
      ("fixed", Obs.Json.Bool p.op_fixed);
      ("predicted_sdc", Obs.Json.Float (sdc p));
      ("predicted_overhead", Obs.Json.Float (overhead p));
      ("cloned_instrs", Obs.Json.Int p.op_est.Predict.pe_cloned_instrs);
      ("dup_checks", Obs.Json.Int p.op_est.Predict.pe_dup_checks);
      ("value_checks", Obs.Json.Int p.op_est.Predict.pe_value_checks);
      ("plan", Plan.to_json p.op_plan) ]

let frontier_json (fr : frontier) =
  Obs.Json.Obj
    [ ("budget",
       if Float.is_finite fr.fr_budget then Obs.Json.Float fr.fr_budget
       else Obs.Json.Null);
      ("explored", Obs.Json.Int fr.fr_explored);
      ("frontier", Obs.Json.List (List.map point_json fr.fr_points));
      ("fixed", Obs.Json.List (List.map point_json fr.fr_fixed));
      ("dominated_fixed",
       Obs.Json.List
         (List.map
            (fun (f, by) ->
              Obs.Json.Obj
                [ ("fixed", Obs.Json.Str f); ("by", Obs.Json.Str by) ])
            fr.fr_dominated_fixed)) ]

let validation_json (v : validation) =
  Obs.Json.Obj
    [ ("label", Obs.Json.Str v.vl_point.op_label);
      ("predicted_sdc", Obs.Json.Float (sdc v.vl_point));
      ("predicted_overhead", Obs.Json.Float (overhead v.vl_point));
      ("measured_sdc", Obs.Json.Float v.vl_measured_sdc.Obs.Stats.ci_estimate);
      ("measured_sdc_low", Obs.Json.Float v.vl_measured_sdc.Obs.Stats.ci_low);
      ("measured_sdc_high", Obs.Json.Float v.vl_measured_sdc.Obs.Stats.ci_high);
      ("measured_overhead", Obs.Json.Float v.vl_measured_overhead);
      ("trials", Obs.Json.Int v.vl_trials);
      ("plan", Plan.to_json v.vl_point.op_plan) ]
