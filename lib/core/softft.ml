(** Library facade: [Softft] re-exports the protection API at the top level
    and exposes the experiment harness and report rendering as submodules. *)

include Api
module Experiments = Experiments
module Optimize = Optimize
module Report = Report
