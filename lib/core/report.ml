(** Plain-text table rendering for the experiment harness. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(** Render a table: the first column is left-aligned, the rest right-aligned. *)
let render ~header ~rows =
  let cols = List.length header in
  List.iteri
    (fun i r ->
      let n = List.length r in
      if n <> cols then
        invalid_arg
          (Printf.sprintf
             "Report.render: row %d has %d cells, header has %d" i n cols))
    rows;
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then pad w cell else pad_left w cell)
         cells)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ~title ~header ~rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header ~rows)

let pct v = Printf.sprintf "%.1f%%" v
let pct2 v = Printf.sprintf "%.2f%%" v
let frac_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

(** RFC 4180 CSV field: quoted only when it contains a comma, quote or
    line break, with inner quotes doubled — plain numbers pass through
    unchanged, so well-formed existing exports keep their exact bytes. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** One CSV line (no trailing newline) from already-stringified cells. *)
let csv_row cells = String.concat "," (List.map csv_field cells)
