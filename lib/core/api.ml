(** Public API of the reproduction: protect a workload with one of the
    paper's techniques, measure its runtime overhead, and run statistical
    fault-injection campaigns against it.

    Typical use:
    {[
      let w = Workloads.Registry.find "jpegdec" in
      let p = Softft.protect w Softft.Dup_valchk in
      let overhead = Softft.overhead p in
      let summary, _ = Softft.campaign p ~role:Workloads.Workload.Test ~trials:1000 in
      ...
    ]} *)

type technique = Transform.Pipeline.technique =
  | Original
  | Dup_only
  | Dup_valchk
  | Full_dup
  | Cfc_only
  | Dup_valchk_cfc
  | Planned

let all_techniques = Transform.Pipeline.all_techniques
let extended_techniques = Transform.Pipeline.extended_techniques
let technique_name = Transform.Pipeline.technique_name

(** A workload protected by one technique: the transformed program plus the
    static statistics of the transformation (Figure 10 vocabulary). *)
type protected = {
  workload : Workloads.Workload.t;
  technique : technique;
  prog : Ir.Prog.t;
  static_stats : Transform.Pipeline.stats;
  profile_false_positive_info : int option;
      (** dynamic value-check failures of the profiling run, if profiled *)
}

(** Build a fresh program for [w] and apply [technique].  For [Dup_valchk]
    the program is first value-profiled on the training input (the paper's
    offline step); [params] tunes the check-derivation heuristics.  [lint]
    runs the transform-invariant lint ({!Analysis.Lint}) after every
    pipeline stage, raising on any violated invariant. *)
let protect ?params ?opt1 ?opt2 ?lint
    ?(profile_role = Workloads.Workload.Train) (w : Workloads.Workload.t)
    technique =
  let prog = w.build () in
  let profile =
    match technique with
    | Dup_valchk | Dup_valchk_cfc ->
      let p = Workloads.Workload.profile ?params ~role:profile_role ~prog w in
      Some (fun uid -> Profiling.Value_profile.check_kind ?params p uid)
    | Original | Dup_only | Full_dup | Cfc_only | Planned -> None
  in
  let static_stats =
    Transform.Pipeline.protect ?profile ?opt1 ?opt2 ?lint prog technique
  in
  { workload = w; technique; prog; static_stats;
    profile_false_positive_info = None }

(** Build a fresh program for [w] and execute [plan] on it
    ({!Transform.Pipeline.of_plan}).  The profiling run only happens when
    the plan names terminator or check sites, mirroring [protect]'s
    treatment of the check-inserting techniques. *)
let protect_plan ?params ?lint ?(profile_role = Workloads.Workload.Train)
    (w : Workloads.Workload.t) (plan : Analysis.Plan.t) =
  let plan = Analysis.Plan.normalize plan in
  let prog = w.build () in
  let profile =
    if plan.Analysis.Plan.terminators <> [] || plan.Analysis.Plan.checks <> []
    then
      let p = Workloads.Workload.profile ?params ~role:profile_role ~prog w in
      Some (fun uid -> Profiling.Value_profile.check_kind ?params p uid)
    else None
  in
  let static_stats = Transform.Pipeline.of_plan ?profile ?lint prog plan in
  { workload = w; technique = Planned; prog; static_stats;
    profile_false_positive_info = None }

let subject ?label (p : protected) ~role =
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "%s/%s/%s" p.workload.name (technique_name p.technique)
        (Workloads.Workload.role_name role)
  in
  Workloads.Workload.subject ~label p.workload ~role ~prog:p.prog

(** Fault-free reference run (also yields simulated cycles and the
    false-positive statistics of the inserted value checks).  [profile]
    attaches an observation-only execution profile to the run;
    [checkpoint_interval] enables rollback checkpointing, whose fault-free
    overhead then shows up in the cycle count. *)
let golden ?profile ?checkpoint_interval (p : protected) ~role =
  Faults.Campaign.golden_run ?profile ?checkpoint_interval (subject p ~role)

(** Runtime overhead of the protected program relative to the unmodified
    one, as a fraction (0.195 = 19.5 %), measured in simulated cycles on
    [role]'s input — the paper's Figure 12 quantity. *)
let overhead ?baseline (p : protected) ~role =
  let base =
    match baseline with
    | Some g -> g
    | None ->
      let original = protect p.workload Original in
      golden original ~role
  in
  let own = golden p ~role in
  (float_of_int own.Faults.Campaign.cycles /. float_of_int base.Faults.Campaign.cycles)
  -. 1.0

(** Statistical fault injection against the protected program.  [domains]
    fans the trials out over OCaml 5 domains (deterministic for any worker
    count; see {!Faults.Campaign.run}).  [profile], [on_trial], [stats_out]
    and [progress] are {!Faults.Campaign.run}'s observation-only telemetry
    hooks — any combination leaves results bit-identical; [taint_trace]
    attaches the fault-propagation tracer to every trial (outcomes
    unchanged, trials gain propagation summaries); [trace] attaches the
    campaign flight recorder (phase/worker/chunk duration spans, rendered
    with {!Obs.Trace.to_chrome}). *)
let campaign ?hw_window ?seed ?(trials = 1000) ?domains ?checkpoint_interval
    ?taint_trace ?profile ?on_trial ?stats_out ?warehouse ?progress ?trace
    (p : protected) ~role =
  Faults.Campaign.run ?hw_window ?seed ?domains ?checkpoint_interval
    ?taint_trace ?profile ?on_trial ?stats_out ?warehouse ?progress ?trace
    (subject p ~role) ~trials

(** 95 %-confidence margin of error for a proportion observed over [n]
    fault-injection trials (Leveugle et al., as cited in §IV-C). *)
let margin_of_error ~trials ~proportion =
  if trials = 0 then 1.0
  else 1.96 *. sqrt (proportion *. (1.0 -. proportion) /. float_of_int trials)
