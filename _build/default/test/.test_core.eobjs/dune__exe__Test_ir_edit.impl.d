test/test_ir_edit.ml: Alcotest Array Block Builder Func Instr Int64 Ir List Opcode Prog Value
