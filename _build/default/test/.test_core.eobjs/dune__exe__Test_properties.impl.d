test/test_properties.ml: Alcotest Builder Hashtbl Instr Int64 Interp Ir List Opcode Parser Printer Profiling Prog QCheck QCheck_alcotest Rng Transform Value Verifier
