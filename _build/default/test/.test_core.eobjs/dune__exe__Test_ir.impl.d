test/test_ir.ml: Alcotest Block Builder Float Func Instr Int64 Interp Ir Opcode Printer Printf Prog String Value Verifier
