test/test_fidelity.ml: Alcotest Array Fidelity Float Metric
