test/test_transform.ml: Alcotest Builder Func Hashtbl Instr Interp Ir List Printf Profiling Prog Rng Transform Value Verifier
