test/test_optimizer.ml: Alcotest Analysis Block Builder Faults Fidelity Instr Interp Ir List Printf Prog Softft Transform Value Verifier Workloads
