test/test_codecs.ml: Adpcm_common Alcotest Array Fidelity Float H264_common Jpeg_common Mp3_common Printf Rng Synth Workloads
