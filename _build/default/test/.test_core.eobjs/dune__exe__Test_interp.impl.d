test/test_interp.ml: Alcotest Builder Float Format Instr Interp Ir List Opcode Printf Prog Rng String Value Workloads
