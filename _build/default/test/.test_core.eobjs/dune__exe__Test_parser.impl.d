test/test_parser.ml: Alcotest Builder Func Instr Interp Ir List Parser Printer Prog Softft Str_split Value Verifier Workloads
