test/test_profiling.ml: Alcotest Gen Histogram Interp Ir List Profiling QCheck QCheck_alcotest Range Rng Value_profile Workloads
