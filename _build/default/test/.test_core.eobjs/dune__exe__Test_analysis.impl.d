test/test_analysis.ml: Alcotest Analysis Array Builder Func Instr Ir List Prog Transform Verifier
