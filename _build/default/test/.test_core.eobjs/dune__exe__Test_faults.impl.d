test/test_faults.ml: Alcotest Array Builder Faults Fidelity Hashtbl Interp Ir List Printf Prog Transform Value Workloads
