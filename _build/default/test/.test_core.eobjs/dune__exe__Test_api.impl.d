test/test_api.ml: Alcotest Float List Printf Softft String Transform Workloads
