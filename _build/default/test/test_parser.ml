(** Round-trip tests for the IR text parser: print → parse → print must be
    a fixpoint, and parsed programs must behave identically. *)

open Ir

let roundtrip prog =
  let text = Printer.prog_to_string prog in
  let reparsed = Parser.parse text in
  let text2 = Printer.prog_to_string reparsed in
  (reparsed, text, text2)

let run_result prog args =
  let mem = Interp.Memory.create () in
  match (Interp.Machine.run prog ~entry:"main" ~args ~mem).stop with
  | Interp.Machine.Finished (Some v) -> Value.to_int64 v
  | stop ->
    Alcotest.failf "run did not finish: %a" Interp.Machine.pp_stop stop

let test_roundtrip_sum_loop () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0)
      ~body:(fun ~i acc -> Builder.add b acc i)
  in
  Builder.ret b s;
  Builder.finish b;
  let reparsed, text, text2 = roundtrip prog in
  Alcotest.(check string) "print/parse/print fixpoint" text text2;
  Alcotest.(check int64) "same behaviour"
    (run_result prog [ Value.of_int 20 ])
    (run_result reparsed [ Value.of_int 20 ])

let test_roundtrip_all_instruction_forms () =
  (* One program touching every instruction form the printer can emit. *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"helper" ~n_params:1 in
  Builder.ret b (Builder.fmul b (Builder.param b 0) (Builder.immf 2.5));
  Builder.finish b;
  let b = Builder.create prog ~name:"main" ~n_params:2 in
  let x = Builder.param b 0 in
  let base = Builder.alloc b (Builder.imm 4) in
  Builder.store b base x;
  let loaded = Builder.load b base in
  let f = Builder.float_of_int b loaded in
  let called = Builder.call b "helper" [ f ] in
  let trunc = Builder.int_of_float b called in
  let c = Builder.fge b f (Builder.immf 0.0) in
  let sel = Builder.select b c trunc (Builder.neg b trunc) in
  let cmp = Builder.lt b sel (Builder.imm 100) in
  let merged =
    Builder.if_ b cmp
      ~then_:(fun () -> [ Builder.xor b sel (Builder.imm 5) ])
      ~else_:(fun () -> [ Builder.srem b sel (Builder.imm 97) ])
  in
  (match merged with
   | [ m ] -> Builder.ret b (Builder.ashr b (Reg m) (Builder.imm 1))
   | _ -> assert false);
  Builder.finish b;
  let reparsed, text, text2 = roundtrip prog in
  Alcotest.(check string) "fixpoint" text text2;
  Alcotest.(check int64) "same behaviour"
    (run_result prog [ Value.of_int 7; Value.of_int 0 ])
    (run_result reparsed [ Value.of_int 7; Value.of_int 0 ])

let test_roundtrip_protected_program () =
  (* A protected workload (dup checks + value checks) must round-trip. *)
  let p = Softft.protect (Workloads.Registry.find "g721enc") Softft.Dup_valchk in
  let reparsed, text, text2 = roundtrip p.prog in
  Alcotest.(check string) "fixpoint" text text2;
  Verifier.verify reparsed;
  (* Instruction counts agree. *)
  Alcotest.(check int) "instr count" (Prog.instr_count p.prog)
    (Prog.instr_count reparsed)

let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = w.build () in
      let reparsed, text, text2 = roundtrip prog in
      Alcotest.(check string) (w.name ^ " fixpoint") text text2;
      Verifier.verify reparsed)
    Workloads.Registry.all

let test_uids_preserved () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let x = Builder.add b (Builder.imm 1) (Builder.imm 2) in
  Builder.ret b x;
  Builder.finish b;
  let reparsed, _, _ = roundtrip prog in
  let uids p =
    let acc = ref [] in
    Prog.iter_funcs
      (fun f -> Func.iter_instrs (fun ins -> acc := ins.Instr.uid :: !acc) f)
      p;
    List.sort compare !acc
  in
  Alcotest.(check (list int)) "uids preserved" (uids prog) (uids reparsed)

let test_parse_errors () =
  let bad text =
    match Parser.parse text with
    | (_ : Prog.t) -> false
    | exception Parser.Parse_error _ -> true
    | exception Verifier.Invalid _ -> true
  in
  Alcotest.(check bool) "garbage instruction" true
    (bad "func @main() {\nentry:\n  %r0 = frobnicate 1, 2\n  ret %r0\n}\n");
  Alcotest.(check bool) "bad register" true
    (bad "func @main() {\nentry:\n  %rX = add 1, 2\n  ret 0\n}\n");
  Alcotest.(check bool) "missing terminator" true
    (bad "func @main() {\nentry:\n  %r0 = add 1, 2\n}\n")

let test_split_on_string () =
  Alcotest.(check (list string)) "basic" [ "a"; "b"; "c" ]
    (Str_split.split_on_string " == " "a == b == c");
  Alcotest.(check (list string)) "no sep" [ "abc" ]
    (Str_split.split_on_string "|" "abc");
  Alcotest.(check (list string)) "empty tail" [ "a"; "" ]
    (Str_split.split_on_string "," "a,")

let tests =
  [ Alcotest.test_case "roundtrip: sum loop" `Quick test_roundtrip_sum_loop;
    Alcotest.test_case "roundtrip: all instruction forms" `Quick
      test_roundtrip_all_instruction_forms;
    Alcotest.test_case "roundtrip: protected program" `Quick
      test_roundtrip_protected_program;
    Alcotest.test_case "roundtrip: all 13 workloads" `Slow
      test_roundtrip_all_workloads;
    Alcotest.test_case "roundtrip: uids preserved" `Quick test_uids_preserved;
    Alcotest.test_case "errors rejected" `Quick test_parse_errors;
    Alcotest.test_case "split_on_string" `Quick test_split_on_string;
  ]
